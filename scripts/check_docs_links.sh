#!/bin/sh
# Checks intra-repository markdown links: every relative [text](target)
# in the repo's committed *.md files must point at an existing file (or
# directory).  External links (scheme://), pure anchors (#...), and
# mailto: are skipped; a target's "#fragment" suffix is stripped before
# the existence check.  Exits non-zero listing every broken reference.
#
# Usage: scripts/check_docs_links.sh   (from anywhere inside the repo)
set -eu

cd "$(dirname "$0")/.."

python3 - <<'PYEOF'
import os
import re
import sys

# Committed markdown only: walk the tree, skipping build trees and vendored
# third-party code the same way a reader of the repository would.
SKIP_DIRS = {".git", "third_party", "node_modules"}
SKIP_PREFIXES = ("build",)

md_files = []
for root, dirs, files in os.walk("."):
    dirs[:] = [
        d for d in dirs
        if d not in SKIP_DIRS and not d.startswith(SKIP_PREFIXES)
    ]
    md_files.extend(
        os.path.join(root, f) for f in files if f.endswith(".md"))

# Inline links [text](target); images ![alt](target) match the same shape.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

broken = []
for path in sorted(md_files):
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    # Fenced code blocks hold example syntax, not navigation.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in LINK.finditer(text):
        target = match.group(1)
        if re.match(r"^[a-zA-Z][a-zA-Z0-9+.-]*:", target):  # scheme://
            continue
        if target.startswith("#"):
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target.split("#", 1)[0]))
        if not os.path.exists(resolved):
            broken.append(f"{path}: [{target}] -> {resolved}")

if broken:
    print("check_docs_links: broken intra-repo references:")
    for line in broken:
        print(f"  {line}")
    sys.exit(1)
print(f"check_docs_links: OK ({len(md_files)} markdown files)")
PYEOF
