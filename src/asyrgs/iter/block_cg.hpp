// Grouped multi-right-hand-side CG.
//
// The paper's experimental baseline solves all 51 regression systems
// together: one fused SpMV over the row-major block per iteration (a "SIMD
// variant of CG where the indices are assigned to threads in a round-robin
// manner", Section 9), with an independent CG recurrence per column.
// Columns converge (and freeze) individually.
#pragma once

#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Outcome of a block solve.
struct BlockSolveReport {
  int iterations = 0;
  int columns_converged = 0;
  double seconds = 0.0;
  /// Final per-column relative residuals ||b_c - A x_c|| / ||b_c||.
  std::vector<double> column_relative_residuals;
  /// Frobenius-norm relative residual per iteration, when tracked.
  std::vector<double> residual_history;
  [[nodiscard]] bool all_converged(index_t k) const {
    return columns_converged == static_cast<int>(k);
  }
};

/// Runs grouped CG on A X = B starting from X (updated in place).
BlockSolveReport block_cg_solve(
    ThreadPool& pool, const CsrMatrix& a, const MultiVector& b, MultiVector& x,
    const SolveOptions& options = {}, int workers = 0,
    RowPartition partition = RowPartition::kRoundRobin);

}  // namespace asyrgs
