// Overdetermined least squares with the asynchronous randomized coordinate
// descent solver (Section 8): regress labels directly on the document-term
// matrix instead of forming the Gram matrix.
//
//   build/examples/least_squares [--terms 1200] [--documents 8000]
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("least_squares",
                "async randomized coordinate descent for min ||Fx - b||_2");
  auto terms = cli.add_int("terms", 1200, "columns of F");
  auto documents = cli.add_int("documents", 8000, "rows of F");
  auto sweeps = cli.add_int("sweeps", 200, "sweep budget");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  cli.parse(argc, argv);

  SocialGramOptions gopt;
  gopt.terms = *terms;
  gopt.documents = *documents;
  gopt.mean_doc_length = 10;
  const SocialGram system = make_social_gram(gopt);
  // Terms that never occur make F rank-deficient; drop their columns (the
  // paper's preprocessing).
  const ColumnCompression compressed = drop_empty_columns(system.factor);
  const CsrMatrix& f = compressed.matrix;
  std::cout << "factor F: " << f.rows() << " x " << f.cols() << " ("
            << system.factor.cols() - f.cols() << " empty columns dropped)\n";

  // Labels = linear model + noise: the least-squares problem is
  // inconsistent, so the solver must find the normal-equations solution.
  const std::vector<double> truth = random_vector(f.cols(), 3);
  std::vector<double> labels = rhs_from_solution(f, truth);
  Xoshiro256 rng(5);
  for (double& v : labels) v += 0.02 * normal(rng);

  ThreadPool& pool = ThreadPool::global();
  // Prepare the least-squares problem once: F^T is materialized (through the
  // matrix's shared transpose cache), the column-norm denominators are
  // precomputed, and full column rank is validated.  Every labelling pass
  // after that is a plain solve() against the handle.
  LsqProblem problem(pool, f);
  SolveControls controls;
  controls.sweeps = static_cast<int>(*sweeps);
  controls.workers = static_cast<int>(*threads);
  controls.step_size = 0.95;  // Theorem 5 regime: beta < 1
  controls.sync = SyncMode::kBarrierPerSweep;
  controls.rel_tol = 1e-6;  // on ||F^T(b - Fx)|| / ||F^T b||

  std::vector<double> x(f.cols(), 0.0);
  WallTimer t;
  const SolveOutcome rep = problem.solve(labels, x, controls);
  std::cout << "status=" << to_string(rep.status) << " after "
            << rep.iterations << " sweeps on " << rep.workers
            << " threads in " << t.seconds() << " s\n";

  // How close are the recovered regression coefficients to the truth?
  // (They differ by the noise projection; report both metrics.)
  std::vector<double> r(labels.size());
  f.multiply(x.data(), r.data());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = labels[i] - r[i];
  std::vector<double> g(static_cast<std::size_t>(f.cols()));
  f.multiply_transpose(r.data(), g.data());
  std::cout << "normal-equations residual ||F^T(b-Fx)||: " << nrm2(g) << "\n";
  std::cout << "coefficient error vs noiseless truth:    "
            << nrm2(subtract(x, truth)) / nrm2(truth) << "\n";
  return rep.converged() ? 0 : 1;
}
