#include "asyrgs/iter/precond.hpp"

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {

void IdentityPreconditioner::apply(const std::vector<double>& r,
                                   std::vector<double>& z) {
  z = r;
}

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    require(d != 0.0, "JacobiPreconditioner: zero diagonal entry");
    d = 1.0 / d;
  }
}

void JacobiPreconditioner::apply(const std::vector<double>& r,
                                 std::vector<double>& z) {
  require(r.size() == inv_diag_.size(), "JacobiPreconditioner: shape mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = inv_diag_[i] * r[i];
}

RgsPreconditioner::RgsPreconditioner(const CsrMatrix& a, int sweeps,
                                     double step_size, std::uint64_t seed)
    : a_(a), sweeps_(sweeps), step_size_(step_size), seed_(seed) {
  require(sweeps > 0, "RgsPreconditioner: sweeps must be positive");
}

void RgsPreconditioner::apply(const std::vector<double>& r,
                              std::vector<double>& z) {
  z.assign(r.size(), 0.0);
  RgsOptions opt;
  opt.sweeps = sweeps_;
  opt.step_size = step_size_;
  // A fresh direction stream per application keeps applications independent
  // (and the preconditioner "variable" in the flexible-Krylov sense).
  opt.seed = splitmix64(seed_ + ++applications_);
  rgs_solve(a_, r, z, opt);
}

std::string RgsPreconditioner::name() const {
  return "rgs(sweeps=" + std::to_string(sweeps_) + ")";
}

AsyRgsPreconditioner::AsyRgsPreconditioner(ThreadPool& pool,
                                           const CsrMatrix& a, int sweeps,
                                           int workers, double step_size,
                                           std::uint64_t seed,
                                           bool atomic_writes, ScanMode scan)
    : owned_(std::make_unique<SpdProblem>(pool, a, /*check_input=*/false)),
      problem_(owned_.get()),
      sweeps_(sweeps),
      workers_(workers),
      step_size_(step_size),
      seed_(seed),
      atomic_writes_(atomic_writes),
      scan_(scan) {
  require(sweeps > 0, "AsyRgsPreconditioner: sweeps must be positive");
}

AsyRgsPreconditioner::AsyRgsPreconditioner(SpdProblem& problem, int sweeps,
                                           int workers, double step_size,
                                           std::uint64_t seed,
                                           bool atomic_writes, ScanMode scan)
    : problem_(&problem),
      sweeps_(sweeps),
      workers_(workers),
      step_size_(step_size),
      seed_(seed),
      atomic_writes_(atomic_writes),
      scan_(scan) {
  require(sweeps > 0, "AsyRgsPreconditioner: sweeps must be positive");
}

AsyRgsPreconditioner::~AsyRgsPreconditioner() = default;

void AsyRgsPreconditioner::apply(const std::vector<double>& r,
                                 std::vector<double>& z) {
  z.assign(r.size(), 0.0);
  // Identical options to the pre-handle implementation; only the prepared
  // state (diagonal reciprocals, rhs packing buffer, direction scratch) is
  // now reused across applications instead of rebuilt each outer iteration.
  SolveControls controls;
  controls.method = SpdMethod::kAsyncRgs;
  controls.sweeps = sweeps_;
  controls.step_size = step_size_;
  controls.workers = workers_;
  controls.atomic_writes = atomic_writes_;
  controls.scan = scan_;
  controls.sync = SyncMode::kFreeRunning;
  // A fresh direction stream per application keeps applications independent
  // (and the preconditioner "variable" in the flexible-Krylov sense).
  controls.seed = splitmix64(seed_ + ++applications_);
  problem_->solve(r, z, controls);
}

std::string AsyRgsPreconditioner::name() const {
  return "asyrgs(sweeps=" + std::to_string(sweeps_) +
         ",workers=" + std::to_string(workers_) + ")";
}

}  // namespace asyrgs
