// Random SPD / diagonally dominant test-matrix generators.
//
// Historical asynchronous theory (Chazan-Miranker) needs diagonal dominance;
// the paper's contribution is a method that works for *any* SPD matrix.  To
// exercise both regimes the suite provides:
//
//  * random_sdd       - symmetric strictly diagonally dominant (the classic
//                       "safe" class: both old and new theory apply);
//  * random_spd_product - A = L L^T + ridge for random sparse L: SPD but in
//                       general *not* diagonally dominant (the class only
//                       the randomized theory covers).
#pragma once

#include <cstdint>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Parameters for the banded random generators.
struct RandomBandedOptions {
  index_t n = 1024;            ///< dimension
  index_t offdiag_per_row = 8; ///< expected off-diagonal entries per row
  index_t bandwidth = 64;      ///< |i - j| <= bandwidth for sampled entries
  double dominance_margin = 0.1;  ///< diag = (1+margin) * offdiag row sum
  std::uint64_t seed = 1;
};

/// Symmetric strictly diagonally dominant matrix with random banded sparsity
/// pattern and random off-diagonal magnitudes in [-1, -0.1] U [0.1, 1].
[[nodiscard]] CsrMatrix random_sdd(const RandomBandedOptions& opt);

/// SPD matrix A = L L^T + ridge*I where L is lower triangular with random
/// banded sparsity and unit-ish diagonal.  Not diagonally dominant in
/// general; spectrum controlled loosely by the ridge.
struct RandomSpdOptions {
  index_t n = 1024;
  index_t factor_entries_per_row = 4;  ///< off-diagonal entries of L per row
  index_t bandwidth = 64;
  double ridge = 0.05;
  std::uint64_t seed = 1;
};
[[nodiscard]] CsrMatrix random_spd_product(const RandomSpdOptions& opt);

/// Block-coupled SPD matrix: block-diagonal with dense blocks
/// (1-c) I + c * ones(block) on the diagonal, unit diagonal overall.
/// SPD for c in (0, 1), but the Jacobi iteration matrix has spectral radius
/// (block-1) * c, so chaotic relaxation *diverges* for c > 1/(block-1) —
/// the canonical matrix class where classical asynchronous theory fails and
/// only the randomized method retains a guarantee.
[[nodiscard]] CsrMatrix block_coupled_spd(index_t n, index_t block, double c);

}  // namespace asyrgs
