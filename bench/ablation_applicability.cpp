// Ablation C — Applicability: randomized AsyRGS vs classical chaotic
// relaxation (asynchronous Jacobi) across matrix classes.
//
// The paper's applicability claim (Sections 1-2): historical asynchronous
// methods carry guarantees only on restricted classes — Chazan-Miranker
// convergence needs rho(|M|) < 1 for the Jacobi iteration matrix M, i.e.
// essentially diagonal dominance — while AsyRGS "will converge for
// essentially any large sparse symmetric positive definite matrix".
//
// Part 1 (real hardware) runs both methods on (a) a strictly diagonally
// dominant matrix and (b) an SPD block-coupled matrix with rho(|M|) >> 1,
// and prints each method's guarantee next to its measured residual.  On a
// cache-coherent multicore the observed delays are tiny, so chaotic
// relaxation often converges *beyond* its guarantee — the point is the
// guarantee column, not a hardware failure.
//
// Part 2 (simulator) enforces the delays hardware happens to avoid: under a
// full-sweep batch delay on the coupled matrix, the unit-step iteration
// diverges (no guarantee, and indeed no convergence), while the paper's
// step-size rule beta~ = 1/(1+2 rho tau) restores convergence — the
// randomized framework's guarantee is constructive where the classical one
// simply ends.
#include <cmath>
#include <limits>
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

namespace {

/// max_i sum_{j != i} |A_ij| / |A_ii|: an upper bound on rho(|M|) that is
/// also >= rho(|M|)'s dominant-block value for the block-coupled matrix;
/// < 1 certifies chaotic relaxation, and for block_coupled_spd the true
/// rho(|M|) = (block-1)*c equals the row sum, so > 1 here means "no
/// guarantee" exactly.
double jacobi_row_ratio(const CsrMatrix& a) {
  double worst = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double diag = 0.0, off = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] == i)
        diag = std::abs(vals[t]);
      else
        off += std::abs(vals[t]);
    }
    worst = std::max(worst, off / diag);
  }
  return worst;
}

double run_residual(ThreadPool& pool, const CsrMatrix& a,
                    const std::vector<double>& b, bool use_rgs, int sweeps,
                    int workers) {
  std::vector<double> x(a.rows(), 0.0);
  if (use_rgs) {
    AsyncRgsOptions opt;
    opt.sweeps = sweeps;
    opt.workers = workers;
    opt.seed = 1;
    async_rgs_solve(pool, a, b, x, opt);
  } else {
    AsyncJacobiOptions opt;
    opt.sweeps = sweeps;
    opt.workers = workers;
    opt.ownership = JacobiOwnership::kRoundRobin;
    async_jacobi_solve(pool, a, b, x, opt);
  }
  for (double v : x)
    if (!std::isfinite(v)) return std::numeric_limits<double>::infinity();
  return relative_residual(a, b, x);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_applicability",
                "AsyRGS vs chaotic relaxation across matrix classes");
  auto n_opt = cli.add_int("n", 20000, "matrix dimension");
  auto sweeps = cli.add_int("sweeps", 300, "sweeps for both methods");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto coupling = cli.add_double(
      "coupling", 0.5, "off-diagonal coupling c of the non-dominant matrix");
  auto block = cli.add_int("block", 40, "dense block size (coupled matrix)");
  cli.parse(argc, argv);

  print_banner("ablation_applicability",
               "Sections 1-2 applicability claim (methodological ablation)");
  ThreadPool& pool = ThreadPool::global();
  const int workers = *threads > 0 ? static_cast<int>(*threads) : pool.size();
  const index_t n = *n_opt;
  const int s = static_cast<int>(*sweeps);

  // (a) strictly diagonally dominant; (b) SPD, strongly block-coupled.
  RandomBandedOptions sdd_opt;
  sdd_opt.n = n;
  sdd_opt.offdiag_per_row = 12;
  sdd_opt.bandwidth = 128;
  sdd_opt.seed = 5;
  const CsrMatrix sdd = random_sdd(sdd_opt);
  const CsrMatrix coupled =
      block_coupled_spd(n, static_cast<index_t>(*block), *coupling);

  std::cout << "# part 1: real shared-memory run (" << workers
            << " threads, " << s << " sweeps)\n";
  Table table({"matrix", "rho(|M|)<=", "jacobi_guarantee", "jacobi_residual",
               "asyrgs_guarantee", "asyrgs_residual"});
  for (const auto& [name, mat] :
       {std::pair<const char*, const CsrMatrix*>{"sdd", &sdd},
        std::pair<const char*, const CsrMatrix*>{"block_coupled", &coupled}}) {
    const std::vector<double> x_star = random_vector(mat->rows(), 3);
    const std::vector<double> b = rhs_from_solution(*mat, x_star);
    const double ratio = jacobi_row_ratio(*mat);

    const double jac = run_residual(pool, *mat, b, false, s, workers);
    const double rgs = run_residual(pool, *mat, b, true, s, workers);

    // AsyRGS guarantee (Theorem 2 with tau ~ P on the unit-scaled matrix).
    const CsrMatrix scaled = UnitDiagonalScaling(*mat).scale_matrix(*mat);
    const double two_rho_tau =
        2.0 * rho(scaled) * static_cast<double>(workers);

    table.add_row({name, fmt_fixed(ratio, 2),
                   ratio < 1.0 ? "yes (dominant)" : "NONE",
                   fmt_sci(jac, 2),
                   two_rho_tau < 1.0 ? "yes (2*rho*tau<1)" : "needs beta<1",
                   fmt_sci(rgs, 2)});
  }
  table.print(std::cout);
  std::cout << "# on cache-coherent hardware delays are tiny, so chaotic "
               "relaxation can converge beyond its guarantee;\n"
            << "# the guarantee gap is what part 2 makes operational.\n\n";

  // --- Part 2: enforced worst-case delay (simulator) -------------------------
  const index_t n2 = 960;
  const CsrMatrix small_coupled =
      block_coupled_spd(n2, static_cast<index_t>(*block), *coupling);
  const std::vector<double> x_star = random_vector(n2, 7);
  const std::vector<double> b2 = rhs_from_solution(small_coupled, x_star);
  const std::vector<double> x0(static_cast<std::size_t>(n2), 0.0);
  const double e0 = std::pow(a_norm_error(small_coupled, x0, x_star), 2);
  const double rho_val = rho(small_coupled);

  std::cout << "# part 2: simulator with enforced batch delay on the "
               "coupled matrix (n=" << n2 << ")\n";
  Table sim_table({"delay", "beta", "E_m/E_0", "status"});
  struct Config {
    index_t batch;
    double beta;
    const char* label;
  };
  const double beta_safe = optimal_beta_consistent(rho_val, n2 - 1);
  const Config configs[] = {
      {static_cast<index_t>(workers), 1.0, "tau=P (bounded)"},
      {n2, 1.0, "tau=n (full sweep)"},
      {n2, beta_safe, "tau=n, beta~"},
  };
  for (const Config& cfg : configs) {
    const BatchDelay delay(cfg.batch);
    SimOptions opt;
    opt.iterations = static_cast<std::uint64_t>(n2) * 40;
    opt.seed = 3;
    opt.step_size = cfg.beta;
    const SimResult sim =
        simulate_consistent(small_coupled, b2, x0, x_star, delay, opt);
    const double ratio = sim.final_error_sq / e0;
    sim_table.add_row({cfg.label, fmt_fixed(cfg.beta, 4), fmt_sci(ratio, 2),
                       ratio < 1.0 ? "converging" : "DIVERGING"});
  }
  sim_table.print(std::cout);
  std::cout << "# shape check: bounded delay converges at beta=1; full-sweep "
               "delay diverges at beta=1 and is rescued by beta~ —\n"
            << "# randomization + step-size control give guarantees where "
               "chaotic-relaxation theory has none.\n";
  return 0;
}
