// High-level spectrum estimation for SPD matrices.
//
// Wraps the power method (cheap lambda_max) and Lanczos (both extremes) into
// the interface the theory module and benchmarks consume.
#pragma once

#include <cstdint>

#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Power-method estimate of lambda_max(A) for symmetric A.
struct PowerMethodResult {
  double lambda_max = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Runs the power method until the Rayleigh quotient stabilizes to `tol`
/// relative change or `max_iters` iterations elapse.
[[nodiscard]] PowerMethodResult power_method(ThreadPool& pool,
                                             const CsrMatrix& a,
                                             int max_iters = 200,
                                             double tol = 1e-9,
                                             std::uint64_t seed = 11);

/// Combined spectrum estimate for SPD A.
struct SpectrumEstimate {
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double condition = 0.0;  ///< lambda_max / lambda_min
};

/// Lanczos-based estimate (lambda_min is an upper bound on the true minimum,
/// lambda_max a lower bound on the true maximum; with enough steps on a
/// moderately conditioned matrix both are accurate to ~1e-6 relative).
[[nodiscard]] SpectrumEstimate estimate_spectrum(ThreadPool& pool,
                                                 const CsrMatrix& a,
                                                 int lanczos_steps = 100,
                                                 std::uint64_t seed = 7);

}  // namespace asyrgs
