// Sequential Randomized Gauss-Seidel (Leventhal & Lewis / Griebel & Oswald).
//
// The synchronous iteration underlying AsyRGS (paper Section 3).  Each step
// picks a coordinate r uniformly at random and solves equation r exactly
// (step size beta = 1) or takes a relaxed step (0 < beta < 2):
//
//   gamma = (b_r - A_r x) / A_rr,      x_r += beta * gamma .
//
// This is iteration (3) of the paper, which handles an arbitrary positive
// diagonal; when A has unit diagonal it reduces to iteration (1).  The
// expected squared A-norm error contracts per step by the Griebel-Oswald
// factor (equation (2)):
//
//   E_m <= (1 - beta(2-beta) lambda_min / n)^m ||x_0 - x*||_A^2 .
//
// Directions come from the random-access Philox stream keyed by `seed`, so
// the asynchronous solver run with the same seed consumes the *identical*
// direction multiset (the paper's Section 9 methodology); with one worker
// the trajectories agree step for step.
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Options for the randomized Gauss-Seidel family (sequential and async).
struct RgsOptions {
  int sweeps = 10;           ///< each sweep = n coordinate updates
  double step_size = 1.0;    ///< beta in (0, 2)
  std::uint64_t seed = 1;    ///< keys the Philox direction stream
  bool track_history = false;///< record relative residual after each sweep
  double rel_tol = 0.0;      ///< >0: stop when relative residual reached
                             ///< (checked after each sweep; costs one SpMV)
};

/// Outcome of a randomized Gauss-Seidel run.
struct RgsReport {
  int sweeps_done = 0;
  long long updates = 0;  ///< total coordinate updates performed
  double seconds = 0.0;
  bool converged = false;              ///< only meaningful when rel_tol > 0
  double final_relative_residual = 0.0;///< filled when history or tol active
  std::vector<double> residual_history;///< per sweep, when tracked
};

/// Runs sequential randomized Gauss-Seidel on SPD A x = b starting from `x`
/// (updated in place).  Requires a strictly positive diagonal.
RgsReport rgs_solve(const CsrMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const RgsOptions& options = {});

/// Block variant: all columns of X updated for the chosen row in one fused
/// pass (the 51-right-hand-side setting of Section 9).
RgsReport rgs_solve_block(const CsrMatrix& a, const MultiVector& b,
                          MultiVector& x, const RgsOptions& options = {});

/// Griebel-Oswald per-update contraction factor
/// 1 - beta(2-beta) lambda_min / n (equation (2)); exposed for tests and the
/// theory module.
[[nodiscard]] double rgs_contraction_factor(index_t n, double lambda_min,
                                            double step_size);

}  // namespace asyrgs
