// Chaotic-relaxation (asynchronous Jacobi) baseline tests.
#include <gtest/gtest.h>

#include "asyrgs/core/async_jacobi.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/jacobi.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/linalg/vector_ops.hpp"

namespace asyrgs {
namespace {

TEST(AsyncJacobi, ConvergesOnStrictlyDominantSystem) {
  // The classic applicability class: chaotic relaxation converges when the
  // Jacobi iteration matrix is contracting.
  ThreadPool pool(8);
  RandomBandedOptions opt;
  opt.n = 600;
  opt.seed = 3;
  const CsrMatrix a = random_sdd(opt);
  const std::vector<double> x_star = random_vector(a.rows(), 5);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncJacobiOptions jopt;
  jopt.sweeps = 300;
  jopt.workers = 8;
  const AsyncRgsReport rep = async_jacobi_solve(pool, a, b, x, jopt);
  EXPECT_EQ(rep.sweeps_done, 300);
  EXPECT_LT(relative_residual(a, b, x), 1e-8);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-6);
}

TEST(AsyncJacobi, SingleWorkerMatchesGaussSeidelFlavour) {
  // With one worker the in-place relaxation is deterministic; it must reach
  // at least the accuracy of synchronous Jacobi at equal sweep counts
  // (in-place updates use fresher data).
  ThreadPool pool(4);
  RandomBandedOptions opt;
  opt.n = 300;
  opt.seed = 7;
  const CsrMatrix a = random_sdd(opt);
  const std::vector<double> x_star = random_vector(a.rows(), 9);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  const int sweeps = 30;
  std::vector<double> x_async(a.rows(), 0.0);
  AsyncJacobiOptions jopt;
  jopt.sweeps = sweeps;
  jopt.workers = 1;
  async_jacobi_solve(pool, a, b, x_async, jopt);

  std::vector<double> x_sync(a.rows(), 0.0);
  SolveOptions so;
  so.max_iterations = sweeps;
  so.rel_tol = 0.0;
  jacobi_solve(pool, a, b, x_sync, so);

  EXPECT_LE(relative_residual(a, b, x_async),
            relative_residual(a, b, x_sync) * 1.01);
}

TEST(AsyncJacobi, DampingKeepsIterationStable) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(12, 12);  // weakly dominant: Jacobi is
                                             // marginal, damping helps
  const std::vector<double> x_star = random_vector(a.rows(), 11);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncJacobiOptions jopt;
  jopt.sweeps = 2500;
  jopt.workers = 4;
  jopt.damping = 0.8;
  async_jacobi_solve(pool, a, b, x, jopt);
  EXPECT_LT(relative_residual(a, b, x), 1e-4);
}

TEST(AsyncJacobi, RejectsBadOptions) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_1d(10);
  const std::vector<double> b = random_vector(10, 1);
  std::vector<double> x(10, 0.0);
  AsyncJacobiOptions jopt;
  jopt.damping = 0.0;
  EXPECT_THROW(async_jacobi_solve(pool, a, b, x, jopt), Error);
  jopt.damping = 1.5;
  EXPECT_THROW(async_jacobi_solve(pool, a, b, x, jopt), Error);
}

}  // namespace
}  // namespace asyrgs
