#include "asyrgs/core/rgs.hpp"

#include <cmath>

#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

/// Validates shapes and returns 1/diag(A), throwing on a non-positive
/// diagonal (necessary condition for SPD).
std::vector<double> checked_inverse_diagonal(const CsrMatrix& a) {
  require(a.square(), "rgs: matrix must be square");
  std::vector<double> inv = a.diagonal();
  for (double& d : inv) {
    require(d > 0.0, "rgs: diagonal must be strictly positive (SPD input)");
    d = 1.0 / d;
  }
  return inv;
}

}  // namespace

double rgs_contraction_factor(index_t n, double lambda_min, double step_size) {
  require(n > 0, "rgs_contraction_factor: n must be positive");
  require(step_size > 0.0 && step_size < 2.0,
          "rgs_contraction_factor: beta must be in (0, 2)");
  return 1.0 - step_size * (2.0 - step_size) * lambda_min /
                   static_cast<double>(n);
}

RgsReport rgs_solve(const CsrMatrix& a, const std::vector<double>& b,
                    std::vector<double>& x, const RgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "rgs_solve: shape mismatch");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "rgs_solve: step size must be in (0, 2)");
  const index_t n = a.rows();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;

  WallTimer timer;
  RgsReport report;
  std::uint64_t j = 0;  // global update counter = Philox stream position

  // Directions drawn in batches via the bulk Philox API — the identical
  // stream to per-call index_at, several times cheaper per draw.
  std::vector<index_t> picks(static_cast<std::size_t>(
      std::min<index_t>(std::max<index_t>(n, 1), 1024)));
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const double* av = a.values().data();

  for (int sweep = 1; sweep <= options.sweeps; ++sweep) {
    index_t done = 0;
    while (done < n) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<index_t>(static_cast<index_t>(picks.size()), n - done));
      dirs.fill_indices(j, chunk, n, picks.data());
      for (std::size_t u = 0; u < chunk; ++u) {
        const index_t r = picks[u];
        // Canonical update arithmetic (identical association across the
        // sequential, block, and asynchronous implementations so that
        // equal-seed runs agree bit for bit): acc = b_r - sum A_rj x_j taken
        // one subtraction at a time, then x_r += beta * (acc / A_rr).
        const nnz_t lo = rp[r];
        const double acc =
            csr_row_sub_dot(b[r], ci + lo, av + lo, rp[r + 1] - lo, x.data());
        x[r] += beta * (acc * inv_diag[r]);
      }
      j += chunk;
      done += static_cast<index_t>(chunk);
    }
    report.sweeps_done = sweep;
    report.updates += n;

    const bool want_check = options.track_history || options.rel_tol > 0.0;
    if (want_check) {
      const double rel = relative_residual(a, b, x);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

RgsReport rgs_solve_block(const CsrMatrix& a, const MultiVector& b,
                          MultiVector& x, const RgsOptions& options) {
  require(b.rows() == a.rows() && x.rows() == a.rows() &&
              b.cols() == x.cols(),
          "rgs_solve_block: shape mismatch");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "rgs_solve_block: step size must be in (0, 2)");
  const index_t n = a.rows();
  const index_t k = b.cols();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;

  WallTimer timer;
  RgsReport report;
  std::uint64_t j = 0;
  std::vector<double> gamma(static_cast<std::size_t>(k));
  std::vector<index_t> picks(static_cast<std::size_t>(
      std::min<index_t>(std::max<index_t>(n, 1), 1024)));

  for (int sweep = 1; sweep <= options.sweeps; ++sweep) {
    index_t done = 0;
    while (done < n) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<index_t>(static_cast<index_t>(picks.size()), n - done));
      dirs.fill_indices(j, chunk, n, picks.data());
      for (std::size_t u = 0; u < chunk; ++u) {
        const index_t r = picks[u];
        // gamma_c = (B(r,c) - A_r X(:,c)) / A_rr for all c, fused.
        const double* b_row = b.row(r);
        for (index_t c = 0; c < k; ++c) gamma[c] = b_row[c];
        const auto cols = a.row_cols(r);
        const auto vals = a.row_vals(r);
        for (std::size_t s = 0; s < cols.size(); ++s) {
          const double arj = vals[s];
          const double* x_row = x.row(cols[s]);
          for (index_t c = 0; c < k; ++c) gamma[c] -= arj * x_row[c];
        }
        double* xr = x.row(r);
        for (index_t c = 0; c < k; ++c)
          xr[c] += beta * (gamma[c] * inv_diag[r]);
      }
      j += chunk;
      done += static_cast<index_t>(chunk);
    }
    report.sweeps_done = sweep;
    report.updates += n;

    if (options.track_history || options.rel_tol > 0.0) {
      // Serial block residual: generation-scale cost, fine per sweep.
      double num = 0.0, den = 0.0;
      std::vector<double> row(static_cast<std::size_t>(k));
      for (index_t i = 0; i < n; ++i) {
        const double* b_row = b.row(i);
        std::fill(row.begin(), row.end(), 0.0);
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s) {
          const double aij = vals[s];
          const double* x_row = x.row(cols[s]);
          for (index_t c = 0; c < k; ++c) row[c] += aij * x_row[c];
        }
        for (index_t c = 0; c < k; ++c) {
          const double r_ic = b_row[c] - row[c];
          num += r_ic * r_ic;
          den += b_row[c] * b_row[c];
        }
      }
      const double rel =
          den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
