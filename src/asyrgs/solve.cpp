#include "asyrgs/solve.hpp"

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/iter/cg.hpp"
#include "asyrgs/iter/fcg.hpp"
#include "asyrgs/iter/precond.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

const char* method_name(SpdMethod m) {
  switch (m) {
    case SpdMethod::kAuto:
      return "auto";
    case SpdMethod::kAsyncRgs:
      return "asyrgs";
    case SpdMethod::kFcgAsyRgs:
      return "fcg+asyrgs";
    case SpdMethod::kCg:
      return "cg";
  }
  return "?";
}

}  // namespace

SpdSolveSummary solve_spd(ThreadPool& pool, const CsrMatrix& a,
                          const std::vector<double>& b, std::vector<double>& x,
                          const SpdSolveOptions& options) {
  require(a.square(), "solve_spd: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "solve_spd: shape mismatch");
  require(options.rel_tol > 0.0, "solve_spd: rel_tol must be positive");
  if (options.check_input) {
    require(is_symmetric(a, 1e-12 * inf_norm(a)),
            "solve_spd: matrix is not symmetric");
    for (double d : a.diagonal())
      require(d > 0.0, "solve_spd: diagonal must be strictly positive "
                       "(matrix cannot be SPD)");
  }

  SpdMethod method = options.method;
  if (method == SpdMethod::kAuto) {
    method = options.rel_tol >= 1e-4 ? SpdMethod::kAsyncRgs
                                     : SpdMethod::kFcgAsyRgs;
  }

  SpdSolveSummary summary;
  summary.method_used = method;
  WallTimer timer;

  switch (method) {
    case SpdMethod::kAsyncRgs: {
      AsyncRgsOptions opt;
      opt.sweeps = options.max_iterations > 0 ? options.max_iterations
                                              : 100000;
      opt.workers = options.threads;
      opt.seed = options.seed;
      opt.sync = SyncMode::kBarrierPerSweep;
      opt.scan = options.scan;
      opt.rel_tol = options.rel_tol;
      const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
      summary.converged = rep.converged;
      summary.iterations = rep.sweeps_done;
      summary.relative_residual = rep.final_relative_residual;
      summary.description = "AsyRGS, " + std::to_string(rep.workers) +
                            " threads, barrier per sweep";
      break;
    }
    case SpdMethod::kFcgAsyRgs: {
      const int workers =
          options.threads > 0 ? options.threads : pool.size();
      AsyRgsPreconditioner precond(pool, a, options.inner_sweeps, workers,
                                   /*step_size=*/1.0, options.seed,
                                   /*atomic_writes=*/true, options.scan);
      FcgOptions fo;
      fo.base.max_iterations =
          options.max_iterations > 0 ? options.max_iterations : 10000;
      fo.base.rel_tol = options.rel_tol;
      const FcgReport rep = fcg_solve(pool, a, b, x, precond, fo, workers);
      summary.converged = rep.base.converged;
      summary.iterations = rep.base.iterations;
      summary.relative_residual = rep.base.final_relative_residual;
      summary.description = "flexible CG + " + precond.name();
      break;
    }
    case SpdMethod::kCg: {
      SolveOptions so;
      so.max_iterations =
          options.max_iterations > 0 ? options.max_iterations : 10000;
      so.rel_tol = options.rel_tol;
      const SolveReport rep =
          cg_solve(pool, a, b, x, so, nullptr, options.threads);
      summary.converged = rep.converged;
      summary.iterations = rep.iterations;
      summary.relative_residual = rep.final_relative_residual;
      summary.description = "conjugate gradients";
      break;
    }
    case SpdMethod::kAuto:
      break;  // unreachable: resolved above
  }

  summary.seconds = timer.seconds();
  summary.description += std::string(" [") + method_name(method) + "]";
  return summary;
}

}  // namespace asyrgs
