// minigtest — default test entry point, the shim's stand-in for gtest_main.
#include "gtest/gtest.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
