// Row-major block of dense vectors ("multivector").
//
// The paper's experimental system solves 51 right-hand sides together and
// stores the 120,147 x 51 right-hand-side and solution matrices "in a
// row-major fashion to improve locality" (Section 9): a single Gauss-Seidel
// coordinate update touches row r of X for all 51 systems at once, so the
// row-major layout turns 51 scattered accesses into one contiguous stream.
#pragma once

#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Dense n x k matrix stored row-major; column c of the block is the c-th
/// right-hand side / iterate.
class MultiVector {
 public:
  MultiVector() = default;

  /// n rows, k columns, zero-initialized.
  MultiVector(index_t n, index_t k)
      : n_(n), k_(k), data_(static_cast<std::size_t>(n * k), 0.0) {
    require(n > 0 && k > 0, "MultiVector: dimensions must be positive");
  }

  [[nodiscard]] index_t rows() const noexcept { return n_; }
  [[nodiscard]] index_t cols() const noexcept { return k_; }

  [[nodiscard]] double* row(index_t i) noexcept { return data_.data() + i * k_; }
  [[nodiscard]] const double* row(index_t i) const noexcept {
    return data_.data() + i * k_;
  }

  [[nodiscard]] double& at(index_t i, index_t c) noexcept {
    return data_[static_cast<std::size_t>(i * k_ + c)];
  }
  [[nodiscard]] double at(index_t i, index_t c) const noexcept {
    return data_[static_cast<std::size_t>(i * k_ + c)];
  }

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Extracts column c as a standalone vector.
  [[nodiscard]] std::vector<double> column(index_t c) const;

  /// Overwrites column c from a dense vector of length rows().
  void set_column(index_t c, const std::vector<double>& v);

 private:
  index_t n_ = 0;
  index_t k_ = 0;
  std::vector<double> data_;
};

/// Column-wise Euclidean norms of X: out[c] = ||X(:, c)||_2.
[[nodiscard]] std::vector<double> column_norms(const MultiVector& x);

/// Column-wise norms of the difference X - Y.
[[nodiscard]] std::vector<double> column_diff_norms(const MultiVector& x,
                                                    const MultiVector& y);

/// Frobenius norm of the block.
[[nodiscard]] double frobenius_norm(const MultiVector& x);

/// Y += alpha * X (same shape).
void block_axpy(double alpha, const MultiVector& x, MultiVector& y);

}  // namespace asyrgs
