// asyrgs_gen — generate test matrices in Matrix Market format.
//
//   asyrgs_gen --kind laplacian2d --nx 32 --ny 32 --out A.mtx
//   asyrgs_gen --kind laplacian3d --nx 16 --ny 16 --nz 16 --out A.mtx
//   asyrgs_gen --kind sdd        --n 5000 --out A.mtx
//   asyrgs_gen --kind spd        --n 5000 --out A.mtx
//   asyrgs_gen --kind gram       --terms 3000 --documents 12000 --out A.mtx
//
// Pairs with tools/asyrgs_solve for a no-C++ end-to-end workflow; also
// useful for exporting the synthetic social-media system to other tools.
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("asyrgs_gen", "generate SPD test matrices (.mtx)");
  auto kind = cli.add_string("kind", "laplacian2d",
                             "laplacian2d|laplacian3d|sdd|spd|gram");
  auto out = cli.add_string("out", "", "output path (.mtx), required");
  auto nx = cli.add_int("nx", 32, "grid x (laplacian kinds)");
  auto ny = cli.add_int("ny", 32, "grid y (laplacian kinds)");
  auto nz = cli.add_int("nz", 16, "grid z (laplacian3d)");
  auto n = cli.add_int("n", 2000, "dimension (sdd/spd)");
  auto terms = cli.add_int("terms", 3000, "gram: vocabulary size");
  auto documents = cli.add_int("documents", 12000, "gram: corpus size");
  auto topics = cli.add_int("topics", 100, "gram: topic count");
  auto ridge = cli.add_double("ridge", 0.5, "gram: ridge");
  auto seed = cli.add_int("seed", 1, "generator seed");

  try {
    cli.parse(argc, argv);
    require(!out.value().empty(), "missing required --out");

    CsrMatrix a;
    if (*kind == "laplacian2d") {
      a = laplacian_2d(*nx, *ny);
    } else if (*kind == "laplacian3d") {
      a = laplacian_3d(*nx, *ny, *nz);
    } else if (*kind == "sdd") {
      RandomBandedOptions opt;
      opt.n = *n;
      opt.seed = static_cast<std::uint64_t>(*seed);
      a = random_sdd(opt);
    } else if (*kind == "spd") {
      RandomSpdOptions opt;
      opt.n = *n;
      opt.seed = static_cast<std::uint64_t>(*seed);
      a = random_spd_product(opt);
    } else if (*kind == "gram") {
      SocialGramOptions opt;
      opt.terms = *terms;
      opt.documents = *documents;
      opt.topics = *topics;
      opt.ridge = *ridge;
      opt.seed = static_cast<std::uint64_t>(*seed);
      a = make_social_gram(opt).gram;
    } else {
      throw Error("unknown --kind");
    }

    write_matrix_market_file(*out, a);
    std::cerr << "wrote " << *out << ": " << a.rows() << " x " << a.cols()
              << ", " << a.nnz() << " nonzeros\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
