#include "asyrgs/gen/random_spd.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {

namespace {

/// Magnitude in [0.1, 1] with random sign.
double random_offdiag(Xoshiro256& rng) {
  const double mag = 0.1 + 0.9 * uniform_real(rng);
  return (rng() & 1u) ? mag : -mag;
}

}  // namespace

CsrMatrix random_sdd(const RandomBandedOptions& opt) {
  require(opt.n > 0, "random_sdd: n must be positive");
  require(opt.offdiag_per_row >= 0 && opt.bandwidth >= 1,
          "random_sdd: bad sparsity parameters");
  Xoshiro256 rng(opt.seed);

  // Sample the strictly-lower off-diagonal pattern; symmetrize; then set the
  // diagonal from the assembled row sums to guarantee strict dominance.
  std::vector<std::map<index_t, double>> rows(
      static_cast<std::size_t>(opt.n));
  for (index_t i = 0; i < opt.n; ++i) {
    // Half the target count below the diagonal (the mirror supplies the rest).
    const index_t tries = (opt.offdiag_per_row + 1) / 2;
    for (index_t t = 0; t < tries; ++t) {
      const index_t lo = std::max<index_t>(0, i - opt.bandwidth);
      if (lo >= i) continue;
      const index_t j = lo + uniform_index(rng, i - lo);
      const double v = random_offdiag(rng);
      rows[i][j] += v;
      rows[j][i] += v;
    }
  }

  CooBuilder b(opt.n, opt.n);
  for (index_t i = 0; i < opt.n; ++i) {
    double off_sum = 0.0;
    for (const auto& [j, v] : rows[i]) {
      b.add(i, j, v);
      off_sum += std::abs(v);
    }
    b.add(i, i, (1.0 + opt.dominance_margin) * off_sum + opt.dominance_margin);
  }
  return b.to_csr();
}

CsrMatrix random_spd_product(const RandomSpdOptions& opt) {
  require(opt.n > 0, "random_spd_product: n must be positive");
  require(opt.ridge > 0.0, "random_spd_product: ridge must be positive");
  Xoshiro256 rng(opt.seed);

  // L: unit-ish lower triangular with banded random entries.
  std::vector<std::vector<std::pair<index_t, double>>> l_rows(
      static_cast<std::size_t>(opt.n));
  for (index_t i = 0; i < opt.n; ++i) {
    auto& row = l_rows[i];
    for (index_t t = 0; t < opt.factor_entries_per_row; ++t) {
      const index_t lo = std::max<index_t>(0, i - opt.bandwidth);
      if (lo >= i) break;
      const index_t j = lo + uniform_index(rng, i - lo);
      row.emplace_back(j, 0.5 * random_offdiag(rng));
    }
    row.emplace_back(i, 0.75 + 0.5 * uniform_real(rng));
    std::sort(row.begin(), row.end());
    // Merge duplicate columns produced by the random sampling.
    std::vector<std::pair<index_t, double>> merged;
    for (const auto& e : row) {
      if (!merged.empty() && merged.back().first == e.first)
        merged.back().second += e.second;
      else
        merged.push_back(e);
    }
    row = std::move(merged);
  }

  // A = L L^T + ridge I assembled row by row: A_ik = <L_i, L_k> over shared
  // columns.  Rows of L are short, so accumulate via a sparse outer pass:
  // for every column c of L, all rows containing c contribute pairwise.
  std::vector<std::vector<std::pair<index_t, double>>> col_hits(
      static_cast<std::size_t>(opt.n));
  for (index_t i = 0; i < opt.n; ++i)
    for (const auto& [j, v] : l_rows[i]) col_hits[j].emplace_back(i, v);

  CooBuilder b(opt.n, opt.n);
  for (index_t c = 0; c < opt.n; ++c) {
    const auto& hits = col_hits[c];
    for (std::size_t p = 0; p < hits.size(); ++p) {
      for (std::size_t q = p; q < hits.size(); ++q) {
        const double v = hits[p].second * hits[q].second;
        if (hits[p].first == hits[q].first)
          b.add(hits[p].first, hits[p].first, v);
        else
          b.add_symmetric(std::max(hits[p].first, hits[q].first),
                          std::min(hits[p].first, hits[q].first), v);
      }
    }
  }
  for (index_t i = 0; i < opt.n; ++i) b.add(i, i, opt.ridge);
  return b.to_csr();
}

CsrMatrix block_coupled_spd(index_t n, index_t block, double c) {
  require(n > 0 && block >= 2 && block <= n,
          "block_coupled_spd: need 2 <= block <= n");
  require(c > 0.0 && c < 1.0, "block_coupled_spd: c must be in (0, 1)");
  CooBuilder builder(n, n);
  for (index_t base = 0; base < n; base += block) {
    const index_t hi = std::min(base + block, n);
    for (index_t i = base; i < hi; ++i) {
      for (index_t j = base; j < hi; ++j)
        builder.add(i, j, i == j ? 1.0 : c);
    }
  }
  return builder.to_csr();
}

}  // namespace asyrgs
