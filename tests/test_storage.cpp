// Compact CSR storage policy suite (PR 7): int32 column indices and
// mixed-precision values, resolved at handle preparation and plumbed
// through every kernel.
//
//  (a) Golden bit-exactness: deterministic pinned-scan solves through the
//      default CsrMatrix interface hash to the exact values captured on the
//      pre-refactor code — the automatic kAuto -> int32 narrowing changes
//      no double and no association, across 1/2/4 workers x sync modes.
//  (b) The overflow guard, by shape arithmetic alone: resolve_storage_policy
//      at a > 2^31 widest coordinate, convert_storage's throw, and the
//      Matrix Market loader's declared-dimension check — none of which
//      require materializing a multi-gigabyte operator.
//  (c) Policy equivalence and surfacing: int32/double storage reproduces
//      full-width solves bit for bit and reports itself in
//      SolveOutcome::storage_used / ProblemStats::storage / description;
//      the Krylov outer methods stay full width.
//  (d) Mixed precision: float values on both social-Gram conditioning
//      regimes converge to within a bounded factor of the double solve —
//      the storage trade never changes the accumulation type.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <sstream>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/sparse/io.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {
namespace {

/// FNV-1a over the byte representation of the iterate — the same digest the
/// pre-refactor capture used, so the constants below gate bit-for-bit
/// equality of every double in x.
std::uint64_t fnv1a(const std::vector<double>& x) {
  std::uint64_t h = 1469598103934665603ull;
  for (double v : x) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

/// Same block-diagonal construction as test_problem.cpp: blocks align with
/// every tested worker partition, so owner-computes runs are deterministic
/// at any team size.
CsrMatrix block_diag_tridiagonal(int blocks, index_t block_size) {
  const index_t n = blocks * block_size;
  CooBuilder builder(n, n);
  for (int blk = 0; blk < blocks; ++blk) {
    const index_t lo = blk * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      builder.add(lo + i, lo + i, 2.0);
      if (i + 1 < block_size) {
        builder.add(lo + i, lo + i + 1, -1.0);
        builder.add(lo + i + 1, lo + i, -1.0);
      }
    }
  }
  return builder.to_csr();
}

const SyncMode kSyncModes[] = {SyncMode::kFreeRunning,
                               SyncMode::kBarrierPerSweep,
                               SyncMode::kTimedBarrier};

// ---------------------------------------------------------------------------
// (a) Golden bit-exactness against the pre-refactor pinned path
// ---------------------------------------------------------------------------
//
// The hashes were captured by running exactly these recipes on the commit
// preceding the storage refactor (full-width CsrMatrix, no narrowing).
// Today the same free-function calls route through an SpdProblem handle
// whose kAuto policy narrows to int32/double — the test is the gate that
// the narrowing is invisible: same indices addressed, same doubles, same
// association, so the iterate is byte-identical.

TEST(StorageGolden, SharedScopeSingleWorkerMatchesPreRefactor) {
  constexpr std::uint64_t kGolden = 0x6578521c82f8302dull;
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);
  for (SyncMode sync : kSyncModes) {
    AsyncRgsOptions opt;
    opt.sweeps = 25;
    opt.seed = 17;
    opt.workers = 1;
    opt.sync = sync;
    opt.sync_interval_seconds = 0.002;
    std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
    async_rgs_solve(pool, a, b, x, opt);
    EXPECT_EQ(fnv1a(x), kGolden) << "sync mode " << static_cast<int>(sync);
  }
}

TEST(StorageGolden, OwnerComputesMultiWorkerMatchesPreRefactor) {
  struct Case {
    int workers;
    std::uint64_t hash;
  };
  const Case cases[] = {{1, 0x2ec0494299f96491ull},
                        {2, 0xf942a77f57fa9520ull},
                        {4, 0x875f6e413e210de5ull}};
  ThreadPool pool(4);
  const CsrMatrix a = block_diag_tridiagonal(4, 12);
  const std::vector<double> b = random_vector(a.rows(), 5);
  for (SyncMode sync : kSyncModes) {
    for (const Case& c : cases) {
      AsyncRgsOptions opt;
      opt.sweeps = 30;
      opt.seed = 23;
      opt.workers = c.workers;
      opt.sync = sync;
      opt.scope = RandomizationScope::kOwnerComputes;
      opt.sync_interval_seconds = 0.002;
      std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
      async_rgs_solve(pool, a, b, x, opt);
      EXPECT_EQ(fnv1a(x), c.hash)
          << "workers " << c.workers << " sync " << static_cast<int>(sync);
    }
  }
}

// ---------------------------------------------------------------------------
// (b) Overflow guard by shape arithmetic
// ---------------------------------------------------------------------------

constexpr index_t kTooWide = (index_t{1} << 31) + 10;  // > int32 range

constexpr nnz_t kSmallNnz = 1000;  // well within every guard

TEST(StorageOverflow, ResolvePolicyFallsBackAboveInt32Range) {
  bool fell_back = true;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kAuto, kTooWide, kSmallNnz,
                                   &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_FALSE(fell_back) << "kAuto staying wide is not a fallback";

  fell_back = false;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt32Double, kTooWide,
                                   kSmallNnz, &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_TRUE(fell_back);

  fell_back = false;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt32Mixed, kTooWide,
                                   kSmallNnz, &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_TRUE(fell_back);

  fell_back = true;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt64Double, kTooWide,
                                   kSmallNnz, &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_FALSE(fell_back);
}

TEST(StorageOverflow, ResolvePolicyNarrowsWhenShapeFits) {
  bool fell_back = true;
  EXPECT_EQ(
      resolve_storage_policy(StorageMode::kAuto, 1000, kSmallNnz, &fell_back),
      StoragePolicy::kInt32Double);
  EXPECT_FALSE(fell_back);
  // kAuto never picks mixed — float values change the arithmetic and must
  // be an explicit request.
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt32Mixed, 1000, kSmallNnz),
            StoragePolicy::kInt32Mixed);
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt64Double, 1000, kSmallNnz),
            StoragePolicy::kInt64Double);
  // Boundary: int32 admits exactly 2^31 columns (indices 0 .. 2^31 - 1).
  EXPECT_EQ(
      resolve_storage_policy(StorageMode::kAuto, index_t{1} << 31, kSmallNnz),
      StoragePolicy::kInt32Double);
  EXPECT_EQ(resolve_storage_policy(StorageMode::kAuto,
                                   (index_t{1} << 31) + 1, kSmallNnz),
            StoragePolicy::kInt64Double);
}

TEST(StorageOverflow, ResolvePolicyGuardsNnzAtTheInt32Edge) {
  // A dimension that fits int32 must still refuse to narrow when the
  // nonzero count overflows it — nnz-derived arithmetic on the compact
  // copy stays inside 32 bits only up to 2^31 - 1 entries.
  constexpr nnz_t kEdge = (nnz_t{1} << 31) - 1;  // last admissible count
  bool fell_back = true;
  EXPECT_EQ(
      resolve_storage_policy(StorageMode::kAuto, 1000, kEdge, &fell_back),
      StoragePolicy::kInt32Double);
  EXPECT_FALSE(fell_back);

  fell_back = true;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kAuto, 1000, kEdge + 1,
                                   &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_FALSE(fell_back) << "kAuto staying wide is not a fallback";

  fell_back = false;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt32Double, 1000, kEdge + 1,
                                   &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_TRUE(fell_back);

  fell_back = false;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt32Mixed, 1000, kEdge + 1,
                                   &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_TRUE(fell_back);

  fell_back = true;
  EXPECT_EQ(resolve_storage_policy(StorageMode::kInt64Double, 1000, kEdge + 1,
                                   &fell_back),
            StoragePolicy::kInt64Double);
  EXPECT_FALSE(fell_back);
}

TEST(StorageOverflow, ConvertStorageThrowsBeyondIndexWidth) {
  // 2 rows x (2^31 + 10) columns with one stored entry per row: row_ptr
  // arithmetic makes the shape wide while the arrays stay tiny.
  const CsrMatrix wide(2, kTooWide, {0, 1, 2}, {0, 5}, {1.0, 2.0});
  EXPECT_THROW((convert_storage<std::int32_t, double>(wide)), Error);
  EXPECT_THROW((convert_storage<std::int32_t, float>(wide)), Error);
  // Full width accepts the same shape.
  const CsrMatrix same = convert_storage<std::int64_t, double>(wide);
  EXPECT_EQ(same.cols(), kTooWide);
  EXPECT_FALSE(index_width_fits<std::int32_t>(wide.cols()));
}

TEST(StorageOverflow, MatrixMarketLoaderRejectsWideDeclarationEarly) {
  // The declared dimensions alone must trip the guard — before any entry
  // is parsed, so a malformed multi-gigabyte file fails fast.
  std::istringstream wide(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2147483658 2\n"
      "1 1 1.0\n"
      "2 6 2.0\n");
  EXPECT_THROW((read_matrix_market_as<std::int32_t, double>(wide)), Error);
  std::istringstream wide_again(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2147483658 2\n"
      "1 1 1.0\n"
      "2 6 2.0\n");
  const CsrMatrix full = read_matrix_market(wide_again);
  EXPECT_EQ(full.cols(), kTooWide);
}

// ---------------------------------------------------------------------------
// (c) Policy equivalence and surfacing
// ---------------------------------------------------------------------------

TEST(StoragePolicyTest, AutoNarrowsAndSurfacesEverywhere) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  SpdProblem problem(pool, a);
  EXPECT_EQ(problem.storage(), StoragePolicy::kInt32Double);
  EXPECT_EQ(problem.stats().storage, StoragePolicy::kInt32Double);
  EXPECT_EQ(problem.stats().storage_fallbacks, 0);

  const std::vector<double> b = random_vector(a.rows(), 11);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  SolveControls controls;
  controls.sweeps = 10;
  controls.workers = 1;
  const SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_EQ(out.storage_used, StoragePolicy::kInt32Double);
  EXPECT_NE(out.description.find("int32_double storage"), std::string::npos)
      << out.description;
}

TEST(StoragePolicyTest, ExplicitFullWidthStaysDefault) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  SpdProblem problem(pool, a, /*check_input=*/true, StorageMode::kInt64Double);
  EXPECT_EQ(problem.storage(), StoragePolicy::kInt64Double);

  const std::vector<double> b = random_vector(a.rows(), 11);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  SolveControls controls;
  controls.sweeps = 10;
  controls.workers = 1;
  const SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_EQ(out.storage_used, StoragePolicy::kInt64Double);
  EXPECT_EQ(out.description.find("storage"), std::string::npos)
      << out.description;
}

TEST(StoragePolicyTest, Int32SolveBitIdenticalToFullWidth) {
  ThreadPool pool(4);
  const CsrMatrix a = block_diag_tridiagonal(4, 12);
  const std::vector<double> b = random_vector(a.rows(), 7);
  SpdProblem wide(pool, a, true, StorageMode::kInt64Double);
  SpdProblem narrow(pool, a, true, StorageMode::kInt32Double);
  for (int workers : {1, 2, 4}) {
    SolveControls controls;
    controls.sweeps = 20;
    controls.seed = 29;
    controls.workers = workers;
    controls.scope = RandomizationScope::kOwnerComputes;
    controls.sync = SyncMode::kBarrierPerSweep;
    std::vector<double> x_wide(static_cast<std::size_t>(a.rows()), 0.0);
    std::vector<double> x_narrow = x_wide;
    wide.solve(b, x_wide, controls);
    narrow.solve(b, x_narrow, controls);
    EXPECT_EQ(fnv1a(x_wide), fnv1a(x_narrow)) << workers << " workers";
  }
}

TEST(StoragePolicyTest, KrylovOuterMethodsStayFullWidth) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  SpdProblem problem(pool, a);  // kAuto -> int32 for the asynchronous paths
  const std::vector<double> b = random_vector(a.rows(), 13);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  SolveControls controls;
  controls.method = SpdMethod::kCg;
  controls.rel_tol = 1e-10;
  const SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_TRUE(out.converged());
  EXPECT_EQ(out.storage_used, StoragePolicy::kInt64Double);
}

TEST(StoragePolicyTest, BlockSolveRunsNarrowStorage) {
  ThreadPool pool(2);
  const CsrMatrix a = block_diag_tridiagonal(4, 12);
  SpdProblem wide(pool, a, true, StorageMode::kInt64Double);
  SpdProblem narrow(pool, a, true, StorageMode::kInt32Double);
  MultiVector ones(a.rows(), 3);
  ones.fill(1.0);
  const MultiVector b = rhs_from_solution(a, ones);
  SolveControls controls;
  controls.sweeps = 25;
  controls.seed = 31;
  controls.workers = 1;
  controls.scan = ScanMode::kReassociated;  // k = 3 <= 4: honored
  MultiVector x_wide(a.rows(), 3);
  MultiVector x_narrow(a.rows(), 3);
  const SolveOutcome out_wide = wide.solve(b, x_wide, controls);
  const SolveOutcome out_narrow = narrow.solve(b, x_narrow, controls);
  EXPECT_EQ(out_wide.scan_executed, ScanMode::kReassociated);
  EXPECT_EQ(out_narrow.scan_executed, ScanMode::kReassociated);
  EXPECT_EQ(out_narrow.storage_used, StoragePolicy::kInt32Double);
  for (index_t k = 0; k < 3; ++k)
    for (index_t i = 0; i < a.rows(); ++i)
      EXPECT_DOUBLE_EQ(x_wide.at(i, k), x_narrow.at(i, k));
}

TEST(StoragePolicyTest, LsqHandleNarrowsBothFactors) {
  ThreadPool pool(2);
  const SocialGramOptions small_corpus = [] {
    SocialGramOptions o;
    o.terms = 96;
    o.documents = 512;
    o.topics = 0;
    return o;
  }();
  const SocialGram sys = make_social_gram(small_corpus);
  LsqProblem problem(pool, sys.factor);
  EXPECT_EQ(problem.storage(), StoragePolicy::kInt32Double);

  const std::vector<double> b = random_vector(sys.factor.rows(), 19);
  std::vector<double> x(static_cast<std::size_t>(sys.factor.cols()), 0.0);
  SolveControls controls;
  controls.sweeps = 60;
  controls.step_size = 0.95;
  controls.sync = SyncMode::kBarrierPerSweep;
  controls.rel_tol = 1e-6;
  controls.workers = 2;
  const SolveOutcome out = problem.solve(b, x, controls);
  EXPECT_EQ(out.storage_used, StoragePolicy::kInt32Double);
  EXPECT_LT(out.relative_residual, 1e-4);
}

TEST(StoragePolicyTest, GeneratorsEmitIdenticalStructureAtEveryWidth) {
  const CsrMatrix wide = laplacian_2d(7, 5);
  const CsrMatrix32 narrow = laplacian_2d_as<std::int32_t, double>(7, 5);
  const CsrMatrixMixed mixed = laplacian_2d_as<std::int32_t, float>(7, 5);
  ASSERT_EQ(wide.nnz(), narrow.nnz());
  ASSERT_EQ(wide.nnz(), mixed.nnz());
  EXPECT_EQ(wide.row_ptr(), narrow.row_ptr());
  for (std::size_t t = 0; t < wide.col_idx().size(); ++t) {
    EXPECT_EQ(wide.col_idx()[t],
              static_cast<index_t>(narrow.col_idx()[t]));
    EXPECT_EQ(wide.values()[t], narrow.values()[t]);
    // Stencil coefficients are small integers: exact in float.
    EXPECT_EQ(wide.values()[t], static_cast<double>(mixed.values()[t]));
  }
}

TEST(StoragePolicyTest, LoaderRoundTripsNarrowWidths) {
  const CsrMatrix a = laplacian_2d(5, 4);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in32(out.str());
  const CsrMatrix32 a32 = read_matrix_market_as<std::int32_t, double>(in32);
  ASSERT_EQ(a32.rows(), a.rows());
  ASSERT_EQ(a32.nnz(), a.nnz());
  for (std::size_t t = 0; t < a.values().size(); ++t) {
    EXPECT_EQ(static_cast<index_t>(a32.col_idx()[t]), a.col_idx()[t]);
    EXPECT_EQ(a32.values()[t], a.values()[t]);
  }
}

// ---------------------------------------------------------------------------
// (d) Mixed precision on both Gram conditioning regimes
// ---------------------------------------------------------------------------
//
// Float storage perturbs each matrix entry by at most one half-ulp of
// float (relative 2^-24), so the solved system is A + dA with
// ||dA|| / ||A|| ~ 1e-7 and the attainable relative residual degrades by
// a conditioning-dependent factor.  The test pins a generous envelope:
// mixed must track the double solve within 3 orders of magnitude and
// still make real progress on its own.

void expect_mixed_tracks_double(const SocialGramOptions& opt, double floor) {
  ThreadPool pool(4);
  const SocialGram sys = make_social_gram(opt);
  SpdProblem exact(pool, sys.gram, /*check_input=*/false,
                   StorageMode::kInt64Double);
  SpdProblem mixed(pool, sys.gram, /*check_input=*/false,
                   StorageMode::kInt32Mixed);
  EXPECT_EQ(mixed.storage(), StoragePolicy::kInt32Mixed);

  const std::vector<double> b = random_vector(sys.gram.rows(), 37);
  SolveControls controls;
  controls.sweeps = 40;
  controls.sync = SyncMode::kBarrierPerSweep;
  controls.workers = 2;
  controls.seed = 41;

  std::vector<double> x_exact(static_cast<std::size_t>(sys.gram.rows()), 0.0);
  std::vector<double> x_mixed = x_exact;
  const SolveOutcome out_exact = exact.solve(b, x_exact, controls);
  const SolveOutcome out_mixed = mixed.solve(b, x_mixed, controls);
  EXPECT_EQ(out_mixed.storage_used, StoragePolicy::kInt32Mixed);
  EXPECT_NE(out_mixed.description.find("int32_mixed storage"),
            std::string::npos);

  const double r_exact = relative_residual(sys.gram, b, x_exact);
  const double r_mixed = relative_residual(sys.gram, b, x_mixed);
  // Real progress on its own terms...
  EXPECT_LT(r_mixed, floor);
  // ...and within the envelope of the double run (which may itself be
  // near the float-perturbation floor, hence the additive term).
  EXPECT_LT(r_mixed, 1e3 * r_exact + 1e-5);
}

TEST(StorageMixed, TracksDoubleOnWellConditionedGram) {
  SocialGramOptions opt;
  opt.terms = 256;
  opt.documents = 2048;
  opt.topics = 0;  // near-orthogonal columns: well-conditioned
  expect_mixed_tracks_double(opt, 1e-3);
}

TEST(StorageMixed, TracksDoubleOnIllConditionedGram) {
  SocialGramOptions opt;
  opt.terms = 256;
  opt.documents = 2048;
  opt.topics = 16;  // topical correlation: ill-conditioned regime
  expect_mixed_tracks_double(opt, 1e-1);
}

TEST(StorageMixed, ExplicitRequestSurvivesServicelessClone) {
  ThreadPool pool_a(2);
  ThreadPool pool_b(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  SpdProblem original(pool_a, a, true, StorageMode::kInt32Mixed);
  SpdProblem clone(pool_b, original);
  EXPECT_EQ(clone.storage(), StoragePolicy::kInt32Mixed);
  EXPECT_EQ(clone.stats().storage, StoragePolicy::kInt32Mixed);

  const std::vector<double> b = random_vector(a.rows(), 43);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 0.0);
  SolveControls controls;
  controls.sweeps = 15;
  const SolveOutcome out = clone.solve(b, x, controls);
  EXPECT_EQ(out.storage_used, StoragePolicy::kInt32Mixed);
}

}  // namespace
}  // namespace asyrgs
