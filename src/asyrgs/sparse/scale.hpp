// Symmetric diagonal (Jacobi) scaling to a unit-diagonal system.
//
// The paper's analysis assumes A has a unit diagonal, and Section 3
// ("Non-Unit Diagonal") shows this loses no generality: given B y = z with
// SPD B, let D = diag(B)^{-1/2}; then A = D B D has unit diagonal, the
// scaled system is A x = D z, and the iterates correspond exactly via
// y_j = D x_j with ||x_j - x*||_A = ||y_j - y*||_B.  This module implements
// that transformation and its inverse.
#pragma once

#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// The D = diag(B)^{-1/2} scaling of one SPD matrix, with helpers to move
/// right-hand sides and solutions between the original and scaled systems.
class UnitDiagonalScaling {
 public:
  /// Computes D from B; requires a square matrix with strictly positive
  /// diagonal (a necessary condition for SPD).
  explicit UnitDiagonalScaling(const CsrMatrix& b);

  /// A = D B D (unit diagonal up to rounding).
  [[nodiscard]] CsrMatrix scale_matrix(const CsrMatrix& b) const;

  /// Scaled right-hand side D z.
  [[nodiscard]] std::vector<double> scale_rhs(const std::vector<double>& z) const;
  [[nodiscard]] MultiVector scale_rhs(const MultiVector& z) const;

  /// Recovers the original-system solution y = D x from the scaled iterate.
  [[nodiscard]] std::vector<double> unscale_solution(
      const std::vector<double>& x) const;
  [[nodiscard]] MultiVector unscale_solution(const MultiVector& x) const;

  /// Maps an original-system initial guess y into the scaled system,
  /// x = D^{-1} y.
  [[nodiscard]] std::vector<double> scale_solution(
      const std::vector<double>& y) const;

  /// The diagonal of D.
  [[nodiscard]] const std::vector<double>& d() const noexcept { return d_; }

 private:
  std::vector<double> d_;  // D_ii = 1 / sqrt(B_ii)
};

/// True when every diagonal entry of A equals 1 within `tol`.
[[nodiscard]] bool has_unit_diagonal(const CsrMatrix& a, double tol = 1e-12);

}  // namespace asyrgs
