// PRNG tests: Philox4x32-10 known-answer vectors, random-access semantics,
// distribution-helper sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

// --- Philox4x32-10 known-answer tests (Random123 kat_vectors) ---------------

TEST(Philox, KnownAnswerZeros) {
  const Philox4x32::Block out =
      Philox4x32::apply({0u, 0u, 0u, 0u}, {0u, 0u});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const Philox4x32::Block out = Philox4x32::apply(
      {0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
      {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, KnownAnswerPiDigits) {
  const Philox4x32::Block out = Philox4x32::apply(
      {0x243f6a88u, 0x85a308d3u, 0x13198a2eu, 0x03707344u},
      {0xa4093822u, 0x299f31d0u});
  EXPECT_EQ(out[0], 0xd16cfe09u);
  EXPECT_EQ(out[1], 0x94fdccebu);
  EXPECT_EQ(out[2], 0x5001e420u);
  EXPECT_EQ(out[3], 0x24126ea1u);
}

TEST(Philox, IsPureFunctionOfKeyAndCounter) {
  const Philox4x32 gen(12345);
  const auto a = gen.block(7, 42);
  const auto b = gen.block(7, 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, gen.block(7, 43));
  EXPECT_NE(a, gen.block(8, 42));
  EXPECT_NE(a, Philox4x32(54321).block(7, 42));
}

TEST(Philox, RandomAccessMatchesAnyVisitOrder) {
  const Philox4x32 gen(999);
  std::vector<std::uint64_t> forward(64);
  for (std::uint64_t i = 0; i < 64; ++i) forward[i] = gen.at(i);
  for (std::uint64_t i = 64; i-- > 0;) EXPECT_EQ(gen.at(i), forward[i]);
}

TEST(Philox, AdjacentIndicesShareBlockButDiffer) {
  const Philox4x32 gen(5);
  // at(2k) and at(2k+1) come from the same 128-bit block; must still differ.
  for (std::uint64_t k = 0; k < 32; ++k)
    EXPECT_NE(gen.at(2 * k), gen.at(2 * k + 1));
}

TEST(Philox, IndexAtStaysInRange) {
  const Philox4x32 gen(31);
  for (index_t n : {1, 2, 3, 7, 100, 12345}) {
    for (std::uint64_t i = 0; i < 500; ++i) {
      const index_t r = gen.index_at(i, n);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, n);
    }
  }
}

TEST(Philox, IndexAtIsRoughlyUniform) {
  const Philox4x32 gen(77);
  const index_t n = 16;
  const int draws = 160000;
  std::vector<int> hist(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < draws; ++i) hist[gen.index_at(i, n)]++;
  const double expected = static_cast<double>(draws) / n;
  for (int count : hist) {
    // 6-sigma band for a binomial(draws, 1/16).
    EXPECT_NEAR(count, expected, 6.0 * std::sqrt(expected));
  }
}

TEST(Philox, RealAtInHalfOpenUnitInterval) {
  const Philox4x32 gen(2024);
  double mean = 0.0;
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const double u = gen.real_at(i);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
  }
  mean /= draws;
  EXPECT_NEAR(mean, 0.5, 0.01);
}

// --- SplitMix64 / Xoshiro256** ----------------------------------------------

TEST(SplitMix64, ReferenceValues) {
  // First three outputs for seed 1234567 from the reference implementation
  // contract: splitmix64 of successive +golden-gamma states is stateless,
  // so we only check determinism and dispersion here.
  SplitMix64 a(42), b(42), c(43);
  const auto a1 = a();
  EXPECT_EQ(a1, b());
  EXPECT_NE(a1, c());
}

TEST(SplitMix64, AvalancheOnNeighbouringSeeds) {
  // Mixed outputs of adjacent inputs should differ in ~32 of 64 bits.
  int total_diff_bits = 0;
  for (std::uint64_t s = 0; s < 64; ++s) {
    const std::uint64_t d = splitmix64(s) ^ splitmix64(s + 1);
    total_diff_bits += __builtin_popcountll(d);
  }
  EXPECT_GT(total_diff_bits, 64 * 20);
  EXPECT_LT(total_diff_bits, 64 * 44);
}

TEST(Xoshiro, DeterministicPerSeed) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 16; ++i) {
    const auto v = a();
    EXPECT_EQ(v, b());
  }
  bool any_diff = false;
  Xoshiro256 a2(7);
  for (int i = 0; i < 16; ++i) any_diff |= (a2() != c());
  EXPECT_TRUE(any_diff);
}

TEST(Xoshiro, LongJumpDecorrelatesStreams) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  b.long_jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LE(equal, 1);
}

TEST(Distributions, UniformRealMomentsAndRange) {
  Xoshiro256 rng(321);
  double mean = 0.0, var = 0.0;
  const int draws = 200000;
  for (int i = 0; i < draws; ++i) {
    const double u = uniform_real(rng);
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    mean += u;
    var += (u - 0.5) * (u - 0.5);
  }
  mean /= draws;
  var /= draws;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Distributions, UniformIndexCoversSupport) {
  Xoshiro256 rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(uniform_index(rng, 10));
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 9);
}

TEST(Distributions, NormalMoments) {
  Xoshiro256 rng(99);
  double mean = 0.0, var = 0.0;
  const int draws = 200000;
  std::vector<double> xs(draws);
  for (int i = 0; i < draws; ++i) xs[i] = normal(rng);
  for (double x : xs) mean += x;
  mean /= draws;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= draws;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

}  // namespace
}  // namespace asyrgs
