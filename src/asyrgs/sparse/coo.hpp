// Coordinate-format builder for assembling sparse matrices.
//
// Generators and file readers accumulate (i, j, value) triplets here and then
// convert to the immutable CSR format used by every kernel.  Duplicate
// entries are summed during conversion (finite-element style assembly).
#pragma once

#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

class CsrMatrix;

/// Mutable triplet accumulator.
class CooBuilder {
 public:
  /// Creates a builder for a rows x cols matrix.
  CooBuilder(index_t rows, index_t cols);

  /// Appends A(i, j) += value.
  void add(index_t i, index_t j, double value);

  /// Appends A(i, j) += value and, when i != j, A(j, i) += value.  Handy for
  /// assembling symmetric matrices from their lower triangle.
  void add_symmetric(index_t i, index_t j, double value);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t entries() const noexcept { return is_.size(); }

  /// Reserves space for `n` triplets.
  void reserve(std::size_t n);

  /// Converts to CSR with sorted column indices; duplicate coordinates are
  /// summed and exact-zero results are kept (structural nonzeros).
  [[nodiscard]] CsrMatrix to_csr() const;

 private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> is_;
  std::vector<index_t> js_;
  std::vector<double> vs_;
};

}  // namespace asyrgs
