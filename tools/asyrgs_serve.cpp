// asyrgs_serve — sharded serving driver over the SolverService front-end.
//
//   asyrgs_serve [--matrix A.mtx] [--shards 2] [--requests 16] [--clients 2]
//                [--mix spd|lsq|mixed] [--sweeps 8] [--tol 0]
//                [--threads-per-shard 0] [--seed 1]
//
// Loads an SPD Matrix Market operator (or generates a 2-D Laplacian when
// --matrix is omitted — self-contained smoke mode), builds a SolverService
// with the requested shard count, submits a stream of solve requests from
// several client threads (right-hand sides keyed by the request index), and
// prints aggregate throughput plus the per-shard serving balance.  Exit
// code 0 when every request completed successfully.
//
// This is the CLI face of the serving story: one analyzed matrix, many
// concurrent solves, scaled across pool shards (docs/API.md "SolverService").
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("asyrgs_serve", "serve a stream of solves across pool shards");
  auto matrix_path = cli.add_string(
      "matrix", "", "input matrix (.mtx); default: generated 24x24 Laplacian");
  auto shards = cli.add_int("shards", 2, "pool shards (concurrent lanes)");
  auto requests = cli.add_int("requests", 16, "total solve requests");
  auto clients = cli.add_int("clients", 2, "client threads submitting");
  auto mix = cli.add_string("mix", "mixed",
                            "request stream: spd | lsq | mixed");
  auto sweeps = cli.add_int("sweeps", 8, "sweep budget per request");
  auto tol = cli.add_double("tol", 0.0,
                            "relative residual target (0 = fixed budget; "
                            ">0 switches to barrier-per-sweep early stop)");
  auto lsq_tol = cli.add_double(
      "lsq-tol", -1.0,
      "normal-equations residual target for the lsq share of the stream "
      "(default: --tol; least squares conditions as the operator squared, "
      "so a looser target is usually appropriate)");
  auto threads_per_shard =
      cli.add_int("threads-per-shard", 0, "pool size per shard (0 = auto)");
  auto seed = cli.add_int("seed", 1, "base seed for request rhs/directions");

  try {
    cli.parse(argc, argv);
    require(*shards >= 1, "--shards must be >= 1");
    require(*requests >= 1, "--requests must be >= 1");
    require(*clients >= 1, "--clients must be >= 1");
    require(*mix == "spd" || *mix == "lsq" || *mix == "mixed",
            "unknown --mix (want spd|lsq|mixed)");

    const CsrMatrix a = matrix_path.value().empty()
                            ? laplacian_2d(24, 24)
                            : read_matrix_market_file(*matrix_path);
    if (matrix_path.value().empty())
      std::cerr << "matrix: generated laplacian2d 24x24\n";
    std::cerr << "matrix: " << a.rows() << " x " << a.cols() << ", " << a.nnz()
              << " nonzeros\n";
    const bool want_spd = *mix != "lsq";
    const bool want_lsq = *mix != "spd";
    require(!want_spd || a.square(),
            "--mix spd/mixed requires a square (SPD) matrix");

    ServiceOptions options;
    options.shards = static_cast<int>(*shards);
    options.workers_per_shard = static_cast<int>(*threads_per_shard);
    options.prepare_spd = want_spd;
    options.prepare_lsq = want_lsq;
    WallTimer prepare_timer;
    SolverService service(a, options);
    std::cerr << "prepared " << service.shards() << "-shard service ("
              << service.workers_per_shard() << " threads/shard) in "
              << prepare_timer.seconds() << " s\n";

    SolveControls controls;
    controls.sweeps = static_cast<int>(*sweeps);
    controls.rel_tol = *tol;
    if (*tol > 0.0 || *lsq_tol > 0.0)
      controls.sync = SyncMode::kBarrierPerSweep;  // tolerance needs sync

    const int n_requests = static_cast<int>(*requests);
    const int n_clients = static_cast<int>(*clients);
    std::vector<SolveTicket> tickets(static_cast<std::size_t>(n_requests));
    std::mutex tickets_mutex;

    WallTimer serve_timer;
    std::vector<std::thread> client_threads;
    for (int c = 0; c < n_clients; ++c) {
      client_threads.emplace_back([&, c] {
        // Client c submits requests c, c+n_clients, ... — a deterministic
        // partition so rerunning with more clients serves the same stream.
        for (int r = c; r < n_requests; r += n_clients) {
          SolveControls req = controls;
          req.seed = static_cast<std::uint64_t>(*seed) +
                     static_cast<std::uint64_t>(r);
          const std::vector<double> b =
              random_vector(a.rows(), req.seed + 1000003);
          const bool lsq = *mix == "lsq" || (*mix == "mixed" && r % 2 == 1);
          if (lsq) {
            req.step_size = 0.95;
            if (*lsq_tol >= 0.0) req.rel_tol = *lsq_tol;
          }
          SolveTicket t = lsq ? service.submit_least_squares(b, req)
                              : service.submit(b, req);
          const std::lock_guard<std::mutex> lock(tickets_mutex);
          tickets[static_cast<std::size_t>(r)] = t;
        }
      });
    }
    for (std::thread& t : client_threads) t.join();
    service.drain();
    const double seconds = serve_timer.seconds();

    int failures = 0;
    for (SolveTicket& t : tickets) {
      try {
        const SolveOutcome& out = t.wait();
        if (out.status == SolveStatus::kToleranceNotReached) ++failures;
      } catch (const std::exception& e) {
        std::cerr << "request failed: " << e.what() << "\n";
        ++failures;
      }
    }

    const ServiceStats stats = service.stats();
    std::cerr << "served " << stats.completed << " requests in " << seconds
              << " s (" << static_cast<double>(stats.completed) / seconds
              << " solves/s aggregate)\n";
    for (std::size_t s = 0; s < stats.shards.size(); ++s)
      std::cerr << "  shard " << s << ": " << stats.shards[s].served
                << " served\n";
    std::cerr << "analysis: " << stats.validation_passes
              << " validation passes, " << stats.transpose_builds
              << " transpose builds (whole service)\n";
    if (failures > 0) {
      std::cerr << failures << " request(s) failed\n";
      return 2;
    }
    std::cerr << "all requests completed\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
