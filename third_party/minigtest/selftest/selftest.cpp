// minigtest self-test: validates the shim's own machinery with a custom
// main() that runs filtered slices of the registry and checks the counters.
//
// Covered:
//   - passing expectations leave a test green
//   - failing EXPECT_* / ASSERT_* mark a test red (and ASSERT_* aborts the
//     rest of the test body)
//   - EXPECT_THROW catches the right type, flags the wrong type / no throw
//   - TEST_P × INSTANTIATE_TEST_SUITE_P expands to the expected test count,
//     including Combine() cross products, with per-instance parameter values
//   - --gtest_filter-style pattern selection picks the right subset
#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"

namespace {

int meta_failures = 0;

#define META_CHECK(condition)                                            \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::printf("META FAILURE at %s:%d: %s\n", __FILE__, __LINE__,     \
                  #condition);                                           \
      ++meta_failures;                                                   \
    }                                                                    \
  } while (0)

// --- subject tests (selected via filters from main, never run wholesale) ---

int g_assert_abort_probe = 0;

TEST(SelfPass, Arithmetic) {
  EXPECT_EQ(2 + 2, 4);
  EXPECT_NE(1, 2);
  EXPECT_LT(1.0, 2.0);
  EXPECT_NEAR(1.0, 1.0 + 1e-9, 1e-8);
  EXPECT_DOUBLE_EQ(0.1 + 0.2, 0.3);  // 4-ULP semantics, must pass
  EXPECT_TRUE(true);
  EXPECT_FALSE(false);
}

TEST(SelfPass, ThrowCaught) {
  EXPECT_THROW(throw std::runtime_error("boom"), std::runtime_error);
  EXPECT_THROW(throw std::out_of_range("oor"), std::logic_error);  // base ok
  EXPECT_NO_THROW(static_cast<void>(0));
}

TEST(SelfPass, StreamedMessageCompiles) {
  EXPECT_EQ(1, 1) << "context " << 42 << " more";
}

TEST(SelfFail, ExpectContinuesAfterFailure) {
  EXPECT_EQ(1, 2) << "intentional";
  EXPECT_EQ(3, 4) << "also intentional";  // must still execute
}

TEST(SelfFail, AssertAbortsTestBody) {
  ASSERT_TRUE(false) << "intentional fatal";
  g_assert_abort_probe = 1;  // must NOT run
}

TEST(SelfFail, ThrowWrongType) {
  EXPECT_THROW(throw std::runtime_error("boom"), std::out_of_range);
}

TEST(SelfFail, ThrowNothingThrown) {
  EXPECT_THROW(static_cast<void>(0), std::runtime_error);
}

TEST(SelfFail, DoubleEqIsNotSloppy) {
  EXPECT_DOUBLE_EQ(1.0, 1.0 + 1e-9);  // far beyond 4 ULPs, must fail
}

class SelfFixture : public ::testing::Test {
 protected:
  void SetUp() override { value_ = 7; }
  int value_ = 0;
};

TEST_F(SelfFixture, SetUpRan) { EXPECT_EQ(value_, 7); }

class SelfParam : public ::testing::TestWithParam<int> {};

std::vector<int> g_param_values_seen;

TEST_P(SelfParam, RecordsParam) {
  g_param_values_seen.push_back(GetParam());
  EXPECT_GE(GetParam(), 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SelfParam, ::testing::Values(2, 4, 8));

class SelfCombo
    : public ::testing::TestWithParam<std::tuple<std::int64_t, double>> {};

TEST_P(SelfCombo, TupleParamReadable) {
  EXPECT_GT(std::get<0>(GetParam()), 0);
  EXPECT_GT(std::get<1>(GetParam()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grid, SelfCombo,
                         ::testing::Combine(::testing::Values<std::int64_t>(
                                                10, 20),
                                            ::testing::Values(0.5, 1.5, 2.5)));

}  // namespace

int main() {
  ::testing::UnitTest& unit = ::testing::UnitTest::instance();

  // 1. Passing tests pass.
  int failed = unit.run("SelfPass.*:SelfFixture.*");
  META_CHECK(failed == 0);
  META_CHECK(unit.last_run_count() == 4);
  META_CHECK(unit.last_failed_count() == 0);

  // 2. Failing expectations actually fail, one red test each.
  failed = unit.run("SelfFail.*");
  META_CHECK(unit.last_run_count() == 5);
  META_CHECK(failed == 5);
  META_CHECK(g_assert_abort_probe == 0);  // ASSERT_* returned out of the body

  // 3. TEST_P instantiation: Values(2,4,8) -> 3 tests with those params.
  g_param_values_seen.clear();
  failed = unit.run("Sweep/SelfParam.*");
  META_CHECK(failed == 0);
  META_CHECK(unit.last_run_count() == 3);
  META_CHECK((g_param_values_seen == std::vector<int>{2, 4, 8}));

  // 4. Combine: 2 x 3 grid -> 6 tests.
  failed = unit.run("Grid/SelfCombo.*");
  META_CHECK(failed == 0);
  META_CHECK(unit.last_run_count() == 6);

  // 5. Filter selects exact tests, supports negatives.
  unit.run("SelfPass.Arithmetic");
  META_CHECK(unit.last_run_count() == 1);
  unit.run("SelfPass.*-SelfPass.Arithmetic");
  META_CHECK(unit.last_run_count() == 2);
  unit.run("DoesNotExist.*");
  META_CHECK(unit.last_run_count() == 0);

  if (meta_failures == 0) {
    std::printf("minigtest selftest: all meta-checks passed\n");
    return 0;
  }
  std::printf("minigtest selftest: %d meta-check(s) FAILED\n", meta_failures);
  return 1;
}
