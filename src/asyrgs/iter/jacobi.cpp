#include "asyrgs/iter/jacobi.hpp"

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

SolveReport jacobi_solve(ThreadPool& pool, const CsrMatrix& a,
                         const std::vector<double>& b, std::vector<double>& x,
                         const SolveOptions& options, int workers) {
  require(a.square(), "jacobi_solve: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "jacobi_solve: shape mismatch");
  const index_t n = a.rows();

  const std::vector<double> diag = a.diagonal();
  for (double d : diag)
    require(d != 0.0, "jacobi_solve: zero diagonal entry");

  WallTimer timer;
  SolveReport report;
  const double b_norm = nrm2(b);
  std::vector<double> r(static_cast<std::size_t>(n));

  for (int it = 1; it <= options.max_iterations; ++it) {
    // r = b - A x, then x += D^{-1} r, fused in one parallel pass per stage.
    spmv(pool, a, x.data(), r.data(), workers);
    pool.parallel_for(
        0, n,
        [&](index_t lo, index_t hi) {
          for (index_t i = lo; i < hi; ++i) {
            r[i] = b[i] - r[i];
            x[i] += r[i] / diag[i];
          }
        },
        workers);
    report.iterations = it;

    if (it % options.check_every == 0 || it == options.max_iterations) {
      // ||r||_2 was computed before the update; it is the residual of the
      // *previous* iterate, which is the standard practical check.
      const double rel =
          b_norm > 0.0 ? nrm2(r) / b_norm : nrm2(r);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
