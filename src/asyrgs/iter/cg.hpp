// (Preconditioned) conjugate gradients.
//
// The Krylov baseline of the paper's experiments.  CG converges in
// O(sqrt(kappa)) iterations versus O(kappa) sweeps for Gauss-Seidel-type
// methods, but each iteration requires global reductions — the
// synchronization cost that motivates asynchronous methods.  A *fixed*
// preconditioner may be supplied; for the randomized/asynchronous
// preconditioners use fcg_solve (flexible outer method) instead.
#pragma once

#include "asyrgs/iter/precond.hpp"
#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Runs preconditioned CG on SPD Ax = b starting from `x` (in place).
/// `precond` may be nullptr for plain CG.
SolveReport cg_solve(ThreadPool& pool, const CsrMatrix& a,
                     const std::vector<double>& b, std::vector<double>& x,
                     const SolveOptions& options = {},
                     Preconditioner* precond = nullptr, int workers = 0);

}  // namespace asyrgs
