// Topology-aware partitioned scheduling suite (PR 10).
//
// The locality layer replaced the paper's any-worker-any-coordinate draws
// with RCM-ordered, cache-line-aligned partitions and partition-keyed Philox
// streams.  These tests pin the contracts that layer promises:
//  (a) rcm_order is a valid, bandwidth-reducing permutation and
//      permute_symmetric applies it faithfully;
//  (b) cut_rows covers every row exactly once, aligns interior boundaries
//      to kPartitionAlignRows, and computes exact halos;
//  (c) PartitionedDirectionPlan mirrors the unpartitioned plan's
//      obligations: bulk fills reproduce the per-pick primitives, and the
//      direction multiset for a fixed (seed, partition, steal_rate) is
//      invariant across team sizes (the test_engine_determinism analogue);
//  (d) partitioned solves are bit-reproducible at one worker, converge on a
//      consistent Laplacian, surface the policy in SolveOutcome, inherit
//      the analysis through clones, and reject invalid controls;
//  (e) the Laplacian generators throw (rather than wrap) when grid products
//      or nonzero estimates overflow the index type, at all three
//      instantiated storage widths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>
#include <random>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/partition.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/sparse/coo.hpp"

namespace asyrgs {
namespace {

/// max |i - j| over the nonzeros of a.
index_t bandwidth_of(const CsrMatrix& a) {
  index_t bw = 0;
  for (index_t i = 0; i < a.rows(); ++i)
    for (const std::int64_t j : a.row_cols(i))
      bw = std::max(bw, std::abs(i - static_cast<index_t>(j)));
  return bw;
}

bool is_permutation_of_range(const std::vector<index_t>& perm, index_t n) {
  if (perm.size() != static_cast<std::size_t>(n)) return false;
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  for (const index_t p : perm) {
    if (p < 0 || p >= n || seen[static_cast<std::size_t>(p)]) return false;
    seen[static_cast<std::size_t>(p)] = 1;
  }
  return true;
}

// --- (a) RCM ordering and symmetric permutation ------------------------------

TEST(RcmOrder, IsAPermutation) {
  const CsrMatrix a = laplacian_2d(13, 7);
  const std::vector<index_t> perm = rcm_order(a);
  EXPECT_TRUE(is_permutation_of_range(perm, a.rows()));
}

TEST(RcmOrder, RecoversBandStructureFromAShuffledLaplacian) {
  // Scramble a 2D Laplacian with a random symmetric permutation, then ask
  // RCM to undo the damage: the reordered bandwidth must come back to the
  // same order of magnitude as the natural (nx-banded) ordering.
  const index_t nx = 16, ny = 16;
  const CsrMatrix natural = laplacian_2d(nx, ny);
  std::vector<index_t> shuffle(static_cast<std::size_t>(natural.rows()));
  std::iota(shuffle.begin(), shuffle.end(), index_t{0});
  std::mt19937 rng(12345);
  std::shuffle(shuffle.begin(), shuffle.end(), rng);
  const CsrMatrix scrambled = permute_symmetric(natural, shuffle);
  EXPECT_GT(bandwidth_of(scrambled), 4 * nx);  // the shuffle did damage

  const CsrMatrix recovered =
      permute_symmetric(scrambled, rcm_order(scrambled));
  EXPECT_LE(bandwidth_of(recovered), 2 * nx);
  EXPECT_EQ(recovered.nnz(), natural.nnz());
}

TEST(RcmOrder, IsDeterministic) {
  const CsrMatrix a = laplacian_3d(5, 4, 3);
  EXPECT_EQ(rcm_order(a), rcm_order(a));
}

TEST(RcmOrder, HandlesIsolatedVertices) {
  // A diagonal matrix is all isolated vertices — the ordering must still be
  // a permutation (the isolated shortcut path).
  CooBuilder b(6, 6);
  for (index_t i = 0; i < 6; ++i) b.add(i, i, 2.0);
  const CsrMatrix a = b.to_csr();
  EXPECT_TRUE(is_permutation_of_range(rcm_order(a), 6));
}

TEST(PermuteSymmetric, AppliesPAPTransposeEntrywise) {
  const CsrMatrix a = laplacian_2d(4, 3, 1.0, 2.5);
  std::vector<index_t> perm(static_cast<std::size_t>(a.rows()));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::reverse(perm.begin(), perm.end());
  const CsrMatrix p = permute_symmetric(a, perm);
  ASSERT_EQ(p.rows(), a.rows());
  ASSERT_EQ(p.nnz(), a.nnz());
  for (index_t i = 0; i < p.rows(); ++i)
    for (index_t j = 0; j < p.cols(); ++j)
      ASSERT_EQ(p.at(i, j), a.at(perm[static_cast<std::size_t>(i)],
                                 perm[static_cast<std::size_t>(j)]))
          << i << "," << j;
}

// --- (b) cut_rows: coverage, alignment, halos --------------------------------

TEST(CutRows, CoversAllRowsWithAlignedBoundaries) {
  const PartitionAnalysis analysis(laplacian_2d(32, 32));
  for (int count : {1, 2, 4, 7}) {
    const std::shared_ptr<const GraphPartition> cut = analysis.cut(count);
    ASSERT_EQ(cut->count(), count);
    EXPECT_EQ(cut->lo.front(), 0);
    EXPECT_EQ(cut->lo.back(), analysis.permuted().rows());
    for (int p = 0; p < count; ++p) {
      EXPECT_LE(cut->lo_of(p), cut->lo[static_cast<std::size_t>(p) + 1]);
      if (p > 0) {
        EXPECT_EQ(cut->lo_of(p) % kPartitionAlignRows, 0)
            << "interior boundary " << p << " unaligned";
      }
    }
  }
}

TEST(CutRows, BalancesNonzerosAcrossPartitions) {
  const PartitionAnalysis analysis(laplacian_2d(64, 64));
  const CsrMatrix& a = analysis.permuted();
  const int count = 8;
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(count);
  const nnz_t ideal = a.nnz() / count;
  for (int p = 0; p < count; ++p) {
    nnz_t nnz = 0;
    for (index_t i = cut->lo_of(p); i < cut->lo_of(p) + cut->size_of(p); ++i)
      nnz += a.row_nnz(i);
    // Alignment rounding moves boundaries by < kPartitionAlignRows rows;
    // with a 5-point stencil that is a small perturbation of the target.
    EXPECT_NEAR(static_cast<double>(nnz), static_cast<double>(ideal),
                static_cast<double>(ideal) * 0.25)
        << "partition " << p;
  }
}

TEST(CutRows, HalosAreExactlyTheAdjacentForeignRows) {
  const PartitionAnalysis analysis(laplacian_2d(24, 24));
  const CsrMatrix& a = analysis.permuted();
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(4);
  for (int p = 0; p < cut->count(); ++p) {
    const index_t lo = cut->lo_of(p);
    const index_t hi = lo + cut->size_of(p);
    // Reference halo: every foreign row adjacent to an owned row.
    std::vector<index_t> expected;
    for (index_t i = lo; i < hi; ++i)
      for (const std::int64_t jj : a.row_cols(i)) {
        const index_t j = static_cast<index_t>(jj);
        if (j < lo || j >= hi) expected.push_back(j);
      }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()),
                   expected.end());
    EXPECT_EQ(cut->halo[static_cast<std::size_t>(p)], expected)
        << "partition " << p;
  }
}

TEST(CutRows, TinyMatrixClampsCountAndAllowsEmptyPartitions) {
  const PartitionAnalysis analysis(laplacian_2d(4, 4));  // n = 16, align = 8
  const std::shared_ptr<const GraphPartition> many = analysis.cut(5);
  index_t total = 0;
  for (int p = 0; p < many->count(); ++p) total += many->size_of(p);
  EXPECT_EQ(total, 16);  // empty partitions allowed, coverage exact
  // Counts beyond the row count clamp rather than throw.
  const std::shared_ptr<const GraphPartition> clamped = analysis.cut(1000);
  EXPECT_LE(clamped->count(), 16);
  EXPECT_EQ(clamped->lo.back(), 16);
}

// --- (c) PartitionedDirectionPlan: fills, multiset invariance ----------------

TEST(PartitionedPlan, FillMatchesPick) {
  const PartitionAnalysis analysis(laplacian_2d(16, 16));
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(4);
  for (double steal : {0.0, 0.25}) {
    for (int team : {1, 2, 3, 4}) {
      const detail::PartitionedDirectionPlan plan(91, *cut, steal, team);
      for (int w = 0; w < team; ++w) {
        if (plan.per_sweep(w) == 0) continue;
        std::vector<index_t> got(500);
        plan.fill(w, 3, got.size(), got.data());
        for (std::size_t i = 0; i < got.size(); ++i)
          ASSERT_EQ(got[i], plan.pick(w, 3 + i))
              << "steal=" << steal << " team=" << team << " w=" << w;
        // fill_in_sweep takes within-sweep positions: t0 + count must stay
        // inside the worker's per-sweep quota (the engine's usage).
        const std::size_t in_sweep =
            static_cast<std::size_t>(plan.per_sweep(w)) - 1;
        plan.fill_in_sweep(w, 2, 1, in_sweep, got.data());
        for (std::size_t i = 0; i < in_sweep; ++i)
          ASSERT_EQ(got[i],
                    plan.pick_in_sweep(w, 2, 1 + static_cast<index_t>(i)))
              << "steal=" << steal << " team=" << team << " w=" << w;
      }
    }
  }
}

TEST(PartitionedPlan, PerSweepTilesTheDimension) {
  const PartitionAnalysis analysis(laplacian_2d(16, 16));
  for (int count : {1, 3, 4}) {
    const std::shared_ptr<const GraphPartition> cut = analysis.cut(count);
    for (int team : {1, 2, 3, 4, 5}) {
      const detail::PartitionedDirectionPlan plan(7, *cut, 0.0, team);
      index_t total = 0;
      for (int w = 0; w < team; ++w) total += plan.per_sweep(w);
      EXPECT_EQ(total, analysis.permuted().rows())
          << "count=" << count << " team=" << team;
    }
  }
}

TEST(PartitionedPlan, DirectionMultisetInvariantAcrossTeamSizes) {
  // The partitioned analogue of DirectionMultiset.PlanTilesTheSequentialStream:
  // partition-keyed streams make the union of all workers' draws a function
  // of (seed, partition, steal_rate) alone, not of the team size.
  const PartitionAnalysis analysis(laplacian_2d(16, 16));
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(4);
  const int sweeps = 6;
  for (double steal : {0.0, 0.25}) {
    std::vector<index_t> reference;
    for (int team : {1, 2, 4}) {
      const detail::PartitionedDirectionPlan plan(33, *cut, steal, team);
      std::vector<index_t> all;
      for (int w = 0; w < team; ++w) {
        const std::uint64_t mine = plan.total_updates(w, sweeps);
        if (mine == 0) continue;
        std::vector<index_t> picks(static_cast<std::size_t>(mine));
        plan.fill(w, 0, picks.size(), picks.data());
        all.insert(all.end(), picks.begin(), picks.end());
      }
      std::sort(all.begin(), all.end());
      if (team == 1)
        reference = all;
      else
        EXPECT_EQ(all, reference) << "steal=" << steal << " team=" << team;
    }
    EXPECT_EQ(reference.size(),
              static_cast<std::size_t>(sweeps) *
                  static_cast<std::size_t>(analysis.permuted().rows()));
  }
}

TEST(PartitionedPlan, ZeroStealNeverLeavesTheOwnedRange) {
  const PartitionAnalysis analysis(laplacian_2d(16, 16));
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(4);
  // team == count: worker w owns exactly partition w.
  const detail::PartitionedDirectionPlan plan(5, *cut, 0.0, 4);
  for (int w = 0; w < 4; ++w) {
    const index_t lo = cut->lo_of(w);
    const index_t hi = lo + cut->size_of(w);
    std::vector<index_t> picks(2000);
    plan.fill(w, 0, picks.size(), picks.data());
    for (const index_t r : picks) {
      ASSERT_GE(r, lo) << "w=" << w;
      ASSERT_LT(r, hi) << "w=" << w;
    }
  }
}

TEST(PartitionedPlan, StolenDrawsComeFromTheHalo) {
  const PartitionAnalysis analysis(laplacian_2d(16, 16));
  const std::shared_ptr<const GraphPartition> cut = analysis.cut(4);
  const detail::PartitionedDirectionPlan plan(5, *cut, 0.5, 4);
  int stolen = 0;
  for (int w = 0; w < 4; ++w) {
    const index_t lo = cut->lo_of(w);
    const index_t hi = lo + cut->size_of(w);
    const std::vector<index_t>& halo = cut->halo[static_cast<std::size_t>(w)];
    std::vector<index_t> picks(2000);
    plan.fill(w, 0, picks.size(), picks.data());
    for (const index_t r : picks) {
      if (r >= lo && r < hi) continue;
      ++stolen;
      ASSERT_TRUE(std::binary_search(halo.begin(), halo.end(), r))
          << "w=" << w << " r=" << r << " outside owned range and halo";
    }
  }
  // With steal_rate 0.5 and 8000 draws, steals are statistically certain.
  EXPECT_GT(stolen, 1000);
}

// --- (d) partitioned solves: reproducibility, convergence, surfacing --------

SolveControls partitioned_controls() {
  SolveControls controls;
  controls.method = SpdMethod::kAsyncRgs;
  controls.sweeps = 400;
  controls.seed = 17;
  controls.sync = SyncMode::kBarrierPerSweep;
  controls.rel_tol = 1e-10;
  controls.partitions = 4;
  controls.steal_rate = 0.05;
  return controls;
}

TEST(PartitionedSolve, SingleWorkerIsBitReproducible) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> b = random_vector(a.rows(), 3);
  SpdProblem problem(pool, a);
  SolveControls controls = partitioned_controls();
  controls.workers = 1;
  std::vector<double> x1(a.rows(), 0.0), x2(a.rows(), 0.0);
  problem.solve(b, x1, controls);
  problem.solve(b, x2, controls);
  EXPECT_EQ(x1, x2);
}

TEST(PartitionedSolve, ConvergesOnAConsistentLaplacian) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(24, 24);
  const std::vector<double> ones(static_cast<std::size_t>(a.rows()), 1.0);
  const std::vector<double> b = rhs_from_solution(a, ones);
  SpdProblem problem(pool, a);

  SolveControls controls = partitioned_controls();
  controls.sweeps = 20000;
  controls.rel_tol = 1e-8;
  controls.workers = 2;
  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome outcome = problem.solve(b, x, controls);
  EXPECT_TRUE(outcome.converged()) << outcome.description;
  EXPECT_LT(relative_residual(a, b, x), 1e-7);

  // The unpartitioned engine with the same budget agrees on the answer.
  SolveControls flat = controls;
  flat.partitions = 0;
  flat.steal_rate = 0.0;
  std::vector<double> y(a.rows(), 0.0);
  EXPECT_TRUE(problem.solve(b, y, flat).converged());
  for (index_t i = 0; i < a.rows(); ++i)
    ASSERT_NEAR(x[static_cast<std::size_t>(i)], y[static_cast<std::size_t>(i)],
                1e-6);
}

TEST(PartitionedSolve, OutcomeSurfacesThePartitionPolicy) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> b = random_vector(a.rows(), 9);
  SpdProblem problem(pool, a);
  SolveControls controls = partitioned_controls();
  controls.workers = 1;
  controls.sweeps = 5;
  controls.rel_tol = 0.0;
  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome outcome = problem.solve(b, x, controls);
  EXPECT_EQ(outcome.partitions_used, 4);
  EXPECT_EQ(outcome.steal_rate_used, 0.05);
  EXPECT_NE(outcome.description.find("4 partitions"), std::string::npos)
      << outcome.description;
  EXPECT_NE(outcome.description.find("RCM"), std::string::npos)
      << outcome.description;

  // Unpartitioned solves keep the fields at zero.
  SolveControls flat;
  flat.method = SpdMethod::kAsyncRgs;
  flat.sweeps = 2;
  const SolveOutcome plain = problem.solve(b, x, flat);
  EXPECT_EQ(plain.partitions_used, 0);
  EXPECT_EQ(plain.steal_rate_used, 0.0);
}

TEST(PartitionedSolve, PartitionCountClampsToTheDimension) {
  ThreadPool pool(1);
  const CsrMatrix a = laplacian_1d(5);
  const std::vector<double> b = random_vector(a.rows(), 1);
  SpdProblem problem(pool, a);
  SolveControls controls = partitioned_controls();
  controls.partitions = 64;
  controls.steal_rate = 0.0;
  controls.workers = 1;
  controls.sweeps = 3;
  controls.rel_tol = 0.0;
  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome outcome = problem.solve(b, x, controls);
  EXPECT_GE(outcome.partitions_used, 1);
  EXPECT_LE(outcome.partitions_used, 5);
}

TEST(PartitionedSolve, ClonesInheritThePreparedAnalysis) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> b = random_vector(a.rows(), 4);
  SpdProblem problem(pool, a);
  EXPECT_EQ(problem.stats().partition_builds, 0);
  problem.prepare_partitions();
  problem.prepare_partitions();  // idempotent
  EXPECT_EQ(problem.stats().partition_builds, 1);

  SpdProblem clone(pool, problem);
  SolveControls controls = partitioned_controls();
  controls.workers = 1;
  controls.sweeps = 5;
  controls.rel_tol = 0.0;
  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome outcome = clone.solve(b, x, controls);
  EXPECT_EQ(outcome.partitions_used, 4);
  EXPECT_EQ(clone.stats().partition_builds, 0)  // reused, never rebuilt
      << "clone rebuilt the partition analysis";
}

TEST(PartitionedSolve, RejectsInvalidPartitionControls) {
  ThreadPool pool(1);
  const CsrMatrix a = laplacian_2d(6, 6);
  const std::vector<double> b = random_vector(a.rows(), 2);
  SpdProblem problem(pool, a);
  std::vector<double> x(a.rows(), 0.0);

  SolveControls steal_without_partitions;
  steal_without_partitions.steal_rate = 0.1;
  EXPECT_THROW((void)problem.solve(b, x, steal_without_partitions), Error);

  SolveControls steal_too_big = partitioned_controls();
  steal_too_big.steal_rate = 1.0;
  EXPECT_THROW((void)problem.solve(b, x, steal_too_big), Error);

  SolveControls weighted = partitioned_controls();
  weighted.sampling = SamplingPolicy::kWeighted;
  EXPECT_THROW((void)problem.solve(b, x, weighted), Error);

  SolveControls owner = partitioned_controls();
  owner.scope = RandomizationScope::kOwnerComputes;
  EXPECT_THROW((void)problem.solve(b, x, owner), Error);

  SolveControls krylov = partitioned_controls();
  krylov.method = SpdMethod::kCg;
  EXPECT_THROW((void)problem.solve(b, x, krylov), Error);

  SolveControls negative;
  negative.partitions = -1;
  EXPECT_THROW((void)problem.solve(b, x, negative), Error);
}

// --- (e) Laplacian generator overflow guards ---------------------------------

TEST(LaplacianOverflow, TwoDGridProductThrowsAtAllWidths) {
  const index_t big = index_t{1} << 32;  // big * big wraps int64 to 0
  EXPECT_THROW((void)(laplacian_2d_as<std::int64_t, double>(big, big)), Error);
  EXPECT_THROW((void)(laplacian_2d_as<std::int32_t, double>(big, big)), Error);
  EXPECT_THROW((void)(laplacian_2d_as<std::int32_t, float>(big, big)), Error);
  EXPECT_THROW((void)laplacian_2d(big, big), Error);
}

TEST(LaplacianOverflow, ThreeDGridProductThrowsAtAllWidths) {
  const index_t big = index_t{1} << 21;  // big^3 = 2^63 > int64 max
  EXPECT_THROW((void)(laplacian_3d_as<std::int64_t, double>(big, big, big)),
               Error);
  EXPECT_THROW((void)(laplacian_3d_as<std::int32_t, double>(big, big, big)),
               Error);
  EXPECT_THROW((void)(laplacian_3d_as<std::int32_t, float>(big, big, big)),
               Error);
  EXPECT_THROW((void)laplacian_3d(big, big, big), Error);
}

TEST(LaplacianOverflow, ReserveGuardCatchesStencilWrap) {
  // Dimensions that pass the product check but whose nnz estimate (3n, 5n,
  // 7n) would wrap.  Nothing is allocated before the guard fires.
  constexpr index_t kMax = std::numeric_limits<index_t>::max();
  EXPECT_THROW((void)laplacian_1d(kMax / 3 + 1), Error);
  EXPECT_THROW((void)laplacian_2d(index_t{1} << 31, index_t{1} << 31), Error);
  EXPECT_THROW((void)laplacian_3d(index_t{1} << 21, index_t{1} << 21,
                                  index_t{1} << 19),
               Error);
}

TEST(LaplacianOverflow, LargeValidGridsStillBuild) {
  // The guards must not reject ordinary sizes.
  const CsrMatrix a = laplacian_2d(64, 64);
  EXPECT_EQ(a.rows(), 64 * 64);
  const CsrMatrix c = laplacian_3d(8, 8, 8);
  EXPECT_EQ(c.rows(), 512);
}

}  // namespace
}  // namespace asyrgs
