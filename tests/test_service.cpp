// SolverService suite (PR 5): the sharded multi-pool serving front-end.
//
//  (a) Concurrency: M client threads submitting a mixed SPD / LSQ / block
//      request stream — every tolerance-stopped outcome converges, every
//      residual checks out against the matrix, and the service accounting
//      (submitted == completed, per-shard served counts) balances.
//  (b) Determinism under sharding: a fixed-seed request yields a
//      bit-identical result regardless of which shard executes it and
//      regardless of the service's shard count (1 / 2 / 4), matching the
//      single-handle reference — including multi-worker owner-computes
//      teams on a block-diagonal matrix (every interleaving identical).
//  (c) Amortization across shards: shard 0 pays the per-matrix analysis;
//      clones re-validate nothing (ProblemStats at zero validation passes /
//      transpose builds) and the matrix-level transpose is built once for
//      the whole service.
//  (d) The SolveTicket contract: done()/wait()/solution() semantics, solve
//      errors rethrown at wait(), eager submit-side validation.
//  (e) Admission control and deadlines (PR 6): queue-full and
//      shutdown-race submits resolve to SolveStatus::kRejected without
//      throwing, deadline-expired requests are shed unexecuted, priority
//      classes reorder dispatch, and the ServiceStats accounting invariant
//      submitted == completed + queued + in_flight holds under concurrent
//      load.
//  (f) Warm starts: re-solving a perturbed right-hand side from the
//      previous solution converges in fewer sweeps than from zero.
//  (g) Observability: per-shard latency histograms and the JSON trace sink
//      record every request.
//
// This suite (with test_problem, test_serve_metrics, and test_thread_pool)
// is the TSan CI gate — keep it free of intentional races: multi-worker
// requests stay on atomic writes and the pinned scan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/serve/service.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

/// Block-diagonal SPD matrix whose blocks align with every tested worker
/// partition (same construction as test_problem.cpp): under owner-computes
/// randomization no worker reads another's coordinates, so multi-worker
/// runs are bit-deterministic.
CsrMatrix block_diag_tridiagonal(int blocks, index_t block_size) {
  const index_t n = blocks * block_size;
  CooBuilder builder(n, n);
  for (int blk = 0; blk < blocks; ++blk) {
    const index_t lo = blk * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      builder.add(lo + i, lo + i, 2.0);
      if (i + 1 < block_size) {
        builder.add(lo + i, lo + i + 1, -1.0);
        builder.add(lo + i + 1, lo + i, -1.0);
      }
    }
  }
  return builder.to_csr();
}

ServiceOptions two_shard_options() {
  ServiceOptions o;
  o.shards = 2;
  o.workers_per_shard = 2;
  o.prepare_spd = true;
  o.prepare_lsq = true;
  return o;
}

// --- (a) mixed concurrent request stream -------------------------------------

TEST(SolverService, MixedStreamFromClientThreadsConvergesAndBalances) {
  const CsrMatrix a = laplacian_2d(8, 8);
  SolverService service(a, two_shard_options());

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::mutex tickets_mutex;
  std::vector<SolveTicket> spd_tickets, lsq_tickets, block_tickets;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      for (int r = 0; r < kPerClient; ++r) {
        SolveControls controls;
        controls.seed = static_cast<std::uint64_t>(c * kPerClient + r + 1);
        controls.workers = 1 + (r % 2);
        controls.sync = SyncMode::kBarrierPerSweep;
        controls.rel_tol = 1e-6;
        controls.sweeps = 4000;
        const std::vector<double> b =
            random_vector(a.rows(), controls.seed + 7);
        switch (r % 3) {
          case 0: {
            SolveTicket t = service.submit(b, controls);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            spd_tickets.push_back(t);
            break;
          }
          case 1: {
            SolveControls lsq = controls;
            lsq.step_size = 0.9;
            // Least squares converges on the normal equations (operator
            // conditioning squared): looser target, bigger budget.
            lsq.rel_tol = 1e-5;
            lsq.sweeps = 12000;
            SolveTicket t = service.submit_least_squares(b, lsq);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            lsq_tickets.push_back(t);
            break;
          }
          default: {
            MultiVector bm(a.rows(), 2);
            for (index_t i = 0; i < a.rows(); ++i) {
              bm.at(i, 0) = b[static_cast<std::size_t>(i)];
              bm.at(i, 1) = normal(rng);
            }
            SolveTicket t = service.submit_block(bm, controls);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            block_tickets.push_back(t);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (SolveTicket& t : spd_tickets) {
    const SolveOutcome& out = t.wait();
    EXPECT_EQ(out.status, SolveStatus::kConverged) << out.description;
    EXPECT_GE(t.shard(), 0);
    EXPECT_LT(t.shard(), service.shards());
  }
  for (SolveTicket& t : lsq_tickets)
    EXPECT_EQ(t.wait().status, SolveStatus::kConverged)
        << t.wait().description;
  for (SolveTicket& t : block_tickets)
    EXPECT_EQ(t.wait().status, SolveStatus::kConverged)
        << t.wait().description;

  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.queued, 0);
  long long served = 0;
  for (const ShardStats& s : stats.shards) served += s.served;
  EXPECT_EQ(served, stats.completed);
}

// --- (b) determinism under sharding ------------------------------------------

TEST(SolverService, FixedSeedBitIdenticalAcrossShardPlacementsAndCounts) {
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  SolveControls controls;
  controls.sweeps = 25;
  controls.seed = 17;
  controls.workers = 1;  // pin: identical regardless of shard pool size

  // Single-handle reference.
  ThreadPool pool(2);
  SpdProblem reference(pool, a);
  std::vector<double> x_ref(a.rows(), 0.0);
  reference.solve(b, x_ref, controls);

  for (int shards : {1, 2, 4}) {
    ServiceOptions options = two_shard_options();
    options.shards = shards;
    SolverService service(a, options);
    // Submit batches until at least two distinct shards have actually
    // executed a copy (scheduling decides placement, so retry bounded-many
    // times rather than assuming one batch spreads); every placement must
    // produce the same bits.
    const std::size_t want_placements = shards > 1 ? 2u : 1u;
    std::set<int> placements;
    for (int round = 0;
         round < 50 && placements.size() < want_placements; ++round) {
      std::vector<SolveTicket> tickets;
      for (int r = 0; r < 2 * shards + 1; ++r)
        tickets.push_back(service.submit(b, controls));
      for (SolveTicket& t : tickets) {
        EXPECT_EQ(t.wait().status, SolveStatus::kBudgetCompleted);
        placements.insert(t.shard());
        EXPECT_EQ(t.solution(), x_ref) << "shards=" << shards;
      }
    }
    // The cross-placement claim was actually exercised, not vacuously.
    EXPECT_GE(placements.size(), want_placements) << "shards=" << shards;
  }
}

TEST(SolverService, FixedSeedLeastSquaresAndBlockMatchSingleHandle) {
  const CsrMatrix a = laplacian_2d(7, 7);
  const std::vector<double> b = random_vector(a.rows(), 11);

  ThreadPool pool(2);
  SolveControls controls;
  controls.sweeps = 20;
  controls.seed = 31;
  controls.workers = 1;
  controls.step_size = 0.9;

  LsqProblem lsq_ref(pool, a);
  std::vector<double> x_lsq_ref(static_cast<std::size_t>(a.cols()), 0.0);
  lsq_ref.solve(b, x_lsq_ref, controls);

  SpdProblem spd_ref(pool, a);
  const MultiVector bm = random_multivector(a.rows(), 3, 13);
  MultiVector x_blk_ref(a.rows(), 3);
  spd_ref.solve(bm, x_blk_ref, controls);

  ServiceOptions options = two_shard_options();
  SolverService service(a, options);
  std::vector<SolveTicket> lsq_tickets, blk_tickets;
  for (int r = 0; r < 4; ++r) {
    lsq_tickets.push_back(service.submit_least_squares(b, controls));
    blk_tickets.push_back(service.submit_block(bm, controls));
  }
  for (SolveTicket& t : lsq_tickets) EXPECT_EQ(t.solution(), x_lsq_ref);
  for (SolveTicket& t : blk_tickets) {
    const MultiVector& x = t.block_solution();
    ASSERT_EQ(x.size(), x_blk_ref.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(x.data()[i], x_blk_ref.data()[i]) << "i=" << i;
  }
}

TEST(SolverService, OwnerComputesMultiWorkerTeamsStayDeterministic) {
  // Multi-worker teams inside the shards: owner-computes on a
  // block-diagonal matrix makes every interleaving produce the same bits,
  // so the cross-shard comparison stays exact even at team size 2.
  const CsrMatrix a = block_diag_tridiagonal(/*blocks=*/4, /*block_size=*/12);
  const std::vector<double> b = random_vector(a.rows(), 5);

  SolveControls controls;
  controls.sweeps = 30;
  controls.seed = 23;
  controls.workers = 2;
  controls.scope = RandomizationScope::kOwnerComputes;
  controls.sync = SyncMode::kBarrierPerSweep;

  ThreadPool pool(2);
  SpdProblem reference(pool, a);
  std::vector<double> x_ref(a.rows(), 0.0);
  reference.solve(b, x_ref, controls);

  for (int shards : {1, 2}) {
    ServiceOptions options = two_shard_options();
    options.shards = shards;
    options.prepare_lsq = false;
    SolverService service(a, options);
    std::vector<SolveTicket> tickets;
    for (int r = 0; r < 2 * shards; ++r)
      tickets.push_back(service.submit(b, controls));
    for (SolveTicket& t : tickets)
      EXPECT_EQ(t.solution(), x_ref) << "shards=" << shards;
  }
}

// --- (c) shard-clone amortization --------------------------------------------

TEST(SolverService, ShardClonesPayNoRevalidation) {
  // Fresh matrix: the transpose cache starts cold, so the service's own
  // construction is what pays the one transpose build.
  const CsrMatrix a = laplacian_2d(8, 8);
  ASSERT_FALSE(a.transpose_cached());

  ServiceOptions options = two_shard_options();
  options.shards = 4;
  SolverService service(a, options);

  ServiceStats stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  // One symmetry/diagonal pass (SPD) + one rank pass (LSQ), both on shard 0.
  EXPECT_EQ(stats.validation_passes, 2);
  // One transpose for the whole service (SPD symmetry check builds it; the
  // LSQ handle and every clone share it through the matrix cache).
  EXPECT_EQ(stats.transpose_builds, 1);
  EXPECT_TRUE(a.transpose_cached());
  for (std::size_t s = 1; s < stats.shards.size(); ++s) {
    EXPECT_EQ(stats.shards[s].spd.validation_passes, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].lsq.validation_passes, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].spd.transpose_builds, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].lsq.transpose_builds, 0) << "shard " << s;
  }

  // Serving requests re-validates nothing anywhere.
  SolveControls controls;
  controls.sweeps = 5;
  controls.workers = 1;
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<SolveTicket> tickets;
  for (int r = 0; r < 8; ++r) {
    tickets.push_back(service.submit(b, controls));
    tickets.push_back(service.submit_least_squares(b, controls));
  }
  for (SolveTicket& t : tickets) t.wait();
  service.drain();
  stats = service.stats();
  EXPECT_EQ(stats.validation_passes, 2);
  EXPECT_EQ(stats.transpose_builds, 1);
}

TEST(SolverService, CloneConstructorsMatchFullValidationBitForBit) {
  // The problem-layer satellite of the service: a shard clone solves
  // bit-identically to a fully-validated handle on another pool.
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 9);
  ThreadPool pool_a(2), pool_b(2);

  SpdProblem full(pool_a, a, /*check_input=*/true);
  SpdProblem clone(pool_b, full);
  EXPECT_EQ(clone.stats().validation_passes, 0);
  EXPECT_EQ(clone.stats().transpose_builds, 0);

  SolveControls controls;
  controls.sweeps = 25;
  controls.seed = 41;
  controls.workers = 1;
  std::vector<double> x_full(a.rows(), 0.0), x_clone(a.rows(), 0.0);
  full.solve(b, x_full, controls);
  clone.solve(b, x_clone, controls);
  EXPECT_EQ(x_full, x_clone);

  LsqProblem lsq_full(pool_a, a);
  LsqProblem lsq_clone(pool_b, lsq_full);
  EXPECT_EQ(lsq_clone.stats().validation_passes, 0);
  EXPECT_EQ(&lsq_full.transpose(), &lsq_clone.transpose());
  controls.step_size = 0.9;
  std::vector<double> y_full(static_cast<std::size_t>(a.cols()), 0.0);
  std::vector<double> y_clone(y_full);
  lsq_full.solve(b, y_full, controls);
  lsq_clone.solve(b, y_clone, controls);
  EXPECT_EQ(y_full, y_clone);
}

// --- (d) ticket contract and submit-side validation --------------------------

TEST(SolverService, SolveErrorsRethrownAtWait) {
  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options = two_shard_options();
  options.prepare_lsq = false;
  SolverService service(a, options);

  SolveControls bad;
  bad.step_size = 5.0;  // outside (0, 2): rejected by the solve on the shard
  SolveTicket t = service.submit(random_vector(a.rows(), 1), bad);
  EXPECT_THROW(t.wait(), Error);
  EXPECT_THROW(static_cast<void>(t.solution()), Error);  // on every access
  EXPECT_TRUE(t.done());

  // Submit-side validation is eager.
  EXPECT_THROW(service.submit(std::vector<double>(3, 0.0)), Error);
  EXPECT_THROW(
      service.submit_least_squares(random_vector(a.rows(), 1)), Error);
  EXPECT_THROW(service.submit_block(MultiVector(), {}), Error);

  // The failed request still counts as completed; the service keeps serving.
  SolveControls good;
  good.sweeps = 5;
  good.workers = 1;
  SolveTicket ok = service.submit(random_vector(a.rows(), 2), good);
  EXPECT_EQ(ok.wait().status, SolveStatus::kBudgetCompleted);
  service.drain();
  EXPECT_EQ(service.stats().completed, 2);
}

TEST(SolverService, TicketBasics) {
  SolveTicket invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.done());
  EXPECT_THROW(invalid.wait(), Error);

  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options = two_shard_options();
  options.prepare_lsq = false;
  options.shards = 1;
  SolverService service(a, options);
  EXPECT_EQ(service.shards(), 1);
  EXPECT_EQ(service.workers_per_shard(), 2);
  EXPECT_EQ(&service.matrix(), &a);

  SolveControls controls;
  controls.sweeps = 4;
  controls.workers = 1;
  SolveTicket t = service.submit(random_vector(a.rows(), 4), controls);
  ASSERT_TRUE(t.valid());
  SolveTicket copy = t;  // tickets are value handles to shared state
  copy.wait();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(&t.solution(), &copy.solution());
  EXPECT_THROW(static_cast<void>(t.block_solution()), Error);  // not block

  // Mixed-family guard: this service was built without prepare_lsq.
  EXPECT_THROW(service.submit_least_squares(random_vector(a.rows(), 5)),
               Error);
}

TEST(SolverService, DestructorDrainsOutstandingRequests) {
  const CsrMatrix a = laplacian_2d(8, 8);
  std::vector<SolveTicket> tickets;
  {
    ServiceOptions options = two_shard_options();
    options.prepare_lsq = false;
    SolverService service(a, options);
    SolveControls controls;
    controls.sweeps = 50;
    controls.workers = 1;
    for (int r = 0; r < 6; ++r)
      tickets.push_back(service.submit(random_vector(a.rows(), r + 1),
                                       controls));
    // Destructor runs with requests possibly still queued.
  }
  for (SolveTicket& t : tickets) {
    EXPECT_TRUE(t.done());  // completed before the destructor returned
    EXPECT_EQ(t.wait().status, SolveStatus::kBudgetCompleted);
  }
}

// --- (e) admission control, deadlines, priorities ----------------------------

/// Controls for a solve slow enough (hundreds of ms on any host) to hold a
/// 1-worker shard busy while the test manipulates the queue behind it.
SolveControls slow_controls(int sweeps = 4000) {
  SolveControls c;
  c.sweeps = sweeps;
  c.workers = 1;
  return c;
}

/// Polls until the service reports at least `n` requests executing; false
/// on timeout (~2s).
bool wait_for_in_flight(SolverService& service, long long n) {
  for (int i = 0; i < 2000; ++i) {
    if (service.stats().in_flight >= n) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

TEST(SolverService, QueueFullSubmitsResolveRejectedWithoutThrowing) {
  const CsrMatrix a = laplacian_2d(32, 32);
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  options.max_queue = 1;
  SolverService service(a, options);
  const std::vector<double> b = random_vector(a.rows(), 1);

  // Occupy the only shard, then fill the single queue slot.
  SolveTicket busy = service.submit(b, slow_controls());
  ASSERT_TRUE(wait_for_in_flight(service, 1));
  SolveTicket queued = service.submit(b, slow_controls());

  // Every further submit is refused — resolved, not thrown.
  std::vector<SolveTicket> rejected;
  for (int r = 0; r < 3; ++r)
    rejected.push_back(service.submit(b, slow_controls()));
  for (SolveTicket& t : rejected) {
    EXPECT_TRUE(t.done());  // rejection resolves at submit, before wait()
    const SolveOutcome& out = t.wait();  // must not throw
    EXPECT_EQ(out.status, SolveStatus::kRejected);
    EXPECT_NE(out.description.find("queue full"), std::string::npos)
        << out.description;
    EXPECT_EQ(t.shard(), -1);  // never reached a shard
  }

  const ServiceStats mid = service.stats();
  EXPECT_EQ(mid.rejected, 3);
  EXPECT_EQ(mid.queue_high_water, 1);  // the bound was respected

  // The admitted requests still complete normally.
  EXPECT_EQ(busy.wait().status, SolveStatus::kBudgetCompleted);
  EXPECT_EQ(queued.wait().status, SolveStatus::kBudgetCompleted);
  service.drain();
  const ServiceStats end = service.stats();
  EXPECT_EQ(end.submitted, 5);
  EXPECT_EQ(end.completed, 5);  // completed includes the rejected tickets
}

TEST(SolverService, DeadlineExpiredRequestsAreShedUnexecuted) {
  const CsrMatrix a = laplacian_2d(32, 32);
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  SolverService service(a, options);
  const std::vector<double> b = random_vector(a.rows(), 2);

  // Block the shard for hundreds of ms, then queue a request whose 5ms
  // deadline is long gone by the time the shard frees up.
  SolveTicket busy = service.submit(b, slow_controls());
  ASSERT_TRUE(wait_for_in_flight(service, 1));
  RequestOptions strict;
  strict.deadline_seconds = 0.005;
  SolveTicket doomed = service.submit(b, slow_controls(), strict);

  const SolveOutcome& out = doomed.wait();  // resolves when the shard sheds
  EXPECT_EQ(out.status, SolveStatus::kRejected);
  EXPECT_NE(out.description.find("deadline"), std::string::npos)
      << out.description;
  EXPECT_EQ(doomed.shard(), -1);  // shed requests never execute
  // The initial iterate was never touched: still all zeros.
  for (double v : doomed.solution()) ASSERT_EQ(v, 0.0);

  EXPECT_EQ(busy.wait().status, SolveStatus::kBudgetCompleted);
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed_deadline, 1);
  EXPECT_EQ(stats.rejected, 0);  // sheds are counted separately
  EXPECT_EQ(stats.completed, 2);
}

TEST(SolverService, HigherPriorityClassDispatchesFirst) {
  const CsrMatrix a = laplacian_2d(16, 16);
  auto trace_text = std::make_shared<std::ostringstream>();
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  options.trace = std::make_shared<JsonTraceSink>(*trace_text);
  SolverService service(a, options);
  const std::vector<double> b = random_vector(a.rows(), 3);

  // While the shard is busy, queue a low-priority request first and a
  // high-priority one second; the high-priority one must run first.
  SolveTicket busy = service.submit(b, slow_controls());
  ASSERT_TRUE(wait_for_in_flight(service, 1));
  RequestOptions low, high;
  low.priority = 2;
  high.priority = 0;
  SolveControls quick;
  quick.sweeps = 2;
  quick.workers = 1;
  SolveTicket t_low = service.submit(b, quick, low);    // request id 2
  SolveTicket t_high = service.submit(b, quick, high);  // request id 3
  service.drain();

  // Completion order on a 1-worker single shard is execution order; the
  // trace log records completions in order, so id 3 must appear before
  // id 2.
  const std::string log = trace_text->str();
  const std::size_t pos_high = log.find("\"id\":3");
  const std::size_t pos_low = log.find("\"id\":2");
  ASSERT_NE(pos_high, std::string::npos) << log;
  ASSERT_NE(pos_low, std::string::npos) << log;
  EXPECT_LT(pos_high, pos_low) << log;
  EXPECT_NE(log.find("\"priority\":0"), std::string::npos);
  EXPECT_NE(log.find("\"priority\":2"), std::string::npos);
  EXPECT_EQ(t_high.wait().status, SolveStatus::kBudgetCompleted);
  EXPECT_EQ(t_low.wait().status, SolveStatus::kBudgetCompleted);
}

TEST(SolverService, SubmitRacingShutdownResolvesRejectedRegression) {
  // Regression for the PR-5 contract gap: a submit racing shutdown used to
  // throw a bare asyrgs::Error from a call path documented as concurrency-
  // safe.  Now shutdown() is an explicit, concurrency-safe operation and a
  // racing ticket resolves to kRejected.  The queue is kept full so every
  // racer submit is refused (queue-full before stop lands, shutting-down
  // after) no matter how the timing falls; shutdown()'s drain (two slow
  // solves on one 1-worker shard, hundreds of ms) overlaps the racer's
  // burst, and the object outlives both threads — the destructor is not
  // part of the race.
  const CsrMatrix a = laplacian_2d(32, 32);
  const std::vector<double> b = random_vector(a.rows(), 4);
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  options.max_queue = 1;
  SolverService service(a, options);
  SolveTicket busy = service.submit(b, slow_controls(8000));
  ASSERT_TRUE(wait_for_in_flight(service, 1));
  SolveTicket queued = service.submit(b, slow_controls(8000));

  std::vector<SolveTicket> raced;
  std::atomic<bool> raced_threw{false};
  std::thread racer([&] {
    try {
      for (int i = 0; i < 3; ++i) {
        raced.push_back(service.submit(b, slow_controls(2)));
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    } catch (...) {
      raced_threw = true;
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service.shutdown();  // concurrent with the racer's submits
  racer.join();

  EXPECT_FALSE(raced_threw);  // the old contract gap: submit threw here
  ASSERT_EQ(raced.size(), 3u);
  for (SolveTicket& t : raced) {
    EXPECT_TRUE(t.done());
    EXPECT_EQ(t.wait().status, SolveStatus::kRejected);  // never hangs
  }
  EXPECT_EQ(busy.wait().status, SolveStatus::kBudgetCompleted);
  EXPECT_EQ(queued.wait().status, SolveStatus::kBudgetCompleted);
  // Idempotent: a second shutdown (and the destructor after it) is a no-op.
  service.shutdown();
}

TEST(SolverService, StatsInvariantHoldsUnderConcurrentLoad) {
  // stats() itself asserts submitted == completed + queued + in_flight
  // under the service mutex (it throws on violation), so hammering it from
  // a poller thread while clients submit through a tiny queue — forcing
  // rejects, sheds, and normal completions to race — is the test.
  const CsrMatrix a = laplacian_2d(12, 12);
  ServiceOptions options;
  options.shards = 2;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  options.max_queue = 2;
  SolverService service(a, options);

  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done) static_cast<void>(service.stats());
  });

  constexpr int kClients = 3;
  constexpr int kPerClient = 40;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kPerClient; ++r) {
        SolveControls controls;
        controls.sweeps = 20;
        controls.workers = 1;
        controls.seed = static_cast<std::uint64_t>(c * kPerClient + r + 1);
        RequestOptions request;
        if (r % 5 == 4) request.deadline_seconds = 1e-9;  // instant expiry
        static_cast<void>(service.submit(
            random_vector(a.rows(), controls.seed), controls, request));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.drain();
  done = true;
  poller.join();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.queued, 0);
  EXPECT_EQ(stats.in_flight, 0);
  // Executed = completed minus refused; the shards' served counters and
  // the latency histograms must both account for exactly those.
  const long long executed =
      stats.completed - stats.rejected - stats.shed_deadline;
  long long served = 0;
  for (const ShardStats& s : stats.shards) served += s.served;
  EXPECT_EQ(served, executed);
  EXPECT_EQ(static_cast<long long>(stats.latency.count()), executed);
  EXPECT_LE(stats.queue_high_water, 2);  // max_queue was enforced
}

// --- (f) warm starts ---------------------------------------------------------

TEST(SolverService, WarmStartConvergesInFewerSweepsOnPerturbedRhs) {
  const CsrMatrix a = laplacian_2d(10, 10);
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = true;
  SolverService service(a, options);

  SolveControls controls;
  // Pin the asynchronous method: its sweep count under barrier-per-sweep is
  // the direct "how much iteration did this take" measure (kAuto would
  // route a 1e-8 target to FCG).
  controls.method = SpdMethod::kAsyncRgs;
  controls.workers = 1;
  controls.sync = SyncMode::kBarrierPerSweep;
  controls.rel_tol = 1e-8;
  controls.sweeps = 100000;

  // First solve: from zero, to tolerance.
  const std::vector<double> b = random_vector(a.rows(), 5);
  SolveTicket first = service.submit(b, controls);
  ASSERT_EQ(first.wait().status, SolveStatus::kConverged);
  const std::vector<double> x_prev = first.solution();

  // The drifting-RHS re-solve: perturb b slightly, as a client streaming
  // related systems would see.
  std::vector<double> b2 = b;
  for (std::size_t i = 0; i < b2.size(); ++i)
    b2[i] += 1e-6 * static_cast<double>(i % 7);

  SolveTicket cold = service.submit(b2, controls);
  SolveTicket warm = service.submit(b2, x_prev, controls);
  ASSERT_EQ(cold.wait().status, SolveStatus::kConverged);
  ASSERT_EQ(warm.wait().status, SolveStatus::kConverged);
  // Starting ~1e-6 from the answer instead of O(1) away must save sweeps.
  EXPECT_LT(warm.wait().iterations, cold.wait().iterations);
  EXPECT_GT(warm.wait().iterations, 0);

  // Least-squares warm start through the same overload shape.
  SolveControls lsq = controls;
  lsq.step_size = 0.9;
  lsq.rel_tol = 1e-6;
  SolveTicket lsq_first = service.submit_least_squares(b, lsq);
  ASSERT_EQ(lsq_first.wait().status, SolveStatus::kConverged);
  SolveTicket lsq_cold = service.submit_least_squares(b2, lsq);
  SolveTicket lsq_warm =
      service.submit_least_squares(b2, lsq_first.solution(), lsq);
  ASSERT_EQ(lsq_warm.wait().status, SolveStatus::kConverged);
  EXPECT_LE(lsq_warm.wait().iterations, lsq_cold.wait().iterations);
}

TEST(SolverService, WarmStartValidatesIterateShapeEagerly) {
  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options;
  options.shards = 1;
  options.prepare_lsq = true;
  SolverService service(a, options);
  const std::vector<double> b = random_vector(a.rows(), 6);
  EXPECT_THROW(service.submit(b, std::vector<double>(3, 0.0)), Error);
  EXPECT_THROW(
      service.submit_least_squares(b, std::vector<double>(3, 0.0)), Error);
}

// --- (g) observability -------------------------------------------------------

TEST(SolverService, ShardLatencyHistogramsAndWorkersSurface) {
  const CsrMatrix a = laplacian_2d(12, 12);
  ServiceOptions options;
  options.shards = 2;
  options.workers_per_shard = 2;
  options.prepare_lsq = false;
  SolverService service(a, options);

  SolveControls controls;
  controls.sweeps = 10;
  controls.workers = 1;
  const std::vector<double> b = random_vector(a.rows(), 7);
  std::vector<SolveTicket> tickets;
  for (int r = 0; r < 8; ++r) tickets.push_back(service.submit(b, controls));
  for (SolveTicket& t : tickets) t.wait();
  service.drain();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(static_cast<long long>(stats.latency.count()), 8);
  EXPECT_GT(stats.latency.p50(), 0.0);
  EXPECT_LE(stats.latency.p50(), stats.latency.p99());
  EXPECT_GT(stats.latency.max_seconds(), 0.0);
  std::uint64_t per_shard = 0;
  for (const ShardStats& s : stats.shards) {
    EXPECT_EQ(s.workers, 2);
    per_shard += s.latency.count();
  }
  EXPECT_EQ(per_shard, stats.latency.count());
}

TEST(SolverService, TraceSinkRecordsEveryRequestOutcome) {
  const CsrMatrix a = laplacian_2d(16, 16);
  auto trace_text = std::make_shared<std::ostringstream>();
  ServiceOptions options;
  options.shards = 1;
  options.workers_per_shard = 1;
  options.prepare_lsq = false;
  options.max_queue = 1;
  options.trace = std::make_shared<JsonTraceSink>(*trace_text);
  SolverService service(a, options);
  const std::vector<double> b = random_vector(a.rows(), 8);

  SolveTicket busy = service.submit(b, slow_controls());
  ASSERT_TRUE(wait_for_in_flight(service, 1));
  SolveTicket queued = service.submit(b, slow_controls());
  SolveTicket refused = service.submit(b, slow_controls());  // queue full
  EXPECT_EQ(refused.wait().status, SolveStatus::kRejected);
  service.drain();

  // Three events: two executed, one rejected; rejected ones carry
  // start_us = -1 (they never reached a shard).
  const std::string log = trace_text->str();
  std::size_t events = 0, rejected = 0, started = 0;
  std::istringstream lines(log);
  std::string line;
  while (std::getline(lines, line)) {
    ++events;
    if (line.find("\"status\":\"rejected\"") != std::string::npos) {
      ++rejected;
      EXPECT_NE(line.find("\"start_us\":-1"), std::string::npos) << line;
    } else if (line.find("\"start_us\":-1") == std::string::npos) {
      ++started;
    }
  }
  EXPECT_EQ(events, 3u) << log;
  EXPECT_EQ(rejected, 1u) << log;
  EXPECT_EQ(started, 2u) << log;
}

TEST(SolverService, AutoWorkerSizingLeavesNoCoreStranded) {
  // The PR-5 truncation bug: hw/shards rounded down stranded hw % shards
  // cores.  With auto sizing the shard pools must now sum to at least the
  // hardware thread count whenever shards <= hw (each shard still gets at
  // least one thread).
  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options;
  options.shards = 3;
  options.workers_per_shard = 0;  // auto
  options.prepare_lsq = false;
  SolverService service(a, options);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 3u);
  int total = 0;
  for (const ShardStats& s : stats.shards) {
    EXPECT_GE(s.workers, 1);
    total += s.workers;
  }
  if (hw >= 3) {
    EXPECT_GE(total, hw);  // no truncation losses
    // Remainder spreads one-by-one from shard 0: sizes differ by at most 1
    // and are non-increasing.
    for (std::size_t s = 1; s < stats.shards.size(); ++s) {
      EXPECT_GE(stats.shards[s - 1].workers, stats.shards[s].workers);
      EXPECT_LE(stats.shards[0].workers - stats.shards[s].workers, 1);
    }
  }
  EXPECT_EQ(service.workers_per_shard(), stats.shards[0].workers);
}

}  // namespace
}  // namespace asyrgs
