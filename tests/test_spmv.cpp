// Parallel SpMV tests: every partition strategy must agree with the serial
// reference on balanced and heavily skewed matrices; block products must
// agree with column-by-column products.
#include <gtest/gtest.h>

#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/sparse/spmv.hpp"

namespace asyrgs {
namespace {

class SpmvPartitionTest : public ::testing::TestWithParam<RowPartition> {};

TEST_P(SpmvPartitionTest, MatchesSerialOnLaplacian) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(37, 23);
  const std::vector<double> x = random_vector(a.cols(), 5);
  std::vector<double> expect(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), expect.data());

  std::vector<double> y;
  spmv(pool, a, x, y, 8, GetParam());
  ASSERT_EQ(y.size(), expect.size());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], expect[i]) << "row " << i;
}

TEST_P(SpmvPartitionTest, MatchesSerialOnSkewedGram) {
  ThreadPool pool(8);
  SocialGramOptions opt;
  opt.terms = 300;
  opt.documents = 1500;
  opt.mean_doc_length = 6;
  const CsrMatrix a = make_social_gram(opt).gram;
  const std::vector<double> x = random_vector(a.cols(), 6);
  std::vector<double> expect(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), expect.data());

  std::vector<double> y;
  spmv(pool, a, x, y, 8, GetParam());
  for (std::size_t i = 0; i < y.size(); ++i)
    EXPECT_DOUBLE_EQ(y[i], expect[i]) << "row " << i;
}

TEST_P(SpmvPartitionTest, BlockMatchesColumnwise) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(19, 11);
  const MultiVector x = random_multivector(a.cols(), 5, 7);
  MultiVector y(a.rows(), 5);
  spmv_block(pool, a, x, y, 4, GetParam());

  for (index_t c = 0; c < 5; ++c) {
    const std::vector<double> xc = x.column(c);
    std::vector<double> yc(static_cast<std::size_t>(a.rows()));
    a.multiply(xc.data(), yc.data());
    for (index_t i = 0; i < a.rows(); ++i)
      EXPECT_DOUBLE_EQ(y.at(i, c), yc[i]) << "col " << c << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, SpmvPartitionTest,
                         ::testing::Values(RowPartition::kContiguous,
                                           RowPartition::kRoundRobin,
                                           RowPartition::kDynamic));

TEST(Spmv, WorksWithOneWorker) {
  ThreadPool pool(1);
  const CsrMatrix a = laplacian_1d(50);
  const std::vector<double> x = random_vector(50, 3);
  std::vector<double> y, expect(50);
  a.multiply(x.data(), expect.data());
  spmv(pool, a, x, y, 1);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(y[i], expect[i]);
}

TEST(Spmv, RejectsShapeMismatch) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_1d(10);
  std::vector<double> x(9), y;
  EXPECT_THROW(spmv(pool, a, x, y), Error);
}

TEST(BlockResidual, MatchesDefinition) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 9);
  const MultiVector x = random_multivector(a.cols(), 3, 11);
  const MultiVector b = random_multivector(a.rows(), 3, 12);
  MultiVector r(a.rows(), 3);
  block_residual(pool, a, b, x, r);

  MultiVector ax(a.rows(), 3);
  spmv_block(pool, a, x, ax);
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(r.at(i, c), b.at(i, c) - ax.at(i, c));
}

}  // namespace
}  // namespace asyrgs
