#include "asyrgs/gen/rhs.hpp"

#include "asyrgs/support/prng.hpp"

namespace asyrgs {

std::vector<double> random_vector(index_t n, std::uint64_t seed) {
  require(n > 0, "random_vector: n must be positive");
  Xoshiro256 rng(seed);
  std::vector<double> v(static_cast<std::size_t>(n));
  for (double& x : v) x = normal(rng);
  return v;
}

MultiVector random_multivector(index_t n, index_t k, std::uint64_t seed) {
  MultiVector out(n, k);
  Xoshiro256 rng(seed);
  double* p = out.data();
  for (std::size_t t = 0; t < out.size(); ++t) p[t] = normal(rng);
  return out;
}

std::vector<double> rhs_from_solution(const CsrMatrix& a,
                                      const std::vector<double>& x) {
  require(static_cast<index_t>(x.size()) == a.cols(),
          "rhs_from_solution: length mismatch");
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), b.data());
  return b;
}

MultiVector rhs_from_solution(const CsrMatrix& a, const MultiVector& x) {
  require(x.rows() == a.cols(), "rhs_from_solution: shape mismatch");
  MultiVector b(a.rows(), x.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    double* b_row = b.row(i);
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const double aij = vals[t];
      const double* x_row = x.row(cols[t]);
      for (index_t c = 0; c < x.cols(); ++c) b_row[c] += aij * x_row[c];
    }
  }
  return b;
}

}  // namespace asyrgs
