#include "asyrgs/sparse/properties.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace asyrgs {

RowNnzStats row_nnz_stats(const CsrMatrix& a) {
  RowNnzStats s;
  s.min = std::numeric_limits<nnz_t>::max();
  for (index_t i = 0; i < a.rows(); ++i) {
    const nnz_t c = a.row_nnz(i);
    s.min = std::min(s.min, c);
    s.max = std::max(s.max, c);
  }
  s.mean = static_cast<double>(a.nnz()) / static_cast<double>(a.rows());
  s.ratio = static_cast<double>(s.max) /
            static_cast<double>(std::max<nnz_t>(s.min, 1));
  return s;
}

double inf_norm(const CsrMatrix& a) {
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double row_sum = 0.0;
    for (double v : a.row_vals(i)) row_sum += std::abs(v);
    best = std::max(best, row_sum);
  }
  return best;
}

double frobenius_norm(const CsrMatrix& a) {
  double acc = 0.0;
  for (double v : a.values()) acc += v * v;
  return std::sqrt(acc);
}

double rho(const CsrMatrix& a) {
  require(a.square(), "rho: matrix must be square");
  return inf_norm(a) / static_cast<double>(a.rows());
}

double rho2(const CsrMatrix& a) {
  require(a.square(), "rho2: matrix must be square");
  double best = 0.0;
  for (index_t i = 0; i < a.rows(); ++i) {
    double row_sum = 0.0;
    for (double v : a.row_vals(i)) row_sum += v * v;
    best = std::max(best, row_sum);
  }
  return best / static_cast<double>(a.rows());
}

bool is_symmetric(const CsrMatrix& a, double tol) {
  if (!a.square()) return false;
  const CsrMatrix at = a.transpose();
  return a.equals(at, tol);
}

bool is_strictly_diagonally_dominant(const CsrMatrix& a) {
  if (!a.square()) return false;
  for (index_t i = 0; i < a.rows(); ++i) {
    double diag = 0.0, off = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] == i)
        diag = std::abs(vals[t]);
      else
        off += std::abs(vals[t]);
    }
    if (!(diag > off)) return false;
  }
  return true;
}

bool is_weakly_diagonally_dominant(const CsrMatrix& a) {
  if (!a.square()) return false;
  bool some_strict = false;
  for (index_t i = 0; i < a.rows(); ++i) {
    double diag = 0.0, off = 0.0;
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] == i)
        diag = std::abs(vals[t]);
      else
        off += std::abs(vals[t]);
    }
    if (diag < off) return false;
    if (diag > off) some_strict = true;
  }
  return some_strict;
}

}  // namespace asyrgs
