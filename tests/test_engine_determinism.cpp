// Determinism suite for the batched direction engine (PR 2).
//
// The perf overhaul replaced per-update Philox evaluation with bulk draws,
// runtime atomicity branches with templated kernels, and serial residuals
// with team-parallel reductions.  These tests pin the invariants that
// overhaul promised to preserve:
//  (a) the bulk fill APIs reproduce the random-access primitives
//      draw-for-draw;
//  (b) free-running runs at 1, 2, and 4 workers consume exactly the same
//      direction multiset as the sequential solver after batching;
//  (c) the templated atomic/racy kernels produce bit-identical
//      single-worker results vs. the sequential reference (the old path's
//      observable contract).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

// --- (a) bulk Philox fills reproduce random access ---------------------------

TEST(PhiloxFill, FillAtMatchesAt) {
  const Philox4x32 gen(0xDEADBEEFCAFEull);
  for (std::uint64_t first : {0ull, 1ull, 2ull, 7ull, 123456789ull}) {
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{127}, std::size_t{130},
                              std::size_t{1024}}) {
      std::vector<std::uint64_t> got(count + 1, 0);
      gen.fill_at(first, count, got.data());
      for (std::size_t i = 0; i < count; ++i)
        ASSERT_EQ(got[i], gen.at(first + i))
            << "first=" << first << " count=" << count << " i=" << i;
    }
  }
}

TEST(PhiloxFill, FillIndicesMatchesIndexAt) {
  const Philox4x32 gen(31);
  for (index_t n : {index_t{1}, index_t{7}, index_t{97}, index_t{120147}}) {
    for (std::uint64_t first : {0ull, 1ull, 5ull, 999999ull}) {
      std::vector<index_t> got(1000, -1);
      gen.fill_indices(first, got.size(), n, got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], gen.index_at(first + i, n))
            << "n=" << n << " first=" << first << " i=" << i;
    }
  }
}

TEST(PhiloxFill, StridedMatchesIndexAtForAllParities) {
  const Philox4x32 gen(77);
  const index_t n = 6007;
  for (std::uint64_t first : {0ull, 1ull, 4ull, 9ull}) {
    for (std::uint64_t stride : {1ull, 2ull, 3ull, 4ull, 5ull, 8ull, 16ull}) {
      std::vector<index_t> got(513, -1);
      gen.fill_indices_strided(first, stride, got.size(), n, got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], gen.index_at(first + i * stride, n))
            << "first=" << first << " stride=" << stride << " i=" << i;
    }
  }
}

TEST(PhiloxFill, ChunkedRefillsEqualOneShot) {
  // Consuming the stream through refills of varying size must equal one
  // contiguous fill (the engine's buffer-boundary behaviour).
  const Philox4x32 gen(5);
  const index_t n = 211;
  std::vector<index_t> oneshot(5000);
  gen.fill_indices(0, oneshot.size(), n, oneshot.data());
  std::vector<index_t> chunked;
  std::uint64_t pos = 0;
  std::size_t next = 1;
  while (chunked.size() < oneshot.size()) {
    const std::size_t take =
        std::min<std::size_t>(next, oneshot.size() - chunked.size());
    std::vector<index_t> buf(take);
    gen.fill_indices(pos, take, n, buf.data());
    chunked.insert(chunked.end(), buf.begin(), buf.end());
    pos += take;
    next = next * 2 + 1;  // 1, 3, 7, ... exercises odd boundaries
  }
  EXPECT_EQ(chunked, oneshot);
}

// --- DirectionPlan batched fills == per-pick specification ------------------

TEST(DirectionPlan, FillMatchesPickSharedScope) {
  AsyncRgsOptions opt;
  opt.seed = 9;
  const index_t n = 97;
  for (int team : {1, 2, 3, 4, 8}) {
    const detail::DirectionPlan plan(opt, n, team);
    for (int w = 0; w < team; ++w) {
      std::vector<index_t> got(700);
      plan.fill(w, 3, got.size(), got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], plan.pick(w, 3 + i))
            << "team=" << team << " w=" << w << " i=" << i;
      plan.fill_in_sweep(w, 2, 1, got.size(), got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], plan.pick_in_sweep(w, 2, 1 + static_cast<index_t>(i)))
            << "team=" << team << " w=" << w << " i=" << i;
    }
  }
}

TEST(DirectionPlan, FillMatchesPickOwnerComputes) {
  AsyncRgsOptions opt;
  opt.seed = 13;
  opt.scope = RandomizationScope::kOwnerComputes;
  const index_t n = 101;
  for (int team : {1, 2, 4}) {
    const detail::DirectionPlan plan(opt, n, team);
    for (int w = 0; w < team; ++w) {
      std::vector<index_t> got(300);
      plan.fill(w, 0, got.size(), got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], plan.pick(w, i))
            << "team=" << team << " w=" << w << " i=" << i;
    }
  }
}

// --- (b) direction multiset invariance across worker counts -----------------

std::vector<index_t> sequential_multiset(std::uint64_t seed, index_t n,
                                         int sweeps) {
  const Philox4x32 dirs(seed);
  std::vector<index_t> all(static_cast<std::size_t>(sweeps) *
                           static_cast<std::size_t>(n));
  dirs.fill_indices(0, all.size(), n, all.data());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(DirectionMultiset, PlanTilesTheSequentialStream) {
  AsyncRgsOptions opt;
  opt.seed = 21;
  opt.sweeps = 50;
  const index_t n = 97;
  const std::vector<index_t> expected =
      sequential_multiset(opt.seed, n, opt.sweeps);
  for (int team : {1, 2, 4}) {
    const detail::DirectionPlan plan(opt, n, team);
    std::vector<index_t> all;
    for (int w = 0; w < team; ++w) {
      const std::uint64_t mine = plan.total_updates(w, opt.sweeps);
      std::vector<index_t> picks(static_cast<std::size_t>(mine));
      plan.fill(w, 0, picks.size(), picks.data());
      all.insert(all.end(), picks.begin(), picks.end());
    }
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, expected) << "team=" << team;
  }
}

TEST(DirectionMultiset, BarrierSplitTilesWhenWorkersExceedRows) {
  // Regression: with more workers than rows, the shared-scope per-sweep
  // formula used to hand workers w >= n one update each, consuming stream
  // positions owned by the next sweep twice.
  AsyncRgsOptions opt;
  opt.seed = 5;
  const index_t n = 3;
  const Philox4x32 dirs(opt.seed);
  for (int team : {4, 5, 8}) {
    const detail::DirectionPlan plan(opt, n, team);
    index_t total = 0;
    for (int w = 0; w < team; ++w) {
      if (w >= n) {
        EXPECT_EQ(plan.per_sweep(w), 0) << "team=" << team;
      }
      total += plan.per_sweep(w);
    }
    EXPECT_EQ(total, n) << "team=" << team;
    // Per-sweep splits must tile each sweep's slice of the stream exactly.
    for (int sweep = 0; sweep < 3; ++sweep) {
      std::vector<index_t> all;
      for (int w = 0; w < team; ++w) {
        std::vector<index_t> picks(
            static_cast<std::size_t>(plan.per_sweep(w)));
        plan.fill_in_sweep(w, sweep, 0, picks.size(), picks.data());
        all.insert(all.end(), picks.begin(), picks.end());
      }
      std::vector<index_t> expected(static_cast<std::size_t>(n));
      dirs.fill_indices(static_cast<std::uint64_t>(sweep) *
                            static_cast<std::uint64_t>(n),
                        expected.size(), n, expected.data());
      std::sort(all.begin(), all.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(all, expected) << "team=" << team << " sweep=" << sweep;
    }
  }
}

/// Instrumented update functor: records every direction each worker executes.
struct RecordingUpdate {
  std::vector<std::vector<index_t>>* per_worker;
  void operator()(int id, index_t r, index_t) const {
    (*per_worker)[static_cast<std::size_t>(id)].push_back(r);
  }
};

TEST(DirectionMultiset, EngineConsumptionMatchesSequentialAllModes) {
  ThreadPool pool(4);
  const index_t n = 97;
  AsyncRgsOptions base;
  base.seed = 33;
  base.sweeps = 50;
  base.sync_interval_seconds = 0.005;
  const std::vector<index_t> expected =
      sequential_multiset(base.seed, n, base.sweeps);

  for (SyncMode sync : {SyncMode::kFreeRunning, SyncMode::kBarrierPerSweep,
                        SyncMode::kTimedBarrier}) {
    for (int workers : {1, 2, 4}) {
      AsyncRgsOptions opt = base;
      opt.sync = sync;
      opt.workers = workers;
      std::vector<std::vector<index_t>> per_worker(
          static_cast<std::size_t>(workers));
      AsyncRgsReport report;
      auto residual = [](int, int) { return 0.0; };
      detail::run_engine(pool, opt, n, workers,
                         RecordingUpdate{&per_worker}, residual, report);
      std::vector<index_t> all;
      for (const auto& v : per_worker) all.insert(all.end(), v.begin(), v.end());
      std::sort(all.begin(), all.end());
      EXPECT_EQ(all, expected)
          << "sync=" << static_cast<int>(sync) << " workers=" << workers;
    }
  }
}

TEST(DirectionMultiset, EngineHandlesMoreWorkersThanRows) {
  ThreadPool pool(8);
  const index_t n = 3;
  AsyncRgsOptions opt;
  opt.seed = 41;
  opt.sweeps = 20;
  opt.workers = 5;
  const std::vector<index_t> expected =
      sequential_multiset(opt.seed, n, opt.sweeps);
  for (SyncMode sync : {SyncMode::kFreeRunning, SyncMode::kBarrierPerSweep}) {
    opt.sync = sync;
    std::vector<std::vector<index_t>> per_worker(5);
    AsyncRgsReport report;
    auto residual = [](int, int) { return 0.0; };
    detail::run_engine(pool, opt, n, 5, RecordingUpdate{&per_worker}, residual,
                       report);
    std::vector<index_t> all;
    for (const auto& v : per_worker) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    EXPECT_EQ(all, expected) << "sync=" << static_cast<int>(sync);
  }
}

// --- (c) templated kernels: single-worker bit-exactness ---------------------

TEST(KernelBitExactness, AtomicSingleWorkerEqualsSequential) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  RgsOptions seq;
  seq.sweeps = 40;
  seq.seed = 123;
  std::vector<double> x_seq(a.rows(), 0.0);
  rgs_solve(a, b, x_seq, seq);

  for (SyncMode sync : {SyncMode::kFreeRunning, SyncMode::kBarrierPerSweep}) {
    std::vector<double> x_async(a.rows(), 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = 40;
    opt.seed = 123;
    opt.workers = 1;
    opt.sync = sync;
    async_rgs_solve(pool, a, b, x_async, opt);
    EXPECT_EQ(x_seq, x_async) << "sync=" << static_cast<int>(sync);
  }
}

TEST(KernelBitExactness, RacySingleWorkerEqualsAtomicSingleWorker) {
  // With one worker there are no races, so the racy kernel must follow the
  // identical arithmetic path as the atomic one.
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 5);
  std::vector<double> x_atomic(a.rows(), 0.0);
  std::vector<double> x_racy(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 30;
  opt.seed = 7;
  opt.workers = 1;
  async_rgs_solve(pool, a, b, x_atomic, opt);
  opt.atomic_writes = false;
  async_rgs_solve(pool, a, b, x_racy, opt);
  EXPECT_EQ(x_atomic, x_racy);
}

TEST(KernelBitExactness, BlockSingleWorkerEqualsSequentialBlock) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(7, 7);
  const MultiVector b = random_multivector(a.rows(), 3, 11);

  RgsOptions seq;
  seq.sweeps = 25;
  seq.seed = 77;
  MultiVector x_seq(a.rows(), 3);
  rgs_solve_block(a, b, x_seq, seq);

  MultiVector x_async(a.rows(), 3);
  AsyncRgsOptions opt;
  opt.sweeps = 25;
  opt.seed = 77;
  opt.workers = 1;
  async_rgs_solve_block(pool, a, b, x_async, opt);

  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t c = 0; c < 3; ++c)
      ASSERT_EQ(x_seq.at(i, c), x_async.at(i, c)) << i << "," << c;
}

}  // namespace
}  // namespace asyrgs
