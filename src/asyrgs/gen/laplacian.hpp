// Structured SPD model problems: grid Laplacians.
//
// These are the "reference scenario" matrices of the paper: sparse, with
// per-row nonzero counts between C1 and C2 and a small C2/C1 ratio.  The 1-D
// Laplacian additionally has a closed-form spectrum, which the tests use to
// validate the Lanczos estimator and the theory module end to end.
#pragma once

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// 1-D Dirichlet Laplacian: tridiagonal (-1, 2, -1), size n.
/// Eigenvalues: 2 - 2 cos(k pi / (n+1)), k = 1..n.
[[nodiscard]] CsrMatrix laplacian_1d(index_t n);

/// 2-D 5-point Dirichlet Laplacian on an nx x ny grid with optional
/// anisotropy: -ax u_xx - ay u_yy discretized with unit mesh width.
[[nodiscard]] CsrMatrix laplacian_2d(index_t nx, index_t ny, double ax = 1.0,
                                     double ay = 1.0);

/// 3-D 7-point Dirichlet Laplacian on an nx x ny x nz grid.
[[nodiscard]] CsrMatrix laplacian_3d(index_t nx, index_t ny, index_t nz);

/// Policy-aware variants: assemble directly at the target (Index, Value)
/// width — no full-width intermediate (the builder's constructor is the
/// index-width guard).  Stencil values are small integers, exact in float,
/// so every policy generates identical matrices up to storage width.
/// (Definitions in laplacian.cpp, instantiated for the three supported
/// policies.)
template <class Index, class Value>
[[nodiscard]] CsrMatrixT<Index, Value> laplacian_1d_as(index_t n);
template <class Index, class Value>
[[nodiscard]] CsrMatrixT<Index, Value> laplacian_2d_as(index_t nx, index_t ny,
                                                       double ax = 1.0,
                                                       double ay = 1.0);
template <class Index, class Value>
[[nodiscard]] CsrMatrixT<Index, Value> laplacian_3d_as(index_t nx, index_t ny,
                                                       index_t nz);

/// Exact k-th eigenvalue (1-based) of laplacian_1d(n).
[[nodiscard]] double laplacian_1d_eigenvalue(index_t n, index_t k);

}  // namespace asyrgs
