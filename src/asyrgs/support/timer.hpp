// Wall-clock timing utilities for benchmarks and time-based synchronization
// schemes (the paper notes a "time based scheme for synchronizing the
// processors should be sufficient", Section 5 discussion).
#pragma once

#include <chrono>

namespace asyrgs {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { reset(); }

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Runs `fn` and returns the elapsed wall time in seconds.
template <typename Fn>
double timed_seconds(Fn&& fn) {
  WallTimer t;
  fn();
  return t.seconds();
}

}  // namespace asyrgs
