// End-to-end integration tests: the full social-media regression pipeline
// (generate -> characterize -> scale -> solve by four methods -> verify),
// mirroring the structure of the paper's Section 9 experiments at test
// scale.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/asyrgs.hpp"

namespace asyrgs {
namespace {

class SocialPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SocialGramOptions opt;
    opt.terms = 500;
    opt.documents = 2500;
    opt.mean_doc_length = 6;
    opt.ridge = 2.0;
    opt.seed = 2024;
    system_ = make_social_gram(opt);
    x_star_ = random_vector(system_.gram.rows(), 7);
    b_ = rhs_from_solution(system_.gram, x_star_);
  }

  SocialGram system_;
  std::vector<double> x_star_;
  std::vector<double> b_;
};

TEST_F(SocialPipelineTest, MatrixHasTheAdvertisedShape) {
  const CsrMatrix& a = system_.gram;
  EXPECT_TRUE(is_symmetric(a, 1e-10));
  EXPECT_FALSE(is_strictly_diagonally_dominant(a));
  const RowNnzStats stats = row_nnz_stats(a);
  EXPECT_GT(stats.ratio, 3.0);  // skewed rows, like the paper's matrix
}

TEST_F(SocialPipelineTest, FourSolversAgreeOnTheSolution) {
  ThreadPool pool(8);
  const CsrMatrix& a = system_.gram;
  const double tol = 1e-8;

  // 1. CG.
  std::vector<double> x_cg(a.rows(), 0.0);
  SolveOptions cg_opt;
  cg_opt.max_iterations = 4000;
  cg_opt.rel_tol = tol;
  const SolveReport cg_rep = cg_solve(pool, a, b_, x_cg, cg_opt);
  ASSERT_TRUE(cg_rep.converged);

  // 2. Sequential randomized Gauss-Seidel.
  std::vector<double> x_rgs(a.rows(), 0.0);
  RgsOptions rgs_opt;
  rgs_opt.sweeps = 4000;
  rgs_opt.rel_tol = tol;
  const RgsReport rgs_rep = rgs_solve(a, b_, x_rgs, rgs_opt);
  ASSERT_TRUE(rgs_rep.converged);

  // 3. AsyRGS with occasional synchronization.
  std::vector<double> x_async(a.rows(), 0.0);
  AsyncRgsOptions async_opt;
  async_opt.sweeps = 4000;
  async_opt.workers = 8;
  async_opt.sync = SyncMode::kBarrierPerSweep;
  async_opt.rel_tol = tol;
  const AsyncRgsReport async_rep =
      async_rgs_solve(pool, a, b_, x_async, async_opt);
  ASSERT_TRUE(async_rep.converged);

  // 4. FCG preconditioned by AsyRGS.
  std::vector<double> x_fcg(a.rows(), 0.0);
  AsyRgsPreconditioner pc(pool, a, 3, 8);
  FcgOptions fo;
  fo.base.max_iterations = 2000;
  fo.base.rel_tol = tol;
  const FcgReport fcg_rep = fcg_solve(pool, a, b_, x_fcg, pc, fo);
  ASSERT_TRUE(fcg_rep.base.converged);

  // All four must be close to the reference solution in relative 2-norm.
  for (const auto* x : {&x_cg, &x_rgs, &x_async, &x_fcg}) {
    EXPECT_LT(nrm2(subtract(*x, x_star_)) / nrm2(x_star_), 1e-4);
  }
}

TEST_F(SocialPipelineTest, ScaledSolveMapsBackToOriginalSystem) {
  // Solve through the unit-diagonal transformation (Section 3) and verify
  // the mapped-back solution solves the *original* system.
  const CsrMatrix& b_mat = system_.gram;
  const UnitDiagonalScaling scaling(b_mat);
  const CsrMatrix a = scaling.scale_matrix(b_mat);
  ASSERT_TRUE(has_unit_diagonal(a, 1e-10));

  const std::vector<double> dz = scaling.scale_rhs(b_);
  std::vector<double> x(a.rows(), 0.0);
  ThreadPool pool(8);
  AsyncRgsOptions opt;
  opt.sweeps = 6000;
  opt.workers = 8;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-9;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, dz, x, opt);
  ASSERT_TRUE(rep.converged);

  const std::vector<double> y = scaling.unscale_solution(x);
  EXPECT_LT(relative_residual(b_mat, b_, y), 1e-7);
}

TEST_F(SocialPipelineTest, MultiRhsRegressionLikeThePaper) {
  // The 51-label setting in miniature: a block of right-hand sides solved
  // together by block CG and by block AsyRGS; solutions must agree.
  ThreadPool pool(8);
  const CsrMatrix& a = system_.gram;
  const index_t k = 7;
  const MultiVector x_true = random_multivector(a.rows(), k, 31);
  const MultiVector rhs = rhs_from_solution(a, x_true);

  MultiVector x_bcg(a.rows(), k);
  SolveOptions so;
  so.max_iterations = 4000;
  so.rel_tol = 1e-9;
  const BlockSolveReport bcg = block_cg_solve(pool, a, rhs, x_bcg, so);
  ASSERT_TRUE(bcg.all_converged(k));

  MultiVector x_async(a.rows(), k);
  AsyncRgsOptions ao;
  ao.sweeps = 6000;
  ao.workers = 8;
  ao.sync = SyncMode::kBarrierPerSweep;
  ao.rel_tol = 1e-9;
  const AsyncRgsReport rep = async_rgs_solve_block(pool, a, rhs, x_async, ao);
  ASSERT_TRUE(rep.converged);

  const auto diffs = column_diff_norms(x_bcg, x_async);
  const auto norms = column_norms(x_bcg);
  for (index_t c = 0; c < k; ++c)
    EXPECT_LT(diffs[c] / norms[c], 1e-4) << "column " << c;
}

TEST_F(SocialPipelineTest, LeastSquaresOnTheRawFactor) {
  // Section 8 end-to-end: regress labels directly on the document-term
  // matrix F (overdetermined LSQ) with the asynchronous solver, checked
  // against CGNR.  Terms that never occur give empty columns; drop them
  // first, as the paper did ("after removing rows and columns that were
  // identically zero").
  ThreadPool pool(8);
  const CsrMatrix f = drop_empty_columns(system_.factor).matrix;
  const std::vector<double> coeffs = random_vector(f.cols(), 41);
  std::vector<double> labels = rhs_from_solution(f, coeffs);

  std::vector<double> x_async(f.cols(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4000;
  opt.workers = 8;
  opt.step_size = 0.9;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_lsq_solve(pool, f, labels, x_async, opt);
  ASSERT_TRUE(rep.converged);

  std::vector<double> x_cgnr(f.cols(), 0.0);
  SolveOptions so;
  so.max_iterations = 4000;
  so.rel_tol = 1e-10;
  const SolveReport cgnr = cgnr_solve(pool, f, labels, x_cgnr, so);
  ASSERT_TRUE(cgnr.converged);

  EXPECT_LT(nrm2(subtract(x_async, x_cgnr)) / nrm2(x_cgnr), 1e-3);
}

TEST(Integration, MatrixMarketRoundTripThroughSolver) {
  // Persist a generated system, reload it, and solve: exercises the IO path
  // a downstream user would take.
  const CsrMatrix a_orig = laplacian_2d(9, 9);
  const std::string path = "/tmp/asyrgs_integration.mtx";
  write_matrix_market_file(path, a_orig);
  const CsrMatrix a = read_matrix_market_file(path);
  ASSERT_TRUE(a.equals(a_orig, 0.0));

  const std::vector<double> x_star = random_vector(a.rows(), 3);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  ThreadPool pool(4);
  AsyncRgsOptions opt;
  opt.sweeps = 3000;
  opt.workers = 4;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-9;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-6);
}

}  // namespace
}  // namespace asyrgs
