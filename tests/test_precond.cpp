// Preconditioner tests, including the paper's headline composition:
// Flexible CG preconditioned by asynchronous randomized Gauss-Seidel.
#include <gtest/gtest.h>

#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/cg.hpp"
#include "asyrgs/iter/fcg.hpp"
#include "asyrgs/iter/precond.hpp"
#include "asyrgs/linalg/norms.hpp"

namespace asyrgs {
namespace {

TEST(Precond, IdentityCopiesInput) {
  IdentityPreconditioner id;
  std::vector<double> r = {1.0, 2.0};
  std::vector<double> z;
  id.apply(r, z);
  EXPECT_EQ(z, r);
  EXPECT_FALSE(id.is_variable());
}

TEST(Precond, JacobiDividesByDiagonal) {
  const CsrMatrix a = laplacian_1d(4);  // diagonal = 2
  JacobiPreconditioner jac(a);
  std::vector<double> r = {2.0, 4.0, 6.0, 8.0};
  std::vector<double> z;
  jac.apply(r, z);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(z[i], r[i] / 2.0);
}

TEST(Precond, RgsIsVariableAcrossApplications) {
  const CsrMatrix a = laplacian_2d(8, 8);
  RgsPreconditioner pc(a, 2, 1.0, 11);
  EXPECT_TRUE(pc.is_variable());
  const std::vector<double> r = random_vector(a.rows(), 3);
  std::vector<double> z1, z2;
  pc.apply(r, z1);
  pc.apply(r, z2);
  EXPECT_NE(z1, z2);  // fresh random directions per application
}

TEST(Precond, AsyRgsApproximatesInverse) {
  // Many sweeps of AsyRGS on A z = r should produce z ~ A^{-1} r.
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> z_star = random_vector(a.rows(), 5);
  const std::vector<double> r = rhs_from_solution(a, z_star);

  AsyRgsPreconditioner pc(pool, a, /*sweeps=*/400, /*workers=*/4);
  std::vector<double> z;
  pc.apply(r, z);
  EXPECT_LT(relative_residual(a, r, z), 1e-2);
  EXPECT_TRUE(pc.is_variable());
  EXPECT_EQ(pc.sweeps(), 400);
  EXPECT_EQ(pc.workers(), 4);
}

class FcgAsyRgsTest : public ::testing::TestWithParam<int> {};

TEST_P(FcgAsyRgsTest, TableOneComposition) {
  // The Table 1 composition at several inner-sweep counts: FCG + AsyRGS
  // must converge, and more inner sweeps must not increase outer
  // iterations.
  const int inner_sweeps = GetParam();
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(16, 16);
  const std::vector<double> x_star = random_vector(a.rows(), 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  AsyRgsPreconditioner pc(pool, a, inner_sweeps, /*workers=*/8);
  FcgOptions fo;
  fo.base.max_iterations = 500;
  fo.base.rel_tol = 1e-8;
  std::vector<double> x(a.rows(), 0.0);
  const FcgReport rep = fcg_solve(pool, a, b, x, pc, fo);
  EXPECT_TRUE(rep.base.converged) << "inner sweeps " << inner_sweeps;
  EXPECT_LT(relative_residual(a, b, x), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(InnerSweeps, FcgAsyRgsTest,
                         ::testing::Values(1, 2, 5, 10));

TEST(Precond, MoreInnerSweepsReduceOuterIterations) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(18, 18);
  const std::vector<double> b = random_vector(a.rows(), 13);

  auto outer_iters = [&](int sweeps) {
    AsyRgsPreconditioner pc(pool, a, sweeps, 8);
    FcgOptions fo;
    fo.base.max_iterations = 2000;
    fo.base.rel_tol = 1e-8;
    std::vector<double> x(a.rows(), 0.0);
    return fcg_solve(pool, a, b, x, pc, fo).base.iterations;
  };
  const int with_1 = outer_iters(1);
  const int with_10 = outer_iters(10);
  EXPECT_LT(with_10, with_1);
}

TEST(Precond, WorksOnSkewedGramSystem) {
  ThreadPool pool(8);
  SocialGramOptions gopt;
  gopt.terms = 300;
  gopt.documents = 1200;
  gopt.ridge = 2.0;
  gopt.seed = 17;
  const CsrMatrix a = make_social_gram(gopt).gram;
  const std::vector<double> b = random_vector(a.rows(), 19);

  AsyRgsPreconditioner pc(pool, a, 3, 8);
  FcgOptions fo;
  fo.base.max_iterations = 400;
  fo.base.rel_tol = 1e-8;
  std::vector<double> x(a.rows(), 0.0);
  const FcgReport rep = fcg_solve(pool, a, b, x, pc, fo);
  EXPECT_TRUE(rep.base.converged);
}

}  // namespace
}  // namespace asyrgs
