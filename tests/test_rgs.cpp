// Randomized Gauss-Seidel tests (sequential core): convergence, theoretical
// decay rate (equation (2)), determinism, block/single consistency.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/theory/bounds.hpp"

namespace asyrgs {
namespace {

TEST(Rgs, SolvesLaplacianToTolerance) {
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> x_star = random_vector(a.rows(), 3);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  RgsOptions opt;
  opt.sweeps = 5000;
  opt.rel_tol = 1e-8;
  opt.seed = 7;
  const RgsReport rep = rgs_solve(a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(relative_residual(a, b, x), 1e-8);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-6);
}

TEST(Rgs, HandlesNonUnitDiagonalDirectly) {
  // Iteration (3): arbitrary positive diagonal without pre-scaling.
  RandomBandedOptions gopt;
  gopt.n = 300;
  gopt.seed = 11;
  const CsrMatrix a = random_sdd(gopt);
  const std::vector<double> x_star = random_vector(a.rows(), 5);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  RgsOptions opt;
  opt.sweeps = 2000;
  opt.rel_tol = 1e-9;
  const RgsReport rep = rgs_solve(a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(Rgs, ScaledAndUnscaledRunsAgreeThroughTheDMap) {
  // Section 3 "Non-Unit Diagonal": running iteration (3) on B directly and
  // iteration (1) on A = DBD with the same directions gives y_j = D x_j.
  RandomBandedOptions gopt;
  gopt.n = 120;
  gopt.seed = 13;
  const CsrMatrix b_mat = random_sdd(gopt);
  const std::vector<double> z = random_vector(b_mat.rows(), 15);

  const UnitDiagonalScaling scaling(b_mat);
  const CsrMatrix a = scaling.scale_matrix(b_mat);
  const std::vector<double> dz = scaling.scale_rhs(z);

  RgsOptions opt;
  opt.sweeps = 3;
  opt.seed = 99;

  std::vector<double> y(b_mat.rows(), 0.0);
  rgs_solve(b_mat, z, y, opt);

  std::vector<double> x(b_mat.rows(), 0.0);
  rgs_solve(a, dz, x, opt);
  const std::vector<double> y_mapped = scaling.unscale_solution(x);

  for (index_t i = 0; i < b_mat.rows(); ++i)
    EXPECT_NEAR(y[i], y_mapped[i], 1e-11 * (1.0 + std::abs(y[i])));
}

TEST(Rgs, DeterministicPerSeed) {
  const CsrMatrix a = laplacian_1d(60);
  const std::vector<double> b = random_vector(60, 1);
  RgsOptions opt;
  opt.sweeps = 4;
  opt.seed = 42;

  std::vector<double> x1(60, 0.0), x2(60, 0.0), x3(60, 0.0);
  rgs_solve(a, b, x1, opt);
  rgs_solve(a, b, x2, opt);
  opt.seed = 43;
  rgs_solve(a, b, x3, opt);

  EXPECT_EQ(x1, x2);
  EXPECT_NE(x1, x3);
}

TEST(Rgs, BlockWithOneColumnMatchesSingleRhs) {
  const CsrMatrix a = laplacian_2d(7, 7);
  const std::vector<double> b = random_vector(a.rows(), 21);
  RgsOptions opt;
  opt.sweeps = 6;
  opt.seed = 5;

  std::vector<double> x_single(a.rows(), 0.0);
  rgs_solve(a, b, x_single, opt);

  MultiVector b_block(a.rows(), 1);
  b_block.set_column(0, b);
  MultiVector x_block(a.rows(), 1);
  rgs_solve_block(a, b_block, x_block, opt);

  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_DOUBLE_EQ(x_single[i], x_block.at(i, 0)) << "entry " << i;
}

TEST(Rgs, BlockSolvesAllColumns) {
  const CsrMatrix a = laplacian_2d(9, 8);
  const MultiVector x_star = random_multivector(a.rows(), 4, 23);
  const MultiVector b = rhs_from_solution(a, x_star);
  MultiVector x(a.rows(), 4);
  RgsOptions opt;
  opt.sweeps = 4000;
  opt.rel_tol = 1e-8;
  const RgsReport rep = rgs_solve_block(a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(Rgs, RejectsBadStepSize) {
  const CsrMatrix a = laplacian_1d(10);
  const std::vector<double> b = random_vector(10, 1);
  std::vector<double> x(10, 0.0);
  RgsOptions opt;
  opt.step_size = 0.0;
  EXPECT_THROW(rgs_solve(a, b, x, opt), Error);
  opt.step_size = 2.0;
  EXPECT_THROW(rgs_solve(a, b, x, opt), Error);
}

TEST(Rgs, RejectsNonPositiveDiagonal) {
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, -2.0);
  const CsrMatrix a = builder.to_csr();
  std::vector<double> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(rgs_solve(a, b, x), Error);
}

TEST(Rgs, ContractionFactorFormula) {
  EXPECT_DOUBLE_EQ(rgs_contraction_factor(100, 0.5, 1.0), 1.0 - 0.5 / 100.0);
  // beta(2-beta) is maximized at beta = 1.
  EXPECT_GT(rgs_contraction_factor(100, 0.5, 0.5),
            rgs_contraction_factor(100, 0.5, 1.0));
  EXPECT_GT(rgs_contraction_factor(100, 0.5, 1.5),
            rgs_contraction_factor(100, 0.5, 1.0));
  EXPECT_THROW((void)rgs_contraction_factor(0, 0.5, 1.0), Error);
}

/// Property sweep: the measured mean squared A-norm error after m updates
/// must respect the Griebel-Oswald bound (2) within sampling slack.
class RgsDecayTest
    : public ::testing::TestWithParam<std::tuple<index_t, double>> {};

TEST_P(RgsDecayTest, MeanErrorRespectsEquationTwo) {
  const auto [n, beta] = GetParam();
  const CsrMatrix a_raw = laplacian_1d(n);
  const UnitDiagonalScaling scaling(a_raw);
  const CsrMatrix a = scaling.scale_matrix(a_raw);  // unit diagonal

  // Unit-diagonal 1-D Laplacian has lambda_min = lambda_min(raw) / 2.
  const double lambda_min = laplacian_1d_eigenvalue(n, 1) / 2.0;

  const std::vector<double> x_star = random_vector(n, 77);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const double e0 = std::pow(a_norm_error(a, std::vector<double>(n, 0.0),
                                          x_star),
                             2);

  const int sweeps = 4;
  const int trials = 40;
  double mean_err = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<double> x(n, 0.0);
    RgsOptions opt;
    opt.sweeps = sweeps;
    opt.step_size = beta;
    opt.seed = 1000 + static_cast<std::uint64_t>(trial);
    rgs_solve(a, b, x, opt);
    mean_err += std::pow(a_norm_error(a, x, x_star), 2);
  }
  mean_err /= trials;

  const double bound =
      synchronous_bound(n, lambda_min, beta,
                        static_cast<std::uint64_t>(sweeps) *
                            static_cast<std::uint64_t>(n)) *
      e0;
  // 2x slack absorbs the finite sample size (the bound holds in
  // expectation, and empirically with a comfortable margin).
  EXPECT_LT(mean_err, 2.0 * bound + 1e-14);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSteps, RgsDecayTest,
    ::testing::Combine(::testing::Values<index_t>(40, 100),
                       ::testing::Values(0.5, 1.0, 1.5)));

}  // namespace
}  // namespace asyrgs
