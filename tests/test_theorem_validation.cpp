// Statistical validation of Theorems 2-4: the *measured mean* squared
// A-norm error of the simulated governing iterations must respect the
// proved bounds (which hold in expectation).  Each test averages over many
// direction seeds; a slack factor absorbs finite-sample noise.  The bounds
// are loose by design (the paper itself notes they "tend to be rather
// pessimistic"), so these assertions are comfortably robust.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/lanczos.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/simulate/async_sim.hpp"
#include "asyrgs/simulate/virtual_engine.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/support/thread_pool.hpp"
#include "asyrgs/theory/bounds.hpp"

namespace asyrgs {
namespace {

struct ValidationProblem {
  CsrMatrix a;  // unit diagonal
  std::vector<double> x_star;
  std::vector<double> b;
  std::vector<double> x0;
  double e0 = 0.0;  // ||x0 - x*||_A^2
  TheoremInputs inputs;
};

/// Moderately conditioned unit-diagonal SPD test matrix (random SDD, then
/// symmetrically scaled).  kappa ~ 20, so the epoch-level bounds of
/// Theorems 2-4 actually bite instead of collapsing to ~1 as they do on an
/// ill-conditioned Laplacian.  The spectrum is measured by a
/// full-dimension Lanczos run (exact up to roundoff).
ValidationProblem make_problem(index_t n, index_t tau, double beta) {
  ValidationProblem p;
  RandomBandedOptions gopt;
  gopt.n = n;
  gopt.offdiag_per_row = 6;
  gopt.bandwidth = 32;
  gopt.dominance_margin = 0.1;
  gopt.seed = 99;
  const CsrMatrix raw = random_sdd(gopt);
  p.a = UnitDiagonalScaling(raw).scale_matrix(raw);
  p.x_star = random_vector(n, 1234);
  p.b = rhs_from_solution(p.a, p.x_star);
  p.x0.assign(static_cast<std::size_t>(n), 0.0);
  p.e0 = std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);

  p.inputs.n = n;
  p.inputs.rho = rho(p.a);
  p.inputs.rho2 = rho2(p.a);
  ThreadPool pool(4);
  const LanczosResult spec =
      lanczos_extreme(pool, p.a, static_cast<int>(n), /*seed=*/17);
  p.inputs.lambda_min = spec.lambda_min;
  p.inputs.lambda_max = spec.lambda_max;
  p.inputs.tau = tau;
  p.inputs.beta = beta;
  return p;
}

/// Mean final squared error over `trials` independent direction streams.
template <typename RunFn>
double mean_final_error(int trials, RunFn&& run) {
  double acc = 0.0;
  for (int t = 0; t < trials; ++t) acc += run(static_cast<std::uint64_t>(t));
  return acc / trials;
}

// --- Equation (2): synchronous baseline --------------------------------------

TEST(TheoremValidation, SynchronousDecayRespectsEquationTwo) {
  ValidationProblem p = make_problem(60, 0, 1.0);
  const std::uint64_t m = 60 * 6;
  const ZeroDelay delay;

  const double mean_err = mean_final_error(40, [&](std::uint64_t seed) {
    SimOptions opt;
    opt.iterations = m;
    opt.seed = 5000 + seed;
    return simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const double bound =
      synchronous_bound(p.inputs.n, p.inputs.lambda_min, 1.0, m) * p.e0;
  EXPECT_LT(mean_err, 1.5 * bound);
}

// --- Theorem 2 (consistent read, beta = 1) ------------------------------------

class Theorem2Test : public ::testing::TestWithParam<index_t> {};

TEST_P(Theorem2Test, ConsistentDecayWithinEpochBound) {
  const index_t tau = GetParam();
  ValidationProblem p = make_problem(60, tau, 1.0);
  ASSERT_TRUE(consistent_bound_applicable(p.inputs))
      << "test parameters violate 2 rho tau < 1";

  // Theorem 2(a): after m >= T0 iterations, E_m <= (1 - nu/2kappa) E_0.
  const std::uint64_t m =
      theorem_t0(p.inputs.n, p.inputs.lambda_max);
  const FixedDelay delay(tau);

  const double mean_err = mean_final_error(40, [&](std::uint64_t seed) {
    SimOptions opt;
    opt.iterations = m;
    opt.seed = 9000 + seed;
    return simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const double bound = consistent_epoch_factor(p.inputs) * p.e0;
  EXPECT_LT(mean_err, 1.5 * bound) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(TauSweep, Theorem2Test,
                         ::testing::Values<index_t>(1, 4, 12));

TEST(TheoremValidation, Theorem2FreeRunningBoundHolds) {
  const index_t tau = 6;
  ValidationProblem p = make_problem(50, tau, 1.0);
  const std::uint64_t epoch =
      theorem_t0(p.inputs.n, p.inputs.lambda_max) +
      static_cast<std::uint64_t>(tau);
  const std::uint64_t m = 4 * epoch;
  const FixedDelay delay(tau);

  const double mean_err = mean_final_error(30, [&](std::uint64_t seed) {
    SimOptions opt;
    opt.iterations = m;
    opt.seed = 11000 + seed;
    return simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const double bound = consistent_free_running_bound(p.inputs, m) * p.e0;
  EXPECT_LT(mean_err, 1.5 * bound);
}

// --- Theorem 3 (consistent read, beta < 1) --------------------------------------

class Theorem3Test : public ::testing::TestWithParam<double> {};

TEST_P(Theorem3Test, StepSizeControlledDecayWithinBound) {
  const double beta = GetParam();
  const index_t tau = 8;
  ValidationProblem p = make_problem(60, tau, beta);
  ASSERT_TRUE(consistent_bound_applicable(p.inputs));

  const std::uint64_t m = theorem_t0(p.inputs.n, p.inputs.lambda_max);
  const UniformDelay delay(tau, /*seed=*/777);

  const double mean_err = mean_final_error(40, [&](std::uint64_t seed) {
    SimOptions opt;
    opt.iterations = m;
    opt.seed = 13000 + seed;
    opt.step_size = beta;
    return simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const double bound = consistent_epoch_factor(p.inputs) * p.e0;
  EXPECT_LT(mean_err, 1.5 * bound) << "beta=" << beta;
}

INSTANTIATE_TEST_SUITE_P(BetaSweep, Theorem3Test,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0));

// --- Theorem 4 (inconsistent read, beta < 1) --------------------------------------

class Theorem4Test : public ::testing::TestWithParam<index_t> {};

TEST_P(Theorem4Test, InconsistentDecayWithinEpochBound) {
  const index_t tau = GetParam();
  const double beta = 0.5;
  // Larger n keeps rho2 tau^2 beta / 2 below 1 - beta at tau = 10.
  ValidationProblem p = make_problem(150, tau, beta);
  ASSERT_TRUE(inconsistent_bound_applicable(p.inputs))
      << "test parameters violate beta(1 - beta - rho2 tau^2 beta/2) > 0";

  const std::uint64_t m = theorem_t0(p.inputs.n, p.inputs.lambda_max);
  const BernoulliInclusion delay(tau, 0.5, /*seed=*/31337);

  const double mean_err = mean_final_error(40, [&](std::uint64_t seed) {
    SimOptions opt;
    opt.iterations = m;
    opt.seed = 17000 + seed;
    opt.step_size = beta;
    return simulate_inconsistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const double bound = inconsistent_epoch_factor(p.inputs) * p.e0;
  EXPECT_LT(mean_err, 1.5 * bound) << "tau=" << tau;
}

INSTANTIATE_TEST_SUITE_P(TauSweep, Theorem4Test,
                         ::testing::Values<index_t>(1, 4, 10));

// --- Virtual-worker conformance (production kernel, P = 64 / 256) -------------
//
// The tests above replay the governing iterations; these run the *shipped*
// update kernel through the deterministic virtual engine at worker counts
// far beyond the host (64 and 256), and require the measured decay to stay
// under the Theorem 2 / Theorem 4 envelopes.  The problem dimension scales
// with P so the preconditions genuinely hold — and they are asserted, never
// assumed.

struct VirtualWorkerCase {
  int processors;
  index_t n;  ///< sized so 2 rho tau < 1 at tau = P - 1
};

class VirtualWorkerEnvelopeTest
    : public ::testing::TestWithParam<VirtualWorkerCase> {};

TEST_P(VirtualWorkerEnvelopeTest, ConsistentDecayUnderTheorem2Envelope) {
  const auto [processors, n] = GetParam();
  const index_t tau = static_cast<index_t>(processors) - 1;
  ValidationProblem p = make_problem(n, tau, 1.0);
  ASSERT_TRUE(consistent_bound_applicable(p.inputs))
      << "2 rho tau = " << 2.0 * p.inputs.rho * static_cast<double>(tau);

  const std::uint64_t epoch = theorem_t0(p.inputs.n, p.inputs.lambda_max) +
                              static_cast<std::uint64_t>(tau);
  const std::uint64_t m = 4 * epoch;
  const BatchDelay delay(processors);

  const double mean_err = mean_final_error(5, [&](std::uint64_t seed) {
    VirtualEngineOptions opt;
    opt.iterations = m;
    opt.seed = 29000 + seed;
    return run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
        .final_error_sq;
  });
  const EnvelopeCheck check =
      check_consistent_envelope(p.inputs, p.e0, mean_err, m, /*slack=*/1.5);
  ASSERT_TRUE(check.applicable);
  EXPECT_TRUE(check.conforms)
      << "P=" << processors << ": measured E_m/E_0 = " << check.measured_ratio
      << " vs envelope = " << check.envelope;
}

TEST_P(VirtualWorkerEnvelopeTest, InconsistentDecayUnderTheorem4Envelope) {
  const auto [processors, n] = GetParam();
  ValidationProblem p = make_problem(n, 0, 1.0);
  const std::uint64_t m = static_cast<std::uint64_t>(processors) * 40 + 3000;

  double mean_err = 0.0;
  double mean_envelope = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    EventSimOptions event;
    event.processors = processors;
    event.iterations = m;
    event.seed = 31000 + static_cast<std::uint64_t>(t);
    const EventDrivenSchedule schedule = EventDrivenSchedule::build(p.a, event);

    // tau-hat is measured from the realized schedule; the Theorem 4 optimal
    // step for that tau-hat keeps omega positive — still asserted.
    TheoremInputs in = p.inputs;
    in.tau = schedule.tau();
    in.beta = optimal_beta_inconsistent(in.rho2, in.tau);
    ASSERT_TRUE(inconsistent_bound_applicable(in))
        << "P=" << processors << " tau-hat=" << in.tau;

    VirtualEngineOptions opt;
    opt.iterations = m;
    opt.seed = event.seed;  // consume the schedule's direction stream
    opt.step_size = in.beta;
    mean_err +=
        run_virtual_inconsistent(p.a, p.b, p.x0, p.x_star, schedule, opt)
            .final_error_sq;
    mean_envelope += inconsistent_free_running_bound(in, m);
  }
  mean_err /= trials;
  mean_envelope /= trials;
  EXPECT_LT(mean_err / p.e0, 1.5 * mean_envelope)
      << "P=" << processors << ": measured mean E_m/E_0 = " << mean_err / p.e0;
}

INSTANTIATE_TEST_SUITE_P(WorkerSweep, VirtualWorkerEnvelopeTest,
                         ::testing::Values(VirtualWorkerCase{64, 600},
                                           VirtualWorkerCase{256, 1500}));

// --- Boundary behaviour -----------------------------------------------------------

TEST(TheoremValidation, BoundBecomesVacuousAtTwoRhoTauEqualOne) {
  // At the 2 rho tau >= 1 boundary the Theorem 2 guarantee disappears
  // (nu <= 0); the code must report inapplicability rather than a bogus
  // bound.
  ValidationProblem p = make_problem(60, 1, 1.0);
  TheoremInputs in = p.inputs;
  in.tau = static_cast<index_t>(std::ceil(0.5 / in.rho));
  EXPECT_FALSE(consistent_bound_applicable(in));
  EXPECT_LE(nu_tau(in.rho, in.tau, 1.0), 0.0);
  // But a small enough step size restores a positive guarantee (Section 6).
  in.beta = optimal_beta_consistent(in.rho, in.tau);
  EXPECT_TRUE(consistent_bound_applicable(in));
}

TEST(TheoremValidation, OptimalBetaBeatsUnitStepUnderHeavyDelay) {
  // Section 6's claim: step-size control gives "a convergent method for any
  // delay (as long as we set the step size small enough)".  Regime where
  // unit steps genuinely fail: a unit-diagonal matrix with lambda_max >> 2
  // under batch delay tau = n - 1.  Every update in a batch is computed
  // from the same stale snapshot, so beta = 1 behaves like undamped Jacobi
  // (iteration matrix eigenvalue 1 - lambda_max, |.| > 1 -> divergence),
  // while beta~ = 1/(1 + 2 rho tau) stays convergent.
  const index_t n = 40;
  const double c = 0.2;  // A = (1-c) I + c * ones: lambda_max = 1+(n-1)c
  CooBuilder builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) builder.add(i, j, i == j ? 1.0 : c);
  ValidationProblem p;
  p.a = builder.to_csr();
  p.x_star = random_vector(n, 4321);
  p.b = rhs_from_solution(p.a, p.x_star);
  p.x0.assign(static_cast<std::size_t>(n), 0.0);
  p.e0 = std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);
  const double rho_val = rho(p.a);  // ~ lambda_max / n = 0.22

  const BatchDelay delay(n);  // tau = n - 1: lockstep full-sweep staleness
  const std::uint64_t m = static_cast<std::uint64_t>(n) * 30;

  auto run_with_beta = [&](double beta) {
    return mean_final_error(8, [&](std::uint64_t seed) {
      SimOptions opt;
      opt.iterations = m;
      opt.seed = 23000 + seed;
      opt.step_size = beta;
      return simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
          .final_error_sq;
    });
  };
  const double err_unit = run_with_beta(1.0);
  const double err_opt =
      run_with_beta(optimal_beta_consistent(rho_val, n - 1));
  EXPECT_LT(err_opt, p.e0);       // damped run actually converges
  EXPECT_GT(err_unit, 10.0 * p.e0);  // unit step diverges under this delay
  EXPECT_LT(err_opt, err_unit);
}

}  // namespace
}  // namespace asyrgs
