#include "asyrgs/sparse/coo.hpp"

namespace asyrgs {

// Anchor one instantiation per supported storage policy (see csr.cpp).
template class CooBuilderT<std::int64_t, double>;
template class CooBuilderT<std::int32_t, double>;
template class CooBuilderT<std::int32_t, float>;

}  // namespace asyrgs
