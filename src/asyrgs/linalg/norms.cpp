#include "asyrgs/linalg/norms.hpp"

#include <cmath>

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"

namespace asyrgs {

double a_norm(const CsrMatrix& a, const std::vector<double>& x) {
  require(a.square() && static_cast<index_t>(x.size()) == a.rows(),
          "a_norm: shape mismatch");
  std::vector<double> ax(x.size());
  a.multiply(x.data(), ax.data());
  const double q = dot(x, ax);
  // Tiny negative values can appear from rounding when x ~ 0.
  return std::sqrt(std::max(q, 0.0));
}

double a_norm_error(const CsrMatrix& a, const std::vector<double>& x,
                    const std::vector<double>& x_star) {
  return a_norm(a, subtract(x, x_star));
}

double residual_norm(const CsrMatrix& a, const std::vector<double>& b,
                     const std::vector<double>& x) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "residual_norm: shape mismatch");
  std::vector<double> r(b.size());
  a.multiply(x.data(), r.data());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  return nrm2(r);
}

double relative_residual(const CsrMatrix& a, const std::vector<double>& b,
                         const std::vector<double>& x) {
  const double bn = nrm2(b);
  const double rn = residual_norm(a, b, x);
  return bn > 0.0 ? rn / bn : rn;
}

double relative_residual_block(ThreadPool& pool, const CsrMatrix& a,
                               const MultiVector& b, const MultiVector& x) {
  MultiVector r(b.rows(), b.cols());
  block_residual(pool, a, b, x, r);
  const double bn = frobenius_norm(b);
  const double rn = frobenius_norm(r);
  return bn > 0.0 ? rn / bn : rn;
}

double relative_a_norm_error(const CsrMatrix& a, const std::vector<double>& x,
                             const std::vector<double>& x_star) {
  const double denom = a_norm(a, x_star);
  const double num = a_norm_error(a, x, x_star);
  return denom > 0.0 ? num / denom : num;
}

}  // namespace asyrgs
