#include "asyrgs/core/async_rgs.hpp"

#include <atomic>
#include <cmath>
#include <thread>

#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/support/aligned.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/barrier.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

std::vector<double> checked_inverse_diagonal(const CsrMatrix& a) {
  require(a.square(), "async_rgs: matrix must be square");
  std::vector<double> inv = a.diagonal();
  for (double& d : inv) {
    require(d > 0.0, "async_rgs: diagonal must be strictly positive");
    d = 1.0 / d;
  }
  return inv;
}

void validate(const AsyncRgsOptions& options) {
  require(options.sweeps >= 0, "async_rgs: sweeps must be non-negative");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "async_rgs: step size must be in (0, 2)");
  require(options.rel_tol >= 0.0, "async_rgs: rel_tol must be non-negative");
  require(options.sync_interval_seconds > 0.0,
          "async_rgs: sync interval must be positive");
}

/// One asynchronous coordinate update on the shared single-RHS iterate.
/// All reads of x are relaxed-atomic; the write honours the atomicity mode.
/// The arithmetic association (one subtraction per nonzero, then
/// beta * (acc / A_rr)) is kept identical to the sequential solver so that
/// a one-worker run reproduces it bit for bit.
inline void update_coordinate(const CsrMatrix& a, const double* b, double* x,
                              index_t r, double beta, double inv_diag,
                              bool atomic_writes) {
  double acc = b[r];
  const auto cols = a.row_cols(r);
  const auto vals = a.row_vals(r);
  for (std::size_t t = 0; t < cols.size(); ++t)
    acc -= vals[t] * atomic_load_relaxed(x[cols[t]]);
  const double delta = beta * (acc * inv_diag);
  if (atomic_writes)
    atomic_add_relaxed(x[r], delta);
  else
    racy_add(x[r], delta);
}

/// One asynchronous update applied to every column of the block iterate.
/// `gamma` is per-worker scratch of k doubles (caller guarantees cache-line
/// separation between workers' buffers).
inline void update_coordinate_block(const CsrMatrix& a, const MultiVector& b,
                                    MultiVector& x, index_t r, double beta,
                                    double inv_diag, bool atomic_writes,
                                    double* gamma) {
  const index_t k = b.cols();
  const double* b_row = b.row(r);
  for (index_t c = 0; c < k; ++c) gamma[c] = b_row[c];
  const auto cols = a.row_cols(r);
  const auto vals = a.row_vals(r);
  for (std::size_t t = 0; t < cols.size(); ++t) {
    const double arj = vals[t];
    const double* x_row = x.row(cols[t]);
    for (index_t c = 0; c < k; ++c)
      gamma[c] -= arj * atomic_load_relaxed(x_row[c]);
  }
  double* xr = x.row(r);
  if (atomic_writes) {
    for (index_t c = 0; c < k; ++c)
      atomic_add_relaxed(xr[c], beta * (gamma[c] * inv_diag));
  } else {
    for (index_t c = 0; c < k; ++c)
      racy_add(xr[c], beta * (gamma[c] * inv_diag));
  }
}

/// Per-worker direction schedule honouring the randomization scope.
///
/// kShared: one Philox stream over global indices; worker w consumes
/// positions {w, w+P, ...} (free-running/timed) or the per-sweep split
/// (barrier mode) — all modes consume the identical direction multiset.
///
/// kOwnerComputes: worker w owns the contiguous partition
/// [w*n/P-ish, ...) and draws uniformly from it via a worker-keyed stream.
class DirectionPlan {
 public:
  DirectionPlan(const AsyncRgsOptions& options, index_t n, int team)
      : scope_(options.scope),
        n_(n),
        team_(team),
        shared_(options.seed) {
    if (scope_ == RandomizationScope::kOwnerComputes) {
      lo_.resize(static_cast<std::size_t>(team));
      size_.resize(static_cast<std::size_t>(team));
      streams_.reserve(static_cast<std::size_t>(team));
      const index_t base = n / team;
      const index_t extra = n % team;
      index_t lo = 0;
      for (int w = 0; w < team; ++w) {
        const index_t size = base + (w < extra ? 1 : 0);
        lo_[static_cast<std::size_t>(w)] = lo;
        size_[static_cast<std::size_t>(w)] = size;
        lo += size;
        streams_.emplace_back(
            splitmix64(options.seed + 0x9E3779B97F4A7C15ull *
                                          static_cast<std::uint64_t>(w + 1)));
      }
    }
  }

  /// Updates worker w performs per sweep.
  [[nodiscard]] index_t per_sweep(int w) const {
    if (scope_ == RandomizationScope::kOwnerComputes)
      return size_[static_cast<std::size_t>(w)];
    // Count of global indices congruent to w modulo team in [0, n).
    return (n_ - 1 - static_cast<index_t>(w)) / team_ + 1;
  }

  /// Total updates worker w performs over `sweeps` sweeps in free-running /
  /// timed numbering.  For the shared scope this counts the global indices
  /// congruent to w modulo team in [0, sweeps*n) — exactly tiling the
  /// global stream so the direction multiset is identical to the
  /// sequential run.
  [[nodiscard]] std::uint64_t total_updates(int w, int sweeps) const {
    if (scope_ == RandomizationScope::kOwnerComputes)
      return static_cast<std::uint64_t>(sweeps) *
             static_cast<std::uint64_t>(size_[static_cast<std::size_t>(w)]);
    const std::uint64_t total = static_cast<std::uint64_t>(sweeps) *
                                static_cast<std::uint64_t>(n_);
    if (static_cast<std::uint64_t>(w) >= total) return 0;
    return (total - 1 - static_cast<std::uint64_t>(w)) /
               static_cast<std::uint64_t>(team_) +
           1;
  }

  /// Direction for worker w's k-th update (free-running/timed numbering).
  [[nodiscard]] index_t pick(int w, std::uint64_t k) const {
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      return lo_[sw] + streams_[sw].index_at(k, size_[sw]);
    }
    const std::uint64_t j =
        static_cast<std::uint64_t>(w) +
        k * static_cast<std::uint64_t>(team_);
    return shared_.index_at(j, n_);
  }

  /// Direction for worker w's t-th update of sweep `sweep` (barrier mode).
  [[nodiscard]] index_t pick_in_sweep(int w, int sweep, index_t t) const {
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      const std::uint64_t k = static_cast<std::uint64_t>(sweep) *
                                  static_cast<std::uint64_t>(size_[sw]) +
                              static_cast<std::uint64_t>(t);
      return lo_[sw] + streams_[sw].index_at(k, size_[sw]);
    }
    const std::uint64_t j = static_cast<std::uint64_t>(sweep) *
                                static_cast<std::uint64_t>(n_) +
                            static_cast<std::uint64_t>(w) +
                            static_cast<std::uint64_t>(t) *
                                static_cast<std::uint64_t>(team_);
    return shared_.index_at(j, n_);
  }

 private:
  RandomizationScope scope_;
  index_t n_;
  int team_;
  Philox4x32 shared_;
  std::vector<index_t> lo_;
  std::vector<index_t> size_;
  std::vector<Philox4x32> streams_;
};

/// Generic execution engine shared by the single-RHS and block solvers.
/// `update(worker, r)` performs one coordinate update; `residual()` computes
/// the convergence metric at synchronization points (called by worker 0
/// only, all other workers parked at a barrier).
template <typename UpdateFn, typename ResidualFn>
void run_engine(ThreadPool& pool, const AsyncRgsOptions& options, index_t n,
                int workers, UpdateFn&& update, ResidualFn&& residual,
                AsyncRgsReport& report) {
  const bool check_enabled = options.track_history || options.rel_tol > 0.0;

  if (options.sync == SyncMode::kFreeRunning) {
    const DirectionPlan plan(options, n, workers);
    pool.run_team(workers, [&](int id, int team) {
      // The pool may shrink the team on nested calls; rebuild the plan so
      // the partitioning matches the actual team.
      const DirectionPlan* my_plan = &plan;
      DirectionPlan fallback(options, n, team);
      if (team != workers) my_plan = &fallback;
      const std::uint64_t my_total =
          my_plan->total_updates(id, options.sweeps);
      const std::uint64_t stride =
          static_cast<std::uint64_t>(std::max<index_t>(my_plan->per_sweep(id), 1));
      for (std::uint64_t k = 0; k < my_total; ++k) {
        update(id, my_plan->pick(id, k));
        // Yield once per sweep-equivalent so that on oversubscribed hosts
        // the workers interleave instead of each burning its whole budget in
        // a few scheduling quanta (which would make the effective delay tau
        // unbounded and stall owner-computes partitions).
        if (team > 1 && (k + 1) % stride == 0) std::this_thread::yield();
      }
    });
    report.sweeps_done = options.sweeps;
    report.updates = static_cast<long long>(options.sweeps) *
                     static_cast<long long>(n);
    return;
  }

  if (options.sync == SyncMode::kBarrierPerSweep) {
    const DirectionPlan plan(options, n, workers);
    SpinBarrier barrier(workers);
    std::atomic<bool> stop{false};
    std::atomic<int> sweeps_done{0};
    pool.run_team(workers, [&](int id, int team) {
      const bool use_barrier = (team == workers && team > 1);
      const DirectionPlan* my_plan = &plan;
      DirectionPlan fallback(options, n, team);
      if (team != workers) my_plan = &fallback;
      const index_t mine = my_plan->per_sweep(id);
      for (int sweep = 0; sweep < options.sweeps; ++sweep) {
        for (index_t t = 0; t < mine; ++t)
          update(id, my_plan->pick_in_sweep(id, sweep, t));
        if (use_barrier) barrier.arrive_and_wait();
        if (id == 0) {
          sweeps_done.store(sweep + 1, std::memory_order_relaxed);
          if (check_enabled) {
            const double rel = residual();
            report.final_relative_residual = rel;
            if (options.track_history)
              report.residual_history.push_back(rel);
            if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
              report.converged = true;
              stop.store(true, std::memory_order_release);
            }
          }
        }
        if (use_barrier) barrier.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) break;
      }
    });
    report.sweeps_done = sweeps_done.load(std::memory_order_relaxed);
    report.updates = static_cast<long long>(report.sweeps_done) *
                     static_cast<long long>(n);
    return;
  }

  // kTimedBarrier: rounds of `sync_interval_seconds` of free iteration
  // followed by a rendezvous.  Each worker runs on its own clock, so all
  // arrive at the barrier at nearly the same moment regardless of load
  // imbalance (the Section 5 "time based scheme").
  const DirectionPlan plan(options, n, workers);
  SpinBarrier barrier(workers);
  std::atomic<bool> stop{false};
  std::atomic<long long> updates_done{0};
  pool.run_team(workers, [&](int id, int team) {
    const bool use_barrier = (team == workers && team > 1);
    const DirectionPlan* my_plan = &plan;
    DirectionPlan fallback(options, n, team);
    if (team != workers) my_plan = &fallback;
    const std::uint64_t my_total = my_plan->total_updates(id, options.sweeps);
    const std::uint64_t stride = static_cast<std::uint64_t>(
        std::max<index_t>(my_plan->per_sweep(id), 1));
    std::uint64_t k = 0;
    while (!stop.load(std::memory_order_acquire)) {
      WallTimer round_timer;
      std::uint64_t done_this_round = 0;
      while (k < my_total) {
        update(id, my_plan->pick(id, k));
        ++k;
        ++done_this_round;
        // Once per sweep-equivalent, let the scheduler rotate workers: on an
        // oversubscribed host a round's time budget is otherwise consumed by
        // one worker at a time, freezing the other partitions for the whole
        // round (catastrophic for owner-computes randomization).
        if (team > 1 && done_this_round % stride == 0)
          std::this_thread::yield();
        // Clock checks are cheap but not free; amortize over 32 updates.
        if ((done_this_round & 31u) == 0 &&
            round_timer.seconds() >= options.sync_interval_seconds)
          break;
      }
      updates_done.fetch_add(static_cast<long long>(done_this_round),
                             std::memory_order_relaxed);
      if (use_barrier) barrier.arrive_and_wait();
      if (id == 0) {
        const long long total_target =
            static_cast<long long>(options.sweeps) *
            static_cast<long long>(n);
        bool should_stop =
            updates_done.load(std::memory_order_relaxed) >= total_target;
        if (check_enabled) {
          const double rel = residual();
          report.final_relative_residual = rel;
          if (options.track_history) report.residual_history.push_back(rel);
          if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
            report.converged = true;
            should_stop = true;
          }
        }
        if (should_stop) stop.store(true, std::memory_order_release);
      }
      if (use_barrier) barrier.arrive_and_wait();
    }
  });
  report.updates = updates_done.load(std::memory_order_relaxed);
  report.sweeps_done =
      static_cast<int>(report.updates / std::max<index_t>(n, 1));
}

}  // namespace

AsyncRgsReport async_rgs_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "async_rgs_solve: shape mismatch");
  validate(options);
  const index_t n = a.rows();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const double beta = options.step_size;

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  auto update = [&](int /*worker*/, index_t r) {
    update_coordinate(a, b.data(), x.data(), r, beta, inv_diag[r],
                      options.atomic_writes);
  };
  auto residual = [&]() { return relative_residual(a, b, x); };

  WallTimer timer;
  run_engine(pool, options, n, workers, update, residual, report);
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_rgs_solve_block(ThreadPool& pool, const CsrMatrix& a,
                                     const MultiVector& b, MultiVector& x,
                                     const AsyncRgsOptions& options) {
  require(b.rows() == a.rows() && x.rows() == a.rows() &&
              b.cols() == x.cols(),
          "async_rgs_solve_block: shape mismatch");
  validate(options);
  const index_t n = a.rows();
  const index_t k = b.cols();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const double beta = options.step_size;

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  // Per-worker gamma scratch in one aligned slab, strided to whole cache
  // lines with a guard line between workers: adjacent heap allocations here
  // would false-share and destroy block-solve scaling.
  const std::size_t doubles_per_line = kCacheLineBytes / sizeof(double);
  const std::size_t stride =
      ((static_cast<std::size_t>(k) + doubles_per_line - 1) /
       doubles_per_line) *
          doubles_per_line +
      doubles_per_line;
  aligned_vector<double> gamma_scratch(stride *
                                       static_cast<std::size_t>(workers));

  auto update = [&](int worker, index_t r) {
    update_coordinate_block(
        a, b, x, r, beta, inv_diag[r], options.atomic_writes,
        gamma_scratch.data() + static_cast<std::size_t>(worker) * stride);
  };
  auto residual = [&]() {
    // Serial block residual; runs only at synchronization points.
    double num = 0.0, den = 0.0;
    std::vector<double> row(static_cast<std::size_t>(k));
    for (index_t i = 0; i < n; ++i) {
      std::fill(row.begin(), row.end(), 0.0);
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t s = 0; s < cols.size(); ++s) {
        const double aij = vals[s];
        const double* x_row = x.row(cols[s]);
        for (index_t c = 0; c < k; ++c) row[c] += aij * x_row[c];
      }
      const double* b_row = b.row(i);
      for (index_t c = 0; c < k; ++c) {
        const double r_ic = b_row[c] - row[c];
        num += r_ic * r_ic;
        den += b_row[c] * b_row[c];
      }
    }
    return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
  };

  WallTimer timer;
  run_engine(pool, options, n, workers, update, residual, report);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
