#include "asyrgs/support/prng.hpp"

namespace asyrgs {

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

namespace {

// Philox multiplication constants and Weyl key increments from Salmon et al.
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t prod =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(prod >> 32);
  lo = static_cast<std::uint32_t>(prod);
}

inline Philox4x32::Block single_round(Philox4x32::Block ctr,
                                      Philox4x32::Key key) noexcept {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kPhiloxM0, ctr[0], hi0, lo0);
  mulhilo(kPhiloxM1, ctr[2], hi1, lo1);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

Philox4x32::Block Philox4x32::apply(Block counter, Key key) noexcept {
  // 10 rounds with the key bumped by the Weyl sequence between rounds.
  for (int round = 0; round < 9; ++round) {
    counter = single_round(counter, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return single_round(counter, key);
}

}  // namespace asyrgs
