// Tests for the extension features: owner-computes randomization, timed
// synchronization, the event-driven delay schedule, the high-level solve
// API, topic-structured Gram generation, block-coupled matrices, and
// column compression.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "asyrgs/asyrgs.hpp"

namespace asyrgs {
namespace {

// --- owner-computes randomization --------------------------------------------

TEST(OwnerComputes, ConvergesAndRespectsPartitions) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(14, 14);
  const std::vector<double> x_star = random_vector(a.rows(), 3);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4000;
  opt.workers = 8;
  opt.scope = RandomizationScope::kOwnerComputes;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-5);
}

TEST(OwnerComputes, SingleWorkerStillSolves) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> x_star = random_vector(a.rows(), 5);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 3000;
  opt.workers = 1;
  opt.scope = RandomizationScope::kOwnerComputes;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  EXPECT_TRUE(async_rgs_solve(pool, a, b, x, opt).converged);
}

TEST(OwnerComputes, BarrierBlockVariantWorks) {
  // Owner-computes is paired with a synchronization mode (see the scope's
  // documentation: free-running finite budgets can leave early-finishing
  // partitions frozen).
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(10, 10);
  const MultiVector x_star = random_multivector(a.rows(), 3, 7);
  const MultiVector b = rhs_from_solution(a, x_star);
  MultiVector x(a.rows(), 3);
  AsyncRgsOptions opt;
  opt.sweeps = 3000;
  opt.workers = 4;
  opt.scope = RandomizationScope::kOwnerComputes;
  opt.sync = SyncMode::kBarrierPerSweep;
  async_rgs_solve_block(pool, a, b, x, opt);
  const auto diffs = column_diff_norms(x, x_star);
  const auto norms = column_norms(x_star);
  for (index_t c = 0; c < 3; ++c) EXPECT_LT(diffs[c] / norms[c], 1e-4);
}

// --- timed synchronization ------------------------------------------------------

TEST(TimedBarrier, SolvesToToleranceAndStopsEarly) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(16, 16);
  const std::vector<double> x_star = random_vector(a.rows(), 9);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 1000000;  // budget far beyond need: must stop on tolerance
  opt.workers = 8;
  opt.sync = SyncMode::kTimedBarrier;
  opt.sync_interval_seconds = 0.002;
  opt.rel_tol = 1e-8;
  opt.track_history = true;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(relative_residual(a, b, x), 1e-7);
  EXPECT_FALSE(rep.residual_history.empty());
  EXPECT_LT(rep.updates,
            static_cast<long long>(opt.sweeps) *
                static_cast<long long>(a.rows()));
}

TEST(TimedBarrier, ExhaustsBudgetWithoutTolerance) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 11);
  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 50;
  opt.workers = 4;
  opt.sync = SyncMode::kTimedBarrier;
  opt.sync_interval_seconds = 0.001;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_EQ(rep.updates,
            static_cast<long long>(50) * static_cast<long long>(a.rows()));
}

TEST(TimedBarrier, RejectsNonPositiveInterval) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_1d(10);
  const std::vector<double> b = random_vector(10, 1);
  std::vector<double> x(10, 0.0);
  AsyncRgsOptions opt;
  opt.sync = SyncMode::kTimedBarrier;
  opt.sync_interval_seconds = 0.0;
  EXPECT_THROW(async_rgs_solve(pool, a, b, x, opt), Error);
}

// --- event-driven schedule ---------------------------------------------------------

TEST(EventSim, UniformRowsGiveDelayAboutP) {
  // With equal row costs, at most P-1 updates are in flight and they are
  // the most recent ones: tau-hat ~ P - 1.
  const CsrMatrix a = laplacian_1d(200);  // rows have 2-3 nonzeros each
  EventSimOptions opt;
  opt.processors = 8;
  opt.iterations = 5000;
  opt.jitter = 0.0;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(a, opt);
  EXPECT_GE(sched.stats().max_delay, opt.processors - 2);
  EXPECT_LE(sched.stats().max_delay, 3 * opt.processors);
  EXPECT_GT(sched.stats().mean_inflight, 0.8 * opt.processors);
}

TEST(EventSim, SkewedRowsInflateMaxDelay) {
  // A matrix with one near-dense row: while some processor chews on it,
  // the others complete many updates, so the in-flight index age spikes —
  // the paper's "imbalanced row sizes" concern, measured.
  const index_t n = 300;
  CooBuilder builder(n, n);
  for (index_t i = 0; i < n; ++i) builder.add(i, i, 2.0);
  for (index_t j = 1; j < n; ++j) builder.add_symmetric(j, 0, -1.0 / n);
  const CsrMatrix skewed = builder.to_csr();

  EventSimOptions opt;
  opt.processors = 8;
  opt.iterations = 5000;
  opt.jitter = 0.0;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(skewed, opt);
  // Row 0 costs ~n while others cost ~2: expect age ~ (P-1) * n / small.
  EXPECT_GT(sched.stats().max_delay, 5 * opt.processors);
}

TEST(EventSim, ExclusionSetsAreBoundedByProcessors) {
  const CsrMatrix a = laplacian_2d(15, 15);
  EventSimOptions opt;
  opt.processors = 6;
  opt.iterations = 2000;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(a, opt);
  for (std::uint64_t j = 0; j < opt.iterations; ++j)
    EXPECT_LT(sched.excluded(j).size(),
              static_cast<std::size_t>(opt.processors));
}

TEST(EventSim, IncludesAgreesWithExcludedLists) {
  const CsrMatrix a = laplacian_1d(100);
  EventSimOptions opt;
  opt.processors = 4;
  opt.iterations = 500;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(a, opt);
  for (std::uint64_t j = 1; j < opt.iterations; j += 37) {
    std::set<std::uint64_t> excl(sched.excluded(j).begin(),
                                 sched.excluded(j).end());
    for (std::uint64_t t = (j > 50 ? j - 50 : 0); t < j; ++t)
      EXPECT_EQ(!sched.includes(j, t), excl.count(t) > 0);
  }
}

TEST(EventSim, SingleProcessorIsSynchronous) {
  const CsrMatrix a = laplacian_1d(50);
  EventSimOptions opt;
  opt.processors = 1;
  opt.iterations = 1000;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(a, opt);
  EXPECT_EQ(sched.stats().max_delay, 0);
  EXPECT_EQ(sched.tau(), 0);
}

TEST(EventSim, ReplayUnderEventScheduleConverges) {
  const index_t n = 120;
  const CsrMatrix raw = laplacian_1d(n);
  const CsrMatrix a = UnitDiagonalScaling(raw).scale_matrix(raw);
  const std::vector<double> x_star = random_vector(n, 13);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const std::vector<double> x0(static_cast<std::size_t>(n), 0.0);

  EventSimOptions eopt;
  eopt.processors = 8;
  eopt.iterations = static_cast<std::uint64_t>(n) * 100;
  eopt.seed = 21;
  const EventDrivenSchedule sched = EventDrivenSchedule::build(a, eopt);

  SimOptions sopt;
  sopt.iterations = eopt.iterations;
  sopt.seed = 21;  // must match the schedule's direction stream
  sopt.step_size = 0.9;
  const SimResult sim =
      simulate_inconsistent(a, b, x0, x_star, sched, sopt);
  const double e0 = std::pow(a_norm_error(a, x0, x_star), 2);
  EXPECT_LT(sim.final_error_sq, 1e-2 * e0);
}

TEST(EventSim, RejectsBadOptions) {
  const CsrMatrix a = laplacian_1d(10);
  EventSimOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(EventDrivenSchedule::build(a, opt), Error);
  opt.iterations = 10;
  opt.processors = 0;
  EXPECT_THROW(EventDrivenSchedule::build(a, opt), Error);
  opt.processors = 2;
  opt.jitter = 1.0;
  EXPECT_THROW(EventDrivenSchedule::build(a, opt), Error);
}

// --- high-level solve API ------------------------------------------------------------

TEST(SolveSpd, AutoPicksAsyncRgsAtLowAccuracy) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> b = random_vector(a.rows(), 3);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.rel_tol = 1e-3;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_EQ(s.method_used, SpdMethod::kAsyncRgs);
  EXPECT_TRUE(s.converged);
  EXPECT_LE(s.relative_residual, 1e-3);
}

TEST(SolveSpd, AutoPicksFcgAtHighAccuracy) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> b = random_vector(a.rows(), 5);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.rel_tol = 1e-10;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_EQ(s.method_used, SpdMethod::kFcgAsyRgs);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(relative_residual(a, b, x), 1e-9);
}

TEST(SolveSpd, ExplicitCgWorks) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> b = random_vector(a.rows(), 7);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.method = SpdMethod::kCg;
  opt.rel_tol = 1e-10;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_TRUE(s.converged);
  EXPECT_NE(s.description.find("conjugate"), std::string::npos);
}

TEST(SolveSpd, HandlesNonUnitDiagonalTransparently) {
  ThreadPool pool(4);
  RandomBandedOptions gopt;
  gopt.n = 400;
  gopt.seed = 11;
  const CsrMatrix a = random_sdd(gopt);  // diagonal far from 1
  const std::vector<double> x_star = random_vector(a.rows(), 13);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  SpdSolveOptions opt;
  opt.rel_tol = 1e-9;
  const SpdSolveSummary s = solve_spd(pool, a, b, x, opt);
  EXPECT_TRUE(s.converged);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-7);
}

TEST(SolveSpd, RejectsUnsymmetricInputWhenChecking) {
  ThreadPool pool(2);
  CooBuilder builder(2, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 1, 1.0);
  builder.add(0, 1, 0.5);  // no mirror
  const CsrMatrix a = builder.to_csr();
  std::vector<double> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(solve_spd(pool, a, b, x), Error);
  SpdSolveOptions opt;
  opt.check_input = false;
  opt.rel_tol = 1e-2;
  opt.max_iterations = 5;  // permitted, though convergence is not expected
  (void)solve_spd(pool, a, b, x, opt);
}

// --- new generators / utilities -----------------------------------------------------

TEST(TopicalGram, TopicsIncreaseConditionNumber) {
  ThreadPool pool(4);
  SocialGramOptions flat;
  flat.terms = 600;
  flat.documents = 3000;
  flat.mean_doc_length = 6;
  flat.ridge = 0.5;
  flat.topics = 0;  // no topic structure
  flat.seed = 3;
  SocialGramOptions topical = flat;
  topical.topics = 30;
  topical.topic_concentration = 0.92;

  auto kappa_of = [&](const SocialGramOptions& o) {
    const CsrMatrix g = make_social_gram(o).gram;
    const CsrMatrix scaled = UnitDiagonalScaling(g).scale_matrix(g);
    return estimate_spectrum(pool, scaled, 120).condition;
  };
  const double kappa_flat = kappa_of(flat);
  const double kappa_topical = kappa_of(topical);
  EXPECT_GT(kappa_topical, 3.0 * kappa_flat);
}

TEST(TopicalGram, RejectsBadTopicOptions) {
  SocialGramOptions opt;
  opt.terms = 100;
  opt.topics = 200;  // more topics than terms
  EXPECT_THROW(make_social_gram(opt), Error);
  opt.topics = 10;
  opt.topic_concentration = 1.5;
  EXPECT_THROW(make_social_gram(opt), Error);
}

TEST(BlockCoupledSpd, StructureAndSpectrum) {
  const CsrMatrix a = block_coupled_spd(12, 4, 0.5);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(has_unit_diagonal(a));
  EXPECT_DOUBLE_EQ(a.at(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(a.at(0, 4), 0.0);  // across block boundary
  // Block eigenvalues: 1 + (block-1)c and 1 - c.
  ThreadPool pool(2);
  const SpectrumEstimate est = estimate_spectrum(pool, a, 12);
  EXPECT_NEAR(est.lambda_max, 1.0 + 3 * 0.5, 1e-8);
  EXPECT_NEAR(est.lambda_min, 0.5, 1e-8);
  EXPECT_THROW(block_coupled_spd(10, 1, 0.5), Error);
  EXPECT_THROW(block_coupled_spd(10, 4, 1.0), Error);
}

TEST(DropEmptyColumns, CompactsAndMaps) {
  CooBuilder builder(3, 5);
  builder.add(0, 1, 1.0);
  builder.add(1, 3, 2.0);
  builder.add(2, 1, 3.0);
  const CsrMatrix a = builder.to_csr();
  const ColumnCompression cc = drop_empty_columns(a);
  EXPECT_EQ(cc.matrix.cols(), 2);
  EXPECT_EQ(cc.kept_columns, (std::vector<index_t>{1, 3}));
  EXPECT_DOUBLE_EQ(cc.matrix.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(cc.matrix.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(cc.matrix.at(2, 0), 3.0);
}

TEST(JacobiOwnership, RoundRobinConvergesOnDominantMatrix) {
  ThreadPool pool(8);
  RandomBandedOptions gopt;
  gopt.n = 500;
  gopt.seed = 17;
  const CsrMatrix a = random_sdd(gopt);
  const std::vector<double> x_star = random_vector(a.rows(), 19);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  AsyncJacobiOptions opt;
  opt.sweeps = 400;
  opt.workers = 8;
  opt.ownership = JacobiOwnership::kRoundRobin;
  async_jacobi_solve(pool, a, b, x, opt);
  EXPECT_LT(relative_residual(a, b, x), 1e-6);
}

}  // namespace
}  // namespace asyrgs
