// Bounded-delay simulator tests: sync equivalence, schedule semantics,
// model cross-checks, and error-history recording.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/simulate/async_sim.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

struct SimProblem {
  CsrMatrix a;  // unit diagonal
  std::vector<double> x_star;
  std::vector<double> b;
  std::vector<double> x0;
};

SimProblem unit_problem(index_t n, std::uint64_t seed) {
  SimProblem p;
  const CsrMatrix raw = laplacian_1d(n);
  p.a = UnitDiagonalScaling(raw).scale_matrix(raw);
  p.x_star = random_vector(n, seed);
  p.b = rhs_from_solution(p.a, p.x_star);
  p.x0.assign(static_cast<std::size_t>(n), 0.0);
  return p;
}

TEST(Simulate, ZeroDelayMatchesSequentialSolverBitwise) {
  SimProblem p = unit_problem(64, 3);
  SimOptions opt;
  opt.iterations = 64 * 5;
  opt.seed = 7;
  const ZeroDelay delay;
  const SimResult sim =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);

  std::vector<double> x_seq = p.x0;
  RgsOptions ropt;
  ropt.sweeps = 5;
  ropt.seed = 7;
  rgs_solve(p.a, p.b, x_seq, ropt);

  ASSERT_EQ(sim.x.size(), x_seq.size());
  for (std::size_t i = 0; i < x_seq.size(); ++i)
    EXPECT_DOUBLE_EQ(sim.x[i], x_seq[i]) << "entry " << i;
}

TEST(Simulate, WindowExclusionEqualsFixedDelayBitwise) {
  // K(j) = {0..j-tau-1} is exactly the prefix state x_{k(j)} with
  // k(j) = max(0, j - tau): the two models must produce identical runs.
  SimProblem p = unit_problem(48, 5);
  SimOptions opt;
  opt.iterations = 48 * 6;
  opt.seed = 11;
  opt.step_size = 0.8;

  const index_t tau = 9;
  const FixedDelay fixed(tau);
  const WindowExclusion excl(tau);
  const SimResult a =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, fixed, opt);
  const SimResult b =
      simulate_inconsistent(p.a, p.b, p.x0, p.x_star, excl, opt);
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]) << "entry " << i;
}

TEST(Simulate, PrefixInclusionEqualsItsInnerConsistentModel) {
  SimProblem p = unit_problem(40, 7);
  SimOptions opt;
  opt.iterations = 40 * 5;
  opt.seed = 13;

  auto inner = std::make_shared<UniformDelay>(6, /*seed=*/99);
  const PrefixInclusion prefix(inner);
  const SimResult a =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, *inner, opt);
  const SimResult b =
      simulate_inconsistent(p.a, p.b, p.x0, p.x_star, prefix, opt);
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_DOUBLE_EQ(a.x[i], b.x[i]) << "entry " << i;
}

TEST(Simulate, BernoulliInclusionConvergesUnderSmallStep) {
  SimProblem p = unit_problem(64, 9);
  SimOptions opt;
  opt.iterations = 64 * 200;
  opt.seed = 17;
  opt.step_size = 0.5;  // Theorem 4 wants beta < 1
  const BernoulliInclusion delay(12, 0.5, 23);
  const SimResult sim =
      simulate_inconsistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  const double e0 =
      std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);
  EXPECT_LT(sim.final_error_sq, 1e-3 * e0);
}

TEST(Simulate, DelayDegradesButDoesNotBreakConvergence) {
  // Same seed, increasing tau: all runs converge, and the no-delay run is
  // (weakly) the most accurate.
  SimProblem p = unit_problem(80, 11);
  SimOptions opt;
  opt.iterations = 80 * 120;
  opt.seed = 29;

  double err_zero = 0.0;
  for (index_t tau : {0, 8, 32}) {
    const FixedDelay delay(tau);
    const SimResult sim =
        simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
    const double e0 = std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);
    EXPECT_LT(sim.final_error_sq, 0.1 * e0) << "tau=" << tau;
    if (tau == 0) err_zero = sim.final_error_sq;
  }
  EXPECT_GT(err_zero, 0.0);
}

TEST(Simulate, BatchDelayModelsLockstepProcessors) {
  const BatchDelay delay(8);
  EXPECT_EQ(delay.tau(), 7);
  EXPECT_EQ(delay.snapshot(0), 0u);
  EXPECT_EQ(delay.snapshot(7), 0u);
  EXPECT_EQ(delay.snapshot(8), 8u);
  EXPECT_EQ(delay.snapshot(17), 16u);
}

TEST(Simulate, UniformDelayRespectsItsBound) {
  const UniformDelay delay(13, 5);
  for (std::uint64_t j = 0; j < 2000; ++j) {
    const std::uint64_t k = delay.snapshot(j);
    EXPECT_LE(k, j);
    EXPECT_LE(j - k, 13u);
  }
}

namespace {
/// A deliberately broken schedule for failure-injection: violates its own
/// declared tau.
class LyingDelay final : public ConsistentDelayModel {
 public:
  [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
    return j > 50 ? 0 : j;  // pretends tau = 2 but returns ancient states
  }
  [[nodiscard]] index_t tau() const override { return 2; }
  [[nodiscard]] std::string name() const override { return "liar"; }
};
}  // namespace

TEST(Simulate, RejectsScheduleViolatingItsTau) {
  SimProblem p = unit_problem(32, 13);
  SimOptions opt;
  opt.iterations = 100;
  const LyingDelay liar;
  EXPECT_THROW(simulate_consistent(p.a, p.b, p.x0, p.x_star, liar, opt),
               Error);
}

TEST(Simulate, RecordsErrorHistoryAtRequestedCadence) {
  SimProblem p = unit_problem(50, 15);
  SimOptions opt;
  opt.iterations = 500;
  opt.record_every = 100;
  const ZeroDelay delay;
  const SimResult sim =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  ASSERT_EQ(sim.record_points.size(), 5u);  // j = 0, 100, ..., 400
  EXPECT_EQ(sim.record_points.front(), 0u);
  EXPECT_EQ(sim.record_points.back(), 400u);
  // Error at j=0 is the initial error; trajectory decreases overall.
  EXPECT_LT(sim.error_sq_history.back(), sim.error_sq_history.front());
  EXPECT_LE(sim.final_error_sq, sim.error_sq_history.back());
}

TEST(Simulate, ScatterCacheCorrectionsMatchBinarySearchReference) {
  // The replay's stale-update corrections now read A(r, row_t) from a dense
  // scatter of row r; this reference re-implements iteration (8) with the
  // pre-optimization per-lookup binary search (CsrMatrix::at) and must match
  // the shipped simulator bit for bit — same entry values, same summation
  // order, only the lookup mechanism differs.
  SimProblem p = unit_problem(56, 19);
  SimOptions opt;
  opt.iterations = 56 * 8;
  opt.seed = 37;
  opt.step_size = 0.9;
  const index_t tau = 11;
  const FixedDelay delay(tau);
  const SimResult sim =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);

  const index_t n = p.a.rows();
  std::vector<double> inv_diag = p.a.diagonal();
  for (double& d : inv_diag) d = 1.0 / d;
  std::vector<double> x = p.x0;
  std::vector<index_t> window_rows(static_cast<std::size_t>(tau) + 1, 0);
  std::vector<double> window_deltas(static_cast<std::size_t>(tau) + 1, 0.0);
  const Philox4x32 dirs(opt.seed);
  for (std::uint64_t j = 0; j < opt.iterations; ++j) {
    const index_t r = dirs.index_at(j, n);
    double resid = p.b[r];
    const auto cols = p.a.row_cols(r);
    const auto vals = p.a.row_vals(r);
    for (std::size_t t = 0; t < cols.size(); ++t)
      resid -= vals[t] * x[cols[t]];
    for (std::uint64_t t = delay.snapshot(j); t < j; ++t) {
      const std::size_t slot =
          static_cast<std::size_t>(t % window_rows.size());
      if (window_deltas[slot] == 0.0) continue;
      resid += p.a.at(r, window_rows[slot]) * window_deltas[slot];
    }
    const double delta_j = opt.step_size * (resid * inv_diag[r]);
    x[static_cast<std::size_t>(r)] += delta_j;
    const std::size_t slot = static_cast<std::size_t>(j % window_rows.size());
    window_rows[slot] = r;
    window_deltas[slot] = delta_j;
  }
  ASSERT_EQ(sim.x.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(sim.x[i], x[i]) << "entry " << i;
}

TEST(Simulate, RejectsBadInputs) {
  SimProblem p = unit_problem(16, 17);
  const ZeroDelay delay;
  SimOptions opt;
  opt.iterations = 10;
  opt.step_size = 2.0;
  EXPECT_THROW(simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt),
               Error);
  opt.step_size = 1.0;
  std::vector<double> short_b(8, 0.0);
  EXPECT_THROW(simulate_consistent(p.a, short_b, p.x0, p.x_star, delay, opt),
               Error);
}

}  // namespace
}  // namespace asyrgs
