// Jacobi iteration (synchronous baseline).
//
// x_{k+1} = x_k + D^{-1} (b - A x_k).  Converges for matrices whose Jacobi
// iteration matrix has spectral radius < 1 (e.g. strictly diagonally
// dominant systems) — the restricted class that historical asynchronous
// theory was limited to, which the paper's randomized approach escapes.
// The asynchronous counterpart (chaotic relaxation) lives in
// core/async_jacobi.hpp.
#pragma once

#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Runs Jacobi on Ax = b starting from `x` (updated in place).
SolveReport jacobi_solve(ThreadPool& pool, const CsrMatrix& a,
                         const std::vector<double>& b, std::vector<double>& x,
                         const SolveOptions& options = {}, int workers = 0);

}  // namespace asyrgs
