// AsyRGS tests: single-worker equivalence with the sequential solver,
// multi-threaded convergence, atomic vs non-atomic writes, sync modes,
// block variant, and the fixed-direction-multiset methodology.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

TEST(AsyncRgs, OneWorkerFreeRunningMatchesSequentialBitwise) {
  // With P = 1 the asynchronous solver executes the identical update
  // sequence as the sequential solver (same Philox stream), so the iterates
  // must agree to the last bit.
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  std::vector<double> x_seq(a.rows(), 0.0);
  RgsOptions seq;
  seq.sweeps = 5;
  seq.seed = 11;
  rgs_solve(a, b, x_seq, seq);

  std::vector<double> x_async(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 5;
  opt.seed = 11;
  opt.workers = 1;
  async_rgs_solve(pool, a, b, x_async, opt);

  EXPECT_EQ(x_seq, x_async);
}

TEST(AsyncRgs, OneWorkerBarrierModeAlsoMatches) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 7);
  const std::vector<double> b = random_vector(a.rows(), 5);

  std::vector<double> x_seq(a.rows(), 0.0);
  RgsOptions seq;
  seq.sweeps = 4;
  seq.seed = 23;
  rgs_solve(a, b, x_seq, seq);

  std::vector<double> x_async(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4;
  opt.seed = 23;
  opt.workers = 1;
  opt.sync = SyncMode::kBarrierPerSweep;
  async_rgs_solve(pool, a, b, x_async, opt);

  EXPECT_EQ(x_seq, x_async);
}

class AsyncRgsThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncRgsThreadsTest, ConvergesWithManyWorkers) {
  const int workers = GetParam();
  ThreadPool pool(workers);
  const CsrMatrix a = laplacian_2d(16, 16);
  const std::vector<double> x_star = random_vector(a.rows(), 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 3000;
  opt.seed = 31;
  opt.workers = workers;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged) << "workers=" << workers;
  EXPECT_LT(relative_residual(a, b, x), 1e-7);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-5);
}

TEST_P(AsyncRgsThreadsTest, FreeRunningReachesSyncComparableResidual) {
  // The Figure 2 (center) claim: after the same number of sweeps the
  // asynchronous residual is of the same order of magnitude as the
  // synchronous one.
  const int workers = GetParam();
  ThreadPool pool(workers);
  const CsrMatrix a = laplacian_2d(14, 14);
  const std::vector<double> x_star = random_vector(a.rows(), 41);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  const int sweeps = 60;
  std::vector<double> x_sync(a.rows(), 0.0);
  RgsOptions seq;
  seq.sweeps = sweeps;
  seq.seed = 43;
  rgs_solve(a, b, x_sync, seq);
  const double res_sync = relative_residual(a, b, x_sync);

  std::vector<double> x_async(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = sweeps;
  opt.seed = 43;
  opt.workers = workers;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x_async, opt);
  EXPECT_EQ(rep.workers, workers);
  const double res_async = relative_residual(a, b, x_async);

  EXPECT_LT(res_async, 50.0 * res_sync + 1e-12)
      << "sync " << res_sync << " async " << res_async;
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, AsyncRgsThreadsTest,
                         ::testing::Values(2, 4, 8));

TEST(AsyncRgs, NonAtomicVariantStillConverges) {
  // Figure 2's "non atomic" experiment: lost updates do not wreck
  // convergence in practice.
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(12, 12);
  const std::vector<double> x_star = random_vector(a.rows(), 51);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 2000;
  opt.seed = 53;
  opt.workers = 8;
  opt.atomic_writes = false;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-7;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(AsyncRgs, StepSizeDampensOnHostileDelay) {
  // beta < 1 must also converge (Theorem 3 regime).
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(10, 10);
  const std::vector<double> b = random_vector(a.rows(), 57);

  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 4000;
  opt.seed = 59;
  opt.workers = 8;
  opt.step_size = 0.5;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-7;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(AsyncRgs, BarrierModeTracksHistory) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 61);
  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 10;
  opt.workers = 4;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.track_history = true;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_EQ(rep.sweeps_done, 10);
  EXPECT_EQ(rep.residual_history.size(), 10u);
  // Residuals should broadly decrease over sweeps.
  EXPECT_LT(rep.residual_history.back(), rep.residual_history.front());
}

TEST(AsyncRgs, EarlyStopOnTolerance) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> x_star = random_vector(a.rows(), 67);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  std::vector<double> x(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 100000;
  opt.workers = 4;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-6;
  const AsyncRgsReport rep = async_rgs_solve(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(rep.sweeps_done, 100000);
}

TEST(AsyncRgs, BlockOneColumnMatchesSingle) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(7, 6);
  const std::vector<double> b = random_vector(a.rows(), 71);

  std::vector<double> x_single(a.rows(), 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 6;
  opt.seed = 73;
  opt.workers = 1;
  async_rgs_solve(pool, a, b, x_single, opt);

  MultiVector b_block(a.rows(), 1);
  b_block.set_column(0, b);
  MultiVector x_block(a.rows(), 1);
  async_rgs_solve_block(pool, a, b_block, x_block, opt);

  for (index_t i = 0; i < a.rows(); ++i)
    EXPECT_DOUBLE_EQ(x_single[i], x_block.at(i, 0));
}

TEST(AsyncRgs, BlockMultiThreadedSolvesSkewedGram) {
  // The paper's actual workload shape: multi-RHS on a skewed Gram matrix.
  ThreadPool pool(8);
  SocialGramOptions gopt;
  gopt.terms = 400;
  gopt.documents = 1600;
  gopt.mean_doc_length = 5;
  gopt.ridge = 2.0;
  gopt.seed = 79;
  const CsrMatrix a = make_social_gram(gopt).gram;
  const MultiVector x_star = random_multivector(a.rows(), 4, 83);
  const MultiVector b = rhs_from_solution(a, x_star);

  MultiVector x(a.rows(), 4);
  AsyncRgsOptions opt;
  opt.sweeps = 400;
  opt.workers = 8;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-6;
  const AsyncRgsReport rep = async_rgs_solve_block(pool, a, b, x, opt);
  EXPECT_TRUE(rep.converged);
}

TEST(AsyncRgs, DirectionMultisetIsThreadCountInvariant) {
  // Count how many times each coordinate is chosen during 3 sweeps; the
  // histogram is a pure function of (seed, n, sweeps), not of P — this is
  // what makes the async-vs-sync comparison fair.
  const index_t n = 257;
  const int sweeps = 3;
  const Philox4x32 dirs(12345);
  std::vector<int> histogram(static_cast<std::size_t>(n), 0);
  for (std::uint64_t j = 0; j < static_cast<std::uint64_t>(n) * sweeps; ++j)
    histogram[dirs.index_at(j, n)]++;

  for (int workers : {2, 5, 16}) {
    std::vector<int> h2(static_cast<std::size_t>(n), 0);
    for (int w = 0; w < workers; ++w)
      for (std::uint64_t j = static_cast<std::uint64_t>(w);
           j < static_cast<std::uint64_t>(n) * sweeps;
           j += static_cast<std::uint64_t>(workers))
        h2[dirs.index_at(j, n)]++;
    EXPECT_EQ(histogram, h2) << "workers=" << workers;
  }
}

TEST(AsyncRgs, RejectsBadOptions) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_1d(10);
  const std::vector<double> b = random_vector(10, 1);
  std::vector<double> x(10, 0.0);
  AsyncRgsOptions opt;
  opt.step_size = 2.5;
  EXPECT_THROW(async_rgs_solve(pool, a, b, x, opt), Error);
  opt.step_size = 1.0;
  opt.sweeps = -1;
  EXPECT_THROW(async_rgs_solve(pool, a, b, x, opt), Error);
}

}  // namespace
}  // namespace asyrgs
