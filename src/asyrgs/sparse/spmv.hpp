// Parallel sparse matrix-vector products.
//
// Three row-partitioning strategies are provided because the paper's test
// matrix has *highly skewed* row sizes (max 117,182 nonzeros vs mean 1,439):
//
//  * kContiguous  - classic blocked partition; best for balanced matrices
//                   (grid Laplacians).
//  * kRoundRobin  - "indices are assigned to threads in a round-robin
//                   manner" — the paper's choice for its unstructured CG
//                   baseline (Section 9).
//  * kDynamic     - work-stealing chunks; robust default for skewed rows.
//
// Every entry point is templated over the CSR storage policy (definitions in
// spmv.cpp, instantiated for the three supported policies); dense operands
// stay double for every policy.
#pragma once

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Row distribution across SpMV workers.
enum class RowPartition { kContiguous, kRoundRobin, kDynamic };

/// y = A x using `workers` threads from `pool`.
///
/// Thread-safety: `a` and `x` are read-only; `y` is partitioned by row so
/// workers never write the same entry.  The pool runs one team at a time —
/// do not issue concurrent spmv calls against the same pool from different
/// threads (nested calls from inside a team degrade to 1 worker instead).
template <class Index, class Value>
void spmv(ThreadPool& pool, const CsrMatrixT<Index, Value>& a, const double* x,
          double* y, int workers = 0,
          RowPartition partition = RowPartition::kDynamic);

/// Convenience overload over std::vector.
template <class Index, class Value>
void spmv(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
          const std::vector<double>& x, std::vector<double>& y,
          int workers = 0, RowPartition partition = RowPartition::kDynamic);

/// Y = A X for a row-major block of vectors (fused over the block: each row
/// of A is scanned once and applied to all columns of X).
template <class Index, class Value>
void spmv_block(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
                const MultiVector& x, MultiVector& y, int workers = 0,
                RowPartition partition = RowPartition::kDynamic);

/// R = B - A X (block residual, fused like spmv_block).
template <class Index, class Value>
void block_residual(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
                    const MultiVector& b, const MultiVector& x, MultiVector& r,
                    int workers = 0);

}  // namespace asyrgs
