#include "asyrgs/support/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <algorithm>
#include <vector>

#include "asyrgs/support/aligned.hpp"

namespace asyrgs {

namespace {
thread_local bool tls_inside_worker = false;
}  // namespace

struct ThreadPool::Impl {
  explicit Impl(int max_workers) : max_workers(max_workers) {
    threads.reserve(static_cast<std::size_t>(max_workers - 1));
    for (int id = 1; id < max_workers; ++id) {
      threads.emplace_back([this, id] { worker_loop(id); });
    }
  }

  ~Impl() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      shutdown = true;
      ++epoch;
    }
    cv.notify_all();
    for (auto& t : threads) t.join();
  }

  void worker_loop(int id) {
    tls_inside_worker = true;
    std::uint64_t seen_epoch = 0;
    for (;;) {
      const std::function<void(int, int)>* my_job = nullptr;
      int my_team = 0;
      {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return shutdown || epoch != seen_epoch; });
        if (shutdown) return;
        seen_epoch = epoch;
        my_team = team;
        if (id < my_team) my_job = &job;
      }
      if (my_job != nullptr) {
        try {
          (*my_job)(id, my_team);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        if (in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lock(done_mutex);
          done_cv.notify_one();
        }
      }
    }
  }

  void run(int workers, const std::function<void(int, int)>& fn) {
    if (workers > 1) {
      {
        std::lock_guard<std::mutex> lock(mutex);
        job = fn;
        team = workers;
        in_flight.store(workers - 1, std::memory_order_relaxed);
        ++epoch;
      }
      cv.notify_all();
    }
    // The caller is worker 0.  While it executes team work it must count as
    // "inside a worker" so that a nested run_team degrades to a serial team
    // instead of clobbering the in-flight job state.
    tls_inside_worker = true;
    try {
      fn(0, workers);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
    tls_inside_worker = false;
    if (workers > 1) {
      std::unique_lock<std::mutex> lock(done_mutex);
      done_cv.wait(lock, [&] {
        return in_flight.load(std::memory_order_acquire) == 0;
      });
    }
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(error_mutex);
      err = first_error;
      first_error = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

  const int max_workers;
  std::vector<std::thread> threads;

  std::mutex mutex;
  std::condition_variable cv;
  std::function<void(int, int)> job;
  int team = 0;
  std::uint64_t epoch = 0;
  bool shutdown = false;

  std::atomic<int> in_flight{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  std::mutex error_mutex;
  std::exception_ptr first_error;
};

ThreadPool::ThreadPool(int max_workers) {
  max_workers =
      detail::auto_pool_size(max_workers, std::thread::hardware_concurrency());
  impl_ = std::make_unique<Impl>(max_workers);
}

ThreadPool::~ThreadPool() = default;

int ThreadPool::size() const noexcept { return impl_->max_workers; }

bool ThreadPool::inside_worker() noexcept { return tls_inside_worker; }

void ThreadPool::run_team(int workers, const std::function<void(int, int)>& fn) {
  if (workers < 1) workers = 1;
  if (workers > impl_->max_workers) workers = impl_->max_workers;
  if (workers == 1 || inside_worker()) {
    // Nested or trivial team: execute inline as a team of one.
    fn(0, 1);
    return;
  }
  impl_->run(workers, fn);
}

void ThreadPool::parallel_for(
    index_t begin, index_t end,
    const std::function<void(index_t, index_t)>& range_fn, int workers) {
  if (end <= begin) return;
  const index_t total = end - begin;
  if (workers <= 0) workers = size();
  if (workers > total) workers = static_cast<int>(total);
  run_team(workers, [&](int id, int team) {
    // Even split; the first (total % team) chunks get one extra iteration.
    const index_t base = total / team;
    const index_t extra = total % team;
    const index_t lo = begin + base * id + std::min<index_t>(id, extra);
    const index_t hi = lo + base + (id < extra ? 1 : 0);
    if (hi > lo) range_fn(lo, hi);
  });
}

void ThreadPool::parallel_for_dynamic(
    index_t begin, index_t end, index_t grain,
    const std::function<void(index_t, index_t)>& range_fn, int workers) {
  if (end <= begin) return;
  require(grain > 0, "parallel_for_dynamic: grain must be positive");
  if (workers <= 0) workers = size();
  Padded<std::atomic<index_t>> next;
  next.value.store(begin, std::memory_order_relaxed);
  run_team(workers, [&](int, int) {
    for (;;) {
      const index_t lo =
          next.value.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      range_fn(lo, std::min(lo + grain, end));
    }
  });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace asyrgs
