// Matrix Market I/O tests: round trips, symmetric expansion, malformed
// input rejection.
#include <gtest/gtest.h>

#include <sstream>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/sparse/io.hpp"

namespace asyrgs {
namespace {

TEST(Io, GeneralRoundTrip) {
  const CsrMatrix a = laplacian_2d(6, 5);
  std::stringstream buf;
  write_matrix_market(buf, a);
  const CsrMatrix back = read_matrix_market(buf);
  EXPECT_TRUE(a.equals(back, 0.0));
}

TEST(Io, ReadsSymmetricLowerTriangleAndExpands) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment line\n"
      "3 3 4\n"
      "1 1 2.0\n"
      "2 1 -1.0\n"
      "2 2 2.0\n"
      "3 3 2.0\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -1.0);  // mirrored entry
  EXPECT_DOUBLE_EQ(m.at(1, 0), -1.0);
  EXPECT_EQ(m.nnz(), 5);
}

TEST(Io, RejectsUpperTriangleInSymmetricFile) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 1\n"
      "1 2 5.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Io, RejectsMalformedHeaders) {
  {
    std::stringstream in("%%NotMatrixMarket matrix coordinate real general\n");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
  {
    std::stringstream in("%%MatrixMarket matrix array real general\n2 2\n");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
  {
    std::stringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
  {
    std::stringstream in("");
    EXPECT_THROW(read_matrix_market(in), Error);
  }
}

TEST(Io, RejectsTruncatedEntryList) {
  std::stringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(Io, CaseInsensitiveHeaderAndIntegerField) {
  std::stringstream in(
      "%%matrixmarket MATRIX Coordinate Integer General\n"
      "2 2 2\n"
      "1 1 3\n"
      "2 2 4\n");
  const CsrMatrix m = read_matrix_market(in);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(Io, VectorRoundTrip) {
  const std::vector<double> v = {1.5, -2.25, 0.0, 1e-17};
  std::stringstream buf;
  write_vector_market(buf, v);
  const std::vector<double> back = read_vector_market(buf);
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_DOUBLE_EQ(back[i], v[i]);
}

TEST(Io, VectorRejectsMultiColumnArray) {
  std::stringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n1\n2\n3\n4\n");
  EXPECT_THROW(read_vector_market(in), Error);
}

TEST(Io, FileRoundTripThroughDisk) {
  const CsrMatrix a = laplacian_1d(17);
  const std::string path = "/tmp/asyrgs_io_test.mtx";
  write_matrix_market_file(path, a);
  const CsrMatrix back = read_matrix_market_file(path);
  EXPECT_TRUE(a.equals(back, 0.0));
  EXPECT_THROW(read_matrix_market_file("/nonexistent/nope.mtx"), Error);
}

}  // namespace
}  // namespace asyrgs
