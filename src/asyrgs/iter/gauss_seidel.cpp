#include "asyrgs/iter/gauss_seidel.hpp"

#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

void sor_sweep(const CsrMatrix& a, const std::vector<double>& b,
               std::vector<double>& x, double omega) {
  require(a.square(), "sor_sweep: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "sor_sweep: shape mismatch");
  require(omega > 0.0 && omega < 2.0, "sor_sweep: omega must be in (0, 2)");
  const index_t n = a.rows();
  for (index_t i = 0; i < n; ++i) {
    double diag = 0.0;
    double acc = b[i];
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      if (cols[t] == i)
        diag = vals[t];
      else
        acc -= vals[t] * x[cols[t]];
    }
    require(diag != 0.0, "sor_sweep: zero diagonal entry");
    // acc now equals b_i - sum_{j != i} A_ij x_j; the update solves row i
    // exactly when omega = 1.
    x[i] = (1.0 - omega) * x[i] + omega * acc / diag;
  }
}

SolveReport gauss_seidel_solve(const CsrMatrix& a, const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& options, double omega) {
  WallTimer timer;
  SolveReport report;
  for (int it = 1; it <= options.max_iterations; ++it) {
    sor_sweep(a, b, x, omega);
    report.iterations = it;
    if (it % options.check_every == 0 || it == options.max_iterations) {
      const double rel = relative_residual(a, b, x);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
