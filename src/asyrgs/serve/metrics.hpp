// Serving observability: latency histograms and a structured trace sink.
//
// The serving layer (serve/service.hpp) answers a stream of requests; raw
// counters (submitted/completed) say nothing about *how* it answered them
// under load.  This header provides the two observability primitives the
// service records per request:
//
//   LatencyHistogram   fixed log-spaced bins over [1us, ~1.2h); recording is
//                      a clamp + two integer increments on a fixed array —
//                      no allocation, no floating-point accumulation drift —
//                      so the dispatcher can record on the completion path.
//                      Quantiles (p50/p95/p99) are estimated from the bins
//                      at read time (geometric bin midpoint, so the estimate
//                      is within one bin ratio, ~26%, of the true value).
//
//   TraceSink          structured per-request event log in the spirit of
//                      FoundationDB's Trace.cpp + JsonTraceLogFormatter:
//                      one machine-parseable JSON object per completed
//                      request (enqueue/start/done timestamps, shard,
//                      priority, status), emitted to any std::ostream.
//
// Thread-safety: LatencyHistogram itself is plain data — the service guards
// its instances with the stats mutex.  JsonTraceSink serializes writes with
// an internal mutex, so one sink may be shared by every completion path.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

namespace asyrgs {

/// Fixed-bin log-spaced latency histogram.  Bin i covers
/// [kMinSeconds * r^i, kMinSeconds * r^(i+1)) with r = 2^(1/3); 96 bins span
/// 1us up to ~57 minutes, the top bin catching everything beyond.  Under-
/// and overflows clamp to the edge bins.  Copyable plain data: a stats()
/// snapshot is just a copy.
class LatencyHistogram {
 public:
  static constexpr int kBins = 96;
  static constexpr double kMinSeconds = 1e-6;

  /// Records one sample (clamped into the bin range).  No allocation.
  void record(double seconds) noexcept;

  /// Merges another histogram into this one (used to aggregate shards).
  void merge(const LatencyHistogram& other) noexcept;

  /// Estimated q-quantile (q in [0, 1]) as the geometric midpoint of the
  /// first bin whose cumulative count reaches q * count().  Returns 0 when
  /// empty.  p50/p95/p99 below are the conventional read-outs.
  [[nodiscard]] double quantile(double q) const noexcept;
  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  /// Exact sum of recorded samples (mean = total_seconds()/count()).
  [[nodiscard]] double total_seconds() const noexcept { return sum_; }
  /// Exact largest recorded sample (the histogram tail is clamped; this
  /// is not).
  [[nodiscard]] double max_seconds() const noexcept { return max_; }

  /// Lower bound of bin i in seconds (exposed for tests and exporters).
  [[nodiscard]] static double bin_lower(int i) noexcept;

 private:
  std::array<std::uint64_t, kBins> bins_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// One completed (or rejected) serving request, ready for a trace sink.
/// Timestamps are seconds relative to service construction on the steady
/// clock; a request that never reached a shard has start_seconds < 0 and
/// shard == -1.
struct TraceEvent {
  long long request_id = 0;     ///< submission order, 1-based
  const char* kind = "spd";     ///< "spd" | "spd_block" | "lsq"
  const char* status = "";      ///< to_string(SolveStatus) or "error"
  /// to_string(StoragePolicy) the executed solve ran against
  /// (SolveOutcome::storage_used); "" for requests that never executed or
  /// threw.
  const char* storage = "";
  /// to_string(SamplingPolicy) the executed solve drew directions with
  /// (SolveOutcome::sampling_used); "" for requests that never executed or
  /// threw.
  const char* sampling = "";
  /// Partition count the executed solve scheduled over
  /// (SolveOutcome::partitions_used); 0 = unpartitioned, and for requests
  /// that never executed or threw.
  int partitions = 0;
  int shard = -1;               ///< executing shard; -1 = never executed
  int priority = 0;             ///< admitted priority class
  bool warm_start = false;      ///< request carried an initial iterate
  double enqueue_seconds = 0.0;
  double start_seconds = -1.0;
  double done_seconds = 0.0;
};

/// Renders `event` as a single-line JSON object (no trailing newline) —
/// the format JsonTraceSink writes.  Split out so tests can pin the format
/// without an ostream.
[[nodiscard]] std::string format_json_trace(const TraceEvent& event);

/// Destination for per-request trace events.  Implementations must be safe
/// to call from multiple completion threads concurrently.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void log(const TraceEvent& event) = 0;
};

/// Writes one JSON line per event to a borrowed ostream (which must outlive
/// the sink), serialized by an internal mutex and flushed per line so a
/// crashed or killed process loses at most the in-flight event.
class JsonTraceSink final : public TraceSink {
 public:
  explicit JsonTraceSink(std::ostream& out) : out_(out) {}
  void log(const TraceEvent& event) override;

 private:
  std::ostream& out_;
  std::mutex mutex_;
};

}  // namespace asyrgs
