#include "asyrgs/core/async_rgs.hpp"

#include <cmath>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/support/aligned.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

std::vector<double> checked_inverse_diagonal(const CsrMatrix& a) {
  require(a.square(), "async_rgs: matrix must be square");
  std::vector<double> inv = a.diagonal();
  for (double& d : inv) {
    require(d > 0.0, "async_rgs: diagonal must be strictly positive");
    d = 1.0 / d;
  }
  return inv;
}

void validate(const AsyncRgsOptions& options) {
  require(options.sweeps >= 0, "async_rgs: sweeps must be non-negative");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "async_rgs: step size must be in (0, 2)");
  require(options.rel_tol >= 0.0, "async_rgs: rel_tol must be non-negative");
  require(options.sync_interval_seconds > 0.0,
          "async_rgs: sync interval must be positive");
}

/// b_r and 1/A_rr interleaved so the two per-update row constants share one
/// cache line (and usually one 16-byte load pair).
struct RhsDiagPair {
  double b;
  double inv_diag;
};

std::vector<RhsDiagPair> pack_rhs_diag(const std::vector<double>& b,
                                       const std::vector<double>& inv_diag) {
  std::vector<RhsDiagPair> packed(b.size());
  for (std::size_t i = 0; i < b.size(); ++i)
    packed[i] = {b[i], inv_diag[i]};
  return packed;
}

/// One asynchronous coordinate update on the shared single-RHS iterate,
/// specialized at compile time on the atomicity mode AND the scan mode so
/// the hot loop carries no per-update branch and the pinned path compiles to
/// exactly the pre-ScanMode code.  Pinned: relaxed-atomic reads of x, one
/// subtraction per nonzero in column order — identical arithmetic to the
/// sequential solver, so a one-worker run reproduces it bit for bit.
/// Reassociated: the multi-accumulator/SIMD kernel from sparse/csr.hpp with
/// plain vector reads of x (see the contract there); the write path is
/// unchanged.
template <bool kAtomicWrites, ScanMode kScan>
struct SingleRhsUpdate {
  const nnz_t* row_ptr;
  const index_t* cols;
  const double* vals;
  const RhsDiagPair* rhs_diag;
  double* x;
  double beta;

  void operator()(int, index_t r, index_t r_ahead) const noexcept {
    const nnz_t* __restrict rp = row_ptr;
    const index_t* __restrict ci = cols;
    const double* __restrict av = vals;
    const RhsDiagPair* __restrict bd = rhs_diag;
    // The direction buffer makes the future known: pull an upcoming row's
    // constants and the head of its index/value arrays into cache while this
    // row's scan chain retires.
    const nnz_t ahead_lo = rp[r_ahead];
    __builtin_prefetch(&bd[r_ahead]);
    __builtin_prefetch(&av[ahead_lo]);
    __builtin_prefetch(&ci[ahead_lo]);
    __builtin_prefetch(&x[r_ahead]);
    double acc = bd[r].b;
    const nnz_t lo = rp[r];
    const nnz_t hi = rp[r + 1];
    if constexpr (kScan == ScanMode::kReassociated) {
      acc = csr_row_sub_dot_reassoc(acc, ci + lo, av + lo, hi - lo, x);
    } else {
      for (nnz_t t = lo; t < hi; ++t)
        acc -= av[t] * atomic_load_relaxed(x[ci[t]]);
    }
    const double delta = beta * (acc * bd[r].inv_diag);
    if constexpr (kAtomicWrites)
      atomic_add_relaxed(x[r], delta);
    else
      racy_add(x[r], delta);
  }
};

/// One asynchronous update applied to every column of the block iterate.
/// `gamma` is per-worker scratch of k doubles (cache-line separated slab).
template <bool kAtomicWrites>
struct BlockRhsUpdate {
  const CsrMatrix* a;
  const MultiVector* b;
  MultiVector* x;
  const double* inv_diag;
  double beta;
  double* gamma_base;
  std::size_t gamma_stride;

  void operator()(int worker, index_t r, index_t r_ahead) const noexcept {
    __builtin_prefetch(x->row(r_ahead));
    __builtin_prefetch(b->row(r_ahead));
    double* __restrict gamma =
        gamma_base + static_cast<std::size_t>(worker) * gamma_stride;
    const index_t k = b->cols();
    const double* b_row = b->row(r);
    for (index_t c = 0; c < k; ++c) gamma[c] = b_row[c];
    const auto cols = a->row_cols(r);
    const auto vals = a->row_vals(r);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const double arj = vals[t];
      const double* x_row = x->row(cols[t]);
      for (index_t c = 0; c < k; ++c)
        gamma[c] -= arj * atomic_load_relaxed(x_row[c]);
    }
    const double inv = inv_diag[r];
    double* xr = x->row(r);
    if constexpr (kAtomicWrites) {
      for (index_t c = 0; c < k; ++c)
        atomic_add_relaxed(xr[c], beta * (gamma[c] * inv));
    } else {
      for (index_t c = 0; c < k; ++c)
        racy_add(xr[c], beta * (gamma[c] * inv));
    }
  }
};

/// ||b - A x|| / ||b|| evaluated as a team-parallel reduction over the
/// workers rendezvoused at the synchronization barrier (the denominator is
/// constant and precomputed).  Replaces the serial residual that used to run
/// on worker 0 while the rest of the team spun.
class SingleRhsResidual {
 public:
  SingleRhsResidual(const CsrMatrix& a, const std::vector<double>& b,
                    const double* x, int workers)
      : a_(a),
        b_(b),
        x_(x),
        reduce_(workers),
        serial_(!detail::team_residual_profitable(workers)),
        b_norm_(nrm2(b)) {}

  double operator()(int id, int team) {
    const auto partial = [&](int w, int t) {
      const auto [lo, hi] = detail::chunk_of(a_.rows(), w, t);
      double acc = 0.0;
      for (index_t i = lo; i < hi; ++i) {
        double ri = b_[i];
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s)
          ri -= vals[s] * atomic_load_relaxed(x_[cols[s]]);
        acc += ri * ri;
      }
      return acc;
    };
    // Oversubscribed host: the reduction barriers would cost scheduler
    // round-trips, so worker 0 evaluates the same chunked partials alone
    // (bit-identical association — see TeamReduce::run_serial) while the
    // rest return to the engine's own synchronization barrier.
    if (serial_ && id != 0) return 0.0;
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return b_norm_ > 0.0 ? rn / b_norm_ : rn;
  }

 private:
  const CsrMatrix& a_;
  const std::vector<double>& b_;
  const double* x_;
  detail::TeamReduce reduce_;
  bool serial_;
  double b_norm_;
};

/// ||B - A X||_F / ||B||_F, team-parallel over rows (previously a serial
/// O(nnz * k) loop on worker 0 per sweep).
class BlockResidual {
 public:
  BlockResidual(const CsrMatrix& a, const MultiVector& b, const MultiVector& x,
                int workers)
      : a_(a),
        b_(b),
        x_(x),
        reduce_(workers),
        serial_(!detail::team_residual_profitable(workers)),
        b_norm_(frobenius_norm(b)) {}

  double operator()(int id, int team) {
    const auto partial = [&](int w, int t) {
      const index_t k = b_.cols();
      std::vector<double> row(static_cast<std::size_t>(k));
      const auto [lo, hi] = detail::chunk_of(a_.rows(), w, t);
      double acc = 0.0;
      for (index_t i = lo; i < hi; ++i) {
        std::fill(row.begin(), row.end(), 0.0);
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s) {
          const double aij = vals[s];
          const double* x_row = x_.row(cols[s]);
          for (index_t c = 0; c < k; ++c)
            row[c] += aij * atomic_load_relaxed(x_row[c]);
        }
        const double* b_row = b_.row(i);
        for (index_t c = 0; c < k; ++c) {
          const double r_ic = b_row[c] - row[c];
          acc += r_ic * r_ic;
        }
      }
      return acc;
    };
    if (serial_ && id != 0) return 0.0;  // see SingleRhsResidual
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return b_norm_ > 0.0 ? rn / b_norm_ : rn;
  }

 private:
  const CsrMatrix& a_;
  const MultiVector& b_;
  const MultiVector& x_;
  detail::TeamReduce reduce_;
  bool serial_;
  double b_norm_;
};

}  // namespace

AsyncRgsReport async_rgs_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "async_rgs_solve: shape mismatch");
  validate(options);
  const index_t n = a.rows();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const double beta = options.step_size;

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  const std::vector<RhsDiagPair> rhs_diag = pack_rhs_diag(b, inv_diag);
  SingleRhsResidual residual(a, b, x.data(), workers);

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const SingleRhsUpdate<kAtomic, kScan> update{
        a.row_ptr().data(), a.col_idx().data(), a.values().data(),
        rhs_diag.data(),    x.data(),           beta};
    detail::run_engine(pool, options, n, workers, update, residual, report);
  });
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_rgs_solve_block(ThreadPool& pool, const CsrMatrix& a,
                                     const MultiVector& b, MultiVector& x,
                                     const AsyncRgsOptions& options) {
  require(b.rows() == a.rows() && x.rows() == a.rows() &&
              b.cols() == x.cols(),
          "async_rgs_solve_block: shape mismatch");
  validate(options);
  const index_t n = a.rows();
  const index_t k = b.cols();
  const std::vector<double> inv_diag = checked_inverse_diagonal(a);
  const double beta = options.step_size;

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  // Per-worker gamma scratch in one aligned slab, strided to whole cache
  // lines with a guard line between workers: adjacent heap allocations here
  // would false-share and destroy block-solve scaling.
  const std::size_t doubles_per_line = kCacheLineBytes / sizeof(double);
  const std::size_t stride =
      ((static_cast<std::size_t>(k) + doubles_per_line - 1) /
       doubles_per_line) *
          doubles_per_line +
      doubles_per_line;
  aligned_vector<double> gamma_scratch(stride *
                                       static_cast<std::size_t>(workers));

  BlockResidual residual(a, b, x, workers);

  WallTimer timer;
  if (options.atomic_writes) {
    const BlockRhsUpdate<true> update{&a,   &b, &x, inv_diag.data(), beta,
                                      gamma_scratch.data(), stride};
    detail::run_engine(pool, options, n, workers, update, residual, report);
  } else {
    const BlockRhsUpdate<false> update{&a,   &b, &x, inv_diag.data(), beta,
                                       gamma_scratch.data(), stride};
    detail::run_engine(pool, options, n, workers, update, residual, report);
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
