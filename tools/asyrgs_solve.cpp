// asyrgs_solve — command-line SPD solver over Matrix Market files.
//
//   asyrgs_solve --matrix A.mtx [--rhs b.mtx] [--out x.mtx]
//                [--method auto|asyrgs|fcg|cg|kaczmarz] [--tol 1e-8]
//                [--threads 0] [--scan pinned|reassociated] [--repeat 1]
//                [--shards 1] [--storage auto|int64|int32|mixed]
//                [--sampling uniform|weighted|residual] [--resample 8]
//                [--partitions 0] [--steal 0.0]
//
// Reads an SPD matrix (coordinate format, general or symmetric), prepares an
// asyrgs::SpdProblem handle (validation + analysis paid once), solves
// A x = b with the selected method (b defaults to A * ones so the run is
// self-checking), writes the solution in array format, and prints a solve
// summary.  --repeat N re-runs the solve N times on the prepared handle —
// the serving pattern for many requests against one operator; only the
// first solve pays preparation.  --shards N (N > 1) routes the repeats
// through the sharded SolverService front-end instead, exercising the
// concurrent serving path end to end.  Note the two paths resolve team
// size differently at the default --threads 0 (global pool capacity vs
// per-shard capacity), and multi-worker asynchronous runs are not
// bit-reproducible; byte-identical output across the two paths requires
// an explicit --threads 1 under the pinned scan.
//
// --method kaczmarz routes through an LsqProblem handle (the row-action
// method needs no symmetry), so it also serves rectangular .mtx inputs;
// --sampling selects the direction distribution of the asynchronous
// methods (docs/TUNING.md).
#include <fstream>
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("asyrgs_solve", "solve an SPD Matrix Market system");
  auto matrix_path = cli.add_string("matrix", "", "input matrix (.mtx)");
  auto rhs_path = cli.add_string("rhs", "", "right-hand side (.mtx array); "
                                            "default: A * ones");
  auto out_path = cli.add_string("out", "", "solution output (.mtx array)");
  auto method = cli.add_string("method", "auto",
                               "auto|asyrgs|fcg|cg|kaczmarz (kaczmarz: "
                               "row-action least squares; accepts "
                               "rectangular matrices)");
  auto tol = cli.add_double("tol", 1e-8, "relative residual target");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto max_iters = cli.add_int("max-iterations", 0, "iteration cap (0=auto)");
  auto inner = cli.add_int("inner-sweeps", 2, "FCG preconditioner sweeps");
  auto repeat = cli.add_int("repeat", 1,
                            "solves against the prepared handle (>= 1; "
                            "preparation is paid once)");
  auto shards = cli.add_int("shards", 1,
                            "SolverService pool shards; > 1 submits the "
                            "repeats concurrently to the sharded serving "
                            "front-end");
  auto scan = cli.add_string(
      "scan", "pinned",
      "row-scan FP association: pinned (bit-reproducible) | reassociated "
      "(fast-math SIMD; see docs/TUNING.md)");
  auto storage = cli.add_string(
      "storage", "auto",
      "CSR storage policy: auto | int64 | int32 | mixed (int32 indices + "
      "f32 values, double accumulation; see docs/TUNING.md)");
  auto sampling = cli.add_string(
      "sampling", "uniform",
      "direction-draw distribution for the asynchronous methods: uniform | "
      "weighted (norm-weighted alias table) | residual (refreshed at sync "
      "points; see docs/TUNING.md)");
  auto resample = cli.add_int(
      "resample", 8,
      "residual sampling: rebuild the table every N rendezvous");
  auto partitions = cli.add_int(
      "partitions", 0,
      "topology-aware partitioned scheduling: cut the RCM-ordered operator "
      "into N cache-aligned partitions, one draw set per worker (0 = off; "
      "asyrgs method only; see docs/TUNING.md)");
  auto steal = cli.add_double(
      "steal", 0.0,
      "partitioned scheduling: probability in [0, 1) of drawing a halo "
      "(neighbour-owned boundary) row instead of an owned row");

  try {
    cli.parse(argc, argv);
    require(!matrix_path.value().empty(), "missing required --matrix");
    require(*repeat >= 1, "--repeat must be >= 1");
    require(*shards >= 1, "--shards must be >= 1");
    require(*tol > 0.0, "--tol must be positive");

    const CsrMatrix a = read_matrix_market_file(*matrix_path);
    std::cerr << "matrix: " << a.rows() << " x " << a.cols() << ", "
              << a.nnz() << " nonzeros\n";

    std::vector<double> b;
    if (!rhs_path.value().empty()) {
      std::ifstream in(*rhs_path);
      require(in.good(), "cannot open --rhs file");
      b = read_vector_market(in);
    } else {
      // A * ones needs cols() entries; rows() == cols() for the SPD paths,
      // but --method kaczmarz also accepts rectangular matrices.
      const std::vector<double> ones(static_cast<std::size_t>(a.cols()), 1.0);
      b = rhs_from_solution(a, ones);
      std::cerr << "rhs: A * ones (self-checking mode)\n";
    }

    SolveControls controls;
    controls.rel_tol = *tol;
    controls.workers = static_cast<int>(*threads);
    controls.sweeps =
        *max_iters > 0 ? static_cast<int>(*max_iters) : 100000;
    controls.max_iterations = static_cast<int>(*max_iters);
    controls.inner_sweeps = static_cast<int>(*inner);
    controls.sync = SyncMode::kBarrierPerSweep;
    if (*method == "auto")
      controls.method = SpdMethod::kAuto;
    else if (*method == "asyrgs")
      controls.method = SpdMethod::kAsyncRgs;
    else if (*method == "fcg")
      controls.method = SpdMethod::kFcgAsyRgs;
    else if (*method == "cg")
      controls.method = SpdMethod::kCg;
    else if (*method == "kaczmarz")
      controls.method = SpdMethod::kAsyncKaczmarz;
    else
      throw Error("unknown --method (want auto|asyrgs|fcg|cg|kaczmarz)");
    if (*scan == "pinned")
      controls.scan = ScanMode::kPinned;
    else if (*scan == "reassociated")
      controls.scan = ScanMode::kReassociated;
    else
      throw Error("unknown --scan (want pinned|reassociated)");
    StorageMode storage_mode = StorageMode::kAuto;
    if (*storage == "auto")
      storage_mode = StorageMode::kAuto;
    else if (*storage == "int64")
      storage_mode = StorageMode::kInt64Double;
    else if (*storage == "int32")
      storage_mode = StorageMode::kInt32Double;
    else if (*storage == "mixed")
      storage_mode = StorageMode::kInt32Mixed;
    else
      throw Error("unknown --storage (want auto|int64|int32|mixed)");
    if (*sampling == "uniform")
      controls.sampling = SamplingPolicy::kUniform;
    else if (*sampling == "weighted")
      controls.sampling = SamplingPolicy::kWeighted;
    else if (*sampling == "residual")
      controls.sampling = SamplingPolicy::kResidual;
    else
      throw Error("unknown --sampling (want uniform|weighted|residual)");
    controls.resample_sweeps = static_cast<int>(*resample);
    controls.partitions = static_cast<int>(*partitions);
    controls.steal_rate = *steal;
    const bool kaczmarz = controls.method == SpdMethod::kAsyncKaczmarz;

    std::vector<double> x;
    SolveOutcome outcome;
    if (*shards > 1) {
      // Sharded serving path: prepare the service once (shard 0 validates,
      // clones reuse the analysis), submit every repeat concurrently, and
      // let free shards pull them.
      ServiceOptions service_options;
      service_options.shards = static_cast<int>(*shards);
      service_options.workers_per_shard = static_cast<int>(*threads);
      service_options.storage = storage_mode;
      service_options.prepare_partitions = controls.partitions != 0;
      if (kaczmarz) {
        // Row-action least squares: only the lsq handles are needed (and
        // SPD preparation would reject rectangular inputs).
        service_options.prepare_spd = false;
        service_options.prepare_lsq = true;
      }
      WallTimer prepare_timer;
      SolverService service(a, service_options);
      std::cerr << "prepared " << service.shards() << "-shard service ("
                << service.workers_per_shard() << " threads/shard) in "
                << prepare_timer.seconds() << " s\n";
      std::vector<SolveTicket> tickets;
      for (std::int64_t run = 0; run < *repeat; ++run)
        tickets.push_back(kaczmarz
                              ? service.submit_least_squares(b, controls)
                              : service.submit(b, controls));
      for (std::size_t run = 0; run < tickets.size(); ++run) {
        outcome = tickets[run].wait();
        if (*repeat > 1)
          std::cerr << "solve " << (run + 1) << "/" << *repeat << " (shard "
                    << tickets[run].shard() << "): "
                    << to_string(outcome.status) << " in " << outcome.seconds
                    << " s\n";
      }
      x = tickets.back().solution();
    } else if (kaczmarz) {
      // Row-action least squares: prepare once (A^T, rank check, row
      // norms), then solve --repeat times against the handle.
      WallTimer prepare_timer;
      LsqProblem problem(ThreadPool::global(), a, storage_mode);
      std::cerr << "prepared lsq handle in " << prepare_timer.seconds()
                << " s (storage: " << to_string(problem.storage()) << ")\n";

      for (std::int64_t run = 0; run < *repeat; ++run) {
        x.assign(static_cast<std::size_t>(a.cols()), 0.0);
        outcome = problem.solve(b, x, controls);
        if (*repeat > 1)
          std::cerr << "solve " << (run + 1) << "/" << *repeat << ": "
                    << to_string(outcome.status) << " in " << outcome.seconds
                    << " s\n";
      }
    } else {
      // Prepare once (symmetry + diagonal validation, cached transpose,
      // scratch), then solve --repeat times against the handle.
      WallTimer prepare_timer;
      SpdProblem problem(ThreadPool::global(), a, /*check_input=*/true,
                         storage_mode);
      std::cerr << "prepared handle in " << prepare_timer.seconds()
                << " s (storage: " << to_string(problem.storage()) << ")\n";

      for (std::int64_t run = 0; run < *repeat; ++run) {
        x.assign(static_cast<std::size_t>(a.rows()), 0.0);
        outcome = problem.solve(b, x, controls);
        if (*repeat > 1)
          std::cerr << "solve " << (run + 1) << "/" << *repeat << ": "
                    << to_string(outcome.status) << " in " << outcome.seconds
                    << " s\n";
      }
    }

    std::cerr << "method: " << outcome.description << "\n"
              << "storage: " << to_string(outcome.storage_used) << "\n"
              << "sampling: " << to_string(outcome.sampling_used) << "\n";
    if (outcome.partitions_used != 0)
      std::cerr << "partitions: " << outcome.partitions_used << " (steal "
                << outcome.steal_rate_used << ")\n";
    std::cerr << "status: " << to_string(outcome.status)
              << "  iterations: " << outcome.iterations
              << "  time: " << outcome.seconds << " s\n"
              << "relative residual: " << relative_residual(a, b, x) << "\n";

    if (!out_path.value().empty()) {
      std::ofstream out(*out_path);
      require(out.good(), "cannot open --out file");
      write_vector_market(out, x);
      std::cerr << "solution written to " << *out_path << "\n";
    }
    return outcome.converged() ? 0 : 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
