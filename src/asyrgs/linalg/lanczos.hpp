// Lanczos tridiagonalization for extreme-eigenvalue estimation.
//
// The paper characterises its test matrix with "an iterative condition-number
// estimator" and the theory consumes lambda_min / lambda_max (through kappa
// and the delta_max = 1 - lambda_max/n factors of Theorems 2-4).  We use
// Lanczos with full reorthogonalization — affordable because only O(100)
// steps are ever taken — and extract Ritz values from the tridiagonal matrix
// by bisection on Sturm sequences (robust, eigenvalues-only).
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Eigenvalues of a symmetric tridiagonal matrix with diagonal `d` (size n)
/// and sub-diagonal `e` (size n-1), in ascending order, via Sturm bisection.
[[nodiscard]] std::vector<double> tridiag_eigenvalues(
    const std::vector<double>& d, const std::vector<double>& e);

/// Number of eigenvalues of the tridiagonal (d, e) strictly below x
/// (Sturm-sequence count; exposed for tests).
[[nodiscard]] int tridiag_count_below(const std::vector<double>& d,
                                      const std::vector<double>& e, double x);

/// Result of a Lanczos run on SPD A.
struct LanczosResult {
  double lambda_min = 0.0;  ///< smallest Ritz value (upper bound on true min)
  double lambda_max = 0.0;  ///< largest Ritz value (lower bound on true max)
  int steps = 0;            ///< Lanczos steps actually taken
  bool breakdown = false;   ///< true when the Krylov space became invariant
};

/// Runs `steps` Lanczos iterations with full reorthogonalization from a
/// seeded random start vector and returns the extreme Ritz values.
[[nodiscard]] LanczosResult lanczos_extreme(ThreadPool& pool,
                                            const CsrMatrix& a, int steps,
                                            std::uint64_t seed = 7);

}  // namespace asyrgs
