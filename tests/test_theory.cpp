// Theory-module tests: formula values, optimality of the suggested step
// sizes, applicability predicates, bound monotonicity, measured inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/support/thread_pool.hpp"
#include "asyrgs/theory/bounds.hpp"

namespace asyrgs {
namespace {

TEST(Theory, NuTauFormula) {
  // Theorem 2 special case (beta = 1): nu = 1 - 2 rho tau.
  EXPECT_DOUBLE_EQ(nu_tau(0.01, 10, 1.0), 1.0 - 0.2);
  EXPECT_DOUBLE_EQ(nu_tau(0.0, 100, 1.0), 1.0);
  // General Theorem 3 form.
  EXPECT_DOUBLE_EQ(nu_tau(0.02, 5, 0.5), 1.0 - 0.25 - 2 * 0.02 * 5 * 0.25);
}

TEST(Theory, OmegaTauFormula) {
  EXPECT_DOUBLE_EQ(omega_tau(0.001, 10, 0.25),
                   2 * 0.25 * (1 - 0.25 - 0.001 * 100 * 0.25 / 2));
  EXPECT_DOUBLE_EQ(omega_tau(0.0, 0, 0.5), 2 * 0.5 * 0.5);
}

TEST(Theory, PaperNumericalExample) {
  // Section 9: "rho ~ 231/n and rho2 ~ 8.9/n, so ... nu_200(1.0) = 0.618
  // and omega_200(0.25) = 0.1906" — wait: nu_200(1.0) = 1 - 2*(231/n)*200
  // with n = 120147 gives 1 - 0.769 = 0.231?  The paper's 0.618 comes from
  // the *optimal-beta* form nu(beta~) = 1/(1+2 rho tau) = 1/1.769 = 0.565,
  // or from beta = 1 in the Theorem 3 polynomial... We verify our formulas
  // against their algebraic definitions instead, and check the paper's
  // omega number, which does match Theorem 4's formula.
  const double n = 120147.0;
  const double rho2_val = 8.9 / n;
  const double omega = omega_tau(rho2_val, 200, 0.25);
  EXPECT_NEAR(omega, 0.1906, 5e-3);
}

TEST(Theory, OptimalBetaConsistentMaximizesNu) {
  const double rho_val = 0.003;
  const index_t tau = 50;
  const double beta_star = optimal_beta_consistent(rho_val, tau);
  EXPECT_NEAR(beta_star, 1.0 / 1.3, 1e-12);
  // The paper: nu(beta~) = 1/(1 + 2 rho tau).
  EXPECT_NEAR(nu_tau(rho_val, tau, beta_star), 1.0 / 1.3, 1e-12);
  const double nu_star = nu_tau(rho_val, tau, beta_star);
  for (double beta = 0.05; beta <= 1.0; beta += 0.05)
    EXPECT_LE(nu_tau(rho_val, tau, beta), nu_star + 1e-12);
}

TEST(Theory, OptimalBetaInconsistentMaximizesOmega) {
  const double rho2_val = 0.0005;
  const index_t tau = 40;
  const double beta_star = optimal_beta_inconsistent(rho2_val, tau);
  const double omega_star = omega_tau(rho2_val, tau, beta_star);
  for (double beta = 0.02; beta < 1.0; beta += 0.02)
    EXPECT_LE(omega_tau(rho2_val, tau, beta), omega_star + 1e-12);
}

TEST(Theory, T0MatchesApproximation) {
  // T0 ~ 0.693 n / lambda_max when lambda_max << n.
  const std::uint64_t t0 = theorem_t0(10000, 4.0);
  EXPECT_NEAR(static_cast<double>(t0), 0.693 * 10000 / 4.0, 20.0);
  EXPECT_THROW((void)theorem_t0(100, 200.0), Error);  // needs lambda_max < n
}

TEST(Theory, ApplicabilityPredicates) {
  TheoremInputs in;
  in.n = 1000;
  in.lambda_min = 0.01;
  in.lambda_max = 2.0;
  in.rho = 0.002;
  in.rho2 = 0.001;
  in.beta = 1.0;

  in.tau = 10;  // 2 rho tau = 0.04 < 1
  EXPECT_TRUE(consistent_bound_applicable(in));
  in.tau = 300;  // 2 rho tau = 1.2 > 1
  EXPECT_FALSE(consistent_bound_applicable(in));

  in.tau = 10;
  in.beta = 0.5;
  EXPECT_TRUE(inconsistent_bound_applicable(in));
  in.beta = 1.0;  // Theorem 4 requires beta < 1
  EXPECT_FALSE(inconsistent_bound_applicable(in));
}

TEST(Theory, SynchronousBoundDecaysGeometrically) {
  const double one = synchronous_bound(100, 0.5, 1.0, 0);
  EXPECT_DOUBLE_EQ(one, 1.0);
  const double after_n = synchronous_bound(100, 0.5, 1.0, 100);
  EXPECT_NEAR(after_n, std::pow(1.0 - 0.005, 100), 1e-12);
  EXPECT_LT(synchronous_bound(100, 0.5, 1.0, 2000),
            synchronous_bound(100, 0.5, 1.0, 1000));
}

TEST(Theory, EpochFactorsImproveWithSmallerTau) {
  TheoremInputs in;
  in.n = 5000;
  in.lambda_min = 0.05;
  in.lambda_max = 2.0;
  in.rho = 0.0008;
  in.rho2 = 0.0004;
  in.beta = 1.0;

  in.tau = 4;
  const double fast = consistent_epoch_factor(in);
  in.tau = 64;
  const double slow = consistent_epoch_factor(in);
  EXPECT_LT(fast, slow);  // smaller factor = faster convergence
  EXPECT_GT(fast, 0.0);
  EXPECT_LT(slow, 1.0);

  in.beta = 0.5;
  in.tau = 4;
  const double fast_inc = inconsistent_epoch_factor(in);
  in.tau = 64;
  const double slow_inc = inconsistent_epoch_factor(in);
  EXPECT_LT(fast_inc, slow_inc);
}

TEST(Theory, FreeRunningBoundsDecreaseInM) {
  TheoremInputs in;
  in.n = 2000;
  in.lambda_min = 0.02;
  in.lambda_max = 2.0;
  in.rho = 0.001;
  in.rho2 = 0.0005;
  in.tau = 8;
  in.beta = 1.0;

  const std::uint64_t epoch = theorem_t0(in.n, in.lambda_max) + 8;
  double prev = consistent_free_running_bound(in, epoch);
  EXPECT_LT(prev, 1.0);
  for (int r = 2; r <= 6; ++r) {
    const double cur = consistent_free_running_bound(in, r * epoch);
    EXPECT_LT(cur, prev);
    prev = cur;
  }

  in.beta = 0.4;
  double prev_inc = inconsistent_free_running_bound(in, epoch);
  for (int r = 2; r <= 6; ++r) {
    const double cur = inconsistent_free_running_bound(in, r * epoch);
    EXPECT_LE(cur, prev_inc);
    prev_inc = cur;
  }
}

TEST(Theory, ChiAndPsiGrowWithTau) {
  TheoremInputs in;
  in.n = 2000;
  in.lambda_min = 0.02;
  in.lambda_max = 2.0;
  in.rho = 0.001;
  in.rho2 = 0.0005;
  in.beta = 1.0;

  in.tau = 4;
  const double chi_small = chi_term(in);
  const double psi_small = psi_term(in);
  in.tau = 32;
  EXPECT_GT(chi_term(in), chi_small);
  EXPECT_GT(psi_term(in), psi_small);
}

TEST(Theory, SynchronousIterationCountScalesWithEpsAndDelta) {
  const std::uint64_t loose = synchronous_iterations_for(1000, 0.1, 1.0,
                                                         0.1, 0.5);
  const std::uint64_t tight = synchronous_iterations_for(1000, 0.1, 1.0,
                                                         0.01, 0.5);
  EXPECT_GT(tight, loose);
  const std::uint64_t confident = synchronous_iterations_for(1000, 0.1, 1.0,
                                                             0.1, 0.01);
  EXPECT_GT(confident, loose);
}

TEST(Theory, MeasuredInputsMatchClosedFormOnLaplacian) {
  ThreadPool pool(4);
  const index_t n = 100;
  const CsrMatrix raw = laplacian_1d(n);
  const CsrMatrix a = UnitDiagonalScaling(raw).scale_matrix(raw);
  const TheoremInputs in =
      measure_theorem_inputs(pool, a, /*tau=*/8, /*beta=*/1.0,
                             /*lanczos_steps=*/static_cast<int>(n));
  EXPECT_EQ(in.n, n);
  // Unit-diagonal Laplacian rows: 1 + 0.5 + 0.5 = 2 for interior rows.
  EXPECT_NEAR(in.rho, 2.0 / n, 1e-12);
  EXPECT_NEAR(in.rho2, 1.5 / n, 1e-12);
  EXPECT_NEAR(in.lambda_min, laplacian_1d_eigenvalue(n, 1) / 2.0, 1e-6);
  EXPECT_NEAR(in.lambda_max, laplacian_1d_eigenvalue(n, n) / 2.0, 1e-6);
}

}  // namespace
}  // namespace asyrgs
