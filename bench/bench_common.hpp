// Shared benchmark scaffolding: the synthetic social-media system (the
// stand-in for the paper's proprietary 120,147^2 Gram matrix), thread-sweep
// handling, and uniform metadata output.
//
// Output conventions: lines starting with '#' are metadata, everything else
// is an aligned data table, so plots can be regenerated with a trivial
// parser.  Every binary accepts --help and scales down/up via CLI flags;
// defaults complete in seconds so `for b in build/bench/*; do $b; done` is
// practical.
#pragma once

#include <algorithm>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "asyrgs/asyrgs.hpp"

namespace asyrgs::bench {

/// Standard CLI knobs for the social-gram workload.
struct GramCli {
  CliParser::Option<std::int64_t> terms;
  CliParser::Option<std::int64_t> documents;
  CliParser::Option<std::int64_t> doc_length;
  CliParser::Option<double> ridge;
  CliParser::Option<std::int64_t> topics;
  CliParser::Option<double> concentration;
  CliParser::Option<std::int64_t> rhs;
  CliParser::Option<std::int64_t> seed;
};

inline GramCli add_gram_options(CliParser& cli) {
  // Defaults calibrated so the unit-scaled Gram has kappa ~ 6e2 (the paper's
  // matrix is "highly ill-conditioned") while every bench still finishes in
  // seconds; raise --terms/--documents for a larger run.
  return GramCli{
      cli.add_int("terms", 3000, "Gram dimension (vocabulary size)"),
      cli.add_int("documents", 12000, "corpus size"),
      cli.add_int("doc-length", 10, "mean distinct terms per document"),
      cli.add_double("ridge", 0.5, "ridge added to the Gram diagonal"),
      cli.add_int("topics", 100, "topic count (drives ill-conditioning)"),
      cli.add_double("concentration", 0.92, "P(term from own topic)"),
      cli.add_int("rhs", 12, "simultaneous right-hand sides (paper: 51)"),
      cli.add_int("seed", 42, "corpus generator seed"),
  };
}

inline SocialGram build_gram(const GramCli& cli) {
  SocialGramOptions opt;
  opt.terms = *cli.terms;
  opt.documents = *cli.documents;
  opt.mean_doc_length = *cli.doc_length;
  opt.ridge = *cli.ridge;
  opt.topics = *cli.topics;
  opt.topic_concentration = *cli.concentration;
  opt.seed = static_cast<std::uint64_t>(*cli.seed);
  return make_social_gram(opt);
}

/// The unit-diagonal system every solver comparison runs on.  For the
/// randomized solvers this is equivalent to running iteration (3) on the
/// raw Gram (paper Section 3); for CG it amounts to the standard Jacobi
/// scaling, which keeps the Krylov baseline honest on a matrix whose raw
/// diagonal spans orders of magnitude.
inline CsrMatrix scaled_gram(const SocialGram& system) {
  return UnitDiagonalScaling(system.gram).scale_matrix(system.gram);
}

/// Prints the matrix profile the paper reports for its test system
/// (dimension, nonzeros, row-size skew, and rho/rho2 of the unit-diagonal
/// rescaling — the quantities the theory consumes; the paper quotes
/// rho ~ 231/n, rho2 ~ 8.9/n for its matrix).
inline void print_matrix_profile(const CsrMatrix& a) {
  const RowNnzStats stats = row_nnz_stats(a);
  std::cout << "# matrix: n=" << a.rows() << " nnz=" << a.nnz()
            << " row_nnz[min/mean/max]=" << stats.min << "/" << stats.mean
            << "/" << stats.max << "\n";
  const CsrMatrix scaled = UnitDiagonalScaling(a).scale_matrix(a);
  std::cout << "# unit-scaled: rho*n="
            << rho(scaled) * static_cast<double>(a.rows())
            << " rho2*n=" << rho2(scaled) * static_cast<double>(a.rows())
            << "  (paper's matrix: rho*n~231, rho2*n~8.9)\n";
}

/// Default thread sweep clamped to the hardware: 1,2,4,... up to core count,
/// always including the core count itself.
inline std::vector<int> default_thread_sweep() {
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep;
  for (int t = 1; t < hw; t *= 2) sweep.push_back(t);
  sweep.push_back(hw);
  return sweep;
}

/// Parses --threads (comma list) into a clamped sweep.
inline std::vector<int> thread_sweep_from(
    const std::vector<std::int64_t>& requested) {
  if (requested.empty()) return default_thread_sweep();
  const int hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<int> sweep;
  for (std::int64_t t : requested)
    sweep.push_back(std::clamp<int>(static_cast<int>(t), 1, hw));
  return sweep;
}

/// Uniform run banner.
inline void print_banner(const std::string& experiment,
                         const std::string& paper_ref) {
  std::cout << "# experiment: " << experiment << "\n";
  std::cout << "# reproduces: " << paper_ref << "\n";
  std::cout << "# hardware threads: " << std::thread::hardware_concurrency()
            << "\n";
}

}  // namespace asyrgs::bench
