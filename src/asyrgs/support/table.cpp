#include "asyrgs/support/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace asyrgs {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  require(cells.size() == headers_.size(),
          "Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "  " << std::setw(static_cast<int>(width[c])) << row[c];
    }
    out << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  out << "  " << std::string(total > 2 ? total - 2 : 0, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_auto(double v, int precision) {
  const double a = std::abs(v);
  if (v == 0.0) return "0";
  if (a >= 1e-3 && a < 1e6) return fmt_fixed(v, precision);
  return fmt_sci(v, precision);
}

}  // namespace asyrgs
