// Non-uniform direction sampling over the batched Philox planner.
//
// The engine's determinism story rests on ONE global counter-based stream:
// worker w of a team P consumes the global Philox positions {w, w+P, ...},
// so the multiset of stream positions a run consumes is a pure function of
// (seed, n, sweeps) — independent of worker count.  This subsystem keeps
// that invariant while generalizing WHAT each position draws:
//
//   kUniform   position bits -> index via the 128-bit multiply reduction
//              (Philox4x32::index_at).  This is byte-identical to the
//              pre-sampling engine: a null/uniform sampler changes neither
//              the Philox calls nor the mapping, so every existing golden
//              hash holds.
//   kWeighted  position bits -> index via a Walker alias table built once
//              from static weights (squared row norms, nnz counts, ...).
//              One 64-bit draw decides bucket AND acceptance: the 128-bit
//              product bits*n splits into a bucket (high word) and a
//              remainder uniform within the bucket (low word), compared
//              against the bucket's fixed-point acceptance threshold.  The
//              map is a pure per-position function, so the direction
//              multiset stays invariant across worker counts.
//   kResidual  same alias mechanics, but the weights are residual
//              magnitudes and the table is rebuilt periodically — only at
//              engine synchronization points, on worker 0, while the rest
//              of the team is parked at the sweep barrier (the barrier
//              provides the happens-before edge; no locks in the draw
//              path).  Positions consumed between two rebuilds map through
//              one table generation, so a fixed (seed, refresh inputs) run
//              is reproducible; across worker counts the multiset is
//              invariant whenever the refresh inputs coincide (trivially:
//              until the first refresh, whose weights come from the
//              deterministic initial iterate).
//
// Rates: sampling rows proportionally to ||A_i||^2 is the Strohmer-
// Vershynin randomized Kaczmarz distribution, which the asynchronous
// analysis of Liu, Wright & Sridhar (arXiv:1401.4780) carries to the
// parallel setting; residual-weighted draws follow the adaptive
// sketch-and-project line of Patel, Jahangoshahi & Maldonado
// (arXiv:2104.04816, arXiv:2204.01653).  See docs/DESIGN.md.
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Direction-draw distribution of an asynchronous solve.
enum class SamplingPolicy {
  kUniform = 0,  ///< every direction equally likely (the paper's setting)
  kWeighted,     ///< static weights via a Walker alias table
  kResidual,     ///< residual-weighted, table rebuilt at sync points
};

[[nodiscard]] const char* to_string(SamplingPolicy policy) noexcept;

/// Walker/Vose alias table with a fixed-point 64-bit acceptance threshold
/// per bucket.  Sampling consumes exactly one 64-bit word: the 128-bit
/// product bits * n yields the bucket in its high word and, in its low
/// word, a remainder that is uniform over [0, 2^64) within the bucket (up
/// to an O(n/2^64) quantization) — compared against threshold_[bucket] to
/// accept the bucket or take its alias.  The build is a deterministic
/// index-ordered two-stack Vose pass: equal weights always produce equal
/// tables, byte for byte, which is what the golden-hash tests pin.
class AliasTable {
 public:
  AliasTable() = default;

  /// Rebuilds the table from `n` weights.  Negative/NaN weights clamp to
  /// zero; an all-zero (or non-finite-total) weight vector degenerates to
  /// the uniform table.  Reuses the existing arrays when `n` matches, so a
  /// residual-policy rebuild allocates nothing.
  void build(const double* weights, index_t n);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(alias_.size());
  }

  /// Maps 64 uniform bits to a table index.  Pure function of (bits, table
  /// contents); no state, safe to call from any number of readers.
  [[nodiscard]] index_t map(std::uint64_t bits) const noexcept {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(bits) *
        static_cast<unsigned __int128>(alias_.size());
    const auto bucket = static_cast<std::size_t>(prod >> 64);
    const auto rem = static_cast<std::uint64_t>(prod);
    return rem < threshold_[bucket] ? static_cast<index_t>(bucket)
                                    : alias_[bucket];
  }

  /// Exact probability the table assigns to index i (for tests: within
  /// 1/2^64 quantization of weights[i] / sum(weights)).
  [[nodiscard]] double probability(index_t i) const noexcept;

  /// FNV-1a hash over (n, thresholds, aliases) — the golden-test surface
  /// pinning build determinism.
  [[nodiscard]] std::uint64_t fnv1a() const noexcept;

 private:
  std::vector<std::uint64_t> threshold_;  // accept bucket b when rem < thr[b]
  std::vector<index_t> alias_;
};

/// A sampling policy bound to a direction count, ready for the engine.
///
/// Ownership/threading contract: the engine (DirectionPlan / run_engine)
/// holds a const pointer and calls only `map`/`map_in_place` from worker
/// threads.  `rebuild` may be called exclusively between the engine's
/// synchronization barriers (worker 0, team parked) — the barriers order
/// the writes against every later draw, so the draw path stays lock-free.
/// A kUniform sampler (or a null pointer) leaves the engine's draw path
/// byte-identical to the pre-sampling code.
class DirectionSampler {
 public:
  /// Uniform policy over [0, n): no table, no mapping overhead.
  [[nodiscard]] static DirectionSampler uniform(index_t n);

  /// Static weighted policy (Walker alias table built once).
  [[nodiscard]] static DirectionSampler weighted(const double* weights,
                                                 index_t n);

  /// Residual-weighted policy seeded from initial weights; refresh via
  /// rebuild() at engine sync points.
  [[nodiscard]] static DirectionSampler residual(const double* weights,
                                                 index_t n);

  [[nodiscard]] SamplingPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] index_t directions() const noexcept { return n_; }

  /// Whether draws route through the alias table (false exactly for
  /// kUniform — the engine's bit-identity gate).
  [[nodiscard]] bool weighted_draws() const noexcept {
    return policy_ != SamplingPolicy::kUniform;
  }

  /// One draw: 64 Philox bits to a direction.
  [[nodiscard]] index_t map(std::uint64_t bits) const noexcept {
    return table_.map(bits);
  }

  /// Batched draw: `out` initially holds raw 64-bit Philox words (written
  /// through the aliasing-compatible uint64 view of the index buffer by
  /// Philox4x32::fill_at_strided) and is mapped to directions in place.
  void map_in_place(index_t* out, std::size_t count) const noexcept;

  /// Replaces the table from fresh weights (residual policy refresh).  See
  /// the class contract for when this may be called.
  void rebuild(const double* weights, index_t n);

  /// Number of build() passes this sampler has paid (1 after construction
  /// for the weighted policies) — surfaced through ProblemStats so tests
  /// can assert prepare-once amortization.
  [[nodiscard]] long long rebuilds() const noexcept { return rebuilds_; }

  [[nodiscard]] const AliasTable& table() const noexcept { return table_; }

 private:
  DirectionSampler(SamplingPolicy policy, index_t n) noexcept
      : policy_(policy), n_(n) {}

  SamplingPolicy policy_ = SamplingPolicy::kUniform;
  index_t n_ = 0;
  AliasTable table_;
  long long rebuilds_ = 0;
};

}  // namespace asyrgs
