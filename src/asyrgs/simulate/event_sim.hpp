// Event-driven multiprocessor execution model.
//
// The paper's conclusion flags a gap: its analysis uses the *maximum* delay
// tau, which "can be rather large in some setups (e.g., high ratio between
// maximum and minimum amount of non-zeros per row)", and suggests that "a
// probabilistic modeling of the delays might lead to a convergence result
// that will be more descriptive for matrices with imbalanced row sizes".
//
// This module supplies the measurement instrument for that program: a
// discrete-event simulation of P virtual processors executing the
// randomized Gauss-Seidel stream, where the duration of update j is
// proportional to nnz(row_j) (plus fixed overhead and optional jitter).
// The simulation yields, exactly:
//
//  * the visibility structure K(j) of the paper's inconsistent-read model
//    (an update is visible once its finish time precedes the reader's start
//    time) — at most P-1 updates are ever invisible, but their *index age*
//    grows with row-size skew;
//  * the realized delay distribution (mean / max tau-hat), quantifying how
//    pessimistic the worst-case tau is for a given matrix;
//  * an InconsistentDelayModel the replay simulator can execute, so the
//    error decay under the realistic schedule can be measured directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asyrgs/simulate/delay_models.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Parameters of the virtual machine.
struct EventSimOptions {
  int processors = 8;
  std::uint64_t iterations = 0;  ///< total updates to schedule
  std::uint64_t seed = 1;        ///< direction stream (must match the replay)
  /// Fixed per-update cost added to nnz(row) (models loop/RNG overhead).
  double overhead = 4.0;
  /// Multiplicative duration jitter: each update's cost is scaled by a
  /// uniform factor in [1-jitter, 1+jitter] (OS noise, cache effects).
  double jitter = 0.1;
  std::uint64_t jitter_seed = 99;
};

/// Realized delay statistics of a schedule.
struct DelayStats {
  index_t max_delay = 0;      ///< tau-hat: max index age of an invisible update
  double mean_delay = 0.0;    ///< mean index age over all invisible pairs
  double mean_inflight = 0.0; ///< average # of concurrently executing updates
};

/// The visibility schedule produced by the event-driven execution; usable
/// directly as the delay model of simulate_inconsistent().
class EventDrivenSchedule final : public InconsistentDelayModel {
 public:
  /// Runs the discrete-event simulation for `opt.iterations` updates of the
  /// randomized stream on `a` (directions drawn from Philox(opt.seed), the
  /// same stream the replay will consume).
  static EventDrivenSchedule build(const CsrMatrix& a,
                                   const EventSimOptions& opt);

  [[nodiscard]] bool includes(std::uint64_t j, std::uint64_t t) const override;
  [[nodiscard]] index_t tau() const override { return stats_.max_delay; }
  [[nodiscard]] std::string name() const override;
  void excluded_in_window(std::uint64_t j, std::uint64_t window_start,
                          std::vector<std::uint64_t>& out) const override;

  /// Exact exclusion list for iteration j (indices of updates in flight when
  /// j started); used by the replay fast path.
  [[nodiscard]] const std::vector<std::uint64_t>& excluded(
      std::uint64_t j) const {
    return excluded_[j];
  }

  [[nodiscard]] const DelayStats& stats() const noexcept { return stats_; }
  [[nodiscard]] int processors() const noexcept { return processors_; }

 private:
  EventDrivenSchedule() = default;
  std::vector<std::vector<std::uint64_t>> excluded_;
  DelayStats stats_;
  int processors_ = 0;
};

}  // namespace asyrgs
