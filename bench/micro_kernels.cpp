// Micro-benchmarks (google-benchmark) for the kernels everything else is
// built from: Philox direction draws, atomic coordinate updates, SpMV
// partitions, and single RGS/AsyRGS coordinate steps.  These track kernel
// regressions; the paper-level experiments live in the fig*/table* binaries.
#include <benchmark/benchmark.h>

#include <atomic>

#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {
namespace {

void BM_PhiloxAt(benchmark::State& state) {
  const Philox4x32 gen(42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.at(i++));
  }
}
BENCHMARK(BM_PhiloxAt);

void BM_PhiloxIndexAt(benchmark::State& state) {
  const Philox4x32 gen(42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.index_at(i++, 120147));
  }
}
BENCHMARK(BM_PhiloxIndexAt);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_AtomicAddUncontended(benchmark::State& state) {
  double slot = 0.0;
  for (auto _ : state) {
    atomic_add_relaxed(slot, 1.0);
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_AtomicAddUncontended);

void BM_RacyAdd(benchmark::State& state) {
  double slot = 0.0;
  for (auto _ : state) {
    racy_add(slot, 1.0);
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_RacyAdd);

/// SpMV across partition strategies on the skewed Gram matrix.
void BM_SpmvGram(benchmark::State& state) {
  static const SocialGram system = [] {
    SocialGramOptions opt;
    opt.terms = 2000;
    opt.documents = 8000;
    opt.mean_doc_length = 8;
    return make_social_gram(opt);
  }();
  const CsrMatrix& a = system.gram;
  const std::vector<double> x = random_vector(a.cols(), 1);
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  ThreadPool& pool = ThreadPool::global();
  const auto partition = static_cast<RowPartition>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    spmv(pool, a, x.data(), y.data(), workers, partition);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvGram)
    ->ArgsProduct({{0, 1, 2} /* partition */, {1, 4, 0} /* workers; 0=all */})
    ->ArgNames({"partition", "workers"});

/// One sequential RGS sweep on a 2-D Laplacian.
void BM_RgsSweepLaplacian(benchmark::State& state) {
  const index_t side = state.range(0);
  const CsrMatrix a = laplacian_2d(side, side);
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<double> x(a.rows(), 0.0);
  RgsOptions opt;
  opt.sweeps = 1;
  for (auto _ : state) {
    opt.seed++;
    rgs_solve(a, b, x, opt);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_RgsSweepLaplacian)->Arg(64)->Arg(128);

}  // namespace
}  // namespace asyrgs

BENCHMARK_MAIN();
