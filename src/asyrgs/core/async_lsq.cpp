// Sequential randomized coordinate descent for least squares, plus the
// one-shot asynchronous entry points as thin wrappers over a temporary
// LsqProblem handle (asyrgs/problem.hpp) — the asynchronous kernels live in
// core/kernels.hpp and the engine invocation in problem.cpp.
#include "asyrgs/core/async_lsq.hpp"

#include <cmath>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/kernels.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

/// ||A^T (b - A x)|| / ||A^T b|| computed serially (sequential solver only).
double normal_residual(const CsrMatrix& a, const std::vector<double>& b,
                       const std::vector<double>& x) {
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];
  std::vector<double> g(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(r.data(), g.data());
  std::vector<double> g0(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(b.data(), g0.data());
  const double denom = nrm2(g0);
  return denom > 0.0 ? nrm2(g) / denom : nrm2(g);
}

}  // namespace

RgsReport rcd_lsq_solve(const CsrMatrix& a, const std::vector<double>& b,
                        std::vector<double>& x, const RgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "rcd_lsq_solve: shape mismatch");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "rcd_lsq_solve: step size must be in (0, 2)");
  const index_t n = a.cols();
  // Local transpose on purpose: this sequential one-shot path makes no
  // amortization promise, and the shared cache would pin ~nnz extra memory
  // to the caller's matrix for its lifetime.  Repeat-solve users should
  // hold an LsqProblem (or pass `at` to async_lsq_solve) instead.
  const CsrMatrix at = a.transpose();
  const std::vector<double> col_sq = detail::column_sq_norms(at);
  for (double s : col_sq)
    require(s > 0.0, "rcd_lsq_solve: zero column (A must have full rank)");

  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;

  WallTimer timer;
  RgsReport report;

  // Maintained residual r = b - A x (iteration (20) bookkeeping).
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];

  // Directions drawn in batches (identical stream to per-call index_at).
  std::vector<index_t> picks(static_cast<std::size_t>(
      std::min<index_t>(n, static_cast<index_t>(detail::kDirectionChunk))));
  std::uint64_t pos = 0;
  for (int sweep = 1; sweep <= options.sweeps; ++sweep) {
    index_t done = 0;
    while (done < n) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<index_t>(static_cast<index_t>(picks.size()), n - done));
      dirs.fill_indices(pos, chunk, n, picks.data());
      for (std::size_t u = 0; u < chunk; ++u) {
        const index_t j = picks[u];
        // gamma = A_{:,j}^T r / ||A_{:,j}||^2 over the column's row support.
        const auto rows = at.row_cols(j);
        const auto vals = at.row_vals(j);
        double gamma = 0.0;
        for (std::size_t s = 0; s < rows.size(); ++s)
          gamma += vals[s] * r[rows[s]];
        gamma *= beta / col_sq[j];
        x[j] += gamma;
        for (std::size_t s = 0; s < rows.size(); ++s)
          r[rows[s]] -= gamma * vals[s];
      }
      pos += chunk;
      done += static_cast<index_t>(chunk);
    }
    report.sweeps_done = sweep;
    report.updates += n;

    if (options.track_history || options.rel_tol > 0.0) {
      const double rel = normal_residual(a, b, x);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const CsrMatrix& at,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  LsqProblem problem(pool, a, at);
  return detail::report_from_outcome(
      problem.solve(b, x, to_controls(options)));
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  // The prepared handle materializes A^T through the matrix's shared
  // transpose cache, so repeated convenience-overload calls against one
  // matrix build the transpose exactly once.
  LsqProblem problem(pool, a);
  return detail::report_from_outcome(
      problem.solve(b, x, to_controls(options)));
}

}  // namespace asyrgs
