// Pins down the GoogleTest behaviours the rest of the suite depends on, so
// the vendored minigtest shim cannot drift from the real thing: this file
// compiles and must pass against BOTH providers (the CI runs each).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <tuple>
#include <vector>

namespace {

using asyrgs_index_t = std::int64_t;

// --- floating-point semantics ----------------------------------------------

TEST(GtestCompat, DoubleEqUsesUlpsNotEpsilon) {
  // Classic case: exact decimal arithmetic differs by 1 ULP.
  EXPECT_DOUBLE_EQ(0.1 + 0.2, 0.3);
  // Sign of zero is ignored.
  EXPECT_DOUBLE_EQ(0.0, -0.0);
  // Adjacent representable values are equal under the 4-ULP rule...
  const double x = 1.0;
  const double next = std::nextafter(x, 2.0);
  EXPECT_DOUBLE_EQ(x, next);
}

TEST(GtestCompat, NearIsAnAbsoluteBound) {
  EXPECT_NEAR(100.0, 100.5, 0.5);  // boundary inclusive
  EXPECT_NEAR(-1.0, 1.0, 2.0);
}

// --- exception assertions ---------------------------------------------------

TEST(GtestCompat, ThrowMatchesBaseClasses) {
  EXPECT_THROW(throw std::out_of_range("x"), std::logic_error);
  EXPECT_THROW(throw std::out_of_range("x"), std::exception);
}

TEST(GtestCompat, ThrowStatementMayContainCommasInsideParens) {
  auto f = [](int, int) { throw std::runtime_error("boom"); };
  EXPECT_THROW(f(1, 2), std::runtime_error);
}

// --- assertion operands evaluated exactly once ------------------------------

TEST(GtestCompat, OperandsEvaluateExactlyOnce) {
  int eq_calls = 0, lt_calls = 0, near_calls = 0;
  auto bump = [](int& counter) {
    ++counter;
    return counter;
  };
  EXPECT_EQ(bump(eq_calls), 1);
  EXPECT_LT(0, bump(lt_calls));
  EXPECT_NEAR(static_cast<double>(bump(near_calls)), 1.0, 0.5);
  EXPECT_EQ(eq_calls, 1);
  EXPECT_EQ(lt_calls, 1);
  EXPECT_EQ(near_calls, 1);
}

// --- containers and streamed messages ---------------------------------------

TEST(GtestCompat, VectorsCompareElementwise) {
  const std::vector<int> a{1, 2, 3};
  const std::vector<int> b{1, 2, 3};
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a == b) << "vector comparison with streamed context " << 7;
}

// --- fixtures ----------------------------------------------------------------

class CompatFixture : public ::testing::Test {
 protected:
  void SetUp() override { state_.push_back(42); }
  std::vector<int> state_;
};

TEST_F(CompatFixture, SetUpRunsBeforeBody) {
  ASSERT_EQ(state_.size(), 1u);
  EXPECT_EQ(state_.front(), 42);
}

// --- parameterized suites ----------------------------------------------------

class CompatParamTest : public ::testing::TestWithParam<int> {};

TEST_P(CompatParamTest, ParamIsOneOfTheValues) {
  const int p = GetParam();
  EXPECT_TRUE(p == 2 || p == 4 || p == 8);
}

INSTANTIATE_TEST_SUITE_P(Powers, CompatParamTest, ::testing::Values(2, 4, 8));

// Explicit template argument on Values, as used by test_rgs / test_theorem_*.
class CompatWideParamTest
    : public ::testing::TestWithParam<asyrgs_index_t> {};

TEST_P(CompatWideParamTest, ValuesCoerceToParamType) {
  EXPECT_GE(GetParam(), asyrgs_index_t{40});
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompatWideParamTest,
                         ::testing::Values<asyrgs_index_t>(40, 100));

// Combine with mixed element types, as used by test_rgs.
class CompatComboTest
    : public ::testing::TestWithParam<std::tuple<asyrgs_index_t, double>> {};

TEST_P(CompatComboTest, FullCrossProductIsInstantiated) {
  const auto [n, step] = GetParam();
  EXPECT_TRUE(n == 40 || n == 100);
  EXPECT_TRUE(step == 0.5 || step == 1.0 || step == 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompatComboTest,
    ::testing::Combine(::testing::Values<asyrgs_index_t>(40, 100),
                       ::testing::Values(0.5, 1.0, 1.5)));

// Distinct parameter values reach distinct test instances: every value in
// the Values() list must be observed by exactly one case. Each case checks
// membership; the cross-instance count is validated by minigtest_selftest
// (execution ordering of param vs plain tests differs between providers, so
// a same-binary accumulator check would be fragile here).

}  // namespace
