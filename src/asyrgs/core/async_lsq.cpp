#include "asyrgs/core/async_lsq.hpp"

#include <cmath>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

/// Squared Euclidean norms of the columns of A, read off the rows of A^T.
std::vector<double> column_sq_norms(const CsrMatrix& at) {
  std::vector<double> sq(static_cast<std::size_t>(at.rows()), 0.0);
  for (index_t j = 0; j < at.rows(); ++j) {
    double acc = 0.0;
    for (double v : at.row_vals(j)) acc += v * v;
    sq[j] = acc;
  }
  return sq;
}

/// ||A^T (b - A x)|| / ||A^T b|| computed serially (sequential solver only).
double normal_residual(const CsrMatrix& a, const std::vector<double>& b,
                       const std::vector<double>& x) {
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];
  std::vector<double> g(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(r.data(), g.data());
  std::vector<double> g0(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(b.data(), g0.data());
  const double denom = nrm2(g0);
  return denom > 0.0 ? nrm2(g) / denom : nrm2(g);
}

/// One asynchronous column update (iteration (21)): the residual entries for
/// the column's rows are recomputed from shared x on every step.  Specialized
/// at compile time on the atomicity mode and on the scan mode — the inner
/// r_i = b_i - A_i x row scans are this kernel's dominant FP cost, so
/// ScanMode::kReassociated routes them through the multi-accumulator/SIMD
/// kernel (plain vector reads of the shared iterate; see sparse/csr.hpp).
template <bool kAtomicWrites, ScanMode kScan>
struct LsqUpdate {
  const CsrMatrix* a;
  const CsrMatrix* at;
  const double* b;
  const double* col_sq;
  double* x;
  double beta;

  void operator()(int, index_t j, index_t j_ahead) const noexcept {
    __builtin_prefetch(at->row_cols(j_ahead).data());
    __builtin_prefetch(at->row_vals(j_ahead).data());
    const auto rows = at->row_cols(j);
    const auto col_vals = at->row_vals(j);
    double gamma = 0.0;
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const index_t i = rows[s];
      // r_i = b_i - A_i x; pinned mode reads the shared iterate with
      // relaxed-atomic loads, reassociated mode with vector gathers.
      double ri;
      if constexpr (kScan == ScanMode::kReassociated) {
        const auto arow_cols = a->row_cols(i);
        const auto arow_vals = a->row_vals(i);
        ri = csr_row_sub_dot_reassoc(b[i], arow_cols.data(), arow_vals.data(),
                                     static_cast<nnz_t>(arow_cols.size()), x);
      } else {
        ri = b[i];
        const auto arow_cols = a->row_cols(i);
        const auto arow_vals = a->row_vals(i);
        for (std::size_t q = 0; q < arow_cols.size(); ++q)
          ri -= arow_vals[q] * atomic_load_relaxed(x[arow_cols[q]]);
      }
      gamma += col_vals[s] * ri;
    }
    const double delta = beta * gamma / col_sq[j];
    if constexpr (kAtomicWrites)
      atomic_add_relaxed(x[j], delta);
    else
      racy_add(x[j], delta);
  }
};

/// ||A^T (b - A x)|| / ||A^T b|| as a two-phase team-parallel reduction at
/// synchronization points: phase 1 materializes r = b - A x (row chunks),
/// phase 2 reduces ||A^T r||^2 (column chunks via the rows of A^T).  The
/// denominator ||A^T b|| is an invariant of the run and computed once at
/// construction, not once per synchronization as the old serial callback did.
class LsqResidual {
 public:
  LsqResidual(const CsrMatrix& a, const CsrMatrix& at,
              const std::vector<double>& b, const double* x, int workers,
              bool enabled)
      : a_(a),
        at_(at),
        b_(b),
        x_(x),
        reduce_(workers),
        serial_(!detail::team_residual_profitable(workers)) {
    if (!enabled) return;
    r_.resize(static_cast<std::size_t>(a.rows()));
    std::vector<double> g0(static_cast<std::size_t>(a.cols()));
    a.multiply_transpose(b.data(), g0.data());
    denom_ = nrm2(g0);
  }

  double operator()(int id, int team) {
    // Oversubscribed host: both phases run serially on worker 0 with the
    // same chunked association as the team-parallel path (see
    // TeamReduce::run_serial and docs/TUNING.md for the heuristic); the
    // other workers return straight to the engine's synchronization
    // barrier.
    if (serial_ && id != 0) return 0.0;
    // Phase 1: r = b - A x over this worker's row chunk (the whole range
    // when serial; the entries are independent, so chunking does not
    // affect their values).
    {
      const auto [lo, hi] = serial_ ? detail::chunk_of(a_.rows(), 0, 1)
                                    : detail::chunk_of(a_.rows(), id, team);
      for (index_t i = lo; i < hi; ++i) {
        double ri = b_[i];
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s)
          ri -= vals[s] * atomic_load_relaxed(x_[cols[s]]);
        r_[static_cast<std::size_t>(i)] = ri;
      }
    }
    if (!serial_ && team > 1) reduce_.barrier().arrive_and_wait();
    // Phase 2: ||A^T r||^2 over this worker's chunk of A^T rows.
    const auto partial = [&](int w, int t) {
      const auto [lo, hi] = detail::chunk_of(at_.rows(), w, t);
      double acc = 0.0;
      for (index_t j = lo; j < hi; ++j) {
        const auto rows = at_.row_cols(j);
        const auto vals = at_.row_vals(j);
        double g = 0.0;
        for (std::size_t s = 0; s < rows.size(); ++s)
          g += vals[s] * r_[static_cast<std::size_t>(rows[s])];
        acc += g * g;
      }
      return acc;
    };
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return denom_ > 0.0 ? rn / denom_ : rn;
  }

 private:
  const CsrMatrix& a_;
  const CsrMatrix& at_;
  const std::vector<double>& b_;
  const double* x_;
  detail::TeamReduce reduce_;
  bool serial_;
  std::vector<double> r_;
  double denom_ = 0.0;
};

}  // namespace

RgsReport rcd_lsq_solve(const CsrMatrix& a, const std::vector<double>& b,
                        std::vector<double>& x, const RgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "rcd_lsq_solve: shape mismatch");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "rcd_lsq_solve: step size must be in (0, 2)");
  const index_t n = a.cols();
  const CsrMatrix at = a.transpose();
  const std::vector<double> col_sq = column_sq_norms(at);
  for (double s : col_sq)
    require(s > 0.0, "rcd_lsq_solve: zero column (A must have full rank)");

  const Philox4x32 dirs(options.seed);
  const double beta = options.step_size;

  WallTimer timer;
  RgsReport report;

  // Maintained residual r = b - A x (iteration (20) bookkeeping).
  std::vector<double> r(static_cast<std::size_t>(a.rows()));
  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < a.rows(); ++i) r[i] = b[i] - r[i];

  // Directions drawn in batches (identical stream to per-call index_at).
  std::vector<index_t> picks(static_cast<std::size_t>(
      std::min<index_t>(n, static_cast<index_t>(detail::kDirectionChunk))));
  std::uint64_t pos = 0;
  for (int sweep = 1; sweep <= options.sweeps; ++sweep) {
    index_t done = 0;
    while (done < n) {
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<index_t>(static_cast<index_t>(picks.size()), n - done));
      dirs.fill_indices(pos, chunk, n, picks.data());
      for (std::size_t u = 0; u < chunk; ++u) {
        const index_t j = picks[u];
        // gamma = A_{:,j}^T r / ||A_{:,j}||^2 over the column's row support.
        const auto rows = at.row_cols(j);
        const auto vals = at.row_vals(j);
        double gamma = 0.0;
        for (std::size_t s = 0; s < rows.size(); ++s)
          gamma += vals[s] * r[rows[s]];
        gamma *= beta / col_sq[j];
        x[j] += gamma;
        for (std::size_t s = 0; s < rows.size(); ++s)
          r[rows[s]] -= gamma * vals[s];
      }
      pos += chunk;
      done += static_cast<index_t>(chunk);
    }
    report.sweeps_done = sweep;
    report.updates += n;

    if (options.track_history || options.rel_tol > 0.0) {
      const double rel = normal_residual(a, b, x);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const CsrMatrix& at,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "async_lsq_solve: shape mismatch");
  require(at.rows() == a.cols() && at.cols() == a.rows(),
          "async_lsq_solve: `at` must be the transpose of `a`");
  require(options.step_size > 0.0 && options.step_size < 2.0,
          "async_lsq_solve: step size must be in (0, 2)");
  require(options.sweeps >= 0, "async_lsq_solve: sweeps must be non-negative");
  require(options.sync_interval_seconds > 0.0,
          "async_lsq_solve: sync interval must be positive");
  const index_t n = a.cols();
  const std::vector<double> col_sq = column_sq_norms(at);
  for (double s : col_sq)
    require(s > 0.0, "async_lsq_solve: zero column (A must have full rank)");

  const double beta = options.step_size;
  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;

  const bool check = options.track_history || options.rel_tol > 0.0;
  LsqResidual residual(a, at, b, x.data(), workers, check);

  WallTimer timer;
  detail::dispatch_atomic_scan(options, [&]<bool kAtomic, ScanMode kScan>() {
    const LsqUpdate<kAtomic, kScan> update{&a,           &at,      b.data(),
                                           col_sq.data(), x.data(), beta};
    detail::run_engine(pool, options, n, workers, update, residual, report);
  });
  report.seconds = timer.seconds();
  return report;
}

AsyncRgsReport async_lsq_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  const CsrMatrix at = a.transpose();
  return async_lsq_solve(pool, a, at, b, x, options);
}

}  // namespace asyrgs
