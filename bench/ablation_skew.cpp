// Ablation E — Realized delays under imbalanced row sizes (Section 10).
//
// The paper's conclusion: the analysis charges for the *maximum* delay tau,
// which "can be rather large in some setups (e.g., high ratio between
// maximum and minimum amount of non-zeros per row)", and suggests
// probabilistic delay modeling as future work.  This bench measures, via
// the event-driven multiprocessor simulation, what the delays actually look
// like:
//   * on a balanced matrix (grid Laplacian), tau-hat ~ P — the paper's
//     "reference scenario" expectation tau = O(P);
//   * on the skewed social Gram, the *maximum* delay explodes with the
//     max/mean row ratio while the *mean* delay stays ~ P — evidence that
//     the worst-case tau is indeed "rather pessimistic";
//   * the replayed error decay under the realistic schedule matches the
//     mean-delay picture, not the max-delay one.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

namespace {

struct CaseInput {
  std::string label;
  CsrMatrix matrix;  // unit diagonal
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_skew",
                "realized delay distribution vs row-size skew (event sim)");
  auto procs = cli.add_int_list("processors", {2, 8, 24}, "virtual P sweep");
  auto sweeps = cli.add_int("sweeps", 30, "simulated sweeps");
  cli.parse(argc, argv);

  print_banner("ablation_skew",
               "Section 10 conclusion (delay modeling for imbalanced rows)");

  std::vector<CaseInput> cases;
  {
    const CsrMatrix lap = laplacian_2d(40, 40);
    cases.push_back(
        {"laplacian_2d", UnitDiagonalScaling(lap).scale_matrix(lap)});
  }
  {
    SocialGramOptions opt;
    opt.terms = 1600;
    opt.documents = 6400;
    opt.mean_doc_length = 10;
    opt.ridge = 0.5;
    opt.topics = 50;
    opt.topic_concentration = 0.9;
    const CsrMatrix gram = make_social_gram(opt).gram;
    cases.push_back(
        {"social_gram", UnitDiagonalScaling(gram).scale_matrix(gram)});
  }

  Table table({"matrix", "row_max/mean", "P", "tau_hat(max)", "mean_delay",
               "tau_hat/P", "E_m/E_0(replay)"});

  for (const CaseInput& c : cases) {
    const index_t n = c.matrix.rows();
    const RowNnzStats stats = row_nnz_stats(c.matrix);
    const std::vector<double> x_star = random_vector(n, 3);
    const std::vector<double> b = rhs_from_solution(c.matrix, x_star);
    const std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
    const double e0 = std::pow(a_norm_error(c.matrix, x0, x_star), 2);

    for (std::int64_t p : *procs) {
      EventSimOptions eopt;
      eopt.processors = static_cast<int>(p);
      eopt.iterations = static_cast<std::uint64_t>(*sweeps) *
                        static_cast<std::uint64_t>(n);
      eopt.seed = 7;
      const EventDrivenSchedule sched =
          EventDrivenSchedule::build(c.matrix, eopt);

      SimOptions sopt;
      sopt.iterations = eopt.iterations;
      sopt.seed = 7;
      sopt.step_size = 0.9;
      const SimResult sim =
          simulate_inconsistent(c.matrix, b, x0, x_star, sched, sopt);

      table.add_row(
          {c.label, fmt_fixed(static_cast<double>(stats.max) / stats.mean, 1),
           std::to_string(p), std::to_string(sched.stats().max_delay),
           fmt_fixed(sched.stats().mean_delay, 1),
           fmt_fixed(static_cast<double>(sched.stats().max_delay) /
                         static_cast<double>(p),
                     1),
           fmt_sci(sim.final_error_sq / e0, 2)});
    }
  }
  table.print(std::cout);
  std::cout << "# shape check: tau_hat/P ~ 1 for the balanced Laplacian but "
               "grows with row skew on the Gram matrix,\n"
            << "# while mean_delay stays ~ P and the replayed decay remains "
               "healthy: the worst-case tau is pessimistic.\n";
  return 0;
}
