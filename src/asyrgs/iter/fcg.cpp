#include "asyrgs/iter/fcg.hpp"

#include <deque>

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

FcgReport fcg_solve(ThreadPool& pool, const CsrMatrix& a,
                    const std::vector<double>& b, std::vector<double>& x,
                    Preconditioner& precond, const FcgOptions& options,
                    int workers) {
  require(a.square(), "fcg_solve: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "fcg_solve: shape mismatch");
  const index_t n = a.rows();
  const SolveOptions& base = options.base;

  WallTimer timer;
  FcgReport report;
  const double b_norm = nrm2(b);
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    report.base.converged = true;
    report.base.seconds = timer.seconds();
    return report;
  }

  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> z(static_cast<std::size_t>(n));
  spmv(pool, a, x.data(), r.data(), workers);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  // Stored direction history: directions p_j, their images A p_j, and the
  // curvatures (p_j, A p_j).
  struct Direction {
    std::vector<double> p;
    std::vector<double> ap;
    double p_ap;
  };
  std::deque<Direction> history;

  for (int it = 1; it <= base.max_iterations; ++it) {
    precond.apply(r, z);
    ++report.preconditioner_applications;

    // p = z - sum_j ((z, A p_j)/(p_j, A p_j)) p_j.
    std::vector<double> p = z;
    for (const Direction& d : history) {
      const double coeff = dot(z, d.ap) / d.p_ap;
      axpy(-coeff, d.p, p);
    }

    std::vector<double> ap(static_cast<std::size_t>(n));
    spmv(pool, a, p.data(), ap.data(), workers);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) break;  // numerical breakdown; report non-convergence

    const double alpha = dot(p, r) / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    report.base.iterations = it;

    const double rel = nrm2(r) / b_norm;
    report.base.final_relative_residual = rel;
    if (base.track_history) report.base.residual_history.push_back(rel);
    if (rel <= base.rel_tol) {
      report.base.converged = true;
      break;
    }

    history.push_back(Direction{std::move(p), std::move(ap), p_ap});
    if (options.truncation > 0 &&
        static_cast<int>(history.size()) > options.truncation)
      history.pop_front();
  }

  report.base.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
