#include "asyrgs/sparse/spmv.hpp"

#include <algorithm>

namespace asyrgs {

namespace {

/// Picks a dynamic-scheduling grain so that a chunk is ~64 rows but at least
/// 1 and the whole loop yields a few chunks per worker even for tiny n.
index_t dynamic_grain(index_t rows, int workers) {
  const index_t target_chunks = static_cast<index_t>(workers) * 8;
  index_t grain = rows / std::max<index_t>(target_chunks, 1);
  return std::clamp<index_t>(grain, 1, 64);
}

}  // namespace

template <class Index, class Value>
void spmv(ThreadPool& pool, const CsrMatrixT<Index, Value>& a, const double* x,
          double* y, int workers, RowPartition partition) {
  const index_t n = a.rows();
  if (workers <= 0) workers = pool.size();
  switch (partition) {
    case RowPartition::kContiguous:
      pool.parallel_for(
          0, n,
          [&](index_t lo, index_t hi) {
            for (index_t i = lo; i < hi; ++i) y[i] = a.row_dot(i, x);
          },
          workers);
      break;
    case RowPartition::kRoundRobin:
      pool.run_team(workers, [&](int id, int team) {
        for (index_t i = id; i < n; i += team) y[i] = a.row_dot(i, x);
      });
      break;
    case RowPartition::kDynamic:
      pool.parallel_for_dynamic(
          0, n, dynamic_grain(n, workers),
          [&](index_t lo, index_t hi) {
            for (index_t i = lo; i < hi; ++i) y[i] = a.row_dot(i, x);
          },
          workers);
      break;
  }
}

template <class Index, class Value>
void spmv(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
          const std::vector<double>& x, std::vector<double>& y, int workers,
          RowPartition partition) {
  require(static_cast<index_t>(x.size()) == a.cols(),
          "spmv: x length must equal cols");
  y.resize(static_cast<std::size_t>(a.rows()));
  spmv(pool, a, x.data(), y.data(), workers, partition);
}

namespace {

/// One fused block row: y_row = A_i X over all block columns.
template <class Index, class Value>
inline void block_row_dot(const CsrMatrixT<Index, Value>& a,
                          const MultiVector& x, index_t i, double* y_row) {
  const index_t k = x.cols();
  std::fill(y_row, y_row + k, 0.0);
  const auto cols = a.row_cols(i);
  const auto vals = a.row_vals(i);
  for (std::size_t t = 0; t < cols.size(); ++t) {
    const double aij = vals[t];
    const double* x_row = x.row(cols[t]);
    for (index_t c = 0; c < k; ++c) y_row[c] += aij * x_row[c];
  }
}

}  // namespace

template <class Index, class Value>
void spmv_block(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
                const MultiVector& x, MultiVector& y, int workers,
                RowPartition partition) {
  require(x.rows() == a.cols(), "spmv_block: X row count must equal cols");
  require(y.rows() == a.rows() && y.cols() == x.cols(),
          "spmv_block: Y shape mismatch");
  const index_t n = a.rows();
  if (workers <= 0) workers = pool.size();
  auto body = [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) block_row_dot(a, x, i, y.row(i));
  };
  switch (partition) {
    case RowPartition::kContiguous:
      pool.parallel_for(0, n, body, workers);
      break;
    case RowPartition::kRoundRobin:
      pool.run_team(workers, [&](int id, int team) {
        for (index_t i = id; i < n; i += team)
          block_row_dot(a, x, i, y.row(i));
      });
      break;
    case RowPartition::kDynamic:
      pool.parallel_for_dynamic(0, n, dynamic_grain(n, workers), body,
                                workers);
      break;
  }
}

template <class Index, class Value>
void block_residual(ThreadPool& pool, const CsrMatrixT<Index, Value>& a,
                    const MultiVector& b, const MultiVector& x, MultiVector& r,
                    int workers) {
  require(b.rows() == a.rows() && x.rows() == a.cols(),
          "block_residual: shape mismatch");
  require(r.rows() == b.rows() && r.cols() == b.cols() &&
              x.cols() == b.cols(),
          "block_residual: shape mismatch");
  const index_t n = a.rows();
  const index_t k = b.cols();
  if (workers <= 0) workers = pool.size();
  pool.parallel_for_dynamic(
      0, n, dynamic_grain(n, workers),
      [&](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          double* r_row = r.row(i);
          block_row_dot(a, x, i, r_row);
          const double* b_row = b.row(i);
          for (index_t c = 0; c < k; ++c) r_row[c] = b_row[c] - r_row[c];
        }
      },
      workers);
}

// Instantiate every entry point for the three supported storage policies
// (consumers see only the declarations in spmv.hpp).
#define ASYRGS_INSTANTIATE_SPMV(Index, Value)                                  \
  template void spmv<Index, Value>(ThreadPool&,                                \
                                   const CsrMatrixT<Index, Value>&,            \
                                   const double*, double*, int, RowPartition); \
  template void spmv<Index, Value>(                                            \
      ThreadPool&, const CsrMatrixT<Index, Value>&, const std::vector<double>&,\
      std::vector<double>&, int, RowPartition);                                \
  template void spmv_block<Index, Value>(                                      \
      ThreadPool&, const CsrMatrixT<Index, Value>&, const MultiVector&,        \
      MultiVector&, int, RowPartition);                                        \
  template void block_residual<Index, Value>(                                  \
      ThreadPool&, const CsrMatrixT<Index, Value>&, const MultiVector&,        \
      const MultiVector&, MultiVector&, int);

ASYRGS_INSTANTIATE_SPMV(std::int64_t, double)
ASYRGS_INSTANTIATE_SPMV(std::int32_t, double)
ASYRGS_INSTANTIATE_SPMV(std::int32_t, float)

#undef ASYRGS_INSTANTIATE_SPMV

}  // namespace asyrgs
