// Immutable compressed-sparse-row matrix, parameterized on storage policy.
//
// This is the single matrix representation used by all solvers.  Column
// indices within each row are sorted, which the randomized solvers rely on
// for cache-friendly row scans and O(log nnz(row)) entry lookup.
//
// Storage policy: `CsrMatrixT<Index, Value>` selects the width of the stored
// column indices and values.  Three policies are supported (anything else is
// rejected at compile time):
//
//   CsrMatrix       = CsrMatrixT<int64, double>  full-width (the historical
//                                                layout; source-compatible)
//   CsrMatrix32     = CsrMatrixT<int32, double>  compact indices
//   CsrMatrixMixed  = CsrMatrixT<int32, float>   compact indices + values
//
// Only the *stored* arrays narrow: dimensions stay index_t, row pointers stay
// nnz_t, and every kernel accumulates in double regardless of Value — so the
// narrow policies change memory traffic, never the accumulation precision.
// For int32/double the pinned-scan arithmetic is bit-identical to the
// full-width layout (same doubles, same association); int32/mixed rounds each
// stored value once to float and is therefore an accuracy trade the caller
// opts into (see docs/DESIGN.md).  The paper's convergence theory is
// indifferent to the index width; mixed precision perturbs the operator by
// at most one float ulp per entry, which the bounds absorb as a conditioning
// change, not a correctness loss.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <type_traits>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

// ---------------------------------------------------------------------------
// Storage policy
// ---------------------------------------------------------------------------

/// The three supported (Index, Value) storage layouts, as a runtime tag —
/// what prepared handles record and the bench/trace layers report.
enum class StoragePolicy {
  kInt64Double,  ///< int64 indices, double values (full width)
  kInt32Double,  ///< int32 indices, double values (bit-identical pinned math)
  kInt32Mixed,   ///< int32 indices, float values, double accumulation
};

/// Stable machine-readable policy name ("int64_double", "int32_double",
/// "int32_mixed") — used verbatim in bench JSON and trace events.
[[nodiscard]] constexpr const char* to_string(StoragePolicy policy) noexcept {
  switch (policy) {
    case StoragePolicy::kInt64Double:
      return "int64_double";
    case StoragePolicy::kInt32Double:
      return "int32_double";
    case StoragePolicy::kInt32Mixed:
      return "int32_mixed";
  }
  return "?";
}

namespace detail {

template <class Index, class Value>
inline constexpr bool kSupportedStorage =
    (std::is_same_v<Index, std::int64_t> && std::is_same_v<Value, double>) ||
    (std::is_same_v<Index, std::int32_t> && std::is_same_v<Value, double>) ||
    (std::is_same_v<Index, std::int32_t> && std::is_same_v<Value, float>);

template <class Index, class Value>
[[nodiscard]] constexpr StoragePolicy storage_policy_of() noexcept {
  static_assert(kSupportedStorage<Index, Value>,
                "CsrMatrixT: supported storage policies are <int64,double>, "
                "<int32,double>, <int32,float>");
  if constexpr (std::is_same_v<Index, std::int64_t>)
    return StoragePolicy::kInt64Double;
  else if constexpr (std::is_same_v<Value, double>)
    return StoragePolicy::kInt32Double;
  else
    return StoragePolicy::kInt32Mixed;
}

/// Re-installation guard for transpose-cache slots stolen by a move; shared
/// by every CsrMatrixT instantiation (the path is cold — see
/// transpose_shared).
[[nodiscard]] inline std::mutex& transpose_slot_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace detail

/// True when a matrix with `cols` columns can store every column index as
/// `Index` (indices run 0 .. cols-1).  The overflow guard behind prepare-time
/// narrowing: int32 admits up to 2^31 columns.
template <class Index>
[[nodiscard]] constexpr bool index_width_fits(index_t cols) noexcept {
  return cols - 1 <= static_cast<index_t>(std::numeric_limits<Index>::max());
}

// ---------------------------------------------------------------------------
// Raw CSR row kernels
// ---------------------------------------------------------------------------
//
// The innermost loops of every solver are scans of one CSR row against a
// dense vector.  These free kernels take raw `__restrict`-qualified arrays —
// CSR index/value storage never aliases the dense operand — so the compiler
// can keep the row pointers in registers and schedule the loads freely.
// They are shared by the sequential solvers (rgs, rcd_lsq), SpMV, and the
// benches; the asynchronous kernels use their own variants with
// relaxed-atomic reads of the shared iterate.
//
// All kernels are templated over the stored (Index, Value) pair and
// accumulate in double: a float value promotes at the multiply, so mixed
// storage narrows the memory stream, not the arithmetic.

/// Sum of vals[t] * x[cols[t]] over one row (SpMV / dot building block).
template <class Index, class Value>
[[nodiscard]] inline double csr_row_dot(const Index* __restrict cols,
                                        const Value* __restrict vals,
                                        nnz_t len,
                                        const double* __restrict x) noexcept {
  double acc = 0.0;
  for (nnz_t t = 0; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

/// acc minus the row/vector products, one subtraction per nonzero — the
/// canonical Gauss-Seidel association (`acc = b_r`, then acc -= A_rj x_j in
/// column order) that every solver shares so equal-seed runs agree bit for
/// bit (per storage policy; int32/double reproduces int64/double exactly).
template <class Index, class Value>
[[nodiscard]] inline double csr_row_sub_dot(
    double acc, const Index* __restrict cols, const Value* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  for (nnz_t t = 0; t < len; ++t) acc -= vals[t] * x[cols[t]];
  return acc;
}

// --- reassociated ("fast math") row scans ------------------------------------
//
// The pinned kernels above evaluate the row scan as one serial
// subtraction/addition chain, which is what makes equal-seed runs bit-exact
// across worker counts — and what caps the scan-bound regime at one FP
// operation per dependency-chain latency.  The *_reassoc variants below drop
// the association guarantee: they split the scan over multiple independent
// accumulators (and gather/FMA SIMD lanes where the CPU has AVX-512/AVX2;
// runtime-dispatched with an unrolled multi-accumulator scalar fallback) and
// reduce at the end.  The result is the same mathematical sum under a
// different (unspecified, width-dependent) rounding order.
//
// Convergence theory is indifferent to the association — the paper's
// bounds (and AsyRK's, arXiv:1401.4780) assume only bounded staleness of the
// values read, never a particular reduction order — so the asynchronous
// solvers expose these kernels behind the opt-in ScanMode::kReassociated
// (see core/async_rgs.hpp); the default solve path never calls them.
//
// Thread-safety contract: `x` may be a concurrently-updated shared iterate.
// These kernels read it with plain (vector) loads rather than the pinned
// path's relaxed-atomic loads; on every supported target a naturally aligned
// 8-byte load cannot tear, which is all the convergence model requires
// (each read observes some previously stored value).  See docs/API.md.
//
// Per-policy SIMD encodings (sparse/csr.cpp): int64 indices use the
// 64-bit-index gathers; int32 indices use the narrow gathers, which address
// twice the lanes per index vector (one __m256i feeds a full 8-double
// AVX-512 gather); float values load at half the bytes and widen in
// registers (cvtps_pd) before the double FMA.

/// Long-row reassociated kernel (len >= 16): SIMD gather/FMA lanes,
/// runtime-dispatched AVX-512 / AVX2 / unrolled scalar, one overload per
/// storage policy.  Implementation detail of csr_row_dot_reassoc — call
/// that instead.
[[nodiscard]] double csr_row_dot_reassoc_long(const std::int64_t* cols,
                                              const double* vals, nnz_t len,
                                              const double* x) noexcept;
[[nodiscard]] double csr_row_dot_reassoc_long(const std::int32_t* cols,
                                              const double* vals, nnz_t len,
                                              const double* x) noexcept;
[[nodiscard]] double csr_row_dot_reassoc_long(const std::int32_t* cols,
                                              const float* vals, nnz_t len,
                                              const double* x) noexcept;

/// Four-accumulator scalar scan: splitting the add chain pipelines the FP
/// adder without SIMD gather setup.  Single definition shared by the
/// short-row path of csr_row_dot_reassoc below and the no-SIMD long-row
/// fallback in sparse/csr.cpp, so the two cannot drift apart.
template <class Index, class Value>
[[nodiscard]] inline double csr_row_dot_multiacc(
    const Index* __restrict cols, const Value* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  nnz_t t = 0;
  for (; t + 4 <= len; t += 4) {
    s0 += vals[t] * x[cols[t]];
    s1 += vals[t + 1] * x[cols[t + 1]];
    s2 += vals[t + 2] * x[cols[t + 2]];
    s3 += vals[t + 3] * x[cols[t + 3]];
  }
  for (; t < len; ++t) s0 += vals[t] * x[cols[t]];
  return (s0 + s1) + (s2 + s3);
}

/// Reassociated sum of vals[t] * x[cols[t]]: multiple accumulators / SIMD
/// gathers, runtime-dispatched.  Same sum as csr_row_dot up to rounding.
/// The short-row path is inline — rows under the SIMD threshold pay no
/// out-of-line call (gather setup never recoups itself there), keeping
/// reassociated mode close to pinned on short-row (engine-bound) matrices.
template <class Index, class Value>
[[nodiscard]] inline double csr_row_dot_reassoc(
    const Index* __restrict cols, const Value* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  if (len >= 16) return csr_row_dot_reassoc_long(cols, vals, len, x);
  return csr_row_dot_multiacc(cols, vals, len, x);
}

/// acc - (reassociated row/vector product).  Same value as csr_row_sub_dot
/// up to rounding; the subtraction of the reduced product from `acc` is the
/// single final rounding step.
template <class Index, class Value>
[[nodiscard]] inline double csr_row_sub_dot_reassoc(
    double acc, const Index* cols, const Value* vals, nnz_t len,
    const double* x) noexcept {
  return acc - csr_row_dot_reassoc(cols, vals, len, x);
}

/// Sparse rows x cols matrix in CSR format with sorted column indices,
/// parameterized on the stored index/value widths (see the header comment
/// for the three supported policies and their aliases).
///
/// Thread-safety: immutable after construction — every member below is
/// const and allocation-free, so one matrix may be shared by any number
/// of concurrent solver teams (the asynchronous solvers rely on this).
template <class Index, class Value>
class CsrMatrixT {
  static_assert(detail::kSupportedStorage<Index, Value>,
                "CsrMatrixT: supported storage policies are <int64,double>, "
                "<int32,double>, <int32,float>");

 public:
  using index_type = Index;
  using value_type = Value;
  /// This instantiation's policy tag.
  static constexpr StoragePolicy kStorage =
      detail::storage_policy_of<Index, Value>();

  // Empty matrix; installs the transpose-cache slot eagerly (see
  // transpose_shared).
  CsrMatrixT() : transpose_cache_(std::make_shared<TransposeCache>()) {}

  /// Takes ownership of pre-built CSR arrays.  Validates monotone row
  /// pointers, in-range sorted column indices, and array sizes; throws
  /// asyrgs::Error on malformed input.
  CsrMatrixT(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
             std::vector<Index> col_idx, std::vector<Value> values)
      : rows_(rows),
        cols_(cols),
        row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)),
        values_(std::move(values)),
        transpose_cache_(std::make_shared<TransposeCache>()) {
    require(rows_ > 0 && cols_ > 0, "CsrMatrix: dimensions must be positive");
    require(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
            "CsrMatrix: row_ptr must have rows+1 entries");
    require(row_ptr_.front() == 0, "CsrMatrix: row_ptr must start at 0");
    require(col_idx_.size() == values_.size(),
            "CsrMatrix: col_idx/values size mismatch");
    require(row_ptr_.back() == static_cast<nnz_t>(col_idx_.size()),
            "CsrMatrix: row_ptr end does not match nnz");
    for (index_t i = 0; i < rows_; ++i) {
      require(row_ptr_[i] <= row_ptr_[i + 1],
              "CsrMatrix: row_ptr must be non-decreasing");
      for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
        require(col_idx_[t] >= 0 && static_cast<index_t>(col_idx_[t]) < cols_,
                "CsrMatrix: column index out of range");
        if (t > row_ptr_[i])
          require(col_idx_[t - 1] < col_idx_[t],
                  "CsrMatrix: columns must be strictly increasing in each row");
      }
    }
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] nnz_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  /// Row i as spans over (column indices, values).
  [[nodiscard]] std::span<const Index> row_cols(index_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const Value> row_vals(index_t i) const noexcept {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] nnz_t row_nnz(index_t i) const noexcept {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  [[nodiscard]] const std::vector<nnz_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<Index>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<Value>& values() const noexcept {
    return values_;
  }

  /// A(i, j), zero when the entry is not stored (binary search over the
  /// sorted row).  Returned as double for every policy.
  [[nodiscard]] double at(index_t i, index_t j) const {
    require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
            "CsrMatrix::at: index out of range");
    const auto cols = row_cols(i);
    const auto it = std::lower_bound(cols.begin(), cols.end(),
                                     static_cast<Index>(j));
    if (it == cols.end() || *it != static_cast<Index>(j)) return 0.0;
    return static_cast<double>(values_[row_ptr_[i] + (it - cols.begin())]);
  }

  /// Dot product of row i with dense vector x (serial building block of both
  /// SpMV and the Gauss-Seidel update gamma = b_r - A_r x).
  [[nodiscard]] double row_dot(index_t i, const double* x) const noexcept {
    const nnz_t lo = row_ptr_[i];
    return csr_row_dot(col_idx_.data() + lo, values_.data() + lo,
                       row_ptr_[i + 1] - lo, x);
  }

  /// y = A x (serial reference implementation; see sparse/spmv.hpp for the
  /// parallel kernels).
  void multiply(const double* x, double* y) const {
    for (index_t i = 0; i < rows_; ++i) y[i] = row_dot(i, x);
  }

  /// y = A^T x (serial; y must have cols() entries).
  void multiply_transpose(const double* x, double* y) const {
    std::fill(y, y + cols_, 0.0);
    for (index_t i = 0; i < rows_; ++i) {
      const double xi = x[i];
      if (xi == 0.0) continue;
      for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t)
        y[col_idx_[t]] += values_[t] * xi;
    }
  }

  /// Main diagonal as a dense double vector (zeros for missing entries;
  /// requires a square matrix).
  [[nodiscard]] std::vector<double> diagonal() const {
    require(square(), "CsrMatrix::diagonal: matrix must be square");
    std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
    for (index_t i = 0; i < rows_; ++i) d[i] = at(i, i);
    return d;
  }

  /// Explicit transpose (used to give the least-squares solver column access
  /// to A via CSR rows of A^T).  For narrow-index policies the transpose
  /// stores *row* indices as Index, so rows() must fit the index width too.
  [[nodiscard]] CsrMatrixT transpose() const {
    require(index_width_fits<Index>(rows_),
            "CsrMatrix::transpose: row count exceeds the index width");
    std::vector<nnz_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
    for (Index c : col_idx_) t_row_ptr[static_cast<index_t>(c) + 1]++;
    for (index_t j = 0; j < cols_; ++j) t_row_ptr[j + 1] += t_row_ptr[j];

    std::vector<Index> t_col(col_idx_.size());
    std::vector<Value> t_val(values_.size());
    std::vector<nnz_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
    // Walking rows in order writes each transposed row's entries in
    // increasing original-row order, so column indices stay sorted.
    for (index_t i = 0; i < rows_; ++i) {
      for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
        const nnz_t slot = cursor[col_idx_[t]]++;
        t_col[slot] = static_cast<Index>(i);
        t_val[slot] = values_[t];
      }
    }
    return CsrMatrixT(cols_, rows_, std::move(t_row_ptr), std::move(t_col),
                      std::move(t_val));
  }

  /// The transpose, built at most once per matrix and cached (the matrix is
  /// immutable, so the cached value can never go stale).  Thread-safe:
  /// concurrent first calls build exactly one instance; later calls are a
  /// shared_ptr copy.  Copies of the matrix share the cache.  This is the
  /// amortization path behind the prepared-solver handles and the
  /// `async_lsq_solve` convenience overload — repeated solves against one
  /// matrix pay the O(nnz) transpose a single time.  The cached transpose
  /// stays resident for the matrix's lifetime (~nnz extra memory); callers
  /// that need A^T exactly once and care about footprint should call
  /// transpose() instead.  `built_now` (optional) is set to whether THIS
  /// call constructed the transpose — race-free, unlike checking
  /// transpose_cached() before and after.
  [[nodiscard]] std::shared_ptr<const CsrMatrixT> transpose_shared(
      bool* built_now = nullptr) const {
    if (!transpose_cache_) {  // moved-from only; see constructor
      const std::scoped_lock lock(detail::transpose_slot_mutex());
      if (!transpose_cache_)
        transpose_cache_ = std::make_shared<TransposeCache>();
    }
    TransposeCache& cache = *transpose_cache_;
    const std::scoped_lock lock(cache.mutex);
    const bool building = cache.value == nullptr;
    if (building) cache.value = std::make_shared<const CsrMatrixT>(transpose());
    if (built_now != nullptr) *built_now = building;
    return cache.value;
  }

  /// True when transpose_shared() has already built (and cached) the
  /// transpose.  Thread-safe; exposed so tests can assert single
  /// construction.
  [[nodiscard]] bool transpose_cached() const {
    const std::shared_ptr<TransposeCache> slot = transpose_cache_;
    if (!slot) return false;
    const std::scoped_lock lock(slot->mutex);
    return slot->value != nullptr;
  }

  /// Deep equality of dimensions, structure, and values.
  [[nodiscard]] bool equals(const CsrMatrixT& other, double tol = 0.0) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    if (row_ptr_ != other.row_ptr_ || col_idx_ != other.col_idx_) return false;
    for (std::size_t t = 0; t < values_.size(); ++t)
      if (std::abs(static_cast<double>(values_[t]) -
                   static_cast<double>(other.values_[t])) > tol)
        return false;
    return true;
  }

 private:
  /// One-shot cache slot for the transpose.  Heap-allocated and shared
  /// between copies of the matrix (copies have identical values, so sharing
  /// is sound).  The per-slot mutex guards `value` so concurrent first
  /// builds construct exactly one transpose and concurrent readers never
  /// race the writer.
  struct TransposeCache {
    std::mutex mutex;
    std::shared_ptr<const CsrMatrixT> value;
  };

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<nnz_t> row_ptr_;  // size rows_ + 1
  std::vector<Index> col_idx_;  // size nnz
  std::vector<Value> values_;   // size nnz
  /// Installed eagerly by every constructor (so the pointer itself is
  /// immutable after construction — copies share the slot, and concurrent
  /// copy/transpose_shared cannot race on it; only moved-from matrices are
  /// left with a null slot, re-installed lazily).  Mutable because caching
  /// the transpose is logically const.
  mutable std::shared_ptr<TransposeCache> transpose_cache_;
};

/// Full-width storage: the historical layout and the source-compatible
/// default everywhere a bare `CsrMatrix` is named.
using CsrMatrix = CsrMatrixT<std::int64_t, double>;
/// Compact indices, full-precision values.  Pinned-scan solves on this
/// policy are bit-identical to CsrMatrix (same doubles, same association).
using CsrMatrix32 = CsrMatrixT<std::int32_t, double>;
/// Compact indices and float values; every kernel still accumulates in
/// double.  Opt-in accuracy trade — see docs/TUNING.md.
using CsrMatrixMixed = CsrMatrixT<std::int32_t, float>;

/// Rebuilds `a` under another storage policy.  Values are converted with a
/// single rounding (double -> float for the mixed target); indices must fit
/// the target width — throws asyrgs::Error when cols() exceeds it (the
/// overflow guard the prepared handles rely on for their automatic
/// narrowing).
template <class ToIndex, class ToValue, class FromIndex, class FromValue>
[[nodiscard]] CsrMatrixT<ToIndex, ToValue> convert_storage(
    const CsrMatrixT<FromIndex, FromValue>& a) {
  require(index_width_fits<ToIndex>(a.cols()),
          "convert_storage: column count exceeds the target index width");
  std::vector<ToIndex> col_idx(a.col_idx().size());
  for (std::size_t t = 0; t < col_idx.size(); ++t)
    col_idx[t] = static_cast<ToIndex>(a.col_idx()[t]);
  std::vector<ToValue> values(a.values().size());
  for (std::size_t t = 0; t < values.size(); ++t)
    values[t] = static_cast<ToValue>(a.values()[t]);
  return CsrMatrixT<ToIndex, ToValue>(a.rows(), a.cols(), a.row_ptr(),
                                      std::move(col_idx), std::move(values));
}

/// Result of removing structurally empty columns.
template <class Index, class Value>
struct ColumnCompressionT {
  CsrMatrixT<Index, Value> matrix;   ///< same rows, empty columns removed
  std::vector<index_t> kept_columns; ///< new column c was old kept_columns[c]
};

using ColumnCompression = ColumnCompressionT<std::int64_t, double>;

/// Removes columns with no stored entries.  The paper preprocesses its data
/// matrix the same way ("after removing rows and columns that were
/// identically zero"); required by the least-squares solvers, which assume
/// full column rank.
template <class Index, class Value>
[[nodiscard]] ColumnCompressionT<Index, Value> drop_empty_columns(
    const CsrMatrixT<Index, Value>& a) {
  std::vector<char> used(static_cast<std::size_t>(a.cols()), 0);
  for (Index c : a.col_idx()) used[static_cast<std::size_t>(c)] = 1;

  ColumnCompressionT<Index, Value> out;
  std::vector<Index> new_index(static_cast<std::size_t>(a.cols()),
                               static_cast<Index>(-1));
  for (index_t c = 0; c < a.cols(); ++c) {
    if (used[static_cast<std::size_t>(c)]) {
      new_index[static_cast<std::size_t>(c)] =
          static_cast<Index>(out.kept_columns.size());
      out.kept_columns.push_back(c);
    }
  }
  require(!out.kept_columns.empty(), "drop_empty_columns: matrix is all zero");

  std::vector<Index> col_idx(a.col_idx());
  for (Index& c : col_idx) c = new_index[static_cast<std::size_t>(c)];
  out.matrix = CsrMatrixT<Index, Value>(
      a.rows(), static_cast<index_t>(out.kept_columns.size()), a.row_ptr(),
      std::move(col_idx), std::vector<Value>(a.values()));
  return out;
}

}  // namespace asyrgs
