#include "asyrgs/support/timer.hpp"

// Header-only today; this translation unit pins the header into the build so
// ODR/ABI issues surface at library-build time rather than in user builds.
