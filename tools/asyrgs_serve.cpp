// asyrgs_serve — sharded serving driver over the SolverService front-end.
//
//   asyrgs_serve [--matrix A.mtx] [--shards 2] [--requests 16] [--clients 2]
//                [--mix spd|lsq|mixed] [--sweeps 8] [--tol 0]
//                [--threads-per-shard 0] [--seed 1]
//                [--max-queue 0] [--deadline 0] [--trace FILE]
//                [--arrival-rate 0] [--duration 2]
//
// Loads an SPD Matrix Market operator (or generates a 2-D Laplacian when
// --matrix is omitted — self-contained smoke mode), builds a SolverService
// with the requested shard count, and drives it in one of two modes:
//
//   Closed loop (default): --clients threads submit --requests solves as
//   fast as the service absorbs them, then everything drains.  Measures
//   capacity.  Exit code 0 when every request completed successfully.
//
//   Open loop (--arrival-rate > 0): requests arrive on a fixed wall-clock
//   schedule (one every 1/rate seconds, submitted non-blocking) for
//   --duration seconds, regardless of completions — the arrival process a
//   real service faces.  Combined with --max-queue and --deadline this
//   exercises the admission-control path: past saturation the service must
//   shed load (tickets resolve to SolveStatus::kRejected), not collapse.
//   Reports offered rate, reject/shed rates, and latency percentiles from
//   the service's histograms.  Rejects are the *correct* overload behavior,
//   so they do not fail the run; only solve errors do.
//
// --trace FILE attaches the JSON trace sink (serve/metrics.hpp): one JSON
// object per request with enqueue/start/done timestamps, shard, priority,
// and status — feed it to jq or a notebook to see queueing in action.
//
// This is the CLI face of the serving story: one analyzed matrix, many
// concurrent solves, scaled across pool shards, shedding what it cannot
// serve in time (docs/API.md "SolverService").
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

namespace {

/// Prints the aggregate serving report shared by both modes.
void print_stats(const ServiceStats& stats, double seconds) {
  std::cerr << "served " << (stats.completed - stats.rejected -
                             stats.shed_deadline)
            << " requests in " << seconds << " s ("
            << static_cast<double>(stats.completed) / seconds
            << " completions/s aggregate)\n";
  if (stats.rejected > 0 || stats.shed_deadline > 0)
    std::cerr << "shed load: " << stats.rejected << " rejected at admission, "
              << stats.shed_deadline << " deadline-shed (reject rate "
              << static_cast<double>(stats.rejected + stats.shed_deadline) /
                     static_cast<double>(stats.submitted)
              << ")\n";
  if (stats.latency.count() > 0)
    std::cerr << "latency (enqueue->done): p50=" << stats.latency.p50()
              << " s p95=" << stats.latency.p95()
              << " s p99=" << stats.latency.p99()
              << " s max=" << stats.latency.max_seconds()
              << " s over " << stats.latency.count() << " executed\n";
  std::cerr << "queue high-water: " << stats.queue_high_water << "\n";
  for (std::size_t s = 0; s < stats.shards.size(); ++s)
    std::cerr << "  shard " << s << ": " << stats.shards[s].served
              << " served (" << stats.shards[s].workers << " workers, p99 "
              << stats.shards[s].latency.p99() << " s)\n";
  std::cerr << "analysis: " << stats.validation_passes
            << " validation passes, " << stats.transpose_builds
            << " transpose builds (whole service)\n";
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("asyrgs_serve", "serve a stream of solves across pool shards");
  auto matrix_path = cli.add_string(
      "matrix", "", "input matrix (.mtx); default: generated 24x24 Laplacian");
  auto shards = cli.add_int("shards", 2, "pool shards (concurrent lanes)");
  auto requests = cli.add_int("requests", 16,
                              "total solve requests (closed loop; open loop "
                              "is bounded by --duration instead)");
  auto clients = cli.add_int("clients", 2, "client threads submitting");
  auto mix = cli.add_string("mix", "mixed",
                            "request stream: spd | lsq | mixed");
  auto sweeps = cli.add_int("sweeps", 8, "sweep budget per request");
  auto tol = cli.add_double("tol", 0.0,
                            "relative residual target (0 = fixed budget; "
                            ">0 switches to barrier-per-sweep early stop)");
  auto lsq_tol = cli.add_double(
      "lsq-tol", -1.0,
      "normal-equations residual target for the lsq share of the stream "
      "(default: --tol; least squares conditions as the operator squared, "
      "so a looser target is usually appropriate)");
  auto threads_per_shard =
      cli.add_int("threads-per-shard", 0, "pool size per shard (0 = auto)");
  auto seed = cli.add_int("seed", 1, "base seed for request rhs/directions");
  auto max_queue = cli.add_int(
      "max-queue", 0, "admission bound: queued requests beyond this are "
                      "rejected (0 = unbounded)");
  auto deadline = cli.add_double(
      "deadline", 0.0, "per-request deadline in seconds; requests still "
                       "queued past it are shed (0 = none)");
  auto trace_path = cli.add_string(
      "trace", "", "write one JSON trace line per request to this file");
  auto storage = cli.add_string(
      "storage", "auto",
      "CSR storage policy for the prepared handles: auto | int64 | int32 | "
      "mixed");
  auto arrival_rate = cli.add_double(
      "arrival-rate", 0.0, "open-loop arrivals per second (0 = closed loop)");
  auto duration = cli.add_double(
      "duration", 2.0, "open-loop run length in seconds");

  try {
    cli.parse(argc, argv);
    require(*shards >= 1, "--shards must be >= 1");
    require(*requests >= 1, "--requests must be >= 1");
    require(*clients >= 1, "--clients must be >= 1");
    require(*mix == "spd" || *mix == "lsq" || *mix == "mixed",
            "unknown --mix (want spd|lsq|mixed)");
    require(*arrival_rate >= 0.0, "--arrival-rate must be >= 0");
    require(*duration > 0.0, "--duration must be > 0");

    const CsrMatrix a = matrix_path.value().empty()
                            ? laplacian_2d(24, 24)
                            : read_matrix_market_file(*matrix_path);
    if (matrix_path.value().empty())
      std::cerr << "matrix: generated laplacian2d 24x24\n";
    std::cerr << "matrix: " << a.rows() << " x " << a.cols() << ", " << a.nnz()
              << " nonzeros\n";
    const bool want_spd = *mix != "lsq";
    const bool want_lsq = *mix != "spd";
    require(!want_spd || a.square(),
            "--mix spd/mixed requires a square (SPD) matrix");

    std::ofstream trace_file;
    ServiceOptions options;
    options.shards = static_cast<int>(*shards);
    options.workers_per_shard = static_cast<int>(*threads_per_shard);
    options.prepare_spd = want_spd;
    options.prepare_lsq = want_lsq;
    options.max_queue = static_cast<int>(*max_queue);
    if (*storage == "auto")
      options.storage = StorageMode::kAuto;
    else if (*storage == "int64")
      options.storage = StorageMode::kInt64Double;
    else if (*storage == "int32")
      options.storage = StorageMode::kInt32Double;
    else if (*storage == "mixed")
      options.storage = StorageMode::kInt32Mixed;
    else
      throw Error("unknown --storage (want auto|int64|int32|mixed)");
    if (!trace_path.value().empty()) {
      trace_file.open(*trace_path);
      require(trace_file.good(), "--trace: cannot open output file");
      options.trace = std::make_shared<JsonTraceSink>(trace_file);
    }
    WallTimer prepare_timer;
    SolverService service(a, options);
    std::cerr << "prepared " << service.shards() << "-shard service ("
              << service.workers_per_shard() << " threads/shard) in "
              << prepare_timer.seconds() << " s\n";

    SolveControls controls;
    controls.sweeps = static_cast<int>(*sweeps);
    controls.rel_tol = *tol;
    if (*tol > 0.0 || *lsq_tol > 0.0)
      controls.sync = SyncMode::kBarrierPerSweep;  // tolerance needs sync
    RequestOptions request_options;
    request_options.deadline_seconds = *deadline;

    const auto make_request = [&](int r, SolveControls base) {
      SolveControls req = base;
      req.seed =
          static_cast<std::uint64_t>(*seed) + static_cast<std::uint64_t>(r);
      const bool lsq = *mix == "lsq" || (*mix == "mixed" && r % 2 == 1);
      if (lsq) {
        req.step_size = 0.95;
        if (*lsq_tol >= 0.0) req.rel_tol = *lsq_tol;
      }
      const std::vector<double> b = random_vector(a.rows(), req.seed + 1000003);
      return lsq ? service.submit_least_squares(b, req, request_options)
                 : service.submit(b, req, request_options);
    };

    std::vector<SolveTicket> tickets;
    WallTimer serve_timer;
    if (*arrival_rate > 0.0) {
      // Open loop: arrivals on a fixed schedule, submission never blocks
      // (a full queue rejects immediately), completions take care of
      // themselves.  A single pacing thread suffices: submit() is cheap,
      // and at rates where submit time matters the queue is saturated
      // anyway.
      const auto start = std::chrono::steady_clock::now();
      const double period = 1.0 / *arrival_rate;
      for (int r = 0;; ++r) {
        const double target = static_cast<double>(r) * period;
        if (target >= *duration) break;
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(target)));
        tickets.push_back(make_request(r, controls));
      }
      std::cerr << "offered " << tickets.size() << " requests over "
                << *duration << " s (target rate " << *arrival_rate
                << "/s)\n";
    } else {
      // Closed loop: client threads push the fixed request count as fast as
      // the service absorbs it.
      const int n_requests = static_cast<int>(*requests);
      const int n_clients = static_cast<int>(*clients);
      tickets.resize(static_cast<std::size_t>(n_requests));
      std::mutex tickets_mutex;
      std::vector<std::thread> client_threads;
      for (int c = 0; c < n_clients; ++c) {
        client_threads.emplace_back([&, c] {
          // Client c submits requests c, c+n_clients, ... — a deterministic
          // partition so rerunning with more clients serves the same
          // stream.
          for (int r = c; r < n_requests; r += n_clients) {
            SolveTicket t = make_request(r, controls);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            tickets[static_cast<std::size_t>(r)] = t;
          }
        });
      }
      for (std::thread& t : client_threads) t.join();
    }
    service.drain();
    const double seconds = serve_timer.seconds();

    int failures = 0;
    long long rejected_tickets = 0;
    for (SolveTicket& t : tickets) {
      try {
        const SolveOutcome& out = t.wait();
        if (out.status == SolveStatus::kRejected)
          ++rejected_tickets;  // correct overload behavior, not a failure
        else if (out.status == SolveStatus::kToleranceNotReached)
          ++failures;
      } catch (const std::exception& e) {
        std::cerr << "request failed: " << e.what() << "\n";
        ++failures;
      }
    }

    const ServiceStats stats = service.stats();
    print_stats(stats, seconds);
    if (failures > 0) {
      std::cerr << failures << " request(s) failed\n";
      return 2;
    }
    std::cerr << "all requests completed ("
              << (static_cast<long long>(tickets.size()) - rejected_tickets)
              << " served, " << rejected_tickets << " shed)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
