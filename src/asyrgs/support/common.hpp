// Common definitions shared by every layer of the library.
//
// The library solves Ax = b for sparse symmetric positive definite A (and
// overdetermined least-squares problems) with randomized synchronous and
// asynchronous iterations.  Everything lives in namespace `asyrgs`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace asyrgs {

/// Row/column index of a matrix or entry index of a vector.  Matrices in the
/// reference scenario are "sparse and very large"; 64-bit indices keep the
/// library correct beyond 2^31 entries while `nnz_t` separately counts
/// nonzeros (which overflow 32 bits much earlier).
using index_t = std::int64_t;

/// Count of structural nonzeros / offsets into CSR value arrays.
using nnz_t = std::int64_t;

/// Exception type for precondition violations and malformed input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws asyrgs::Error with `msg` when `cond` is false.  Used for argument
/// validation on public entry points; internal consistency checks use
/// ASYRGS_ASSERT which compiles out in release builds.
inline void require(bool cond, const char* msg) {
  if (!cond) throw Error(msg);
}

#ifndef NDEBUG
#define ASYRGS_ASSERT(cond)                                              \
  do {                                                                   \
    if (!(cond))                                                         \
      throw ::asyrgs::Error(std::string("assertion failed: ") + #cond + \
                            " at " + __FILE__ + ":" +                    \
                            std::to_string(__LINE__));                   \
  } while (0)
#else
#define ASYRGS_ASSERT(cond) \
  do {                      \
  } while (0)
#endif

/// Destructive cache-line size used to pad shared mutable state.
inline constexpr std::size_t kCacheLineBytes = 64;

}  // namespace asyrgs
