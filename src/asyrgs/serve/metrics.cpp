#include "asyrgs/serve/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace asyrgs {

namespace {

// r = 2^(1/3): three bins per octave.  log2(x)/log2(r) = 3 * log2(x).
int bin_index(double seconds) noexcept {
  if (!(seconds > LatencyHistogram::kMinSeconds)) return 0;
  const double octaves = std::log2(seconds / LatencyHistogram::kMinSeconds);
  const int i = static_cast<int>(octaves * 3.0);
  return std::min(i, LatencyHistogram::kBins - 1);
}

}  // namespace

void LatencyHistogram::record(double seconds) noexcept {
  if (seconds < 0.0) seconds = 0.0;
  ++bins_[static_cast<std::size_t>(bin_index(seconds))];
  ++count_;
  sum_ += seconds;
  if (seconds > max_) max_ = seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (int i = 0; i < kBins; ++i)
    bins_[static_cast<std::size_t>(i)] +=
        other.bins_[static_cast<std::size_t>(i)];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.max_ > max_) max_ = other.max_;
}

double LatencyHistogram::bin_lower(int i) noexcept {
  return kMinSeconds * std::exp2(static_cast<double>(i) / 3.0);
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based, ceil(q * n) clamped into [1, n].
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBins; ++i) {
    seen += bins_[static_cast<std::size_t>(i)];
    if (seen >= rank) {
      // Geometric midpoint of [lower, lower * r): lower * r^(1/2).
      return bin_lower(i) * std::exp2(1.0 / 6.0);
    }
  }
  return bin_lower(kBins - 1);
}

std::string format_json_trace(const TraceEvent& event) {
  // Timestamps in microseconds as integers: fixed-width, locale-independent,
  // and precise enough for queue/solve latencies (the histogram floor is
  // 1us too).  `kind` and `status` are engine-chosen tokens, never
  // user-controlled strings, so no escaping is required.
  const auto us = [](double seconds) { return std::llround(seconds * 1e6); };
  std::ostringstream line;
  line << "{\"type\":\"request\",\"id\":" << event.request_id << ",\"kind\":\""
       << event.kind << "\",\"status\":\"" << event.status
       << "\",\"storage\":\"" << event.storage
       << "\",\"sampling\":\"" << event.sampling
       << "\",\"partitions\":" << event.partitions
       << ",\"shard\":" << event.shard << ",\"priority\":" << event.priority
       << ",\"warm_start\":" << (event.warm_start ? "true" : "false")
       << ",\"enqueue_us\":" << us(event.enqueue_seconds)
       << ",\"start_us\":" << (event.start_seconds < 0.0
                                   ? -1
                                   : us(event.start_seconds))
       << ",\"done_us\":" << us(event.done_seconds) << "}";
  return line.str();
}

void JsonTraceSink::log(const TraceEvent& event) {
  const std::string line = format_json_trace(event);
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line << '\n';
  out_.flush();
}

}  // namespace asyrgs
