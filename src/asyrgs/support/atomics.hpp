// Atomic operations on shared double-precision iterate entries.
//
// Assumption A-1 of the paper (Atomic Write) requires the single-coordinate
// update "(x)_r <- (x)_r + beta*gamma" to be atomic.  The paper notes that
// such updates "have hardware support on many modern processors (e.g.
// compare-and-exchange)".  We implement exactly that: a CAS loop over
// std::atomic_ref<double>.
//
// The experimental section also evaluates a *non-atomic* variant (Figure 2,
// center/right) to test whether atomicity matters in practice.  To keep that
// variant free of undefined behaviour while still permitting lost updates, it
// performs a relaxed atomic load, a plain add, and a relaxed atomic store —
// i.e. a racy read-modify-write whose interleaving semantics match an
// ordinary non-atomic "+=" on hardware, without the UB.
#pragma once

#include <atomic>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Atomically reads x[i]-style shared entries.  Relaxed ordering is
/// sufficient: the convergence theory only needs each read to observe *some*
/// atomic write (Assumptions A-1/A-3), not any particular ordering.
[[nodiscard]] inline double atomic_load_relaxed(const double& slot) noexcept {
  return std::atomic_ref<const double>(slot).load(std::memory_order_relaxed);
}

/// Atomically writes a shared entry (relaxed ordering).
inline void atomic_store_relaxed(double& slot, double value) noexcept {
  std::atomic_ref<double>(slot).store(value, std::memory_order_relaxed);
}

/// Atomic fetch-add via compare-and-exchange; returns the value *before* the
/// addition.  This is the paper's Assumption A-1 update primitive.
inline double atomic_add_relaxed(double& slot, double delta) noexcept {
  std::atomic_ref<double> ref(slot);
  double observed = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(observed, observed + delta,
                                    std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
    // `observed` reloaded by compare_exchange_weak on failure.
  }
  return observed;
}

/// The deliberately racy update used by the "non atomic" variant of AsyRGS
/// (Figure 2): load and store are individually atomic, but the
/// read-modify-write is not, so concurrent updates to the same entry may be
/// lost — the behaviour the paper's non-atomic experiment probes.
inline void racy_add(double& slot, double delta) noexcept {
  atomic_store_relaxed(slot, atomic_load_relaxed(slot) + delta);
}

}  // namespace asyrgs
