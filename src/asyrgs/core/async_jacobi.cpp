#include "asyrgs/core/async_jacobi.hpp"

#include <algorithm>
#include <thread>
#include <vector>

#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

AsyncRgsReport async_jacobi_solve(ThreadPool& pool, const CsrMatrix& a,
                                  const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const AsyncJacobiOptions& options) {
  require(a.square(), "async_jacobi: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "async_jacobi: shape mismatch");
  require(options.sweeps >= 0, "async_jacobi: sweeps must be non-negative");
  require(options.damping > 0.0 && options.damping <= 1.0,
          "async_jacobi: damping must be in (0, 1]");
  const index_t n = a.rows();

  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) {
    require(d != 0.0, "async_jacobi: zero diagonal entry");
    d = 1.0 / d;
  }

  // Position of the (structurally present, nonzero) diagonal entry within
  // each sorted row, precomputed so the relaxation kernel can skip it with
  // two tight loops instead of a per-nonzero comparison.
  std::vector<nnz_t> diag_pos(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    const auto cols = a.row_cols(i);
    const auto* it = std::lower_bound(cols.data(), cols.data() + cols.size(), i);
    ASYRGS_ASSERT(it != cols.data() + cols.size() && *it == i);
    diag_pos[static_cast<std::size_t>(i)] =
        a.row_ptr()[i] + static_cast<nnz_t>(it - cols.data());
  }

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;
  const double omega = options.damping;

  WallTimer timer;
  pool.run_team(workers, [&](int id, int team) {
    // Worker id relaxes its owned rows over and over; neighbours' values
    // stream in asynchronously.
    const index_t chunk = (n + team - 1) / team;
    const index_t lo = std::min<index_t>(static_cast<index_t>(id) * chunk, n);
    const index_t hi = std::min<index_t>(lo + chunk, n);
    const nnz_t* __restrict rp = a.row_ptr().data();
    const index_t* __restrict ci = a.col_idx().data();
    const double* __restrict av = a.values().data();
    const double* __restrict bp = b.data();
    const double* __restrict inv = inv_diag.data();
    const nnz_t* __restrict dp = diag_pos.data();
    double* xp = x.data();
    auto relax_row = [&](index_t i) {
      // Same subtraction sequence as the branchy scan (off-diagonal terms in
      // column order); only the per-nonzero diagonal test is gone.  x_i is
      // written solely by this row's owner, so reading it out of scan order
      // observes the identical value.
      double acc = bp[i];
      const nnz_t row_end = rp[i + 1];
      const nnz_t diag = dp[i];
      for (nnz_t t = rp[i]; t < diag; ++t)
        acc -= av[t] * atomic_load_relaxed(xp[ci[t]]);
      for (nnz_t t = diag + 1; t < row_end; ++t)
        acc -= av[t] * atomic_load_relaxed(xp[ci[t]]);
      const double diag_x = atomic_load_relaxed(xp[i]);
      const double target = acc * inv[i];
      atomic_store_relaxed(xp[i], (1.0 - omega) * diag_x + omega * target);
    };
    for (int sweep = 0; sweep < options.sweeps; ++sweep) {
      if (options.ownership == JacobiOwnership::kContiguous) {
        for (index_t i = lo; i < hi; ++i) relax_row(i);
      } else {
        for (index_t i = id; i < n; i += team) relax_row(i);
      }
      // On oversubscribed hosts (threads > cores) a free-running worker can
      // otherwise burn its entire sweep budget in one scheduling quantum
      // against frozen neighbour values — unbounded effective delay, exactly
      // what breaks chaotic relaxation. One yield per sweep keeps the
      // interleaving near round-robin and the staleness near one sweep.
      if (team > 1) std::this_thread::yield();
    }
  });
  report.sweeps_done = options.sweeps;
  report.updates = static_cast<long long>(options.sweeps) *
                   static_cast<long long>(n);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
