// Notay's Flexible Conjugate Gradients.
//
// A variable preconditioner (such as a few sweeps of randomized or
// asynchronous Gauss-Seidel) breaks the short recurrence of classic CG.
// Notay's flexible CG [16] restores robustness by explicitly
// A-orthogonalizing each new search direction against previous ones:
//
//   p_i = z_i - sum_j ((z_i, A p_j) / (p_j, A p_j)) p_j .
//
// Following the paper's implementation we use no truncation and no restarts
// by default (every stored direction participates), with an optional
// truncation window for memory-constrained use.  Convergence is declared on
// the true relative residual, computed every iteration as in Section 9.
#pragma once

#include "asyrgs/iter/precond.hpp"
#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Flexible-CG-specific options.
struct FcgOptions {
  SolveOptions base;
  /// Number of previous directions to orthogonalize against; <= 0 means all
  /// (the paper's configuration).
  int truncation = 0;
};

/// Outcome of a flexible CG solve, including the mat-ops accounting used by
/// the paper's Table 1: total_matrix_ops = outer iterations x (inner sweeps
/// + 1) when preconditioned by sweeps-based methods.
struct FcgReport {
  SolveReport base;
  int preconditioner_applications = 0;
};

/// Runs flexible CG on SPD Ax = b starting from `x` (in place).
FcgReport fcg_solve(ThreadPool& pool, const CsrMatrix& a,
                    const std::vector<double>& b, std::vector<double>& x,
                    Preconditioner& precond, const FcgOptions& options = {},
                    int workers = 0);

}  // namespace asyrgs
