#include "asyrgs/serve/service.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

namespace detail {

/// One submitted request: inputs, the slot the shard writes results into,
/// and a completion latch.  Shared between the client's SolveTicket copies
/// and the service queue; the dispatcher writes results *before* setting
/// `completed` under the mutex, so any reader that observed completion also
/// observes the results (no further synchronization needed on the payload).
struct TicketState {
  enum class Kind { kSpd, kSpdBlock, kLsq };

  Kind kind = Kind::kSpd;
  SolveControls controls;
  std::vector<double> b;
  MultiVector b_block;

  std::vector<double> x;
  MultiVector x_block;
  SolveOutcome outcome;
  std::exception_ptr error;
  int shard = -1;

  std::mutex mutex;
  std::condition_variable cv;
  bool completed = false;

  /// Blocks until the dispatcher fulfilled this ticket; rethrows a failed
  /// solve's exception (idempotently — every later call rethrows too).
  void wait_done() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return completed; });
    }
    if (error) std::rethrow_exception(error);
  }
};

/// One serving lane: a private ThreadPool plus prepared handle clones.
/// `served` and the cached handle-stats snapshots are guarded by the
/// service mutex (the dispatcher refreshes them after each request while
/// its handles are idle, so stats() never has to take a handle mutex that a
/// running solve might hold).
struct ServiceShard {
  std::unique_ptr<ThreadPool> pool;
  std::optional<SpdProblem> spd;
  std::optional<LsqProblem> lsq;
  std::thread server;
  long long served = 0;
  ProblemStats spd_stats;
  ProblemStats lsq_stats;
};

struct ServiceImpl {
  ServiceImpl(const CsrMatrix& a, const ServiceOptions& options)
      : a(a), options(options) {}

  const CsrMatrix& a;
  ServiceOptions options;
  int workers = 0;

  // ServiceShard is immovable (prepared handles pin their pool by
  // reference), so the deque's stable addresses matter.
  std::deque<ServiceShard> shards;

  mutable std::mutex mutex;
  std::condition_variable work_cv;   // dispatchers: queue non-empty or stop
  std::condition_variable drain_cv;  // drain()/destructor: all work done
  std::deque<std::shared_ptr<TicketState>> queue;
  long long submitted = 0;
  long long completed = 0;
  int active = 0;
  bool stop = false;
};

namespace {

/// Runs one request on `shard`'s prepared handles.  Never throws: failures
/// land in the ticket's error slot and surface at wait().
void execute_request(const CsrMatrix& a, ServiceShard& shard, int shard_index,
                     TicketState& t) {
  try {
    switch (t.kind) {
      case TicketState::Kind::kSpd:
        t.x.assign(static_cast<std::size_t>(a.rows()), 0.0);
        t.outcome = shard.spd->solve(t.b, t.x, t.controls);
        break;
      case TicketState::Kind::kSpdBlock:
        t.x_block = MultiVector(a.rows(), t.b_block.cols());
        t.outcome = shard.spd->solve(t.b_block, t.x_block, t.controls);
        break;
      case TicketState::Kind::kLsq:
        t.x.assign(static_cast<std::size_t>(a.cols()), 0.0);
        t.outcome = shard.lsq->solve(t.b, t.x, t.controls);
        break;
    }
  } catch (...) {
    t.error = std::current_exception();
  }
  t.shard = shard_index;
}

/// Dispatcher loop of one shard: pull the oldest queued request whenever
/// this shard is free.  A single shared FIFO + free-shard pull is the
/// least-loaded routing policy — an idle shard picks work up immediately,
/// and requests queue only when every shard is busy.
void serve_loop(ServiceImpl& impl, int shard_index) {
  ServiceShard& shard = impl.shards[static_cast<std::size_t>(shard_index)];
  for (;;) {
    std::shared_ptr<TicketState> request;
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      impl.work_cv.wait(lock,
                        [&] { return impl.stop || !impl.queue.empty(); });
      if (impl.queue.empty()) return;  // stop requested and fully drained
      request = std::move(impl.queue.front());
      impl.queue.pop_front();
      ++impl.active;
    }

    execute_request(impl.a, shard, shard_index, *request);

    // Fulfill the ticket first (results were written above, so the
    // completed flag is the release point)...
    {
      std::lock_guard<std::mutex> lock(request->mutex);
      request->completed = true;
    }
    request->cv.notify_all();

    // ...then update service counters and the cached handle stats (the
    // shard's handles are idle right now, so their stats() cannot block on
    // a solve in flight).  drain() waiters watch `completed`, so notify on
    // every completion — a drainer must not wait for *other* clients'
    // later submissions to quiesce.
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      --impl.active;
      ++impl.completed;
      ++shard.served;
      if (shard.spd) shard.spd_stats = shard.spd->stats();
      if (shard.lsq) shard.lsq_stats = shard.lsq->stats();
    }
    impl.drain_cv.notify_all();
  }
}

}  // namespace

}  // namespace detail

// --- SolveTicket -------------------------------------------------------------

bool SolveTicket::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->completed;
}

const SolveOutcome& SolveTicket::wait() {
  require(state_ != nullptr, "SolveTicket::wait: invalid (default) ticket");
  state_->wait_done();
  return state_->outcome;
}

const std::vector<double>& SolveTicket::solution() {
  require(state_ != nullptr, "SolveTicket::solution: invalid ticket");
  state_->wait_done();
  require(state_->kind != detail::TicketState::Kind::kSpdBlock,
          "SolveTicket::solution: block request — use block_solution()");
  return state_->x;
}

const MultiVector& SolveTicket::block_solution() {
  require(state_ != nullptr, "SolveTicket::block_solution: invalid ticket");
  state_->wait_done();
  require(state_->kind == detail::TicketState::Kind::kSpdBlock,
          "SolveTicket::block_solution: not a block request");
  return state_->x_block;
}

int SolveTicket::shard() {
  require(state_ != nullptr, "SolveTicket::shard: invalid ticket");
  state_->wait_done();
  return state_->shard;
}

// --- SolverService -----------------------------------------------------------

SolverService::SolverService(const CsrMatrix& a, ServiceOptions options) {
  require(options.shards >= 1, "SolverService: shards must be >= 1");
  require(options.prepare_spd || options.prepare_lsq,
          "SolverService: enable at least one of prepare_spd / prepare_lsq");
  impl_ = std::make_unique<detail::ServiceImpl>(a, options);
  int workers = options.workers_per_shard;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? static_cast<int>(hw) / options.shards : 1;
    if (workers < 1) workers = 1;
  }
  impl_->workers = workers;

  // Shard 0 pays the full per-matrix analysis; every other shard is a
  // clone that reuses it (zero validation passes, zero transpose builds).
  for (int s = 0; s < options.shards; ++s) {
    detail::ServiceShard& shard = impl_->shards.emplace_back();
    shard.pool = std::make_unique<ThreadPool>(workers);
    if (options.prepare_spd) {
      if (s == 0)
        shard.spd.emplace(*shard.pool, a, options.check_input);
      else
        shard.spd.emplace(*shard.pool, *impl_->shards.front().spd);
      shard.spd_stats = shard.spd->stats();
    }
    if (options.prepare_lsq) {
      if (s == 0)
        shard.lsq.emplace(*shard.pool, a);
      else
        shard.lsq.emplace(*shard.pool, *impl_->shards.front().lsq);
      shard.lsq_stats = shard.lsq->stats();
    }
  }
  // Handles are ready; only now start the dispatchers.
  for (int s = 0; s < options.shards; ++s)
    impl_->shards[static_cast<std::size_t>(s)].server =
        std::thread([this, s] { detail::serve_loop(*impl_, s); });
}

SolverService::~SolverService() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (detail::ServiceShard& shard : impl_->shards)
    if (shard.server.joinable()) shard.server.join();
}

SolveTicket SolverService::enqueue(
    std::shared_ptr<detail::TicketState> state) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    require(!impl_->stop, "SolverService: submit after shutdown began");
    impl_->queue.push_back(state);
    ++impl_->submitted;
  }
  impl_->work_cv.notify_one();  // wake one free shard
  return SolveTicket(std::move(state));
}

SolveTicket SolverService::submit(std::vector<double> b,
                                  SolveControls controls) {
  require(impl_->options.prepare_spd,
          "SolverService::submit: service built without prepare_spd");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit: rhs size must equal matrix rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kSpd;
  state->controls = controls;
  state->b = std::move(b);
  return enqueue(std::move(state));
}

SolveTicket SolverService::submit_block(MultiVector b,
                                        SolveControls controls) {
  require(impl_->options.prepare_spd,
          "SolverService::submit_block: service built without prepare_spd");
  require(b.rows() == impl_->a.rows() && b.cols() > 0,
          "SolverService::submit_block: rhs rows must equal matrix rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kSpdBlock;
  state->controls = controls;
  state->b_block = std::move(b);
  return enqueue(std::move(state));
}

SolveTicket SolverService::submit_least_squares(std::vector<double> b,
                                                SolveControls controls) {
  require(impl_->options.prepare_lsq,
          "SolverService::submit_least_squares: service built without "
          "prepare_lsq");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit_least_squares: rhs size must equal matrix "
          "rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kLsq;
  state->controls = controls;
  state->b = std::move(b);
  return enqueue(std::move(state));
}

void SolverService::drain() {
  // "Everything submitted so far": snapshot the submission count at entry
  // and wait for that many completions — not for global quiescence, which
  // other clients' ongoing submissions could postpone forever.
  std::unique_lock<std::mutex> lock(impl_->mutex);
  const long long target = impl_->submitted;
  impl_->drain_cv.wait(lock, [&] { return impl_->completed >= target; });
}

int SolverService::shards() const noexcept {
  return static_cast<int>(impl_->shards.size());
}

int SolverService::workers_per_shard() const noexcept {
  return impl_->workers;
}

const CsrMatrix& SolverService::matrix() const noexcept { return impl_->a; }

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ServiceStats s;
  s.submitted = impl_->submitted;
  s.completed = impl_->completed;
  s.queued = static_cast<long long>(impl_->queue.size());
  s.shards.reserve(impl_->shards.size());
  for (const detail::ServiceShard& shard : impl_->shards) {
    ShardStats ss;
    ss.served = shard.served;
    ss.spd = shard.spd_stats;
    ss.lsq = shard.lsq_stats;
    s.validation_passes +=
        ss.spd.validation_passes + ss.lsq.validation_passes;
    s.transpose_builds += ss.spd.transpose_builds + ss.lsq.transpose_builds;
    s.shards.push_back(ss);
  }
  return s;
}

}  // namespace asyrgs
