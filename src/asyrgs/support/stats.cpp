#include "asyrgs/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace asyrgs {

double median(std::vector<double> sample) {
  require(!sample.empty(), "median: empty sample");
  const std::size_t mid = sample.size() / 2;
  std::nth_element(sample.begin(), sample.begin() + mid, sample.end());
  double hi = sample[mid];
  if (sample.size() % 2 == 1) return hi;
  const double lo = *std::max_element(sample.begin(), sample.begin() + mid);
  return 0.5 * (lo + hi);
}

double mean(const std::vector<double>& sample) {
  require(!sample.empty(), "mean: empty sample");
  return std::accumulate(sample.begin(), sample.end(), 0.0) /
         static_cast<double>(sample.size());
}

double geometric_mean(const std::vector<double>& sample) {
  require(!sample.empty(), "geometric_mean: empty sample");
  double log_sum = 0.0;
  for (double v : sample) {
    require(v > 0.0, "geometric_mean: non-positive sample value");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

Summary summarize(std::vector<double> sample) {
  require(!sample.empty(), "summarize: empty sample");
  Summary s;
  s.count = sample.size();
  s.mean = mean(sample);
  s.median = median(sample);
  auto [mn, mx] = std::minmax_element(sample.begin(), sample.end());
  s.min = *mn;
  s.max = *mx;
  if (sample.size() > 1) {
    double acc = 0.0;
    for (double v : sample) acc += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(acc / static_cast<double>(sample.size() - 1));
  }
  return s;
}

double linear_fit_slope(const std::vector<double>& x,
                        const std::vector<double>& y) {
  require(x.size() == y.size(), "linear_fit_slope: size mismatch");
  require(x.size() >= 2, "linear_fit_slope: need at least two points");
  const double xm = mean(x);
  const double ym = mean(y);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    num += (x[i] - xm) * (y[i] - ym);
    den += (x[i] - xm) * (x[i] - xm);
  }
  require(den > 0.0, "linear_fit_slope: degenerate abscissa");
  return num / den;
}

}  // namespace asyrgs
