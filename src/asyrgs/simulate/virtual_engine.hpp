// Deterministic virtual-time engine simulation.
//
// The replay simulator (async_sim.hpp) validates the paper's governing
// iterations (8)/(9) with its own correction-sum arithmetic; what it cannot
// certify is that the *code we ship* — the compile-time-specialized update
// functors of core/kernels.hpp driven by the Philox direction planner of
// core/engine.hpp — obeys the execution model the proofs assume.  This
// module closes that gap, FoundationDB-style: a single-threaded
// discrete-event scheduler runs the production single-RHS update kernel at
// P *virtual* workers (64–1024, far beyond host cores), with concurrency
// expressed purely as data:
//
//  * Directions come from the real detail::DirectionPlan.  The shared scope
//    tiles one global Philox stream across workers, so the engine replays
//    that stream in global update order j = 0, 1, ...; the multiset is
//    identical to every physical team size, and at P = 1 the sequence is
//    exactly the sequential `rgs` stream.
//  * Visibility is a pluggable schedule: any ConsistentDelayModel /
//    InconsistentDelayModel from delay_models.hpp, or the nnz-proportional
//    EventDrivenSchedule (event_sim.hpp) whose P virtual processors give
//    each update a duration of overhead + nnz(row), jittered from a
//    separately keyed stream (Assumption A-4 independence).
//  * Each step j materializes the stale state x_{K(j)} *in place*: the
//    deltas of invisible updates are subtracted from the iterate, the real
//    kernel's compute seam (SingleRhsUpdate::delta) evaluates
//    beta * (b_r - A_r x_{K(j)}) / A_rr with the production scan
//    arithmetic, the reverted coordinates are restored bit-exactly from
//    saved bits, and the increment commits onto the *current* iterate with
//    the kernel's apply path — precisely iteration (9)'s
//    "compute from x_{K(j)}, write onto x_j".
//
// Everything is a pure function of (seed, P, delay model): no threads, no
// clocks, no global state.  A fixed configuration is therefore bit-identical
// across repeated invocations and across host core counts — race-dependent
// behaviour reproduces exactly in CI — and the error trace it emits is
// SimResult-compatible so the theorem-conformance layer (theory/bounds.hpp)
// consumes both simulators interchangeably.
//
// What virtual time does and does not validate is documented in
// docs/DESIGN.md ("Simulation of the execution model").
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/sampling/direction_sampler.hpp"
#include "asyrgs/simulate/async_sim.hpp"
#include "asyrgs/simulate/delay_models.hpp"
#include "asyrgs/simulate/event_sim.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Parameters of a virtual-engine run.  SimOptions is reused verbatim so
/// replay-simulator call sites translate one for one; `iterations` counts
/// global coordinate updates, `seed` keys the direction stream.
using VirtualEngineOptions = SimOptions;

/// Runs the production update kernel under a consistent-read schedule
/// (iteration (8)): step j computes from the snapshot x_{k(j)}.  `a` must be
/// square with a strictly positive diagonal.  An optional non-uniform
/// `sampler` (sampling/direction_sampler.hpp) maps the Philox stream through
/// the same alias table the threaded engine uses, so weighted virtual runs
/// replay the production draw path; it must outlive the call and have
/// directions() == a.rows().  nullptr (or a uniform sampler) keeps the raw
/// stream bit-identical to every pre-sampling trace.
SimResult run_virtual_consistent(const CsrMatrix& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& x0,
                                 const std::vector<double>& x_star,
                                 const ConsistentDelayModel& delay,
                                 const VirtualEngineOptions& options,
                                 const DirectionSampler* sampler = nullptr);

/// Runs the production update kernel under an inconsistent-read schedule
/// (iteration (9)): step j sees x_0 plus the visible set K(j).
SimResult run_virtual_inconsistent(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   const std::vector<double>& x0,
                                   const std::vector<double>& x_star,
                                   const InconsistentDelayModel& delay,
                                   const VirtualEngineOptions& options);

/// Outcome of an event-driven virtual run: the error trace plus the realized
/// delay structure of the schedule that produced it.
struct VirtualEventResult {
  SimResult result;
  DelayStats stats;   ///< realized max/mean delay, mean in-flight
  index_t tau = 0;    ///< tau-hat = stats.max_delay (the measured A-3' bound)
};

/// Builds the nnz-proportional EventDrivenSchedule for `event.processors`
/// virtual workers and runs the kernel under it.  The schedule's direction
/// stream and the replay's are forced to agree (`event.seed` keys both;
/// `options.seed` is ignored in favour of it).  `event.iterations` is the
/// authoritative update count.
VirtualEventResult run_virtual_event(const CsrMatrix& a,
                                     const std::vector<double>& b,
                                     const std::vector<double>& x0,
                                     const std::vector<double>& x_star,
                                     const EventSimOptions& event,
                                     const VirtualEngineOptions& options);

}  // namespace asyrgs
