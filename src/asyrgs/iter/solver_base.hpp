// Shared option/report types for all solvers (classic and randomized).
//
// Both structs are plain values: copy them freely, no solver retains a
// reference past the call.  The asynchronous solvers use the richer
// AsyncRgsOptions/AsyncRgsReport in core/async_rgs.hpp, which add the
// worker/synchronization/scan knobs this baseline set does not need.
#pragma once

#include <string>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Options common to the iterative solvers.  "Iteration" means one outer
/// step for CG/Jacobi/Gauss-Seidel and one *sweep* (n coordinate updates)
/// for the randomized solvers, mirroring the paper's cost accounting: "n
/// iterations (which we refer to as a sweep) are about as costly as a single
/// Gauss-Seidel iteration" (Section 3).
struct SolveOptions {
  int max_iterations = 1000;
  double rel_tol = 1e-8;       ///< target on ||b - Ax||_2 / ||b||_2
  bool track_history = false;  ///< record relative residual per iteration
  int check_every = 1;         ///< convergence-check cadence (iterations)
};

/// Outcome of a solve.
struct SolveReport {
  int iterations = 0;
  bool converged = false;
  double final_relative_residual = 0.0;
  double seconds = 0.0;
  /// Relative residual after each convergence check, when tracked.
  std::vector<double> residual_history;
};

}  // namespace asyrgs
