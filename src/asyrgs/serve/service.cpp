#include "asyrgs/serve/service.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

namespace detail {

using ServiceClock = std::chrono::steady_clock;

/// One submitted request: inputs, the slot the shard writes results into,
/// and a completion latch.  Shared between the client's SolveTicket copies
/// and the service queue; whichever thread completes the request writes
/// results *before* setting `completed` under the mutex, so any reader that
/// observed completion also observes the results (no further
/// synchronization needed on the payload).
struct TicketState {
  enum class Kind { kSpd, kSpdBlock, kLsq };

  Kind kind = Kind::kSpd;
  SolveControls controls;
  std::vector<double> b;
  MultiVector b_block;
  bool warm_start = false;  // x was seeded from a caller-supplied iterate

  // Queue metadata (written once at submit, read by the dispatcher).
  long long request_id = 0;
  int priority = 1;
  ServiceClock::time_point enqueue_tp{};
  ServiceClock::time_point deadline_tp{};
  bool has_deadline = false;
  ServiceClock::time_point start_tp{};
  bool started = false;
  ServiceClock::time_point done_tp{};

  std::vector<double> x;  // initial iterate in, solution out
  MultiVector x_block;
  SolveOutcome outcome;
  std::exception_ptr error;
  int shard = -1;

  std::mutex mutex;
  std::condition_variable cv;
  bool completed = false;

  /// Blocks until this ticket was fulfilled; rethrows a failed solve's
  /// exception (idempotently — every later call rethrows too).
  void wait_done() {
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [&] { return completed; });
    }
    if (error) std::rethrow_exception(error);
  }

  /// Marks the ticket complete and wakes waiters (results must already be
  /// in place).
  void fulfill() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      completed = true;
    }
    cv.notify_all();
  }
};

/// One serving lane: a private ThreadPool plus prepared handle clones.
/// `served`, `latency`, and the cached handle-stats snapshots are guarded
/// by the service mutex (the dispatcher refreshes them after each request
/// while its handles are idle, so stats() never has to take a handle mutex
/// that a running solve might hold).
struct ServiceShard {
  std::unique_ptr<ThreadPool> pool;
  int workers = 0;
  std::optional<SpdProblem> spd;
  std::optional<LsqProblem> lsq;
  std::thread server;
  long long served = 0;
  LatencyHistogram latency;
  ProblemStats spd_stats;
  ProblemStats lsq_stats;
};

struct ServiceImpl {
  ServiceImpl(const CsrMatrix& a, ServiceOptions options)
      : a(a), options(std::move(options)), epoch(ServiceClock::now()) {}

  const CsrMatrix& a;
  ServiceOptions options;
  ServiceClock::time_point epoch;  // trace timestamps are relative to this

  // ServiceShard is immovable (prepared handles pin their pool by
  // reference), so the deque's stable addresses matter.
  std::deque<ServiceShard> shards;

  mutable std::mutex mutex;
  std::condition_variable work_cv;   // dispatchers: queue non-empty or stop
  std::condition_variable drain_cv;  // drain()/destructor: all work done
  // FIFO per priority class; dispatchers take the oldest request of the
  // most urgent non-empty class.
  std::array<std::deque<std::shared_ptr<TicketState>>, kPriorityClasses>
      queues;
  long long queued = 0;  // sum over `queues`
  long long submitted = 0;
  long long completed = 0;
  long long active = 0;
  long long rejected = 0;
  long long shed_deadline = 0;
  long long queue_high_water = 0;
  bool stop = false;
  // Serializes shutdown()'s join loop so concurrent shutdown() calls (and
  // the destructor after one) don't race on std::thread::join.
  std::mutex join_mutex;

  [[nodiscard]] double since_epoch(ServiceClock::time_point tp) const {
    return std::chrono::duration<double>(tp - epoch).count();
  }
};

namespace {

const char* kind_name(TicketState::Kind kind) {
  switch (kind) {
    case TicketState::Kind::kSpd:
      return "spd";
    case TicketState::Kind::kSpdBlock:
      return "spd_block";
    case TicketState::Kind::kLsq:
      return "lsq";
  }
  return "?";
}

/// Emits the per-request trace event, if a sink is attached.  Called after
/// the ticket is fulfilled, outside the service mutex (the sink has its own
/// synchronization).
void emit_trace(const ServiceImpl& impl, const TicketState& t) {
  if (!impl.options.trace) return;
  TraceEvent event;
  event.request_id = t.request_id;
  event.kind = kind_name(t.kind);
  event.status = t.error ? "error" : to_string(t.outcome.status);
  // Storage and sampling are meaningful only for a solve that ran to an
  // outcome; rejected or failed requests leave them empty.
  if (!t.error && t.started) {
    event.storage = to_string(t.outcome.storage_used);
    event.sampling = to_string(t.outcome.sampling_used);
    event.partitions = t.outcome.partitions_used;
  }
  event.shard = t.shard;
  event.priority = t.priority;
  event.warm_start = t.warm_start;
  event.enqueue_seconds = impl.since_epoch(t.enqueue_tp);
  event.start_seconds = t.started ? impl.since_epoch(t.start_tp) : -1.0;
  event.done_seconds = impl.since_epoch(t.done_tp);
  impl.options.trace->log(event);
}

/// Resolves `t` as refused-without-running (admission reject or deadline
/// shed): kRejected outcome, completion latch, trace.  The counters are the
/// caller's responsibility (they differ between the two paths and need the
/// service mutex).
void resolve_rejected(const ServiceImpl& impl, TicketState& t,
                      std::string reason) {
  t.outcome = SolveOutcome();
  t.outcome.status = SolveStatus::kRejected;
  t.outcome.description = std::move(reason);
  t.done_tp = ServiceClock::now();
  t.fulfill();
  emit_trace(impl, t);
}

/// Runs one request on `shard`'s prepared handles.  Never throws: failures
/// land in the ticket's error slot and surface at wait().
void execute_request(const CsrMatrix& a, ServiceShard& shard, int shard_index,
                     TicketState& t) {
  try {
    switch (t.kind) {
      case TicketState::Kind::kSpd:
        // t.x already holds the initial iterate (zeros or the warm start).
        t.outcome = shard.spd->solve(t.b, t.x, t.controls);
        break;
      case TicketState::Kind::kSpdBlock:
        t.x_block = MultiVector(a.rows(), t.b_block.cols());
        t.outcome = shard.spd->solve(t.b_block, t.x_block, t.controls);
        break;
      case TicketState::Kind::kLsq:
        t.outcome = shard.lsq->solve(t.b, t.x, t.controls);
        break;
    }
  } catch (...) {
    t.error = std::current_exception();
  }
  t.shard = shard_index;
}

/// Pops the oldest request of the most urgent non-empty class; nullptr when
/// every queue is empty.  Caller holds the service mutex.
std::shared_ptr<TicketState> pop_next_locked(ServiceImpl& impl) {
  for (auto& queue : impl.queues) {
    if (queue.empty()) continue;
    std::shared_ptr<TicketState> request = std::move(queue.front());
    queue.pop_front();
    --impl.queued;
    return request;
  }
  return nullptr;
}

/// Dispatcher loop of one shard: pull the oldest, most urgent queued
/// request whenever this shard is free.  Shared queues + free-shard pull is
/// the least-loaded routing policy — an idle shard picks work up
/// immediately, and requests queue only when every shard is busy.  Requests
/// whose deadline expired while queued are shed here, before execution.
void serve_loop(ServiceImpl& impl, int shard_index) {
  ServiceShard& shard = impl.shards[static_cast<std::size_t>(shard_index)];
  for (;;) {
    std::shared_ptr<TicketState> request;
    // Deadline-expired requests popped while looking for live work; their
    // tickets are resolved after the lock is released.
    std::vector<std::shared_ptr<TicketState>> shed;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(impl.mutex);
      impl.work_cv.wait(lock, [&] { return impl.stop || impl.queued > 0; });
      const ServiceClock::time_point now = ServiceClock::now();
      while ((request = pop_next_locked(impl)) != nullptr) {
        if (request->has_deadline && now >= request->deadline_tp) {
          // Shed, but keep the ticket accounted as in-flight until its
          // resolution (outside the lock) lands: the stats invariant
          // submitted == completed + queued + in_flight must hold at every
          // snapshot, and `completed` must not advance before the trace
          // event is emitted (drain() returns on `completed`, and a
          // drained service promises a complete trace).
          ++impl.active;
          shed.push_back(std::move(request));
          continue;
        }
        break;
      }
      if (request) {
        ++impl.active;
        request->started = true;
        request->start_tp = ServiceClock::now();
      } else {
        stopping = impl.stop;  // queues drained; exit if shutting down
      }
    }

    for (const std::shared_ptr<TicketState>& t : shed)
      resolve_rejected(impl, *t,
                       "rejected: deadline expired while queued");
    if (!shed.empty()) {
      {
        std::lock_guard<std::mutex> lock(impl.mutex);
        impl.active -= static_cast<long long>(shed.size());
        impl.shed_deadline += static_cast<long long>(shed.size());
        impl.completed += static_cast<long long>(shed.size());
      }
      impl.drain_cv.notify_all();
    }
    if (!request) {
      if (stopping) return;
      continue;  // everything popped was shed; wait for more work
    }

    execute_request(impl.a, shard, shard_index, *request);
    request->done_tp = ServiceClock::now();

    // Fulfill the ticket and emit its trace event first (results were
    // written above, so the completed flag is the release point; the
    // request still counts as in-flight)...
    request->fulfill();
    emit_trace(impl, *request);

    // ...then update service counters, the shard's latency histogram, and
    // the cached handle stats (the shard's handles are idle right now, so
    // their stats() cannot block on a solve in flight).  drain() waiters
    // watch `completed`, so notify on every completion — a drainer must not
    // wait for *other* clients' later submissions to quiesce — and once
    // drain() returns every completion's trace line is already written.
    {
      std::lock_guard<std::mutex> lock(impl.mutex);
      --impl.active;
      ++impl.completed;
      ++shard.served;
      shard.latency.record(std::chrono::duration<double>(
                               request->done_tp - request->enqueue_tp)
                               .count());
      if (shard.spd) shard.spd_stats = shard.spd->stats();
      if (shard.lsq) shard.lsq_stats = shard.lsq->stats();
    }
    impl.drain_cv.notify_all();
  }
}

}  // namespace

}  // namespace detail

// --- SolveTicket -------------------------------------------------------------

bool SolveTicket::done() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->completed;
}

const SolveOutcome& SolveTicket::wait() {
  require(state_ != nullptr, "SolveTicket::wait: invalid (default) ticket");
  state_->wait_done();
  return state_->outcome;
}

const std::vector<double>& SolveTicket::solution() {
  require(state_ != nullptr, "SolveTicket::solution: invalid ticket");
  state_->wait_done();
  require(state_->kind != detail::TicketState::Kind::kSpdBlock,
          "SolveTicket::solution: block request — use block_solution()");
  return state_->x;
}

const MultiVector& SolveTicket::block_solution() {
  require(state_ != nullptr, "SolveTicket::block_solution: invalid ticket");
  state_->wait_done();
  require(state_->kind == detail::TicketState::Kind::kSpdBlock,
          "SolveTicket::block_solution: not a block request");
  return state_->x_block;
}

int SolveTicket::shard() {
  require(state_ != nullptr, "SolveTicket::shard: invalid ticket");
  state_->wait_done();
  return state_->shard;
}

// --- SolverService -----------------------------------------------------------

SolverService::SolverService(const CsrMatrix& a, ServiceOptions options) {
  require(options.shards >= 1, "SolverService: shards must be >= 1");
  require(options.max_queue >= 0,
          "SolverService: max_queue must be >= 0 (0 = unbounded)");
  require(options.prepare_spd || options.prepare_lsq,
          "SolverService: enable at least one of prepare_spd / prepare_lsq");
  impl_ = std::make_unique<detail::ServiceImpl>(a, options);

  // Shard 0 pays the full per-matrix analysis; every other shard is a
  // clone that reuses it (zero validation passes, zero transpose builds).
  for (int s = 0; s < options.shards; ++s) {
    // Auto sizing divides the hardware threads across shards and spreads
    // the remainder over the first hw % shards shards, so no core is left
    // permanently idle by integer truncation (8 threads / 3 shards =
    // 3+3+2, not 2+2+2).  The resulting pools can differ in size by one —
    // pin SolveControls::workers for cross-shard bit-identity (header
    // note).
    const int workers = detail::shard_auto_workers(
        options.workers_per_shard, s, options.shards,
        std::thread::hardware_concurrency());
    detail::ServiceShard& shard = impl_->shards.emplace_back();
    shard.workers = workers;
    shard.pool = std::make_unique<ThreadPool>(workers);
    if (options.prepare_spd) {
      if (s == 0) {
        shard.spd.emplace(*shard.pool, a, options.check_input,
                          options.storage);
        // Before any clone is taken, so every shard aliases one analysis.
        if (options.prepare_partitions) shard.spd->prepare_partitions();
      } else {
        shard.spd.emplace(*shard.pool, *impl_->shards.front().spd);
      }
      shard.spd_stats = shard.spd->stats();
    }
    if (options.prepare_lsq) {
      if (s == 0)
        shard.lsq.emplace(*shard.pool, a, options.storage);
      else
        shard.lsq.emplace(*shard.pool, *impl_->shards.front().lsq);
      shard.lsq_stats = shard.lsq->stats();
    }
  }
  // Handles are ready; only now start the dispatchers.
  for (int s = 0; s < options.shards; ++s)
    impl_->shards[static_cast<std::size_t>(s)].server =
        std::thread([this, s] { detail::serve_loop(*impl_, s); });
}

SolverService::~SolverService() { shutdown(); }

void SolverService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  // The dispatchers drain the admitted queues before honoring stop, so
  // joining them is the drain.  Late submits (racing or after this
  // returns) see `stop` and resolve kRejected without touching the
  // dispatchers.
  std::lock_guard<std::mutex> join_lock(impl_->join_mutex);
  for (detail::ServiceShard& shard : impl_->shards)
    if (shard.server.joinable()) shard.server.join();
}

SolveTicket SolverService::enqueue(std::shared_ptr<detail::TicketState> state,
                                   const RequestOptions& request) {
  state->priority = std::clamp(request.priority, 0, kPriorityClasses - 1);
  state->enqueue_tp = detail::ServiceClock::now();
  if (request.deadline_seconds > 0.0) {
    state->has_deadline = true;
    state->deadline_tp =
        state->enqueue_tp + std::chrono::duration_cast<
                                detail::ServiceClock::duration>(
                                std::chrono::duration<double>(
                                    request.deadline_seconds));
  }

  const char* reject_reason = nullptr;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->submitted;
    state->request_id = impl_->submitted;
    // Admission control: a submit racing shutdown, or one finding every
    // max_queue slot taken, resolves its ticket to kRejected instead of
    // throwing — overload and shutdown are expected serving states, not
    // caller bugs (the contract tests/test_service.cpp pins).
    if (impl_->stop) {
      reject_reason = "rejected: service shutting down";
    } else if (impl_->options.max_queue > 0 &&
               impl_->queued >= impl_->options.max_queue) {
      reject_reason = "rejected: queue full (max_queue)";
    } else {
      impl_->queues[static_cast<std::size_t>(state->priority)].push_back(
          state);
      ++impl_->queued;
      if (impl_->queued > impl_->queue_high_water)
        impl_->queue_high_water = impl_->queued;
    }
    // A refused ticket stays accounted as in-flight until its resolution
    // (outcome + trace, below, outside the lock) lands — same bookkeeping
    // discipline as the dispatcher, keeping the stats invariant intact at
    // every snapshot and the trace complete once `completed` advances.
    if (reject_reason) ++impl_->active;
  }
  if (reject_reason) {
    detail::resolve_rejected(*impl_, *state, reject_reason);
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      --impl_->active;
      ++impl_->rejected;
      ++impl_->completed;
    }
    impl_->drain_cv.notify_all();
  } else {
    impl_->work_cv.notify_one();  // wake one free shard
  }
  return SolveTicket(std::move(state));
}

SolveTicket SolverService::submit(std::vector<double> b,
                                  SolveControls controls,
                                  RequestOptions request) {
  require(impl_->options.prepare_spd,
          "SolverService::submit: service built without prepare_spd");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit: rhs size must equal matrix rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kSpd;
  state->controls = controls;
  state->x.assign(b.size(), 0.0);
  state->b = std::move(b);
  return enqueue(std::move(state), request);
}

SolveTicket SolverService::submit(std::vector<double> b,
                                  std::vector<double> x0,
                                  SolveControls controls,
                                  RequestOptions request) {
  require(impl_->options.prepare_spd,
          "SolverService::submit: service built without prepare_spd");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit: rhs size must equal matrix rows");
  require(x0.size() == b.size(),
          "SolverService::submit: warm-start x0 size must equal matrix rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kSpd;
  state->controls = controls;
  state->warm_start = true;
  state->x = std::move(x0);
  state->b = std::move(b);
  return enqueue(std::move(state), request);
}

SolveTicket SolverService::submit_block(MultiVector b, SolveControls controls,
                                        RequestOptions request) {
  require(impl_->options.prepare_spd,
          "SolverService::submit_block: service built without prepare_spd");
  require(b.rows() == impl_->a.rows() && b.cols() > 0,
          "SolverService::submit_block: rhs rows must equal matrix rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kSpdBlock;
  state->controls = controls;
  state->b_block = std::move(b);
  return enqueue(std::move(state), request);
}

SolveTicket SolverService::submit_least_squares(std::vector<double> b,
                                                SolveControls controls,
                                                RequestOptions request) {
  require(impl_->options.prepare_lsq,
          "SolverService::submit_least_squares: service built without "
          "prepare_lsq");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit_least_squares: rhs size must equal matrix "
          "rows");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kLsq;
  state->controls = controls;
  state->x.assign(static_cast<std::size_t>(impl_->a.cols()), 0.0);
  state->b = std::move(b);
  return enqueue(std::move(state), request);
}

SolveTicket SolverService::submit_least_squares(std::vector<double> b,
                                                std::vector<double> x0,
                                                SolveControls controls,
                                                RequestOptions request) {
  require(impl_->options.prepare_lsq,
          "SolverService::submit_least_squares: service built without "
          "prepare_lsq");
  require(static_cast<index_t>(b.size()) == impl_->a.rows(),
          "SolverService::submit_least_squares: rhs size must equal matrix "
          "rows");
  require(static_cast<index_t>(x0.size()) == impl_->a.cols(),
          "SolverService::submit_least_squares: warm-start x0 size must "
          "equal matrix columns");
  auto state = std::make_shared<detail::TicketState>();
  state->kind = detail::TicketState::Kind::kLsq;
  state->controls = controls;
  state->warm_start = true;
  state->x = std::move(x0);
  state->b = std::move(b);
  return enqueue(std::move(state), request);
}

void SolverService::drain() {
  // "Everything submitted so far": snapshot the submission count at entry
  // and wait for that many completions — not for global quiescence, which
  // other clients' ongoing submissions could postpone forever.
  std::unique_lock<std::mutex> lock(impl_->mutex);
  const long long target = impl_->submitted;
  impl_->drain_cv.wait(lock, [&] { return impl_->completed >= target; });
}

int SolverService::shards() const noexcept {
  return static_cast<int>(impl_->shards.size());
}

int SolverService::workers_per_shard() const noexcept {
  return impl_->shards.front().workers;
}

const CsrMatrix& SolverService::matrix() const noexcept { return impl_->a; }

ServiceStats SolverService::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  ServiceStats s;
  s.submitted = impl_->submitted;
  s.completed = impl_->completed;
  s.queued = impl_->queued;
  s.in_flight = impl_->active;
  s.rejected = impl_->rejected;
  s.shed_deadline = impl_->shed_deadline;
  s.queue_high_water = impl_->queue_high_water;
  // The accounting invariant: every issued ticket is exactly one of
  // completed (incl. rejected/shed), queued, or executing.  Checked on
  // every snapshot — a violation means a counter transition escaped the
  // mutex.
  require(s.submitted == s.completed + s.queued + s.in_flight,
          "SolverService::stats: accounting invariant violated");
  s.shards.reserve(impl_->shards.size());
  for (const detail::ServiceShard& shard : impl_->shards) {
    ShardStats ss;
    ss.served = shard.served;
    ss.workers = shard.workers;
    ss.latency = shard.latency;
    ss.spd = shard.spd_stats;
    ss.lsq = shard.lsq_stats;
    s.latency.merge(ss.latency);
    s.validation_passes +=
        ss.spd.validation_passes + ss.lsq.validation_passes;
    s.transpose_builds += ss.spd.transpose_builds + ss.lsq.transpose_builds;
    s.shards.push_back(ss);
  }
  return s;
}

}  // namespace asyrgs
