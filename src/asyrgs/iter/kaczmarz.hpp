// Randomized Kaczmarz and CGNR baselines for least-squares experiments.
//
// Section 8 of the paper extends AsyRGS to overdetermined least squares via
// randomized coordinate descent on the normal equations; the natural
// baselines are Strohmer & Vershynin's randomized Kaczmarz [20] (row-action
// method, solves consistent systems) and CG on the normal equations (CGNR).
#pragma once

#include <cstdint>

#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Randomized Kaczmarz on a consistent system A x = b (A is m x n, m >= n).
/// Rows are sampled with probability proportional to ||A_i||_2^2.  One
/// reported iteration = one sweep of m row updates.
SolveReport kaczmarz_solve(const CsrMatrix& a, const std::vector<double>& b,
                           std::vector<double>& x,
                           const SolveOptions& options = {},
                           std::uint64_t seed = 17);

/// CGNR: CG applied to A^T A x = A^T b without forming A^T A.  Convergence
/// is declared on the normal-equations residual ||A^T (b - A x)|| relative
/// to ||A^T b||.
SolveReport cgnr_solve(ThreadPool& pool, const CsrMatrix& a,
                       const std::vector<double>& b, std::vector<double>& x,
                       const SolveOptions& options = {}, int workers = 0);

}  // namespace asyrgs
