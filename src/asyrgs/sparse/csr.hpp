// Immutable compressed-sparse-row matrix.
//
// This is the single matrix representation used by all solvers.  Column
// indices within each row are sorted, which the randomized solvers rely on
// for cache-friendly row scans and O(log nnz(row)) entry lookup.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

// ---------------------------------------------------------------------------
// Raw CSR row kernels
// ---------------------------------------------------------------------------
//
// The innermost loops of every solver are scans of one CSR row against a
// dense vector.  These free kernels take raw `__restrict`-qualified arrays —
// CSR index/value storage never aliases the dense operand — so the compiler
// can keep the row pointers in registers and schedule the loads freely.
// They are shared by the sequential solvers (rgs, rcd_lsq), SpMV, and the
// benches; the asynchronous kernels use their own variants with
// relaxed-atomic reads of the shared iterate.

/// Sum of vals[t] * x[cols[t]] over one row (SpMV / dot building block).
[[nodiscard]] inline double csr_row_dot(const index_t* __restrict cols,
                                        const double* __restrict vals,
                                        nnz_t len,
                                        const double* __restrict x) noexcept {
  double acc = 0.0;
  for (nnz_t t = 0; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

/// acc minus the row/vector products, one subtraction per nonzero — the
/// canonical Gauss-Seidel association (`acc = b_r`, then acc -= A_rj x_j in
/// column order) that every solver shares so equal-seed runs agree bit for
/// bit.
[[nodiscard]] inline double csr_row_sub_dot(
    double acc, const index_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  for (nnz_t t = 0; t < len; ++t) acc -= vals[t] * x[cols[t]];
  return acc;
}

// --- reassociated ("fast math") row scans ------------------------------------
//
// The pinned kernels above evaluate the row scan as one serial
// subtraction/addition chain, which is what makes equal-seed runs bit-exact
// across worker counts — and what caps the scan-bound regime at one FP
// operation per dependency-chain latency.  The *_reassoc variants below drop
// the association guarantee: they split the scan over multiple independent
// accumulators (and gather/FMA SIMD lanes where the CPU has AVX-512/AVX2;
// runtime-dispatched with an unrolled multi-accumulator scalar fallback) and
// reduce at the end.  The result is the same mathematical sum under a
// different (unspecified, width-dependent) rounding order.
//
// Convergence theory is indifferent to the association — the paper's
// bounds (and AsyRK's, arXiv:1401.4780) assume only bounded staleness of the
// values read, never a particular reduction order — so the asynchronous
// solvers expose these kernels behind the opt-in ScanMode::kReassociated
// (see core/async_rgs.hpp); the default solve path never calls them.
//
// Thread-safety contract: `x` may be a concurrently-updated shared iterate.
// These kernels read it with plain (vector) loads rather than the pinned
// path's relaxed-atomic loads; on every supported target a naturally aligned
// 8-byte load cannot tear, which is all the convergence model requires
// (each read observes some previously stored value).  See docs/API.md.

/// Long-row reassociated kernel (len >= 16): SIMD gather/FMA lanes,
/// runtime-dispatched AVX-512 / AVX2 / unrolled scalar.  Implementation
/// detail of csr_row_dot_reassoc — call that instead.
[[nodiscard]] double csr_row_dot_reassoc_long(const index_t* cols,
                                              const double* vals, nnz_t len,
                                              const double* x) noexcept;

/// Four-accumulator scalar scan: splitting the add chain pipelines the FP
/// adder without SIMD gather setup.  Single definition shared by the
/// short-row path of csr_row_dot_reassoc below and the no-SIMD long-row
/// fallback in sparse/csr.cpp, so the two cannot drift apart.
[[nodiscard]] inline double csr_row_dot_multiacc(
    const index_t* __restrict cols, const double* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  nnz_t t = 0;
  for (; t + 4 <= len; t += 4) {
    s0 += vals[t] * x[cols[t]];
    s1 += vals[t + 1] * x[cols[t + 1]];
    s2 += vals[t + 2] * x[cols[t + 2]];
    s3 += vals[t + 3] * x[cols[t + 3]];
  }
  for (; t < len; ++t) s0 += vals[t] * x[cols[t]];
  return (s0 + s1) + (s2 + s3);
}

/// Reassociated sum of vals[t] * x[cols[t]]: multiple accumulators / SIMD
/// gathers, runtime-dispatched.  Same sum as csr_row_dot up to rounding.
/// The short-row path is inline — rows under the SIMD threshold pay no
/// out-of-line call (gather setup never recoups itself there), keeping
/// reassociated mode close to pinned on short-row (engine-bound) matrices.
[[nodiscard]] inline double csr_row_dot_reassoc(
    const index_t* __restrict cols, const double* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  if (len >= 16) return csr_row_dot_reassoc_long(cols, vals, len, x);
  return csr_row_dot_multiacc(cols, vals, len, x);
}

/// acc - (reassociated row/vector product).  Same value as csr_row_sub_dot
/// up to rounding; the subtraction of the reduced product from `acc` is the
/// single final rounding step.
[[nodiscard]] inline double csr_row_sub_dot_reassoc(
    double acc, const index_t* cols, const double* vals, nnz_t len,
    const double* x) noexcept {
  return acc - csr_row_dot_reassoc(cols, vals, len, x);
}

/// Sparse rows x cols matrix in CSR format with sorted column indices.
///
/// Thread-safety: immutable after construction — every member below is
/// const and allocation-free, so one CsrMatrix may be shared by any number
/// of concurrent solver teams (the asynchronous solvers rely on this).
class CsrMatrix {
 public:
  CsrMatrix();  // empty matrix; out-of-line to install the transpose-cache
                // slot eagerly (see transpose_shared)

  /// Takes ownership of pre-built CSR arrays.  Validates monotone row
  /// pointers, in-range sorted column indices, and array sizes; throws
  /// asyrgs::Error on malformed input.
  CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
            std::vector<index_t> col_idx, std::vector<double> values);

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] nnz_t nnz() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  /// Row i as spans over (column indices, values).
  [[nodiscard]] std::span<const index_t> row_cols(index_t i) const noexcept {
    return {col_idx_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] std::span<const double> row_vals(index_t i) const noexcept {
    return {values_.data() + row_ptr_[i],
            static_cast<std::size_t>(row_ptr_[i + 1] - row_ptr_[i])};
  }
  [[nodiscard]] nnz_t row_nnz(index_t i) const noexcept {
    return row_ptr_[i + 1] - row_ptr_[i];
  }

  [[nodiscard]] const std::vector<nnz_t>& row_ptr() const noexcept {
    return row_ptr_;
  }
  [[nodiscard]] const std::vector<index_t>& col_idx() const noexcept {
    return col_idx_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// A(i, j), zero when the entry is not stored (binary search over the
  /// sorted row).
  [[nodiscard]] double at(index_t i, index_t j) const;

  /// Dot product of row i with dense vector x (serial building block of both
  /// SpMV and the Gauss-Seidel update gamma = b_r - A_r x).
  [[nodiscard]] double row_dot(index_t i, const double* x) const noexcept;

  /// y = A x (serial reference implementation; see sparse/spmv.hpp for the
  /// parallel kernels).
  void multiply(const double* x, double* y) const;

  /// y = A^T x (serial; y must have cols() entries).
  void multiply_transpose(const double* x, double* y) const;

  /// Main diagonal as a dense vector (zeros for missing entries; requires a
  /// square matrix).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Explicit transpose (used to give the least-squares solver column access
  /// to A via CSR rows of A^T).
  [[nodiscard]] CsrMatrix transpose() const;

  /// The transpose, built at most once per matrix and cached (the matrix is
  /// immutable, so the cached value can never go stale).  Thread-safe:
  /// concurrent first calls build exactly one instance; later calls are a
  /// shared_ptr copy.  Copies of the matrix share the cache.  This is the
  /// amortization path behind the prepared-solver handles and the
  /// `async_lsq_solve` convenience overload — repeated solves against one
  /// matrix pay the O(nnz) transpose a single time.  The cached transpose
  /// stays resident for the matrix's lifetime (~nnz extra memory); callers
  /// that need A^T exactly once and care about footprint should call
  /// transpose() instead.  `built_now` (optional) is set to whether THIS
  /// call constructed the transpose — race-free, unlike checking
  /// transpose_cached() before and after.
  [[nodiscard]] std::shared_ptr<const CsrMatrix> transpose_shared(
      bool* built_now = nullptr) const;

  /// True when transpose_shared() has already built (and cached) the
  /// transpose.  Thread-safe; exposed so tests can assert single
  /// construction.
  [[nodiscard]] bool transpose_cached() const;

  /// Deep equality of dimensions, structure, and values.
  [[nodiscard]] bool equals(const CsrMatrix& other, double tol = 0.0) const;

 private:
  struct TransposeCache;  // defined in csr.cpp (mutex + cached value)

  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<nnz_t> row_ptr_;   // size rows_ + 1
  std::vector<index_t> col_idx_; // size nnz
  std::vector<double> values_;   // size nnz
  /// Installed eagerly by every constructor (so the pointer itself is
  /// immutable after construction — copies share the slot, and concurrent
  /// copy/transpose_shared cannot race on it; only moved-from matrices are
  /// left with a null slot, re-installed lazily).  Mutable because caching
  /// the transpose is logically const.
  mutable std::shared_ptr<TransposeCache> transpose_cache_;
};

/// Result of removing structurally empty columns.
struct ColumnCompression {
  CsrMatrix matrix;                  ///< same rows, empty columns removed
  std::vector<index_t> kept_columns; ///< new column c was old kept_columns[c]
};

/// Removes columns with no stored entries.  The paper preprocesses its data
/// matrix the same way ("after removing rows and columns that were
/// identically zero"); required by the least-squares solvers, which assume
/// full column rank.
[[nodiscard]] ColumnCompression drop_empty_columns(const CsrMatrix& a);

}  // namespace asyrgs
