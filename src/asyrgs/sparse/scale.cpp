#include "asyrgs/sparse/scale.hpp"

#include <cmath>

namespace asyrgs {

UnitDiagonalScaling::UnitDiagonalScaling(const CsrMatrix& b) {
  require(b.square(), "UnitDiagonalScaling: matrix must be square");
  const std::vector<double> diag = b.diagonal();
  d_.resize(diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) {
    require(diag[i] > 0.0,
            "UnitDiagonalScaling: diagonal must be strictly positive");
    d_[i] = 1.0 / std::sqrt(diag[i]);
  }
}

CsrMatrix UnitDiagonalScaling::scale_matrix(const CsrMatrix& b) const {
  require(b.rows() == static_cast<index_t>(d_.size()) && b.square(),
          "UnitDiagonalScaling: matrix shape mismatch");
  std::vector<nnz_t> row_ptr = b.row_ptr();
  std::vector<index_t> col_idx = b.col_idx();
  std::vector<double> values = b.values();
  for (index_t i = 0; i < b.rows(); ++i) {
    const double di = d_[i];
    for (nnz_t t = row_ptr[i]; t < row_ptr[i + 1]; ++t)
      values[t] *= di * d_[col_idx[t]];
  }
  return CsrMatrix(b.rows(), b.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

std::vector<double> UnitDiagonalScaling::scale_rhs(
    const std::vector<double>& z) const {
  require(z.size() == d_.size(), "scale_rhs: length mismatch");
  std::vector<double> out(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) out[i] = d_[i] * z[i];
  return out;
}

MultiVector UnitDiagonalScaling::scale_rhs(const MultiVector& z) const {
  require(z.rows() == static_cast<index_t>(d_.size()),
          "scale_rhs: length mismatch");
  MultiVector out(z.rows(), z.cols());
  for (index_t i = 0; i < z.rows(); ++i) {
    const double di = d_[i];
    const double* src = z.row(i);
    double* dst = out.row(i);
    for (index_t c = 0; c < z.cols(); ++c) dst[c] = di * src[c];
  }
  return out;
}

std::vector<double> UnitDiagonalScaling::unscale_solution(
    const std::vector<double>& x) const {
  // y = D x: identical arithmetic to scale_rhs, kept separate for intent.
  return scale_rhs(x);
}

MultiVector UnitDiagonalScaling::unscale_solution(const MultiVector& x) const {
  return scale_rhs(x);
}

std::vector<double> UnitDiagonalScaling::scale_solution(
    const std::vector<double>& y) const {
  require(y.size() == d_.size(), "scale_solution: length mismatch");
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) out[i] = y[i] / d_[i];
  return out;
}

bool has_unit_diagonal(const CsrMatrix& a, double tol) {
  if (!a.square()) return false;
  for (index_t i = 0; i < a.rows(); ++i)
    if (std::abs(a.at(i, i) - 1.0) > tol) return false;
  return true;
}

}  // namespace asyrgs
