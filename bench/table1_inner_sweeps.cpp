// Table 1 — Flexible-CG with AsyRGS (inconsistent read) as preconditioner:
// the inner-sweep trade-off.
//
// Paper (Section 9, Table 1): for inner sweeps {30, 20, 10, 5, 3, 2, 1},
// run Flexible-CG to relative residual 1e-8 on the maximum thread count and
// report outer iterations, total matrix operations
// (outer x (inner + 1)), wall time, and mat-ops/second.  Runs are not
// deterministic, so the median of five runs is reported.
//
// Expected shape: outer iterations decrease as inner sweeps increase; total
// mat-ops generally increase (except the 1-sweep outlier); mat-ops/sec
// increases with inner sweeps (more work in the well-scaling asynchronous
// part); the best wall time sits at a small inner-sweep count (the paper's
// optimum: 2).
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("table1_inner_sweeps",
                "Table 1: FCG + AsyRGS preconditioner inner-sweep trade-off");
  GramCli gram_cli = add_gram_options(cli);
  auto sweeps_list = cli.add_int_list("inner-sweeps", {30, 20, 10, 5, 3, 2, 1},
                                      "preconditioner sweep counts");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  auto runs = cli.add_int("runs", 5, "repetitions (median reported)");
  auto tol = cli.add_double("tol", 1e-8, "outer relative-residual target");
  auto max_outer = cli.add_int("max-outer", 2000, "outer iteration cap");
  cli.parse(argc, argv);

  print_banner("table1_inner_sweeps", "Table 1 (Section 9)");
  const SocialGram system = build_gram(gram_cli);
  const CsrMatrix a = scaled_gram(system);
  print_matrix_profile(a);

  ThreadPool& pool = ThreadPool::global();
  const int workers = *threads > 0 ? static_cast<int>(*threads) : pool.size();
  std::cout << "# threads: " << workers << ", runs per config: " << *runs
            << " (median)\n";

  // Single RHS, as in the paper's preconditioner experiments.
  const std::vector<double> b = random_vector(a.rows(), 11);

  Table table({"inner_sweeps", "outer_iters", "outer*(inner+1)", "time_s",
               "mat_ops_per_s", "converged"});

  for (std::int64_t inner : *sweeps_list) {
    std::vector<double> outer_iters, times, mat_ops, mat_ops_rate;
    bool all_converged = true;
    for (int run = 0; run < *runs; ++run) {
      // Fresh preconditioner per run: new random direction stream, same as
      // the paper's repeated trials (non-determinism from asynchronism).
      AsyRgsPreconditioner precond(pool, a, static_cast<int>(inner), workers,
                                   /*step_size=*/1.0,
                                   /*seed=*/100 + static_cast<std::uint64_t>(run));
      FcgOptions fo;
      fo.base.max_iterations = static_cast<int>(*max_outer);
      fo.base.rel_tol = *tol;
      std::vector<double> x(a.rows(), 0.0);
      WallTimer t;
      const FcgReport rep = fcg_solve(pool, a, b, x, precond, fo, workers);
      const double secs = t.seconds();
      all_converged = all_converged && rep.base.converged;

      const double ops =
          static_cast<double>(rep.base.iterations) * (static_cast<double>(inner) + 1.0);
      outer_iters.push_back(rep.base.iterations);
      times.push_back(secs);
      mat_ops.push_back(ops);
      mat_ops_rate.push_back(ops / secs);
    }
    table.add_row({std::to_string(inner),
                   fmt_fixed(median(outer_iters), 0),
                   fmt_fixed(median(mat_ops), 0), fmt_fixed(median(times), 3),
                   fmt_fixed(median(mat_ops_rate), 1),
                   all_converged ? "yes" : "NO"});
  }
  table.print(std::cout);
  std::cout << "# paper shape check: outer_iters decreases with inner "
               "sweeps; mat_ops_per_s increases;\n"
            << "# wall-time optimum at a small inner-sweep count "
               "(paper: 2 sweeps).\n";
  return 0;
}
