// ASCII table rendering for benchmark output.
//
// Every bench binary prints the same rows/series the paper reports; this
// helper keeps the output aligned and machine-greppable (a `#` prefix marks
// metadata lines, data rows are plain).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one data row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with columns padded to the widest cell.
  void print(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision decimal formatting ("12.345").
[[nodiscard]] std::string fmt_fixed(double v, int precision = 3);

/// Scientific formatting ("1.234e-05").
[[nodiscard]] std::string fmt_sci(double v, int precision = 3);

/// Engineering-style formatting that picks fixed or scientific based on
/// magnitude; benchmark default.
[[nodiscard]] std::string fmt_auto(double v, int precision = 4);

}  // namespace asyrgs
