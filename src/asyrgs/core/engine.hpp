// Shared asynchronous execution engine (internal).
//
// The hot loop common to async_rgs, async_rgs_block, and async_lsq:
// direction planning, the three synchronization modes, and team-parallel
// residual evaluation at synchronization points.  Everything here is an
// implementation detail of the core solvers — the header exists so that the
// solvers share one engine and so that the determinism test suite and the
// kernel micro-benchmarks can exercise the pieces in isolation.  No symbol
// in asyrgs::detail is a stable public API.
//
// Performance notes (the properties the PR-2 overhaul established; keep
// them when editing):
//  * Directions are drawn in batches.  Each worker refills a reusable
//    direction buffer via Philox4x32::fill_indices[_strided] — a few ns per
//    draw instead of a full 10-round Philox evaluation per update — and the
//    once-per-sweep-equivalent yield (oversubscribed hosts) and the clock
//    check (timed mode) happen only at refill boundaries, so the per-update
//    path contains no modulo, no branch on sync mode, and no timer call.
//  * The update functor is a concrete struct templated on atomicity, not a
//    std::function and not a runtime `atomic_writes` branch.
//  * Residuals at synchronization points run as a team-wide parallel
//    reduction over the workers already rendezvoused at the barrier, rather
//    than serially on worker 0 while the team spins.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/gen/partition.hpp"
#include "asyrgs/sampling/direction_sampler.hpp"
#include "asyrgs/support/aligned.hpp"
#include "asyrgs/support/barrier.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/thread_pool.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs::detail {

/// Direction-buffer capacity: the number of picks a worker plans ahead per
/// refill.  Large enough to amortize the batched Philox evaluation and the
/// per-chunk bookkeeping to noise, small enough (8 KiB of indices) to stay
/// L1-resident next to the iterate.
inline constexpr std::size_t kDirectionChunk = 1024;

/// How many picks ahead of the in-flight update the engine hands the update
/// functor for prefetching (clamped to the chunk).  At ~25 ns/update a
/// lookahead of 4 covers L2/L3 latency for the next rows' index/value
/// arrays; measured best in the 2-8 range, flat beyond.
inline constexpr std::size_t kPrefetchDistance = 4;

/// Per-worker direction schedule honouring the randomization scope.
///
/// kShared: one Philox stream over global indices; worker w consumes
/// positions {w, w+P, ...} (free-running/timed) or the per-sweep split
/// (barrier mode) — all modes consume the identical direction multiset.
///
/// kOwnerComputes: worker w owns the contiguous partition
/// [w*n/P-ish, ...) and draws uniformly from it via a worker-keyed stream.
///
/// `pick`/`pick_in_sweep` evaluate one direction (kept for tests and as the
/// executable specification); the `fill*` APIs produce the same draws in
/// batches and are what the engine uses.
///
/// The deterministic virtual engine (simulate/virtual_engine.hpp) consumes
/// this planner too: because the shared scope tiles ONE global Philox stream
/// across workers (worker w owns positions {w, w+P, ...}), a team-1 plan
/// enumerates the identical stream in global order — the virtual engine
/// replays that global order on a single thread, so its direction multiset
/// (and, at P = 1, the exact sequence) matches every real team size.
///
/// An optional DirectionSampler generalizes WHAT each stream position
/// draws (sampling/direction_sampler.hpp): a null or kUniform sampler
/// keeps the exact pre-sampling code path (same fill_indices_strided
/// calls, byte-identical draws); a weighted sampler pulls the raw 64-bit
/// words at the SAME stream positions and maps each through its alias
/// table, so the position multiset — and with it the cross-worker-count
/// invariance — is untouched.  Weighted draws require the shared scope
/// (validated by run_engine_sampled; owner-computes streams partition the
/// index space and have no global distribution to weight).
class DirectionPlan {
 public:
  DirectionPlan(const AsyncRgsOptions& options, index_t n, int team,
                const DirectionSampler* sampler = nullptr)
      : scope_(options.scope), n_(n), team_(team), shared_(options.seed),
        sampler_(sampler != nullptr && sampler->weighted_draws() ? sampler
                                                                 : nullptr) {
    ASYRGS_ASSERT(sampler_ == nullptr ||
                  (scope_ == RandomizationScope::kShared &&
                   sampler_->directions() == n));
    if (scope_ == RandomizationScope::kOwnerComputes) {
      lo_.resize(static_cast<std::size_t>(team));
      size_.resize(static_cast<std::size_t>(team));
      streams_.reserve(static_cast<std::size_t>(team));
      const index_t base = n / team;
      const index_t extra = n % team;
      index_t lo = 0;
      for (int w = 0; w < team; ++w) {
        const index_t size = base + (w < extra ? 1 : 0);
        lo_[static_cast<std::size_t>(w)] = lo;
        size_[static_cast<std::size_t>(w)] = size;
        lo += size;
        streams_.emplace_back(
            splitmix64(options.seed + 0x9E3779B97F4A7C15ull *
                                          static_cast<std::uint64_t>(w + 1)));
      }
    }
  }

  /// Updates worker w performs per sweep.
  [[nodiscard]] index_t per_sweep(int w) const {
    if (scope_ == RandomizationScope::kOwnerComputes)
      return size_[static_cast<std::size_t>(w)];
    // Count of global indices congruent to w modulo team in [0, n); zero
    // when w >= n (more workers than rows: the formula below would round
    // the negative numerator up to 1 and steal a position from the next
    // sweep, double-consuming it and breaking the multiset invariant).
    if (static_cast<index_t>(w) >= n_) return 0;
    return (n_ - 1 - static_cast<index_t>(w)) / team_ + 1;
  }

  /// Total updates worker w performs over `sweeps` sweeps in free-running /
  /// timed numbering.  For the shared scope this counts the global indices
  /// congruent to w modulo team in [0, sweeps*n) — exactly tiling the
  /// global stream so the direction multiset is identical to the
  /// sequential run.
  [[nodiscard]] std::uint64_t total_updates(int w, int sweeps) const {
    if (scope_ == RandomizationScope::kOwnerComputes)
      return static_cast<std::uint64_t>(sweeps) *
             static_cast<std::uint64_t>(size_[static_cast<std::size_t>(w)]);
    const std::uint64_t total = static_cast<std::uint64_t>(sweeps) *
                                static_cast<std::uint64_t>(n_);
    if (static_cast<std::uint64_t>(w) >= total) return 0;
    return (total - 1 - static_cast<std::uint64_t>(w)) /
               static_cast<std::uint64_t>(team_) +
           1;
  }

  /// Direction for worker w's k-th update (free-running/timed numbering).
  [[nodiscard]] index_t pick(int w, std::uint64_t k) const {
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      return lo_[sw] + streams_[sw].index_at(k, size_[sw]);
    }
    const std::uint64_t j =
        static_cast<std::uint64_t>(w) + k * static_cast<std::uint64_t>(team_);
    if (sampler_ != nullptr) return sampler_->map(shared_.at(j));
    return shared_.index_at(j, n_);
  }

  /// Direction for worker w's t-th update of sweep `sweep` (barrier mode).
  [[nodiscard]] index_t pick_in_sweep(int w, int sweep, index_t t) const {
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      const std::uint64_t k = static_cast<std::uint64_t>(sweep) *
                                  static_cast<std::uint64_t>(size_[sw]) +
                              static_cast<std::uint64_t>(t);
      return lo_[sw] + streams_[sw].index_at(k, size_[sw]);
    }
    const std::uint64_t j = static_cast<std::uint64_t>(sweep) *
                                static_cast<std::uint64_t>(n_) +
                            static_cast<std::uint64_t>(w) +
                            static_cast<std::uint64_t>(t) *
                                static_cast<std::uint64_t>(team_);
    if (sampler_ != nullptr) return sampler_->map(shared_.at(j));
    return shared_.index_at(j, n_);
  }

  /// out[i] = pick(w, k0 + i) for i in [0, count), batched.
  void fill(int w, std::uint64_t k0, std::size_t count, index_t* out) const {
    if (count == 0) return;
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      streams_[sw].fill_indices(k0, count, size_[sw], out);
      const index_t lo = lo_[sw];
      for (std::size_t i = 0; i < count; ++i) out[i] += lo;
      return;
    }
    const std::uint64_t first =
        static_cast<std::uint64_t>(w) + k0 * static_cast<std::uint64_t>(team_);
    if (sampler_ != nullptr) {
      // Same stream positions, raw words instead of reduced indices; the
      // sampler maps them in place through its alias table.
      shared_.fill_at_strided(first, static_cast<std::uint64_t>(team_), count,
                              reinterpret_cast<std::uint64_t*>(out));
      sampler_->map_in_place(out, count);
      return;
    }
    shared_.fill_indices_strided(first, static_cast<std::uint64_t>(team_),
                                 count, n_, out);
  }

  /// out[i] = pick_in_sweep(w, sweep, t0 + i) for i in [0, count), batched.
  void fill_in_sweep(int w, int sweep, index_t t0, std::size_t count,
                     index_t* out) const {
    if (count == 0) return;
    if (scope_ == RandomizationScope::kOwnerComputes) {
      const std::size_t sw = static_cast<std::size_t>(w);
      const std::uint64_t k0 = static_cast<std::uint64_t>(sweep) *
                                   static_cast<std::uint64_t>(size_[sw]) +
                               static_cast<std::uint64_t>(t0);
      streams_[sw].fill_indices(k0, count, size_[sw], out);
      const index_t lo = lo_[sw];
      for (std::size_t i = 0; i < count; ++i) out[i] += lo;
      return;
    }
    const std::uint64_t first = static_cast<std::uint64_t>(sweep) *
                                    static_cast<std::uint64_t>(n_) +
                                static_cast<std::uint64_t>(w) +
                                static_cast<std::uint64_t>(t0) *
                                    static_cast<std::uint64_t>(team_);
    if (sampler_ != nullptr) {
      shared_.fill_at_strided(first, static_cast<std::uint64_t>(team_), count,
                              reinterpret_cast<std::uint64_t*>(out));
      sampler_->map_in_place(out, count);
      return;
    }
    shared_.fill_indices_strided(first, static_cast<std::uint64_t>(team_),
                                 count, n_, out);
  }

  [[nodiscard]] int team() const noexcept { return team_; }

 private:
  RandomizationScope scope_;
  index_t n_;
  int team_;
  Philox4x32 shared_;
  const DirectionSampler* sampler_;
  std::vector<index_t> lo_;
  std::vector<index_t> size_;
  std::vector<Philox4x32> streams_;
};

/// Topology-aware per-worker schedule over a GraphPartition
/// (gen/partition.hpp) with stochastic boundary stealing — the partitioned
/// alternative to DirectionPlan, sharing its interface so the engine bodies
/// serve both (run_engine_with_plan).
///
/// Worker w of a team of T executes partitions {w, w+T, w+2T, ...}
/// round-robin; partition p draws from its OWN Philox stream (keyed by seed
/// and p), and the position of sweep s's t-th draw in that stream is
/// s * size_p + t — independent of which worker executes it.  The direction
/// multiset for a fixed (seed, partition, steal_rate) is therefore
/// invariant across team sizes: the partitioned analogue of the shared
/// scope's stream-tiling invariance, with the same test obligations
/// (tests/test_partition.cpp).
///
/// Each draw consumes one 64-bit word: the high 32 bits decide owned-range
/// vs halo against a fixed threshold (round(steal_rate * 2^32)); the low 32
/// bits select the index inside the chosen set by 32-bit multiply reduction
/// (bias <= set_size / 2^32, negligible at cache-line-sized partitions).
/// Using disjoint halves keeps the steal decision from biasing the
/// within-set position.  A partition with an empty halo never steals.
///
/// The borrowed GraphPartition must outlive the plan (the engine run borrows
/// it from the prepared handle's partition analysis).
class PartitionedDirectionPlan {
 public:
  PartitionedDirectionPlan(std::uint64_t seed, const GraphPartition& partition,
                           double steal_rate, int team)
      : part_(&partition),
        team_(team),
        threshold_(steal_threshold(steal_rate)) {
    const int count = partition.count();
    streams_.reserve(static_cast<std::size_t>(count));
    for (int p = 0; p < count; ++p)
      streams_.emplace_back(splitmix64(
          seed + 0x9E3779B97F4A7C15ull * static_cast<std::uint64_t>(p + 1)));
    // Prefix sums of the owned-partition sizes per worker: cum_[w][j] is
    // the first within-sweep position of worker w's j-th partition
    // (partition id w + j*T).
    cum_.resize(static_cast<std::size_t>(team));
    for (int w = 0; w < team; ++w) {
      std::vector<index_t>& cum = cum_[static_cast<std::size_t>(w)];
      cum.push_back(0);
      for (int p = w; p < count; p += team)
        cum.push_back(cum.back() + partition.size_of(p));
    }
  }

  /// Updates worker w performs per sweep (the total size of its owned
  /// partitions; the team-wide sum is n).
  [[nodiscard]] index_t per_sweep(int w) const {
    return cum_[static_cast<std::size_t>(w)].back();
  }

  [[nodiscard]] std::uint64_t total_updates(int w, int sweeps) const {
    return static_cast<std::uint64_t>(sweeps) *
           static_cast<std::uint64_t>(per_sweep(w));
  }

  /// Direction for worker w's t-th update of sweep `sweep` (barrier mode).
  [[nodiscard]] index_t pick_in_sweep(int w, int sweep, index_t t) const {
    const std::vector<index_t>& cum = cum_[static_cast<std::size_t>(w)];
    const std::size_t j = segment_of(cum, t);
    const int p = w + static_cast<int>(j) * team_;
    const std::uint64_t k =
        static_cast<std::uint64_t>(sweep) *
            static_cast<std::uint64_t>(part_->size_of(p)) +
        static_cast<std::uint64_t>(t - cum[j]);
    return map_draw(streams_[static_cast<std::size_t>(p)].at(k), p);
  }

  /// Direction for worker w's k-th update in free-running/timed numbering
  /// (sweep-major: sweep k / per_sweep, step k % per_sweep).  Requires
  /// per_sweep(w) > 0 — the engine never asks a worker with no owned rows
  /// for a direction (its total is 0).
  [[nodiscard]] index_t pick(int w, std::uint64_t k) const {
    const std::uint64_t mine = static_cast<std::uint64_t>(per_sweep(w));
    return pick_in_sweep(w, static_cast<int>(k / mine),
                         static_cast<index_t>(k % mine));
  }

  /// out[i] = pick_in_sweep(w, sweep, t0 + i), batched: bulk Philox words
  /// per partition segment, then the steal/reduce map in place.
  void fill_in_sweep(int w, int sweep, index_t t0, std::size_t count,
                     index_t* out) const {
    const std::vector<index_t>& cum = cum_[static_cast<std::size_t>(w)];
    index_t t = t0;
    std::size_t written = 0;
    while (written < count) {
      const std::size_t j = segment_of(cum, t);
      const int p = w + static_cast<int>(j) * team_;
      const index_t size = part_->size_of(p);
      const std::size_t seg = static_cast<std::size_t>(std::min<index_t>(
          cum[j + 1] - t, static_cast<index_t>(count - written)));
      const std::uint64_t k0 = static_cast<std::uint64_t>(sweep) *
                                   static_cast<std::uint64_t>(size) +
                               static_cast<std::uint64_t>(t - cum[j]);
      std::uint64_t* const words =
          reinterpret_cast<std::uint64_t*>(out + written);
      streams_[static_cast<std::size_t>(p)].fill_at(k0, seg, words);
      for (std::size_t i = 0; i < seg; ++i)
        out[written + i] = map_draw(words[i], p);
      written += seg;
      t += static_cast<index_t>(seg);
    }
  }

  /// out[i] = pick(w, k0 + i); a chunk may span sweep boundaries.
  void fill(int w, std::uint64_t k0, std::size_t count, index_t* out) const {
    const std::uint64_t mine = static_cast<std::uint64_t>(per_sweep(w));
    std::size_t written = 0;
    while (written < count) {
      const std::uint64_t k = k0 + static_cast<std::uint64_t>(written);
      const index_t t = static_cast<index_t>(k % mine);
      const std::size_t seg = static_cast<std::size_t>(std::min<std::uint64_t>(
          mine - static_cast<std::uint64_t>(t),
          static_cast<std::uint64_t>(count - written)));
      fill_in_sweep(w, static_cast<int>(k / mine), t, seg, out + written);
      written += seg;
    }
  }

  [[nodiscard]] int team() const noexcept { return team_; }

 private:
  [[nodiscard]] static std::uint32_t steal_threshold(double rate) noexcept {
    if (rate <= 0.0) return 0;
    const double scaled = rate * 4294967296.0;  // 2^32
    return scaled >= 4294967295.0 ? 0xFFFFFFFFu
                                  : static_cast<std::uint32_t>(scaled);
  }

  /// Index j with cum[j] <= t < cum[j+1], skipping empty partitions (cum is
  /// short: ceil(partitions/team) entries, a linear walk beats a search).
  [[nodiscard]] static std::size_t segment_of(const std::vector<index_t>& cum,
                                              index_t t) noexcept {
    std::size_t j = 0;
    while (cum[j + 1] <= t) ++j;
    return j;
  }

  [[nodiscard]] index_t map_draw(std::uint64_t u, int p) const noexcept {
    const std::uint64_t lo32 = u & 0xFFFFFFFFull;
    const std::vector<index_t>& halo =
        part_->halo[static_cast<std::size_t>(p)];
    if (static_cast<std::uint32_t>(u >> 32) < threshold_ && !halo.empty())
      return halo[(lo32 * static_cast<std::uint64_t>(halo.size())) >> 32];
    return part_->lo_of(p) +
           static_cast<index_t>(
               (lo32 * static_cast<std::uint64_t>(part_->size_of(p))) >> 32);
  }

  const GraphPartition* part_;
  int team_;
  std::uint32_t threshold_;
  std::vector<Philox4x32> streams_;
  std::vector<std::vector<index_t>> cum_;
};

/// Maps the runtime (atomic_writes, scan) option pair onto the compile-time
/// kernel grid: invokes fn.operator()<kAtomicWrites, kScan>() for the
/// matching specialization.  Shared by the single-RHS and least-squares
/// solvers (and any future kernel axis) so the 2x2 dispatch ladder lives in
/// one place.
template <typename Fn>
void dispatch_atomic_scan(const AsyncRgsOptions& options, Fn&& fn) {
  const bool reassoc = options.scan == ScanMode::kReassociated;
  if (options.atomic_writes) {
    if (reassoc)
      fn.template operator()<true, ScanMode::kReassociated>();
    else
      fn.template operator()<true, ScanMode::kPinned>();
  } else {
    if (reassoc)
      fn.template operator()<false, ScanMode::kReassociated>();
    else
      fn.template operator()<false, ScanMode::kPinned>();
  }
}

/// Whether a team-parallel residual reduction is expected to beat the serial
/// path for `workers` participants on a host with `hardware_threads`
/// schedulable threads.  On oversubscribed hosts (hardware_threads <
/// workers) the reduction's barriers serialize through the scheduler — each
/// rendezvous costs context switches rather than core-parallel work — so the
/// residual functors fall back to computing on worker 0 alone while the rest
/// of the team proceeds straight to the engine's own synchronization
/// barrier.  An unknown hardware count (0) keeps the parallel path.  The
/// heuristic and its trade-offs are documented in docs/TUNING.md.
[[nodiscard]] inline bool team_residual_profitable(
    int workers, unsigned hardware_threads) noexcept {
  return workers <= 1 || hardware_threads == 0 ||
         static_cast<int>(hardware_threads) >= workers;
}

[[nodiscard]] inline bool team_residual_profitable(int workers) noexcept {
  return team_residual_profitable(workers,
                                  std::thread::hardware_concurrency());
}

/// Splits [0, n) into `team` contiguous chunks (first n%team chunks one
/// longer) and returns worker w's [lo, hi) — the partitioning used for
/// team-parallel residual reductions.
struct RowChunk {
  index_t lo;
  index_t hi;
};
[[nodiscard]] inline RowChunk chunk_of(index_t n, int w, int team) noexcept {
  const index_t base = n / team;
  const index_t extra = n % team;
  const index_t lo = base * w + std::min<index_t>(w, extra);
  return {lo, lo + base + (w < extra ? 1 : 0)};
}

/// Team-wide sum reduction for residual checks at synchronization points.
/// Every rendezvoused worker calls run(id, team, partial_fn); partial_fn(w,
/// team) returns worker w's share of the sum.  The reduced total is returned
/// on worker 0 (other workers return 0.0, which the engine ignores).  The
/// internal barrier is sized for the full team, so run() must be called by
/// all `workers` participants whenever team > 1 — the engine guarantees this
/// by invoking the residual functor between its synchronization barriers.
class TeamReduce {
 public:
  explicit TeamReduce(int workers)
      : barrier_(workers), partial_(static_cast<std::size_t>(workers)) {}

  template <typename PartialFn>
  double run(int id, int team, PartialFn&& partial) {
    if (team <= 1) return partial(0, 1);
    partial_[static_cast<std::size_t>(id)].value = partial(id, team);
    barrier_.arrive_and_wait();
    if (id != 0) return 0.0;
    double total = 0.0;
    for (int w = 0; w < team; ++w)
      total += partial_[static_cast<std::size_t>(w)].value;
    return total;
  }

  /// Serial evaluation with the identical chunked association as run():
  /// the partials for workers 0..team-1, summed in worker order on one
  /// thread.  Used by the oversubscription fallback (see
  /// team_residual_profitable) so the residual value is bit-identical to
  /// the team-parallel path regardless of which one the host selects.
  template <typename PartialFn>
  [[nodiscard]] double run_serial(int team, PartialFn&& partial) {
    double total = 0.0;
    for (int w = 0; w < team; ++w) total += partial(w, team);
    return total;
  }

  /// The barrier, for residual functors with a pre-reduction phase of their
  /// own (e.g. least-squares: materialize r = b - Ax before reducing g).
  [[nodiscard]] SpinBarrier& barrier() noexcept { return barrier_; }

 private:
  SpinBarrier barrier_;
  std::vector<Padded<double>> partial_;
};

/// Reusable solver scratch: per-worker direction buffers, the team-reduce
/// used by residual functors, a cache-line-strided per-worker double slab
/// (block gamma scratch), and a dense double buffer (least-squares residual).
/// A prepared problem handle (asyrgs/problem.hpp) owns one of these and hands
/// it to every solve so repeated solves against one matrix re-use the
/// allocations; the free-function wrappers create a throwaway instance.
///
/// Thread-safety inside a run: prepare() must be called before the team
/// starts; after that each worker touches only its own dirs(w, ...) slot, so
/// no two workers ever grow the same vector.  Across runs the scratch is
/// single-owner (the handle serializes solves).
class EngineScratch {
 public:
  /// Sizes the per-worker slot array.  Must be called before run_team and
  /// never during one.
  void prepare(int workers) {
    if (static_cast<int>(dirs_.size()) < workers)
      dirs_.resize(static_cast<std::size_t>(workers));
  }

  /// Worker w's direction buffer with room for `capacity` picks.  Grows
  /// (never shrinks), counting each growth as one allocation event.
  [[nodiscard]] index_t* dirs(int w, std::size_t capacity) {
    std::vector<index_t>& buf = dirs_[static_cast<std::size_t>(w)];
    if (buf.size() < capacity) {
      buf.resize(capacity);
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
    return buf.data();
  }

  /// Team reduction sized for `workers`, rebuilt only when the team size
  /// changes between solves.
  [[nodiscard]] TeamReduce& reduce(int workers) {
    if (!reduce_ || reduce_workers_ != workers) {
      reduce_.emplace(workers);
      reduce_workers_ = workers;
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
    return *reduce_;
  }

  /// Cache-line-aligned slab of `workers * stride` doubles (block solver
  /// gamma scratch; stride must already include the false-sharing guard).
  [[nodiscard]] double* slab(int workers, std::size_t stride) {
    const std::size_t need = stride * static_cast<std::size_t>(workers);
    if (slab_.size() < need) {
      slab_.resize(need);
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
    return slab_.data();
  }

  /// Dense double buffer of at least `size` entries (least-squares residual
  /// r = b - A x at synchronization points).
  [[nodiscard]] double* dense(std::size_t size) {
    if (dense_.size() < size) {
      dense_.resize(size);
      allocations_.fetch_add(1, std::memory_order_relaxed);
    }
    return dense_.data();
  }

  /// Number of growth events so far — a prepared handle's second solve with
  /// unchanged shape/team must not increase this (asserted by tests).
  [[nodiscard]] long long allocations() const noexcept {
    return allocations_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::vector<index_t>> dirs_;
  std::optional<TeamReduce> reduce_;
  int reduce_workers_ = 0;
  aligned_vector<double> slab_;
  std::vector<double> dense_;
  std::atomic<long long> allocations_{0};
};

/// Sampling configuration of one engine run.  Default-constructed =
/// uniform draws, no refresh — the pre-sampling engine, byte for byte.
struct EngineSampling {
  /// Distribution of the direction draws; null (or kUniform) keeps the
  /// uniform multiply-reduction path.  Borrowed for the duration of the
  /// run; weighted draws require RandomizationScope::kShared and a
  /// direction count equal to the engine's n.
  const DirectionSampler* sampler = nullptr;
  /// Residual-policy table refresh, invoked on worker 0 between the two
  /// synchronization barriers (the rest of the team is parked at the
  /// second barrier, so the callback may read the iterate and rebuild the
  /// sampler's table race-free).  Called once per rendezvous — per sweep
  /// in kBarrierPerSweep, per round in kTimedBarrier, never in
  /// kFreeRunning (which has no sync points; callers requiring refresh
  /// must validate the mode).  The callback owns its own cadence (e.g.
  /// rebuild every k-th call).
  std::function<void()> refresh;
};

/// Generic execution engine shared by the single-RHS, block, and
/// least-squares asynchronous solvers.
///
/// `update(worker, r, r_ahead)` performs one coordinate update on direction
/// r; r_ahead is a direction the worker will execute kPrefetchDistance picks
/// later (clamped to the refill chunk), for cache prefetching — functors may
/// ignore it.  `residual(worker,
/// team)` evaluates the convergence metric at synchronization points; it is
/// called by *every* rendezvoused worker (team-parallel reduction — see
/// TeamReduce) and only worker 0's return value is used.  The engine calls
/// it only when options request history tracking or a tolerance.
///
/// The thread pool may shrink a team to 1 on nested calls; the engine then
/// builds the matching single-worker plan lazily (make_plan(team)) instead
/// of paying for a throwaway fallback plan in every worker.
///
/// `scratch` (optional) supplies reusable per-worker direction buffers; a
/// prepared handle passes its own so repeated solves skip the allocations,
/// while one-shot callers leave it null and pay a local scratch per call.
///
/// This is the plan-generic core: `make_plan(team)` builds the direction
/// schedule (DirectionPlan or PartitionedDirectionPlan — any type with the
/// shared per_sweep/total_updates/fill/fill_in_sweep interface) for a given
/// team size, so the three synchronization-mode bodies exist once.
/// run_engine_sampled below instantiates it with DirectionPlan and is the
/// entry point for everything unpartitioned; the partitioned solve path
/// (problem.cpp) passes a PartitionedDirectionPlan factory.  `refresh` is
/// the EngineSampling rendezvous callback (empty = none).
template <typename PlanFactory, typename UpdateFn, typename ResidualFn>
void run_engine_with_plan(ThreadPool& pool, const AsyncRgsOptions& options,
                          index_t n, int workers, PlanFactory&& make_plan,
                          const std::function<void()>& refresh,
                          UpdateFn&& update, ResidualFn&& residual,
                          AsyncRgsReport& report,
                          EngineScratch* scratch = nullptr) {
  using Plan = std::decay_t<decltype(make_plan(1))>;
  EngineScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;
  scratch->prepare(workers);
  const bool check_enabled = options.track_history || options.rel_tol > 0.0;
  const int sweeps = options.sweeps;
  const long long total_target =
      static_cast<long long>(sweeps) * static_cast<long long>(n);

  if (options.sync == SyncMode::kFreeRunning) {
    const Plan plan = make_plan(workers);
    pool.run_team(workers, [&](int id, int team) {
      // The pool may shrink the team on nested calls; rebuild the plan so
      // the partitioning matches the actual team (lazily — the common
      // team == workers case pays nothing).
      std::optional<Plan> shrunk;
      const Plan* my_plan = &plan;
      if (team != workers) {
        shrunk.emplace(make_plan(team));
        my_plan = &*shrunk;
      }
      const std::uint64_t my_total = my_plan->total_updates(id, sweeps);
      const std::uint64_t per_sweep =
          static_cast<std::uint64_t>(std::max<index_t>(my_plan->per_sweep(id), 1));
      // Yield once per sweep-equivalent, checked only at refill boundaries
      // (no per-update counter work).  On oversubscribed hosts a worker
      // would otherwise burn its whole budget in a few scheduling quanta,
      // making the effective delay tau unbounded and stalling owner-computes
      // partitions; on dedicated hosts the yield stays one syscall per
      // sweep-equivalent, never one per refill.
      const std::size_t chunk_cap = static_cast<std::size_t>(
          std::min<std::uint64_t>(kDirectionChunk, per_sweep));
      index_t* const dirs = scratch->dirs(id, chunk_cap);
      std::uint64_t k = 0;
      std::uint64_t since_yield = 0;
      while (k < my_total) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk_cap, my_total - k));
        my_plan->fill(id, k, chunk, dirs);
        const index_t* d = dirs;
        for (std::size_t i = 0; i < chunk; ++i)
          update(id, d[i], d[std::min(i + kPrefetchDistance, chunk - 1)]);
        k += chunk;
        since_yield += chunk;
        if (team > 1 && since_yield >= per_sweep) {
          since_yield = 0;
          std::this_thread::yield();
        }
      }
    });
    report.sweeps_done = sweeps;
    report.updates = total_target;
    return;
  }

  if (options.sync == SyncMode::kBarrierPerSweep) {
    const Plan plan = make_plan(workers);
    SpinBarrier barrier(workers);
    std::atomic<bool> stop{false};
    std::atomic<int> sweeps_done{0};
    pool.run_team(workers, [&](int id, int team) {
      const bool full_team = (team == workers && team > 1);
      std::optional<Plan> shrunk;
      const Plan* my_plan = &plan;
      if (team != workers) {
        shrunk.emplace(make_plan(team));
        my_plan = &*shrunk;
      }
      const index_t mine = my_plan->per_sweep(id);
      const index_t chunk_cap =
          std::min<index_t>(static_cast<index_t>(kDirectionChunk),
                            std::max<index_t>(mine, 1));
      index_t* const dirs =
          scratch->dirs(id, static_cast<std::size_t>(chunk_cap));
      for (int sweep = 0; sweep < sweeps; ++sweep) {
        index_t t = 0;
        while (t < mine) {
          const std::size_t chunk =
              static_cast<std::size_t>(std::min<index_t>(chunk_cap, mine - t));
          my_plan->fill_in_sweep(id, sweep, t, chunk, dirs);
          const index_t* d = dirs;
          for (std::size_t i = 0; i < chunk; ++i)
            update(id, d[i], d[std::min(i + kPrefetchDistance, chunk - 1)]);
          t += static_cast<index_t>(chunk);
        }
        if (full_team) barrier.arrive_and_wait();
        const double rel = check_enabled ? residual(id, team) : 0.0;
        if (id == 0) {
          sweeps_done.store(sweep + 1, std::memory_order_relaxed);
          if (check_enabled) {
            report.final_relative_residual = rel;
            if (options.track_history) report.residual_history.push_back(rel);
            if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
              report.converged = true;
              stop.store(true, std::memory_order_release);
            }
          }
          // Residual-policy table refresh: the team is parked at the next
          // barrier, so worker 0 may rebuild the sampler race-free; the
          // barrier release orders the new table before any later draw.
          if (refresh && !stop.load(std::memory_order_relaxed)) refresh();
        }
        if (full_team) barrier.arrive_and_wait();
        if (stop.load(std::memory_order_acquire)) break;
      }
    });
    report.sweeps_done = sweeps_done.load(std::memory_order_relaxed);
    report.updates = static_cast<long long>(report.sweeps_done) *
                     static_cast<long long>(n);
    return;
  }

  // kTimedBarrier: rounds of `sync_interval_seconds` of free iteration
  // followed by a rendezvous.  Each worker runs on its own clock, so all
  // arrive at the barrier at nearly the same moment regardless of load
  // imbalance (the Section 5 "time based scheme").  The clock is consulted
  // once per direction-buffer refill — at most kDirectionChunk (and at most
  // one sweep-equivalent) of updates between checks.
  const Plan plan = make_plan(workers);
  SpinBarrier barrier(workers);
  std::atomic<bool> stop{false};
  std::atomic<long long> updates_done{0};
  pool.run_team(workers, [&](int id, int team) {
    const bool full_team = (team == workers && team > 1);
    std::optional<Plan> shrunk;
    const Plan* my_plan = &plan;
    if (team != workers) {
      shrunk.emplace(make_plan(team));
      my_plan = &*shrunk;
    }
    const std::uint64_t my_total = my_plan->total_updates(id, sweeps);
    const std::uint64_t per_sweep = static_cast<std::uint64_t>(
        std::max<index_t>(my_plan->per_sweep(id), 1));
    const std::size_t chunk_cap = static_cast<std::size_t>(
        std::min<std::uint64_t>(kDirectionChunk, per_sweep));
    index_t* const dirs = scratch->dirs(id, chunk_cap);
    std::uint64_t k = 0;
    std::uint64_t since_yield = 0;
    while (!stop.load(std::memory_order_acquire)) {
      WallTimer round_timer;
      std::uint64_t done_this_round = 0;
      while (k < my_total) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk_cap, my_total - k));
        my_plan->fill(id, k, chunk, dirs);
        const index_t* d = dirs;
        for (std::size_t i = 0; i < chunk; ++i)
          update(id, d[i], d[std::min(i + kPrefetchDistance, chunk - 1)]);
        k += chunk;
        done_this_round += chunk;
        // Refill boundary: yield once per sweep-equivalent so the scheduler
        // rotates the team, then check whether this round's time budget is
        // spent (clock consulted per refill, not per update).
        since_yield += chunk;
        if (team > 1 && since_yield >= per_sweep) {
          since_yield = 0;
          std::this_thread::yield();
        }
        if (round_timer.seconds() >= options.sync_interval_seconds) break;
      }
      updates_done.fetch_add(static_cast<long long>(done_this_round),
                             std::memory_order_relaxed);
      if (full_team) barrier.arrive_and_wait();
      const double rel = check_enabled ? residual(id, team) : 0.0;
      if (id == 0) {
        bool should_stop =
            updates_done.load(std::memory_order_relaxed) >= total_target;
        if (check_enabled) {
          report.final_relative_residual = rel;
          if (options.track_history) report.residual_history.push_back(rel);
          if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
            report.converged = true;
            should_stop = true;
          }
        }
        // Same rendezvous-refresh contract as kBarrierPerSweep above.
        if (refresh && !should_stop) refresh();
        if (should_stop) stop.store(true, std::memory_order_release);
      }
      if (full_team) barrier.arrive_and_wait();
    }
  });
  report.updates = updates_done.load(std::memory_order_relaxed);
  report.sweeps_done =
      static_cast<int>(report.updates / std::max<index_t>(n, 1));
}

/// Sampled engine run over the shared/owner-computes DirectionPlan — the
/// entry point for every unpartitioned solve.  Validates the sampling
/// contract, then delegates to run_engine_with_plan with a DirectionPlan
/// factory (byte-identical to the historical inline bodies).
template <typename UpdateFn, typename ResidualFn>
void run_engine_sampled(ThreadPool& pool, const AsyncRgsOptions& options,
                        index_t n, int workers,
                        const EngineSampling& sampling, UpdateFn&& update,
                        ResidualFn&& residual, AsyncRgsReport& report,
                        EngineScratch* scratch = nullptr) {
  if (sampling.sampler != nullptr && sampling.sampler->weighted_draws()) {
    require(options.scope == RandomizationScope::kShared,
            "run_engine: weighted direction sampling requires the shared "
            "randomization scope");
    require(sampling.sampler->directions() == n,
            "run_engine: sampler direction count must match the engine");
  }
  require(!sampling.refresh || options.sync != SyncMode::kFreeRunning,
          "run_engine: sampler refresh needs synchronization points; "
          "kFreeRunning has none");
  run_engine_with_plan(
      pool, options, n, workers,
      [&](int team) {
        return DirectionPlan(options, n, team, sampling.sampler);
      },
      sampling.refresh, std::forward<UpdateFn>(update),
      std::forward<ResidualFn>(residual), report, scratch);
}

/// Uniform-sampling engine run — the historical entry point.  Delegates
/// with a default EngineSampling, which compiles to the exact pre-sampling
/// draw path (null sampler, no refresh).
template <typename UpdateFn, typename ResidualFn>
void run_engine(ThreadPool& pool, const AsyncRgsOptions& options, index_t n,
                int workers, UpdateFn&& update, ResidualFn&& residual,
                AsyncRgsReport& report, EngineScratch* scratch = nullptr) {
  run_engine_sampled(pool, options, n, workers, EngineSampling{},
                     std::forward<UpdateFn>(update),
                     std::forward<ResidualFn>(residual), report, scratch);
}

}  // namespace asyrgs::detail
