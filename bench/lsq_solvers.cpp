// Ablation D — Overdetermined least squares (Section 8, Theorem 5).
//
// Regression directly on the synthetic document-term factor F (m x n,
// m >> n): asynchronous randomized coordinate descent (iteration (21))
// against the sequential RCD (iteration (20)), randomized Kaczmarz, and
// CGNR.  Reports convergence (normal-equations residual) and the
// thread-scaling of the asynchronous variant.  Expected shape: async LSQ
// converges linearly and scales with threads; its per-iteration cost is
// higher than sequential RCD (which maintains the residual), matching the
// paper's cost analysis.
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("lsq_solvers",
                "Section 8: async least squares vs RCD, Kaczmarz, CGNR");
  auto terms = cli.add_int("terms", 1500, "columns of F (n)");
  auto documents = cli.add_int("documents", 9000, "rows of F (m)");
  auto sweeps = cli.add_int("sweeps", 40, "sweep budget for each method");
  auto threads_opt =
      cli.add_int_list("threads", {}, "thread sweep for async LSQ");
  cli.parse(argc, argv);

  print_banner("lsq_solvers", "Section 8 / Theorem 5 (methodological bench)");
  SocialGramOptions gopt;
  gopt.terms = *terms;
  gopt.documents = *documents;
  gopt.mean_doc_length = 10;
  gopt.seed = 42;
  const SocialGram system = make_social_gram(gopt);
  // Terms that never occur give empty columns; drop them as the paper did.
  const CsrMatrix f = drop_empty_columns(system.factor).matrix;
  const CsrMatrix ft = f.transpose();
  std::cout << "# factor: " << f.rows() << " x " << f.cols()
            << " nnz=" << f.nnz() << "\n";

  const std::vector<double> coeffs = random_vector(f.cols(), 3);
  std::vector<double> labels = rhs_from_solution(f, coeffs);
  // Make the system inconsistent (real regression noise).
  {
    Xoshiro256 rng(5);
    for (double& v : labels) v += 0.01 * normal(rng);
  }

  ThreadPool& pool = ThreadPool::global();
  const int s = static_cast<int>(*sweeps);

  Table table({"method", "threads", "sweeps/iters", "normal_residual",
               "time_s"});

  // Sequential RCD (iteration (20)).
  {
    std::vector<double> x(f.cols(), 0.0);
    RgsOptions opt;
    opt.sweeps = s;
    opt.step_size = 0.95;
    opt.track_history = true;
    WallTimer t;
    const RgsReport rep = rcd_lsq_solve(f, labels, x, opt);
    table.add_row({"rcd (seq)", "1", std::to_string(rep.sweeps_done),
                   fmt_sci(rep.final_relative_residual),
                   fmt_fixed(t.seconds(), 3)});
  }

  // Randomized Kaczmarz (consistent-system baseline; on noisy data it
  // stalls at the noise floor, as theory predicts).
  {
    std::vector<double> x(f.cols(), 0.0);
    SolveOptions opt;
    opt.max_iterations = s;
    opt.rel_tol = 0.0;
    WallTimer t;
    const SolveReport rep = kaczmarz_solve(f, labels, x, opt, 17);
    // Report its *normal equations* residual for comparability.
    std::vector<double> r(labels.size());
    f.multiply(x.data(), r.data());
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = labels[i] - r[i];
    std::vector<double> g(static_cast<std::size_t>(f.cols()));
    f.multiply_transpose(r.data(), g.data());
    std::vector<double> g0(static_cast<std::size_t>(f.cols()));
    f.multiply_transpose(labels.data(), g0.data());
    table.add_row({"kaczmarz", "1", std::to_string(rep.iterations),
                   fmt_sci(nrm2(g) / nrm2(g0)), fmt_fixed(t.seconds(), 3)});
  }

  // CGNR.
  {
    std::vector<double> x(f.cols(), 0.0);
    SolveOptions opt;
    opt.max_iterations = s;
    opt.rel_tol = 0.0;
    WallTimer t;
    const SolveReport rep = cgnr_solve(pool, f, labels, x, opt);
    table.add_row({"cgnr", "1", std::to_string(rep.iterations),
                   fmt_sci(rep.final_relative_residual),
                   fmt_fixed(t.seconds(), 3)});
  }

  // Async LSQ across threads (iteration (21)).
  for (int threads : thread_sweep_from(*threads_opt)) {
    std::vector<double> x(f.cols(), 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = s;
    opt.step_size = 0.95;
    opt.workers = threads;
    opt.seed = 1;
    WallTimer t;
    async_lsq_solve(pool, f, ft, labels, x, opt);
    const double secs = t.seconds();
    // Normal-equations residual of the final iterate.
    std::vector<double> r(labels.size());
    f.multiply(x.data(), r.data());
    for (std::size_t i = 0; i < r.size(); ++i) r[i] = labels[i] - r[i];
    std::vector<double> g(static_cast<std::size_t>(f.cols()));
    f.multiply_transpose(r.data(), g.data());
    std::vector<double> g0(static_cast<std::size_t>(f.cols()));
    f.multiply_transpose(labels.data(), g0.data());
    table.add_row({"async-lsq", std::to_string(threads), std::to_string(s),
                   fmt_sci(nrm2(g) / nrm2(g0)), fmt_fixed(secs, 3)});
  }

  table.print(std::cout);
  std::cout << "# shape check: async-lsq reaches RCD-comparable accuracy "
               "and its wall time drops with threads;\n"
            << "# CGNR converges in far fewer iterations (Krylov vs basic "
               "iteration), as the paper concedes.\n";
  return 0;
}
