// Matrix Market (.mtx) input/output.
//
// Supports the coordinate format with `real`/`integer` fields and
// `general`/`symmetric` symmetry, which covers the SuiteSparse-style SPD
// matrices a user would feed this solver, plus dense vector I/O in the
// `array` format so experiment artifacts can be round-tripped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Reads a Matrix Market coordinate file into CSR.  Symmetric files are
/// expanded to full storage.  Throws asyrgs::Error on malformed input.
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes CSR in `matrix coordinate real general` format.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

/// Reads/writes a dense vector in `matrix array real general` format
/// (n x 1).
[[nodiscard]] std::vector<double> read_vector_market(std::istream& in);
void write_vector_market(std::ostream& out, const std::vector<double>& v);

}  // namespace asyrgs
