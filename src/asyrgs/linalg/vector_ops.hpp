// Dense vector kernels (serial + pool-parallel variants).
//
// Kernels take raw pointers plus length so they work on vector<double>,
// MultiVector columns, and solver scratch alike; std::vector overloads are
// provided for the common case.
#pragma once

#include <vector>

#include "asyrgs/support/common.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// <x, y> (serial).
[[nodiscard]] double dot(const double* x, const double* y, index_t n);
[[nodiscard]] double dot(const std::vector<double>& x,
                         const std::vector<double>& y);

/// ||x||_2 (serial).
[[nodiscard]] double nrm2(const double* x, index_t n);
[[nodiscard]] double nrm2(const std::vector<double>& x);

/// y += alpha x.
void axpy(double alpha, const double* x, double* y, index_t n);
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

/// x *= alpha.
void scal(double alpha, double* x, index_t n);
void scal(double alpha, std::vector<double>& x);

/// out = x - y.
[[nodiscard]] std::vector<double> subtract(const std::vector<double>& x,
                                           const std::vector<double>& y);

/// max_i |x_i|.
[[nodiscard]] double max_abs(const std::vector<double>& x);

/// Pool-parallel dot product (deterministic: fixed per-worker partial sums
/// combined in worker order).
[[nodiscard]] double dot_parallel(ThreadPool& pool, const double* x,
                                  const double* y, index_t n, int workers = 0);

/// Pool-parallel axpy.
void axpy_parallel(ThreadPool& pool, double alpha, const double* x, double* y,
                   index_t n, int workers = 0);

}  // namespace asyrgs
