// Dense linear algebra tests: vector kernels, multivectors, norms, Lanczos
// and spectrum estimation against closed-form Laplacian eigenvalues.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/eigen.hpp"
#include "asyrgs/linalg/lanczos.hpp"
#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/linalg/vector_ops.hpp"

namespace asyrgs {
namespace {

// --- vector kernels ------------------------------------------------------------

TEST(VectorOps, DotAxpyNrm2) {
  std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(nrm2(x), std::sqrt(14.0));
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
  scal(0.5, y);
  EXPECT_DOUBLE_EQ(y[2], 6.0);
  EXPECT_DOUBLE_EQ(max_abs(y), 6.0);
  const auto d = subtract(x, y);
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  EXPECT_THROW((void)dot(x, {1.0}), Error);
}

TEST(VectorOps, ParallelVariantsMatchSerial) {
  ThreadPool pool(8);
  const index_t n = 100000;
  const std::vector<double> x = random_vector(n, 1);
  std::vector<double> y = random_vector(n, 2);
  std::vector<double> y2 = y;

  const double expect = dot(x.data(), y.data(), n);
  EXPECT_NEAR(dot_parallel(pool, x.data(), y.data(), n), expect,
              1e-9 * std::abs(expect));

  axpy(1.5, x.data(), y.data(), n);
  axpy_parallel(pool, 1.5, x.data(), y2.data(), n);
  for (index_t i = 0; i < n; i += 997) EXPECT_DOUBLE_EQ(y[i], y2[i]);
}

// --- multivector -----------------------------------------------------------------

TEST(MultiVector, RowMajorLayoutAndColumnAccess) {
  MultiVector m(3, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(m.data()[1], 2.0);  // row-major: (0,1) is element 1
  const auto col1 = m.column(1);
  EXPECT_DOUBLE_EQ(col1[0], 2.0);
  EXPECT_DOUBLE_EQ(col1[2], 5.0);

  std::vector<double> newcol = {7.0, 8.0, 9.0};
  m.set_column(0, newcol);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 8.0);
  EXPECT_THROW(m.set_column(0, {1.0}), Error);
  EXPECT_THROW(m.column(5), Error);
}

TEST(MultiVector, NormsAndAxpy) {
  MultiVector x(2, 2);
  x.at(0, 0) = 3.0;
  x.at(1, 0) = 4.0;
  x.at(0, 1) = 1.0;
  const auto norms = column_norms(x);
  EXPECT_DOUBLE_EQ(norms[0], 5.0);
  EXPECT_DOUBLE_EQ(norms[1], 1.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(x), std::sqrt(26.0));

  MultiVector y(2, 2);
  block_axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y.at(1, 0), 8.0);
  const auto diffs = column_diff_norms(x, y);
  EXPECT_DOUBLE_EQ(diffs[0], 5.0);  // ||x - 2x|| = ||x||
}

// --- norms ------------------------------------------------------------------------

TEST(Norms, ANormAgainstHandComputation) {
  const CsrMatrix a = laplacian_1d(2);  // [[2,-1],[-1,2]]
  const std::vector<double> x = {1.0, 1.0};
  // x^T A x = 2 - 1 - 1 + 2 = 2.
  EXPECT_DOUBLE_EQ(a_norm(a, x), std::sqrt(2.0));
}

TEST(Norms, ResidualAndRelativeResidual) {
  const CsrMatrix a = laplacian_1d(3);
  const std::vector<double> x_star = {1.0, 2.0, 3.0};
  const std::vector<double> b = rhs_from_solution(a, x_star);
  EXPECT_NEAR(residual_norm(a, b, x_star), 0.0, 1e-13);
  EXPECT_NEAR(relative_residual(a, b, x_star), 0.0, 1e-13);
  const std::vector<double> zero(3, 0.0);
  EXPECT_NEAR(relative_residual(a, b, zero), 1.0, 1e-13);
  EXPECT_NEAR(relative_a_norm_error(a, zero, x_star), 1.0, 1e-13);
  EXPECT_NEAR(a_norm_error(a, x_star, x_star), 0.0, 1e-13);
}

TEST(Norms, BlockRelativeResidual) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(5, 5);
  const MultiVector x_star = random_multivector(a.rows(), 3, 3);
  const MultiVector b = rhs_from_solution(a, x_star);
  EXPECT_NEAR(relative_residual_block(pool, a, b, x_star), 0.0, 1e-12);
  MultiVector zero(a.rows(), 3);
  EXPECT_NEAR(relative_residual_block(pool, a, b, zero), 1.0, 1e-12);
}

// --- tridiagonal eigensolver -------------------------------------------------------

TEST(Tridiag, TwoByTwoClosedForm) {
  // [[a, b], [b, c]] eigenvalues: (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2).
  const std::vector<double> d = {3.0, 1.0};
  const std::vector<double> e = {2.0};
  const auto eig = tridiag_eigenvalues(d, e);
  const double mid = 2.0, rad = std::sqrt(1.0 + 4.0);
  EXPECT_NEAR(eig[0], mid - rad, 1e-10);
  EXPECT_NEAR(eig[1], mid + rad, 1e-10);
}

TEST(Tridiag, ToeplitzMatchesClosedForm) {
  // (2,-1) Toeplitz tridiagonal == 1-D Laplacian spectrum.
  const index_t n = 25;
  const std::vector<double> d(n, 2.0);
  const std::vector<double> e(n - 1, -1.0);
  const auto eig = tridiag_eigenvalues(d, e);
  for (index_t k = 1; k <= n; ++k)
    EXPECT_NEAR(eig[k - 1], laplacian_1d_eigenvalue(n, k), 1e-9);
}

TEST(Tridiag, SturmCountIsMonotone) {
  const std::vector<double> d = {2.0, 2.0, 2.0};
  const std::vector<double> e = {-1.0, -1.0};
  EXPECT_EQ(tridiag_count_below(d, e, -1.0), 0);
  EXPECT_EQ(tridiag_count_below(d, e, 5.0), 3);
  int prev = 0;
  for (double x = -1.0; x <= 5.0; x += 0.05) {
    const int c = tridiag_count_below(d, e, x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(Tridiag, SingleElement) {
  const auto eig = tridiag_eigenvalues({4.5}, {});
  ASSERT_EQ(eig.size(), 1u);
  EXPECT_NEAR(eig[0], 4.5, 1e-12);
}

// --- Lanczos / spectrum estimation ---------------------------------------------------

TEST(Lanczos, ExactOnFullKrylovSpace) {
  ThreadPool pool(4);
  const index_t n = 60;
  const CsrMatrix a = laplacian_1d(n);
  const LanczosResult lz = lanczos_extreme(pool, a, static_cast<int>(n));
  EXPECT_NEAR(lz.lambda_min, laplacian_1d_eigenvalue(n, 1), 1e-7);
  EXPECT_NEAR(lz.lambda_max, laplacian_1d_eigenvalue(n, n), 1e-7);
}

TEST(Lanczos, PartialRunBracketsSpectrum) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(20, 20);
  const LanczosResult lz = lanczos_extreme(pool, a, 60);
  // Ritz values always lie inside the true spectrum (0, 8).
  EXPECT_GT(lz.lambda_min, 0.0);
  EXPECT_LT(lz.lambda_max, 8.0);
  // And with 60 steps the extreme ones are tight.
  EXPECT_LT(lz.lambda_min, 0.1);
  EXPECT_GT(lz.lambda_max, 7.5);
}

TEST(PowerMethod, FindsLambdaMax) {
  // Small n keeps the lambda_max / lambda_{max-1} gap wide enough for the
  // power method to converge in a reasonable iteration budget; Lanczos is
  // the production estimator.
  ThreadPool pool(4);
  const index_t n = 30;
  const CsrMatrix a = laplacian_1d(n);
  const PowerMethodResult pm = power_method(pool, a, 5000, 1e-13);
  EXPECT_TRUE(pm.converged);
  EXPECT_NEAR(pm.lambda_max, laplacian_1d_eigenvalue(n, n), 1e-3);
}

TEST(Spectrum, ConditionNumberOfLaplacian) {
  ThreadPool pool(4);
  const index_t n = 50;
  const CsrMatrix a = laplacian_1d(n);
  const SpectrumEstimate est = estimate_spectrum(pool, a, static_cast<int>(n));
  const double kappa_true =
      laplacian_1d_eigenvalue(n, n) / laplacian_1d_eigenvalue(n, 1);
  EXPECT_NEAR(est.condition / kappa_true, 1.0, 1e-5);
}

}  // namespace
}  // namespace asyrgs
