// Structural and numerical matrix properties used by the convergence theory.
//
// Theorems 2-4 of the paper are driven by two matrix functionals:
//
//   rho   = ||A||_inf / n = max_l (1/n) sum_r |A_lr|     (Theorems 2 and 3)
//   rho2  = max_l (1/n) sum_r A_lr^2                      (Theorem 4)
//
// plus row-sparsity statistics (the paper's "reference scenario" assumes the
// per-row nonzero count lies in [C1, C2] with C2/C1 small, which controls
// the delay bound tau = O(P)).
#pragma once

#include <vector>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Per-row nonzero statistics (the C1/C2 of the reference scenario).
struct RowNnzStats {
  nnz_t min = 0;       // C1
  nnz_t max = 0;       // C2
  double mean = 0.0;
  double ratio = 0.0;  // C2 / C1 (infinity mapped to max/1 when C1 == 0)
};

[[nodiscard]] RowNnzStats row_nnz_stats(const CsrMatrix& a);

/// Infinity norm: max_l sum_r |A_lr|.
[[nodiscard]] double inf_norm(const CsrMatrix& a);

/// Frobenius norm.
[[nodiscard]] double frobenius_norm(const CsrMatrix& a);

/// rho = ||A||_inf / n (Theorem 2).  Requires a square matrix.
[[nodiscard]] double rho(const CsrMatrix& a);

/// rho2 = max_l (1/n) sum_r A_lr^2 (Theorem 4).  Requires a square matrix.
[[nodiscard]] double rho2(const CsrMatrix& a);

/// True when A equals its transpose entrywise within `tol`.
[[nodiscard]] bool is_symmetric(const CsrMatrix& a, double tol = 0.0);

/// True when A is strictly (row) diagonally dominant:
/// |A_ii| > sum_{j != i} |A_ij| for every row.
[[nodiscard]] bool is_strictly_diagonally_dominant(const CsrMatrix& a);

/// Weak diagonal dominance (>=) with at least one strict row.
[[nodiscard]] bool is_weakly_diagonally_dominant(const CsrMatrix& a);

}  // namespace asyrgs
