#include "asyrgs/solve.hpp"

#include "asyrgs/problem.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

const char* method_name(SpdMethod m) {
  switch (m) {
    case SpdMethod::kAuto:
      return "auto";
    case SpdMethod::kAsyncRgs:
      return "asyrgs";
    case SpdMethod::kFcgAsyRgs:
      return "fcg+asyrgs";
    case SpdMethod::kCg:
      return "cg";
    case SpdMethod::kAsyncKaczmarz:
      return "kaczmarz";
  }
  return "?";
}

}  // namespace

SpdSolveSummary solve_spd(ThreadPool& pool, const CsrMatrix& a,
                          const std::vector<double>& b, std::vector<double>& x,
                          const SpdSolveOptions& options) {
  require(options.rel_tol > 0.0, "solve_spd: rel_tol must be positive");

  // One-shot use of the prepared-handle machinery: construction performs the
  // per-matrix analysis (diagonal reciprocals, optional symmetry check via
  // the matrix's cached transpose), solve() the per-call work.  The timer
  // starts after preparation, preserving the legacy convention that
  // summary.seconds excludes input validation.
  SpdProblem problem(pool, a, options.check_input);
  WallTimer timer;

  SolveControls controls;
  // kAuto passes through: SpdProblem::solve resolves it (rel_tol > 0 is
  // guaranteed above, so its rule reduces to the documented >= 1e-4 split).
  controls.method = options.method;
  controls.rel_tol = options.rel_tol;
  controls.seed = options.seed;
  controls.workers = options.threads;
  controls.scan = options.scan;
  controls.inner_sweeps = options.inner_sweeps;
  // AsyRGS runs the paper's occasional-synchronization scheme so the
  // tolerance is actually checked; Krylov methods take the outer cap.
  controls.sweeps = options.max_iterations > 0 ? options.max_iterations
                                               : 100000;
  controls.max_iterations = options.max_iterations;
  controls.sync = SyncMode::kBarrierPerSweep;

  SolveOutcome out = problem.solve(b, x, controls);

  SpdSolveSummary summary;
  summary.method_used = out.method_used;
  summary.converged = out.converged();
  summary.iterations = out.iterations;
  summary.relative_residual = out.relative_residual;
  summary.status = out.status;
  summary.description =
      out.description + " [" + method_name(out.method_used) + "]";
  summary.seconds = timer.seconds();
  return summary;
}

}  // namespace asyrgs
