#include "asyrgs/sparse/csr.hpp"

#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define ASYRGS_SCAN_SIMD 1
#include <immintrin.h>
#endif

namespace asyrgs {

namespace {

// --- reassociated row-scan kernels -------------------------------------------
//
// Same dispatch discipline as the bulk Philox kernels (support/prng.cpp):
// one widest-available implementation chosen once per process via cached
// __builtin_cpu_supports, with target attributes so a generic build still
// carries the AVX paths.  All variants compute the identical mathematical
// sum; only the rounding order differs (per-variant accumulator count and
// lane width), which is exactly the license ScanMode::kReassociated grants.
//
// One kernel family per storage policy:
//   int64/double  64-bit-index gathers (one __m512i of indices per 8 lanes)
//   int32/double  narrow gathers — a single __m256i of int32 indices feeds a
//                 full 8-double AVX-512 gather, halving index load traffic
//   int32/float   narrow gathers + half-width value loads widened in
//                 registers (cvtps_pd) before the double FMA
//
// AVX-512 tails: masked 512-bit loads (maskz_loadu_epi64/pd) are plain
// AVX512F, but masked *256-bit* loads of int32 indices or float values would
// require AVX512VL — so the narrow-policy tails copy the remainder into
// zero-padded stack buffers and keep the gather itself masked (no
// out-of-bounds x reads, no dependence on padded lanes even when x holds
// non-finite values).

#if defined(ASYRGS_SCAN_SIMD)

/// AVX2 gather + FMA, two 4-lane accumulators (8 products in flight);
/// int64 indices.
__attribute__((target("avx2,fma"))) double row_dot_avx2(
    const std::int64_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  nnz_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t + 4));
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t),
                         _mm256_i64gather_pd(x, i0, 8), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t + 4),
                         _mm256_i64gather_pd(x, i1, 8), s1);
  }
  const __m256d s = _mm256_add_pd(s0, s1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

// GCC 12's avx2intrin.h trips -W(maybe-)uninitialized on the i32gather
// intrinsics' undefined pass-through operand — the same header false
// positive the AVX-512 block below (and support/prng.cpp) suppresses.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

/// AVX2 narrow gather, two 4-lane accumulators; int32 indices (a __m128i of
/// indices per 4-double gather).
__attribute__((target("avx2,fma"))) double row_dot_avx2_i32(
    const std::int32_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  nnz_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + t));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + t + 4));
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t),
                         _mm256_i32gather_pd(x, i0, 8), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t + 4),
                         _mm256_i32gather_pd(x, i1, 8), s1);
  }
  const __m256d s = _mm256_add_pd(s0, s1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

/// AVX2 mixed: int32 narrow gather + float values widened with cvtps_pd.
__attribute__((target("avx2,fma"))) double row_dot_avx2_mixed(
    const std::int32_t* __restrict cols, const float* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  nnz_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m128i i0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + t));
    const __m128i i1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + t + 4));
    const __m256d v0 = _mm256_cvtps_pd(_mm_loadu_ps(vals + t));
    const __m256d v1 = _mm256_cvtps_pd(_mm_loadu_ps(vals + t + 4));
    s0 = _mm256_fmadd_pd(v0, _mm256_i32gather_pd(x, i0, 8), s0);
    s1 = _mm256_fmadd_pd(v1, _mm256_i32gather_pd(x, i1, 8), s1);
  }
  const __m256d s = _mm256_add_pd(s0, s1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

// GCC 12's avx512fintrin.h trips -W(maybe-)uninitialized on the unmasked
// intrinsics' _mm512_undefined_epi32 pass-through operand — the same header
// false positive support/prng.cpp suppresses around its AVX-512 kernel.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"

/// AVX-512 gather + FMA, two 8-lane accumulators (16 products in flight);
/// int64 indices.
__attribute__((target("avx512f"))) double row_dot_avx512(
    const std::int64_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m512d s0 = _mm512_setzero_pd();
  __m512d s1 = _mm512_setzero_pd();
  nnz_t t = 0;
  for (; t + 16 <= len; t += 16) {
    const __m512i i0 = _mm512_loadu_si512(cols + t);
    const __m512i i1 = _mm512_loadu_si512(cols + t + 8);
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                         _mm512_i64gather_pd(i0, x, 8), s0);
    s1 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t + 8),
                         _mm512_i64gather_pd(i1, x, 8), s1);
  }
  // Mid (one full 8-wide gather) and masked tail both fold into the same
  // vector accumulator — a single horizontal reduction per row, and medium
  // rows (17-31 nnz, common in Gram matrices) never leave the vector path.
  __m512d s = _mm512_add_pd(s0, s1);
  if (t + 8 <= len) {
    const __m512i idx = _mm512_loadu_si512(cols + t);
    s = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                        _mm512_i64gather_pd(idx, x, 8), s);
    t += 8;
  }
  if (t < len) {
    const __mmask8 m = static_cast<__mmask8>((1u << (len - t)) - 1u);
    const __m512i idx = _mm512_maskz_loadu_epi64(m, cols + t);
    const __m512d v = _mm512_maskz_loadu_pd(m, vals + t);
    const __m512d g = _mm512_mask_i64gather_pd(_mm512_setzero_pd(), m, idx,
                                               x, 8);
    s = _mm512_fmadd_pd(v, g, s);
  }
  return _mm512_reduce_add_pd(s);
}

/// AVX-512 narrow gather, two 8-lane accumulators; int32 indices — one
/// __m256i index load per full 8-double gather, half the index bytes of the
/// int64 kernel.  Tail indices go through a zero-padded stack buffer (a
/// masked 256-bit index load would need AVX512VL); the gather stays masked.
__attribute__((target("avx512f"))) double row_dot_avx512_i32(
    const std::int32_t* __restrict cols, const double* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m512d s0 = _mm512_setzero_pd();
  __m512d s1 = _mm512_setzero_pd();
  nnz_t t = 0;
  for (; t + 16 <= len; t += 16) {
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t + 8));
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                         _mm512_i32gather_pd(i0, x, 8), s0);
    s1 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t + 8),
                         _mm512_i32gather_pd(i1, x, 8), s1);
  }
  __m512d s = _mm512_add_pd(s0, s1);
  if (t + 8 <= len) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    s = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                        _mm512_i32gather_pd(idx, x, 8), s);
    t += 8;
  }
  if (t < len) {
    const __mmask8 m = static_cast<__mmask8>((1u << (len - t)) - 1u);
    alignas(32) std::int32_t ibuf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(ibuf, cols + t, static_cast<std::size_t>(len - t) *
                                    sizeof(std::int32_t));
    const __m256i idx =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(ibuf));
    const __m512d v = _mm512_maskz_loadu_pd(m, vals + t);
    const __m512d g = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m, idx,
                                               x, 8);
    s = _mm512_fmadd_pd(v, g, s);
  }
  return _mm512_reduce_add_pd(s);
}

/// AVX-512 mixed: int32 narrow gather + 8 float values per lane-set widened
/// with cvtps_pd — half the index bytes AND half the value bytes of the
/// full-width kernel.  Tail uses zero-padded stack buffers for indices and
/// values (masked 256-bit loads would need AVX512VL); padded value lanes are
/// 0 and the gather is masked, so padding never contributes.
__attribute__((target("avx512f"))) double row_dot_avx512_mixed(
    const std::int32_t* __restrict cols, const float* __restrict vals,
    nnz_t len, const double* __restrict x) noexcept {
  __m512d s0 = _mm512_setzero_pd();
  __m512d s1 = _mm512_setzero_pd();
  nnz_t t = 0;
  for (; t + 16 <= len; t += 16) {
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t + 8));
    const __m512d v0 = _mm512_cvtps_pd(_mm256_loadu_ps(vals + t));
    const __m512d v1 = _mm512_cvtps_pd(_mm256_loadu_ps(vals + t + 8));
    s0 = _mm512_fmadd_pd(v0, _mm512_i32gather_pd(i0, x, 8), s0);
    s1 = _mm512_fmadd_pd(v1, _mm512_i32gather_pd(i1, x, 8), s1);
  }
  __m512d s = _mm512_add_pd(s0, s1);
  if (t + 8 <= len) {
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    const __m512d v = _mm512_cvtps_pd(_mm256_loadu_ps(vals + t));
    s = _mm512_fmadd_pd(v, _mm512_i32gather_pd(idx, x, 8), s);
    t += 8;
  }
  if (t < len) {
    const __mmask8 m = static_cast<__mmask8>((1u << (len - t)) - 1u);
    alignas(32) std::int32_t ibuf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    alignas(32) float vbuf[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    std::memcpy(ibuf, cols + t, static_cast<std::size_t>(len - t) *
                                    sizeof(std::int32_t));
    std::memcpy(vbuf, vals + t,
                static_cast<std::size_t>(len - t) * sizeof(float));
    const __m256i idx =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(ibuf));
    const __m512d v = _mm512_cvtps_pd(_mm256_load_ps(vbuf));
    const __m512d g = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m, idx,
                                               x, 8);
    s = _mm512_fmadd_pd(v, g, s);
  }
  return _mm512_reduce_add_pd(s);
}

#pragma GCC diagnostic pop

#endif  // ASYRGS_SCAN_SIMD

template <class Index, class Value>
using RowDotFn = double (*)(const Index* __restrict, const Value* __restrict,
                            nnz_t, const double* __restrict) noexcept;

/// Widest available long-row kernel per policy, resolved once at load time
/// into a namespace-scope pointer — the per-row call is one predicted
/// indirect branch, with no function-local-static guard on the hot path.
RowDotFn<std::int64_t, double> pick_row_dot_reassoc_64d() noexcept {
#if defined(ASYRGS_SCAN_SIMD)
  if (__builtin_cpu_supports("avx512f")) return row_dot_avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return row_dot_avx2;
#endif
  return csr_row_dot_multiacc<std::int64_t, double>;  // shared def in csr.hpp
}

RowDotFn<std::int32_t, double> pick_row_dot_reassoc_32d() noexcept {
#if defined(ASYRGS_SCAN_SIMD)
  if (__builtin_cpu_supports("avx512f")) return row_dot_avx512_i32;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return row_dot_avx2_i32;
#endif
  return csr_row_dot_multiacc<std::int32_t, double>;
}

RowDotFn<std::int32_t, float> pick_row_dot_reassoc_32f() noexcept {
#if defined(ASYRGS_SCAN_SIMD)
  if (__builtin_cpu_supports("avx512f")) return row_dot_avx512_mixed;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return row_dot_avx2_mixed;
#endif
  return csr_row_dot_multiacc<std::int32_t, float>;
}

const RowDotFn<std::int64_t, double> g_row_dot_reassoc_long_64d =
    pick_row_dot_reassoc_64d();
const RowDotFn<std::int32_t, double> g_row_dot_reassoc_long_32d =
    pick_row_dot_reassoc_32d();
const RowDotFn<std::int32_t, float> g_row_dot_reassoc_long_32f =
    pick_row_dot_reassoc_32f();

}  // namespace

double csr_row_dot_reassoc_long(const std::int64_t* cols, const double* vals,
                                nnz_t len, const double* x) noexcept {
  return g_row_dot_reassoc_long_64d(cols, vals, len, x);
}

double csr_row_dot_reassoc_long(const std::int32_t* cols, const double* vals,
                                nnz_t len, const double* x) noexcept {
  return g_row_dot_reassoc_long_32d(cols, vals, len, x);
}

double csr_row_dot_reassoc_long(const std::int32_t* cols, const float* vals,
                                nnz_t len, const double* x) noexcept {
  return g_row_dot_reassoc_long_32f(cols, vals, len, x);
}

// Anchor one instantiation of each supported policy in this TU so policy-set
// regressions (a kernel overload missing, a member that fails to compile for
// a narrow width) surface here instead of in whichever consumer first
// touches the variant.
template class CsrMatrixT<std::int64_t, double>;
template class CsrMatrixT<std::int32_t, double>;
template class CsrMatrixT<std::int32_t, float>;

}  // namespace asyrgs
