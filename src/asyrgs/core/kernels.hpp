// Shared coordinate-update and residual kernels (internal).
//
// The compile-time-specialized update functors and the team-parallel
// residual functors used by the asynchronous solvers.  They were anonymous
// namespace members of async_rgs.cpp / async_lsq.cpp until the prepared-
// solver handles (asyrgs/problem.hpp) needed to invoke the same kernels from
// one place; like core/engine.hpp, nothing in asyrgs::detail is a stable
// public API.
//
// Every functor is templated over the CSR storage policy (Index, Value) with
// full-width defaults, so the prepared handles can run the identical update
// logic against CsrMatrix, CsrMatrix32, or CsrMatrixMixed; accumulation is
// double for every policy (a Value promotes at the multiply).  Call sites
// deduce the policy from the matrix argument (CTAD for the residual classes,
// explicit arguments for the aggregate update functors).
//
// Residual functors borrow their TeamReduce (barrier + partial slots) from
// the caller instead of owning one, so a prepared handle can keep the
// reduction scratch alive across solves.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/core/engine.hpp"
#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/atomics.hpp"

namespace asyrgs::detail {

/// b_r and 1/A_rr interleaved so the two per-update row constants share one
/// cache line (and usually one 16-byte load pair).
struct RhsDiagPair {
  double b;
  double inv_diag;
};

/// Refills `packed` (resized, allocation reused across calls) with the
/// interleaved (b, 1/diag) pairs.
inline void pack_rhs_diag(const std::vector<double>& b,
                          const std::vector<double>& inv_diag,
                          std::vector<RhsDiagPair>& packed) {
  packed.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i)
    packed[i] = {b[i], inv_diag[i]};
}

/// One asynchronous coordinate update on the shared single-RHS iterate,
/// specialized at compile time on the atomicity mode AND the scan mode so
/// the hot loop carries no per-update branch and the pinned path compiles to
/// exactly the pre-ScanMode code.  Pinned: relaxed-atomic reads of x, one
/// subtraction per nonzero in column order — identical arithmetic to the
/// sequential solver, so a one-worker run reproduces it bit for bit (and,
/// because values stay double, identically across the int64/int32 index
/// policies).  Reassociated: the multi-accumulator/SIMD kernel from
/// sparse/csr.hpp with plain vector reads of x (see the contract there); the
/// write path is unchanged.
template <bool kAtomicWrites, ScanMode kScan, class Index = index_t,
          class Value = double>
struct SingleRhsUpdate {
  const nnz_t* row_ptr;
  const Index* cols;
  const Value* vals;
  const RhsDiagPair* rhs_diag;
  double* x;
  double beta;

  /// The relaxation increment beta * gamma_r = beta * (b_r - A_r x) / A_rr
  /// computed from the current contents of x — the *compute* half of one
  /// coordinate update, exposed as a seam so the deterministic virtual
  /// engine (simulate/virtual_engine.hpp) can evaluate the identical kernel
  /// arithmetic against a materialized stale snapshot, outside the
  /// thread-pool loop.  operator() below is compute + apply; splitting the
  /// two must not perturb the hot path (inlined back together, gated by the
  /// pre-refactor golden hashes in tests/test_storage.cpp).
  [[nodiscard]] double delta(index_t r) const noexcept {
    const nnz_t* __restrict rp = row_ptr;
    const Index* __restrict ci = cols;
    const Value* __restrict av = vals;
    const RhsDiagPair* __restrict bd = rhs_diag;
    double acc = bd[r].b;
    const nnz_t lo = rp[r];
    const nnz_t hi = rp[r + 1];
    if constexpr (kScan == ScanMode::kReassociated) {
      acc = csr_row_sub_dot_reassoc(acc, ci + lo, av + lo, hi - lo, x);
    } else {
      for (nnz_t t = lo; t < hi; ++t)
        acc -= av[t] * atomic_load_relaxed(x[ci[t]]);
    }
    return beta * (acc * bd[r].inv_diag);
  }

  /// The *apply* half: commits a previously computed increment onto the
  /// shared iterate with this kernel's atomicity mode.
  void apply(index_t r, double d) const noexcept {
    if constexpr (kAtomicWrites)
      atomic_add_relaxed(x[r], d);
    else
      racy_add(x[r], d);
  }

  void operator()(int, index_t r, index_t r_ahead) const noexcept {
    // The direction buffer makes the future known: pull an upcoming row's
    // constants and the head of its index/value arrays into cache while this
    // row's scan chain retires.
    const nnz_t ahead_lo = row_ptr[r_ahead];
    __builtin_prefetch(&rhs_diag[r_ahead]);
    __builtin_prefetch(&vals[ahead_lo]);
    __builtin_prefetch(&cols[ahead_lo]);
    __builtin_prefetch(&x[r_ahead]);
    apply(r, delta(r));
  }
};

/// One asynchronous update applied to every column of the block iterate.
/// `gamma` is per-worker scratch of k doubles (cache-line separated slab).
/// Pinned-scan association: one subtraction per nonzero per column, in
/// column order — the block analogue of SingleRhsUpdate's pinned path.
template <bool kAtomicWrites, class Index = index_t, class Value = double>
struct BlockRhsUpdate {
  const CsrMatrixT<Index, Value>* a;
  const MultiVector* b;
  MultiVector* x;
  const double* inv_diag;
  double beta;
  double* gamma_base;
  std::size_t gamma_stride;

  void operator()(int worker, index_t r, index_t r_ahead) const noexcept {
    __builtin_prefetch(x->row(r_ahead));
    __builtin_prefetch(b->row(r_ahead));
    double* __restrict gamma =
        gamma_base + static_cast<std::size_t>(worker) * gamma_stride;
    const index_t k = b->cols();
    const double* b_row = b->row(r);
    for (index_t c = 0; c < k; ++c) gamma[c] = b_row[c];
    const auto cols = a->row_cols(r);
    const auto vals = a->row_vals(r);
    for (std::size_t t = 0; t < cols.size(); ++t) {
      const double arj = vals[t];
      const double* x_row = x->row(cols[t]);
      for (index_t c = 0; c < k; ++c)
        gamma[c] -= arj * atomic_load_relaxed(x_row[c]);
    }
    const double inv = inv_diag[r];
    double* xr = x->row(r);
    if constexpr (kAtomicWrites) {
      for (index_t c = 0; c < k; ++c)
        atomic_add_relaxed(xr[c], beta * (gamma[c] * inv));
    } else {
      for (index_t c = 0; c < k; ++c)
        racy_add(xr[c], beta * (gamma[c] * inv));
    }
  }
};

/// Reassociated block update for compile-time small column counts (K <= 4).
/// The generic BlockRhsUpdate reads X with relaxed-atomic loads and walks
/// one gamma chain per column; at small K the whole gamma state fits in
/// registers, so this kernel keeps two accumulator sets per column and
/// unrolls the nonzero loop by two — the same pipelining trade as the
/// single-RHS multi-accumulator scan, which is why it carries the
/// ScanMode::kReassociated contract: plain vector reads of the shared
/// iterate (naturally aligned 8-byte loads cannot tear; see sparse/csr.hpp)
/// and a K-independent, unspecified reduction order.  Dispatched by
/// SpdProblem::solve(block) when the caller requests the reassociated scan
/// and k <= 4; larger blocks keep the pinned kernel (gamma no longer fits,
/// and the column loop already pipelines).
template <bool kAtomicWrites, int K, class Index = index_t,
          class Value = double>
struct BlockRhsUpdateSmallK {
  static_assert(K >= 1 && K <= 4, "BlockRhsUpdateSmallK: K must be 1..4");

  const CsrMatrixT<Index, Value>* a;
  const MultiVector* b;
  MultiVector* x;
  const double* inv_diag;
  double beta;

  void operator()(int, index_t r, index_t r_ahead) const noexcept {
    __builtin_prefetch(x->row(r_ahead));
    __builtin_prefetch(b->row(r_ahead));
    const double* b_row = b->row(r);
    double g0[K];
    double g1[K];
    for (int c = 0; c < K; ++c) {
      g0[c] = b_row[c];
      g1[c] = 0.0;
    }
    const auto cols = a->row_cols(r);
    const auto vals = a->row_vals(r);
    std::size_t t = 0;
    for (; t + 2 <= cols.size(); t += 2) {
      const double a0 = vals[t];
      const double a1 = vals[t + 1];
      const double* __restrict x0 = x->row(cols[t]);
      const double* __restrict x1 = x->row(cols[t + 1]);
      for (int c = 0; c < K; ++c) {
        g0[c] -= a0 * x0[c];
        g1[c] -= a1 * x1[c];
      }
    }
    if (t < cols.size()) {
      const double a0 = vals[t];
      const double* __restrict x0 = x->row(cols[t]);
      for (int c = 0; c < K; ++c) g0[c] -= a0 * x0[c];
    }
    const double inv = inv_diag[r];
    double* xr = x->row(r);
    for (int c = 0; c < K; ++c) {
      const double delta = beta * ((g0[c] + g1[c]) * inv);
      if constexpr (kAtomicWrites)
        atomic_add_relaxed(xr[c], delta);
      else
        racy_add(xr[c], delta);
    }
  }
};

/// ||b - A x|| / ||b|| evaluated as a team-parallel reduction over the
/// workers rendezvoused at the synchronization barrier (the denominator is
/// constant and precomputed).
template <class Index = index_t, class Value = double>
class SingleRhsResidual {
 public:
  SingleRhsResidual(const CsrMatrixT<Index, Value>& a,
                    const std::vector<double>& b, const double* x, int workers,
                    TeamReduce& reduce)
      : a_(a),
        b_(b),
        x_(x),
        reduce_(reduce),
        serial_(!team_residual_profitable(workers)),
        b_norm_(nrm2(b)) {}

  double operator()(int id, int team) {
    const auto partial = [&](int w, int t) {
      const auto [lo, hi] = chunk_of(a_.rows(), w, t);
      double acc = 0.0;
      for (index_t i = lo; i < hi; ++i) {
        double ri = b_[i];
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s)
          ri -= vals[s] * atomic_load_relaxed(x_[cols[s]]);
        acc += ri * ri;
      }
      return acc;
    };
    // Oversubscribed host: the reduction barriers would cost scheduler
    // round-trips, so worker 0 evaluates the same chunked partials alone
    // (bit-identical association — see TeamReduce::run_serial) while the
    // rest return to the engine's own synchronization barrier.
    if (serial_ && id != 0) return 0.0;
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return b_norm_ > 0.0 ? rn / b_norm_ : rn;
  }

 private:
  const CsrMatrixT<Index, Value>& a_;
  const std::vector<double>& b_;
  const double* x_;
  TeamReduce& reduce_;
  bool serial_;
  double b_norm_;
};

/// ||B - A X||_F / ||B||_F, team-parallel over rows.
template <class Index = index_t, class Value = double>
class BlockResidual {
 public:
  BlockResidual(const CsrMatrixT<Index, Value>& a, const MultiVector& b,
                const MultiVector& x, int workers, TeamReduce& reduce)
      : a_(a),
        b_(b),
        x_(x),
        reduce_(reduce),
        serial_(!team_residual_profitable(workers)),
        b_norm_(frobenius_norm(b)) {}

  double operator()(int id, int team) {
    const auto partial = [&](int w, int t) {
      const index_t k = b_.cols();
      std::vector<double> row(static_cast<std::size_t>(k));
      const auto [lo, hi] = chunk_of(a_.rows(), w, t);
      double acc = 0.0;
      for (index_t i = lo; i < hi; ++i) {
        std::fill(row.begin(), row.end(), 0.0);
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s) {
          const double aij = vals[s];
          const double* x_row = x_.row(cols[s]);
          for (index_t c = 0; c < k; ++c)
            row[c] += aij * atomic_load_relaxed(x_row[c]);
        }
        const double* b_row = b_.row(i);
        for (index_t c = 0; c < k; ++c) {
          const double r_ic = b_row[c] - row[c];
          acc += r_ic * r_ic;
        }
      }
      return acc;
    };
    if (serial_ && id != 0) return 0.0;  // see SingleRhsResidual
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return b_norm_ > 0.0 ? rn / b_norm_ : rn;
  }

 private:
  const CsrMatrixT<Index, Value>& a_;
  const MultiVector& b_;
  const MultiVector& x_;
  TeamReduce& reduce_;
  bool serial_;
  double b_norm_;
};

/// One asynchronous column update (iteration (21)): the residual entries for
/// the column's rows are recomputed from shared x on every step.  Specialized
/// at compile time on the atomicity mode and on the scan mode — the inner
/// r_i = b_i - A_i x row scans are this kernel's dominant FP cost, so
/// ScanMode::kReassociated routes them through the multi-accumulator/SIMD
/// kernel (plain vector reads of the shared iterate; see sparse/csr.hpp).
template <bool kAtomicWrites, ScanMode kScan, class Index = index_t,
          class Value = double>
struct LsqUpdate {
  const CsrMatrixT<Index, Value>* a;
  const CsrMatrixT<Index, Value>* at;
  const double* b;
  const double* col_sq;
  double* x;
  double beta;

  void operator()(int, index_t j, index_t j_ahead) const noexcept {
    __builtin_prefetch(at->row_cols(j_ahead).data());
    __builtin_prefetch(at->row_vals(j_ahead).data());
    const auto rows = at->row_cols(j);
    const auto col_vals = at->row_vals(j);
    double gamma = 0.0;
    for (std::size_t s = 0; s < rows.size(); ++s) {
      const index_t i = rows[s];
      // r_i = b_i - A_i x; pinned mode reads the shared iterate with
      // relaxed-atomic loads, reassociated mode with vector gathers.
      double ri;
      if constexpr (kScan == ScanMode::kReassociated) {
        const auto arow_cols = a->row_cols(i);
        const auto arow_vals = a->row_vals(i);
        ri = csr_row_sub_dot_reassoc(b[i], arow_cols.data(), arow_vals.data(),
                                     static_cast<nnz_t>(arow_cols.size()), x);
      } else {
        ri = b[i];
        const auto arow_cols = a->row_cols(i);
        const auto arow_vals = a->row_vals(i);
        for (std::size_t q = 0; q < arow_cols.size(); ++q)
          ri -= arow_vals[q] * atomic_load_relaxed(x[arow_cols[q]]);
      }
      gamma += col_vals[s] * ri;
    }
    const double delta = beta * gamma / col_sq[j];
    if constexpr (kAtomicWrites)
      atomic_add_relaxed(x[j], delta);
    else
      racy_add(x[j], delta);
  }
};

/// One asynchronous row-action (Kaczmarz) update on the shared iterate:
/// project x onto the hyperplane A_i x = b_i, relaxed by beta —
///   gamma = beta * (b_i - A_i x) / ||A_i||^2;  x += gamma * A_i^T.
/// The row scan is the same compute seam as SingleRhsUpdate (pinned:
/// relaxed-atomic reads of x, one subtraction per nonzero in column order;
/// reassociated: the multi-accumulator/SIMD kernel with plain vector
/// reads), but the apply half scatters into every column the row touches
/// rather than one diagonal entry — which is why the asynchronous analysis
/// of Liu, Wright & Sridhar (arXiv:1401.4780) covers it: each update
/// writes a sparse multiple of one row.  `inv_row_sq` holds 1/||A_i||^2
/// precomputed at prepare time (zero rows get 0, making their update a
/// no-op rather than a NaN).
template <bool kAtomicWrites, ScanMode kScan, class Index = index_t,
          class Value = double>
struct KaczmarzUpdate {
  const nnz_t* row_ptr;
  const Index* cols;
  const Value* vals;
  const double* b;
  const double* inv_row_sq;
  double* x;
  double beta;

  /// The compute half: gamma for row r from the current contents of x
  /// (virtual-engine seam, mirroring SingleRhsUpdate::delta).
  [[nodiscard]] double delta(index_t r) const noexcept {
    const nnz_t* __restrict rp = row_ptr;
    const Index* __restrict ci = cols;
    const Value* __restrict av = vals;
    double acc = b[r];
    const nnz_t lo = rp[r];
    const nnz_t hi = rp[r + 1];
    if constexpr (kScan == ScanMode::kReassociated) {
      acc = csr_row_sub_dot_reassoc(acc, ci + lo, av + lo, hi - lo, x);
    } else {
      for (nnz_t t = lo; t < hi; ++t)
        acc -= av[t] * atomic_load_relaxed(x[ci[t]]);
    }
    return beta * (acc * inv_row_sq[r]);
  }

  /// The apply half: x[cols of row r] += gamma * vals of row r, with this
  /// kernel's atomicity mode per component.
  void apply(index_t r, double gamma) const noexcept {
    const nnz_t* __restrict rp = row_ptr;
    const Index* __restrict ci = cols;
    const Value* __restrict av = vals;
    const nnz_t lo = rp[r];
    const nnz_t hi = rp[r + 1];
    if constexpr (kAtomicWrites) {
      for (nnz_t t = lo; t < hi; ++t)
        atomic_add_relaxed(x[ci[t]], gamma * av[t]);
    } else {
      for (nnz_t t = lo; t < hi; ++t) racy_add(x[ci[t]], gamma * av[t]);
    }
  }

  void operator()(int, index_t r, index_t r_ahead) const noexcept {
    const nnz_t ahead_lo = row_ptr[r_ahead];
    __builtin_prefetch(&b[r_ahead]);
    __builtin_prefetch(&inv_row_sq[r_ahead]);
    __builtin_prefetch(&vals[ahead_lo]);
    __builtin_prefetch(&cols[ahead_lo]);
    apply(r, delta(r));
  }
};

/// ||A^T (b - A x)|| / ||A^T b|| as a two-phase team-parallel reduction at
/// synchronization points: phase 1 materializes r = b - A x (row chunks),
/// phase 2 reduces ||A^T r||^2 (column chunks via the rows of A^T).  The
/// denominator ||A^T b|| is an invariant of the run and computed once at
/// construction; `r` is caller-provided scratch of a.rows() doubles so a
/// prepared handle re-uses the buffer across solves.
template <class Index = index_t, class Value = double>
class LsqResidual {
 public:
  LsqResidual(const CsrMatrixT<Index, Value>& a,
              const CsrMatrixT<Index, Value>& at, const std::vector<double>& b,
              const double* x, int workers, TeamReduce& reduce, double* r,
              bool enabled)
      : a_(a),
        at_(at),
        b_(b),
        x_(x),
        reduce_(reduce),
        serial_(!team_residual_profitable(workers)),
        r_(r) {
    if (!enabled) return;
    std::vector<double> g0(static_cast<std::size_t>(a.cols()));
    a.multiply_transpose(b.data(), g0.data());
    denom_ = nrm2(g0);
  }

  double operator()(int id, int team) {
    // Oversubscribed host: both phases run serially on worker 0 with the
    // same chunked association as the team-parallel path (see
    // TeamReduce::run_serial and docs/TUNING.md for the heuristic); the
    // other workers return straight to the engine's synchronization
    // barrier.
    if (serial_ && id != 0) return 0.0;
    // Phase 1: r = b - A x over this worker's row chunk (the whole range
    // when serial; the entries are independent, so chunking does not
    // affect their values).
    {
      const auto [lo, hi] = serial_ ? chunk_of(a_.rows(), 0, 1)
                                    : chunk_of(a_.rows(), id, team);
      for (index_t i = lo; i < hi; ++i) {
        double ri = b_[i];
        const auto cols = a_.row_cols(i);
        const auto vals = a_.row_vals(i);
        for (std::size_t s = 0; s < cols.size(); ++s)
          ri -= vals[s] * atomic_load_relaxed(x_[cols[s]]);
        r_[i] = ri;
      }
    }
    if (!serial_ && team > 1) reduce_.barrier().arrive_and_wait();
    // Phase 2: ||A^T r||^2 over this worker's chunk of A^T rows.
    const auto partial = [&](int w, int t) {
      const auto [lo, hi] = chunk_of(at_.rows(), w, t);
      double acc = 0.0;
      for (index_t j = lo; j < hi; ++j) {
        const auto rows = at_.row_cols(j);
        const auto vals = at_.row_vals(j);
        double g = 0.0;
        for (std::size_t s = 0; s < rows.size(); ++s)
          g += vals[s] * r_[rows[s]];
        acc += g * g;
      }
      return acc;
    };
    const double num = serial_ ? reduce_.run_serial(team, partial)
                               : reduce_.run(id, team, partial);
    if (id != 0) return 0.0;
    const double rn = std::sqrt(num);
    return denom_ > 0.0 ? rn / denom_ : rn;
  }

 private:
  const CsrMatrixT<Index, Value>& a_;
  const CsrMatrixT<Index, Value>& at_;
  const std::vector<double>& b_;
  const double* x_;
  TeamReduce& reduce_;
  bool serial_;
  double* r_;
  double denom_ = 0.0;
};

/// Squared Euclidean norms of the columns of A, read off the rows of A^T
/// (double accumulation for every storage policy).
template <class Index, class Value>
inline std::vector<double> column_sq_norms(const CsrMatrixT<Index, Value>& at) {
  std::vector<double> sq(static_cast<std::size_t>(at.rows()), 0.0);
  for (index_t j = 0; j < at.rows(); ++j) {
    double acc = 0.0;
    for (double v : at.row_vals(j)) acc += v * v;
    sq[j] = acc;
  }
  return sq;
}

/// Squared Euclidean norms of the rows of A — the Strohmer-Vershynin
/// Kaczmarz sampling weights and the denominators of the row projections.
template <class Index, class Value>
inline std::vector<double> row_sq_norms(const CsrMatrixT<Index, Value>& a) {
  std::vector<double> sq(static_cast<std::size_t>(a.rows()), 0.0);
  for (index_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    for (double v : a.row_vals(i)) acc += v * v;
    sq[i] = acc;
  }
  return sq;
}

}  // namespace asyrgs::detail
