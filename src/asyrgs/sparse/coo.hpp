// Coordinate-format builder for assembling sparse matrices.
//
// Generators and file readers accumulate (i, j, value) triplets here and then
// convert to the immutable CSR format used by every kernel.  Duplicate
// entries are summed during conversion (finite-element style assembly).
//
// The builder is parameterized on the same (Index, Value) storage policies
// as CsrMatrixT and stores triplets directly at the target width — a file
// loader or generator targeting CsrMatrix32/CsrMatrixMixed never
// materializes full-width intermediates (the column range is validated once,
// at add()).  Note that duplicate folding sums in Value precision: for the
// mixed policy, assembly accumulates in float.  `CooBuilder` remains the
// full-width alias.
#pragma once

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Mutable triplet accumulator for one storage policy.
template <class Index, class Value>
class CooBuilderT {
  static_assert(detail::kSupportedStorage<Index, Value>,
                "CooBuilderT: supported storage policies are <int64,double>, "
                "<int32,double>, <int32,float>");

 public:
  /// Creates a builder for a rows x cols matrix.  For narrow-index policies
  /// the column count must fit the index width (the row count may exceed it
  /// — rows live in row_ptr, which stays nnz_t).
  CooBuilderT(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    require(rows > 0 && cols > 0, "CooBuilder: dimensions must be positive");
    require(index_width_fits<Index>(cols),
            "CooBuilder: column count exceeds the index width");
  }

  /// Appends A(i, j) += value.
  void add(index_t i, index_t j, double value) {
    require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
            "CooBuilder::add: index out of range");
    is_.push_back(i);
    js_.push_back(static_cast<Index>(j));
    vs_.push_back(static_cast<Value>(value));
  }

  /// Appends A(i, j) += value and, when i != j, A(j, i) += value.  Handy for
  /// assembling symmetric matrices from their lower triangle.
  void add_symmetric(index_t i, index_t j, double value) {
    add(i, j, value);
    if (i != j) add(j, i, value);
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t entries() const noexcept { return is_.size(); }

  /// Reserves space for `n` triplets.
  void reserve(std::size_t n) {
    is_.reserve(n);
    js_.reserve(n);
    vs_.reserve(n);
  }

  /// Converts to CSR with sorted column indices; duplicate coordinates are
  /// summed and exact-zero results are kept (structural nonzeros).
  [[nodiscard]] CsrMatrixT<Index, Value> to_csr() const {
    const std::size_t m = is_.size();

    // Counting sort by row, then sort each row segment by column and fold
    // duplicates.  O(nnz log rowlen) overall, no global sort.
    std::vector<nnz_t> row_count(static_cast<std::size_t>(rows_) + 1, 0);
    for (std::size_t t = 0; t < m; ++t) row_count[is_[t] + 1]++;
    std::vector<nnz_t> row_start(row_count);
    std::partial_sum(row_start.begin(), row_start.end(), row_start.begin());

    std::vector<Index> cols_tmp(m);
    std::vector<Value> vals_tmp(m);
    {
      std::vector<nnz_t> cursor(row_start.begin(), row_start.end() - 1);
      for (std::size_t t = 0; t < m; ++t) {
        const nnz_t slot = cursor[is_[t]]++;
        cols_tmp[slot] = js_[t];
        vals_tmp[slot] = vs_[t];
      }
    }

    std::vector<nnz_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
    std::vector<Index> col_idx;
    std::vector<Value> values;
    col_idx.reserve(m);
    values.reserve(m);

    std::vector<std::pair<Index, Value>> row_buffer;
    for (index_t i = 0; i < rows_; ++i) {
      row_buffer.clear();
      for (nnz_t t = row_start[i]; t < row_start[i + 1]; ++t)
        row_buffer.emplace_back(cols_tmp[t], vals_tmp[t]);
      std::sort(row_buffer.begin(), row_buffer.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      // Fold duplicates by summation.
      for (std::size_t t = 0; t < row_buffer.size(); ++t) {
        if (!col_idx.empty() &&
            static_cast<nnz_t>(col_idx.size()) > row_ptr[i] &&
            col_idx.back() == row_buffer[t].first) {
          values.back() += row_buffer[t].second;
        } else {
          col_idx.push_back(row_buffer[t].first);
          values.push_back(row_buffer[t].second);
        }
      }
      row_ptr[i + 1] = static_cast<nnz_t>(col_idx.size());
    }

    return CsrMatrixT<Index, Value>(rows_, cols_, std::move(row_ptr),
                                    std::move(col_idx), std::move(values));
  }

 private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> is_;  // row indices; full width (rows may exceed Index)
  std::vector<Index> js_;
  std::vector<Value> vs_;
};

/// Full-width builder: the historical interface and the default everywhere a
/// bare `CooBuilder` is named.
using CooBuilder = CooBuilderT<std::int64_t, double>;

}  // namespace asyrgs
