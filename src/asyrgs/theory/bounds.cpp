#include "asyrgs/theory/bounds.hpp"

#include <cmath>

#include "asyrgs/linalg/eigen.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

TheoremInputs measure_theorem_inputs(ThreadPool& pool, const CsrMatrix& a,
                                     index_t tau, double beta,
                                     int lanczos_steps) {
  require(a.square(), "measure_theorem_inputs: matrix must be square");
  TheoremInputs in;
  in.n = a.rows();
  in.rho = rho(a);
  in.rho2 = rho2(a);
  in.tau = tau;
  in.beta = beta;
  const SpectrumEstimate spec = estimate_spectrum(pool, a, lanczos_steps);
  in.lambda_min = spec.lambda_min;
  in.lambda_max = spec.lambda_max;
  return in;
}

double nu_tau(double rho, index_t tau, double beta) {
  require(rho >= 0.0 && tau >= 0, "nu_tau: bad inputs");
  return 2.0 * beta - beta * beta -
         2.0 * rho * static_cast<double>(tau) * beta * beta;
}

double omega_tau(double rho2, index_t tau, double beta) {
  require(rho2 >= 0.0 && tau >= 0, "omega_tau: bad inputs");
  const double t = static_cast<double>(tau);
  return 2.0 * beta * (1.0 - beta - rho2 * t * t * beta / 2.0);
}

namespace {

/// (1 - lambda_max / n)^{-2 tau}, the stale-window amplification shared by
/// chi and psi.
double window_amplification(const TheoremInputs& in) {
  const double delta_max =
      1.0 - in.lambda_max / static_cast<double>(in.n);
  require(delta_max > 0.0,
          "theorem bounds: need lambda_max < n (unit-diagonal scaling)");
  return std::pow(delta_max, -2.0 * static_cast<double>(in.tau));
}

}  // namespace

double chi_term(const TheoremInputs& in) {
  const double t = static_cast<double>(in.tau);
  return in.rho * t * t * in.beta * in.beta * in.lambda_max *
         window_amplification(in) / static_cast<double>(in.n);
}

double psi_term(const TheoremInputs& in) {
  const double t = static_cast<double>(in.tau);
  return in.rho2 * t * t * t * in.beta * in.beta * in.lambda_max *
         window_amplification(in) / static_cast<double>(in.n);
}

double optimal_beta_consistent(double rho, index_t tau) {
  return 1.0 / (1.0 + 2.0 * rho * static_cast<double>(tau));
}

double optimal_beta_inconsistent(double rho2, index_t tau) {
  const double t = static_cast<double>(tau);
  return 1.0 / (2.0 + rho2 * t * t);
}

std::uint64_t theorem_t0(index_t n, double lambda_max) {
  require(n > 0 && lambda_max > 0.0, "theorem_t0: bad inputs");
  const double ratio = lambda_max / static_cast<double>(n);
  require(ratio < 1.0, "theorem_t0: need lambda_max < n");
  const double t0 = std::log(0.5) / std::log(1.0 - ratio);
  return static_cast<std::uint64_t>(std::ceil(t0));
}

bool consistent_bound_applicable(const TheoremInputs& in) {
  return in.beta > 0.0 && in.beta <= 1.0 &&
         nu_tau(in.rho, in.tau, in.beta) > 0.0;
}

bool inconsistent_bound_applicable(const TheoremInputs& in) {
  return in.beta > 0.0 && in.beta < 1.0 &&
         omega_tau(in.rho2, in.tau, in.beta) > 0.0;
}

double synchronous_bound(index_t n, double lambda_min, double beta,
                         std::uint64_t m) {
  require(n > 0 && lambda_min > 0.0, "synchronous_bound: bad inputs");
  const double factor = 1.0 - beta * (2.0 - beta) * lambda_min /
                                  static_cast<double>(n);
  return std::pow(std::max(factor, 0.0), static_cast<double>(m));
}

double consistent_epoch_factor(const TheoremInputs& in) {
  return 1.0 - nu_tau(in.rho, in.tau, in.beta) / (2.0 * in.kappa());
}

double consistent_free_running_bound(const TheoremInputs& in,
                                     std::uint64_t m) {
  const double nu = nu_tau(in.rho, in.tau, in.beta);
  const double two_kappa = 2.0 * in.kappa();
  const std::uint64_t t_epoch =
      theorem_t0(in.n, in.lambda_max) + static_cast<std::uint64_t>(in.tau);
  if (m < t_epoch) return 1.0;  // the theorem only speaks from m >= T on
  const std::uint64_t r = m / t_epoch;
  const double delta_max_tau =
      std::pow(1.0 - in.lambda_max / static_cast<double>(in.n),
               static_cast<double>(in.tau));
  const double first = 1.0 - nu / two_kappa;
  const double later = 1.0 - nu * delta_max_tau / two_kappa + chi_term(in);
  return first * std::pow(std::max(later, 0.0), static_cast<double>(r - 1));
}

double inconsistent_epoch_factor(const TheoremInputs& in) {
  return 1.0 - omega_tau(in.rho2, in.tau, in.beta) / (2.0 * in.kappa());
}

double inconsistent_free_running_bound(const TheoremInputs& in,
                                       std::uint64_t m) {
  const double omega = omega_tau(in.rho2, in.tau, in.beta);
  const double two_kappa = 2.0 * in.kappa();
  const std::uint64_t t_epoch =
      theorem_t0(in.n, in.lambda_max) + static_cast<std::uint64_t>(in.tau);
  if (m < t_epoch) return 1.0;
  const std::uint64_t r = m / t_epoch;
  const double delta_max_tau =
      std::pow(1.0 - in.lambda_max / static_cast<double>(in.n),
               static_cast<double>(in.tau));
  const double first = 1.0 - omega / two_kappa;
  const double later =
      1.0 - omega * delta_max_tau / two_kappa + psi_term(in);
  return first * std::pow(std::max(later, 0.0), static_cast<double>(r - 1));
}

namespace {

EnvelopeCheck make_check(bool applicable, double envelope, double error0_sq,
                         double error_m_sq, std::uint64_t m, double slack) {
  require(error0_sq > 0.0, "envelope check: initial error must be positive");
  require(slack >= 1.0, "envelope check: slack must be >= 1");
  EnvelopeCheck check;
  check.applicable = applicable;
  check.measured_ratio = error_m_sq / error0_sq;
  check.envelope = envelope;
  check.m = m;
  check.conforms = applicable && check.measured_ratio <= slack * envelope;
  return check;
}

}  // namespace

EnvelopeCheck check_consistent_envelope(const TheoremInputs& in,
                                        double error0_sq, double error_m_sq,
                                        std::uint64_t m, double slack) {
  const bool applicable = consistent_bound_applicable(in);
  const double envelope =
      applicable ? consistent_free_running_bound(in, m) : 1.0;
  return make_check(applicable, envelope, error0_sq, error_m_sq, m, slack);
}

EnvelopeCheck check_inconsistent_envelope(const TheoremInputs& in,
                                          double error0_sq, double error_m_sq,
                                          std::uint64_t m, double slack) {
  const bool applicable = inconsistent_bound_applicable(in);
  const double envelope =
      applicable ? inconsistent_free_running_bound(in, m) : 1.0;
  return make_check(applicable, envelope, error0_sq, error_m_sq, m, slack);
}

std::uint64_t synchronous_iterations_for(index_t n, double lambda_min,
                                         double beta, double eps,
                                         double delta) {
  require(eps > 0.0 && eps < 1.0, "synchronous_iterations_for: bad eps");
  require(delta > 0.0 && delta < 1.0, "synchronous_iterations_for: bad delta");
  require(beta > 0.0 && beta < 2.0, "synchronous_iterations_for: bad beta");
  const double m = static_cast<double>(n) /
                   (beta * (2.0 - beta) * lambda_min) *
                   std::log(1.0 / (delta * eps * eps));
  return static_cast<std::uint64_t>(std::ceil(m));
}

}  // namespace asyrgs
