// Synthetic "social media" regression system.
//
// The paper's experiments (Section 9) use a proprietary 120,147^2 Gram
// matrix built from a term-document matrix of social-media text: each row of
// the data matrix F is a document, each column a term, values are term
// frequencies, and the solver target is A = F^T F (ridge-regularized linear
// regression against 51 label columns).  The matrix is unavailable, so this
// module generates a faithful synthetic stand-in:
//
//  * term document-frequencies follow a Zipf law, so a few "hub" terms
//    co-occur with nearly everything -> Gram rows that are almost full,
//    while rare terms yield rows with a handful of nonzeros.  The paper's
//    matrix has max row 117,182 vs mean 1,439 vs min 1 — exactly this kind
//    of skew, which is what stresses an asynchronous solver (large tau);
//  * values are integer-ish term frequencies, so A is SPD (after a small
//    ridge) with a strongly non-unit diagonal — exercising the paper's
//    iteration (3) / unit-diagonal rescaling path;
//  * there is no exploitable structure (no bands, no geometry), matching
//    the paper's observation that reordering does not help.
//
// The document-term factor F is also returned for the least-squares
// experiments of Section 8 (min_x ||F x - b||_2).
#pragma once

#include <cstdint>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Knobs for the synthetic corpus.
struct SocialGramOptions {
  index_t terms = 4096;        ///< n: Gram dimension (number of term columns)
  index_t documents = 16384;   ///< m: corpus size (rows of F)
  index_t mean_doc_length = 12;///< average distinct terms per document
  double zipf_exponent = 1.0;  ///< term-popularity decay (1.0 = classic Zipf)
  double ridge = 1.0;          ///< added to diag(A): ridge-regression lambda
  std::uint64_t seed = 42;
  /// Topic structure: documents belong to topics and draw a fraction of
  /// their terms from the topic's vocabulary slice.  Topical co-occurrence
  /// makes term columns within a topic strongly correlated, which is what
  /// drives the *ill-conditioning* of real text Gram matrices (the paper's
  /// matrix is "highly ill-conditioned").  topics == 0 disables the
  /// structure and yields a near-orthogonal, well-conditioned Gram.
  index_t topics = 64;
  double topic_concentration = 0.85;  ///< P(term drawn from own topic)
};

/// The generated system: A = F^T F + ridge*I and the factor F itself.
template <class Index, class Value>
struct SocialGramT {
  CsrMatrixT<Index, Value> gram;    ///< n x n SPD Gram matrix
  CsrMatrixT<Index, Value> factor;  ///< m x n document-term matrix F
};
using SocialGram = SocialGramT<std::int64_t, double>;

/// Generates the corpus and assembles the Gram matrix exactly (duplicate
/// co-occurrences summed).
[[nodiscard]] SocialGram make_social_gram(const SocialGramOptions& opt);

/// Policy-aware variant assembling directly at the target width.  Entries
/// are sums of products of small integer term frequencies — exact in float
/// far beyond any realistic corpus — so every policy generates the same
/// matrix up to storage width.  (Defined in gram.cpp, instantiated for the
/// three supported policies.)
template <class Index, class Value>
[[nodiscard]] SocialGramT<Index, Value> make_social_gram_as(
    const SocialGramOptions& opt);

}  // namespace asyrgs
