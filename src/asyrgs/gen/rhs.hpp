// Right-hand-side and reference-solution generators.
//
// Two experiment styles from the paper:
//  * residual experiments use arbitrary (random) right-hand sides;
//  * A-norm-of-error experiments (Figure 2, right) construct b = A x* from a
//    known solution x*, so ||x - x*||_A is computable exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Dense standard-normal vector of length n.
[[nodiscard]] std::vector<double> random_vector(index_t n, std::uint64_t seed);

/// Dense standard-normal block of shape n x k.
[[nodiscard]] MultiVector random_multivector(index_t n, index_t k,
                                             std::uint64_t seed);

/// b = A x for a given reference solution (serial; generation-time only).
[[nodiscard]] std::vector<double> rhs_from_solution(const CsrMatrix& a,
                                                    const std::vector<double>& x);

/// B = A X for a block of reference solutions.
[[nodiscard]] MultiVector rhs_from_solution(const CsrMatrix& a,
                                            const MultiVector& x);

}  // namespace asyrgs
