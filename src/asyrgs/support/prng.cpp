#include "asyrgs/support/prng.hpp"

#include <algorithm>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

namespace asyrgs {

std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm();
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      (void)(*this)();
    }
  }
  s_ = {s0, s1, s2, s3};
}

namespace {

// Philox multiplication constants and Weyl key increments from Salmon et al.
constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) noexcept {
  const std::uint64_t prod =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(prod >> 32);
  lo = static_cast<std::uint32_t>(prod);
}

inline Philox4x32::Block single_round(Philox4x32::Block ctr,
                                      Philox4x32::Key key) noexcept {
  std::uint32_t hi0, lo0, hi1, lo1;
  mulhilo(kPhiloxM0, ctr[0], hi0, lo0);
  mulhilo(kPhiloxM1, ctr[2], hi1, lo1);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

Philox4x32::Block Philox4x32::apply(Block counter, Key key) noexcept {
  // 10 rounds with the key bumped by the Weyl sequence between rounds.
  for (int round = 0; round < 9; ++round) {
    counter = single_round(counter, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return single_round(counter, key);
}

// ---------------------------------------------------------------------------
// Bulk Philox evaluation
// ---------------------------------------------------------------------------
//
// One Philox block is a serial chain of 10 rounds (two 32x32->64 multiplies
// each), so a single evaluation is latency-bound.  The bulk kernels below
// run several independent counters through the rounds together — 8 blocks
// per iteration in 4-wide AVX2 vectors, or 4 blocks in scalar registers —
// which turns the chain latency into multiplier throughput.  Both paths are
// exact restatements of `apply`, validated against it by the known-answer
// and fill-vs-at test suites.

namespace {

/// 4 independent counters (hi half zero, as produced by at()/index_at())
/// through the full 10 rounds; emits both 64-bit halves of each block.
/// Written with named scalars rather than arrays so the 16 words stay in
/// registers.
inline void philox4_scalar(std::uint64_t ctr0, std::uint64_t ctr1,
                           std::uint64_t ctr2, std::uint64_t ctr3,
                           Philox4x32::Key key, std::uint64_t lo[4],
                           std::uint64_t hi[4]) noexcept {
  std::uint32_t a0 = static_cast<std::uint32_t>(ctr0);
  std::uint32_t a1 = static_cast<std::uint32_t>(ctr0 >> 32), a2 = 0, a3 = 0;
  std::uint32_t b0 = static_cast<std::uint32_t>(ctr1);
  std::uint32_t b1 = static_cast<std::uint32_t>(ctr1 >> 32), b2 = 0, b3 = 0;
  std::uint32_t c0 = static_cast<std::uint32_t>(ctr2);
  std::uint32_t c1 = static_cast<std::uint32_t>(ctr2 >> 32), c2 = 0, c3 = 0;
  std::uint32_t d0 = static_cast<std::uint32_t>(ctr3);
  std::uint32_t d1 = static_cast<std::uint32_t>(ctr3 >> 32), d2 = 0, d3 = 0;
  std::uint32_t k0 = key[0], k1 = key[1];
  for (int round = 0; round < 10; ++round) {
    const auto one = [k0, k1](std::uint32_t& w0, std::uint32_t& w1,
                              std::uint32_t& w2, std::uint32_t& w3) {
      std::uint32_t hi0, lo0, hi1, lo1;
      mulhilo(kPhiloxM0, w0, hi0, lo0);
      mulhilo(kPhiloxM1, w2, hi1, lo1);
      w0 = hi1 ^ w1 ^ k0;
      w1 = lo1;
      w2 = hi0 ^ w3 ^ k1;
      w3 = lo0;
    };
    one(a0, a1, a2, a3);
    one(b0, b1, b2, b3);
    one(c0, c1, c2, c3);
    one(d0, d1, d2, d3);
    k0 += kWeyl0;
    k1 += kWeyl1;
  }
  lo[0] = (static_cast<std::uint64_t>(a1) << 32) | a0;
  hi[0] = (static_cast<std::uint64_t>(a3) << 32) | a2;
  lo[1] = (static_cast<std::uint64_t>(b1) << 32) | b0;
  hi[1] = (static_cast<std::uint64_t>(b3) << 32) | b2;
  lo[2] = (static_cast<std::uint64_t>(c1) << 32) | c0;
  hi[2] = (static_cast<std::uint64_t>(c3) << 32) | c2;
  lo[3] = (static_cast<std::uint64_t>(d1) << 32) | d0;
  hi[3] = (static_cast<std::uint64_t>(d3) << 32) | d2;
}

/// Tile width for the bulk kernels: blocks evaluated before the reduction
/// pass.  64 blocks = two 512-byte halves buffers, comfortably L1-resident.
constexpr std::size_t kBlockTile = 64;

/// Scalar tile: blocks ctr0 + i*step for i in [0, nblocks), both halves.
void blocks_affine_scalar(Philox4x32::Key key, std::uint64_t ctr0,
                          std::uint64_t step, std::size_t nblocks,
                          std::uint64_t* lo, std::uint64_t* hi) noexcept {
  std::size_t i = 0;
  for (; i + 4 <= nblocks; i += 4) {
    const std::uint64_t c = ctr0 + i * step;
    philox4_scalar(c, c + step, c + 2 * step, c + 3 * step, key, lo + i,
                   hi + i);
  }
  for (; i < nblocks; ++i) {
    const Philox4x32::Block b = Philox4x32::apply(
        {static_cast<std::uint32_t>(ctr0 + i * step),
         static_cast<std::uint32_t>((ctr0 + i * step) >> 32), 0u, 0u},
        key);
    lo[i] = (static_cast<std::uint64_t>(b[1]) << 32) | b[0];
    hi[i] = (static_cast<std::uint64_t>(b[3]) << 32) | b[2];
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define ASYRGS_PHILOX_AVX2 1
#endif

#if defined(ASYRGS_PHILOX_AVX2)

__attribute__((target("avx2"))) void blocks_affine_avx2(
    Philox4x32::Key key, std::uint64_t ctr0, std::uint64_t step,
    std::size_t nblocks, std::uint64_t* lo, std::uint64_t* hi) noexcept {
  // Lane layout: each __m256i holds one Philox word of 4 blocks, the live 32
  // bits in the low half of every 64-bit lane (kept clean by masking after
  // every multiply, so vpmuludq always sees exact operands).
  const __m256i mul0 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM0));
  const __m256i mul1 = _mm256_set1_epi64x(static_cast<long long>(kPhiloxM1));
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFll);
  // set1_epi64x replicates the Weyl constant into the low 32-bit lane of
  // every 64-bit lane (high lane zero); add_epi32 then bumps the keys mod
  // 2^32 without carrying into the clean high halves.
  const __m256i weyl0 = _mm256_set1_epi64x(static_cast<long long>(kWeyl0));
  const __m256i weyl1 = _mm256_set1_epi64x(static_cast<long long>(kWeyl1));
  const __m256i lane_step = _mm256_set_epi64x(
      static_cast<long long>(3 * step), static_cast<long long>(2 * step),
      static_cast<long long>(step), 0ll);
  const __m256i group_step = _mm256_set1_epi64x(static_cast<long long>(4 * step));

  std::size_t i = 0;
  for (; i + 8 <= nblocks; i += 8) {
    const __m256i baseA = _mm256_add_epi64(
        _mm256_set1_epi64x(static_cast<long long>(ctr0 + i * step)),
        lane_step);
    const __m256i baseB = _mm256_add_epi64(baseA, group_step);
    __m256i a0 = _mm256_and_si256(baseA, mask32);
    __m256i a1 = _mm256_srli_epi64(baseA, 32);
    __m256i a2 = _mm256_setzero_si256();
    __m256i a3 = _mm256_setzero_si256();
    __m256i b0 = _mm256_and_si256(baseB, mask32);
    __m256i b1 = _mm256_srli_epi64(baseB, 32);
    __m256i b2 = _mm256_setzero_si256();
    __m256i b3 = _mm256_setzero_si256();
    __m256i k0 = _mm256_set1_epi64x(static_cast<long long>(key[0]));
    __m256i k1 = _mm256_set1_epi64x(static_cast<long long>(key[1]));
    for (int round = 0; round < 10; ++round) {
      const __m256i pa0 = _mm256_mul_epu32(a0, mul0);
      const __m256i pa1 = _mm256_mul_epu32(a2, mul1);
      const __m256i pb0 = _mm256_mul_epu32(b0, mul0);
      const __m256i pb1 = _mm256_mul_epu32(b2, mul1);
      a0 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(pa1, 32), a1),
                            k0);
      a1 = _mm256_and_si256(pa1, mask32);
      a2 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(pa0, 32), a3),
                            k1);
      a3 = _mm256_and_si256(pa0, mask32);
      b0 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(pb1, 32), b1),
                            k0);
      b1 = _mm256_and_si256(pb1, mask32);
      b2 = _mm256_xor_si256(_mm256_xor_si256(_mm256_srli_epi64(pb0, 32), b3),
                            k1);
      b3 = _mm256_and_si256(pb0, mask32);
      k0 = _mm256_add_epi32(k0, weyl0);
      k1 = _mm256_add_epi32(k1, weyl1);
    }
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lo + i),
        _mm256_or_si256(a0, _mm256_slli_epi64(a1, 32)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(hi + i),
        _mm256_or_si256(a2, _mm256_slli_epi64(a3, 32)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(lo + i + 4),
        _mm256_or_si256(b0, _mm256_slli_epi64(b1, 32)));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(hi + i + 4),
        _mm256_or_si256(b2, _mm256_slli_epi64(b3, 32)));
  }
  if (i < nblocks)
    blocks_affine_scalar(key, ctr0 + i * step, step, nblocks - i, lo + i,
                         hi + i);
}

// GCC 12's avx512fintrin.h trips -Wmaybe-uninitialized on the unmasked
// shift intrinsics (the _mm512_undefined_epi32 pass-through operand); the
// warning is a false positive in the header, not in this code.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx512f"))) void blocks_affine_avx512(
    Philox4x32::Key key, std::uint64_t ctr0, std::uint64_t step,
    std::size_t nblocks, std::uint64_t* lo, std::uint64_t* hi) noexcept {
  // Same lane discipline as the AVX2 kernel, 8 blocks per vector and two
  // vectors in flight (16 blocks per iteration).
  const __m512i mul0 = _mm512_set1_epi64(static_cast<long long>(kPhiloxM0));
  const __m512i mul1 = _mm512_set1_epi64(static_cast<long long>(kPhiloxM1));
  const __m512i mask32 = _mm512_set1_epi64(0xFFFFFFFFll);
  const __m512i weyl0 = _mm512_set1_epi64(static_cast<long long>(kWeyl0));
  const __m512i weyl1 = _mm512_set1_epi64(static_cast<long long>(kWeyl1));
  const __m512i lane_step = _mm512_set_epi64(
      static_cast<long long>(7 * step), static_cast<long long>(6 * step),
      static_cast<long long>(5 * step), static_cast<long long>(4 * step),
      static_cast<long long>(3 * step), static_cast<long long>(2 * step),
      static_cast<long long>(step), 0ll);
  const __m512i group_step =
      _mm512_set1_epi64(static_cast<long long>(8 * step));

  std::size_t i = 0;
  for (; i + 16 <= nblocks; i += 16) {
    const __m512i baseA = _mm512_add_epi64(
        _mm512_set1_epi64(static_cast<long long>(ctr0 + i * step)), lane_step);
    const __m512i baseB = _mm512_add_epi64(baseA, group_step);
    __m512i a0 = _mm512_and_epi64(baseA, mask32);
    __m512i a1 = _mm512_srli_epi64(baseA, 32);
    __m512i a2 = _mm512_setzero_si512();
    __m512i a3 = _mm512_setzero_si512();
    __m512i b0 = _mm512_and_epi64(baseB, mask32);
    __m512i b1 = _mm512_srli_epi64(baseB, 32);
    __m512i b2 = _mm512_setzero_si512();
    __m512i b3 = _mm512_setzero_si512();
    __m512i k0 = _mm512_set1_epi64(static_cast<long long>(key[0]));
    __m512i k1 = _mm512_set1_epi64(static_cast<long long>(key[1]));
    for (int round = 0; round < 10; ++round) {
      const __m512i pa0 = _mm512_mul_epu32(a0, mul0);
      const __m512i pa1 = _mm512_mul_epu32(a2, mul1);
      const __m512i pb0 = _mm512_mul_epu32(b0, mul0);
      const __m512i pb1 = _mm512_mul_epu32(b2, mul1);
      a0 = _mm512_xor_epi64(_mm512_xor_epi64(_mm512_srli_epi64(pa1, 32), a1),
                            k0);
      a1 = _mm512_and_epi64(pa1, mask32);
      a2 = _mm512_xor_epi64(_mm512_xor_epi64(_mm512_srli_epi64(pa0, 32), a3),
                            k1);
      a3 = _mm512_and_epi64(pa0, mask32);
      b0 = _mm512_xor_epi64(_mm512_xor_epi64(_mm512_srli_epi64(pb1, 32), b1),
                            k0);
      b1 = _mm512_and_epi64(pb1, mask32);
      b2 = _mm512_xor_epi64(_mm512_xor_epi64(_mm512_srli_epi64(pb0, 32), b3),
                            k1);
      b3 = _mm512_and_epi64(pb0, mask32);
      k0 = _mm512_add_epi32(k0, weyl0);
      k1 = _mm512_add_epi32(k1, weyl1);
    }
    _mm512_storeu_si512(lo + i,
                        _mm512_or_epi64(a0, _mm512_slli_epi64(a1, 32)));
    _mm512_storeu_si512(hi + i,
                        _mm512_or_epi64(a2, _mm512_slli_epi64(a3, 32)));
    _mm512_storeu_si512(lo + i + 8,
                        _mm512_or_epi64(b0, _mm512_slli_epi64(b1, 32)));
    _mm512_storeu_si512(hi + i + 8,
                        _mm512_or_epi64(b2, _mm512_slli_epi64(b3, 32)));
  }
  if (i < nblocks)
    blocks_affine_avx2(key, ctr0 + i * step, step, nblocks - i, lo + i,
                       hi + i);
}
#pragma GCC diagnostic pop

inline bool philox_use_avx2() noexcept {
  static const bool use = __builtin_cpu_supports("avx2");
  return use;
}

inline bool philox_use_avx512() noexcept {
  static const bool use = __builtin_cpu_supports("avx512f");
  return use;
}

#endif  // ASYRGS_PHILOX_AVX2

/// Dispatches a tile of affine-counter blocks to the widest available path.
inline void blocks_affine(Philox4x32::Key key, std::uint64_t ctr0,
                          std::uint64_t step, std::size_t nblocks,
                          std::uint64_t* lo, std::uint64_t* hi) noexcept {
#if defined(ASYRGS_PHILOX_AVX2)
  if (philox_use_avx512()) {
    blocks_affine_avx512(key, ctr0, step, nblocks, lo, hi);
    return;
  }
  if (philox_use_avx2()) {
    blocks_affine_avx2(key, ctr0, step, nblocks, lo, hi);
    return;
  }
#endif
  blocks_affine_scalar(key, ctr0, step, nblocks, lo, hi);
}

/// 128-bit multiply reduction identical to Philox4x32::index_at.
inline index_t reduce_index(std::uint64_t bits, index_t n) noexcept {
  const unsigned __int128 prod = static_cast<unsigned __int128>(bits) *
                                 static_cast<unsigned __int128>(n);
  return static_cast<index_t>(prod >> 64);
}

}  // namespace

void Philox4x32::fill_at(std::uint64_t first, std::size_t count,
                         std::uint64_t* out) const noexcept {
  std::size_t i = 0;
  // Align to an even stream position so blocks map to output pairs.
  while (i < count && ((first + i) & 1u)) {
    out[i] = at(first + i);
    ++i;
  }
  std::uint64_t lo[kBlockTile], hi[kBlockTile];
  while (i + 2 <= count) {
    const std::size_t blocks =
        std::min<std::size_t>(kBlockTile, (count - i) / 2);
    blocks_affine(key_, (first + i) >> 1, 1, blocks, lo, hi);
    for (std::size_t j = 0; j < blocks; ++j) {
      out[i + 2 * j] = lo[j];
      out[i + 2 * j + 1] = hi[j];
    }
    i += 2 * blocks;
  }
  if (i < count) out[i] = at(first + i);
}

void Philox4x32::fill_at_strided(std::uint64_t first, std::uint64_t stride,
                                 std::size_t count,
                                 std::uint64_t* out) const noexcept {
  if (stride == 1) {
    fill_at(first, count, out);
    return;
  }
  if ((stride & 1u) == 0) {
    // Even stride: constant parity, block counters advance by stride/2 —
    // one affine pass (same structure as fill_indices_strided, minus the
    // index reduction).
    std::uint64_t lo[kBlockTile], hi[kBlockTile];
    std::uint64_t* half = (first & 1u) ? hi : lo;
    std::size_t i = 0;
    while (i < count) {
      const std::size_t blocks = std::min<std::size_t>(kBlockTile, count - i);
      blocks_affine(key_, (first + i * stride) >> 1, stride >> 1, blocks, lo,
                    hi);
      for (std::size_t j = 0; j < blocks; ++j) out[i + j] = half[j];
      i += blocks;
    }
    return;
  }
  // Odd stride > 1: alternate parity; two interleaved affine passes.
  std::uint64_t lo[kBlockTile], hi[kBlockTile];
  std::size_t i = 0;
  while (i < count) {
    const std::size_t blocks = std::min<std::size_t>(kBlockTile, count - i);
    const std::uint64_t p0 = first + i * stride;
    const std::uint64_t p1 = p0 + stride;
    const std::size_t n_even = (blocks + 1) / 2;
    const std::size_t n_odd = blocks / 2;
    blocks_affine(key_, p0 >> 1, stride, n_even, lo, hi);
    for (std::size_t j = 0; j < n_even; ++j)
      out[i + 2 * j] = ((p0 + 2 * j * stride) & 1u) ? hi[j] : lo[j];
    blocks_affine(key_, p1 >> 1, stride, n_odd, lo, hi);
    for (std::size_t j = 0; j < n_odd; ++j)
      out[i + 2 * j + 1] = ((p1 + 2 * j * stride) & 1u) ? hi[j] : lo[j];
    i += blocks;
  }
}

void Philox4x32::fill_indices(std::uint64_t first, std::size_t count,
                              index_t n, index_t* out) const noexcept {
  std::size_t i = 0;
  while (i < count && ((first + i) & 1u)) {
    out[i] = index_at(first + i, n);
    ++i;
  }
  std::uint64_t lo[kBlockTile], hi[kBlockTile];
  while (i + 2 <= count) {
    const std::size_t blocks =
        std::min<std::size_t>(kBlockTile, (count - i) / 2);
    blocks_affine(key_, (first + i) >> 1, 1, blocks, lo, hi);
    for (std::size_t j = 0; j < blocks; ++j) {
      out[i + 2 * j] = reduce_index(lo[j], n);
      out[i + 2 * j + 1] = reduce_index(hi[j], n);
    }
    i += 2 * blocks;
  }
  if (i < count) out[i] = index_at(first + i, n);
}

void Philox4x32::fill_indices_strided(std::uint64_t first, std::uint64_t stride,
                                      std::size_t count, index_t n,
                                      index_t* out) const noexcept {
  if (stride == 1) {
    fill_indices(first, count, n, out);
    return;
  }
  if ((stride & 1u) == 0) {
    // Even stride: every position first + i*stride shares the parity of
    // `first`, and the block counters advance by the constant stride/2 —
    // an affine sequence the SIMD tile kernel handles directly.
    std::uint64_t lo[kBlockTile], hi[kBlockTile];
    std::uint64_t* half = (first & 1u) ? hi : lo;
    std::size_t i = 0;
    while (i < count) {
      const std::size_t blocks =
          std::min<std::size_t>(kBlockTile, count - i);
      blocks_affine(key_, (first + i * stride) >> 1, stride >> 1, blocks, lo,
                    hi);
      for (std::size_t j = 0; j < blocks; ++j)
        out[i + j] = reduce_index(half[j], n);
      i += blocks;
    }
    return;
  }
  // Odd stride > 1: positions alternate parity, so counters advance by
  // `stride` only every second draw.  Evaluate the even- and odd-position
  // subsequences as two affine passes and interleave.
  std::uint64_t lo[kBlockTile], hi[kBlockTile];
  std::size_t i = 0;
  while (i < count) {
    const std::size_t blocks = std::min<std::size_t>(kBlockTile, count - i);
    // Draws i..i+blocks-1 at positions p_j = first + (i+j)*stride; counters
    // p_j >> 1 advance by stride over j+2.  Two interleaved affine halves:
    const std::uint64_t p0 = first + i * stride;
    const std::uint64_t p1 = p0 + stride;
    const std::size_t n_even = (blocks + 1) / 2;  // draws i, i+2, ...
    const std::size_t n_odd = blocks / 2;         // draws i+1, i+3, ...
    blocks_affine(key_, p0 >> 1, stride, n_even, lo, hi);
    for (std::size_t j = 0; j < n_even; ++j) {
      const std::uint64_t bits = ((p0 + 2 * j * stride) & 1u) ? hi[j] : lo[j];
      out[i + 2 * j] = reduce_index(bits, n);
    }
    blocks_affine(key_, p1 >> 1, stride, n_odd, lo, hi);
    for (std::size_t j = 0; j < n_odd; ++j) {
      const std::uint64_t bits = ((p1 + 2 * j * stride) & 1u) ? hi[j] : lo[j];
      out[i + 2 * j + 1] = reduce_index(bits, n);
    }
    i += blocks;
  }
}

}  // namespace asyrgs
