// A reusable spin barrier for the "occasional synchronization" execution
// scheme (Theorem 2(a) discussion: iterate asynchronously for ~n updates,
// synchronize, restart).  Synchronization points are rare and the workers
// are compute-bound, so a sense-reversing spin barrier beats a futex-based
// std::barrier at the iteration granularity we care about.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Sense-reversing spin barrier for a fixed set of participants.
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants)
      : participants_(participants), waiting_(0), sense_(false) {
    require(participants > 0, "SpinBarrier: participants must be positive");
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants have arrived.  The barrier is immediately
  /// reusable for the next phase.
  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) ==
        participants_ - 1) {
      // Last arrival flips the phase for everyone.
      waiting_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      std::uint32_t spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > 4096) {
          std::this_thread::yield();  // oversubscribed: be polite
          spins = 0;
        }
      }
    }
  }

  [[nodiscard]] int participants() const noexcept { return participants_; }

 private:
  const int participants_;
  alignas(kCacheLineBytes) std::atomic<int> waiting_;
  alignas(kCacheLineBytes) std::atomic<bool> sense_;
};

}  // namespace asyrgs
