#include "asyrgs/simulate/virtual_engine.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/kernels.hpp"
#include "asyrgs/support/common.hpp"

namespace asyrgs {

namespace {

/// The virtual engine proper: production kernel + production direction
/// planner + an update window from which stale states are materialized.
///
/// Per update j with invisible set T = {t : t in window, t not visible}:
///
///   1. For each t in T (schedule order): save the exact bits of
///      x[row_t], then subtract delta_t — after the loop the iterate holds
///      the stale state x_{K(j)} on every coordinate row r reads.
///   2. d = kernel.delta(r): the production scan arithmetic (pinned
///      association, relaxed-atomic coordinate reads) evaluated against the
///      materialized snapshot.
///   3. Restore the saved bits in reverse save order — the current iterate
///      is recovered exactly, independent of floating-point cancellation in
///      the subtract/restore round trip.
///   4. kernel.apply(r, d): the production commit (racy_add — the same
///      load/add/store the non-atomic solver variant executes; on one
///      thread it is an exact +=) lands the increment on the *current*
///      iterate, and (r, d) enters the window ring.
///
/// With T empty this is byte-for-byte the sequential update — step 2 reads
/// the live iterate and step 4 adds onto it — which is what makes the P = 1
/// / zero-delay run bit-identical to core/rgs.
class VirtualEngine {
 public:
  VirtualEngine(const CsrMatrix& a, const std::vector<double>& b,
                const std::vector<double>& x0,
                const std::vector<double>& x_star, index_t tau,
                const VirtualEngineOptions& options,
                const DirectionSampler* sampler = nullptr)
      : a_(a), x_star_(x_star), x_(x0), options_(options) {
    require(a.square(), "virtual_engine: matrix must be square");
    require(static_cast<index_t>(b.size()) == a.rows() &&
                static_cast<index_t>(x0.size()) == a.rows() &&
                static_cast<index_t>(x_star.size()) == a.rows(),
            "virtual_engine: shape mismatch");
    require(options.step_size > 0.0 && options.step_size < 2.0,
            "virtual_engine: step size must be in (0, 2)");
    std::vector<double> inv_diag = a.diagonal();
    for (double& d : inv_diag) {
      require(d > 0.0, "virtual_engine: diagonal must be strictly positive");
      d = 1.0 / d;
    }
    detail::pack_rhs_diag(b, inv_diag, rhs_diag_);
    kernel_ = Kernel{a_.row_ptr().data(), a_.col_idx().data(),
                     a_.values().data(), rhs_diag_.data(), x_.data(),
                     options.step_size};
    // A team-1 shared-scope plan enumerates the global Philox direction
    // stream in order — the same stream every physical team size tiles.
    // A non-uniform sampler maps that stream through its alias table
    // exactly as the threaded engine's workers do.
    require(sampler == nullptr || sampler->directions() == a.rows(),
            "virtual_engine: sampler size must match the matrix");
    AsyncRgsOptions plan_options;
    plan_options.seed = options.seed;
    plan_options.scope = RandomizationScope::kShared;
    plan_.emplace(plan_options, a.rows(), /*team=*/1, sampler);
    window_rows_.resize(static_cast<std::size_t>(tau) + 1, 0);
    window_deltas_.resize(static_cast<std::size_t>(tau) + 1, 0.0);
    dirs_.resize(detail::kDirectionChunk);
    dir_base_ = dir_count_ = 0;
  }

  /// Direction of update j, served from the batched planner refill.
  [[nodiscard]] index_t direction(std::uint64_t j) {
    if (j < dir_base_ || j >= dir_base_ + dir_count_) {
      dir_base_ = j;
      dir_count_ = dirs_.size();
      plan_->fill(0, j, dir_count_, dirs_.data());
    }
    return dirs_[static_cast<std::size_t>(j - dir_base_)];
  }

  /// One virtual update: materialize the stale state for the invisible
  /// window indices `excl`, run the production kernel, restore, commit.
  void step(std::uint64_t j, index_t r, const std::uint64_t* excl,
            std::size_t count) {
    saved_.clear();
    for (std::size_t i = 0; i < count; ++i) {
      const std::size_t slot =
          static_cast<std::size_t>(excl[i] % window_rows_.size());
      const index_t row_t = window_rows_[slot];
      const double delta_t = window_deltas_[slot];
      if (delta_t == 0.0) continue;
      saved_.emplace_back(row_t, x_[static_cast<std::size_t>(row_t)]);
      x_[static_cast<std::size_t>(row_t)] -= delta_t;
    }
    const double d = kernel_.delta(r);
    for (std::size_t i = saved_.size(); i-- > 0;)
      x_[static_cast<std::size_t>(saved_[i].first)] = saved_[i].second;
    kernel_.apply(r, d);
    const std::size_t slot = static_cast<std::size_t>(j % window_rows_.size());
    window_rows_[slot] = r;
    window_deltas_[slot] = d;
  }

  void maybe_record(std::uint64_t j, SimResult& result) const {
    if (options_.record_every != 0 && j % options_.record_every == 0) {
      result.record_points.push_back(j);
      result.error_sq_history.push_back(error_sq());
    }
  }

  [[nodiscard]] SimResult finish(std::uint64_t iterations,
                                 SimResult&& recorded) {
    SimResult result;
    result.iterations = iterations;
    result.final_error_sq = error_sq();
    result.record_points = std::move(recorded.record_points);
    result.error_sq_history = std::move(recorded.error_sq_history);
    result.x = std::move(x_);
    return result;
  }

 private:
  // Same quadratic form and association as the replay simulator's recorder,
  // so the two error traces are directly comparable.
  [[nodiscard]] double error_sq() const {
    const index_t n = a_.rows();
    std::vector<double> e(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) e[i] = x_[i] - x_star_[i];
    double acc = 0.0;
    for (index_t i = 0; i < n; ++i) acc += e[i] * a_.row_dot(i, e.data());
    return std::max(acc, 0.0);
  }

  // The production pinned-scan kernel in its racy-write specialization: on a
  // single thread racy_add is an exact +=, and the pinned scan is the
  // association the bit-reproducibility contract pins.
  using Kernel = detail::SingleRhsUpdate<false, ScanMode::kPinned>;

  const CsrMatrix& a_;
  const std::vector<double>& x_star_;
  std::vector<double> x_;
  std::vector<detail::RhsDiagPair> rhs_diag_;
  Kernel kernel_{};
  VirtualEngineOptions options_;
  std::optional<detail::DirectionPlan> plan_;
  std::vector<index_t> window_rows_;
  std::vector<double> window_deltas_;
  std::vector<index_t> dirs_;
  std::uint64_t dir_base_ = 0;
  std::uint64_t dir_count_ = 0;
  std::vector<std::pair<index_t, double>> saved_;
};

}  // namespace

SimResult run_virtual_consistent(const CsrMatrix& a,
                                 const std::vector<double>& b,
                                 const std::vector<double>& x0,
                                 const std::vector<double>& x_star,
                                 const ConsistentDelayModel& delay,
                                 const VirtualEngineOptions& options,
                                 const DirectionSampler* sampler) {
  VirtualEngine engine(a, b, x0, x_star, delay.tau(), options, sampler);
  SimResult recorded;
  std::vector<std::uint64_t> invisible;

  for (std::uint64_t j = 0; j < options.iterations; ++j) {
    engine.maybe_record(j, recorded);
    const index_t r = engine.direction(j);

    // Verify the schedule respects Assumption A-3 before trusting it.
    const std::uint64_t k = delay.snapshot(j);
    require(k <= j, "run_virtual_consistent: schedule returned k(j) > j");
    require(j - k <= static_cast<std::uint64_t>(delay.tau()),
            "run_virtual_consistent: schedule violated its tau bound");

    // The snapshot x_{k(j)} is the current iterate minus every update in
    // [k, j) — a consistent read sees a prefix of the update sequence.
    invisible.clear();
    for (std::uint64_t t = k; t < j; ++t) invisible.push_back(t);
    engine.step(j, r, invisible.data(), invisible.size());
  }
  return engine.finish(options.iterations, std::move(recorded));
}

SimResult run_virtual_inconsistent(const CsrMatrix& a,
                                   const std::vector<double>& b,
                                   const std::vector<double>& x0,
                                   const std::vector<double>& x_star,
                                   const InconsistentDelayModel& delay,
                                   const VirtualEngineOptions& options) {
  VirtualEngine engine(a, b, x0, x_star, delay.tau(), options);
  SimResult recorded;
  const std::uint64_t tau = static_cast<std::uint64_t>(delay.tau());
  std::vector<std::uint64_t> excluded;

  for (std::uint64_t j = 0; j < options.iterations; ++j) {
    engine.maybe_record(j, recorded);
    const index_t r = engine.direction(j);

    // x_{K(j)} differs from x_j only on updates inside the tau window that
    // the schedule excludes (A-3': everything older is always visible).
    const std::uint64_t window_start = j > tau ? j - tau : 0;
    excluded.clear();
    delay.excluded_in_window(j, window_start, excluded);
    for (std::uint64_t t : excluded)
      require(t >= window_start && t < j,
              "run_virtual_inconsistent: schedule excluded an update outside "
              "its declared tau window");
    engine.step(j, r, excluded.data(), excluded.size());
  }
  return engine.finish(options.iterations, std::move(recorded));
}

VirtualEventResult run_virtual_event(const CsrMatrix& a,
                                     const std::vector<double>& b,
                                     const std::vector<double>& x0,
                                     const std::vector<double>& x_star,
                                     const EventSimOptions& event,
                                     const VirtualEngineOptions& options) {
  const EventDrivenSchedule schedule = EventDrivenSchedule::build(a, event);

  // The schedule was built against Philox(event.seed); the engine must
  // consume the identical direction stream or the visibility sets would
  // describe a different run.
  VirtualEngineOptions engine_options = options;
  engine_options.seed = event.seed;
  engine_options.iterations = event.iterations;

  VirtualEngine engine(a, b, x0, x_star, schedule.tau(), engine_options);
  SimResult recorded;
  for (std::uint64_t j = 0; j < event.iterations; ++j) {
    engine.maybe_record(j, recorded);
    const index_t r = engine.direction(j);
    const std::vector<std::uint64_t>& excluded = schedule.excluded(j);
    for (std::uint64_t t : excluded)
      require(t < j && j - t <= static_cast<std::uint64_t>(schedule.tau()),
              "run_virtual_event: schedule excluded an update outside its "
              "declared tau window");
    engine.step(j, r, excluded.data(), excluded.size());
  }

  VirtualEventResult out;
  out.result = engine.finish(event.iterations, std::move(recorded));
  out.stats = schedule.stats();
  out.tau = schedule.tau();
  return out;
}

}  // namespace asyrgs
