#include "asyrgs/sparse/coo.hpp"

#include <algorithm>
#include <numeric>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

CooBuilder::CooBuilder(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  require(rows > 0 && cols > 0, "CooBuilder: dimensions must be positive");
}

void CooBuilder::reserve(std::size_t n) {
  is_.reserve(n);
  js_.reserve(n);
  vs_.reserve(n);
}

void CooBuilder::add(index_t i, index_t j, double value) {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "CooBuilder::add: index out of range");
  is_.push_back(i);
  js_.push_back(j);
  vs_.push_back(value);
}

void CooBuilder::add_symmetric(index_t i, index_t j, double value) {
  add(i, j, value);
  if (i != j) add(j, i, value);
}

CsrMatrix CooBuilder::to_csr() const {
  const std::size_t m = is_.size();

  // Counting sort by row, then sort each row segment by column and fold
  // duplicates.  O(nnz log rowlen) overall, no global sort.
  std::vector<nnz_t> row_count(static_cast<std::size_t>(rows_) + 1, 0);
  for (std::size_t t = 0; t < m; ++t) row_count[is_[t] + 1]++;
  std::vector<nnz_t> row_start(row_count);
  std::partial_sum(row_start.begin(), row_start.end(), row_start.begin());

  std::vector<index_t> cols_tmp(m);
  std::vector<double> vals_tmp(m);
  {
    std::vector<nnz_t> cursor(row_start.begin(), row_start.end() - 1);
    for (std::size_t t = 0; t < m; ++t) {
      const nnz_t slot = cursor[is_[t]]++;
      cols_tmp[slot] = js_[t];
      vals_tmp[slot] = vs_[t];
    }
  }

  std::vector<nnz_t> row_ptr(static_cast<std::size_t>(rows_) + 1, 0);
  std::vector<index_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(m);
  values.reserve(m);

  std::vector<std::pair<index_t, double>> row_buffer;
  for (index_t i = 0; i < rows_; ++i) {
    row_buffer.clear();
    for (nnz_t t = row_start[i]; t < row_start[i + 1]; ++t)
      row_buffer.emplace_back(cols_tmp[t], vals_tmp[t]);
    std::sort(row_buffer.begin(), row_buffer.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    // Fold duplicates by summation.
    for (std::size_t t = 0; t < row_buffer.size(); ++t) {
      if (!col_idx.empty() &&
          static_cast<nnz_t>(col_idx.size()) > row_ptr[i] &&
          col_idx.back() == row_buffer[t].first) {
        values.back() += row_buffer[t].second;
      } else {
        col_idx.push_back(row_buffer[t].first);
        values.push_back(row_buffer[t].second);
      }
    }
    row_ptr[i + 1] = static_cast<nnz_t>(col_idx.size());
  }

  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

}  // namespace asyrgs
