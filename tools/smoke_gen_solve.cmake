# CTest smoke script: asyrgs_gen -> asyrgs_solve end to end.
#
# Expects: ASYRGS_GEN, ASYRGS_SOLVE (tool paths), KIND (generator kind),
# WORK_DIR (scratch directory, created fresh).  Optional: SOLVE_EXTRA, a
# semicolon-separated list of extra asyrgs_solve flags (e.g. the sharded
# serving path: "--shards;2;--repeat;3").
#
# Fails the test on a nonzero exit code from either tool, a missing matrix
# file, or a missing/too-large "relative residual:" line from the solver.

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(matrix "${WORK_DIR}/A.mtx")
set(solution "${WORK_DIR}/x.mtx")

if(KIND STREQUAL "laplacian2d")
  set(gen_args --kind laplacian2d --nx 16 --ny 16)
elseif(KIND STREQUAL "spd")
  set(gen_args --kind spd --n 300)
else()
  message(FATAL_ERROR "unknown smoke KIND '${KIND}'")
endif()

execute_process(
  COMMAND "${ASYRGS_GEN}" ${gen_args} --out "${matrix}"
  RESULT_VARIABLE gen_status
  OUTPUT_VARIABLE gen_out
  ERROR_VARIABLE gen_err)
if(NOT gen_status EQUAL 0)
  message(FATAL_ERROR
    "asyrgs_gen exited with ${gen_status}:\n${gen_out}\n${gen_err}")
endif()
if(NOT EXISTS "${matrix}")
  message(FATAL_ERROR "asyrgs_gen did not write ${matrix}")
endif()

if(NOT DEFINED SOLVE_EXTRA)
  set(SOLVE_EXTRA "")
endif()
execute_process(
  COMMAND "${ASYRGS_SOLVE}" --matrix "${matrix}" --out "${solution}"
          --tol 1e-8 --threads 2 ${SOLVE_EXTRA}
  RESULT_VARIABLE solve_status
  OUTPUT_VARIABLE solve_out
  ERROR_VARIABLE solve_err)
if(NOT solve_status EQUAL 0)
  message(FATAL_ERROR
    "asyrgs_solve exited with ${solve_status}:\n${solve_out}\n${solve_err}")
endif()
if(NOT EXISTS "${solution}")
  message(FATAL_ERROR "asyrgs_solve did not write ${solution}")
endif()

set(all_output "${solve_out}\n${solve_err}")
string(REGEX MATCH "relative residual: ([0-9.eE+-]+)" residual_line
       "${all_output}")
if(NOT residual_line)
  message(FATAL_ERROR
    "asyrgs_solve output has no 'relative residual:' line:\n${all_output}")
endif()
set(residual "${CMAKE_MATCH_1}")
if(residual GREATER "1e-6")
  message(FATAL_ERROR "residual ${residual} exceeds 1e-6")
endif()

message(STATUS "smoke ${KIND}: relative residual ${residual}")
