// Classic iterative solver tests: Jacobi, Gauss-Seidel/SOR, CG, flexible CG,
// preconditioners, block CG.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/block_cg.hpp"
#include "asyrgs/iter/cg.hpp"
#include "asyrgs/iter/fcg.hpp"
#include "asyrgs/iter/gauss_seidel.hpp"
#include "asyrgs/iter/jacobi.hpp"
#include "asyrgs/iter/precond.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

struct Problem {
  CsrMatrix a;
  std::vector<double> x_star;
  std::vector<double> b;
};

Problem laplacian_problem(index_t nx, index_t ny, std::uint64_t seed) {
  Problem p;
  p.a = laplacian_2d(nx, ny);
  p.x_star = random_vector(p.a.rows(), seed);
  p.b = rhs_from_solution(p.a, p.x_star);
  return p;
}

// --- Jacobi ---------------------------------------------------------------------

TEST(Jacobi, ConvergesOnStrictlyDominantSystem) {
  ThreadPool pool(4);
  RandomBandedOptions opt;
  opt.n = 500;
  opt.seed = 2;
  const CsrMatrix a = random_sdd(opt);
  const std::vector<double> x_star = random_vector(a.rows(), 3);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  std::vector<double> x(a.rows(), 0.0);
  SolveOptions so;
  so.max_iterations = 500;
  so.rel_tol = 1e-10;
  const SolveReport rep = jacobi_solve(pool, a, b, x, so);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(relative_residual(a, b, x), 1e-9);
  EXPECT_LT(nrm2(subtract(x, x_star)) / nrm2(x_star), 1e-8);
}

TEST(Jacobi, RejectsZeroDiagonal) {
  ThreadPool pool(2);
  CooBuilder builder(2, 2);
  builder.add(0, 1, 1.0);
  builder.add(1, 0, 1.0);
  builder.add(0, 0, 1.0);
  const CsrMatrix a = builder.to_csr();
  std::vector<double> b(2, 1.0), x(2, 0.0);
  EXPECT_THROW(jacobi_solve(pool, a, b, x), Error);
}

// --- Gauss-Seidel / SOR ------------------------------------------------------------

TEST(GaussSeidel, ConvergesOnLaplacian) {
  Problem p = laplacian_problem(12, 12, 5);
  std::vector<double> x(p.a.rows(), 0.0);
  SolveOptions so;
  so.max_iterations = 5000;
  so.rel_tol = 1e-10;
  const SolveReport rep = gauss_seidel_solve(p.a, p.b, x, so);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(relative_residual(p.a, p.b, x), 1e-9);
}

TEST(GaussSeidel, SorAcceleratesOnLaplacian) {
  // Optimal SOR omega for the 2-D Laplacian is well above 1; omega = 1.5
  // must beat plain Gauss-Seidel on iteration count.
  Problem p = laplacian_problem(15, 15, 7);
  SolveOptions so;
  so.max_iterations = 20000;
  so.rel_tol = 1e-8;

  std::vector<double> x_gs(p.a.rows(), 0.0);
  const SolveReport gs = gauss_seidel_solve(p.a, p.b, x_gs, so, 1.0);
  std::vector<double> x_sor(p.a.rows(), 0.0);
  const SolveReport sor = gauss_seidel_solve(p.a, p.b, x_sor, so, 1.5);
  EXPECT_TRUE(gs.converged);
  EXPECT_TRUE(sor.converged);
  EXPECT_LT(sor.iterations, gs.iterations);
}

TEST(GaussSeidel, RejectsBadOmega) {
  Problem p = laplacian_problem(3, 3, 1);
  std::vector<double> x(p.a.rows(), 0.0);
  EXPECT_THROW(sor_sweep(p.a, p.b, x, 0.0), Error);
  EXPECT_THROW(sor_sweep(p.a, p.b, x, 2.0), Error);
}

// --- CG -------------------------------------------------------------------------------

TEST(Cg, SolvesToTightTolerance) {
  ThreadPool pool(4);
  Problem p = laplacian_problem(20, 20, 9);
  std::vector<double> x(p.a.rows(), 0.0);
  SolveOptions so;
  so.max_iterations = 2000;
  so.rel_tol = 1e-12;
  const SolveReport rep = cg_solve(pool, p.a, p.b, x, so);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-9);
  // CG on an n-dim SPD system cannot take more than n steps (exact arith.).
  EXPECT_LE(rep.iterations, static_cast<int>(p.a.rows()));
}

TEST(Cg, TracksMonotoneHistoryLength) {
  ThreadPool pool(4);
  Problem p = laplacian_problem(10, 10, 11);
  std::vector<double> x(p.a.rows(), 0.0);
  SolveOptions so;
  so.max_iterations = 300;
  so.rel_tol = 1e-10;
  so.track_history = true;
  const SolveReport rep = cg_solve(pool, p.a, p.b, x, so);
  EXPECT_EQ(static_cast<int>(rep.residual_history.size()), rep.iterations);
  EXPECT_LE(rep.residual_history.back(), so.rel_tol);
}

TEST(Cg, JacobiPreconditionerHelpsOnScaledSystem) {
  // Badly scaled diagonal: Jacobi preconditioning restores CG's behaviour.
  ThreadPool pool(4);
  CooBuilder builder(200, 200);
  Xoshiro256 rng(13);
  for (index_t i = 0; i < 200; ++i) {
    const double scale = std::pow(10.0, 4.0 * uniform_real(rng));
    builder.add(i, i, scale);
    if (i + 1 < 200) builder.add_symmetric(i + 1, i, 0.05);
  }
  const CsrMatrix a = builder.to_csr();
  const std::vector<double> x_star = random_vector(200, 17);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  SolveOptions so;
  so.max_iterations = 400;
  so.rel_tol = 1e-10;

  std::vector<double> x_plain(200, 0.0);
  const SolveReport plain = cg_solve(pool, a, b, x_plain, so);

  JacobiPreconditioner jacobi(a);
  std::vector<double> x_pc(200, 0.0);
  const SolveReport pc = cg_solve(pool, a, b, x_pc, so, &jacobi);

  EXPECT_TRUE(pc.converged);
  EXPECT_LE(pc.iterations, plain.iterations);
}

TEST(Cg, ZeroRhsReturnsZero) {
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_1d(10);
  std::vector<double> b(10, 0.0), x(10, 1.0);
  const SolveReport rep = cg_solve(pool, a, b, x);
  EXPECT_TRUE(rep.converged);
  EXPECT_DOUBLE_EQ(nrm2(x), 0.0);
}

// --- Flexible CG -----------------------------------------------------------------------

TEST(Fcg, WithIdentityPreconditionerMatchesCgIterationCount) {
  ThreadPool pool(4);
  Problem p = laplacian_problem(14, 14, 19);
  SolveOptions so;
  so.max_iterations = 1000;
  so.rel_tol = 1e-10;

  std::vector<double> x_cg(p.a.rows(), 0.0);
  const SolveReport cg = cg_solve(pool, p.a, p.b, x_cg, so);

  IdentityPreconditioner identity;
  FcgOptions fo;
  fo.base = so;
  std::vector<double> x_fcg(p.a.rows(), 0.0);
  const FcgReport fcg = fcg_solve(pool, p.a, p.b, x_fcg, identity, fo);

  EXPECT_TRUE(fcg.base.converged);
  // Identity-preconditioned FCG is mathematically CG; allow small slack for
  // the different recurrence arithmetic.
  EXPECT_NEAR(fcg.base.iterations, cg.iterations, 2);
}

TEST(Fcg, RandomizedGaussSeidelPreconditionerCutsIterations) {
  ThreadPool pool(4);
  Problem p = laplacian_problem(16, 16, 23);
  SolveOptions so;
  so.max_iterations = 2000;
  so.rel_tol = 1e-10;

  IdentityPreconditioner identity;
  FcgOptions fo;
  fo.base = so;
  std::vector<double> x_plain(p.a.rows(), 0.0);
  const FcgReport plain = fcg_solve(pool, p.a, p.b, x_plain, identity, fo);

  RgsPreconditioner rgs_pc(p.a, /*sweeps=*/3, /*step_size=*/1.0, /*seed=*/5);
  std::vector<double> x_pc(p.a.rows(), 0.0);
  const FcgReport pc = fcg_solve(pool, p.a, p.b, x_pc, rgs_pc, fo);

  EXPECT_TRUE(plain.base.converged);
  EXPECT_TRUE(pc.base.converged);
  EXPECT_LT(pc.base.iterations, plain.base.iterations);
  EXPECT_EQ(pc.preconditioner_applications, pc.base.iterations);
}

TEST(Fcg, TruncationStillConverges) {
  ThreadPool pool(4);
  Problem p = laplacian_problem(12, 12, 29);
  RgsPreconditioner pc(p.a, 2, 1.0, 7);
  FcgOptions fo;
  fo.base.max_iterations = 2000;
  fo.base.rel_tol = 1e-9;
  fo.truncation = 4;
  std::vector<double> x(p.a.rows(), 0.0);
  const FcgReport rep = fcg_solve(pool, p.a, p.b, x, pc, fo);
  EXPECT_TRUE(rep.base.converged);
  EXPECT_LT(relative_residual(p.a, p.b, x), 1e-8);
}

// --- block CG -----------------------------------------------------------------------------

TEST(BlockCg, MatchesColumnwiseCg) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(12, 10);
  const MultiVector x_star = random_multivector(a.rows(), 5, 31);
  const MultiVector b = rhs_from_solution(a, x_star);

  SolveOptions so;
  so.max_iterations = 600;
  so.rel_tol = 1e-10;

  MultiVector x(a.rows(), 5);
  const BlockSolveReport rep = block_cg_solve(pool, a, b, x, so);
  EXPECT_TRUE(rep.all_converged(5));

  for (index_t c = 0; c < 5; ++c) {
    std::vector<double> xc(a.rows(), 0.0);
    const std::vector<double> bc = b.column(c);
    cg_solve(pool, a, bc, xc, so);
    const std::vector<double> x_col = x.column(c);
    EXPECT_LT(nrm2(subtract(x_col, xc)) / nrm2(xc), 1e-7) << "column " << c;
  }
}

TEST(BlockCg, PerColumnResidualsReported) {
  ThreadPool pool(4);
  const CsrMatrix a = laplacian_2d(8, 8);
  const MultiVector b = random_multivector(a.rows(), 3, 37);
  MultiVector x(a.rows(), 3);
  SolveOptions so;
  so.max_iterations = 400;
  so.rel_tol = 1e-9;
  so.track_history = true;
  const BlockSolveReport rep = block_cg_solve(pool, a, b, x, so);
  ASSERT_EQ(rep.column_relative_residuals.size(), 3u);
  for (double r : rep.column_relative_residuals) EXPECT_LE(r, 1e-9);
  EXPECT_FALSE(rep.residual_history.empty());
}

class BlockCgPartitionTest : public ::testing::TestWithParam<RowPartition> {};

TEST_P(BlockCgPartitionTest, AllPartitionsSolve) {
  ThreadPool pool(8);
  const CsrMatrix a = laplacian_2d(9, 9);
  const MultiVector x_star = random_multivector(a.rows(), 2, 41);
  const MultiVector b = rhs_from_solution(a, x_star);
  MultiVector x(a.rows(), 2);
  SolveOptions so;
  so.max_iterations = 400;
  so.rel_tol = 1e-10;
  const BlockSolveReport rep =
      block_cg_solve(pool, a, b, x, so, 8, GetParam());
  EXPECT_TRUE(rep.all_converged(2));
}

INSTANTIATE_TEST_SUITE_P(AllPartitions, BlockCgPartitionTest,
                         ::testing::Values(RowPartition::kContiguous,
                                           RowPartition::kRoundRobin,
                                           RowPartition::kDynamic));

}  // namespace
}  // namespace asyrgs
