// Asynchronous Jacobi ("chaotic relaxation", Chazan & Miranker 1969).
//
// The historical baseline the paper's introduction positions against: each
// worker repeatedly relaxes its block of coordinates in place,
//
//   x_i <- (b_i - sum_{j != i} A_ij x_j) / A_ii ,
//
// reading whatever values of x other workers have most recently published.
// Convergence requires rho(|M|) < 1 for the Jacobi iteration matrix
// M = D^{-1}(D - A) — essentially diagonal dominance; on a general SPD
// matrix the iteration may diverge, which is exactly the applicability gap
// randomization closes.  Kept deliberately faithful to the classic scheme:
// deterministic coordinate order, no randomization.
#pragma once

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Coordinate-ownership layout for chaotic relaxation.
enum class JacobiOwnership {
  kContiguous,  ///< worker w owns a contiguous block of rows (classic)
  kRoundRobin,  ///< worker w owns rows w, w+P, w+2P, ... — adjacent rows
                ///< update concurrently from each other's stale values,
                ///< which maximizes the Jacobi-like simultaneity
};

/// Options for chaotic relaxation.
struct AsyncJacobiOptions {
  int sweeps = 10;    ///< each worker performs `sweeps` passes over its rows
  int workers = 0;    ///< 0 = pool capacity
  double damping = 1.0;  ///< under-relaxation factor in (0, 1]
  JacobiOwnership ownership = JacobiOwnership::kContiguous;
};

/// Runs asynchronous Jacobi on A x = b starting from `x` (in place).
/// Reuses AsyncRgsReport for uniform benchmarking.
AsyncRgsReport async_jacobi_solve(ThreadPool& pool, const CsrMatrix& a,
                                  const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const AsyncJacobiOptions& options = {});

}  // namespace asyrgs
