#include "asyrgs/linalg/lanczos.hpp"

#include <algorithm>
#include <cmath>

#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"

namespace asyrgs {

int tridiag_count_below(const std::vector<double>& d,
                        const std::vector<double>& e, double x) {
  // LDL^T-based Sturm count: the number of negative pivots of T - xI equals
  // the number of eigenvalues below x.  An exact-zero pivot (singular
  // leading minor, which can occur even when x is not an eigenvalue) is
  // perturbed to a tiny negative value *and counted* before it feeds the
  // next division; IEEE overflow of e^2/pivot to +-inf is benign here.
  const std::size_t n = d.size();
  int count = 0;
  double pivot = d[0] - x;
  if (pivot == 0.0) pivot = -1e-300;
  if (pivot < 0.0) ++count;
  for (std::size_t i = 1; i < n; ++i) {
    pivot = (d[i] - x) - e[i - 1] * e[i - 1] / pivot;
    if (pivot == 0.0) pivot = -1e-300;
    if (pivot < 0.0) ++count;
  }
  return count;
}

std::vector<double> tridiag_eigenvalues(const std::vector<double>& d,
                                        const std::vector<double>& e) {
  require(!d.empty(), "tridiag_eigenvalues: empty matrix");
  require(e.size() + 1 == d.size(),
          "tridiag_eigenvalues: off-diagonal must have n-1 entries");
  const std::size_t n = d.size();

  // Gershgorin interval containing the whole spectrum.
  double lo = d[0], hi = d[0];
  for (std::size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    if (i > 0) radius += std::abs(e[i - 1]);
    if (i + 1 < n) radius += std::abs(e[i]);
    lo = std::min(lo, d[i] - radius);
    hi = std::max(hi, d[i] + radius);
  }
  const double span = std::max(hi - lo, 1e-300);

  std::vector<double> eig(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Bisect for the (k+1)-th smallest eigenvalue.
    double a = lo, b = hi;
    for (int it = 0; it < 128 && (b - a) > 1e-15 * span; ++it) {
      const double mid = 0.5 * (a + b);
      if (tridiag_count_below(d, e, mid) <= static_cast<int>(k))
        a = mid;
      else
        b = mid;
    }
    eig[k] = 0.5 * (a + b);
  }
  return eig;
}

LanczosResult lanczos_extreme(ThreadPool& pool, const CsrMatrix& a, int steps,
                              std::uint64_t seed) {
  require(a.square(), "lanczos_extreme: matrix must be square");
  require(steps >= 1, "lanczos_extreme: need at least one step");
  const index_t n = a.rows();
  steps = static_cast<int>(std::min<index_t>(steps, n));

  LanczosResult result;
  std::vector<std::vector<double>> v;  // Lanczos basis (full reorth.)
  v.reserve(static_cast<std::size_t>(steps) + 1);

  std::vector<double> v0 = random_vector(n, seed);
  scal(1.0 / nrm2(v0), v0);
  v.push_back(std::move(v0));

  std::vector<double> alpha, beta;
  std::vector<double> w(static_cast<std::size_t>(n));

  for (int j = 0; j < steps; ++j) {
    spmv(pool, a, v[static_cast<std::size_t>(j)].data(), w.data());
    if (j > 0)
      axpy(-beta[static_cast<std::size_t>(j - 1)],
           v[static_cast<std::size_t>(j - 1)], w);
    const double aj = dot(v[static_cast<std::size_t>(j)], w);
    alpha.push_back(aj);
    axpy(-aj, v[static_cast<std::size_t>(j)], w);

    // Full reorthogonalization: two passes of classical Gram-Schmidt keep
    // the basis orthonormal to machine precision at this scale.
    for (int pass = 0; pass < 2; ++pass)
      for (const auto& basis_vec : v) axpy(-dot(basis_vec, w), basis_vec, w);

    const double bj = nrm2(w);
    result.steps = j + 1;
    if (bj < 1e-13) {
      result.breakdown = true;  // invariant subspace: Ritz values are exact
      break;
    }
    if (j + 1 < steps) {
      beta.push_back(bj);
      std::vector<double> next(w);
      scal(1.0 / bj, next);
      v.push_back(std::move(next));
    }
  }

  const std::vector<double> ritz = tridiag_eigenvalues(alpha, beta);
  result.lambda_min = ritz.front();
  result.lambda_max = ritz.back();
  return result;
}

}  // namespace asyrgs
