// Ablation B — Step-size control (Section 6).
//
// Two questions the paper's Section 6 raises:
//  1. In the real parallel solver, how does the final error after a fixed
//     sweep budget depend on beta, and where does the measured optimum sit
//     relative to the theory's beta~ = 1/(1 + 2 rho tau) (with tau ~ P)?
//  2. In the simulator under hostile delay (2 rho tau >= 1, where beta = 1
//     has no guarantee), does shrinking beta restore convergence?
#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("ablation_beta", "Step-size ablation (Section 6)");
  GramCli gram_cli = add_gram_options(cli);
  auto sweeps = cli.add_int("sweeps", 30, "AsyRGS sweep budget");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all)");
  cli.parse(argc, argv);

  print_banner("ablation_beta", "Section 6 (Theorem 3) ablation");
  const SocialGram system = build_gram(gram_cli);
  const CsrMatrix a = scaled_gram(system);
  print_matrix_profile(a);

  ThreadPool& pool = ThreadPool::global();
  const int workers = *threads > 0 ? static_cast<int>(*threads) : pool.size();
  const double rho_val = rho(a);
  // tau ~ P in the reference scenario (Section 4 discussion).
  const index_t tau_est = workers;
  const double beta_opt = optimal_beta_consistent(rho_val, tau_est);
  std::cout << "# threads=" << workers << " rho=" << fmt_sci(rho_val)
            << " tau~P=" << tau_est << " theory beta~="
            << fmt_fixed(beta_opt, 4) << "\n";

  const std::vector<double> x_star = random_vector(a.rows(), 5);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const double x_star_norm = a_norm(a, x_star);

  // --- Part 1: real parallel solver, beta sweep -----------------------------
  Table table({"beta", "rel_residual", "rel_anorm_err", "nu_tau(beta)"});
  std::vector<double> betas = {0.1, 0.25, 0.5, 0.75, 0.9, 1.0,
                               1.25, 1.5, beta_opt};
  std::sort(betas.begin(), betas.end());
  for (double beta : betas) {
    std::vector<double> x(a.rows(), 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = static_cast<int>(*sweeps);
    opt.seed = 1;
    opt.workers = workers;
    opt.step_size = beta;
    async_rgs_solve(pool, a, b, x, opt);
    const double nu = beta <= 1.0 ? nu_tau(rho_val, tau_est, beta) : 0.0;
    table.add_row({fmt_fixed(beta, 4),
                   fmt_sci(relative_residual(a, b, x)),
                   fmt_sci(a_norm_error(a, x, x_star) / x_star_norm),
                   beta <= 1.0 ? fmt_fixed(nu, 4) : "(n/a)"});
  }
  table.print(std::cout);
  std::cout << "# shape check: on this lightly-delayed hardware run the "
               "optimum sits near beta ~ 1;\n"
            << "# the theory's beta~ is the *guaranteed-safe* choice, not "
               "the empirical optimum (bounds are pessimistic).\n\n";

  // --- Part 2: simulator under hostile delay --------------------------------
  // Unit-diagonal matrix with lambda_max >> 2 under full-batch delay:
  // beta = 1 diverges, small beta converges (cf. Section 6: "a convergent
  // method for any delay").
  const index_t n = 48;
  const double c = 0.2;
  CooBuilder builder(n, n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) builder.add(i, j, i == j ? 1.0 : c);
  const CsrMatrix hostile = builder.to_csr();
  const std::vector<double> hx_star = random_vector(n, 17);
  const std::vector<double> hb = rhs_from_solution(hostile, hx_star);
  const std::vector<double> hx0(static_cast<std::size_t>(n), 0.0);
  const double he0 = std::pow(a_norm_error(hostile, hx0, hx_star), 2);
  const double h_rho = rho(hostile);
  const BatchDelay batch(n);

  Table hostile_table({"beta", "E_m/E_0", "status"});
  for (double beta :
       {1.0, 0.5, 0.25, optimal_beta_consistent(h_rho, n - 1)}) {
    SimOptions opt;
    opt.iterations = static_cast<std::uint64_t>(n) * 40;
    opt.seed = 3;
    opt.step_size = beta;
    const SimResult sim =
        simulate_consistent(hostile, hb, hx0, hx_star, batch, opt);
    const double ratio = sim.final_error_sq / he0;
    hostile_table.add_row(
        {fmt_fixed(beta, 4), fmt_sci(ratio),
         ratio < 1.0 ? "converging" : "DIVERGING"});
  }
  std::cout << "# hostile-delay simulator: lambda_max="
            << fmt_fixed(1.0 + (static_cast<double>(n) - 1.0) * c, 1)
            << ", batch delay tau=" << (n - 1) << ", 2*rho*tau="
            << fmt_fixed(2.0 * h_rho * static_cast<double>(n - 1), 2) << "\n";
  hostile_table.print(std::cout);
  std::cout << "# shape check: beta=1 diverges here; small beta (incl. the "
               "theory's beta~) converges.\n";
  return 0;
}
