// The one-shot AsyRGS entry points, as thin wrappers over a temporary
// prepared handle (asyrgs/problem.hpp).  The kernels and the engine
// invocation live in problem.cpp / core/kernels.hpp — these functions only
// bind a throwaway SpdProblem and translate SolveOutcome back to the legacy
// AsyncRgsReport shape, so one-shot and prepared solves share every
// instruction of the hot path (and equal-seed pinned-scan runs are
// bit-identical through either interface).
#include "asyrgs/core/async_rgs.hpp"

#include "asyrgs/problem.hpp"

namespace asyrgs {

AsyncRgsReport async_rgs_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options) {
  SpdProblem problem(pool, a, /*check_input=*/false);
  return detail::report_from_outcome(
      problem.solve(b, x, to_controls(options)));
}

AsyncRgsReport async_rgs_solve_block(ThreadPool& pool, const CsrMatrix& a,
                                     const MultiVector& b, MultiVector& x,
                                     const AsyncRgsOptions& options) {
  SpdProblem problem(pool, a, /*check_input=*/false);
  return detail::report_from_outcome(
      problem.solve(b, x, to_controls(options)));
}

}  // namespace asyrgs
