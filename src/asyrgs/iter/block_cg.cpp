#include "asyrgs/iter/block_cg.hpp"

#include <cmath>

#include "asyrgs/support/timer.hpp"

namespace asyrgs {

namespace {

/// Per-column dot products acc_c = sum_i X(i,c) * Y(i,c), fused over the
/// row-major blocks.
std::vector<double> column_dots(const MultiVector& x, const MultiVector& y) {
  std::vector<double> acc(static_cast<std::size_t>(x.cols()), 0.0);
  for (index_t i = 0; i < x.rows(); ++i) {
    const double* xr = x.row(i);
    const double* yr = y.row(i);
    for (index_t c = 0; c < x.cols(); ++c) acc[c] += xr[c] * yr[c];
  }
  return acc;
}

}  // namespace

BlockSolveReport block_cg_solve(ThreadPool& pool, const CsrMatrix& a,
                                const MultiVector& b, MultiVector& x,
                                const SolveOptions& options, int workers,
                                RowPartition partition) {
  require(a.square(), "block_cg_solve: matrix must be square");
  require(b.rows() == a.rows() && x.rows() == a.rows() &&
              b.cols() == x.cols(),
          "block_cg_solve: shape mismatch");
  const index_t n = a.rows();
  const index_t k = b.cols();

  WallTimer timer;
  BlockSolveReport report;
  report.column_relative_residuals.assign(static_cast<std::size_t>(k), 0.0);

  const std::vector<double> b_norms = column_norms(b);

  MultiVector r(n, k), p(n, k), ap(n, k);
  block_residual(pool, a, b, x, r, workers);
  p = r;
  std::vector<double> rr = column_dots(r, r);

  std::vector<char> active(static_cast<std::size_t>(k), 1);
  auto refresh_convergence = [&]() {
    report.columns_converged = 0;
    for (index_t c = 0; c < k; ++c) {
      const double denom = b_norms[c] > 0.0 ? b_norms[c] : 1.0;
      const double rel = std::sqrt(std::max(rr[c], 0.0)) / denom;
      report.column_relative_residuals[c] = rel;
      if (rel <= options.rel_tol) {
        active[c] = 0;
        ++report.columns_converged;
      }
    }
  };
  refresh_convergence();

  for (int it = 1;
       it <= options.max_iterations && report.columns_converged < k; ++it) {
    spmv_block(pool, a, p, ap, workers, partition);
    const std::vector<double> p_ap = column_dots(p, ap);

    std::vector<double> alpha(static_cast<std::size_t>(k), 0.0);
    for (index_t c = 0; c < k; ++c)
      if (active[c] && p_ap[c] > 0.0) alpha[c] = rr[c] / p_ap[c];

    // X += P * diag(alpha); R -= AP * diag(alpha), fused row-wise.
    pool.parallel_for(
        0, n,
        [&](index_t lo, index_t hi) {
          for (index_t i = lo; i < hi; ++i) {
            double* xr = x.row(i);
            double* rrow = r.row(i);
            const double* pr = p.row(i);
            const double* apr = ap.row(i);
            for (index_t c = 0; c < k; ++c) {
              xr[c] += alpha[c] * pr[c];
              rrow[c] -= alpha[c] * apr[c];
            }
          }
        },
        workers);

    std::vector<double> rr_next = column_dots(r, r);
    std::vector<double> beta(static_cast<std::size_t>(k), 0.0);
    for (index_t c = 0; c < k; ++c)
      if (active[c] && rr[c] > 0.0) beta[c] = rr_next[c] / rr[c];
    rr = std::move(rr_next);

    pool.parallel_for(
        0, n,
        [&](index_t lo, index_t hi) {
          for (index_t i = lo; i < hi; ++i) {
            double* pr = p.row(i);
            const double* rrow = r.row(i);
            for (index_t c = 0; c < k; ++c)
              pr[c] = rrow[c] + beta[c] * pr[c];
          }
        },
        workers);

    report.iterations = it;
    refresh_convergence();
    if (options.track_history) {
      double num = 0.0, den = 0.0;
      for (index_t c = 0; c < k; ++c) {
        num += rr[c];
        den += b_norms[c] * b_norms[c];
      }
      report.residual_history.push_back(
          std::sqrt(std::max(num, 0.0)) / std::sqrt(std::max(den, 1e-300)));
    }
  }

  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
