// minigtest — assertion machinery.
//
// AssertionResult / Message / AssertHelper reproduce the GoogleTest failure
// pipeline closely enough that `EXPECT_EQ(a, b) << "context " << i;` works:
// the comparison helper produces an AssertionResult, the macro routes a
// failing result into an AssertHelper, and user-streamed context binds to the
// Message *before* AssertHelper::operator= records the failure.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "minigtest/print.hpp"

namespace testing {

class Message {
 public:
  Message() = default;

  template <typename T>
  Message& operator<<(const T& value) {
    if constexpr (internal::IsStreamable<std::decay_t<T>>::value) {
      stream_ << value;
    } else {
      internal::PrintValue(value, stream_);
    }
    return *this;
  }

  std::string str() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
};

class AssertionResult {
 public:
  explicit AssertionResult(bool success) : success_(success) {}

  explicit operator bool() const { return success_; }
  AssertionResult operator!() const {
    AssertionResult negated(!success_);
    negated.message_ = message_;
    return negated;
  }

  const std::string& message() const { return message_; }

  template <typename T>
  AssertionResult& operator<<(const T& value) {
    std::ostringstream os;
    if constexpr (internal::IsStreamable<std::decay_t<T>>::value) {
      os << value;
    } else {
      internal::PrintValue(value, os);
    }
    message_ += os.str();
    return *this;
  }

 private:
  bool success_;
  std::string message_;
};

inline AssertionResult AssertionSuccess() { return AssertionResult(true); }
inline AssertionResult AssertionFailure() { return AssertionResult(false); }

namespace internal {

enum class FailureKind { kNonFatal, kFatal };

// Implemented in minigtest.cpp: records the failure against the running test
// and prints it immediately.
void ReportFailure(FailureKind kind, const char* file, int line,
                   const std::string& message);

class AssertHelper {
 public:
  AssertHelper(FailureKind kind, const char* file, int line,
               std::string summary)
      : kind_(kind), file_(file), line_(line), summary_(std::move(summary)) {}

  // The `= Message() << ...` pattern: by the time operator= runs, the
  // message holds every user-streamed operand.
  void operator=(const Message& message) const {
    std::string text = summary_;
    const std::string user = message.str();
    if (!user.empty()) {
      text += "\n";
      text += user;
    }
    ReportFailure(kind_, file_, line_, text);
  }

 private:
  FailureKind kind_;
  const char* file_;
  int line_;
  std::string summary_;
};

// --- comparison helpers -----------------------------------------------------

template <typename A, typename B>
AssertionResult CmpHelperOp(const char* op, bool ok, const char* lhs_expr,
                            const char* rhs_expr, const A& lhs, const B& rhs) {
  if (ok) return AssertionSuccess();
  return AssertionFailure() << "Expected: (" << lhs_expr << ") " << op << " ("
                            << rhs_expr << "), actual: " << PrintToString(lhs)
                            << " vs " << PrintToString(rhs);
}

template <typename A, typename B>
AssertionResult CmpHelperEQ(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  if (lhs == rhs) return AssertionSuccess();
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_expr << "\n    Which is: "
                            << PrintToString(lhs) << "\n  " << rhs_expr
                            << "\n    Which is: " << PrintToString(rhs);
}

template <typename A, typename B>
AssertionResult CmpHelperNE(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  return CmpHelperOp("!=", lhs != rhs, lhs_expr, rhs_expr, lhs, rhs);
}
template <typename A, typename B>
AssertionResult CmpHelperLT(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  return CmpHelperOp("<", lhs < rhs, lhs_expr, rhs_expr, lhs, rhs);
}
template <typename A, typename B>
AssertionResult CmpHelperLE(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  return CmpHelperOp("<=", lhs <= rhs, lhs_expr, rhs_expr, lhs, rhs);
}
template <typename A, typename B>
AssertionResult CmpHelperGT(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  return CmpHelperOp(">", lhs > rhs, lhs_expr, rhs_expr, lhs, rhs);
}
template <typename A, typename B>
AssertionResult CmpHelperGE(const char* lhs_expr, const char* rhs_expr,
                            const A& lhs, const B& rhs) {
  return CmpHelperOp(">=", lhs >= rhs, lhs_expr, rhs_expr, lhs, rhs);
}

inline AssertionResult CmpHelperBool(const char* expr, bool value,
                                     bool expected) {
  if (value == expected) return AssertionSuccess();
  return AssertionFailure() << "Value of: " << expr
                            << "\n  Actual: " << (value ? "true" : "false")
                            << "\nExpected: " << (expected ? "true" : "false");
}

// GoogleTest-compatible almost-equality: at most 4 ULPs apart.
template <typename Float>
bool AlmostEquals(Float lhs, Float rhs) {
  if (std::isnan(lhs) || std::isnan(rhs)) return false;
  using Bits = std::conditional_t<sizeof(Float) == 8, std::uint64_t,
                                  std::uint32_t>;
  constexpr Bits kSignBit = Bits{1} << (sizeof(Float) * 8 - 1);
  const auto to_biased = [](Float f) {
    Bits bits;
    std::memcpy(&bits, &f, sizeof(Float));
    return (bits & kSignBit) ? ~bits + 1 : bits | kSignBit;
  };
  const Bits a = to_biased(lhs);
  const Bits b = to_biased(rhs);
  const Bits distance = a >= b ? a - b : b - a;
  return distance <= 4;
}

template <typename Float>
AssertionResult CmpHelperFloatingEQ(const char* lhs_expr, const char* rhs_expr,
                                    Float lhs, Float rhs) {
  if (AlmostEquals(lhs, rhs)) return AssertionSuccess();
  return AssertionFailure() << "Expected equality of these values:\n  "
                            << lhs_expr << "\n    Which is: "
                            << PrintToString(lhs) << "\n  " << rhs_expr
                            << "\n    Which is: " << PrintToString(rhs);
}

inline AssertionResult CmpHelperNear(const char* lhs_expr, const char* rhs_expr,
                                     const char* abs_expr, double lhs,
                                     double rhs, double abs_error) {
  const double diff = std::fabs(lhs - rhs);
  if (diff <= abs_error) return AssertionSuccess();
  return AssertionFailure() << "The difference between " << lhs_expr << " and "
                            << rhs_expr << " is " << PrintToString(diff)
                            << ", which exceeds " << abs_expr << ", where\n"
                            << lhs_expr << " evaluates to "
                            << PrintToString(lhs) << ",\n"
                            << rhs_expr << " evaluates to "
                            << PrintToString(rhs) << ", and\n"
                            << abs_expr << " evaluates to "
                            << PrintToString(abs_error) << ".";
}

}  // namespace internal
}  // namespace testing

// --- macro layer ------------------------------------------------------------

#define MGT_AMBIGUOUS_ELSE_BLOCKER_ \
  switch (0)                        \
  case 0:                           \
  default:

#define MGT_NONFATAL_FAILURE_(summary)                                      \
  ::testing::internal::AssertHelper(                                        \
      ::testing::internal::FailureKind::kNonFatal, __FILE__, __LINE__,      \
      summary) = ::testing::Message()

#define MGT_FATAL_FAILURE_(summary)                                         \
  return ::testing::internal::AssertHelper(                                 \
             ::testing::internal::FailureKind::kFatal, __FILE__, __LINE__,  \
             summary) = ::testing::Message()

#define MGT_ASSERT_(expression, fail_macro)                          \
  MGT_AMBIGUOUS_ELSE_BLOCKER_                                        \
  if (const ::testing::AssertionResult mgt_ar_ = (expression))       \
    ;                                                                \
  else                                                               \
    fail_macro(mgt_ar_.message())

#define EXPECT_TRUE(condition)                                                \
  MGT_ASSERT_(::testing::internal::CmpHelperBool(                             \
                  #condition, static_cast<bool>(condition), true),            \
              MGT_NONFATAL_FAILURE_)
#define EXPECT_FALSE(condition)                                               \
  MGT_ASSERT_(::testing::internal::CmpHelperBool(                             \
                  #condition, static_cast<bool>(condition), false),           \
              MGT_NONFATAL_FAILURE_)
#define ASSERT_TRUE(condition)                                                \
  MGT_ASSERT_(::testing::internal::CmpHelperBool(                             \
                  #condition, static_cast<bool>(condition), true),            \
              MGT_FATAL_FAILURE_)
#define ASSERT_FALSE(condition)                                               \
  MGT_ASSERT_(::testing::internal::CmpHelperBool(                             \
                  #condition, static_cast<bool>(condition), false),           \
              MGT_FATAL_FAILURE_)

#define MGT_CMP_(helper, lhs, rhs, fail_macro)                              \
  MGT_ASSERT_(::testing::internal::helper(#lhs, #rhs, lhs, rhs), fail_macro)

#define EXPECT_EQ(lhs, rhs) MGT_CMP_(CmpHelperEQ, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define EXPECT_NE(lhs, rhs) MGT_CMP_(CmpHelperNE, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define EXPECT_LT(lhs, rhs) MGT_CMP_(CmpHelperLT, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define EXPECT_LE(lhs, rhs) MGT_CMP_(CmpHelperLE, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define EXPECT_GT(lhs, rhs) MGT_CMP_(CmpHelperGT, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define EXPECT_GE(lhs, rhs) MGT_CMP_(CmpHelperGE, lhs, rhs, MGT_NONFATAL_FAILURE_)
#define ASSERT_EQ(lhs, rhs) MGT_CMP_(CmpHelperEQ, lhs, rhs, MGT_FATAL_FAILURE_)
#define ASSERT_NE(lhs, rhs) MGT_CMP_(CmpHelperNE, lhs, rhs, MGT_FATAL_FAILURE_)
#define ASSERT_LT(lhs, rhs) MGT_CMP_(CmpHelperLT, lhs, rhs, MGT_FATAL_FAILURE_)
#define ASSERT_LE(lhs, rhs) MGT_CMP_(CmpHelperLE, lhs, rhs, MGT_FATAL_FAILURE_)
#define ASSERT_GT(lhs, rhs) MGT_CMP_(CmpHelperGT, lhs, rhs, MGT_FATAL_FAILURE_)
#define ASSERT_GE(lhs, rhs) MGT_CMP_(CmpHelperGE, lhs, rhs, MGT_FATAL_FAILURE_)

#define EXPECT_DOUBLE_EQ(lhs, rhs)                                            \
  MGT_ASSERT_(::testing::internal::CmpHelperFloatingEQ<double>(#lhs, #rhs,    \
                                                               lhs, rhs),     \
              MGT_NONFATAL_FAILURE_)
#define ASSERT_DOUBLE_EQ(lhs, rhs)                                            \
  MGT_ASSERT_(::testing::internal::CmpHelperFloatingEQ<double>(#lhs, #rhs,    \
                                                               lhs, rhs),     \
              MGT_FATAL_FAILURE_)
#define EXPECT_FLOAT_EQ(lhs, rhs)                                             \
  MGT_ASSERT_(::testing::internal::CmpHelperFloatingEQ<float>(#lhs, #rhs,     \
                                                              lhs, rhs),      \
              MGT_NONFATAL_FAILURE_)
#define ASSERT_FLOAT_EQ(lhs, rhs)                                             \
  MGT_ASSERT_(::testing::internal::CmpHelperFloatingEQ<float>(#lhs, #rhs,     \
                                                              lhs, rhs),      \
              MGT_FATAL_FAILURE_)

#define EXPECT_NEAR(lhs, rhs, abs_error)                                      \
  MGT_ASSERT_(::testing::internal::CmpHelperNear(#lhs, #rhs, #abs_error, lhs, \
                                                 rhs, abs_error),             \
              MGT_NONFATAL_FAILURE_)
#define ASSERT_NEAR(lhs, rhs, abs_error)                                      \
  MGT_ASSERT_(::testing::internal::CmpHelperNear(#lhs, #rhs, #abs_error, lhs, \
                                                 rhs, abs_error),             \
              MGT_FATAL_FAILURE_)

#define MGT_THROW_RESULT_(statement, expected_exception)                      \
  [&]() -> ::testing::AssertionResult {                                       \
    try {                                                                     \
      statement;                                                              \
    } catch (const expected_exception&) {                                     \
      return ::testing::AssertionSuccess();                                   \
    } catch (...) {                                                           \
      return ::testing::AssertionFailure()                                    \
             << "Expected: " #statement " throws an exception of type "       \
                #expected_exception ".\n  Actual: it throws a different "     \
                "type.";                                                      \
    }                                                                         \
    return ::testing::AssertionFailure()                                      \
           << "Expected: " #statement " throws an exception of type "         \
              #expected_exception ".\n  Actual: it throws nothing.";          \
  }()

#define EXPECT_THROW(statement, expected_exception)                           \
  MGT_ASSERT_(MGT_THROW_RESULT_(statement, expected_exception),               \
              MGT_NONFATAL_FAILURE_)
#define ASSERT_THROW(statement, expected_exception)                           \
  MGT_ASSERT_(MGT_THROW_RESULT_(statement, expected_exception),               \
              MGT_FATAL_FAILURE_)

#define MGT_NO_THROW_RESULT_(statement)                                       \
  [&]() -> ::testing::AssertionResult {                                       \
    try {                                                                     \
      statement;                                                              \
    } catch (...) {                                                           \
      return ::testing::AssertionFailure()                                    \
             << "Expected: " #statement " does not throw.\n  Actual: it "     \
                "throws.";                                                    \
    }                                                                         \
    return ::testing::AssertionSuccess();                                     \
  }()

#define EXPECT_NO_THROW(statement) \
  MGT_ASSERT_(MGT_NO_THROW_RESULT_(statement), MGT_NONFATAL_FAILURE_)
#define ASSERT_NO_THROW(statement) \
  MGT_ASSERT_(MGT_NO_THROW_RESULT_(statement), MGT_FATAL_FAILURE_)

#define MGT_ANY_THROW_RESULT_(statement)                                      \
  [&]() -> ::testing::AssertionResult {                                       \
    try {                                                                     \
      statement;                                                              \
    } catch (...) {                                                           \
      return ::testing::AssertionSuccess();                                   \
    }                                                                         \
    return ::testing::AssertionFailure()                                      \
           << "Expected: " #statement " throws.\n  Actual: it throws "        \
              "nothing.";                                                     \
  }()

#define EXPECT_ANY_THROW(statement) \
  MGT_ASSERT_(MGT_ANY_THROW_RESULT_(statement), MGT_NONFATAL_FAILURE_)
#define ASSERT_ANY_THROW(statement) \
  MGT_ASSERT_(MGT_ANY_THROW_RESULT_(statement), MGT_FATAL_FAILURE_)

#define ADD_FAILURE() MGT_NONFATAL_FAILURE_("Failed")
#define FAIL() MGT_FATAL_FAILURE_("Failed")
#define SUCCEED() ::testing::Message()
