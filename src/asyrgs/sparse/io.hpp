// Matrix Market (.mtx) input/output.
//
// Supports the coordinate format with `real`/`integer` fields and
// `general`/`symmetric` symmetry, which covers the SuiteSparse-style SPD
// matrices a user would feed this solver, plus dense vector I/O in the
// `array` format so experiment artifacts can be round-tripped.
//
// Loading is storage-policy-aware: read_matrix_market_as<Index, Value>
// parses straight into a builder of the target width — triplets are stored
// as (Index, Value) from the first entry, with the column range validated
// once at load — so reading a CsrMatrix32/CsrMatrixMixed never materializes
// full-width intermediates.  The unsuffixed functions keep their historical
// full-width signatures.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Reads a Matrix Market coordinate file into CSR at the requested storage
/// width.  Symmetric files are expanded to full storage.  Throws
/// asyrgs::Error on malformed input, or when the declared column count
/// exceeds the index width.  (Definitions in io.cpp, instantiated for the
/// three supported policies.)
template <class Index, class Value>
[[nodiscard]] CsrMatrixT<Index, Value> read_matrix_market_as(std::istream& in);
template <class Index, class Value>
[[nodiscard]] CsrMatrixT<Index, Value> read_matrix_market_file_as(
    const std::string& path);

/// Full-width readers (historical interface).
[[nodiscard]] CsrMatrix read_matrix_market(std::istream& in);
[[nodiscard]] CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes CSR in `matrix coordinate real general` format (any storage
/// policy; values print through double with full round-trip precision —
/// float values re-read bit-exactly under any policy).
template <class Index, class Value>
void write_matrix_market(std::ostream& out, const CsrMatrixT<Index, Value>& a);
template <class Index, class Value>
void write_matrix_market_file(const std::string& path,
                              const CsrMatrixT<Index, Value>& a);

/// Reads/writes a dense vector in `matrix array real general` format
/// (n x 1).
[[nodiscard]] std::vector<double> read_vector_market(std::istream& in);
void write_vector_market(std::ostream& out, const std::vector<double>& v);

}  // namespace asyrgs
