// Summary statistics over repeated benchmark runs.
//
// The paper reports the *median* of five runs for the non-deterministic
// asynchronous experiments (Table 1, Figure 3); this module provides exactly
// that plus the usual dispersion measures.
#pragma once

#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Order statistics and moments of a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
};

/// Computes the summary of `sample` (must be non-empty).
[[nodiscard]] Summary summarize(std::vector<double> sample);

/// Median of a sample (must be non-empty).
[[nodiscard]] double median(std::vector<double> sample);

/// Arithmetic mean (must be non-empty).
[[nodiscard]] double mean(const std::vector<double>& sample);

/// Geometric mean (all entries must be positive).
[[nodiscard]] double geometric_mean(const std::vector<double>& sample);

/// Linear least-squares slope of y against x; used to estimate empirical
/// convergence rates from log-error series.
[[nodiscard]] double linear_fit_slope(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace asyrgs
