// Figure 2 — Performance and accuracy of AsyRGS vs its synchronous
// counterpart and CG across thread counts.
//
// Paper (Section 9, Figure 2), three panels:
//   left:   wall time of 10 sweeps of AsyRGS (inconsistent read,
//           free-running) and of 10 CG iterations, vs thread count.
//           Expected shape: AsyRGS scales near-linearly (speedup ~48 at 64
//           threads on the paper's hardware); CG's speedup flattens.
//   center: relative residual after 10 sweeps for AsyRGS (atomic),
//           AsyRGS (non-atomic), and synchronous Randomized G-S.  Expected:
//           same order of magnitude, no consistent atomic/non-atomic gap.
//   right:  relative A-norm of the error after 10 sweeps (b = A x*, single
//           RHS).  Expected: async ~ sync.
//
// The direction multiset is fixed across thread counts via the Philox
// stream (the paper's Random123 methodology), so differences isolate the
// effect of asynchronism.
#include <iostream>

#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

int main(int argc, char** argv) {
  CliParser cli("fig2_async_penalty",
                "Figure 2: AsyRGS scaling and the price of asynchronism");
  GramCli gram_cli = add_gram_options(cli);
  auto sweeps = cli.add_int("sweeps", 10, "sweeps/iterations per run");
  auto threads_opt =
      cli.add_int_list("threads", {}, "thread sweep (default 1,2,4,..,max)");
  auto repeats = cli.add_int("repeats", 3, "timing repetitions (min taken)");
  cli.parse(argc, argv);

  print_banner("fig2_async_penalty", "Figure 2 (Section 9), all three panels");
  const SocialGram system = build_gram(gram_cli);
  const CsrMatrix a = scaled_gram(system);
  print_matrix_profile(a);

  ThreadPool& pool = ThreadPool::global();
  const std::vector<int> thread_sweep = thread_sweep_from(*threads_opt);
  const index_t k = *gram_cli.rhs;
  const int n_sweeps = static_cast<int>(*sweeps);

  const MultiVector b = random_multivector(a.rows(), k, 7);

  // Single-RHS system with known solution for the A-norm panel.
  const std::vector<double> x_star = random_vector(a.rows(), 11);
  const std::vector<double> b_known = rhs_from_solution(a, x_star);
  const double x_star_a_norm = a_norm(a, x_star);

  // Synchronous reference (thread-count independent by construction).
  MultiVector x_sync(a.rows(), k);
  RgsOptions sync_opt;
  sync_opt.sweeps = n_sweeps;
  sync_opt.seed = 1;
  rgs_solve_block(a, b, x_sync, sync_opt);
  const double res_sync = relative_residual_block(pool, a, b, x_sync);

  std::vector<double> xs_sync(a.rows(), 0.0);
  RgsOptions sync_single = sync_opt;
  rgs_solve(a, b_known, xs_sync, sync_single);
  const double err_sync =
      a_norm_error(a, xs_sync, x_star) / x_star_a_norm;

  Table table({"threads", "asyrgs_time_s", "asy1rhs_time_s", "cg_time_s",
               "asyrgs_speedup", "asy1rhs_speedup", "cg_speedup", "res_async",
               "res_nonatomic", "res_sync", "anorm_async", "anorm_sync"});

  double asy_t1 = 0.0, asy1_t1 = 0.0, cg_t1 = 0.0;
  for (int threads : thread_sweep) {
    // ---- left panel: wall time of 10 sweeps / iterations ------------------
    double asy_time = 1e300;
    MultiVector x_async(a.rows(), k);
    for (int rep = 0; rep < *repeats; ++rep) {
      x_async.fill(0.0);
      AsyncRgsOptions opt;
      opt.sweeps = n_sweeps;
      opt.seed = 1;
      opt.workers = threads;
      const AsyncRgsReport r = async_rgs_solve_block(pool, a, b, x_async, opt);
      asy_time = std::min(asy_time, r.seconds);
    }
    const double res_async = relative_residual_block(pool, a, b, x_async);

    double cg_time = 1e300;
    for (int rep = 0; rep < *repeats; ++rep) {
      MultiVector x_cg(a.rows(), k);
      SolveOptions cg_opt;
      cg_opt.max_iterations = n_sweeps;
      cg_opt.rel_tol = 0.0;
      WallTimer t;
      block_cg_solve(pool, a, b, x_cg, cg_opt, threads,
                     RowPartition::kRoundRobin);
      cg_time = std::min(cg_time, t.seconds());
    }

    // ---- center panel: non-atomic variant ---------------------------------
    MultiVector x_nonatomic(a.rows(), k);
    {
      AsyncRgsOptions opt;
      opt.sweeps = n_sweeps;
      opt.seed = 1;
      opt.workers = threads;
      opt.atomic_writes = false;
      async_rgs_solve_block(pool, a, b, x_nonatomic, opt);
    }
    const double res_nonatomic =
        relative_residual_block(pool, a, b, x_nonatomic);

    // ---- right panel + single-RHS scaling ---------------------------------
    // The single-RHS run doubles as the A-norm-of-error experiment and as a
    // scaling series with 1/k the write traffic of the block solve (on
    // commodity x86 the block variant is limited by cache-coherence write
    // invalidations — the cache-behaviour limitation Section 9 discusses;
    // the paper's BlueGene/Q resolved atomics in a shared L2).
    std::vector<double> xs_async(a.rows(), 0.0);
    double asy1_time = 1e300;
    for (int rep = 0; rep < *repeats; ++rep) {
      std::fill(xs_async.begin(), xs_async.end(), 0.0);
      AsyncRgsOptions opt;
      opt.sweeps = n_sweeps;
      opt.seed = 1;
      opt.workers = threads;
      const AsyncRgsReport r = async_rgs_solve(pool, a, b_known, xs_async, opt);
      asy1_time = std::min(asy1_time, r.seconds);
    }
    const double err_async =
        a_norm_error(a, xs_async, x_star) / x_star_a_norm;

    if (threads == thread_sweep.front()) {
      asy_t1 = asy_time;
      asy1_t1 = asy1_time;
      cg_t1 = cg_time;
    }
    table.add_row({std::to_string(threads), fmt_fixed(asy_time, 4),
                   fmt_fixed(asy1_time, 4), fmt_fixed(cg_time, 4),
                   fmt_fixed(asy_t1 / asy_time, 2),
                   fmt_fixed(asy1_t1 / asy1_time, 2),
                   fmt_fixed(cg_t1 / cg_time, 2), fmt_sci(res_async),
                   fmt_sci(res_nonatomic), fmt_sci(res_sync),
                   fmt_sci(err_async), fmt_sci(err_sync)});
  }
  table.print(std::cout);
  std::cout << "# paper shape check: asyrgs speedups grow with threads and "
               "beat cg_speedup at high threads\n"
            << "# (single-RHS scales furthest; the block variant is "
               "coherence-write limited on x86);\n"
            << "# res_async ~ res_nonatomic ~ res_sync (same order); "
               "anorm_async ~ anorm_sync.\n";
  return 0;
}
