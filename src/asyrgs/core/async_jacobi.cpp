#include "asyrgs/core/async_jacobi.hpp"

#include <thread>

#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

AsyncRgsReport async_jacobi_solve(ThreadPool& pool, const CsrMatrix& a,
                                  const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const AsyncJacobiOptions& options) {
  require(a.square(), "async_jacobi: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "async_jacobi: shape mismatch");
  require(options.sweeps >= 0, "async_jacobi: sweeps must be non-negative");
  require(options.damping > 0.0 && options.damping <= 1.0,
          "async_jacobi: damping must be in (0, 1]");
  const index_t n = a.rows();

  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) {
    require(d != 0.0, "async_jacobi: zero diagonal entry");
    d = 1.0 / d;
  }

  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;
  const double omega = options.damping;

  WallTimer timer;
  pool.run_team(workers, [&](int id, int team) {
    // Worker id relaxes its owned rows over and over; neighbours' values
    // stream in asynchronously.
    const index_t chunk = (n + team - 1) / team;
    const index_t lo = std::min<index_t>(static_cast<index_t>(id) * chunk, n);
    const index_t hi = std::min<index_t>(lo + chunk, n);
    auto relax_row = [&](index_t i) {
      double acc = b[i];
      double diag_x = 0.0;
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      for (std::size_t t = 0; t < cols.size(); ++t) {
        const double xv = atomic_load_relaxed(x[cols[t]]);
        if (cols[t] == i)
          diag_x = xv;
        else
          acc -= vals[t] * xv;
      }
      const double target = acc * inv_diag[i];
      atomic_store_relaxed(x[i], (1.0 - omega) * diag_x + omega * target);
    };
    for (int sweep = 0; sweep < options.sweeps; ++sweep) {
      if (options.ownership == JacobiOwnership::kContiguous) {
        for (index_t i = lo; i < hi; ++i) relax_row(i);
      } else {
        for (index_t i = id; i < n; i += team) relax_row(i);
      }
      // On oversubscribed hosts (threads > cores) a free-running worker can
      // otherwise burn its entire sweep budget in one scheduling quantum
      // against frozen neighbour values — unbounded effective delay, exactly
      // what breaks chaotic relaxation. One yield per sweep keeps the
      // interleaving near round-robin and the staleness near one sweep.
      if (team > 1) std::this_thread::yield();
    }
  });
  report.sweeps_done = options.sweeps;
  report.updates = static_cast<long long>(options.sweeps) *
                   static_cast<long long>(n);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
