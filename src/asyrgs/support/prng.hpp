// Pseudo-random number generation.
//
// The paper's experimental methodology (Section 9) fixes the sequence of
// random directions d_0, d_1, ... across thread counts by using the
// counter-based Random123 generator, "which allows random access to the
// pseudo-random numbers, as opposed to the conventional streamed approach".
// We reproduce that capability with an in-repo implementation of
// Philox4x32-10 (Salmon, Moraes, Dror & Shaw, SC'11): a pure function from
// (key, counter) to 128 random bits.  Worker w of the asynchronous solver
// evaluates the generator at the *global* iteration index, so the multiset of
// directions is identical no matter how iterations are divided among
// processors.
//
// SplitMix64 (seed expansion) and Xoshiro256** (fast sequential stream) cover
// the remaining, non-random-access needs: matrix generation, shuffles, noise.
#pragma once

#include <array>
#include <cstdint>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

// ---------------------------------------------------------------------------
// SplitMix64
// ---------------------------------------------------------------------------

/// Stateless SplitMix64 step: maps z to a well-mixed 64-bit value.  Used to
/// expand user seeds into independent engine states.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t z) noexcept;

/// Tiny sequential engine over splitmix64; satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept {
    state_ += 0x9E3779B97F4A7C15ull;
    return splitmix64(state_);
  }

 private:
  std::uint64_t state_;
};

// ---------------------------------------------------------------------------
// Xoshiro256**
// ---------------------------------------------------------------------------

/// Blackman & Vigna's xoshiro256** 1.0: fast, high-quality sequential
/// generator used wherever random access is not required.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via SplitMix64 as recommended by the authors.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Equivalent to 2^128 calls of operator(); yields a provably
  /// non-overlapping subsequence for a parallel worker.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

// ---------------------------------------------------------------------------
// Philox4x32-10
// ---------------------------------------------------------------------------

/// Counter-based PRNG: a keyed bijection on 128-bit counters.  `operator()`
/// is pure, so evaluating at counter j gives O(1) random access to the j-th
/// block of the stream.
class Philox4x32 {
 public:
  using Block = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  /// Builds the keyed generator; the 64-bit seed is the Philox key.
  explicit Philox4x32(std::uint64_t seed) noexcept
      : key_{static_cast<std::uint32_t>(seed),
             static_cast<std::uint32_t>(seed >> 32)} {}

  /// The raw 10-round Philox4x32 bijection (exposed for known-answer tests).
  [[nodiscard]] static Block apply(Block counter, Key key) noexcept;

  /// 128 random bits for 128-bit counter (hi,lo).
  [[nodiscard]] Block block(std::uint64_t counter_hi,
                            std::uint64_t counter_lo) const noexcept {
    return apply({static_cast<std::uint32_t>(counter_lo),
                  static_cast<std::uint32_t>(counter_lo >> 32),
                  static_cast<std::uint32_t>(counter_hi),
                  static_cast<std::uint32_t>(counter_hi >> 32)},
                 key_);
  }

  /// 64 random bits for stream position `index`: lanes 0,1 of block index/2
  /// for even indices, lanes 2,3 for odd ones.
  [[nodiscard]] std::uint64_t at(std::uint64_t index) const noexcept {
    const Block b = block(0, index >> 1);
    const unsigned base = (index & 1u) ? 2u : 0u;
    return (static_cast<std::uint64_t>(b[base + 1]) << 32) | b[base];
  }

  /// Uniform draw from {0, ..., n-1} at stream position `index` using the
  /// 128-bit multiply reduction (bias < n / 2^64; negligible for any matrix
  /// dimension this library handles).
  [[nodiscard]] index_t index_at(std::uint64_t index, index_t n) const noexcept {
    const unsigned __int128 prod =
        static_cast<unsigned __int128>(at(index)) *
        static_cast<unsigned __int128>(n);
    return static_cast<index_t>(prod >> 64);
  }

  /// Uniform double in [0,1) at stream position `index` (53 random bits).
  [[nodiscard]] double real_at(std::uint64_t index) const noexcept {
    return static_cast<double>(at(index) >> 11) * 0x1.0p-53;
  }

  // --- bulk (batched) evaluation --------------------------------------------
  //
  // The asynchronous solvers draw one direction per coordinate update; at a
  // full Philox evaluation per draw the generator is a measurable share of
  // the update cost.  The fill_* APIs produce whole blocks of draws at once:
  // both 64-bit halves of each 128-bit Philox block are consumed where the
  // access pattern allows it, and the 10 rounds are pipelined across several
  // independent counters (8- or 4-wide SIMD over blocks when the CPU has
  // AVX-512/AVX2, with an unrolled scalar path everywhere else; dispatched
  // at runtime).  Every function below is
  // a pure restatement of the random-access primitives: element i of the
  // output equals at()/index_at() evaluated at the same stream position,
  // bit for bit, so batching never changes the direction multiset.

  /// out[i] = at(first + i) for i in [0, count).
  void fill_at(std::uint64_t first, std::size_t count,
               std::uint64_t* out) const noexcept;

  /// out[i] = at(first + i * stride) for i in [0, count): the raw-bits
  /// companion of fill_indices_strided, for consumers that post-process
  /// the words themselves (the non-uniform direction samplers map each
  /// word through a Walker alias table).  stride >= 1.
  void fill_at_strided(std::uint64_t first, std::uint64_t stride,
                       std::size_t count, std::uint64_t* out) const noexcept;

  /// out[i] = index_at(first + i, n) for i in [0, count).  n > 0.
  void fill_indices(std::uint64_t first, std::size_t count, index_t n,
                    index_t* out) const noexcept;

  /// out[i] = index_at(first + i * stride, n) for i in [0, count): the
  /// access pattern of asynchronous worker w in a team of P (first = w,
  /// stride = P).  stride >= 1; stride == 1 delegates to fill_indices.
  void fill_indices_strided(std::uint64_t first, std::uint64_t stride,
                            std::size_t count, index_t n,
                            index_t* out) const noexcept;

  [[nodiscard]] Key key() const noexcept { return key_; }

 private:
  Key key_;
};

// ---------------------------------------------------------------------------
// Distribution helpers (engine-generic)
// ---------------------------------------------------------------------------

/// Uniform double in [0,1) with 53 random bits from any 64-bit engine.
template <typename Engine>
[[nodiscard]] double uniform_real(Engine& eng) {
  return static_cast<double>(eng() >> 11) * 0x1.0p-53;
}

/// Uniform draw from {0, ..., n-1} (n > 0) via 128-bit multiply reduction.
template <typename Engine>
[[nodiscard]] index_t uniform_index(Engine& eng, index_t n) {
  ASYRGS_ASSERT(n > 0);
  const unsigned __int128 prod = static_cast<unsigned __int128>(eng()) *
                                 static_cast<unsigned __int128>(n);
  return static_cast<index_t>(prod >> 64);
}

/// Standard normal deviate (Box-Muller; one value per call, no caching so the
/// call is stateless with respect to the distribution).
template <typename Engine>
[[nodiscard]] double normal(Engine& eng) {
  // Rejection-free polar-less form; u1 is bounded away from zero.
  double u1 = 0.0;
  do {
    u1 = uniform_real(eng);
  } while (u1 <= 1e-300);
  const double u2 = uniform_real(eng);
  constexpr double two_pi = 6.28318530717958647692;
  return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
         __builtin_cos(two_pi * u2);
}

}  // namespace asyrgs
