// minigtest — a self-contained, vendored GoogleTest-compatible shim.
//
// Provides the subset of <gtest/gtest.h> this repository's suites use:
//   TEST, TEST_F, TEST_P, INSTANTIATE_TEST_SUITE_P,
//   ::testing::Test, ::testing::TestWithParam, Values, ValuesIn, Combine,
//   EXPECT_*/ASSERT_* (boolean, relational, floating-point, NEAR, THROW),
//   streamed failure messages, and a gtest_main with --gtest_filter /
//   --gtest_list_tests.
//
// The build links the real GoogleTest when one is installed; this shim is
// selected automatically otherwise so the test suite never needs network
// access. Keep additions source-compatible with GoogleTest.
#pragma once

#include "minigtest/assert.hpp"    // IWYU pragma: export
#include "minigtest/param.hpp"     // IWYU pragma: export
#include "minigtest/print.hpp"     // IWYU pragma: export
#include "minigtest/registry.hpp"  // IWYU pragma: export
