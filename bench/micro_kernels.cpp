// Micro-benchmarks (google-benchmark) for the kernels everything else is
// built from: Philox direction draws, atomic coordinate updates, SpMV
// partitions, and single RGS/AsyRGS coordinate steps.  These track kernel
// regressions; the paper-level experiments live in the fig*/table* binaries.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {
namespace {

void BM_PhiloxAt(benchmark::State& state) {
  const Philox4x32 gen(42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.at(i++));
  }
}
BENCHMARK(BM_PhiloxAt);

void BM_PhiloxIndexAt(benchmark::State& state) {
  const Philox4x32 gen(42);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.index_at(i++, 120147));
  }
}
BENCHMARK(BM_PhiloxIndexAt);

/// Batched direction draws: fill_indices across batch sizes.  Regression
/// guard for the bulk Philox path (SIMD when available) — compare with
/// BM_PhiloxIndexAt for the per-call baseline.
void BM_PhiloxFillIndices(benchmark::State& state) {
  const Philox4x32 gen(42);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<index_t> out(batch);
  std::uint64_t first = 0;
  for (auto _ : state) {
    gen.fill_indices(first, batch, 120147, out.data());
    benchmark::DoNotOptimize(out.data());
    first += batch;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_PhiloxFillIndices)->Arg(8)->Arg(64)->Arg(256)->Arg(1024);

/// Strided batched draws: the access pattern of worker w in a team of 4.
void BM_PhiloxFillIndicesStrided(benchmark::State& state) {
  const Philox4x32 gen(42);
  const std::uint64_t stride = static_cast<std::uint64_t>(state.range(0));
  std::vector<index_t> out(1024);
  std::uint64_t k = 0;
  for (auto _ : state) {
    gen.fill_indices_strided(k * stride, stride, out.size(), 120147,
                             out.data());
    benchmark::DoNotOptimize(out.data());
    k += out.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(out.size()));
}
BENCHMARK(BM_PhiloxFillIndicesStrided)->Arg(2)->Arg(3)->Arg(4)->Arg(8);

void BM_Xoshiro(benchmark::State& state) {
  Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_AtomicAddUncontended(benchmark::State& state) {
  double slot = 0.0;
  for (auto _ : state) {
    atomic_add_relaxed(slot, 1.0);
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_AtomicAddUncontended);

void BM_RacyAdd(benchmark::State& state) {
  double slot = 0.0;
  for (auto _ : state) {
    racy_add(slot, 1.0);
  }
  benchmark::DoNotOptimize(slot);
}
BENCHMARK(BM_RacyAdd);

/// SpMV across partition strategies on the skewed Gram matrix.
void BM_SpmvGram(benchmark::State& state) {
  static const SocialGram system = [] {
    SocialGramOptions opt;
    opt.terms = 2000;
    opt.documents = 8000;
    opt.mean_doc_length = 8;
    return make_social_gram(opt);
  }();
  const CsrMatrix& a = system.gram;
  const std::vector<double> x = random_vector(a.cols(), 1);
  std::vector<double> y(static_cast<std::size_t>(a.rows()));
  ThreadPool& pool = ThreadPool::global();
  const auto partition = static_cast<RowPartition>(state.range(0));
  const int workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    spmv(pool, a, x.data(), y.data(), workers, partition);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvGram)
    ->ArgsProduct({{0, 1, 2} /* partition */, {1, 4, 0} /* workers; 0=all */})
    ->ArgNames({"partition", "workers"});

namespace kernels {

/// The pre-PR2 "generic" coordinate update: runtime atomicity branch,
/// span-based row scan.  Kept here as the baseline the specialized kernel is
/// measured against.
inline void update_generic(const CsrMatrix& a, const double* b, double* x,
                           index_t r, double beta, double inv_diag,
                           bool atomic_writes) {
  double acc = b[r];
  const auto cols = a.row_cols(r);
  const auto vals = a.row_vals(r);
  for (std::size_t t = 0; t < cols.size(); ++t)
    acc -= vals[t] * atomic_load_relaxed(x[cols[t]]);
  const double delta = beta * (acc * inv_diag);
  if (atomic_writes)
    atomic_add_relaxed(x[r], delta);
  else
    racy_add(x[r], delta);
}

/// The engine's specialized shape: compile-time atomicity, raw restrict
/// pointers hoisted out of the loop (mirrors SingleRhsUpdate in
/// core/async_rgs.cpp).
template <bool kAtomicWrites>
inline void update_specialized(const nnz_t* __restrict rp,
                               const index_t* __restrict ci,
                               const double* __restrict av, const double* b,
                               double* x, index_t r, double beta,
                               double inv_diag) {
  double acc = b[r];
  const nnz_t lo = rp[r];
  const nnz_t hi = rp[r + 1];
  for (nnz_t t = lo; t < hi; ++t)
    acc -= av[t] * atomic_load_relaxed(x[ci[t]]);
  const double delta = beta * (acc * inv_diag);
  if constexpr (kAtomicWrites)
    atomic_add_relaxed(x[r], delta);
  else
    racy_add(x[r], delta);
}

}  // namespace kernels

/// Generic vs specialized coordinate-update kernels on a 2-D Laplacian with
/// a pregenerated direction buffer (isolates the kernel from the draw cost).
void BM_UpdateKernelGeneric(benchmark::State& state) {
  const CsrMatrix a = laplacian_2d(128, 128);
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<double> inv = a.diagonal();
  for (double& d : inv) d = 1.0 / d;
  std::vector<double> x(a.rows(), 0.0);
  const Philox4x32 gen(42);
  std::vector<index_t> picks(4096);
  gen.fill_indices(0, picks.size(), a.rows(), picks.data());
  std::size_t i = 0;
  for (auto _ : state) {
    kernels::update_generic(a, b.data(), x.data(), picks[i], 1.0,
                            inv[picks[i]], true);
    i = (i + 1) & (picks.size() - 1);
  }
  benchmark::DoNotOptimize(x.data());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateKernelGeneric);

void BM_UpdateKernelSpecialized(benchmark::State& state) {
  const CsrMatrix a = laplacian_2d(128, 128);
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<double> inv = a.diagonal();
  for (double& d : inv) d = 1.0 / d;
  std::vector<double> x(a.rows(), 0.0);
  const Philox4x32 gen(42);
  std::vector<index_t> picks(4096);
  gen.fill_indices(0, picks.size(), a.rows(), picks.data());
  const nnz_t* rp = a.row_ptr().data();
  const index_t* ci = a.col_idx().data();
  const double* av = a.values().data();
  std::size_t i = 0;
  for (auto _ : state) {
    kernels::update_specialized<true>(rp, ci, av, b.data(), x.data(),
                                      picks[i], 1.0, inv[picks[i]]);
    i = (i + 1) & (picks.size() - 1);
  }
  benchmark::DoNotOptimize(x.data());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateKernelSpecialized);

/// DirectionPlan buffer refill (shared scope, team of 4): the per-update
/// direction cost the engine actually pays.
void BM_DirectionPlanFill(benchmark::State& state) {
  AsyncRgsOptions opt;
  opt.seed = 42;
  const detail::DirectionPlan plan(opt, 120147, 4);
  std::vector<index_t> buf(detail::kDirectionChunk);
  std::uint64_t k = 0;
  for (auto _ : state) {
    plan.fill(1, k, buf.size(), buf.data());
    benchmark::DoNotOptimize(buf.data());
    k += buf.size();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(buf.size()));
}
BENCHMARK(BM_DirectionPlanFill);

/// One sequential RGS sweep on a 2-D Laplacian.
void BM_RgsSweepLaplacian(benchmark::State& state) {
  const index_t side = state.range(0);
  const CsrMatrix a = laplacian_2d(side, side);
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<double> x(a.rows(), 0.0);
  RgsOptions opt;
  opt.sweeps = 1;
  for (auto _ : state) {
    opt.seed++;
    rgs_solve(a, b, x, opt);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * a.rows());
}
BENCHMARK(BM_RgsSweepLaplacian)->Arg(64)->Arg(128);

}  // namespace
}  // namespace asyrgs

BENCHMARK_MAIN();
