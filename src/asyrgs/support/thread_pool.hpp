// Persistent worker-thread pool.
//
// Why not OpenMP: the asynchronous solver needs (a) explicit worker identity
// so that worker w executes exactly the global iteration indices
// {w, w+P, w+2P, ...} (this is what fixes the random direction multiset
// across thread counts, Section 9 of the paper), (b) precisely placed
// barriers for the occasional-synchronization scheme, and (c) deterministic
// team sizes under test.  A small dedicated pool gives all three and keeps
// the build self-contained.
//
// The calling thread always participates as worker 0, so a team of size 1
// runs inline with zero synchronization cost.
#pragma once

#include <exception>
#include <functional>
#include <memory>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

namespace detail {

/// Resolves a requested pool capacity: a positive request wins verbatim;
/// otherwise the reported hardware concurrency, clamped to >= 1 because the
/// standard permits std::thread::hardware_concurrency() to return 0
/// ("unknown").  Split out as pure arithmetic so the 0 guard is testable
/// without stubbing the global (tests pass hardware_threads explicitly).
[[nodiscard]] constexpr int auto_pool_size(int requested,
                                           unsigned hardware_threads) noexcept {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(hardware_threads);
  return hw > 0 ? hw : 1;
}

/// Per-shard auto team size for a service dividing `hardware_threads`
/// across `shards` pools: each shard gets hw / shards, the first hw % shards
/// shards one extra (8 threads / 3 shards = 3, 3, 2 — no core idled by
/// integer truncation).  A positive request wins verbatim; unknown (0)
/// hardware concurrency and shards > hw both clamp to 1.  Used by
/// SolverService; exposed here next to auto_pool_size so both sizing
/// policies share the testable-arithmetic treatment.
[[nodiscard]] constexpr int shard_auto_workers(
    int requested, int shard, int shards, unsigned hardware_threads) noexcept {
  if (requested > 0) return requested;
  const int hw = static_cast<int>(hardware_threads);
  if (hw <= 0) return 1;
  const int workers = hw / shards + (shard < hw % shards ? 1 : 0);
  return workers >= 1 ? workers : 1;
}

}  // namespace detail

/// Fixed-size pool of persistent worker threads executing "team" jobs.
///
/// A team job is a callable `fn(worker_id, team_size)` executed concurrently
/// by `team_size` workers (caller thread = worker 0).  On top of that,
/// `parallel_for` provides static and dynamic loop partitioning.
///
/// Exceptions thrown by workers are captured; the first one is rethrown on
/// the calling thread after the team completes.
///
/// Re-entrancy: a job running inside the pool that starts another team job
/// executes it serially on the current thread (team size 1).  This makes
/// compositions such as "Flexible CG (parallel SpMV) preconditioned by
/// AsyRGS (parallel team)" safe regardless of call structure.
class ThreadPool {
 public:
  /// Creates a pool able to host teams of up to `max_workers` (defaults to
  /// std::thread::hardware_concurrency()).
  explicit ThreadPool(int max_workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum team size this pool supports.
  [[nodiscard]] int size() const noexcept;

  /// Runs `fn(worker_id, team_size)` on `workers` threads and blocks until
  /// all return.  `workers` is clamped to [1, size()].
  void run_team(int workers, const std::function<void(int, int)>& fn);

  /// Statically partitioned parallel loop: splits [begin, end) into
  /// `workers` contiguous chunks and invokes `range_fn(lo, hi)` per chunk.
  /// workers == 0 selects size().
  void parallel_for(index_t begin, index_t end,
                    const std::function<void(index_t, index_t)>& range_fn,
                    int workers = 0);

  /// Dynamically scheduled parallel loop for irregular work (e.g. SpMV rows
  /// of a matrix with highly skewed row lengths): workers grab chunks of
  /// `grain` iterations from a shared counter.
  void parallel_for_dynamic(index_t begin, index_t end, index_t grain,
                            const std::function<void(index_t, index_t)>& range_fn,
                            int workers = 0);

  /// True when called from inside a pool worker (team jobs would nest).
  [[nodiscard]] static bool inside_worker() noexcept;

  /// Process-wide pool, lazily constructed with hardware concurrency.
  /// Benchmarks and examples share this instance so thread creation cost is
  /// paid once.
  static ThreadPool& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace asyrgs
