// SolverService suite (PR 5): the sharded multi-pool serving front-end.
//
//  (a) Concurrency: M client threads submitting a mixed SPD / LSQ / block
//      request stream — every tolerance-stopped outcome converges, every
//      residual checks out against the matrix, and the service accounting
//      (submitted == completed, per-shard served counts) balances.
//  (b) Determinism under sharding: a fixed-seed request yields a
//      bit-identical result regardless of which shard executes it and
//      regardless of the service's shard count (1 / 2 / 4), matching the
//      single-handle reference — including multi-worker owner-computes
//      teams on a block-diagonal matrix (every interleaving identical).
//  (c) Amortization across shards: shard 0 pays the per-matrix analysis;
//      clones re-validate nothing (ProblemStats at zero validation passes /
//      transpose builds) and the matrix-level transpose is built once for
//      the whole service.
//  (d) The SolveTicket contract: done()/wait()/solution() semantics, solve
//      errors rethrown at wait(), eager submit-side validation.
//
// This suite (with test_problem and test_thread_pool) is the TSan CI
// gate — keep it free of intentional races: multi-worker requests stay on
// atomic writes and the pinned scan.
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/serve/service.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

/// Block-diagonal SPD matrix whose blocks align with every tested worker
/// partition (same construction as test_problem.cpp): under owner-computes
/// randomization no worker reads another's coordinates, so multi-worker
/// runs are bit-deterministic.
CsrMatrix block_diag_tridiagonal(int blocks, index_t block_size) {
  const index_t n = blocks * block_size;
  CooBuilder builder(n, n);
  for (int blk = 0; blk < blocks; ++blk) {
    const index_t lo = blk * block_size;
    for (index_t i = 0; i < block_size; ++i) {
      builder.add(lo + i, lo + i, 2.0);
      if (i + 1 < block_size) {
        builder.add(lo + i, lo + i + 1, -1.0);
        builder.add(lo + i + 1, lo + i, -1.0);
      }
    }
  }
  return builder.to_csr();
}

ServiceOptions two_shard_options() {
  ServiceOptions o;
  o.shards = 2;
  o.workers_per_shard = 2;
  o.prepare_spd = true;
  o.prepare_lsq = true;
  return o;
}

// --- (a) mixed concurrent request stream -------------------------------------

TEST(SolverService, MixedStreamFromClientThreadsConvergesAndBalances) {
  const CsrMatrix a = laplacian_2d(8, 8);
  SolverService service(a, two_shard_options());

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::mutex tickets_mutex;
  std::vector<SolveTicket> spd_tickets, lsq_tickets, block_tickets;

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Xoshiro256 rng(100 + static_cast<std::uint64_t>(c));
      for (int r = 0; r < kPerClient; ++r) {
        SolveControls controls;
        controls.seed = static_cast<std::uint64_t>(c * kPerClient + r + 1);
        controls.workers = 1 + (r % 2);
        controls.sync = SyncMode::kBarrierPerSweep;
        controls.rel_tol = 1e-6;
        controls.sweeps = 4000;
        const std::vector<double> b =
            random_vector(a.rows(), controls.seed + 7);
        switch (r % 3) {
          case 0: {
            SolveTicket t = service.submit(b, controls);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            spd_tickets.push_back(t);
            break;
          }
          case 1: {
            SolveControls lsq = controls;
            lsq.step_size = 0.9;
            // Least squares converges on the normal equations (operator
            // conditioning squared): looser target, bigger budget.
            lsq.rel_tol = 1e-5;
            lsq.sweeps = 12000;
            SolveTicket t = service.submit_least_squares(b, lsq);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            lsq_tickets.push_back(t);
            break;
          }
          default: {
            MultiVector bm(a.rows(), 2);
            for (index_t i = 0; i < a.rows(); ++i) {
              bm.at(i, 0) = b[static_cast<std::size_t>(i)];
              bm.at(i, 1) = normal(rng);
            }
            SolveTicket t = service.submit_block(bm, controls);
            const std::lock_guard<std::mutex> lock(tickets_mutex);
            block_tickets.push_back(t);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (SolveTicket& t : spd_tickets) {
    const SolveOutcome& out = t.wait();
    EXPECT_EQ(out.status, SolveStatus::kConverged) << out.description;
    EXPECT_GE(t.shard(), 0);
    EXPECT_LT(t.shard(), service.shards());
  }
  for (SolveTicket& t : lsq_tickets)
    EXPECT_EQ(t.wait().status, SolveStatus::kConverged)
        << t.wait().description;
  for (SolveTicket& t : block_tickets)
    EXPECT_EQ(t.wait().status, SolveStatus::kConverged)
        << t.wait().description;

  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kPerClient);
  EXPECT_EQ(stats.completed, kClients * kPerClient);
  EXPECT_EQ(stats.queued, 0);
  long long served = 0;
  for (const ShardStats& s : stats.shards) served += s.served;
  EXPECT_EQ(served, stats.completed);
}

// --- (b) determinism under sharding ------------------------------------------

TEST(SolverService, FixedSeedBitIdenticalAcrossShardPlacementsAndCounts) {
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> b = random_vector(a.rows(), 3);

  SolveControls controls;
  controls.sweeps = 25;
  controls.seed = 17;
  controls.workers = 1;  // pin: identical regardless of shard pool size

  // Single-handle reference.
  ThreadPool pool(2);
  SpdProblem reference(pool, a);
  std::vector<double> x_ref(a.rows(), 0.0);
  reference.solve(b, x_ref, controls);

  for (int shards : {1, 2, 4}) {
    ServiceOptions options = two_shard_options();
    options.shards = shards;
    SolverService service(a, options);
    // Submit batches until at least two distinct shards have actually
    // executed a copy (scheduling decides placement, so retry bounded-many
    // times rather than assuming one batch spreads); every placement must
    // produce the same bits.
    const std::size_t want_placements = shards > 1 ? 2u : 1u;
    std::set<int> placements;
    for (int round = 0;
         round < 50 && placements.size() < want_placements; ++round) {
      std::vector<SolveTicket> tickets;
      for (int r = 0; r < 2 * shards + 1; ++r)
        tickets.push_back(service.submit(b, controls));
      for (SolveTicket& t : tickets) {
        EXPECT_EQ(t.wait().status, SolveStatus::kBudgetCompleted);
        placements.insert(t.shard());
        EXPECT_EQ(t.solution(), x_ref) << "shards=" << shards;
      }
    }
    // The cross-placement claim was actually exercised, not vacuously.
    EXPECT_GE(placements.size(), want_placements) << "shards=" << shards;
  }
}

TEST(SolverService, FixedSeedLeastSquaresAndBlockMatchSingleHandle) {
  const CsrMatrix a = laplacian_2d(7, 7);
  const std::vector<double> b = random_vector(a.rows(), 11);

  ThreadPool pool(2);
  SolveControls controls;
  controls.sweeps = 20;
  controls.seed = 31;
  controls.workers = 1;
  controls.step_size = 0.9;

  LsqProblem lsq_ref(pool, a);
  std::vector<double> x_lsq_ref(static_cast<std::size_t>(a.cols()), 0.0);
  lsq_ref.solve(b, x_lsq_ref, controls);

  SpdProblem spd_ref(pool, a);
  const MultiVector bm = random_multivector(a.rows(), 3, 13);
  MultiVector x_blk_ref(a.rows(), 3);
  spd_ref.solve(bm, x_blk_ref, controls);

  ServiceOptions options = two_shard_options();
  SolverService service(a, options);
  std::vector<SolveTicket> lsq_tickets, blk_tickets;
  for (int r = 0; r < 4; ++r) {
    lsq_tickets.push_back(service.submit_least_squares(b, controls));
    blk_tickets.push_back(service.submit_block(bm, controls));
  }
  for (SolveTicket& t : lsq_tickets) EXPECT_EQ(t.solution(), x_lsq_ref);
  for (SolveTicket& t : blk_tickets) {
    const MultiVector& x = t.block_solution();
    ASSERT_EQ(x.size(), x_blk_ref.size());
    for (std::size_t i = 0; i < x.size(); ++i)
      ASSERT_EQ(x.data()[i], x_blk_ref.data()[i]) << "i=" << i;
  }
}

TEST(SolverService, OwnerComputesMultiWorkerTeamsStayDeterministic) {
  // Multi-worker teams inside the shards: owner-computes on a
  // block-diagonal matrix makes every interleaving produce the same bits,
  // so the cross-shard comparison stays exact even at team size 2.
  const CsrMatrix a = block_diag_tridiagonal(/*blocks=*/4, /*block_size=*/12);
  const std::vector<double> b = random_vector(a.rows(), 5);

  SolveControls controls;
  controls.sweeps = 30;
  controls.seed = 23;
  controls.workers = 2;
  controls.scope = RandomizationScope::kOwnerComputes;
  controls.sync = SyncMode::kBarrierPerSweep;

  ThreadPool pool(2);
  SpdProblem reference(pool, a);
  std::vector<double> x_ref(a.rows(), 0.0);
  reference.solve(b, x_ref, controls);

  for (int shards : {1, 2}) {
    ServiceOptions options = two_shard_options();
    options.shards = shards;
    options.prepare_lsq = false;
    SolverService service(a, options);
    std::vector<SolveTicket> tickets;
    for (int r = 0; r < 2 * shards; ++r)
      tickets.push_back(service.submit(b, controls));
    for (SolveTicket& t : tickets)
      EXPECT_EQ(t.solution(), x_ref) << "shards=" << shards;
  }
}

// --- (c) shard-clone amortization --------------------------------------------

TEST(SolverService, ShardClonesPayNoRevalidation) {
  // Fresh matrix: the transpose cache starts cold, so the service's own
  // construction is what pays the one transpose build.
  const CsrMatrix a = laplacian_2d(8, 8);
  ASSERT_FALSE(a.transpose_cached());

  ServiceOptions options = two_shard_options();
  options.shards = 4;
  SolverService service(a, options);

  ServiceStats stats = service.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  // One symmetry/diagonal pass (SPD) + one rank pass (LSQ), both on shard 0.
  EXPECT_EQ(stats.validation_passes, 2);
  // One transpose for the whole service (SPD symmetry check builds it; the
  // LSQ handle and every clone share it through the matrix cache).
  EXPECT_EQ(stats.transpose_builds, 1);
  EXPECT_TRUE(a.transpose_cached());
  for (std::size_t s = 1; s < stats.shards.size(); ++s) {
    EXPECT_EQ(stats.shards[s].spd.validation_passes, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].lsq.validation_passes, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].spd.transpose_builds, 0) << "shard " << s;
    EXPECT_EQ(stats.shards[s].lsq.transpose_builds, 0) << "shard " << s;
  }

  // Serving requests re-validates nothing anywhere.
  SolveControls controls;
  controls.sweeps = 5;
  controls.workers = 1;
  const std::vector<double> b = random_vector(a.rows(), 2);
  std::vector<SolveTicket> tickets;
  for (int r = 0; r < 8; ++r) {
    tickets.push_back(service.submit(b, controls));
    tickets.push_back(service.submit_least_squares(b, controls));
  }
  for (SolveTicket& t : tickets) t.wait();
  service.drain();
  stats = service.stats();
  EXPECT_EQ(stats.validation_passes, 2);
  EXPECT_EQ(stats.transpose_builds, 1);
}

TEST(SolverService, CloneConstructorsMatchFullValidationBitForBit) {
  // The problem-layer satellite of the service: a shard clone solves
  // bit-identically to a fully-validated handle on another pool.
  const CsrMatrix a = laplacian_2d(8, 8);
  const std::vector<double> b = random_vector(a.rows(), 9);
  ThreadPool pool_a(2), pool_b(2);

  SpdProblem full(pool_a, a, /*check_input=*/true);
  SpdProblem clone(pool_b, full);
  EXPECT_EQ(clone.stats().validation_passes, 0);
  EXPECT_EQ(clone.stats().transpose_builds, 0);

  SolveControls controls;
  controls.sweeps = 25;
  controls.seed = 41;
  controls.workers = 1;
  std::vector<double> x_full(a.rows(), 0.0), x_clone(a.rows(), 0.0);
  full.solve(b, x_full, controls);
  clone.solve(b, x_clone, controls);
  EXPECT_EQ(x_full, x_clone);

  LsqProblem lsq_full(pool_a, a);
  LsqProblem lsq_clone(pool_b, lsq_full);
  EXPECT_EQ(lsq_clone.stats().validation_passes, 0);
  EXPECT_EQ(&lsq_full.transpose(), &lsq_clone.transpose());
  controls.step_size = 0.9;
  std::vector<double> y_full(static_cast<std::size_t>(a.cols()), 0.0);
  std::vector<double> y_clone(y_full);
  lsq_full.solve(b, y_full, controls);
  lsq_clone.solve(b, y_clone, controls);
  EXPECT_EQ(y_full, y_clone);
}

// --- (d) ticket contract and submit-side validation --------------------------

TEST(SolverService, SolveErrorsRethrownAtWait) {
  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options = two_shard_options();
  options.prepare_lsq = false;
  SolverService service(a, options);

  SolveControls bad;
  bad.step_size = 5.0;  // outside (0, 2): rejected by the solve on the shard
  SolveTicket t = service.submit(random_vector(a.rows(), 1), bad);
  EXPECT_THROW(t.wait(), Error);
  EXPECT_THROW(static_cast<void>(t.solution()), Error);  // on every access
  EXPECT_TRUE(t.done());

  // Submit-side validation is eager.
  EXPECT_THROW(service.submit(std::vector<double>(3, 0.0)), Error);
  EXPECT_THROW(
      service.submit_least_squares(random_vector(a.rows(), 1)), Error);
  EXPECT_THROW(service.submit_block(MultiVector(), {}), Error);

  // The failed request still counts as completed; the service keeps serving.
  SolveControls good;
  good.sweeps = 5;
  good.workers = 1;
  SolveTicket ok = service.submit(random_vector(a.rows(), 2), good);
  EXPECT_EQ(ok.wait().status, SolveStatus::kBudgetCompleted);
  service.drain();
  EXPECT_EQ(service.stats().completed, 2);
}

TEST(SolverService, TicketBasics) {
  SolveTicket invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_FALSE(invalid.done());
  EXPECT_THROW(invalid.wait(), Error);

  const CsrMatrix a = laplacian_2d(6, 6);
  ServiceOptions options = two_shard_options();
  options.prepare_lsq = false;
  options.shards = 1;
  SolverService service(a, options);
  EXPECT_EQ(service.shards(), 1);
  EXPECT_EQ(service.workers_per_shard(), 2);
  EXPECT_EQ(&service.matrix(), &a);

  SolveControls controls;
  controls.sweeps = 4;
  controls.workers = 1;
  SolveTicket t = service.submit(random_vector(a.rows(), 4), controls);
  ASSERT_TRUE(t.valid());
  SolveTicket copy = t;  // tickets are value handles to shared state
  copy.wait();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(&t.solution(), &copy.solution());
  EXPECT_THROW(static_cast<void>(t.block_solution()), Error);  // not block

  // Mixed-family guard: this service was built without prepare_lsq.
  EXPECT_THROW(service.submit_least_squares(random_vector(a.rows(), 5)),
               Error);
}

TEST(SolverService, DestructorDrainsOutstandingRequests) {
  const CsrMatrix a = laplacian_2d(8, 8);
  std::vector<SolveTicket> tickets;
  {
    ServiceOptions options = two_shard_options();
    options.prepare_lsq = false;
    SolverService service(a, options);
    SolveControls controls;
    controls.sweeps = 50;
    controls.workers = 1;
    for (int r = 0; r < 6; ++r)
      tickets.push_back(service.submit(random_vector(a.rows(), r + 1),
                                       controls));
    // Destructor runs with requests possibly still queued.
  }
  for (SolveTicket& t : tickets) {
    EXPECT_TRUE(t.done());  // completed before the destructor returned
    EXPECT_EQ(t.wait().status, SolveStatus::kBudgetCompleted);
  }
}

}  // namespace
}  // namespace asyrgs
