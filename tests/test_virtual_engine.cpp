// Virtual-engine tests: the deterministic scheduler driving the production
// update kernel must (a) be bit-identical across repeated invocations for a
// fixed (seed, P, delay model), (b) reproduce the sequential rgs iterate
// exactly at P = 1 / zero delay, (c) cross-check the replay simulator, and
// (d) stay under the Theorem 2/4 envelopes at P >= 64 virtual workers.
// Also here: golden-trace regressions pinning the EventDrivenSchedule's
// realized delay structure (satellite of the same PR).
//
// Host-core independence needs no parameterized test: the engine runs on
// the calling thread only — no ThreadPool, no std::thread, no clocks — so
// nothing in its state can depend on std::thread::hardware_concurrency.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "asyrgs/core/rgs.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/lanczos.hpp"
#include "asyrgs/linalg/norms.hpp"
#include "asyrgs/simulate/async_sim.hpp"
#include "asyrgs/simulate/virtual_engine.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/sparse/scale.hpp"
#include "asyrgs/support/thread_pool.hpp"
#include "asyrgs/theory/bounds.hpp"

namespace asyrgs {
namespace {

struct SimProblem {
  CsrMatrix a;  // unit diagonal
  std::vector<double> x_star;
  std::vector<double> b;
  std::vector<double> x0;
};

SimProblem unit_problem(index_t n, std::uint64_t seed) {
  SimProblem p;
  const CsrMatrix raw = laplacian_1d(n);
  p.a = UnitDiagonalScaling(raw).scale_matrix(raw);
  p.x_star = random_vector(n, seed);
  p.b = rhs_from_solution(p.a, p.x_star);
  p.x0.assign(static_cast<std::size_t>(n), 0.0);
  return p;
}

/// Moderately conditioned unit-diagonal SPD problem with its measured
/// TheoremInputs — the same construction test_theorem_validation.cpp uses,
/// sized here so the theorem preconditions hold at large tau.
struct ValidationProblem {
  CsrMatrix a;
  std::vector<double> x_star;
  std::vector<double> b;
  std::vector<double> x0;
  double e0 = 0.0;
  TheoremInputs inputs;
};

ValidationProblem make_validation_problem(index_t n, index_t tau,
                                          double beta) {
  ValidationProblem p;
  RandomBandedOptions gopt;
  gopt.n = n;
  gopt.offdiag_per_row = 6;
  gopt.bandwidth = 32;
  gopt.dominance_margin = 0.1;
  gopt.seed = 99;
  const CsrMatrix raw = random_sdd(gopt);
  p.a = UnitDiagonalScaling(raw).scale_matrix(raw);
  p.x_star = random_vector(n, 1234);
  p.b = rhs_from_solution(p.a, p.x_star);
  p.x0.assign(static_cast<std::size_t>(n), 0.0);
  p.e0 = std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);

  p.inputs.n = n;
  p.inputs.rho = rho(p.a);
  p.inputs.rho2 = rho2(p.a);
  ThreadPool pool(4);
  const LanczosResult spec =
      lanczos_extreme(pool, p.a, static_cast<int>(std::min<index_t>(n, 600)),
                      /*seed=*/17);
  p.inputs.lambda_min = spec.lambda_min;
  p.inputs.lambda_max = spec.lambda_max;
  p.inputs.tau = tau;
  p.inputs.beta = beta;
  return p;
}

// --- Acceptance: P = 1 equals the sequential solver, bit for bit ------------

TEST(VirtualEngine, ZeroDelayMatchesSequentialRgsBitwise) {
  SimProblem p = unit_problem(64, 3);
  VirtualEngineOptions opt;
  opt.iterations = 64 * 5;
  opt.seed = 7;
  const ZeroDelay delay;
  const SimResult sim =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);

  std::vector<double> x_seq = p.x0;
  RgsOptions ropt;
  ropt.sweeps = 5;
  ropt.seed = 7;
  rgs_solve(p.a, p.b, x_seq, ropt);

  ASSERT_EQ(sim.x.size(), x_seq.size());
  for (std::size_t i = 0; i < x_seq.size(); ++i)
    EXPECT_EQ(sim.x[i], x_seq[i]) << "entry " << i;
}

// --- Acceptance: fixed configuration is bit-identical across invocations ----

TEST(VirtualEngine, BitIdenticalAcrossRepeatedInvocations) {
  SimProblem p = unit_problem(128, 5);
  VirtualEngineOptions opt;
  opt.iterations = 128 * 8;
  opt.seed = 31;
  opt.step_size = 0.4;
  opt.record_every = 128;
  const BatchDelay delay(64);  // P = 64 virtual workers in lockstep

  const SimResult first =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  const SimResult second =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  ASSERT_EQ(first.x.size(), second.x.size());
  for (std::size_t i = 0; i < first.x.size(); ++i)
    EXPECT_EQ(first.x[i], second.x[i]) << "entry " << i;
  ASSERT_EQ(first.error_sq_history.size(), second.error_sq_history.size());
  for (std::size_t i = 0; i < first.error_sq_history.size(); ++i)
    EXPECT_EQ(first.error_sq_history[i], second.error_sq_history[i]);
  EXPECT_EQ(first.final_error_sq, second.final_error_sq);
}

TEST(VirtualEngine, EventRunBitIdenticalAcrossRepeatedInvocations) {
  SimProblem p = unit_problem(96, 7);
  EventSimOptions event;
  event.processors = 64;
  event.iterations = 96 * 10;
  event.seed = 41;
  VirtualEngineOptions opt;
  opt.step_size = 0.2;

  const VirtualEventResult first =
      run_virtual_event(p.a, p.b, p.x0, p.x_star, event, opt);
  const VirtualEventResult second =
      run_virtual_event(p.a, p.b, p.x0, p.x_star, event, opt);
  ASSERT_EQ(first.result.x.size(), second.result.x.size());
  for (std::size_t i = 0; i < first.result.x.size(); ++i)
    EXPECT_EQ(first.result.x[i], second.result.x[i]) << "entry " << i;
  EXPECT_EQ(first.tau, second.tau);
  EXPECT_EQ(first.stats.max_delay, second.stats.max_delay);
  EXPECT_EQ(first.stats.mean_delay, second.stats.mean_delay);
  // The schedule genuinely overlapped updates and the run still landed a
  // plausible iterate (convergence at large P is the envelope tests' job).
  EXPECT_GT(first.tau, 0);
  EXPECT_TRUE(std::isfinite(first.result.final_error_sq));
}

// --- Model adapters ----------------------------------------------------------

TEST(VirtualEngine, WindowExclusionEqualsFixedDelayBitwise) {
  // K(j) = {0..j-tau-1} is the prefix state x_{k(j)} with k = max(0, j-tau):
  // the consistent and inconsistent adapters materialize identical stale
  // snapshots in identical order, so the runs agree bit for bit.
  SimProblem p = unit_problem(48, 5);
  VirtualEngineOptions opt;
  opt.iterations = 48 * 6;
  opt.seed = 11;
  opt.step_size = 0.8;

  const index_t tau = 9;
  const FixedDelay fixed(tau);
  const WindowExclusion excl(tau);
  const SimResult a =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, fixed, opt);
  const SimResult b =
      run_virtual_inconsistent(p.a, p.b, p.x0, p.x_star, excl, opt);
  for (std::size_t i = 0; i < a.x.size(); ++i)
    EXPECT_EQ(a.x[i], b.x[i]) << "entry " << i;
}

TEST(VirtualEngine, CrossChecksReplaySimulatorUnderDelay) {
  // Same schedule, two executions of iteration (8): the replay reconstructs
  // b_r - A_r x_{k(j)} as residual-plus-corrections while the engine
  // materializes x_{k(j)} and runs the production kernel.  The associations
  // differ, so agreement is to rounding — a tight tolerance relative to the
  // initial error, not bitwise.
  SimProblem p = unit_problem(48, 5);
  VirtualEngineOptions opt;
  opt.iterations = 48 * 6;
  opt.seed = 11;
  opt.step_size = 0.8;
  const FixedDelay delay(9);

  const SimResult virt =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  const SimResult replay =
      simulate_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  const double e0 = std::pow(a_norm_error(p.a, p.x0, p.x_star), 2);
  EXPECT_NEAR(virt.final_error_sq, replay.final_error_sq, 1e-9 * e0);
  ASSERT_EQ(virt.x.size(), replay.x.size());
  for (std::size_t i = 0; i < virt.x.size(); ++i)
    EXPECT_NEAR(virt.x[i], replay.x[i], 1e-10) << "entry " << i;
}

TEST(VirtualEngine, RejectsScheduleViolatingItsTau) {
  class LyingDelay final : public ConsistentDelayModel {
   public:
    [[nodiscard]] std::uint64_t snapshot(std::uint64_t j) const override {
      return j > 50 ? 0 : j;  // pretends tau = 2 but returns ancient states
    }
    [[nodiscard]] index_t tau() const override { return 2; }
    [[nodiscard]] std::string name() const override { return "liar"; }
  };
  SimProblem p = unit_problem(32, 13);
  VirtualEngineOptions opt;
  opt.iterations = 100;
  const LyingDelay liar;
  EXPECT_THROW(run_virtual_consistent(p.a, p.b, p.x0, p.x_star, liar, opt),
               Error);
}

TEST(VirtualEngine, RejectsBadInputs) {
  SimProblem p = unit_problem(16, 17);
  const ZeroDelay delay;
  VirtualEngineOptions opt;
  opt.iterations = 10;
  opt.step_size = 2.0;
  EXPECT_THROW(run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt),
               Error);
  opt.step_size = 1.0;
  std::vector<double> short_b(8, 0.0);
  EXPECT_THROW(
      run_virtual_consistent(p.a, short_b, p.x0, p.x_star, delay, opt), Error);
}

TEST(VirtualEngine, RecordsErrorHistoryAtRequestedCadence) {
  SimProblem p = unit_problem(50, 15);
  VirtualEngineOptions opt;
  opt.iterations = 500;
  opt.record_every = 100;
  const ZeroDelay delay;
  const SimResult sim =
      run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt);
  ASSERT_EQ(sim.record_points.size(), 5u);  // j = 0, 100, ..., 400
  EXPECT_EQ(sim.record_points.front(), 0u);
  EXPECT_EQ(sim.record_points.back(), 400u);
  EXPECT_LT(sim.error_sq_history.back(), sim.error_sq_history.front());
}

// --- Acceptance: theorem-envelope conformance at P >= 64 ---------------------

TEST(VirtualEngine, ConsistentEnvelopeHoldsAtSixtyFourVirtualWorkers) {
  // P = 64 lockstep workers (BatchDelay, tau = 63) on a problem sized so
  // the Theorem 2 precondition 2 rho tau < 1 genuinely holds — asserted,
  // not assumed.
  const index_t tau = 63;
  ValidationProblem p = make_validation_problem(600, tau, 1.0);
  ASSERT_TRUE(consistent_bound_applicable(p.inputs))
      << "2 rho tau = " << 2.0 * p.inputs.rho * tau;

  const std::uint64_t epoch = theorem_t0(p.inputs.n, p.inputs.lambda_max) +
                              static_cast<std::uint64_t>(tau);
  const std::uint64_t m = 4 * epoch;
  const BatchDelay delay(64);

  double mean_err = 0.0;
  const int trials = 5;
  for (int t = 0; t < trials; ++t) {
    VirtualEngineOptions opt;
    opt.iterations = m;
    opt.seed = 43000 + static_cast<std::uint64_t>(t);
    mean_err += run_virtual_consistent(p.a, p.b, p.x0, p.x_star, delay, opt)
                    .final_error_sq;
  }
  mean_err /= trials;

  const EnvelopeCheck check =
      check_consistent_envelope(p.inputs, p.e0, mean_err, m, /*slack=*/1.5);
  EXPECT_TRUE(check.applicable);
  EXPECT_TRUE(check.conforms)
      << "measured E_m/E_0 = " << check.measured_ratio
      << " vs envelope = " << check.envelope;
}

TEST(VirtualEngine, InconsistentEnvelopeHoldsUnderEventScheduleAt64Workers) {
  // P = 64 event-driven virtual processors; tau-hat is *measured* from the
  // realized schedule, the step size is then chosen as the Theorem 4
  // optimum for that tau-hat (which always satisfies the precondition),
  // and the precondition is still asserted rather than assumed.
  ValidationProblem p = make_validation_problem(600, 0, 1.0);
  const std::uint64_t m = 4000;

  double mean_err = 0.0;
  EnvelopeCheck last_check;
  const int trials = 5;
  double mean_envelope = 0.0;
  for (int t = 0; t < trials; ++t) {
    EventSimOptions event;
    event.processors = 64;
    event.iterations = m;
    event.seed = 47000 + static_cast<std::uint64_t>(t);
    const EventDrivenSchedule schedule = EventDrivenSchedule::build(p.a, event);

    TheoremInputs in = p.inputs;
    in.tau = schedule.tau();
    in.beta = optimal_beta_inconsistent(in.rho2, in.tau);
    ASSERT_TRUE(inconsistent_bound_applicable(in))
        << "tau-hat = " << in.tau << " beta = " << in.beta;

    VirtualEngineOptions opt;
    opt.iterations = m;
    opt.seed = event.seed;  // must consume the schedule's direction stream
    opt.step_size = in.beta;
    const SimResult run =
        run_virtual_inconsistent(p.a, p.b, p.x0, p.x_star, schedule, opt);
    mean_err += run.final_error_sq;
    last_check = check_inconsistent_envelope(in, p.e0, run.final_error_sq, m,
                                             /*slack=*/1.5);
    mean_envelope += last_check.envelope;
  }
  mean_err /= trials;
  mean_envelope /= trials;
  EXPECT_TRUE(last_check.applicable);
  EXPECT_LT(mean_err / p.e0, 1.5 * mean_envelope)
      << "measured mean E_m/E_0 = " << mean_err / p.e0;
}

// --- Golden traces: EventDrivenSchedule regression ---------------------------

/// FNV-1a over (j, excluded set) pairs — pins the exact visibility
/// structure, not just its summary statistics.
std::uint64_t visibility_hash(const EventDrivenSchedule& s,
                              std::uint64_t count) {
  std::uint64_t h = 1469598103934665603ull;
  auto fold = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (std::uint64_t j = 0; j < count; ++j) {
    fold(j);
    for (std::uint64_t t : s.excluded(j)) fold(t);
  }
  return h;
}

struct GoldenTrace {
  int processors;
  index_t max_delay;
  double mean_delay;
  double mean_inflight;
  std::uint64_t first64_hash;  ///< first 64 visibility sets
  std::uint64_t full_hash;     ///< all 2048 visibility sets
};

class EventGoldenTest : public ::testing::TestWithParam<GoldenTrace> {};

TEST_P(EventGoldenTest, ScheduleMatchesPinnedTrace) {
  // Captured by running exactly this recipe at the commit introducing the
  // virtual engine; any change to the event simulation's arithmetic, tie
  // breaking, or stream keying shows up here first.
  const GoldenTrace g = GetParam();
  const CsrMatrix a = laplacian_1d(64);
  EventSimOptions opt;
  opt.processors = g.processors;
  opt.iterations = 2048;
  opt.seed = 21;
  const EventDrivenSchedule s = EventDrivenSchedule::build(a, opt);

  EXPECT_EQ(s.stats().max_delay, g.max_delay);
  EXPECT_NEAR(s.stats().mean_delay, g.mean_delay, 1e-12);
  EXPECT_NEAR(s.stats().mean_inflight, g.mean_inflight, 1e-12);
  EXPECT_EQ(visibility_hash(s, 64), g.first64_hash);
  EXPECT_EQ(visibility_hash(s, 2048), g.full_hash);
}

INSTANTIATE_TEST_SUITE_P(
    ProcessorSweep, EventGoldenTest,
    ::testing::Values(
        GoldenTrace{8, 13, 4.0552138663684651, 7.986328125,
                    7863458767245701248ull, 7433637368546956259ull},
        GoldenTrace{64, 125, 32.349788989669939, 63.015625,
                    11998687154876538755ull, 5270631606293867217ull},
        GoldenTrace{256, 509, 130.48108455882354, 240.0625,
                    11998687154876538755ull, 16383078768779429836ull}));

// --- Assumption A-4: jitter stream keyed separately from directions ----------

TEST(VirtualEngine, JitterDrawsComeFromSeparatelyKeyedStream) {
  const CsrMatrix a = laplacian_1d(64);
  EventSimOptions opt;
  opt.processors = 16;
  opt.iterations = 1024;
  opt.seed = 21;

  // With jitter amplitude 0 the jitter stream is never consulted: changing
  // its key must not move a single visibility set.
  opt.jitter = 0.0;
  opt.jitter_seed = 1;
  const std::uint64_t h_a =
      visibility_hash(EventDrivenSchedule::build(a, opt), 1024);
  opt.jitter_seed = 2;
  const std::uint64_t h_b =
      visibility_hash(EventDrivenSchedule::build(a, opt), 1024);
  EXPECT_EQ(h_a, h_b);

  // With jitter on, the jitter key matters (the draws are real)...
  opt.jitter = 0.3;
  opt.jitter_seed = 1;
  const std::uint64_t h_c =
      visibility_hash(EventDrivenSchedule::build(a, opt), 1024);
  opt.jitter_seed = 2;
  const std::uint64_t h_d =
      visibility_hash(EventDrivenSchedule::build(a, opt), 1024);
  EXPECT_NE(h_c, h_d);

  // ...but colliding the two seed *values* still keys distinct streams:
  // the schedule differs from the jitter-free one only through the jitter
  // factors, never by re-using direction draws (A-4 independence is keyed
  // in, not assumed).
  opt.jitter_seed = opt.seed;
  const std::uint64_t h_e =
      visibility_hash(EventDrivenSchedule::build(a, opt), 1024);
  EXPECT_NE(h_e, h_a);  // jitter active: durations moved
  // Direction stream unchanged throughout: the replayed iterate under the
  // jitter-free schedule matches across jitter seeds bitwise.
  SimProblem p = unit_problem(64, 3);
  opt.jitter = 0.0;
  VirtualEngineOptions vopt;
  vopt.step_size = 0.3;
  opt.jitter_seed = 7;
  const VirtualEventResult r1 =
      run_virtual_event(p.a, p.b, p.x0, p.x_star, opt, vopt);
  opt.jitter_seed = 8;
  const VirtualEventResult r2 =
      run_virtual_event(p.a, p.b, p.x0, p.x_star, opt, vopt);
  for (std::size_t i = 0; i < r1.result.x.size(); ++i)
    EXPECT_EQ(r1.result.x[i], r2.result.x[i]);
}

}  // namespace
}  // namespace asyrgs
