// Asynchronous row-action Kaczmarz on the shared engine (LsqProblem with
// SpdMethod::kAsyncKaczmarz): convergence on consistent and inconsistent
// rectangular systems under every sampling policy and worker count,
// single-worker reproducibility, prepare-once amortization of the weighted
// sampler, the serving path, and the method/sampling validation matrix.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/kaczmarz.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/serve/service.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

/// Random full-rank sparse m x n matrix with a few entries per row plus a
/// guaranteed diagonal band so every column is nonzero (the test_lsq
/// fixture, reproduced so the suites stay independent).
CsrMatrix random_tall_matrix(index_t m, index_t n, std::uint64_t seed) {
  CooBuilder b(m, n);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < m; ++i) {
    b.add(i, i % n, 1.0 + uniform_real(rng));
    for (int t = 0; t < 3; ++t)
      b.add(i, uniform_index(rng, n), normal(rng) * 0.4);
  }
  return b.to_csr();
}

struct LsqFixture {
  CsrMatrix a;
  std::vector<double> x_star;
  std::vector<double> b;  // consistent: b = A x_star
};

LsqFixture consistent_problem(index_t m, index_t n, std::uint64_t seed) {
  LsqFixture p;
  p.a = random_tall_matrix(m, n, seed);
  p.x_star = random_vector(n, seed + 1);
  p.b = rhs_from_solution(p.a, p.x_star);
  return p;
}

/// ||A^T (b - A x)|| — the normal-equations residual both least-squares
/// methods converge on.
double normal_residual(const CsrMatrix& a, const std::vector<double>& b,
                       const std::vector<double>& x) {
  std::vector<double> r(b.size());
  a.multiply(x.data(), r.data());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
  std::vector<double> g(static_cast<std::size_t>(a.cols()));
  a.multiply_transpose(r.data(), g.data());
  return nrm2(g);
}

SolveControls kaczmarz_controls(SamplingPolicy sampling, int workers) {
  SolveControls c;
  c.method = SpdMethod::kAsyncKaczmarz;
  c.sampling = sampling;
  c.workers = workers;
  c.sweeps = 400;
  c.rel_tol = 1e-9;
  c.sync = SyncMode::kBarrierPerSweep;  // residual policy needs rendezvous
  return c;
}

TEST(AsyncKaczmarz, SolvesConsistentRectangularSystemEveryPolicyAndTeam) {
  ThreadPool pool(4);
  LsqFixture p = consistent_problem(300, 100, 3);
  LsqProblem problem(pool, p.a);

  for (SamplingPolicy sampling :
       {SamplingPolicy::kUniform, SamplingPolicy::kWeighted,
        SamplingPolicy::kResidual}) {
    for (int workers : {1, 2, 4}) {
      std::vector<double> x(100, 0.0);
      const SolveOutcome out =
          problem.solve(p.b, x, kaczmarz_controls(sampling, workers));
      EXPECT_TRUE(out.converged())
          << to_string(sampling) << " workers=" << workers
          << " status=" << to_string(out.status);
      EXPECT_EQ(out.method_used, SpdMethod::kAsyncKaczmarz);
      EXPECT_EQ(out.sampling_used, sampling);
      EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-6)
          << to_string(sampling) << " workers=" << workers;
    }
  }
}

TEST(AsyncKaczmarz, DrivesNormalResidualDownOnInconsistentSystem) {
  // Noisy right-hand side: no exact solution exists.  The Kaczmarz iterate
  // converges to a neighbourhood of the least-squares solution whose radius
  // shrinks with the step size, so a damped run must land near the
  // normal-equations stationary point.
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(250, 80, 7);
  Xoshiro256 rng(11);
  for (double& v : p.b) v += 0.05 * normal(rng);

  std::vector<double> atb(80);
  p.a.multiply_transpose(p.b.data(), atb.data());
  const double scale = nrm2(atb);  // normal residual at x = 0

  // Ground truth: the exact least-squares solution via CGNR.
  std::vector<double> x_ls(80, 0.0);
  SolveOptions exact;
  exact.max_iterations = 2000;
  exact.rel_tol = 1e-12;
  ASSERT_TRUE(cgnr_solve(pool, p.a, p.b, x_ls, exact).converged);

  LsqProblem problem(pool, p.a);
  const auto run = [&](double beta) {
    SolveControls c = kaczmarz_controls(SamplingPolicy::kWeighted, 2);
    c.sweeps = 4000;
    c.step_size = beta;
    c.rel_tol = 1e-6;  // unreachable inside the noise ball: fixed budget
    std::vector<double> x(80, 0.0);
    const SolveOutcome out = problem.solve(p.b, x, c);
    EXPECT_EQ(out.method_used, SpdMethod::kAsyncKaczmarz);
    return x;
  };

  const std::vector<double> x_damped = run(0.25);
  EXPECT_LT(normal_residual(p.a, p.b, x_damped), 0.03 * scale);
  EXPECT_LT(nrm2(subtract(x_damped, x_ls)) / nrm2(x_ls), 0.05);

  // The horizon shrinks with the step size (measured: rel ~1.0e-2 at
  // beta = 0.25 vs ~4.3e-3 at beta = 0.05 on this fixture).
  const std::vector<double> x_damped_more = run(0.05);
  EXPECT_LT(normal_residual(p.a, p.b, x_damped_more),
            normal_residual(p.a, p.b, x_damped));
}

TEST(AsyncKaczmarz, OneWorkerPinnedRunsAreBitReproducible) {
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(200, 60, 5);
  LsqProblem problem(pool, p.a);

  for (SamplingPolicy sampling :
       {SamplingPolicy::kUniform, SamplingPolicy::kWeighted,
        SamplingPolicy::kResidual}) {
    SolveControls c = kaczmarz_controls(sampling, 1);
    c.sweeps = 40;
    c.rel_tol = 0.0;  // fixed budget: identical work both runs
    std::vector<double> x1(60, 0.0), x2(60, 0.0);
    problem.solve(p.b, x1, c);
    problem.solve(p.b, x2, c);
    ASSERT_EQ(x1.size(), x2.size());
    for (std::size_t i = 0; i < x1.size(); ++i)
      ASSERT_EQ(std::memcmp(&x1[i], &x2[i], sizeof(double)), 0)
          << to_string(sampling) << " i=" << i;
  }
}

TEST(AsyncKaczmarz, WeightedSamplerIsBuiltOncePerHandle) {
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(150, 50, 9);
  LsqProblem problem(pool, p.a);

  SolveControls c = kaczmarz_controls(SamplingPolicy::kWeighted, 1);
  c.sweeps = 10;
  c.rel_tol = 0.0;
  std::vector<double> x(50, 0.0);
  problem.solve(p.b, x, c);
  const long long after_first = problem.stats().sampler_builds;
  EXPECT_GE(after_first, 1);
  for (int run = 0; run < 3; ++run) {
    x.assign(50, 0.0);
    problem.solve(p.b, x, c);
  }
  // Repeat weighted solves reuse the cached alias table.
  EXPECT_EQ(problem.stats().sampler_builds, after_first);

  // Residual solves rebuild per solve (initial table + periodic refreshes).
  SolveControls r = kaczmarz_controls(SamplingPolicy::kResidual, 1);
  r.sweeps = 20;
  r.rel_tol = 0.0;
  r.resample_sweeps = 4;
  x.assign(50, 0.0);
  problem.solve(p.b, x, r);
  EXPECT_GT(problem.stats().sampler_builds, after_first);
}

TEST(AsyncKaczmarz, SequentialBaselineAgreesOnTheSolution) {
  // The sequential Strohmer-Vershynin baseline and the async row-action
  // method share the csr_row_sub_dot scan; both must recover x_star on a
  // consistent system (their draw streams differ, so agreement is on the
  // solution, not the trajectory).
  LsqFixture p = consistent_problem(240, 80, 13);
  std::vector<double> x_seq(80, 0.0);
  SolveOptions seq;
  seq.max_iterations = 4000;
  seq.rel_tol = 1e-10;
  const SolveReport rep = kaczmarz_solve(p.a, p.b, x_seq, seq);
  EXPECT_TRUE(rep.converged);

  ThreadPool pool(2);
  LsqProblem problem(pool, p.a);
  std::vector<double> x_async(80, 0.0);
  SolveControls c = kaczmarz_controls(SamplingPolicy::kWeighted, 1);
  const SolveOutcome out = problem.solve(p.b, x_async, c);
  EXPECT_TRUE(out.converged());
  EXPECT_LT(nrm2(subtract(x_async, x_seq)) / nrm2(x_seq), 1e-6);
}

TEST(AsyncKaczmarz, ZeroRowsAreLegalAndSkipped) {
  // A row with no entries has ||A_i|| = 0; its updates must no-op instead
  // of dividing by zero.  Consistency requires b_i = 0 on that row.
  CooBuilder builder(5, 3);
  builder.add(0, 0, 2.0);
  builder.add(1, 1, 3.0);
  builder.add(2, 2, 1.5);
  builder.add(4, 0, 1.0);
  builder.add(4, 2, -1.0);  // row 3 stays empty
  const CsrMatrix a = builder.to_csr();
  const std::vector<double> x_star = {1.0, -2.0, 0.5};
  const std::vector<double> b = rhs_from_solution(a, x_star);

  ThreadPool pool(2);
  LsqProblem problem(pool, a);
  for (SamplingPolicy sampling :
       {SamplingPolicy::kUniform, SamplingPolicy::kWeighted}) {
    std::vector<double> x(3, 0.0);
    const SolveOutcome out =
        problem.solve(b, x, kaczmarz_controls(sampling, 2));
    EXPECT_TRUE(out.converged()) << to_string(sampling);
    for (double v : x) EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(nrm2(subtract(x, x_star)), 1e-6) << to_string(sampling);
  }
}

TEST(AsyncKaczmarz, ServiceServesKaczmarzRequests) {
  LsqFixture p = consistent_problem(220, 70, 17);
  ServiceOptions options;
  options.shards = 2;
  options.workers_per_shard = 2;
  options.prepare_spd = false;  // rectangular input: SPD prep would reject
  options.prepare_lsq = true;
  SolverService service(p.a, options);

  std::vector<SolveTicket> tickets;
  for (int i = 0; i < 4; ++i)
    tickets.push_back(service.submit_least_squares(
        p.b, kaczmarz_controls(SamplingPolicy::kWeighted, 2)));
  for (SolveTicket& t : tickets) {
    const SolveOutcome out = t.wait();
    EXPECT_TRUE(out.converged());
    EXPECT_EQ(out.method_used, SpdMethod::kAsyncKaczmarz);
    EXPECT_EQ(out.sampling_used, SamplingPolicy::kWeighted);
    EXPECT_LT(nrm2(subtract(t.solution(), p.x_star)) / nrm2(p.x_star), 1e-6);
  }
}

// --- validation matrix -------------------------------------------------------

TEST(SamplingValidation, SpdProblemRejectsKaczmarzAndKrylovSampling) {
  const CsrMatrix a = laplacian_1d(16);
  ThreadPool pool(2);
  SpdProblem problem(pool, a);
  std::vector<double> b(16, 1.0);
  std::vector<double> x(16, 0.0);

  SolveControls kaczmarz;
  kaczmarz.method = SpdMethod::kAsyncKaczmarz;
  EXPECT_THROW(problem.solve(b, x, kaczmarz), Error);

  // The Krylov methods draw no random directions: non-uniform sampling is
  // a contract violation, not a silent no-op.
  SolveControls cg;
  cg.method = SpdMethod::kCg;
  cg.sampling = SamplingPolicy::kWeighted;
  EXPECT_THROW(problem.solve(b, x, cg), Error);
}

TEST(SamplingValidation, ResidualPolicyNeedsRendezvousAndSanePeriod) {
  const CsrMatrix a = laplacian_1d(16);
  ThreadPool pool(2);
  SpdProblem problem(pool, a);
  std::vector<double> b(16, 1.0);
  std::vector<double> x(16, 0.0);

  SolveControls c;
  c.method = SpdMethod::kAsyncRgs;
  c.sampling = SamplingPolicy::kResidual;
  c.sync = SyncMode::kFreeRunning;  // no rendezvous: refresh cannot run
  EXPECT_THROW(problem.solve(b, x, c), Error);

  c.sync = SyncMode::kBarrierPerSweep;
  c.resample_sweeps = 0;
  EXPECT_THROW(problem.solve(b, x, c), Error);

  c.resample_sweeps = 2;
  c.sweeps = 30;
  c.rel_tol = 1e-8;
  const SolveOutcome out = problem.solve(b, x, c);  // the valid combination
  EXPECT_EQ(out.sampling_used, SamplingPolicy::kResidual);
}

TEST(SamplingValidation, NonUniformPoliciesRequireSharedScope) {
  const CsrMatrix a = laplacian_1d(16);
  ThreadPool pool(2);
  SpdProblem problem(pool, a);
  std::vector<double> b(16, 1.0);
  std::vector<double> x(16, 0.0);

  SolveControls c;
  c.method = SpdMethod::kAsyncRgs;
  c.sampling = SamplingPolicy::kWeighted;
  c.scope = RandomizationScope::kOwnerComputes;
  EXPECT_THROW(problem.solve(b, x, c), Error);
}

TEST(SamplingValidation, LsqProblemRejectsKrylovMethods) {
  LsqFixture p = consistent_problem(40, 20, 21);
  ThreadPool pool(2);
  LsqProblem problem(pool, p.a);
  std::vector<double> x(20, 0.0);
  SolveControls c;
  c.method = SpdMethod::kCg;
  EXPECT_THROW(problem.solve(p.b, x, c), Error);
}

}  // namespace
}  // namespace asyrgs
