// The paper's motivating workload (Section 9): multi-label linear
// regression on social-media text, i.e. many simultaneous right-hand sides
// over one large, unstructured, ill-conditioned Gram matrix — solved to the
// *low* accuracy big-data applications actually need.
//
//   build/examples/social_regression [--terms 4000] [--rhs 16] [--tol 1e-3]
//
// Compares, at that low accuracy: grouped CG, sequential randomized
// Gauss-Seidel, and AsyRGS on all cores.  On this workload the basic
// randomized iteration reaches the target in a handful of sweeps and the
// asynchronous version reaches it fastest in wall time — the paper's
// "best choice for solving the said linear system to the required
// accuracy".
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("social_regression",
                "multi-label regression on a synthetic social-media corpus");
  auto terms = cli.add_int("terms", 4000, "vocabulary size (Gram dimension)");
  auto documents = cli.add_int("documents", 16000, "corpus size");
  auto rhs = cli.add_int("rhs", 16, "label columns (paper: 51)");
  auto tol = cli.add_double("tol", 1e-3, "downstream accuracy target");
  auto budget = cli.add_int("budget", 200, "sweep/iteration budget");
  cli.parse(argc, argv);

  SocialGramOptions gopt;
  gopt.terms = *terms;
  gopt.documents = *documents;
  gopt.mean_doc_length = 10;
  gopt.ridge = 5.0;
  const SocialGram system = make_social_gram(gopt);
  const CsrMatrix& a = system.gram;
  const RowNnzStats stats = row_nnz_stats(a);
  std::cout << "Gram matrix: n=" << a.rows() << " nnz=" << a.nnz()
            << " row sizes min/mean/max = " << stats.min << "/" << stats.mean
            << "/" << stats.max << " (heavily skewed, like the paper's)\n\n";

  ThreadPool& pool = ThreadPool::global();
  const MultiVector b = random_multivector(a.rows(), *rhs, 7);

  // --- grouped CG ------------------------------------------------------------
  {
    MultiVector x(a.rows(), *rhs);
    SolveOptions opt;
    opt.max_iterations = static_cast<int>(*budget);
    opt.rel_tol = *tol;
    WallTimer t;
    const BlockSolveReport rep = block_cg_solve(pool, a, b, x, opt, 0,
                                                RowPartition::kRoundRobin);
    std::cout << "CG (all threads):        " << rep.iterations
              << " iterations, " << t.seconds() << " s, "
              << rep.columns_converged << "/" << *rhs << " labels at "
              << *tol << "\n";
  }

  // --- sequential randomized Gauss-Seidel -------------------------------------
  {
    MultiVector x(a.rows(), *rhs);
    RgsOptions opt;
    opt.sweeps = static_cast<int>(*budget);
    opt.rel_tol = *tol;
    WallTimer t;
    const RgsReport rep = rgs_solve_block(a, b, x, opt);
    std::cout << "Randomized G-S (1 core): " << rep.sweeps_done
              << " sweeps,     " << t.seconds() << " s, converged="
              << (rep.converged ? "yes" : "no") << "\n";
  }

  // --- AsyRGS on all cores, through a prepared handle --------------------------
  // A serving system would hold one SpdProblem per operator and answer every
  // incoming label batch from it; here the second batch demonstrates that
  // repeat solves skip all preparation.
  {
    SpdProblem problem(pool, a, /*check_input=*/false);
    SolveControls controls;
    controls.sweeps = static_cast<int>(*budget);
    controls.rel_tol = *tol;
    controls.sync = SyncMode::kBarrierPerSweep;

    MultiVector x(a.rows(), *rhs);
    WallTimer t;
    const SolveOutcome out = problem.solve(b, x, controls);
    std::cout << "AsyRGS (" << out.workers << " threads):     "
              << out.iterations << " sweeps,     " << t.seconds()
              << " s, status=" << to_string(out.status) << "\n";

    // A second batch of labels against the same prepared operator.
    const MultiVector b2 = random_multivector(a.rows(), *rhs, 17);
    MultiVector x2(a.rows(), *rhs);
    controls.seed = 2;
    WallTimer t2;
    const SolveOutcome out2 = problem.solve(b2, x2, controls);
    std::cout << "AsyRGS, prepared re-solve: " << out2.iterations
              << " sweeps,     " << t2.seconds()
              << " s, status=" << to_string(out2.status) << " ("
              << problem.stats().scratch_allocations
              << " scratch allocations total)\n";
  }

  std::cout << "\nAt low accuracy the basic randomized iteration needs only "
               "a few sweeps and\nasynchronous execution makes those sweeps "
               "scale — the paper's Section 9 story.\n";
  return 0;
}
