// ThreadPool tests: coverage, partitioning, exceptions, nesting, barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "asyrgs/support/barrier.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {
namespace {

TEST(ThreadPool, SizeDefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1);
}

TEST(ThreadPool, RunTeamUsesDistinctWorkerIds) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_team(4, [&](int id, int team) {
    EXPECT_EQ(team, 4);
    hits[static_cast<std::size_t>(id)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunTeamClampsWorkers) {
  ThreadPool pool(2);
  std::atomic<int> max_team{0};
  pool.run_team(64, [&](int, int team) {
    int cur = max_team.load();
    while (team > cur && !max_team.compare_exchange_weak(cur, team)) {
    }
  });
  EXPECT_EQ(max_team.load(), 2);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const index_t n = 100003;
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  pool.parallel_for(0, n, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i)
      count[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(count[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(8);
  int calls = 0;
  pool.parallel_for(5, 5, [&](index_t, index_t) { ++calls; });
  EXPECT_EQ(calls, 0);

  std::atomic<int> total{0};
  pool.parallel_for(0, 3, [&](index_t lo, index_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ParallelForDynamicCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const index_t n = 54321;
  std::vector<std::atomic<int>> count(static_cast<std::size_t>(n));
  pool.parallel_for_dynamic(0, n, 7, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i)
      count[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < n; ++i)
    ASSERT_EQ(count[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForDynamicRejectsNonPositiveGrain) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for_dynamic(0, 10, 0, [](index_t, index_t) {}),
               Error);
}

TEST(ThreadPool, WorkerExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_team(4,
                             [&](int id, int) {
                               if (id == 2) throw Error("boom");
                             }),
               Error);
  // The pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.run_team(4, [&](int, int) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, CallerExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_team(4,
                             [&](int id, int) {
                               if (id == 0) throw Error("caller boom");
                             }),
               Error);
}

TEST(ThreadPool, NestedTeamRunsSerially) {
  ThreadPool pool(4);
  std::atomic<int> inner_teams{-1};
  pool.run_team(2, [&](int id, int) {
    if (id == 0) {
      EXPECT_TRUE(ThreadPool::inside_worker() || id == 0);
      pool.run_team(4, [&](int, int inner_team) {
        inner_teams.store(inner_team);
      });
    }
  });
  // Nested calls must degrade to a team of one, not deadlock.
  EXPECT_EQ(inner_teams.load(), 1);
}

TEST(ThreadPool, InsideWorkerFalseOnCaller) {
  EXPECT_FALSE(ThreadPool::inside_worker());
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(SpinBarrier, SynchronizesPhases) {
  ThreadPool pool(4);
  SpinBarrier barrier(4);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violation{false};
  const int phases = 50;
  pool.run_team(4, [&](int, int) {
    for (int p = 0; p < phases; ++p) {
      phase_counter.fetch_add(1);
      barrier.arrive_and_wait();
      // After the barrier every worker must observe all 4 arrivals of this
      // phase: counter is a multiple of 4 at the phase boundary.
      if (phase_counter.load() < 4 * (p + 1)) violation.store(true);
      barrier.arrive_and_wait();
    }
  });
  EXPECT_FALSE(violation.load());
  EXPECT_EQ(phase_counter.load(), 4 * phases);
}

TEST(SpinBarrier, RejectsNonPositiveParticipants) {
  EXPECT_THROW(SpinBarrier(0), Error);
}

// --- sizing arithmetic: the hardware_concurrency() == 0 guards --------------
//
// The standard permits std::thread::hardware_concurrency() to return 0
// ("unknown"); the sizing policies are pure functions of the reported value
// precisely so that case is testable without stubbing the global.

TEST(PoolSizing, AutoPoolSizeGuardsUnknownHardware) {
  static_assert(detail::auto_pool_size(0, 0u) == 1);  // unknown -> 1, not 0
  static_assert(detail::auto_pool_size(0, 8u) == 8);
  static_assert(detail::auto_pool_size(5, 0u) == 5);  // explicit request wins
  static_assert(detail::auto_pool_size(5, 8u) == 5);
  EXPECT_EQ(detail::auto_pool_size(0, 1u), 1);
}

TEST(PoolSizing, ShardAutoWorkersSpreadsRemainderAndGuardsZero) {
  // 8 threads / 3 shards = 3, 3, 2 — no core idled by truncation.
  EXPECT_EQ(detail::shard_auto_workers(0, 0, 3, 8u), 3);
  EXPECT_EQ(detail::shard_auto_workers(0, 1, 3, 8u), 3);
  EXPECT_EQ(detail::shard_auto_workers(0, 2, 3, 8u), 2);
  // Unknown hardware concurrency clamps every shard to 1, never 0.
  for (int s = 0; s < 4; ++s)
    EXPECT_EQ(detail::shard_auto_workers(0, s, 4, 0u), 1);
  // More shards than cores: the starved shards still get one worker.
  EXPECT_EQ(detail::shard_auto_workers(0, 7, 8, 4u), 1);
  // An explicit request wins even with unknown hardware.
  EXPECT_EQ(detail::shard_auto_workers(3, 2, 4, 0u), 3);
}

}  // namespace
}  // namespace asyrgs
