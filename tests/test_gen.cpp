// Generator tests: Laplacian spectra, SDD/SPD random matrices, and the
// synthetic social-media Gram system's structural guarantees.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/gen/gram.hpp"
#include "asyrgs/gen/laplacian.hpp"
#include "asyrgs/gen/random_spd.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/properties.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

TEST(Laplacian, OneDStructure) {
  const CsrMatrix a = laplacian_1d(5);
  EXPECT_EQ(a.rows(), 5);
  EXPECT_EQ(a.nnz(), 5 + 2 * 4);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_TRUE(is_weakly_diagonally_dominant(a));
  EXPECT_DOUBLE_EQ(a.at(2, 2), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), -1.0);
}

TEST(Laplacian, OneDEigenvalueFormulaBrackets) {
  // lambda_1 < ... < lambda_n, all in (0, 4).
  const index_t n = 40;
  double prev = 0.0;
  for (index_t k = 1; k <= n; ++k) {
    const double lk = laplacian_1d_eigenvalue(n, k);
    EXPECT_GT(lk, prev);
    EXPECT_LT(lk, 4.0);
    prev = lk;
  }
  EXPECT_THROW((void)laplacian_1d_eigenvalue(n, 0), Error);
  EXPECT_THROW((void)laplacian_1d_eigenvalue(n, n + 1), Error);
}

TEST(Laplacian, TwoDRowSumsVanishInside) {
  const CsrMatrix a = laplacian_2d(7, 6);
  EXPECT_EQ(a.rows(), 42);
  EXPECT_TRUE(is_symmetric(a));
  // Interior point (3, 3): full 5-point stencil sums to zero.
  const index_t interior = 3 * 7 + 3;
  double row_sum = 0.0;
  for (double v : a.row_vals(interior)) row_sum += v;
  EXPECT_DOUBLE_EQ(row_sum, 0.0);
  EXPECT_EQ(a.row_nnz(interior), 5);
}

TEST(Laplacian, TwoDAnisotropyScalesEntries) {
  const CsrMatrix a = laplacian_2d(5, 5, 10.0, 1.0);
  const index_t interior = 2 * 5 + 2;
  EXPECT_DOUBLE_EQ(a.at(interior, interior), 22.0);
  EXPECT_DOUBLE_EQ(a.at(interior, interior - 1), -10.0);  // x neighbour
  EXPECT_DOUBLE_EQ(a.at(interior, interior - 5), -1.0);   // y neighbour
}

TEST(Laplacian, ThreeDStructure) {
  const CsrMatrix a = laplacian_3d(4, 3, 2);
  EXPECT_EQ(a.rows(), 24);
  EXPECT_TRUE(is_symmetric(a));
  EXPECT_DOUBLE_EQ(a.at(0, 0), 6.0);
  const RowNnzStats s = row_nnz_stats(a);
  EXPECT_LE(s.max, 7);
  EXPECT_GE(s.min, 4);
}

TEST(RandomSdd, IsSymmetricAndStrictlyDominant) {
  RandomBandedOptions opt;
  opt.n = 300;
  opt.offdiag_per_row = 6;
  opt.bandwidth = 25;
  opt.seed = 3;
  const CsrMatrix a = random_sdd(opt);
  EXPECT_EQ(a.rows(), 300);
  EXPECT_TRUE(is_symmetric(a, 1e-14));
  EXPECT_TRUE(is_strictly_diagonally_dominant(a));
}

TEST(RandomSdd, DeterministicInSeed) {
  RandomBandedOptions opt;
  opt.n = 100;
  opt.seed = 5;
  const CsrMatrix a = random_sdd(opt);
  const CsrMatrix b = random_sdd(opt);
  EXPECT_TRUE(a.equals(b, 0.0));
  opt.seed = 6;
  EXPECT_FALSE(random_sdd(opt).equals(a, 0.0));
}

TEST(RandomSpdProduct, IsSymmetricPositiveDefinite) {
  RandomSpdOptions opt;
  opt.n = 200;
  opt.seed = 9;
  const CsrMatrix a = random_spd_product(opt);
  EXPECT_TRUE(is_symmetric(a, 1e-13));
  // Positive definiteness probe: x^T A x >= ridge ||x||^2 for random x.
  Xoshiro256 rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> x(200);
    for (double& v : x) v = normal(rng);
    std::vector<double> ax(200);
    a.multiply(x.data(), ax.data());
    EXPECT_GE(dot(x, ax), opt.ridge * dot(x, x) - 1e-9);
  }
}

TEST(RandomSpdProduct, GenerallyNotDiagonallyDominant) {
  // The whole point of this generator: SPD without the classic asynchronous
  // applicability condition.
  RandomSpdOptions opt;
  opt.n = 400;
  opt.factor_entries_per_row = 6;
  opt.seed = 21;
  const CsrMatrix a = random_spd_product(opt);
  EXPECT_FALSE(is_strictly_diagonally_dominant(a));
}

TEST(SocialGram, MatchesFactorQuadraticForm) {
  SocialGramOptions opt;
  opt.terms = 150;
  opt.documents = 800;
  opt.mean_doc_length = 5;
  opt.ridge = 0.5;
  opt.seed = 13;
  const SocialGram sys = make_social_gram(opt);
  ASSERT_EQ(sys.gram.rows(), 150);
  ASSERT_EQ(sys.factor.rows(), 800);
  ASSERT_EQ(sys.factor.cols(), 150);
  EXPECT_TRUE(is_symmetric(sys.gram, 1e-12));

  // x^T A x must equal ||F x||^2 + ridge ||x||^2 for any x.
  Xoshiro256 rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<double> x(150);
    for (double& v : x) v = normal(rng);
    std::vector<double> ax(150);
    sys.gram.multiply(x.data(), ax.data());
    const double quad = dot(x, ax);

    std::vector<double> fx(800);
    sys.factor.multiply(x.data(), fx.data());
    const double expect = dot(fx, fx) + opt.ridge * dot(x, x);
    EXPECT_NEAR(quad, expect, 1e-8 * std::max(1.0, std::abs(expect)));
  }
}

TEST(SocialGram, HasSkewedRowSizes) {
  SocialGramOptions opt;
  opt.terms = 2000;
  opt.documents = 2000;
  opt.mean_doc_length = 6;
  opt.zipf_exponent = 1.1;
  opt.seed = 31;
  const SocialGram sys = make_social_gram(opt);
  const RowNnzStats s = row_nnz_stats(sys.gram);
  // Hub terms co-occur with a large share of the vocabulary; rare terms see
  // almost nothing: the paper's max/mean skew (117182 / 1439) in miniature.
  EXPECT_GT(static_cast<double>(s.max), 4.0 * s.mean);
  EXPECT_GE(s.min, 1);  // ridge guarantees at least the diagonal
}

TEST(SocialGram, NonUnitDiagonal) {
  SocialGramOptions opt;
  opt.terms = 100;
  opt.documents = 500;
  opt.seed = 37;
  const SocialGram sys = make_social_gram(opt);
  bool any_non_unit = false;
  for (index_t i = 0; i < sys.gram.rows(); ++i)
    any_non_unit |= std::abs(sys.gram.at(i, i) - 1.0) > 0.5;
  EXPECT_TRUE(any_non_unit);
}

TEST(Rhs, FromSolutionMatchesMultiply) {
  const CsrMatrix a = laplacian_1d(20);
  const std::vector<double> x = random_vector(20, 41);
  const std::vector<double> b = rhs_from_solution(a, x);
  std::vector<double> expect(20);
  a.multiply(x.data(), expect.data());
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(b[i], expect[i]);
}

TEST(Rhs, BlockFromSolutionMatchesColumnwise) {
  const CsrMatrix a = laplacian_2d(6, 4);
  const MultiVector x = random_multivector(a.cols(), 4, 43);
  const MultiVector b = rhs_from_solution(a, x);
  for (index_t c = 0; c < 4; ++c) {
    const std::vector<double> bc = rhs_from_solution(a, x.column(c));
    for (index_t i = 0; i < a.rows(); ++i)
      EXPECT_NEAR(b.at(i, c), bc[i], 1e-12);
  }
}

TEST(Rhs, RandomVectorDeterministicPerSeed) {
  const auto a = random_vector(10, 7);
  const auto b = random_vector(10, 7);
  const auto c = random_vector(10, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace asyrgs
