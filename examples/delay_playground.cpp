// Delay playground: watch the governing iterations (8)/(9) of the paper
// under programmable delay schedules, next to the theory's bounds.
//
//   build/examples/delay_playground [--n 300] [--tau 16] [--beta 1.0]
//
// Uses the bounded-delay simulator, which enforces the analysis model a
// real parallel run cannot (consistent reads, exact tau, delays independent
// of the random directions), and prints the error trajectory for several
// schedules side by side.
#include <cmath>
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("delay_playground",
                "error decay under programmable bounded delays");
  auto n_opt = cli.add_int("n", 300, "matrix dimension");
  auto tau = cli.add_int("tau", 16, "delay bound");
  auto beta = cli.add_double("beta", 1.0, "step size");
  auto sweeps = cli.add_int("sweeps", 30, "simulated sweeps");
  cli.parse(argc, argv);

  const index_t n = *n_opt;
  RandomBandedOptions gopt;
  gopt.n = n;
  gopt.seed = 3;
  const CsrMatrix raw = random_sdd(gopt);
  const CsrMatrix a = UnitDiagonalScaling(raw).scale_matrix(raw);

  const std::vector<double> x_star = random_vector(n, 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const std::vector<double> x0(static_cast<std::size_t>(n), 0.0);
  const double e0 = std::pow(a_norm_error(a, x0, x_star), 2);

  const TheoremInputs inputs = measure_theorem_inputs(
      ThreadPool::global(), a, *tau, *beta, static_cast<int>(n));
  std::cout << "n=" << n << " kappa=" << inputs.kappa() << " tau=" << *tau
            << " beta=" << *beta << " 2*rho*tau="
            << 2.0 * inputs.rho * static_cast<double>(*tau) << "\n";
  std::cout << "Theorem 2/3 applicable: "
            << (consistent_bound_applicable(inputs) ? "yes" : "no")
            << ", Theorem 4 applicable: "
            << (inconsistent_bound_applicable(inputs) ? "yes" : "no") << "\n\n";

  const std::uint64_t total = static_cast<std::uint64_t>(*sweeps) *
                              static_cast<std::uint64_t>(n);
  SimOptions sim;
  sim.iterations = total;
  sim.step_size = *beta;
  sim.record_every = static_cast<std::uint64_t>(n);
  sim.seed = 1;

  const ZeroDelay zero;
  const FixedDelay fixed(*tau);
  const UniformDelay uniform(*tau, 99);
  const BatchDelay batch(*tau + 1);
  const BernoulliInclusion bernoulli(*tau, 0.5, 123);

  const SimResult r_zero = simulate_consistent(a, b, x0, x_star, zero, sim);
  const SimResult r_fixed = simulate_consistent(a, b, x0, x_star, fixed, sim);
  const SimResult r_unif =
      simulate_consistent(a, b, x0, x_star, uniform, sim);
  const SimResult r_batch = simulate_consistent(a, b, x0, x_star, batch, sim);
  const SimResult r_bern =
      simulate_inconsistent(a, b, x0, x_star, bernoulli, sim);

  Table table({"sweep", "sync", "fixed(tau)", "uniform(tau)", "batch(tau+1)",
               "bernoulli-inc"});
  for (std::size_t i = 0; i < r_zero.error_sq_history.size(); ++i) {
    auto rel = [&](const SimResult& r) {
      return fmt_sci(r.error_sq_history[i] / e0, 2);
    };
    table.add_row({std::to_string(i), rel(r_zero), rel(r_fixed), rel(r_unif),
                   rel(r_batch), rel(r_bern)});
  }
  table.print(std::cout);
  std::cout << "\ncolumns are E_j/E_0 = ||x_j - x*||_A^2 / ||x_0 - x*||_A^2 "
               "recorded once per sweep.\n"
            << "Delays cost accuracy gradually; randomization keeps every "
               "schedule convergent.\n";
  return 0;
}
