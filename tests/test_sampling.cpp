// Sampling subsystem tests (sampling/direction_sampler.hpp + the engine's
// sampled entry point): alias-table build determinism (golden hashes),
// probability exactness, the raw-bits strided fill, uniform-policy
// bit-identity with the pre-sampling draw path, and the load-bearing
// engine invariant — the direction multiset of a fixed (seed, policy) run
// is identical at 1, 2, and 4 workers for every sampling policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "asyrgs/core/engine.hpp"
#include "asyrgs/sampling/direction_sampler.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {
namespace {

// --- alias table -------------------------------------------------------------

TEST(AliasTable, GoldenHashesPinBuildDeterminism) {
  // The build is a deterministic index-ordered Vose pass: these hashes may
  // only change with an intentional (and documented) table-format change.
  {
    const double w[5] = {1.0, 2.0, 3.0, 4.0, 10.0};
    AliasTable t;
    t.build(w, 5);
    EXPECT_EQ(t.fnv1a(), 10634915558257708789ull);
  }
  {
    const double w[4] = {1.0, 1.0, 1.0, 1.0};
    AliasTable t;
    t.build(w, 4);
    EXPECT_EQ(t.fnv1a(), 12705966541108268743ull);
  }
}

TEST(AliasTable, DegenerateWeightsFallBackToUniform) {
  // All-zero weights cannot be normalized; the build degenerates to the
  // uniform table — byte-identical to building from constant weights.
  const double zero[3] = {0.0, 0.0, 0.0};
  const double constant[3] = {7.5, 7.5, 7.5};
  AliasTable a, b;
  a.build(zero, 3);
  b.build(constant, 3);
  EXPECT_EQ(a.fnv1a(), b.fnv1a());
  EXPECT_EQ(a.fnv1a(), 17912034463081593195ull);
  for (index_t i = 0; i < 3; ++i)
    EXPECT_NEAR(a.probability(i), 1.0 / 3.0, 1e-15);
}

TEST(AliasTable, ProbabilitiesMatchNormalizedWeights) {
  const std::vector<double> w = {0.5, 0.0, 3.25, 1.0, 0.25, 12.0, 2.0};
  double total = 0.0;
  for (double v : w) total += v;
  AliasTable t;
  t.build(w.data(), static_cast<index_t>(w.size()));
  double sum = 0.0;
  for (index_t i = 0; i < t.size(); ++i) {
    // Fixed-point quantization: each bucket threshold rounds once in 2^64,
    // so per-index probabilities are exact to ~n/2^64.
    EXPECT_NEAR(t.probability(i), w[static_cast<std::size_t>(i)] / total,
                1e-12)
        << "i=" << i;
    sum += t.probability(i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_EQ(t.probability(1), 0.0);  // zero-weight index is never drawn
}

TEST(AliasTable, NegativeAndNanWeightsClampToZero) {
  const double w[4] = {-3.0, std::nan(""), 1.0, 1.0};
  AliasTable t;
  t.build(w, 4);
  EXPECT_EQ(t.probability(0), 0.0);
  EXPECT_EQ(t.probability(1), 0.0);
  EXPECT_NEAR(t.probability(2), 0.5, 1e-12);
  EXPECT_NEAR(t.probability(3), 0.5, 1e-12);
}

TEST(AliasTable, MapHitsOnlyPositiveWeightIndicesAtRoughlyTheRightRate) {
  const std::vector<double> w = {1.0, 0.0, 3.0};
  AliasTable t;
  t.build(w.data(), 3);
  const Philox4x32 gen(123);
  std::vector<int> counts(3, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i)
    ++counts[static_cast<std::size_t>(
        t.map(gen.at(static_cast<std::uint64_t>(i))))];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.01);
}

// --- raw-bits strided fill (the sampler's batched feed) ---------------------

TEST(PhiloxFill, FillAtStridedMatchesAtForAllParities) {
  const Philox4x32 gen(0xFEEDF00Dull);
  for (std::uint64_t first : {0ull, 1ull, 5ull, 1000ull}) {
    for (std::uint64_t stride : {1ull, 2ull, 3ull, 4ull, 7ull}) {
      std::vector<std::uint64_t> got(257, 0);
      gen.fill_at_strided(first, stride, got.size(), got.data());
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_EQ(got[i], gen.at(first + i * stride))
            << "first=" << first << " stride=" << stride << " i=" << i;
    }
  }
}

// --- DirectionSampler --------------------------------------------------------

TEST(DirectionSampler, UniformPolicyReportsNoWeightedDraws) {
  const DirectionSampler s = DirectionSampler::uniform(10);
  EXPECT_EQ(s.policy(), SamplingPolicy::kUniform);
  EXPECT_EQ(s.directions(), 10);
  EXPECT_FALSE(s.weighted_draws());
}

TEST(DirectionSampler, MapInPlaceEqualsScalarMap) {
  std::vector<double> w(17);
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = static_cast<double>(i % 5) + 0.5;
  const DirectionSampler s =
      DirectionSampler::weighted(w.data(), static_cast<index_t>(w.size()));
  EXPECT_TRUE(s.weighted_draws());
  EXPECT_EQ(s.rebuilds(), 1);

  const Philox4x32 gen(99);
  std::vector<std::uint64_t> bits(301);
  gen.fill_at(7, bits.size(), bits.data());
  // The engine writes raw words through the index buffer's uint64 view and
  // maps in place; replicate that exact aliasing dance.
  std::vector<index_t> batched(bits.size());
  static_assert(sizeof(index_t) == sizeof(std::uint64_t));
  gen.fill_at(7, bits.size(),
              reinterpret_cast<std::uint64_t*>(batched.data()));
  s.map_in_place(batched.data(), batched.size());
  for (std::size_t i = 0; i < bits.size(); ++i)
    ASSERT_EQ(batched[i], s.map(bits[i])) << "i=" << i;
}

TEST(DirectionSampler, RebuildCountsAndChangesTheTable) {
  std::vector<double> w = {1.0, 1.0, 1.0, 1.0};
  DirectionSampler s = DirectionSampler::residual(w.data(), 4);
  EXPECT_EQ(s.policy(), SamplingPolicy::kResidual);
  EXPECT_EQ(s.rebuilds(), 1);
  const std::uint64_t before = s.table().fnv1a();
  w = {0.0, 0.0, 10.0, 0.0};
  s.rebuild(w.data(), 4);
  EXPECT_EQ(s.rebuilds(), 2);
  EXPECT_NE(s.table().fnv1a(), before);
  // Concentrated weights: every draw maps to index 2.
  const Philox4x32 gen(3);
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(s.map(gen.at(static_cast<std::uint64_t>(i))), 2);
}

// --- DirectionPlan with a sampler -------------------------------------------

TEST(DirectionPlan, UniformSamplerIsBitIdenticalToNoSampler) {
  AsyncRgsOptions opt;
  opt.seed = 17;
  const index_t n = 53;
  const DirectionSampler uniform = DirectionSampler::uniform(n);
  for (int team : {1, 2, 4}) {
    const detail::DirectionPlan bare(opt, n, team);
    const detail::DirectionPlan sampled(opt, n, team, &uniform);
    for (int w = 0; w < team; ++w) {
      std::vector<index_t> a(400), b(400);
      bare.fill(w, 0, a.size(), a.data());
      sampled.fill(w, 0, b.size(), b.data());
      ASSERT_EQ(a, b) << "team=" << team << " w=" << w;
      for (std::size_t i = 0; i < 64; ++i)
        ASSERT_EQ(bare.pick(w, i), sampled.pick(w, i));
    }
  }
}

TEST(DirectionPlan, WeightedFillMatchesPickAndMapsTheSharedStream) {
  AsyncRgsOptions opt;
  opt.seed = 29;
  const index_t n = 41;
  std::vector<double> w(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    w[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(i % 7);
  const DirectionSampler sampler = DirectionSampler::weighted(w.data(), n);
  const Philox4x32 raw(opt.seed);
  for (int team : {1, 2, 4}) {
    const detail::DirectionPlan plan(opt, n, team, &sampler);
    for (int wk = 0; wk < team; ++wk) {
      std::vector<index_t> got(300);
      plan.fill(wk, 2, got.size(), got.data());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], plan.pick(wk, 2 + i)) << "team=" << team;
        // Worker wk consumes global positions wk + j * team; every word is
        // mapped through the alias table.
        const std::uint64_t pos =
            static_cast<std::uint64_t>(wk) + (2 + i) * team;
        ASSERT_EQ(got[i], sampler.map(raw.at(pos))) << "team=" << team;
      }
    }
  }
}

// --- engine: multiset invariance across worker counts, per policy -----------

/// Instrumented update functor: records every direction each worker runs.
struct RecordingUpdate {
  std::vector<std::vector<index_t>>* per_worker;
  void operator()(int id, index_t r, index_t) const {
    (*per_worker)[static_cast<std::size_t>(id)].push_back(r);
  }
};

std::vector<index_t> engine_multiset(ThreadPool& pool,
                                     const AsyncRgsOptions& base, index_t n,
                                     int workers,
                                     const detail::EngineSampling& sampling) {
  AsyncRgsOptions opt = base;
  opt.workers = workers;
  std::vector<std::vector<index_t>> per_worker(
      static_cast<std::size_t>(workers));
  AsyncRgsReport report;
  auto residual = [](int, int) { return 0.0; };
  detail::run_engine_sampled(pool, opt, n, workers, sampling,
                             RecordingUpdate{&per_worker}, residual, report);
  std::vector<index_t> all;
  for (const auto& v : per_worker) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  return all;
}

TEST(SampledEngine, MultisetInvariantAcrossWorkerCountsPerPolicy) {
  ThreadPool pool(4);
  const index_t n = 61;
  AsyncRgsOptions base;
  base.seed = 57;
  base.sweeps = 30;
  base.sync = SyncMode::kBarrierPerSweep;

  std::vector<double> w(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i)
    w[static_cast<std::size_t>(i)] = 0.25 + static_cast<double>((i * 13) % 9);
  const DirectionSampler uniform = DirectionSampler::uniform(n);
  const DirectionSampler weighted = DirectionSampler::weighted(w.data(), n);

  for (const DirectionSampler* s : {static_cast<const DirectionSampler*>(
                                        nullptr),
                                    &uniform, &weighted}) {
    detail::EngineSampling sampling;
    sampling.sampler = s;
    const std::vector<index_t> expected =
        engine_multiset(pool, base, n, 1, sampling);
    for (int workers : {2, 4}) {
      EXPECT_EQ(engine_multiset(pool, base, n, workers, sampling), expected)
          << "policy="
          << (s ? to_string(s->policy()) : "null") << " workers=" << workers;
    }
  }
}

TEST(SampledEngine, ResidualRefreshIsDeterministicAndWorkerCountInvariant) {
  // A refresh whose inputs do not depend on the iterate (here: weights
  // keyed by the rendezvous counter) must keep the multiset invariant
  // across worker counts — refreshes happen at the same global stream
  // boundaries (sweep ends) for every team size.
  ThreadPool pool(4);
  const index_t n = 37;
  AsyncRgsOptions base;
  base.seed = 91;
  base.sweeps = 24;
  base.sync = SyncMode::kBarrierPerSweep;

  const auto make = [n](DirectionSampler& sampler,
                        detail::EngineSampling& sampling, int period) {
    sampling.sampler = &sampler;
    sampling.refresh = [&sampler, n, period, calls = 0]() mutable {
      if (++calls % period != 0) return;
      std::vector<double> w(static_cast<std::size_t>(n));
      for (index_t i = 0; i < n; ++i)
        w[static_cast<std::size_t>(i)] =
            1.0 + static_cast<double>((i + calls) % 5);
      sampler.rebuild(w.data(), n);
    };
  };

  std::vector<double> w0(static_cast<std::size_t>(n), 1.0);
  DirectionSampler s1 = DirectionSampler::residual(w0.data(), n);
  detail::EngineSampling sampling1;
  make(s1, sampling1, 4);
  const std::vector<index_t> expected =
      engine_multiset(pool, base, n, 1, sampling1);
  EXPECT_GT(s1.rebuilds(), 1);  // the refresh hook actually fired

  for (int workers : {2, 4}) {
    DirectionSampler s = DirectionSampler::residual(w0.data(), n);
    detail::EngineSampling sampling;
    make(s, sampling, 4);
    EXPECT_EQ(engine_multiset(pool, base, n, workers, sampling), expected)
        << "workers=" << workers;
  }

  // And the whole construction is reproducible: a fresh identical run
  // yields the identical multiset.
  DirectionSampler s2 = DirectionSampler::residual(w0.data(), n);
  detail::EngineSampling sampling2;
  make(s2, sampling2, 4);
  EXPECT_EQ(engine_multiset(pool, base, n, 1, sampling2), expected);
}

TEST(SampledEngine, WeightedDrawsFollowTheTable) {
  // Concentrate all weight on one direction: every engine draw lands there.
  ThreadPool pool(2);
  const index_t n = 19;
  std::vector<double> w(static_cast<std::size_t>(n), 0.0);
  w[7] = 1.0;
  const DirectionSampler sampler = DirectionSampler::weighted(w.data(), n);
  detail::EngineSampling sampling;
  sampling.sampler = &sampler;
  AsyncRgsOptions opt;
  opt.seed = 3;
  opt.sweeps = 5;
  opt.sync = SyncMode::kBarrierPerSweep;
  const std::vector<index_t> all =
      engine_multiset(pool, opt, n, 2, sampling);
  EXPECT_EQ(all.size(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(5));
  for (index_t r : all) ASSERT_EQ(r, 7);
}

TEST(SampledEngine, RejectsRefreshUnderFreeRunning) {
  // Residual refresh needs the rendezvous barriers' happens-before edge;
  // the engine refuses the combination outright.
  ThreadPool pool(2);
  const index_t n = 11;
  std::vector<double> w(static_cast<std::size_t>(n), 1.0);
  DirectionSampler sampler = DirectionSampler::residual(w.data(), n);
  detail::EngineSampling sampling;
  sampling.sampler = &sampler;
  sampling.refresh = [] {};
  AsyncRgsOptions opt;
  opt.seed = 1;
  opt.sweeps = 2;
  opt.sync = SyncMode::kFreeRunning;
  std::vector<std::vector<index_t>> per_worker(1);
  AsyncRgsReport report;
  auto residual = [](int, int) { return 0.0; };
  EXPECT_THROW(detail::run_engine_sampled(pool, opt, n, 1, sampling,
                                          RecordingUpdate{&per_worker},
                                          residual, report),
               Error);
}

TEST(SampledEngine, RejectsSamplerSizeMismatch) {
  ThreadPool pool(2);
  std::vector<double> w(8, 1.0);
  const DirectionSampler sampler = DirectionSampler::weighted(w.data(), 8);
  detail::EngineSampling sampling;
  sampling.sampler = &sampler;
  AsyncRgsOptions opt;
  opt.seed = 1;
  opt.sweeps = 2;
  opt.sync = SyncMode::kBarrierPerSweep;
  std::vector<std::vector<index_t>> per_worker(1);
  AsyncRgsReport report;
  auto residual = [](int, int) { return 0.0; };
  EXPECT_THROW(detail::run_engine_sampled(pool, opt, /*n=*/9, 1, sampling,
                                          RecordingUpdate{&per_worker},
                                          residual, report),
               Error);
}

}  // namespace
}  // namespace asyrgs
