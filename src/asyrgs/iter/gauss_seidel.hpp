// Deterministic (cyclic) Gauss-Seidel and SOR.
//
// The classic sequential iteration the randomized variant (core/rgs.hpp)
// descends from: sweeping coordinates in order 1..n corresponds to the
// deterministic direction choice d_i = e^((i mod n)+1) in the paper's
// Section 3.  Inherently sequential; provided as a correctness baseline and
// for the ablation comparing cyclic vs randomized coordinate orders.
#pragma once

#include "asyrgs/iter/solver_base.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// One in-place forward Gauss-Seidel/SOR sweep over all rows:
/// x_i <- x_i + omega * (b_i - A_i x) / A_ii for i = 0..n-1.
void sor_sweep(const CsrMatrix& a, const std::vector<double>& b,
               std::vector<double>& x, double omega = 1.0);

/// Runs Gauss-Seidel (omega = 1) or SOR sweeps until the relative residual
/// target is met.  One "iteration" = one full sweep.
SolveReport gauss_seidel_solve(const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const SolveOptions& options = {},
                               double omega = 1.0);

}  // namespace asyrgs
