// High-level one-call interface for solving SPD systems.
//
// Wraps the method-selection guidance of the paper into a single entry
// point:
//  * low accuracy (the big-data regime of Section 9): plain AsyRGS with
//    occasional synchronization — basic iterations converge quickly at
//    first and scale best;
//  * high accuracy: AsyRGS as a preconditioner inside flexible CG, "most
//    suitable when only moderate accuracy is sought ... or when we use the
//    algorithm as a preconditioner in a flexible Krylov method";
//  * non-unit diagonals are handled transparently (Section 3 rescaling is
//    built into the coordinate update).
//
// solve_spd is a thin wrapper over a temporary prepared handle; when the
// same matrix is solved repeatedly (many right-hand sides against one
// operator), construct an asyrgs::SpdProblem (asyrgs/problem.hpp) once
// instead and call its solve() per request — the analysis, validation, and
// scratch setup this function re-pays per call are then amortized.
#pragma once

#include <string>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

// SpdMethod lives in asyrgs/problem.hpp (shared with the prepared-handle
// API) and is re-exported here for existing includes of this header.

/// Options for solve_spd.
struct SpdSolveOptions {
  SpdMethod method = SpdMethod::kAuto;
  double rel_tol = 1e-8;    ///< target on ||b - Ax|| / ||b||
  int max_iterations = 0;   ///< sweeps (AsyRGS) / outer iterations; 0 = auto
  int threads = 0;          ///< 0 = all cores
  int inner_sweeps = 2;     ///< preconditioner sweeps for kFcgAsyRgs
  std::uint64_t seed = 1;
  /// Verify symmetry and positive diagonal before solving; recommended for
  /// user-supplied matrices.  The symmetry check builds A^T through the
  /// matrix's shared transpose cache, so repeated solves against one matrix
  /// validate cheaply — at the cost of ~nnz extra memory retained for the
  /// matrix's lifetime.  Set false for trusted/generated matrices (or when
  /// that footprint matters).
  bool check_input = true;
  /// Row-scan FP association for the asynchronous inner iterations (both the
  /// kAsyncRgs solver and the AsyRGS preconditioner inside kFcgAsyRgs).
  /// ScanMode::kPinned (default) keeps equal-seed runs bit-identical across
  /// worker counts; ScanMode::kReassociated opts into the faster
  /// multi-accumulator/SIMD row scan at the cost of that reproducibility.
  /// See core/async_rgs.hpp and docs/TUNING.md.
  ScanMode scan = ScanMode::kPinned;
};

/// Outcome of solve_spd.
struct SpdSolveSummary {
  SpdMethod method_used = SpdMethod::kAuto;
  bool converged = false;
  int iterations = 0;  ///< sweeps or outer iterations, per method
  double relative_residual = 0.0;
  double seconds = 0.0;
  std::string description;  ///< human-readable method summary
  /// Structured outcome (SolveStatus enum and friends) from the underlying
  /// prepared-handle solve; `status` disambiguates "budget ran out" from
  /// "tolerance missed" beyond the legacy `converged` bool.
  SolveStatus status = SolveStatus::kBudgetCompleted;
};

/// Solves SPD A x = b starting from `x` (in place).  With kAuto the method
/// is AsyRGS when rel_tol >= 1e-4 (the low-accuracy regime where basic
/// iterations shine) and FCG+AsyRGS otherwise.
SpdSolveSummary solve_spd(ThreadPool& pool, const CsrMatrix& a,
                          const std::vector<double>& b, std::vector<double>& x,
                          const SpdSolveOptions& options = {});

}  // namespace asyrgs
