#include "asyrgs/support/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace asyrgs {

std::vector<std::int64_t> parse_int_list(const std::string& text) {
  std::vector<std::int64_t> out;
  std::stringstream ss(text);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) throw Error("empty element in integer list: " + text);
    long long v = 0;
    try {
      std::size_t pos = 0;
      v = std::stoll(item, &pos);
      if (pos != item.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw Error("malformed integer '" + item + "' in list: " + text);
    }
    out.push_back(v);
  }
  if (out.empty()) throw Error("empty integer list");
  return out;
}

namespace {
std::string join_ints(const std::vector<std::int64_t>& v) {
  std::string s;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i) s += ',';
    s += std::to_string(v[i]);
  }
  return s;
}
}  // namespace

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::register_entry(const std::string& name, Kind kind,
                               const std::string& help,
                               const std::string& default_text, void* slot) {
  require(!entries_.count(name), "duplicate CLI option");
  entries_[name] = Entry{kind, help, default_text, slot};
  order_.push_back(name);
}

CliParser::Option<std::int64_t> CliParser::add_int(const std::string& name,
                                                   std::int64_t def,
                                                   const std::string& help) {
  ints_.push_back(def);
  register_entry(name, Kind::kInt, help, std::to_string(def), &ints_.back());
  return Option<std::int64_t>(&ints_.back());
}

CliParser::Option<double> CliParser::add_double(const std::string& name,
                                                double def,
                                                const std::string& help) {
  doubles_.push_back(def);
  std::ostringstream os;
  os << def;
  register_entry(name, Kind::kDouble, help, os.str(), &doubles_.back());
  return Option<double>(&doubles_.back());
}

CliParser::Option<std::string> CliParser::add_string(const std::string& name,
                                                     std::string def,
                                                     const std::string& help) {
  strings_.push_back(std::move(def));
  register_entry(name, Kind::kString, help, strings_.back(), &strings_.back());
  return Option<std::string>(&strings_.back());
}

CliParser::Option<bool> CliParser::add_flag(const std::string& name,
                                            const std::string& help) {
  flags_.push_back(false);
  register_entry(name, Kind::kFlag, help, "false", &flags_.back());
  return Option<bool>(&flags_.back());
}

CliParser::Option<std::vector<std::int64_t>> CliParser::add_int_list(
    const std::string& name, std::vector<std::int64_t> def,
    const std::string& help) {
  int_lists_.push_back(std::move(def));
  register_entry(name, Kind::kIntList, help, join_ints(int_lists_.back()),
                 &int_lists_.back());
  return Option<std::vector<std::int64_t>>(&int_lists_.back());
}

void CliParser::set_value(const std::string& name, const std::string& text) {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw Error("unknown option --" + name);
  Entry& e = it->second;
  try {
    switch (e.kind) {
      case Kind::kInt: {
        std::size_t pos = 0;
        *static_cast<std::int64_t*>(e.slot) = std::stoll(text, &pos);
        if (pos != text.size()) throw Error("trailing characters");
        break;
      }
      case Kind::kDouble: {
        std::size_t pos = 0;
        *static_cast<double*>(e.slot) = std::stod(text, &pos);
        if (pos != text.size()) throw Error("trailing characters");
        break;
      }
      case Kind::kString:
        *static_cast<std::string*>(e.slot) = text;
        break;
      case Kind::kFlag:
        *static_cast<bool*>(e.slot) =
            (text == "1" || text == "true" || text == "yes");
        break;
      case Kind::kIntList:
        *static_cast<std::vector<std::int64_t>*>(e.slot) =
            parse_int_list(text);
        break;
    }
  } catch (const std::exception&) {
    throw Error("bad value '" + text + "' for option --" + name);
  }
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_help(std::cout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0)
      throw Error("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      set_value(arg.substr(0, eq), arg.substr(eq + 1));
      continue;
    }
    auto it = entries_.find(arg);
    if (it == entries_.end()) throw Error("unknown option --" + arg);
    if (it->second.kind == Kind::kFlag) {
      *static_cast<bool*>(it->second.slot) = true;
      continue;
    }
    if (i + 1 >= argc) throw Error("missing value for option --" + arg);
    set_value(arg, argv[++i]);
  }
}

void CliParser::print_help(std::ostream& out) const {
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Entry& e = entries_.at(name);
    out << "  --" << name;
    if (e.kind != Kind::kFlag) out << " <value>";
    out << "\n      " << e.help << " (default: " << e.default_text << ")\n";
  }
  out << "  --help\n      print this message\n";
}

}  // namespace asyrgs
