#include "asyrgs/sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <mutex>

#if defined(__x86_64__) && defined(__GNUC__)
#define ASYRGS_SCAN_SIMD 1
#include <immintrin.h>
#endif

namespace asyrgs {

/// One-shot cache slot for the transpose.  Heap-allocated and shared between
/// copies of the matrix (copies have identical values, so sharing is sound).
/// The per-slot mutex guards `value` so concurrent first builds construct
/// exactly one transpose and concurrent readers never race the writer.
struct CsrMatrix::TransposeCache {
  std::mutex mutex;
  std::shared_ptr<const CsrMatrix> value;
};

namespace {

// --- reassociated row-scan kernels -------------------------------------------
//
// Same dispatch discipline as the bulk Philox kernels (support/prng.cpp):
// one widest-available implementation chosen once per process via cached
// __builtin_cpu_supports, with target attributes so a generic build still
// carries the AVX paths.  All variants compute the identical mathematical
// sum; only the rounding order differs (per-variant accumulator count and
// lane width), which is exactly the license ScanMode::kReassociated grants.

#if defined(ASYRGS_SCAN_SIMD)

/// AVX2 gather + FMA, two 4-lane accumulators (8 products in flight).
__attribute__((target("avx2,fma"))) double row_dot_avx2(
    const index_t* __restrict cols, const double* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  __m256d s0 = _mm256_setzero_pd();
  __m256d s1 = _mm256_setzero_pd();
  nnz_t t = 0;
  for (; t + 8 <= len; t += 8) {
    const __m256i i0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t));
    const __m256i i1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols + t + 4));
    s0 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t),
                         _mm256_i64gather_pd(x, i0, 8), s0);
    s1 = _mm256_fmadd_pd(_mm256_loadu_pd(vals + t + 4),
                         _mm256_i64gather_pd(x, i1, 8), s1);
  }
  const __m256d s = _mm256_add_pd(s0, s1);
  const __m128d lo = _mm256_castpd256_pd128(s);
  const __m128d hi = _mm256_extractf128_pd(s, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double acc = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; t < len; ++t) acc += vals[t] * x[cols[t]];
  return acc;
}

// GCC 12's avx512fintrin.h trips -W(maybe-)uninitialized on the unmasked
// intrinsics' _mm512_undefined_epi32 pass-through operand — the same header
// false positive support/prng.cpp suppresses around its AVX-512 kernel.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#pragma GCC diagnostic ignored "-Wuninitialized"
/// AVX-512 gather + FMA, two 8-lane accumulators (16 products in flight).
__attribute__((target("avx512f"))) double row_dot_avx512(
    const index_t* __restrict cols, const double* __restrict vals, nnz_t len,
    const double* __restrict x) noexcept {
  __m512d s0 = _mm512_setzero_pd();
  __m512d s1 = _mm512_setzero_pd();
  nnz_t t = 0;
  for (; t + 16 <= len; t += 16) {
    const __m512i i0 = _mm512_loadu_si512(cols + t);
    const __m512i i1 = _mm512_loadu_si512(cols + t + 8);
    s0 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                         _mm512_i64gather_pd(i0, x, 8), s0);
    s1 = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t + 8),
                         _mm512_i64gather_pd(i1, x, 8), s1);
  }
  // Mid (one full 8-wide gather) and masked tail both fold into the same
  // vector accumulator — a single horizontal reduction per row, and medium
  // rows (17-31 nnz, common in Gram matrices) never leave the vector path.
  __m512d s = _mm512_add_pd(s0, s1);
  if (t + 8 <= len) {
    const __m512i idx = _mm512_loadu_si512(cols + t);
    s = _mm512_fmadd_pd(_mm512_loadu_pd(vals + t),
                        _mm512_i64gather_pd(idx, x, 8), s);
    t += 8;
  }
  if (t < len) {
    const __mmask8 m = static_cast<__mmask8>((1u << (len - t)) - 1u);
    const __m512i idx = _mm512_maskz_loadu_epi64(m, cols + t);
    const __m512d v = _mm512_maskz_loadu_pd(m, vals + t);
    const __m512d g = _mm512_mask_i64gather_pd(_mm512_setzero_pd(), m, idx,
                                               x, 8);
    s = _mm512_fmadd_pd(v, g, s);
  }
  return _mm512_reduce_add_pd(s);
}
#pragma GCC diagnostic pop

#endif  // ASYRGS_SCAN_SIMD

using RowDotFn = double (*)(const index_t* __restrict, const double* __restrict,
                            nnz_t, const double* __restrict) noexcept;

/// Widest available long-row kernel, resolved once at load time into a
/// namespace-scope pointer — the per-row call is one predicted indirect
/// branch, with no function-local-static guard on the hot path.
RowDotFn pick_row_dot_reassoc() noexcept {
#if defined(ASYRGS_SCAN_SIMD)
  if (__builtin_cpu_supports("avx512f")) return row_dot_avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return row_dot_avx2;
#endif
  return csr_row_dot_multiacc;  // shared definition in csr.hpp
}

const RowDotFn g_row_dot_reassoc_long = pick_row_dot_reassoc();

}  // namespace

double csr_row_dot_reassoc_long(const index_t* cols, const double* vals,
                                nnz_t len, const double* x) noexcept {
  return g_row_dot_reassoc_long(cols, vals, len, x);
}

CsrMatrix::CsrMatrix(index_t rows, index_t cols, std::vector<nnz_t> row_ptr,
                     std::vector<index_t> col_idx, std::vector<double> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)),
      transpose_cache_(std::make_shared<TransposeCache>()) {
  require(rows_ > 0 && cols_ > 0, "CsrMatrix: dimensions must be positive");
  require(row_ptr_.size() == static_cast<std::size_t>(rows_) + 1,
          "CsrMatrix: row_ptr must have rows+1 entries");
  require(row_ptr_.front() == 0, "CsrMatrix: row_ptr must start at 0");
  require(col_idx_.size() == values_.size(),
          "CsrMatrix: col_idx/values size mismatch");
  require(row_ptr_.back() == static_cast<nnz_t>(col_idx_.size()),
          "CsrMatrix: row_ptr end does not match nnz");
  for (index_t i = 0; i < rows_; ++i) {
    require(row_ptr_[i] <= row_ptr_[i + 1],
            "CsrMatrix: row_ptr must be non-decreasing");
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
      require(col_idx_[t] >= 0 && col_idx_[t] < cols_,
              "CsrMatrix: column index out of range");
      if (t > row_ptr_[i])
        require(col_idx_[t - 1] < col_idx_[t],
                "CsrMatrix: columns must be strictly increasing in each row");
    }
  }
}

double CsrMatrix::at(index_t i, index_t j) const {
  require(i >= 0 && i < rows_ && j >= 0 && j < cols_,
          "CsrMatrix::at: index out of range");
  const auto cols = row_cols(i);
  const auto it = std::lower_bound(cols.begin(), cols.end(), j);
  if (it == cols.end() || *it != j) return 0.0;
  return values_[row_ptr_[i] + (it - cols.begin())];
}

double CsrMatrix::row_dot(index_t i, const double* x) const noexcept {
  const nnz_t lo = row_ptr_[i];
  return csr_row_dot(col_idx_.data() + lo, values_.data() + lo,
                     row_ptr_[i + 1] - lo, x);
}

void CsrMatrix::multiply(const double* x, double* y) const {
  for (index_t i = 0; i < rows_; ++i) y[i] = row_dot(i, x);
}

void CsrMatrix::multiply_transpose(const double* x, double* y) const {
  std::fill(y, y + cols_, 0.0);
  for (index_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t)
      y[col_idx_[t]] += values_[t] * xi;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  require(square(), "CsrMatrix::diagonal: matrix must be square");
  std::vector<double> d(static_cast<std::size_t>(rows_), 0.0);
  for (index_t i = 0; i < rows_; ++i) d[i] = at(i, i);
  return d;
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<nnz_t> t_row_ptr(static_cast<std::size_t>(cols_) + 1, 0);
  for (index_t c : col_idx_) t_row_ptr[c + 1]++;
  for (index_t j = 0; j < cols_; ++j) t_row_ptr[j + 1] += t_row_ptr[j];

  std::vector<index_t> t_col(col_idx_.size());
  std::vector<double> t_val(values_.size());
  std::vector<nnz_t> cursor(t_row_ptr.begin(), t_row_ptr.end() - 1);
  // Walking rows in order writes each transposed row's entries in increasing
  // original-row order, so column indices stay sorted.
  for (index_t i = 0; i < rows_; ++i) {
    for (nnz_t t = row_ptr_[i]; t < row_ptr_[i + 1]; ++t) {
      const nnz_t slot = cursor[col_idx_[t]]++;
      t_col[slot] = i;
      t_val[slot] = values_[t];
    }
  }
  return CsrMatrix(cols_, rows_, std::move(t_row_ptr), std::move(t_col),
                   std::move(t_val));
}

CsrMatrix::CsrMatrix() : transpose_cache_(std::make_shared<TransposeCache>()) {}

namespace {
/// Re-installation guard for matrices whose slot was stolen by a move;
/// every constructor installs the slot eagerly, so this path is cold and
/// exists only to keep moved-from objects safe to query single-threadedly.
std::mutex g_transpose_slot_mutex;
}  // namespace

std::shared_ptr<const CsrMatrix> CsrMatrix::transpose_shared(
    bool* built_now) const {
  if (!transpose_cache_) {  // moved-from only; see constructor
    const std::scoped_lock lock(g_transpose_slot_mutex);
    if (!transpose_cache_) transpose_cache_ = std::make_shared<TransposeCache>();
  }
  TransposeCache& cache = *transpose_cache_;
  const std::scoped_lock lock(cache.mutex);
  const bool building = cache.value == nullptr;
  if (building) cache.value = std::make_shared<const CsrMatrix>(transpose());
  if (built_now != nullptr) *built_now = building;
  return cache.value;
}

bool CsrMatrix::transpose_cached() const {
  const std::shared_ptr<TransposeCache> slot = transpose_cache_;
  if (!slot) return false;
  const std::scoped_lock lock(slot->mutex);
  return slot->value != nullptr;
}

ColumnCompression drop_empty_columns(const CsrMatrix& a) {
  std::vector<char> used(static_cast<std::size_t>(a.cols()), 0);
  for (index_t c : a.col_idx()) used[static_cast<std::size_t>(c)] = 1;

  ColumnCompression out;
  std::vector<index_t> new_index(static_cast<std::size_t>(a.cols()), -1);
  for (index_t c = 0; c < a.cols(); ++c) {
    if (used[static_cast<std::size_t>(c)]) {
      new_index[static_cast<std::size_t>(c)] =
          static_cast<index_t>(out.kept_columns.size());
      out.kept_columns.push_back(c);
    }
  }
  require(!out.kept_columns.empty(), "drop_empty_columns: matrix is all zero");

  std::vector<index_t> col_idx(a.col_idx());
  for (index_t& c : col_idx) c = new_index[static_cast<std::size_t>(c)];
  out.matrix =
      CsrMatrix(a.rows(), static_cast<index_t>(out.kept_columns.size()),
                a.row_ptr(), std::move(col_idx), a.values());
  return out;
}

bool CsrMatrix::equals(const CsrMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (row_ptr_ != other.row_ptr_ || col_idx_ != other.col_idx_) return false;
  for (std::size_t t = 0; t < values_.size(); ++t)
    if (std::abs(values_[t] - other.values_[t]) > tol) return false;
  return true;
}

}  // namespace asyrgs
