// Preconditioner interface and implementations.
//
// The paper's headline practical use of AsyRGS is as a preconditioner inside
// a flexible Krylov method (Section 9, Table 1, Figure 3): the
// preconditioner application z = M(r) runs a fixed number of asynchronous
// randomized Gauss-Seidel sweeps on A z = r from z = 0.  Because the sweeps
// are randomized and asynchronous, M changes from call to call — hence the
// *flexible* CG outer method (Notay [16]).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asyrgs/core/async_rgs.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

class SpdProblem;  // asyrgs/problem.hpp (prepared-solver handle)

/// Approximate application of A^{-1}: z ~= A^{-1} r.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;

  /// Computes z from r; z is overwritten (sized by the caller).
  virtual void apply(const std::vector<double>& r, std::vector<double>& z) = 0;

  /// Human-readable identifier for logs/benchmarks.
  [[nodiscard]] virtual std::string name() const = 0;

  /// True when successive applications with the same input may differ
  /// (requires a flexible outer method).
  [[nodiscard]] virtual bool is_variable() const { return false; }
};

/// z = r (no preconditioning); turns FCG into plain CG.
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const std::vector<double>& r, std::vector<double>& z) override;
  [[nodiscard]] std::string name() const override { return "identity"; }
};

/// z = D^{-1} r with D = diag(A).
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const std::vector<double>& r, std::vector<double>& z) override;
  [[nodiscard]] std::string name() const override { return "jacobi"; }

 private:
  std::vector<double> inv_diag_;
};

/// `sweeps` sequential randomized Gauss-Seidel sweeps on A z = r from z = 0.
/// Deterministic given the seed sequence, but still *variable* across
/// applications because each application consumes fresh random directions.
class RgsPreconditioner final : public Preconditioner {
 public:
  RgsPreconditioner(const CsrMatrix& a, int sweeps, double step_size = 1.0,
                    std::uint64_t seed = 99);
  void apply(const std::vector<double>& r, std::vector<double>& z) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_variable() const override { return true; }

 private:
  const CsrMatrix& a_;
  int sweeps_;
  double step_size_;
  std::uint64_t seed_;
  std::uint64_t applications_ = 0;
};

/// `sweeps` asynchronous randomized Gauss-Seidel sweeps on A z = r from
/// z = 0, on `workers` threads (the paper's Table 1 / Figure 3
/// preconditioner).  `scan` selects the row-scan FP association of the inner
/// sweeps (see ScanMode); the preconditioner is already variable across
/// applications, so ScanMode::kReassociated costs nothing extra in
/// reproducibility here — the flexible outer method absorbs the variation.
///
/// Every application runs through one prepared SpdProblem handle — owned by
/// the preconditioner (first constructor) or borrowed from the caller
/// (second constructor) — so the matrix analysis and per-worker scratch are
/// paid once, not once per outer iteration.
///
/// Thread-safety: apply() runs a team on the shared pool; concurrent apply()
/// calls on one instance are not supported (the application counter that
/// reseeds each call is unsynchronized by design).
class AsyRgsPreconditioner final : public Preconditioner {
 public:
  AsyRgsPreconditioner(ThreadPool& pool, const CsrMatrix& a, int sweeps,
                       int workers, double step_size = 1.0,
                       std::uint64_t seed = 99, bool atomic_writes = true,
                       ScanMode scan = ScanMode::kPinned);
  /// Borrows an existing prepared handle (not owned; must outlive this
  /// preconditioner).  Used by SpdProblem's own FCG path so the outer solve
  /// and the inner sweeps share one set of cached reciprocals and scratch.
  AsyRgsPreconditioner(SpdProblem& problem, int sweeps, int workers,
                       double step_size = 1.0, std::uint64_t seed = 99,
                       bool atomic_writes = true,
                       ScanMode scan = ScanMode::kPinned);
  ~AsyRgsPreconditioner() override;  // out-of-line: SpdProblem is incomplete

  void apply(const std::vector<double>& r, std::vector<double>& z) override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool is_variable() const override { return true; }

  [[nodiscard]] int sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] int workers() const noexcept { return workers_; }

 private:
  std::unique_ptr<SpdProblem> owned_;  // first constructor only
  SpdProblem* problem_;                // always valid
  int sweeps_;
  int workers_;
  double step_size_;
  std::uint64_t seed_;
  bool atomic_writes_;
  ScanMode scan_;
  std::uint64_t applications_ = 0;
};

}  // namespace asyrgs
