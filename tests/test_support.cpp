// Support-layer tests: atomics, stats, table, CLI parsing, timer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/cli.hpp"
#include "asyrgs/support/stats.hpp"
#include "asyrgs/support/table.hpp"
#include "asyrgs/support/thread_pool.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {
namespace {

// --- atomics -----------------------------------------------------------------

TEST(Atomics, AtomicAddIsExactUnderContention) {
  double slot = 0.0;
  ThreadPool pool(8);
  const int per_worker = 20000;
  pool.run_team(8, [&](int, int) {
    for (int i = 0; i < per_worker; ++i) atomic_add_relaxed(slot, 1.0);
  });
  EXPECT_DOUBLE_EQ(slot, 8.0 * per_worker);
}

TEST(Atomics, AtomicAddReturnsPreviousValue) {
  double slot = 5.0;
  EXPECT_DOUBLE_EQ(atomic_add_relaxed(slot, 2.5), 5.0);
  EXPECT_DOUBLE_EQ(slot, 7.5);
}

TEST(Atomics, LoadStoreRoundTrip) {
  double slot = 0.0;
  atomic_store_relaxed(slot, 3.25);
  EXPECT_DOUBLE_EQ(atomic_load_relaxed(slot), 3.25);
}

TEST(Atomics, RacyAddWorksSingleThreaded) {
  double slot = 1.0;
  racy_add(slot, 2.0);
  EXPECT_DOUBLE_EQ(slot, 3.0);
}

TEST(Atomics, RacyAddMayLoseUpdatesButStaysBounded) {
  // The racy variant may lose updates, but the final value can never exceed
  // the exact sum nor go negative when all deltas are positive.
  double slot = 0.0;
  ThreadPool pool(8);
  const int per_worker = 20000;
  pool.run_team(8, [&](int, int) {
    for (int i = 0; i < per_worker; ++i) racy_add(slot, 1.0);
  });
  EXPECT_GT(slot, 0.0);
  EXPECT_LE(slot, 8.0 * per_worker);
}

// --- stats --------------------------------------------------------------------

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, MeanAndGeometricMean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW((void)geometric_mean({1.0, -1.0}), Error);
}

TEST(Stats, SummarizeMatchesHandComputation) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.median, 4.5);
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, EmptySampleThrows) {
  EXPECT_THROW((void)median({}), Error);
  EXPECT_THROW((void)mean({}), Error);
  EXPECT_THROW((void)summarize({}), Error);
}

TEST(Stats, LinearFitSlopeRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(i);
    y.push_back(3.0 - 0.25 * i);
  }
  EXPECT_NEAR(linear_fit_slope(x, y), -0.25, 1e-12);
  EXPECT_THROW((void)linear_fit_slope({1.0}, {2.0}), Error);
  EXPECT_THROW((void)linear_fit_slope({1.0, 1.0}, {2.0, 3.0}), Error);
}

// --- table --------------------------------------------------------------------

TEST(Table, AlignsColumnsAndCountsRows) {
  Table t({"threads", "time"});
  t.add_row({"1", "12.5"});
  t.add_row({"16", "0.9"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("threads"), std::string::npos);
  EXPECT_NE(s.find("12.5"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_sci(0.000123, 2), "1.23e-04");
  EXPECT_EQ(fmt_auto(0.0), "0");
  // auto picks fixed in the mid range and scientific in the tails
  EXPECT_EQ(fmt_auto(12.5, 1), "12.5");
  EXPECT_NE(fmt_auto(1.0e-9).find('e'), std::string::npos);
}

// --- cli ----------------------------------------------------------------------

TEST(Cli, ParsesAllKindsAndDefaults) {
  CliParser cli("prog", "test");
  auto n = cli.add_int("n", 42, "dim");
  auto x = cli.add_double("x", 1.5, "factor");
  auto s = cli.add_string("s", "abc", "label");
  auto f = cli.add_flag("fast", "go fast");
  auto l = cli.add_int_list("threads", {1, 2}, "sweep");

  const char* argv[] = {"prog", "--n", "7", "--x=2.5", "--fast",
                        "--threads", "1,2,4"};
  cli.parse(7, argv);
  EXPECT_EQ(n.value(), 7);
  EXPECT_DOUBLE_EQ(x.value(), 2.5);
  EXPECT_EQ(s.value(), "abc");  // default untouched
  EXPECT_TRUE(f.value());
  EXPECT_EQ(l.value(), (std::vector<std::int64_t>{1, 2, 4}));
}

TEST(Cli, RejectsUnknownOptionAndBadValue) {
  {
    CliParser cli("prog", "test");
    const char* argv[] = {"prog", "--nope", "3"};
    EXPECT_THROW(cli.parse(3, argv), Error);
  }
  {
    CliParser cli("prog", "test");
    (void)cli.add_int("n", 1, "dim");
    const char* argv[] = {"prog", "--n", "abc"};
    EXPECT_THROW(cli.parse(3, argv), Error);
  }
  {
    CliParser cli("prog", "test");
    (void)cli.add_int("n", 1, "dim");
    const char* argv[] = {"prog", "--n"};
    EXPECT_THROW(cli.parse(2, argv), Error);
  }
}

TEST(Cli, RejectsDuplicateRegistration) {
  CliParser cli("prog", "test");
  (void)cli.add_int("n", 1, "dim");
  EXPECT_THROW((void)cli.add_double("n", 1.0, "dup"), Error);
}

TEST(Cli, ParseIntListValidation) {
  EXPECT_EQ(parse_int_list("5"), (std::vector<std::int64_t>{5}));
  EXPECT_EQ(parse_int_list("1,2,3"), (std::vector<std::int64_t>{1, 2, 3}));
  EXPECT_THROW(parse_int_list(""), Error);
  EXPECT_THROW(parse_int_list("1,,2"), Error);
  EXPECT_THROW(parse_int_list("1,x"), Error);
}

TEST(Cli, HelpTextListsOptions) {
  CliParser cli("prog", "description here");
  (void)cli.add_int("dim", 64, "matrix dimension");
  std::ostringstream out;
  cli.print_help(out);
  EXPECT_NE(out.str().find("--dim"), std::string::npos);
  EXPECT_NE(out.str().find("matrix dimension"), std::string::npos);
}

// --- timer ----------------------------------------------------------------------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, TimedSecondsRunsFunction) {
  bool ran = false;
  const double s = timed_seconds([&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_GE(s, 0.0);
}

}  // namespace
}  // namespace asyrgs
