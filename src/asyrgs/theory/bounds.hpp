// The paper's convergence-rate formulas (Theorems 2-5), as code.
//
// These functions turn measurable matrix quantities (n, lambda_min,
// lambda_max, rho, rho2) and execution parameters (tau, beta) into the
// bounds the paper proves, so tests and benchmarks can place measured error
// decay next to the theory:
//
//   Theorem 2 (consistent read, beta = 1):  requires 2 rho tau < 1,
//     nu_tau = 1 - 2 rho tau,
//     (a) E_m <= (1 - nu_tau / 2 kappa) E_0          for m >= ~0.693 n / lambda_max
//     (b) E_m <= (1-nu/2k)(1 - nu (1-lmax/n)^tau / 2k + chi)^{r-1} E_0,
//         chi = rho tau^2 lambda_max (1-lmax/n)^{-2tau} / n .
//   Theorem 3 (consistent read, beta <= 1): nu_tau(beta) = 2b - b^2 - 2 rho tau b^2,
//     optimum beta* = 1/(1 + 2 rho tau) with nu_tau(beta*) = 1/(1 + 2 rho tau).
//   Theorem 4 (inconsistent read, beta < 1): omega_tau(beta) =
//     2 beta (1 - beta - rho2 tau^2 beta / 2),
//     psi = rho2 tau^3 beta^2 lambda_max (1-lmax/n)^{-2tau} / n .
//   Theorem 5: Theorem 4 applied to X = A^T A (kappa -> kappa(A)^2).
//
// Equation (2) (synchronous randomized Gauss-Seidel):
//     E_m <= (1 - beta(2-beta) lambda_min / n)^m E_0 .
#pragma once

#include <cstdint>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Everything the Theorem 2-4 formulas consume.  Fill from a matrix with
/// `measure_theorem_inputs`, or by hand in tests.
struct TheoremInputs {
  index_t n = 0;
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  double rho = 0.0;   ///< ||A||_inf / n
  double rho2 = 0.0;  ///< max_l (1/n) sum_r A_lr^2
  index_t tau = 0;    ///< bounded-asynchronism parameter
  double beta = 1.0;  ///< step size

  [[nodiscard]] double kappa() const { return lambda_max / lambda_min; }
};

/// Measures n, rho, rho2 directly and estimates the spectrum via Lanczos.
/// (Declared here, implemented against linalg/eigen.)
class ThreadPool;
[[nodiscard]] TheoremInputs measure_theorem_inputs(ThreadPool& pool,
                                                   const CsrMatrix& a,
                                                   index_t tau, double beta,
                                                   int lanczos_steps = 100);

// --- Elementary pieces -------------------------------------------------------

/// nu_tau(beta) = 2 beta - beta^2 - 2 rho tau beta^2 (Theorem 3; Theorem 2
/// is the beta = 1 case, 1 - 2 rho tau).
[[nodiscard]] double nu_tau(double rho, index_t tau, double beta);

/// omega_tau(beta) = 2 beta (1 - beta - rho2 tau^2 beta / 2) (Theorem 4).
[[nodiscard]] double omega_tau(double rho2, index_t tau, double beta);

/// chi(beta) = rho tau^2 beta^2 lambda_max (1 - lambda_max/n)^{-2 tau} / n
/// (Theorem 3(b); Theorem 2(b) is beta = 1).
[[nodiscard]] double chi_term(const TheoremInputs& in);

/// psi(beta) = rho2 tau^3 beta^2 lambda_max (1 - lambda_max/n)^{-2 tau} / n
/// (Theorem 4(b)).
[[nodiscard]] double psi_term(const TheoremInputs& in);

/// Step size maximizing nu_tau(beta): beta* = 1 / (1 + 2 rho tau)
/// (Section 6 discussion).
[[nodiscard]] double optimal_beta_consistent(double rho, index_t tau);

/// Step size maximizing omega_tau(beta): beta* = 1 / (2 + rho2 tau^2).
[[nodiscard]] double optimal_beta_inconsistent(double rho2, index_t tau);

/// T0 = ceil(log(1/2) / log(1 - lambda_max/n)) ~ 0.693 n / lambda_max:
/// the warm-up length in Theorems 2-4.
[[nodiscard]] std::uint64_t theorem_t0(index_t n, double lambda_max);

// --- Applicability -----------------------------------------------------------

/// Theorem 2/3 precondition: 2 beta - beta^2 - 2 rho tau beta^2 > 0.
[[nodiscard]] bool consistent_bound_applicable(const TheoremInputs& in);

/// Theorem 4 precondition: beta (1 - beta - rho2 tau^2 beta / 2) > 0.
[[nodiscard]] bool inconsistent_bound_applicable(const TheoremInputs& in);

// --- Assembled bounds (ratios E_m / E_0) -------------------------------------

/// Equation (2): synchronous randomized Gauss-Seidel after m updates.
[[nodiscard]] double synchronous_bound(index_t n, double lambda_min,
                                       double beta, std::uint64_t m);

/// Theorem 2(a)/3(a): the per-epoch factor 1 - nu_tau(beta) / (2 kappa)
/// valid once m >= theorem_t0 (occasional-synchronization regime).
[[nodiscard]] double consistent_epoch_factor(const TheoremInputs& in);

/// Theorem 2(b)/3(b): bound on E_m / E_0 for free-running execution at
/// update count m (uses r = floor(m / (T0 + tau)) full epochs).
[[nodiscard]] double consistent_free_running_bound(const TheoremInputs& in,
                                                   std::uint64_t m);

/// Theorem 4(a): per-epoch factor 1 - omega_tau(beta) / (2 kappa).
[[nodiscard]] double inconsistent_epoch_factor(const TheoremInputs& in);

/// Theorem 4(b): free-running bound at update count m.
[[nodiscard]] double inconsistent_free_running_bound(const TheoremInputs& in,
                                                     std::uint64_t m);

// --- Conformance of measured decay -------------------------------------------

/// Verdict of placing a measured error ratio next to a theorem envelope.
/// Produced by the check_* helpers below; consumed by the simulation
/// conformance tests and the asyrgs_sim tool.
struct EnvelopeCheck {
  bool applicable = false;  ///< the theorem's precondition held
  bool conforms = false;    ///< measured <= slack * envelope (false if n/a)
  double measured_ratio = 0.0;  ///< E_m / E_0 as measured
  double envelope = 1.0;        ///< the theorem's bound on E_m / E_0
  std::uint64_t m = 0;          ///< update count the check evaluated
};

/// Places a measured consistent-read decay E_m / E_0 against the Theorem
/// 2/3 free-running envelope.  `applicable` reports the 2 rho tau beta^2
/// precondition (nu_tau > 0) — checked, never assumed; `conforms` is only
/// meaningful when it is true.  `slack` > 1 absorbs the sampling noise of
/// averaging finitely many trials of a bound that holds in expectation.
[[nodiscard]] EnvelopeCheck check_consistent_envelope(const TheoremInputs& in,
                                                      double error0_sq,
                                                      double error_m_sq,
                                                      std::uint64_t m,
                                                      double slack = 1.0);

/// Theorem 4 analogue for the inconsistent-read model (precondition
/// omega_tau > 0, i.e. beta (1 - beta - rho2 tau^2 beta / 2) > 0).
[[nodiscard]] EnvelopeCheck check_inconsistent_envelope(
    const TheoremInputs& in, double error0_sq, double error_m_sq,
    std::uint64_t m, double slack = 1.0);

/// Markov-style iteration count (Section 3): smallest m with
/// Pr(||x_m - x*||_A >= eps ||x_0 - x*||_A) <= delta for the synchronous
/// method: m >= n / (beta(2-beta) lambda_min) * ln(1 / (delta eps^2)).
[[nodiscard]] std::uint64_t synchronous_iterations_for(index_t n,
                                                       double lambda_min,
                                                       double beta, double eps,
                                                       double delta);

}  // namespace asyrgs
