// Least-squares solver tests (Section 8): sequential RCD, asynchronous
// variant, and the Kaczmarz/CGNR baselines.
#include <gtest/gtest.h>

#include <cmath>

#include "asyrgs/core/async_lsq.hpp"
#include "asyrgs/gen/rhs.hpp"
#include "asyrgs/iter/kaczmarz.hpp"
#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {
namespace {

/// Random full-rank sparse m x n matrix with a few entries per row plus a
/// guaranteed diagonal band so every column is nonzero.
CsrMatrix random_tall_matrix(index_t m, index_t n, std::uint64_t seed) {
  CooBuilder b(m, n);
  Xoshiro256 rng(seed);
  for (index_t i = 0; i < m; ++i) {
    b.add(i, i % n, 1.0 + uniform_real(rng));  // full column rank anchor
    for (int t = 0; t < 3; ++t)
      b.add(i, uniform_index(rng, n), normal(rng) * 0.4);
  }
  return b.to_csr();
}

struct LsqFixture {
  CsrMatrix a;
  std::vector<double> x_star;
  std::vector<double> b;  // consistent: b = A x_star
};

LsqFixture consistent_problem(index_t m, index_t n, std::uint64_t seed) {
  LsqFixture p;
  p.a = random_tall_matrix(m, n, seed);
  p.x_star = random_vector(n, seed + 1);
  p.b = rhs_from_solution(p.a, p.x_star);
  return p;
}

TEST(RcdLsq, SolvesConsistentSystem) {
  LsqFixture p = consistent_problem(600, 200, 3);
  std::vector<double> x(200, 0.0);
  RgsOptions opt;
  opt.sweeps = 4000;
  opt.rel_tol = 1e-9;
  opt.step_size = 1.0;
  const RgsReport rep = rcd_lsq_solve(p.a, p.b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-6);
}

TEST(RcdLsq, FindsLeastSquaresSolutionOfInconsistentSystem) {
  // Add noise orthogonal to nothing in particular; the solver must still
  // drive the normal-equations residual A^T(b - Ax) to zero.
  LsqFixture p = consistent_problem(500, 150, 7);
  Xoshiro256 rng(11);
  for (double& v : p.b) v += 0.05 * normal(rng);

  std::vector<double> x(150, 0.0);
  RgsOptions opt;
  opt.sweeps = 6000;
  opt.rel_tol = 1e-8;
  const RgsReport rep = rcd_lsq_solve(p.a, p.b, x, opt);
  EXPECT_TRUE(rep.converged);

  std::vector<double> r(p.b.size());
  p.a.multiply(x.data(), r.data());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = p.b[i] - r[i];
  std::vector<double> g(150);
  p.a.multiply_transpose(r.data(), g.data());
  EXPECT_LT(nrm2(g), 1e-6 * nrm2(p.b));
}

TEST(AsyncLsq, OneWorkerTracksSequentialClosely) {
  // The async variant recomputes residual entries instead of maintaining r,
  // so the arithmetic differs in rounding only; trajectories stay close.
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(300, 100, 13);

  std::vector<double> x_seq(100, 0.0);
  RgsOptions sopt;
  sopt.sweeps = 20;
  sopt.seed = 17;
  sopt.step_size = 0.9;
  rcd_lsq_solve(p.a, p.b, x_seq, sopt);

  std::vector<double> x_async(100, 0.0);
  AsyncRgsOptions aopt;
  aopt.sweeps = 20;
  aopt.seed = 17;
  aopt.step_size = 0.9;
  aopt.workers = 1;
  async_lsq_solve(pool, p.a, p.b, x_async, aopt);

  EXPECT_LT(nrm2(subtract(x_seq, x_async)),
            1e-8 * std::max(1.0, nrm2(x_seq)));
}

class AsyncLsqThreadsTest : public ::testing::TestWithParam<int> {};

TEST_P(AsyncLsqThreadsTest, ConvergesMultithreaded) {
  const int workers = GetParam();
  ThreadPool pool(workers);
  LsqFixture p = consistent_problem(800, 250, 19);

  std::vector<double> x(250, 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 6000;
  opt.seed = 23;
  opt.step_size = 0.9;  // Theorem 5 wants beta < 1
  opt.workers = workers;
  opt.sync = SyncMode::kBarrierPerSweep;
  opt.rel_tol = 1e-8;
  const AsyncRgsReport rep = async_lsq_solve(pool, p.a, p.b, x, opt);
  EXPECT_TRUE(rep.converged) << "workers=" << workers;
  EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, AsyncLsqThreadsTest,
                         ::testing::Values(1, 4, 8));

TEST(AsyncLsq, OwnerComputesScopeConverges) {
  // PR-2 behavior previously untested: `scope` partitions the *columns*
  // among workers (owner-computes over the least-squares coordinates).
  // Barrier mode per the RandomizationScope guidance — a partition must not
  // be left frozen by a worker draining a free-running budget early.
  for (int workers : {2, 4}) {
    ThreadPool pool(workers);
    LsqFixture p = consistent_problem(700, 220, 37);
    std::vector<double> x(220, 0.0);
    AsyncRgsOptions opt;
    opt.sweeps = 6000;
    opt.seed = 41;
    opt.step_size = 0.9;
    opt.workers = workers;
    opt.scope = RandomizationScope::kOwnerComputes;
    opt.sync = SyncMode::kBarrierPerSweep;
    opt.rel_tol = 1e-8;
    const AsyncRgsReport rep = async_lsq_solve(pool, p.a, p.b, x, opt);
    EXPECT_TRUE(rep.converged) << "workers=" << workers;
    EXPECT_LE(rep.final_relative_residual, 1e-8) << "workers=" << workers;
    EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-5)
        << "workers=" << workers;
  }
}

TEST(AsyncLsq, TimedBarrierSyncsAndStopsAtTolerance) {
  // PR-2 behavior previously untested: real timed-barrier rendezvous in the
  // least-squares solver.  The run must hit the tolerance, record a
  // residual history entry per rendezvous, and stop early rather than
  // consuming the (deliberately oversized) sweep budget.
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(500, 160, 43);
  std::vector<double> x(160, 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 200000;
  opt.seed = 47;
  opt.step_size = 0.9;
  opt.workers = 2;
  opt.sync = SyncMode::kTimedBarrier;
  opt.sync_interval_seconds = 0.002;
  opt.track_history = true;
  opt.rel_tol = 1e-6;
  const AsyncRgsReport rep = async_lsq_solve(pool, p.a, p.b, x, opt);
  EXPECT_TRUE(rep.converged);
  EXPECT_LE(rep.final_relative_residual, 1e-6);
  EXPECT_FALSE(rep.residual_history.empty());
  EXPECT_LT(rep.updates,
            static_cast<long long>(opt.sweeps) * p.a.cols());
}

TEST(AsyncLsq, ExplicitTransposeOverloadAgrees) {
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(200, 80, 29);
  const CsrMatrix at = p.a.transpose();

  std::vector<double> x1(80, 0.0), x2(80, 0.0);
  AsyncRgsOptions opt;
  opt.sweeps = 10;
  opt.seed = 31;
  opt.workers = 1;
  async_lsq_solve(pool, p.a, p.b, x1, opt);
  async_lsq_solve(pool, p.a, at, p.b, x2, opt);
  EXPECT_EQ(x1, x2);
}

TEST(AsyncLsq, RejectsMismatchedTranspose) {
  ThreadPool pool(2);
  LsqFixture p = consistent_problem(100, 40, 37);
  const CsrMatrix wrong = random_tall_matrix(40, 90, 38);
  std::vector<double> x(40, 0.0);
  EXPECT_THROW(async_lsq_solve(pool, p.a, wrong, p.b, x, AsyncRgsOptions{}),
               Error);
}

TEST(AsyncLsq, RejectsZeroColumn) {
  ThreadPool pool(2);
  CooBuilder builder(3, 2);
  builder.add(0, 0, 1.0);
  builder.add(1, 0, 2.0);
  builder.add(2, 0, 3.0);  // column 1 is structurally... present but empty
  const CsrMatrix a = builder.to_csr();
  std::vector<double> b(3, 1.0), x(2, 0.0);
  EXPECT_THROW(async_lsq_solve(pool, a, b, x, AsyncRgsOptions{}), Error);
}

// --- baselines -----------------------------------------------------------------

TEST(Kaczmarz, SolvesConsistentSystem) {
  LsqFixture p = consistent_problem(500, 150, 41);
  std::vector<double> x(150, 0.0);
  SolveOptions so;
  so.max_iterations = 400;
  so.rel_tol = 1e-9;
  const SolveReport rep = kaczmarz_solve(p.a, p.b, x, so, 43);
  EXPECT_TRUE(rep.converged);
  EXPECT_LT(nrm2(subtract(x, p.x_star)) / nrm2(p.x_star), 1e-7);
}

TEST(Cgnr, SolvesLeastSquares) {
  ThreadPool pool(4);
  LsqFixture p = consistent_problem(400, 120, 47);
  Xoshiro256 rng(49);
  for (double& v : p.b) v += 0.02 * normal(rng);

  std::vector<double> x(120, 0.0);
  SolveOptions so;
  so.max_iterations = 2000;
  so.rel_tol = 1e-10;
  const SolveReport rep = cgnr_solve(pool, p.a, p.b, x, so);
  EXPECT_TRUE(rep.converged);

  std::vector<double> r(p.b.size());
  p.a.multiply(x.data(), r.data());
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = p.b[i] - r[i];
  std::vector<double> g(120);
  p.a.multiply_transpose(r.data(), g.data());
  EXPECT_LT(nrm2(g), 1e-7 * nrm2(p.b));
}

TEST(Cgnr, AgreesWithRcdOnConsistentProblem) {
  ThreadPool pool(4);
  LsqFixture p = consistent_problem(300, 90, 53);

  std::vector<double> x_cgnr(90, 0.0);
  SolveOptions so;
  so.max_iterations = 2000;
  so.rel_tol = 1e-12;
  cgnr_solve(pool, p.a, p.b, x_cgnr, so);

  std::vector<double> x_rcd(90, 0.0);
  RgsOptions ro;
  ro.sweeps = 8000;
  ro.rel_tol = 1e-10;
  rcd_lsq_solve(p.a, p.b, x_rcd, ro);

  EXPECT_LT(nrm2(subtract(x_cgnr, x_rcd)) / nrm2(x_cgnr), 1e-5);
}

}  // namespace
}  // namespace asyrgs
