#include "asyrgs/iter/cg.hpp"

#include <cmath>

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

SolveReport cg_solve(ThreadPool& pool, const CsrMatrix& a,
                     const std::vector<double>& b, std::vector<double>& x,
                     const SolveOptions& options, Preconditioner* precond,
                     int workers) {
  require(a.square(), "cg_solve: matrix must be square");
  require(static_cast<index_t>(b.size()) == a.rows() && x.size() == b.size(),
          "cg_solve: shape mismatch");
  const index_t n = a.rows();

  WallTimer timer;
  SolveReport report;
  const double b_norm = nrm2(b);
  if (b_norm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    report.converged = true;
    report.seconds = timer.seconds();
    return report;
  }

  std::vector<double> r(static_cast<std::size_t>(n));
  std::vector<double> z(static_cast<std::size_t>(n));
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> ap(static_cast<std::size_t>(n));

  spmv(pool, a, x.data(), r.data(), workers);
  for (index_t i = 0; i < n; ++i) r[i] = b[i] - r[i];

  auto apply_precond = [&](const std::vector<double>& in,
                           std::vector<double>& out) {
    if (precond != nullptr)
      precond->apply(in, out);
    else
      out = in;
  };

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  for (int it = 1; it <= options.max_iterations; ++it) {
    spmv(pool, a, p.data(), ap.data(), workers);
    const double p_ap = dot(p, ap);
    if (p_ap <= 0.0) {
      // Indefinite (or numerically breaking-down) system: stop honestly.
      report.converged = false;
      break;
    }
    const double alpha = rz / p_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    report.iterations = it;

    const double rel = nrm2(r) / b_norm;
    if (options.track_history) report.residual_history.push_back(rel);
    report.final_relative_residual = rel;
    if (rel <= options.rel_tol) {
      report.converged = true;
      break;
    }

    apply_precond(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (index_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
