// Quickstart: solve an SPD system with the asynchronous randomized
// Gauss-Seidel solver in ~30 lines of user code.
//
//   build/examples/quickstart [--n 128] [--threads 8] [--tol 1e-8]
//
// Walks through the minimal workflow:
//   1. assemble (or load) a sparse SPD matrix,
//   2. pick execution options (threads, sweeps, synchronization mode),
//   3. solve, 4. check the residual.
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "minimal AsyRGS walkthrough");
  auto n_opt = cli.add_int("n", 64, "grid side (matrix is n^2 x n^2)");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all cores)");
  auto tol = cli.add_double("tol", 1e-8, "relative residual target");
  cli.parse(argc, argv);

  // 1. A model SPD problem: the 2-D Laplacian on an n x n grid.  Any
  //    CsrMatrix works — load your own with read_matrix_market_file().
  const CsrMatrix a = laplacian_2d(*n_opt, *n_opt);
  std::cout << "matrix: " << a.rows() << " x " << a.cols() << " with "
            << a.nnz() << " nonzeros\n";

  // A right-hand side with known solution so we can verify the answer.
  const std::vector<double> x_true = random_vector(a.rows(), /*seed=*/1);
  const std::vector<double> b = rhs_from_solution(a, x_true);

  // 2. Solver options.  kBarrierPerSweep = the paper's "occasional
  //    synchronization" scheme: fully asynchronous within a sweep, one
  //    barrier per sweep, residual checked at the barrier.
  AsyncRgsOptions options;
  options.workers = static_cast<int>(*threads);
  options.sweeps = 50000;       // budget; stops early at rel_tol
  options.rel_tol = *tol;
  options.sync = SyncMode::kBarrierPerSweep;

  // 3. Solve.  The iterate is updated in place.
  std::vector<double> x(a.rows(), 0.0);
  const AsyncRgsReport report =
      async_rgs_solve(ThreadPool::global(), a, b, x, options);

  // 4. Verify.
  std::cout << "converged: " << (report.converged ? "yes" : "no")
            << "  sweeps: " << report.sweeps_done
            << "  workers: " << report.workers
            << "  wall time: " << report.seconds << " s\n";
  std::cout << "relative residual: " << relative_residual(a, b, x) << "\n";
  std::cout << "relative error vs known solution: "
            << nrm2(subtract(x, x_true)) / nrm2(x_true) << "\n";
  return report.converged ? 0 : 1;
}
