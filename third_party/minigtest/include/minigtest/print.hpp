// minigtest — value printing for assertion messages.
//
// Mirrors the useful subset of GoogleTest's universal printer: booleans as
// true/false, floating point at full round-trip precision, strings quoted,
// enums as their underlying integer, tuples and containers element-wise, and
// a byte-count fallback for everything else.
#pragma once

#include <cstddef>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

namespace testing {
namespace internal {

template <typename T, typename = void>
struct IsStreamable : std::false_type {};
template <typename T>
struct IsStreamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                            << std::declval<const T&>())>>
    : std::true_type {};

template <typename T, typename = void>
struct IsContainer : std::false_type {};
template <typename T>
struct IsContainer<T, std::void_t<decltype(std::begin(std::declval<const T&>())),
                                  decltype(std::end(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T>
struct IsTuple : std::false_type {};
template <typename... Ts>
struct IsTuple<std::tuple<Ts...>> : std::true_type {};
template <typename A, typename B>
struct IsTuple<std::pair<A, B>> : std::true_type {};

template <typename T>
void PrintValue(const T& value, std::ostream& os);

inline void PrintStringLiteral(const std::string& s, std::ostream& os) {
  os << '"' << s << '"';
}

template <typename Tuple, std::size_t... Is>
void PrintTupleTo(const Tuple& t, std::ostream& os, std::index_sequence<Is...>) {
  os << '(';
  ((os << (Is == 0 ? "" : ", "), PrintValue(std::get<Is>(t), os)), ...);
  os << ')';
}

template <typename T>
void PrintValue(const T& value, std::ostream& os) {
  using D = std::decay_t<T>;
  if constexpr (std::is_same_v<D, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (std::is_same_v<D, char>) {
    os << '\'' << value << '\'';
  } else if constexpr (std::is_floating_point_v<D>) {
    const auto saved = os.precision();
    os << std::setprecision(std::numeric_limits<D>::max_digits10) << value
       << std::setprecision(static_cast<int>(saved));
  } else if constexpr (std::is_enum_v<D>) {
    os << static_cast<long long>(value);
  } else if constexpr (std::is_same_v<D, std::string> ||
                       std::is_same_v<D, const char*> ||
                       std::is_same_v<D, char*>) {
    PrintStringLiteral(value, os);
  } else if constexpr (IsTuple<D>::value) {
    PrintTupleTo(value, os,
                 std::make_index_sequence<std::tuple_size_v<D>>{});
  } else if constexpr (IsStreamable<D>::value) {
    os << value;
  } else if constexpr (IsContainer<D>::value) {
    os << "{ ";
    std::size_t count = 0;
    for (const auto& element : value) {
      if (count > 0) os << ", ";
      if (count >= 32) {
        os << "...";
        break;
      }
      PrintValue(element, os);
      ++count;
    }
    os << " }";
  } else {
    os << sizeof(T) << "-byte object <unprintable>";
  }
}

template <typename T>
std::string PrintToString(const T& value) {
  std::ostringstream os;
  PrintValue(value, os);
  return os.str();
}

}  // namespace internal

// Public alias matching ::testing::PrintToString.
using internal::PrintToString;

}  // namespace testing
