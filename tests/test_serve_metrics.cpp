// Serving observability primitives (serve/metrics.hpp): the log-spaced
// latency histogram's binning/quantile math and the structured JSON trace
// format.  The service-level integration (histograms populated per shard,
// trace events per request) lives in test_service.cpp; this suite pins the
// primitives themselves so exporters and dashboards can rely on the format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asyrgs/serve/metrics.hpp"

namespace asyrgs {
namespace {

TEST(LatencyHistogram, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.total_seconds(), 0.0);
  EXPECT_EQ(h.max_seconds(), 0.0);
  EXPECT_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogram, BinsAreLogSpacedAndMonotonic) {
  EXPECT_DOUBLE_EQ(LatencyHistogram::bin_lower(0),
                   LatencyHistogram::kMinSeconds);
  // Three bins per octave: bin 3 starts at exactly twice bin 0.
  EXPECT_NEAR(LatencyHistogram::bin_lower(3),
              2.0 * LatencyHistogram::kMinSeconds, 1e-12);
  for (int i = 1; i < LatencyHistogram::kBins; ++i)
    EXPECT_GT(LatencyHistogram::bin_lower(i),
              LatencyHistogram::bin_lower(i - 1));
  // The open-ended top bin starts near an hour (2^(95/3) us ~ 3409 s), so
  // serving latencies never overflow meaningfully.
  EXPECT_GT(LatencyHistogram::bin_lower(LatencyHistogram::kBins - 1), 3000.0);
}

TEST(LatencyHistogram, QuantilesLandWithinOneBinOfTruth) {
  LatencyHistogram h;
  // 100 samples at 1ms, 10 at 100ms: p50 is 1ms-ish, p95/p99 are 100ms-ish.
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  for (int i = 0; i < 10; ++i) h.record(0.1);
  EXPECT_EQ(h.count(), 110u);
  EXPECT_NEAR(h.total_seconds(), 100 * 1e-3 + 10 * 0.1, 1e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.1);
  // One bin is a ratio of 2^(1/3) ~ 1.26; the midpoint estimate is within
  // a factor of 1.26 of the true value.
  EXPECT_GT(h.p50(), 1e-3 / 1.3);
  EXPECT_LT(h.p50(), 1e-3 * 1.3);
  EXPECT_GT(h.p99(), 0.1 / 1.3);
  EXPECT_LT(h.p99(), 0.1 * 1.3);
  // The p-extremes clamp to the populated range.
  EXPECT_LE(h.quantile(0.0), h.quantile(1.0));
}

TEST(LatencyHistogram, OutOfRangeSamplesClampToEdgeBins) {
  LatencyHistogram h;
  h.record(0.0);      // below the 1us floor
  h.record(-1.0);     // negative clamps to zero
  h.record(1e9);      // past the top bin
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 1e9);  // exact max is not clamped
  EXPECT_GT(h.quantile(1.0), 0.0);
}

TEST(LatencyHistogram, MergeAggregatesCountsSumsAndMax) {
  LatencyHistogram a, b;
  a.record(1e-3);
  a.record(2e-3);
  b.record(0.5);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.total_seconds(), 1e-3 + 2e-3 + 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(a.max_seconds(), 0.5);
  EXPECT_GT(a.quantile(1.0), 0.3);  // the merged tail is visible
}

TEST(TraceFormat, JsonLineIsStableAndMachineParseable) {
  TraceEvent e;
  e.request_id = 42;
  e.kind = "lsq";
  e.status = "converged";
  e.storage = "int32_double";
  e.sampling = "weighted";
  e.partitions = 4;
  e.shard = 3;
  e.priority = 0;
  e.warm_start = true;
  e.enqueue_seconds = 1.5;
  e.start_seconds = 1.502;
  e.done_seconds = 2.0;
  EXPECT_EQ(format_json_trace(e),
            "{\"type\":\"request\",\"id\":42,\"kind\":\"lsq\","
            "\"status\":\"converged\",\"storage\":\"int32_double\","
            "\"sampling\":\"weighted\",\"partitions\":4,"
            "\"shard\":3,\"priority\":0,"
            "\"warm_start\":true,\"enqueue_us\":1500000,"
            "\"start_us\":1502000,\"done_us\":2000000}");
}

TEST(TraceFormat, NeverStartedRequestRecordsMinusOneStart) {
  TraceEvent e;
  e.request_id = 7;
  e.status = "rejected";
  e.done_seconds = 0.25;
  const std::string line = format_json_trace(e);
  EXPECT_NE(line.find("\"start_us\":-1"), std::string::npos);
  EXPECT_NE(line.find("\"shard\":-1"), std::string::npos);
  EXPECT_NE(line.find("\"partitions\":0"), std::string::npos);
  EXPECT_NE(line.find("\"warm_start\":false"), std::string::npos);
}

TEST(JsonTraceSink, ConcurrentWritersEmitWholeLines) {
  std::ostringstream out;
  JsonTraceSink sink(out);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.request_id = t * kPerThread + i;
        e.status = "budget-completed";
        sink.log(e);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  // Every line is one complete JSON object — no interleaved writes.
  std::istringstream in(out.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"request\""), std::string::npos);
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
}

}  // namespace
}  // namespace asyrgs
