// Quickstart: prepare an SPD problem once, then solve it repeatedly with
// the asynchronous randomized Gauss-Seidel solver.
//
//   build/examples/quickstart [--n 128] [--threads 8] [--tol 1e-8]
//
// Walks through the prepare-once / solve-many workflow:
//   1. assemble (or load) a sparse SPD matrix,
//   2. bind it into an SpdProblem handle (validation + analysis paid here),
//   3. solve with per-call controls — and solve again, against a second
//      right-hand side, without re-paying any setup,
//   4. check residuals and the structured outcome.
#include <iostream>

#include "asyrgs/asyrgs.hpp"

using namespace asyrgs;

int main(int argc, char** argv) {
  CliParser cli("quickstart", "minimal prepared-handle AsyRGS walkthrough");
  auto n_opt = cli.add_int("n", 64, "grid side (matrix is n^2 x n^2)");
  auto threads = cli.add_int("threads", 0, "worker threads (0 = all cores)");
  auto tol = cli.add_double("tol", 1e-8, "relative residual target");
  cli.parse(argc, argv);

  // 1. A model SPD problem: the 2-D Laplacian on an n x n grid.  Any
  //    CsrMatrix works — load your own with read_matrix_market_file().
  const CsrMatrix a = laplacian_2d(*n_opt, *n_opt);
  std::cout << "matrix: " << a.rows() << " x " << a.cols() << " with "
            << a.nnz() << " nonzeros\n";

  // 2. Prepare the problem.  This is where the per-matrix work happens:
  //    symmetry + positive-diagonal validation, diagonal reciprocals, and
  //    the solver scratch.  The handle binds the matrix and a thread pool;
  //    both must outlive it.
  SpdProblem problem(ThreadPool::global(), a, /*check_input=*/true);

  // 3. Per-call controls.  kBarrierPerSweep = the paper's "occasional
  //    synchronization" scheme: fully asynchronous within a sweep, one
  //    barrier per sweep, residual checked at the barrier.
  SolveControls controls;
  controls.method = SpdMethod::kAsyncRgs;  // kAuto would pick FCG at 1e-8
  controls.workers = static_cast<int>(*threads);
  controls.sweeps = 50000;  // budget; stops early at rel_tol
  controls.rel_tol = *tol;
  controls.sync = SyncMode::kBarrierPerSweep;

  // A right-hand side with known solution so we can verify the answer.
  const std::vector<double> x_true = random_vector(a.rows(), /*seed=*/1);
  const std::vector<double> b = rhs_from_solution(a, x_true);

  std::vector<double> x(a.rows(), 0.0);
  const SolveOutcome first = problem.solve(b, x, controls);

  std::cout << "first solve:  " << to_string(first.status) << " after "
            << first.iterations << " sweeps on " << first.workers
            << " workers in " << first.seconds << " s\n"
            << "  relative residual: " << relative_residual(a, b, x) << "\n"
            << "  error vs known solution: "
            << nrm2(subtract(x, x_true)) / nrm2(x_true) << "\n";

  // 4. Solve again — a different right-hand side, a different seed — on the
  //    same prepared handle.  No validation, no analysis, no allocation is
  //    repeated; this is the serving pattern for many requests against one
  //    operator (and what the legacy one-shot async_rgs_solve now wraps).
  const std::vector<double> b2 = random_vector(a.rows(), /*seed=*/7);
  controls.seed = 2;
  std::vector<double> x2(a.rows(), 0.0);
  const SolveOutcome second = problem.solve(b2, x2, controls);

  std::cout << "second solve: " << to_string(second.status) << " after "
            << second.iterations << " sweeps (" << second.description
            << ")\n"
            << "  relative residual: " << relative_residual(a, b2, x2)
            << "\n";

  const ProblemStats stats = problem.stats();
  std::cout << "prepared-handle stats: " << stats.solves << " solves, "
            << stats.validation_passes << " validation pass(es), "
            << stats.scratch_allocations << " scratch allocations\n";

  return (first.converged() && second.converged()) ? 0 : 1;
}
