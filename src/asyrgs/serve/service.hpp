// SolverService: sharded multi-pool serving front-end.
//
// The prepared handles (asyrgs/problem.hpp) amortize per-matrix analysis
// across repeated solves, but one handle serializes concurrent solve()
// calls through its single ThreadPool — fine for a request loop, a ceiling
// for the paper's motivating workload of *many concurrent* solves against
// one operator (Section 9: one matrix, a stream of right-hand sides).
// SolverService lifts that ceiling the way the paper's analysis says it
// should scale: independent solves have no shared mutable state beyond the
// immutable matrix, so N pools can run N solves truly in parallel.
//
//   SolverService service(a, {.shards = 4, .prepare_lsq = true});
//   SolveTicket t = service.submit(b);            // returns immediately
//   const SolveOutcome& out = t.wait();           // blocks for completion
//   const std::vector<double>& x = t.solution();
//
// Architecture: the service owns `shards` ThreadPools; each shard carries
// its own prepared SpdProblem / LsqProblem handle, shard-cloned from shard
// 0's so the per-matrix analysis (symmetry validation, diagonal
// reciprocals, the cached transpose, column-norm denominators) is paid
// exactly once for the whole service (ProblemStats on the clones stay at
// zero validation passes / transpose builds).  Requests enter per-priority
// FIFO queues; every free shard pulls the oldest request of the most
// urgent non-empty class, so work always lands on a least-loaded (idle)
// shard and queues only when all shards are busy.
//
// Admission and shedding: the queue is bounded by ServiceOptions::max_queue.
// A request that cannot be admitted — queue full, or submit racing
// shutdown — is NOT an error: submit() still returns a valid ticket, which
// resolves immediately to SolveStatus::kRejected.  A queued request whose
// RequestOptions::deadline_seconds expires before a shard picks it up is
// shed the same way and never executes.  Only *malformed* requests (wrong
// rhs shape, family not prepared) throw from submit(), eagerly, on the
// caller's thread.
//
// Warm starts: the submit() overloads taking `x0` start the iteration from
// a caller-supplied iterate instead of zero — the re-solve pattern where a
// client's right-hand side drifts between requests and the previous
// solution is an excellent initial guess (Section 9's stream of related
// systems).
//
// Observability: stats() aggregates per-shard latency histograms
// (p50/p95/p99 of enqueue-to-done request latency), queue depth high-water,
// and reject/shed counters; ServiceOptions::trace attaches a per-request
// structured trace sink (serve/metrics.hpp).
//
// Determinism: a request with fixed SolveControls (seed, workers, pinned
// scan) produces a bit-identical result on whichever shard runs it — all
// shards hold clones of the same analysis against the same matrix.  Within
// one priority class requests execute in FIFO order.  NOTE on auto worker
// sizing: when `workers_per_shard` is 0 the hardware threads are divided
// across shards with the remainder spread over the first `hw % shards`
// shards, so shard pools may differ in size by one — pin
// SolveControls::workers (or set workers_per_shard explicitly) when
// bit-identity across shard placements matters.  Gated by
// tests/test_service.cpp.
//
// Thread-safety: submit_*(), drain(), and stats() may be called
// concurrently from any number of client threads.  A SolveTicket is a
// value handle to shared state; wait()/solution() may be called from any
// thread (one at a time per ticket).  The bound CsrMatrix must outlive the
// service.  Destruction drains: every admitted request is completed (or
// shed at its deadline) before the destructor returns, and a submit racing
// shutdown resolves its ticket to kRejected instead of throwing.
#pragma once

#include <memory>
#include <vector>

#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/problem.hpp"
#include "asyrgs/serve/metrics.hpp"
#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

namespace detail {
struct TicketState;   // request + result + completion latch (service.cpp)
struct ServiceImpl;   // shards, queues, dispatcher threads (service.cpp)
}  // namespace detail

/// Number of distinct RequestOptions::priority classes (0 .. kPriorityClasses
/// - 1); out-of-range priorities clamp.
inline constexpr int kPriorityClasses = 3;

/// Per-service configuration, fixed at construction.
struct ServiceOptions {
  /// Number of pool shards (concurrent solve lanes).  Each shard owns a
  /// ThreadPool of `workers_per_shard` threads and prepared handle clones.
  int shards = 2;
  /// Team capacity of each shard's pool.  0 = auto: hardware_concurrency()
  /// divided across the shards, first `hw % shards` shards getting one
  /// extra thread — which makes auto-sized pools *unequal* when shards does
  /// not divide the hardware threads.  Keep it explicit when bit-identical
  /// results across services with different shard counts matter (see the
  /// determinism note above).
  int workers_per_shard = 0;
  /// Admission bound: maximum requests waiting for a shard (not counting
  /// the ones executing).  0 = unbounded (the pre-admission-control
  /// behavior).  A submit that finds all `max_queue` slots taken resolves
  /// its ticket to SolveStatus::kRejected instead of queueing.
  int max_queue = 0;
  /// Prepare SPD handles (required for submit / submit_block).
  bool prepare_spd = true;
  /// Prepare least-squares handles (required for submit_least_squares).
  /// Off by default: it materializes A^T through the matrix cache.
  bool prepare_lsq = false;
  /// Validate symmetry at construction (SPD family; shard 0 only — clones
  /// reuse the verdict).
  bool check_input = true;
  /// CSR storage policy request for the prepared handles (see StorageMode /
  /// resolve_storage_policy in asyrgs/problem.hpp).  Shard 0 builds the
  /// compact copy; clones alias it, so a service pays the narrowing pass
  /// once regardless of shard count.  The resolved policy is visible in
  /// ShardStats (ProblemStats::storage), each outcome's
  /// SolveOutcome::storage_used, and the trace events.
  StorageMode storage = StorageMode::kAuto;
  /// Run the RCM partition analysis at service construction (SPD family;
  /// shard 0 only — clones inherit the analysis like the compact storage
  /// copies), so requests with SolveControls::partitions != 0 never pay the
  /// O(nnz log nnz) analysis on the serving path.  Off by default: it
  /// materializes a permuted copy of the operator.  Without it, the first
  /// partitioned request on each service still triggers the analysis
  /// lazily — but on shard 0's prototype it lands per-shard, so enable
  /// this whenever partitioned requests are expected.
  bool prepare_partitions = false;
  /// Optional per-request trace sink (one structured event per completed or
  /// rejected request); shared so one sink can serve several services.
  /// Must be internally synchronized (JsonTraceSink is).
  std::shared_ptr<TraceSink> trace;
};

/// Per-request serving metadata, separate from the solver-facing
/// SolveControls: how the *queue* should treat this request.
struct RequestOptions {
  /// Priority class: 0 is most urgent, kPriorityClasses - 1 least (values
  /// clamp into range).  The queue is FIFO within a class; a free shard
  /// always takes the oldest request of the most urgent non-empty class.
  int priority = 1;
  /// Deadline measured from submission, in seconds; 0 (or negative)
  /// disables it.  A request still *queued* when its deadline passes is
  /// shed with SolveStatus::kRejected and never executes.  A request
  /// already running is never aborted (solves are short; aborting
  /// mid-iteration would forfeit the paper's convergence guarantees).
  double deadline_seconds = 0.0;
};

/// Future-like handle to one submitted solve.  Cheap to copy (shared
/// state); default-constructed tickets are invalid until assigned.
class SolveTicket {
 public:
  SolveTicket() = default;

  /// True when this ticket refers to a submitted request.
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the request has completed (never blocks).  Rejected
  /// requests complete immediately at submit().
  [[nodiscard]] bool done() const;

  /// Blocks until the request completes and returns the outcome.  A solve
  /// that threw (e.g. shape mismatch discovered on the shard) rethrows the
  /// exception here — and on every later wait()/solution() call.  A
  /// rejected or shed request does NOT throw: its outcome carries
  /// SolveStatus::kRejected and a `description` naming the reason.
  const SolveOutcome& wait();

  /// The solution vector (SPD single / least-squares requests); blocks like
  /// wait().  Valid until the last ticket copy is destroyed.  For a
  /// rejected request this is the untouched initial iterate (zeros, or the
  /// caller's x0).
  [[nodiscard]] const std::vector<double>& solution();

  /// The block solution (submit_block requests); blocks like wait().
  [[nodiscard]] const MultiVector& block_solution();

  /// Index of the shard that executed the request (blocks like wait());
  /// -1 for rejected/shed requests, which never reach a shard.  Exposed
  /// for tests and load diagnostics.
  [[nodiscard]] int shard();

 private:
  friend class SolverService;
  explicit SolveTicket(std::shared_ptr<detail::TicketState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::TicketState> state_;
};

/// Per-shard serving counters, exposed through ServiceStats.
struct ShardStats {
  long long served = 0;  ///< requests this shard completed
  int workers = 0;       ///< this shard's pool size (auto mode may differ ±1)
  /// Enqueue-to-done latency of requests this shard served (log-spaced
  /// bins; see serve/metrics.hpp).  Queue wait is included — that is the
  /// latency a client observes.
  LatencyHistogram latency;
  ProblemStats spd;      ///< the shard's SpdProblem counters (if prepared)
  ProblemStats lsq;      ///< the shard's LsqProblem counters (if prepared)
};

/// Aggregated service counters; a consistent snapshot at the time of the
/// stats() call.  Invariant (checked under the stats mutex):
/// submitted == completed + queued + in_flight, where completed includes
/// rejected and shed requests.
struct ServiceStats {
  long long submitted = 0;  ///< tickets issued (admitted or not)
  long long completed = 0;  ///< tickets resolved (incl. failed/rejected/shed)
  long long queued = 0;     ///< requests currently waiting for a shard
  /// Requests picked up but not yet resolved: executing on a shard, or (for
  /// a microseconds-long window) having their rejection/shed outcome
  /// finalized.
  long long in_flight = 0;
  /// Requests refused at submit (queue at max_queue, or racing shutdown).
  long long rejected = 0;
  /// Admitted requests shed unexecuted because their deadline expired in
  /// the queue.  Disjoint from `rejected`; both resolve as kRejected.
  long long shed_deadline = 0;
  /// Largest queue depth ever observed (admission high-water mark — the
  /// number to compare against max_queue when sizing it).
  long long queue_high_water = 0;
  /// Enqueue-to-done latency over every executed request (merge of the
  /// per-shard histograms; rejected/shed requests are not recorded).
  LatencyHistogram latency;
  /// Validation passes summed over every shard's handles — stays at the
  /// shard-0 construction count (1 per prepared family) because clones
  /// re-validate nothing.
  int validation_passes = 0;
  /// Transpose builds summed over every shard's handles — at most 1 (and 0
  /// when the matrix cache was already warm), shared via
  /// CsrMatrix::transpose_shared().
  int transpose_builds = 0;
  std::vector<ShardStats> shards;
};

/// Sharded serving front-end: N ThreadPool shards, each with prepared
/// handle clones of one analyzed matrix, fed from bounded per-priority
/// FIFO queues.  See the header comment for architecture, admission,
/// determinism, and thread-safety; docs/API.md for the lifecycle contract.
class SolverService {
 public:
  /// Prepares shard 0's handles against `a` (full analysis) and shard
  /// clones for the rest, then starts one dispatcher thread per shard.
  /// Throws asyrgs::Error on malformed input (same checks as the handle
  /// constructors) or when no family is enabled.  `a` is kept by
  /// reference and must outlive the service.
  explicit SolverService(const CsrMatrix& a, ServiceOptions options = {});

  /// Drains the queues (every admitted request completes or is shed at its
  /// deadline), then stops and joins the dispatcher threads (shutdown()).
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues an SPD solve A x = b from x = 0; returns immediately.
  /// Requires ServiceOptions::prepare_spd.  The right-hand side is moved
  /// into the ticket, so the caller's buffer is not referenced afterwards.
  /// Throws on malformed requests; resolves the ticket to kRejected (never
  /// throws) when the queue is full or the service is shutting down.
  SolveTicket submit(std::vector<double> b, SolveControls controls = {},
                     RequestOptions request = {});

  /// Warm-start overload: starts the iteration from `x0` (size = rows)
  /// instead of zero.  For a client re-solving against a drifting
  /// right-hand side, passing the previous solution typically converges in
  /// far fewer sweeps (tests/test_service.cpp pins this).
  SolveTicket submit(std::vector<double> b, std::vector<double> x0,
                     SolveControls controls = {}, RequestOptions request = {});

  /// Enqueues a block SPD solve A X = B from X = 0 (asynchronous method
  /// only, as SpdProblem::solve(MultiVector)).  Requires prepare_spd.
  SolveTicket submit_block(MultiVector b, SolveControls controls = {},
                           RequestOptions request = {});

  /// Enqueues a least-squares solve min ||A x - b|| from x = 0.  Requires
  /// ServiceOptions::prepare_lsq.
  SolveTicket submit_least_squares(std::vector<double> b,
                                   SolveControls controls = {},
                                   RequestOptions request = {});

  /// Warm-start least-squares overload (`x0` size = cols).
  SolveTicket submit_least_squares(std::vector<double> b,
                                   std::vector<double> x0,
                                   SolveControls controls = {},
                                   RequestOptions request = {});

  /// Blocks until every request submitted so far has completed (rejected
  /// requests are already complete; queued ones may complete by deadline
  /// shed).
  void drain();

  /// Stops accepting work, drains what was already admitted, and joins the
  /// dispatcher threads.  Idempotent and safe to call concurrently with
  /// submit_* from other threads: submits that lose the race resolve their
  /// ticket to kRejected ("service shutting down") — this is how "submit
  /// racing shutdown" stays a well-defined serving state rather than a
  /// lifetime bug (destroying the object while other threads still call
  /// into it is UB, as for any object; shut down first, then destroy).
  /// The destructor calls this.
  void shutdown();

  [[nodiscard]] int shards() const noexcept;
  /// Shard 0's pool size.  With explicit ServiceOptions::workers_per_shard
  /// every shard matches; in auto mode shard 0 is the largest (remainder
  /// threads go to the lowest-indexed shards) — see ShardStats::workers for
  /// the full distribution.
  [[nodiscard]] int workers_per_shard() const noexcept;
  [[nodiscard]] const CsrMatrix& matrix() const noexcept;
  [[nodiscard]] ServiceStats stats() const;

 private:
  SolveTicket enqueue(std::shared_ptr<detail::TicketState> state,
                      const RequestOptions& request);

  std::unique_ptr<detail::ServiceImpl> impl_;
};

}  // namespace asyrgs
