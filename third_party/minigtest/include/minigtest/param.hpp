// minigtest — value-parameterized tests.
//
// TEST_P registers a factory against its suite class; INSTANTIATE_TEST_SUITE_P
// registers a prefix plus a materialized value vector. Both happen during
// static initialization in either order; the cross product is expanded into
// concrete "Prefix/Suite.Name/index" tests lazily, right before the first
// run. Values()/Combine() return conversion-friendly holders so that
// `Values<index_t>(40, 100)` and `Combine(Values(...), Values(...))` coerce to
// the suite's ParamType exactly like the GoogleTest originals.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "minigtest/registry.hpp"

namespace testing {

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;

  static const ParamType& GetParam() { return *current_param_; }

  // Runner hook: points at the instantiation's stored value for the duration
  // of one test; the storage lives in the ParamRegistry singleton.
  static void set_current_param(const ParamType* param) {
    current_param_ = param;
  }

 private:
  static inline const ParamType* current_param_ = nullptr;
};

namespace internal {

template <typename T>
class ParamGenerator {
 public:
  explicit ParamGenerator(std::vector<T> values) : values_(std::move(values)) {}
  const std::vector<T>& values() const { return values_; }

 private:
  std::vector<T> values_;
};

template <typename... Ts>
class ValueArray {
 public:
  explicit ValueArray(Ts... values) : values_(std::move(values)...) {}

  template <typename T>
  operator ParamGenerator<T>() const {  // NOLINT(google-explicit-constructor)
    return ParamGenerator<T>(std::apply(
        [](const auto&... value) {
          return std::vector<T>{static_cast<T>(value)...};
        },
        values_));
  }

 private:
  std::tuple<Ts...> values_;
};

template <typename... Gens>
class CartesianProductHolder {
 public:
  explicit CartesianProductHolder(Gens... gens) : gens_(std::move(gens)...) {}

  template <typename... Us>
  operator ParamGenerator<std::tuple<Us...>>() const {  // NOLINT
    static_assert(sizeof...(Us) == sizeof...(Gens),
                  "Combine() arity must match the tuple ParamType arity");
    return expand<Us...>(std::index_sequence_for<Us...>{});
  }

 private:
  template <typename... Us, std::size_t... Is>
  ParamGenerator<std::tuple<Us...>> expand(std::index_sequence<Is...>) const {
    const auto axes = std::make_tuple(
        static_cast<ParamGenerator<Us>>(std::get<Is>(gens_)).values()...);
    std::vector<std::tuple<Us...>> product;
    std::size_t total = 1;
    ((total *= std::get<Is>(axes).size()), ...);
    product.reserve(total);
    // Odometer over the axes: the first generator varies slowest, matching
    // GoogleTest's enumeration order.
    std::array<std::size_t, sizeof...(Us)> index{};
    for (std::size_t flat = 0; flat < total; ++flat) {
      product.emplace_back(std::get<Is>(axes)[index[Is]]...);
      for (std::size_t axis = sizeof...(Us); axis-- > 0;) {
        const std::size_t sizes[] = {std::get<Is>(axes).size()...};
        if (++index[axis] < sizes[axis]) break;
        index[axis] = 0;
      }
    }
    return ParamGenerator<std::tuple<Us...>>(std::move(product));
  }

  std::tuple<Gens...> gens_;
};

// Per-suite-class singleton connecting TEST_P registrations with
// INSTANTIATE_TEST_SUITE_P value sets.
template <typename SuiteClass>
class ParamRegistry {
 public:
  using ParamType = typename SuiteClass::ParamType;
  using Factory = Test* (*)();

  static ParamRegistry& instance() {
    static ParamRegistry registry;
    return registry;
  }

  bool add_test(const char* suite_name, const char* test_name,
                Factory factory) {
    tests_.push_back(TestEntry{suite_name, test_name, factory});
    return true;
  }

  bool add_instantiation(const char* prefix, std::vector<ParamType> values) {
    instantiations_.push_back(Instantiation{prefix, std::move(values)});
    return true;
  }

 private:
  struct TestEntry {
    std::string suite;
    std::string name;
    Factory factory;
  };
  struct Instantiation {
    std::string prefix;
    std::vector<ParamType> values;
  };

  ParamRegistry() {
    UnitTest::instance().add_materializer([this]() { materialize(); });
  }

  void materialize() {
    for (const Instantiation& inst : instantiations_) {
      for (std::size_t i = 0; i < inst.values.size(); ++i) {
        const ParamType* param = &inst.values[i];
        for (const TestEntry& test : tests_) {
          UnitTest::instance().register_test(
              inst.prefix + "/" + test.suite,
              test.name + "/" + std::to_string(i),
              [factory = test.factory, param]() -> Test* {
                TestWithParam<ParamType>::set_current_param(param);
                return factory();
              });
        }
      }
    }
  }

  std::vector<TestEntry> tests_;
  std::vector<Instantiation> instantiations_;
};

}  // namespace internal

template <typename... Ts>
internal::ValueArray<Ts...> Values(Ts... values) {
  return internal::ValueArray<Ts...>(std::move(values)...);
}

template <typename... Gens>
internal::CartesianProductHolder<Gens...> Combine(Gens... gens) {
  return internal::CartesianProductHolder<Gens...>(std::move(gens)...);
}

template <typename T>
internal::ParamGenerator<T> ValuesIn(std::vector<T> values) {
  return internal::ParamGenerator<T>(std::move(values));
}

}  // namespace testing

#define TEST_P(suite, name)                                                  \
  class MGT_TEST_CLASS_NAME_(suite, name) : public suite {                   \
   public:                                                                   \
    void TestBody() override;                                                \
  };                                                                         \
  [[maybe_unused]] static const bool mgt_param_registered_##suite##_##name = \
      ::testing::internal::ParamRegistry<suite>::instance().add_test(        \
          #suite, #name, []() -> ::testing::Test* {                          \
            return new MGT_TEST_CLASS_NAME_(suite, name);                    \
          });                                                                \
  void MGT_TEST_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                         \
  [[maybe_unused]] static const bool mgt_instantiated_##prefix##_##suite =   \
      ::testing::internal::ParamRegistry<suite>::instance()                  \
          .add_instantiation(                                                \
              #prefix,                                                       \
              static_cast<::testing::internal::ParamGenerator<               \
                  typename suite::ParamType>>(__VA_ARGS__)                   \
                  .values())

// Pre-2018 GoogleTest spelling, kept for source compatibility.
#define INSTANTIATE_TEST_CASE_P INSTANTIATE_TEST_SUITE_P
