#include "asyrgs/gen/gram.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "asyrgs/sparse/coo.hpp"
#include "asyrgs/support/prng.hpp"

namespace asyrgs {

namespace {

/// Inverse-CDF sampler over term ranks with Zipf weights 1/(r+1)^s.
class ZipfSampler {
 public:
  ZipfSampler(index_t n, double s) : cdf_(static_cast<std::size_t>(n)) {
    double acc = 0.0;
    for (index_t r = 0; r < n; ++r) {
      acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cdf_[r] = acc;
    }
    total_ = acc;
  }

  template <typename Engine>
  index_t operator()(Engine& rng) const {
    const double u = uniform_real(rng) * total_;
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<index_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
  double total_ = 0.0;
};

}  // namespace

template <class Index, class Value>
SocialGramT<Index, Value> make_social_gram_as(const SocialGramOptions& opt) {
  require(opt.terms > 1 && opt.documents > 0,
          "make_social_gram: need terms > 1 and documents > 0");
  require(opt.mean_doc_length >= 1,
          "make_social_gram: mean_doc_length must be >= 1");
  require(opt.ridge >= 0.0, "make_social_gram: ridge must be non-negative");

  require(opt.topics >= 0 && opt.topics <= opt.terms,
          "make_social_gram: topics must be in [0, terms]");
  require(opt.topic_concentration >= 0.0 && opt.topic_concentration <= 1.0,
          "make_social_gram: topic_concentration must be in [0, 1]");

  Xoshiro256 rng(opt.seed);
  const ZipfSampler pick_term(opt.terms, opt.zipf_exponent);

  // Topic t owns the vocabulary slice [t*slice, (t+1)*slice) with a local
  // Zipf law; slice 0-length means no topic structure.
  const index_t n_topics = opt.topics;
  const index_t slice = n_topics > 0 ? opt.terms / n_topics : 0;
  const bool topical = n_topics > 0 && slice >= 2;
  const ZipfSampler pick_in_slice(topical ? slice : 1, opt.zipf_exponent);
  const ZipfSampler pick_topic(topical ? n_topics : 1, opt.zipf_exponent);

  // --- Corpus: each document is a set of (term, frequency) pairs. ---------
  CooBuilderT<Index, Value> factor(opt.documents, opt.terms);
  CooBuilderT<Index, Value> gram(opt.terms, opt.terms);
  // Rough triplet budget: docs * L picks for F, docs * L^2 for the Gram.
  factor.reserve(static_cast<std::size_t>(opt.documents) *
                 static_cast<std::size_t>(opt.mean_doc_length));

  std::vector<index_t> doc_terms;
  std::vector<double> doc_freqs;
  for (index_t d = 0; d < opt.documents; ++d) {
    // Document length: 1 + Poisson-ish via sum of two geometric-ish draws;
    // keeps lengths positively skewed like real text.
    const index_t len =
        1 + uniform_index(rng, opt.mean_doc_length) +
        uniform_index(rng, opt.mean_doc_length);

    doc_terms.clear();
    doc_freqs.clear();
    const index_t topic = topical ? pick_topic(rng) : 0;
    for (index_t t = 0; t < len; ++t) {
      // Topical draw: a slice-local Zipf pick; otherwise a global pick.
      index_t term;
      if (topical && uniform_real(rng) < opt.topic_concentration) {
        term = topic * slice + pick_in_slice(rng);
      } else {
        term = pick_term(rng);
      }
      // Term frequency inside the document: mostly 1, occasionally larger.
      const double tf = 1.0 + static_cast<double>(uniform_index(rng, 3));
      // Merge repeats of the same term within this document.
      auto it = std::find(doc_terms.begin(), doc_terms.end(), term);
      if (it != doc_terms.end()) {
        doc_freqs[static_cast<std::size_t>(it - doc_terms.begin())] += tf;
      } else {
        doc_terms.push_back(term);
        doc_freqs.push_back(tf);
      }
    }

    // Emit F row and its Gram contribution (outer product of the row).
    for (std::size_t p = 0; p < doc_terms.size(); ++p) {
      factor.add(d, doc_terms[p], doc_freqs[p]);
      gram.add(doc_terms[p], doc_terms[p], doc_freqs[p] * doc_freqs[p]);
      for (std::size_t q = p + 1; q < doc_terms.size(); ++q) {
        const double v = doc_freqs[p] * doc_freqs[q];
        gram.add(doc_terms[p], doc_terms[q], v);
        gram.add(doc_terms[q], doc_terms[p], v);
      }
    }
  }

  // Ridge keeps A strictly positive definite even for terms that never
  // appear (zero Gram row otherwise) — those rows become ridge*e_i.
  for (index_t i = 0; i < opt.terms; ++i) gram.add(i, i, opt.ridge);

  return SocialGramT<Index, Value>{gram.to_csr(), factor.to_csr()};
}

SocialGram make_social_gram(const SocialGramOptions& opt) {
  return make_social_gram_as<std::int64_t, double>(opt);
}

template SocialGramT<std::int64_t, double>
make_social_gram_as<std::int64_t, double>(const SocialGramOptions&);
template SocialGramT<std::int32_t, double>
make_social_gram_as<std::int32_t, double>(const SocialGramOptions&);
template SocialGramT<std::int32_t, float>
make_social_gram_as<std::int32_t, float>(const SocialGramOptions&);

}  // namespace asyrgs
