// Property-based randomized suites: algebraic identities that must hold for
// arbitrary inputs, checked across seeds via parameterized tests.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "asyrgs/asyrgs.hpp"

namespace asyrgs {
namespace {

/// Random sparse square matrix (general, unsymmetric) for structure tests.
CsrMatrix random_sparse(index_t n, std::uint64_t seed) {
  CooBuilder b(n, n);
  Xoshiro256 rng(seed);
  const index_t entries = n * 6;
  for (index_t t = 0; t < entries; ++t)
    b.add(uniform_index(rng, n), uniform_index(rng, n), normal(rng));
  // Ensure no empty rows (simplifies downstream use).
  for (index_t i = 0; i < n; ++i) b.add(i, i, 1.0 + uniform_real(rng));
  return b.to_csr();
}

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededTest, TransposeIsInvolution) {
  const CsrMatrix a = random_sparse(83, GetParam());
  EXPECT_TRUE(a.transpose().transpose().equals(a, 0.0));
}

TEST_P(SeededTest, SpmvIsLinear) {
  const std::uint64_t seed = GetParam();
  const CsrMatrix a = random_sparse(64, seed);
  const std::vector<double> x = random_vector(64, seed + 1);
  const std::vector<double> y = random_vector(64, seed + 2);
  const double alpha = 1.75, beta = -0.5;

  std::vector<double> combo(64);
  for (int i = 0; i < 64; ++i) combo[i] = alpha * x[i] + beta * y[i];

  std::vector<double> a_combo(64), ax(64), ay(64);
  a.multiply(combo.data(), a_combo.data());
  a.multiply(x.data(), ax.data());
  a.multiply(y.data(), ay.data());
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(a_combo[i], alpha * ax[i] + beta * ay[i],
                1e-11 * (1.0 + std::abs(a_combo[i])));
}

TEST_P(SeededTest, TransposeIsAdjoint) {
  // <A x, y> == <x, A^T y> for all x, y.
  const std::uint64_t seed = GetParam();
  const CsrMatrix a = random_sparse(60, seed);
  const std::vector<double> x = random_vector(60, seed + 3);
  const std::vector<double> y = random_vector(60, seed + 4);
  std::vector<double> ax(60), aty(60);
  a.multiply(x.data(), ax.data());
  a.multiply_transpose(y.data(), aty.data());
  EXPECT_NEAR(dot(ax, y), dot(x, aty), 1e-10 * (1.0 + std::abs(dot(ax, y))));
}

TEST_P(SeededTest, CooMatchesDenseAccumulation) {
  const std::uint64_t seed = GetParam();
  const index_t n = 12;
  CooBuilder builder(n, n);
  std::vector<double> dense(static_cast<std::size_t>(n * n), 0.0);
  Xoshiro256 rng(seed);
  for (int t = 0; t < 200; ++t) {
    const index_t i = uniform_index(rng, n);
    const index_t j = uniform_index(rng, n);
    const double v = normal(rng);
    builder.add(i, j, v);
    dense[static_cast<std::size_t>(i * n + j)] += v;
  }
  const CsrMatrix a = builder.to_csr();
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      EXPECT_NEAR(a.at(i, j), dense[static_cast<std::size_t>(i * n + j)],
                  1e-12);
}

TEST_P(SeededTest, SolversLeaveExactSolutionFixed) {
  // x* is a fixed point of every relaxation: starting there, any number of
  // updates must keep the residual at rounding level.
  const std::uint64_t seed = GetParam();
  RandomBandedOptions opt;
  opt.n = 150;
  opt.seed = seed;
  const CsrMatrix a = random_sdd(opt);
  const std::vector<double> x_star = random_vector(a.rows(), seed + 7);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const double scale = nrm2(b);

  {
    std::vector<double> x = x_star;
    RgsOptions ro;
    ro.sweeps = 3;
    ro.seed = seed;
    rgs_solve(a, b, x, ro);
    EXPECT_LT(residual_norm(a, b, x), 1e-10 * scale);
  }
  {
    ThreadPool pool(4);
    std::vector<double> x = x_star;
    AsyncRgsOptions ao;
    ao.sweeps = 3;
    ao.workers = 4;
    ao.seed = seed;
    async_rgs_solve(pool, a, b, x, ao);
    EXPECT_LT(residual_norm(a, b, x), 1e-10 * scale);
  }
  {
    std::vector<double> x = x_star;
    sor_sweep(a, b, x, 1.0);
    EXPECT_LT(residual_norm(a, b, x), 1e-10 * scale);
  }
}

TEST_P(SeededTest, ScaledSolveEquivalence) {
  // Solving B y = z directly (iteration (3)) and through the unit-diagonal
  // transformation must agree through the D map for matched directions.
  const std::uint64_t seed = GetParam();
  RandomBandedOptions opt;
  opt.n = 90;
  opt.seed = seed + 11;
  const CsrMatrix b_mat = random_sdd(opt);
  const std::vector<double> z = random_vector(b_mat.rows(), seed + 13);

  const UnitDiagonalScaling scaling(b_mat);
  const CsrMatrix a = scaling.scale_matrix(b_mat);
  const std::vector<double> dz = scaling.scale_rhs(z);

  RgsOptions ro;
  ro.sweeps = 5;
  ro.seed = seed;
  std::vector<double> y(b_mat.rows(), 0.0);
  rgs_solve(b_mat, z, y, ro);
  std::vector<double> x(b_mat.rows(), 0.0);
  rgs_solve(a, dz, x, ro);
  const std::vector<double> y2 = scaling.unscale_solution(x);
  for (index_t i = 0; i < b_mat.rows(); ++i)
    EXPECT_NEAR(y[i], y2[i], 1e-10 * (1.0 + std::abs(y[i])));
}

TEST_P(SeededTest, PhiloxIsInjectiveOnSample) {
  const Philox4x32 gen(GetParam());
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 4096; ++i) seen.insert(gen.at(i));
  // A collision among 4096 64-bit values is a 2^-40 event: treat as failure.
  EXPECT_EQ(seen.size(), 4096u);
}

TEST_P(SeededTest, BernoulliExtremesMatchReferenceModels) {
  // p = 1: everything visible (== zero delay).  p = 0: nothing in the
  // window visible (== WindowExclusion == FixedDelay).
  const std::uint64_t seed = GetParam();
  const index_t n = 40;
  const CsrMatrix raw = laplacian_1d(n);
  const CsrMatrix a = UnitDiagonalScaling(raw).scale_matrix(raw);
  const std::vector<double> x_star = random_vector(n, seed);
  const std::vector<double> b = rhs_from_solution(a, x_star);
  const std::vector<double> x0(static_cast<std::size_t>(n), 0.0);

  SimOptions opt;
  opt.iterations = static_cast<std::uint64_t>(n) * 4;
  opt.seed = seed;
  opt.step_size = 0.7;
  const index_t tau = 7;

  const BernoulliInclusion all(tau, 1.0, seed);
  const ZeroDelay zero;
  const SimResult r_all = simulate_inconsistent(a, b, x0, x_star, all, opt);
  const SimResult r_zero = simulate_consistent(a, b, x0, x_star, zero, opt);
  for (std::size_t i = 0; i < r_all.x.size(); ++i)
    EXPECT_DOUBLE_EQ(r_all.x[i], r_zero.x[i]);

  const BernoulliInclusion none(tau, 0.0, seed);
  const WindowExclusion excl(tau);
  const SimResult r_none = simulate_inconsistent(a, b, x0, x_star, none, opt);
  const SimResult r_excl = simulate_inconsistent(a, b, x0, x_star, excl, opt);
  for (std::size_t i = 0; i < r_none.x.size(); ++i)
    EXPECT_DOUBLE_EQ(r_none.x[i], r_excl.x[i]);
}

TEST_P(SeededTest, SolveControlsRoundTripIsLossless) {
  // to_async_rgs_options / to_controls must be mutually lossless on every
  // field the two structs share — including ScanMode — for arbitrary
  // random option values, so handle-API and free-function callers can
  // migrate in either direction without silently dropping a knob.
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed * 1000003);
  for (int trial = 0; trial < 32; ++trial) {
    AsyncRgsOptions o;
    o.sweeps = static_cast<int>(uniform_index(rng, 500));
    o.step_size = 0.05 + 1.9 * uniform_real(rng);
    o.seed = rng();
    o.workers = static_cast<int>(uniform_index(rng, 9));
    o.atomic_writes = uniform_real(rng) < 0.5;
    switch (uniform_index(rng, 3)) {
      case 0: o.sync = SyncMode::kFreeRunning; break;
      case 1: o.sync = SyncMode::kBarrierPerSweep; break;
      default: o.sync = SyncMode::kTimedBarrier; break;
    }
    o.scope = uniform_real(rng) < 0.5 ? RandomizationScope::kShared
                                      : RandomizationScope::kOwnerComputes;
    o.scan = uniform_real(rng) < 0.5 ? ScanMode::kPinned
                                     : ScanMode::kReassociated;
    o.sync_interval_seconds = 0.001 + uniform_real(rng);
    o.track_history = uniform_real(rng) < 0.5;
    o.rel_tol = uniform_real(rng) < 0.5 ? 0.0 : uniform_real(rng);

    const AsyncRgsOptions back = to_async_rgs_options(to_controls(o));
    EXPECT_EQ(back.sweeps, o.sweeps);
    EXPECT_EQ(back.step_size, o.step_size);
    EXPECT_EQ(back.seed, o.seed);
    EXPECT_EQ(back.workers, o.workers);
    EXPECT_EQ(back.atomic_writes, o.atomic_writes);
    EXPECT_EQ(back.sync, o.sync);
    EXPECT_EQ(back.scope, o.scope);
    EXPECT_EQ(back.scan, o.scan);
    EXPECT_EQ(back.sync_interval_seconds, o.sync_interval_seconds);
    EXPECT_EQ(back.track_history, o.track_history);
    EXPECT_EQ(back.rel_tol, o.rel_tol);

    // And the other direction, through SolveControls (the async-shared
    // fields; method/max_iterations/inner_sweeps have no AsyncRgsOptions
    // counterpart and are per-call-only knobs of the Krylov paths).
    SolveControls c = to_controls(o);
    const SolveControls round = to_controls(to_async_rgs_options(c));
    EXPECT_EQ(round.sweeps, c.sweeps);
    EXPECT_EQ(round.step_size, c.step_size);
    EXPECT_EQ(round.seed, c.seed);
    EXPECT_EQ(round.workers, c.workers);
    EXPECT_EQ(round.atomic_writes, c.atomic_writes);
    EXPECT_EQ(round.sync, c.sync);
    EXPECT_EQ(round.scope, c.scope);
    EXPECT_EQ(round.scan, c.scan);
    EXPECT_EQ(round.sync_interval_seconds, c.sync_interval_seconds);
    EXPECT_EQ(round.track_history, c.track_history);
    EXPECT_EQ(round.rel_tol, c.rel_tol);
  }
}

TEST_P(SeededTest, BlockScanExecutionSurfacedForRandomControls) {
  // For random controls, scan_requested must echo the request and
  // scan_executed must report the executed reality — which at k = 2 (<= 4)
  // is the request itself, now that the small-K block kernel honours
  // reassociation; the single-RHS path must honour the same request — for
  // any sync mode.
  const std::uint64_t seed = GetParam();
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(5, 5);
  const MultiVector bm = random_multivector(a.rows(), 2, seed + 29);
  const std::vector<double> b = random_vector(a.rows(), seed + 31);
  SpdProblem problem(pool, a);

  Xoshiro256 rng(seed * 7919 + 1);
  for (int trial = 0; trial < 4; ++trial) {
    SolveControls controls;
    controls.sweeps = 1 + static_cast<int>(uniform_index(rng, 3));
    controls.seed = rng();
    controls.workers = 1 + static_cast<int>(uniform_index(rng, 2));
    controls.scan = uniform_real(rng) < 0.5 ? ScanMode::kPinned
                                            : ScanMode::kReassociated;
    switch (uniform_index(rng, 3)) {
      case 0: controls.sync = SyncMode::kFreeRunning; break;
      case 1: controls.sync = SyncMode::kBarrierPerSweep; break;
      default: controls.sync = SyncMode::kTimedBarrier; break;
    }
    controls.sync_interval_seconds = 0.002;

    MultiVector x(a.rows(), 2);
    const SolveOutcome block_out = problem.solve(bm, x, controls);
    EXPECT_EQ(block_out.scan_requested, controls.scan);
    EXPECT_EQ(block_out.scan_executed, controls.scan);

    std::vector<double> xs(a.rows(), 0.0);
    const SolveOutcome single_out = problem.solve(b, xs, controls);
    EXPECT_EQ(single_out.scan_requested, controls.scan);
    EXPECT_EQ(single_out.scan_executed, controls.scan);
  }
}

TEST_P(SeededTest, FcgDirectionsAreAConjugate) {
  // The defining property of flexible CG: each accepted direction is
  // A-orthogonal to the stored previous directions.  We probe it indirectly
  // by verifying monotone A-norm error decrease (guaranteed only if the
  // directions are descent directions in the A-norm).
  const std::uint64_t seed = GetParam();
  ThreadPool pool(2);
  const CsrMatrix a = laplacian_2d(9, 9);
  const std::vector<double> x_star = random_vector(a.rows(), seed);
  const std::vector<double> b = rhs_from_solution(a, x_star);

  RgsPreconditioner pc(a, 2, 1.0, seed);
  FcgOptions fo;
  fo.base.max_iterations = 40;
  fo.base.rel_tol = 1e-14;
  fo.base.track_history = true;
  std::vector<double> x(a.rows(), 0.0);
  const FcgReport rep = fcg_solve(pool, a, b, x, pc, fo);
  ASSERT_GE(rep.base.residual_history.size(), 2u);
  EXPECT_LT(rep.base.residual_history.back(),
            rep.base.residual_history.front());
}

TEST_P(SeededTest, ConsistentDelayModelsHonourAssumptionA3) {
  // A-3 as an *interface contract*: every ConsistentDelayModel must return
  // max(0, j - tau) <= snapshot(j) <= j for arbitrary j, whatever its
  // internal randomization.
  const std::uint64_t seed = GetParam();
  std::vector<std::unique_ptr<ConsistentDelayModel>> models;
  models.push_back(std::make_unique<ZeroDelay>());
  models.push_back(std::make_unique<FixedDelay>(17));
  models.push_back(std::make_unique<UniformDelay>(23, seed));
  models.push_back(std::make_unique<BatchDelay>(12));

  Xoshiro256 rng(seed * 7919 + 1);
  for (const auto& model : models) {
    const std::uint64_t tau = static_cast<std::uint64_t>(model->tau());
    for (int trial = 0; trial < 400; ++trial) {
      // Mix small j (window clipped at zero) with large j.
      const std::uint64_t j = trial < 50
                                  ? static_cast<std::uint64_t>(trial)
                                  : rng() % 1000000;
      const std::uint64_t k = model->snapshot(j);
      EXPECT_LE(k, j) << model->name() << " at j=" << j;
      EXPECT_GE(k, j > tau ? j - tau : 0) << model->name() << " at j=" << j;
    }
  }
}

TEST_P(SeededTest, InconsistentDelayModelsHonourAssumptionA3Prime) {
  // A-3' as an *interface contract*: every InconsistentDelayModel must
  // include all updates older than tau (t + tau < j => includes), and its
  // excluded_in_window output must agree with includes() pointwise.
  const std::uint64_t seed = GetParam();
  std::vector<std::unique_ptr<InconsistentDelayModel>> models;
  models.push_back(
      std::make_unique<PrefixInclusion>(std::make_unique<UniformDelay>(
          19, seed + 1)));
  models.push_back(std::make_unique<BernoulliInclusion>(15, 0.4, seed + 2));
  models.push_back(std::make_unique<WindowExclusion>(11));

  Xoshiro256 rng(seed * 104729 + 3);
  std::vector<std::uint64_t> excluded;
  for (const auto& model : models) {
    const std::uint64_t tau = static_cast<std::uint64_t>(model->tau());
    for (int trial = 0; trial < 150; ++trial) {
      const std::uint64_t j = trial < 30
                                  ? static_cast<std::uint64_t>(trial)
                                  : rng() % 100000;
      // Everything older than tau is always visible.
      for (int probe = 0; probe < 20; ++probe) {
        const std::uint64_t age = tau + 1 + rng() % 1000;
        if (j < age) continue;
        EXPECT_TRUE(model->includes(j, j - age))
            << model->name() << " hides update of age " << age << " > tau="
            << tau << " at j=" << j;
      }
      // excluded_in_window is exactly the complement of includes() on the
      // window.
      const std::uint64_t window_start = j > tau ? j - tau : 0;
      excluded.clear();
      model->excluded_in_window(j, window_start, excluded);
      std::size_t pos = 0;
      for (std::uint64_t t = window_start; t < j; ++t) {
        const bool in_excluded =
            pos < excluded.size() && excluded[pos] == t && (++pos != 0);
        EXPECT_EQ(model->includes(j, t), !in_excluded)
            << model->name() << " disagrees at (j=" << j << ", t=" << t
            << ")";
      }
      EXPECT_EQ(pos, excluded.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededTest,
                         ::testing::Values<std::uint64_t>(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace asyrgs
