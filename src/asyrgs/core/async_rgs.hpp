// AsyRGS — Asynchronous Randomized Gauss-Seidel (the paper's contribution).
//
// P workers share one iterate x in memory and run Algorithm 1 of the paper
// concurrently with no coordination:
//
//   loop:
//     pick a random row r                     (Philox at the global index)
//     read the entries of x touched by A_r    (relaxed atomic loads)
//     gamma <- (b_r - A_r x) / A_rr
//     x_r   <- x_r + beta * gamma             (atomic CAS add: Assumption A-1)
//
// Worker w executes exactly the global iteration indices {w, w+P, w+2P, ...}
// of the Philox stream, so the multiset of random directions is identical
// for every worker count — the methodology the paper uses (via Random123)
// to isolate the price of asynchronism in Figure 2.
//
// Execution modes (Section 5 discussion):
//  * kFreeRunning     - no synchronization at all; Theorem 2(b)/3(b)/4(b)
//                       regime ("long-term linear convergence").
//  * kBarrierPerSweep - workers synchronize after every sweep of n total
//                       updates; Theorem 2(a)/3(a)/4(a) regime ("occasional
//                       synchronization": rate 1 - nu_tau/2kappa per sweep).
//
// Write modes (Figure 2 center/right experiment):
//  * atomic_writes = true  - CAS fetch-add (Assumption A-1 enforced);
//  * atomic_writes = false - racy load+store; lost updates possible.  The
//                            paper observed "no consistent advantage to
//                            using atomic writes" — the benches reproduce
//                            that comparison.
//
// Reads are *inconsistent* (the only variant the paper implements, Section
// 9): enforcing Assumption A-2 in a real shared-memory run would serialize
// the very reads the method tries to overlap.  The bounded-delay simulator
// (simulate/async_sim.hpp) provides the consistent-read model for theorem
// validation.
#pragma once

#include <cstdint>

#include "asyrgs/core/rgs.hpp"
#include "asyrgs/linalg/multivector.hpp"
#include "asyrgs/sparse/csr.hpp"
#include "asyrgs/support/thread_pool.hpp"

namespace asyrgs {

/// Inter-sweep synchronization scheme.
enum class SyncMode {
  kFreeRunning,      ///< fully asynchronous across sweeps
  kBarrierPerSweep,  ///< occasional synchronization (one barrier per sweep)
  /// Time-based occasional synchronization (Section 5 discussion: "a time
  /// based scheme for synchronizing the processors should be sufficient,
  /// and will not suffer from large wait times due to load imbalance"):
  /// workers run freely and rendezvous whenever `sync_interval_seconds` has
  /// elapsed; residual checks/early stopping happen at the rendezvous.
  kTimedBarrier,
};

/// Randomization scope (Section 10 / limitations discussion).
enum class RandomizationScope {
  /// Every worker may update every coordinate (the paper's algorithm; the
  /// analyzed model).
  kShared,
  /// "Owner computes": worker w draws rows only from its contiguous
  /// partition — the restricted randomization the paper proposes for the
  /// distributed-memory setting and as a cache-miss mitigation.  Each
  /// partition runs its own Philox stream; updates still read the shared
  /// iterate across partition boundaries.
  ///
  /// Pair this scope with kBarrierPerSweep or kTimedBarrier when running a
  /// *finite* budget: under kFreeRunning a worker that drains its budget
  /// early leaves its partition frozen against neighbours' mid-solve
  /// values, and no other worker can repair it (shared-scope randomization
  /// self-repairs; partitioned randomization cannot).  With synchronized
  /// sweeps, or when iterating to a residual tolerance, the scope is safe.
  kOwnerComputes,
};

/// Floating-point association of the CSR row scan inside each coordinate
/// update (the dominant FP chain of the scan-bound regime).
enum class ScanMode {
  /// One serial subtraction per nonzero, in column order — the association
  /// every solver in this library shares, which makes equal-seed runs
  /// bit-identical across worker counts and against the sequential
  /// reference.  This is the default and the path the determinism suite
  /// gates.
  kPinned,
  /// "Fast math" opt-in: the row scan runs over multiple independent
  /// accumulators (SIMD gather/FMA lanes where available — see
  /// sparse/csr.hpp), reducing at the end.  Same mathematical sum, a
  /// different rounding order that varies with the host's vector width, so
  /// cross-worker-count (and cross-machine) bit equality is forfeited.  The
  /// convergence guarantees are unaffected: the paper's theorems (and the
  /// AsyRK analysis) assume only bounded staleness of the values read,
  /// never a fixed reduction order.  The direction multiset is identical in
  /// both modes — scan mode never touches direction planning.  Currently
  /// accelerates the single-RHS and least-squares kernels; the block kernel
  /// is column-parallel already and runs the pinned scan in either mode.
  /// Worthwhile on scan-bound (medium/long-row) matrices only — short-row
  /// matrices see a modest slowdown (docs/TUNING.md has the numbers).
  kReassociated,
};

/// Options for the asynchronous solver.
struct AsyncRgsOptions {
  int sweeps = 10;           ///< total updates = sweeps * n across all workers
  double step_size = 1.0;    ///< beta; Theorems 3-4 need beta < 1 for bounds
  std::uint64_t seed = 1;    ///< keys the shared Philox direction stream
  int workers = 0;           ///< team size; 0 = pool capacity
  bool atomic_writes = true; ///< false = racy "non atomic" variant
  SyncMode sync = SyncMode::kFreeRunning;
  RandomizationScope scope = RandomizationScope::kShared;
  /// Row-scan FP association; kPinned preserves bit reproducibility, while
  /// kReassociated trades it for multi-accumulator/SIMD scan throughput.
  ScanMode scan = ScanMode::kPinned;
  /// kTimedBarrier only: seconds between rendezvous points.
  double sync_interval_seconds = 0.05;
  /// With kBarrierPerSweep/kTimedBarrier: track the relative residual at
  /// each synchronization and stop early when it reaches rel_tol (> 0).
  bool track_history = false;
  double rel_tol = 0.0;
};

/// Outcome of an AsyRGS run.
struct AsyncRgsReport {
  int sweeps_done = 0;
  long long updates = 0;
  int workers = 0;
  double seconds = 0.0;  ///< wall time of the iteration loop only
  bool converged = false;
  double final_relative_residual = 0.0;  ///< when history/tolerance active
  std::vector<double> residual_history;  ///< per sweep (barrier mode only)
  /// Row-scan FP association the kernels actually executed.  Equals the
  /// requested AsyncRgsOptions::scan except for the block solver, which
  /// always runs the pinned scan (its inner loops are column-parallel
  /// already) and reports kPinned here even when kReassociated was
  /// requested — see docs/TUNING.md.
  ScanMode scan_used = ScanMode::kPinned;
};

/// Runs AsyRGS on SPD A x = b starting from `x` (updated in place).
/// Requires a strictly positive diagonal (iteration (3) of the paper).
///
/// Thread-safety: `a` and `b` are read-only and may be shared; `x` is
/// written concurrently by the worker team for the duration of the call —
/// do not read it from other threads until the function returns.  The pool
/// hosts one team at a time; a nested call from inside a running team
/// shrinks to a single worker instead of deadlocking.
AsyncRgsReport async_rgs_solve(ThreadPool& pool, const CsrMatrix& a,
                               const std::vector<double>& b,
                               std::vector<double>& x,
                               const AsyncRgsOptions& options = {});

/// Block variant: each coordinate update applies to all columns of X (the
/// paper's 51-right-hand-side experiment).  Atomicity is per scalar entry.
AsyncRgsReport async_rgs_solve_block(ThreadPool& pool, const CsrMatrix& a,
                                     const MultiVector& b, MultiVector& x,
                                     const AsyncRgsOptions& options = {});

}  // namespace asyrgs
