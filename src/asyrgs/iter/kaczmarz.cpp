#include "asyrgs/iter/kaczmarz.hpp"

#include <algorithm>
#include <cmath>

#include "asyrgs/linalg/vector_ops.hpp"
#include "asyrgs/sparse/spmv.hpp"
#include "asyrgs/support/prng.hpp"
#include "asyrgs/support/timer.hpp"

namespace asyrgs {

SolveReport kaczmarz_solve(const CsrMatrix& a, const std::vector<double>& b,
                           std::vector<double>& x, const SolveOptions& options,
                           std::uint64_t seed) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "kaczmarz_solve: shape mismatch");
  const index_t m = a.rows();

  // Row sampling proportional to squared row norms (Strohmer-Vershynin).
  std::vector<double> row_sq(static_cast<std::size_t>(m));
  std::vector<double> cdf(static_cast<std::size_t>(m));
  double acc = 0.0;
  for (index_t i = 0; i < m; ++i) {
    double s = 0.0;
    for (double v : a.row_vals(i)) s += v * v;
    row_sq[i] = s;
    acc += s;
    cdf[i] = acc;
  }
  require(acc > 0.0, "kaczmarz_solve: zero matrix");

  Xoshiro256 rng(seed);
  WallTimer timer;
  SolveReport report;
  const double b_norm = nrm2(b);

  for (int sweep = 1; sweep <= options.max_iterations; ++sweep) {
    for (index_t t = 0; t < m; ++t) {
      const double u = uniform_real(rng) * acc;
      const index_t i = static_cast<index_t>(
          std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
      if (row_sq[i] == 0.0) continue;
      // Shared scan kernel (csr_row_sub_dot): acc = b_i, then one
      // subtraction per nonzero in column order — the identical association
      // the asynchronous KaczmarzUpdate's pinned path runs, so a one-worker
      // async solve reproduces this sequential scan bit for bit.
      const auto cols = a.row_cols(i);
      const auto vals = a.row_vals(i);
      const double gamma =
          csr_row_sub_dot(b[i], cols.data(), vals.data(),
                          static_cast<nnz_t>(cols.size()), x.data()) /
          row_sq[i];
      for (std::size_t s = 0; s < cols.size(); ++s)
        x[cols[s]] += gamma * vals[s];
    }
    report.iterations = sweep;

    if (sweep % options.check_every == 0 ||
        sweep == options.max_iterations) {
      // Residual through the same row-scan kernel as the update (one pass,
      // no intermediate A x vector).
      std::vector<double> r(static_cast<std::size_t>(m));
      for (index_t i = 0; i < m; ++i) {
        const auto cols = a.row_cols(i);
        const auto vals = a.row_vals(i);
        r[i] = csr_row_sub_dot(b[i], cols.data(), vals.data(),
                               static_cast<nnz_t>(cols.size()), x.data());
      }
      const double rel = b_norm > 0.0 ? nrm2(r) / b_norm : nrm2(r);
      report.final_relative_residual = rel;
      if (options.track_history) report.residual_history.push_back(rel);
      if (rel <= options.rel_tol) {
        report.converged = true;
        break;
      }
    }
  }
  report.seconds = timer.seconds();
  return report;
}

SolveReport cgnr_solve(ThreadPool& pool, const CsrMatrix& a,
                       const std::vector<double>& b, std::vector<double>& x,
                       const SolveOptions& options, int workers) {
  require(static_cast<index_t>(b.size()) == a.rows() &&
              static_cast<index_t>(x.size()) == a.cols(),
          "cgnr_solve: shape mismatch");
  const index_t m = a.rows();
  const index_t n = a.cols();
  // The serial SpMVs below dominate; `pool`/`workers` are accepted for
  // interface uniformity and future parallel transposed products.
  (void)pool;
  (void)workers;

  WallTimer timer;
  SolveReport report;

  std::vector<double> r(static_cast<std::size_t>(m));   // b - A x
  std::vector<double> g(static_cast<std::size_t>(n));   // A^T r
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> ap(static_cast<std::size_t>(m));  // A p

  a.multiply(x.data(), r.data());
  for (index_t i = 0; i < m; ++i) r[i] = b[i] - r[i];
  a.multiply_transpose(r.data(), g.data());

  std::vector<double> atb(static_cast<std::size_t>(n));
  a.multiply_transpose(b.data(), atb.data());
  const double g0_norm = nrm2(atb);
  if (g0_norm == 0.0) {
    report.converged = true;
    report.seconds = timer.seconds();
    return report;
  }

  p = g;
  double gg = dot(g, g);

  for (int it = 1; it <= options.max_iterations; ++it) {
    a.multiply(p.data(), ap.data());
    const double ap_ap = dot(ap, ap);
    if (ap_ap <= 0.0) break;
    const double alpha = gg / ap_ap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, r);
    a.multiply_transpose(r.data(), g.data());
    const double gg_next = dot(g, g);
    report.iterations = it;

    const double rel = std::sqrt(gg_next) / g0_norm;
    report.final_relative_residual = rel;
    if (options.track_history) report.residual_history.push_back(rel);
    if (rel <= options.rel_tol) {
      report.converged = true;
      break;
    }
    const double beta = gg_next / gg;
    gg = gg_next;
    for (index_t i = 0; i < n; ++i) p[i] = g[i] + beta * p[i];
  }
  report.seconds = timer.seconds();
  return report;
}

}  // namespace asyrgs
