// Topology-aware row partitioning for graph-structured operators.
//
// The paper's model lets every worker draw any coordinate, but at
// graph-Laplacian scale the resulting random access to the iterate is the
// hot-path cost: each update touches a neighbourhood of x that shares no
// cache lines with the previous one.  This header provides the locality
// layer (ROADMAP open item 2): treat the matrix as a graph, order its rows
// by reverse Cuthill-McKee so neighbourhoods become contiguous, cut the
// ordered rows into cache-line-aligned partitions balanced by nonzeros, and
// expose each partition's halo (the boundary rows owned by neighbours) as
// the stochastic-steal set the partitioned direction plan draws from
// (core/engine.hpp).
//
// The RCM ordering is a property of the matrix graph alone — it does not
// depend on the partition count — so a prepared handle computes it once
// (PartitionAnalysis) and serves cuts for any requested count from the same
// analysis.  Cuts are O(nnz) and cached per count.
//
// All of this assumes a structurally symmetric matrix (an undirected graph);
// SpdProblem, the only consumer, validates symmetry already.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "asyrgs/sparse/csr.hpp"

namespace asyrgs {

/// Reverse Cuthill-McKee ordering of the rows of `a` (adjacency = off-
/// diagonal sparsity pattern, assumed structurally symmetric).  Returns a
/// permutation with perm[new_row] = old_row.  Each connected component is
/// ordered by a breadth-first search from a pseudo-peripheral vertex
/// (George-Liu double BFS) visiting neighbours in increasing-degree order,
/// and the concatenated order is reversed — the classic bandwidth-reducing
/// ordering, deterministic for a given matrix.
[[nodiscard]] std::vector<index_t> rcm_order(const CsrMatrix& a);

/// Symmetric permutation P A P^T: new row i is old row perm[i] with columns
/// remapped through the inverse permutation and re-sorted.  `perm` must be a
/// permutation of [0, a.rows()); `a` must be square.
[[nodiscard]] CsrMatrix permute_symmetric(const CsrMatrix& a,
                                          const std::vector<index_t>& perm);

/// Rows per cache line of doubles: partition boundaries are rounded to this
/// multiple so no two partitions' owned slices of the iterate share a cache
/// line (the layout half of the locality story — with the iterate in
/// cache-line-aligned storage, cross-partition false sharing is confined to
/// deliberate halo steals).
inline constexpr index_t kPartitionAlignRows =
    static_cast<index_t>(kCacheLineBytes / sizeof(double));

/// One contiguous cut of the permuted rows [0, n) into partitions, plus each
/// partition's halo.  Partition p owns [lo[p], lo[p+1]); halo[p] lists the
/// rows outside that range adjacent (in the matrix graph) to a row inside
/// it, sorted ascending — the candidate set for boundary stealing.
struct GraphPartition {
  std::vector<index_t> lo;                 ///< count()+1 boundaries; lo[0]=0
  std::vector<std::vector<index_t>> halo;  ///< per-partition steal sets

  [[nodiscard]] int count() const noexcept {
    return static_cast<int>(lo.size()) - 1;
  }
  [[nodiscard]] index_t lo_of(int p) const noexcept {
    return lo[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] index_t size_of(int p) const noexcept {
    return lo[static_cast<std::size_t>(p) + 1] -
           lo[static_cast<std::size_t>(p)];
  }
};

/// Cuts the rows of `permuted` into `count` contiguous partitions balanced
/// by nonzeros, with every interior boundary rounded up to a multiple of
/// kPartitionAlignRows, and computes the halos.  count is clamped to
/// [1, rows]; partitions may come out empty when count exceeds
/// rows / kPartitionAlignRows (their streams simply never draw).
[[nodiscard]] GraphPartition cut_rows(const CsrMatrix& permuted, int count);

/// Prepare-time partition analysis of one matrix: the RCM permutation, the
/// permuted operator, and a per-count cut cache.  Immutable after
/// construction except for the cache, which is internally synchronized —
/// one analysis may be shared (shared_ptr) by every clone of a prepared
/// handle, exactly like the transpose cache.
class PartitionAnalysis {
 public:
  /// Orders `a` by RCM and materializes P A P^T.  O(nnz log nnz).
  explicit PartitionAnalysis(const CsrMatrix& a);

  /// perm()[new_row] = old_row.
  [[nodiscard]] const std::vector<index_t>& perm() const noexcept {
    return perm_;
  }
  /// inv_perm()[old_row] = new_row.
  [[nodiscard]] const std::vector<index_t>& inv_perm() const noexcept {
    return inv_perm_;
  }
  /// The RCM-permuted operator (full width; consumers narrow it themselves
  /// when their storage policy asks for it).
  [[nodiscard]] const CsrMatrix& permuted() const noexcept {
    return permuted_;
  }

  /// The cut for `count` partitions, built on first request and cached.
  /// Thread-safe: concurrent callers (service shards sharing one analysis)
  /// serialize on an internal mutex.
  [[nodiscard]] std::shared_ptr<const GraphPartition> cut(int count) const;

 private:
  std::vector<index_t> perm_;
  std::vector<index_t> inv_perm_;
  CsrMatrix permuted_;
  mutable std::mutex mutex_;
  mutable std::map<int, std::shared_ptr<const GraphPartition>> cuts_;
};

}  // namespace asyrgs
