#include "asyrgs/sampling/direction_sampler.hpp"

#include <cmath>
#include <cstring>
#include <limits>

namespace asyrgs {

namespace {

/// Fixed-point acceptance threshold: probability p in [0, 1] scaled to
/// [0, 2^64], saturating at UINT64_MAX (a saturated bucket accepts every
/// remainder except 2^64-1 itself, whose alias is the bucket again — so
/// saturation is exact, not a 2^-64 leak).
std::uint64_t to_threshold(double p) noexcept {
  if (!(p > 0.0)) return 0;
  if (p >= 1.0) return std::numeric_limits<std::uint64_t>::max();
  const double scaled = std::ldexp(p, 64);
  if (scaled >= 18446744073709551616.0)  // 2^64
    return std::numeric_limits<std::uint64_t>::max();
  return static_cast<std::uint64_t>(scaled);
}

}  // namespace

const char* to_string(SamplingPolicy policy) noexcept {
  switch (policy) {
    case SamplingPolicy::kUniform:
      return "uniform";
    case SamplingPolicy::kWeighted:
      return "weighted";
    case SamplingPolicy::kResidual:
      return "residual";
  }
  return "unknown";
}

void AliasTable::build(const double* weights, index_t n) {
  require(n > 0, "AliasTable: need at least one direction");
  const auto un = static_cast<std::size_t>(n);
  threshold_.assign(un, std::numeric_limits<std::uint64_t>::max());
  alias_.resize(un);
  for (std::size_t i = 0; i < un; ++i) alias_[i] = static_cast<index_t>(i);

  double total = 0.0;
  for (std::size_t i = 0; i < un; ++i) {
    const double w = weights[i];
    if (w > 0.0) total += w;
  }
  // Degenerate weights (all zero, or a non-finite sum) fall back to the
  // uniform table rather than throwing: a residual refresh that lands on a
  // numerically zero residual must not kill the solve.
  if (!(total > 0.0) || !std::isfinite(total)) return;

  // Index-ordered two-stack Vose: scaled[i] = w_i * n / total; buckets
  // below 1 borrow their tail from a bucket above 1.  Stack order (highest
  // index first off each stack) is part of the determinism contract pinned
  // by the golden hashes — do not reorder.
  std::vector<double> scaled(un);
  std::vector<index_t> small, large;
  small.reserve(un);
  large.reserve(un);
  const double scale = static_cast<double>(n) / total;
  for (std::size_t i = 0; i < un; ++i) {
    const double w = weights[i];
    scaled[i] = w > 0.0 ? w * scale : 0.0;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<index_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const auto s = static_cast<std::size_t>(small.back());
    small.pop_back();
    const auto l = static_cast<std::size_t>(large.back());
    threshold_[s] = to_threshold(scaled[s]);
    alias_[s] = static_cast<index_t>(l);
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(static_cast<index_t>(l));
    }
  }
  // Leftovers on either stack are numerically exactly 1 (rounding left
  // them on the wrong side): full buckets, alias to self — already the
  // assign() defaults, nothing to write.
}

double AliasTable::probability(index_t i) const noexcept {
  // P(i) = P(bucket == i accepts) + sum over buckets aliased to i of their
  // rejection mass; each bucket's preimage has measure 1/n exactly (the
  // multiply reduction partitions [0, 2^64) into n near-equal intervals).
  const double inv_n = 1.0 / static_cast<double>(alias_.size());
  const auto ui = static_cast<std::size_t>(i);
  double p = inv_n * std::ldexp(static_cast<double>(threshold_[ui]), -64);
  for (std::size_t b = 0; b < alias_.size(); ++b)
    if (alias_[b] == i && b != ui)
      p += inv_n *
           (1.0 - std::ldexp(static_cast<double>(threshold_[b]), -64));
  return p;
}

std::uint64_t AliasTable::fnv1a() const noexcept {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xFFu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<std::uint64_t>(alias_.size()));
  for (std::uint64_t t : threshold_) mix(t);
  for (index_t a : alias_) mix(static_cast<std::uint64_t>(a));
  return h;
}

DirectionSampler DirectionSampler::uniform(index_t n) {
  require(n > 0, "DirectionSampler: need at least one direction");
  return DirectionSampler(SamplingPolicy::kUniform, n);
}

DirectionSampler DirectionSampler::weighted(const double* weights, index_t n) {
  DirectionSampler s(SamplingPolicy::kWeighted, n);
  s.rebuild(weights, n);
  return s;
}

DirectionSampler DirectionSampler::residual(const double* weights, index_t n) {
  DirectionSampler s(SamplingPolicy::kResidual, n);
  s.rebuild(weights, n);
  return s;
}

void DirectionSampler::map_in_place(index_t* out,
                                    std::size_t count) const noexcept {
  static_assert(sizeof(index_t) == sizeof(std::uint64_t),
                "raw Philox words are mapped in place through the index "
                "buffer");
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &out[i], sizeof(bits));
    out[i] = table_.map(bits);
  }
}

void DirectionSampler::rebuild(const double* weights, index_t n) {
  require(n == n_, "DirectionSampler: rebuild must keep the direction count");
  require(policy_ != SamplingPolicy::kUniform,
          "DirectionSampler: the uniform policy has no table to rebuild");
  table_.build(weights, n);
  ++rebuilds_;
}

}  // namespace asyrgs
