// Minimal command-line option parser shared by benchmarks and examples.
//
// Supported syntax: `--name value`, `--name=value`, and bare boolean flags
// `--name`.  Every option is registered with a default and a help string so
// `--help` output is generated automatically and unknown options are
// rejected (typos in benchmark sweeps are otherwise silent and costly).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "asyrgs/support/common.hpp"

namespace asyrgs {

/// Declarative option parser.  Usage:
///
///   CliParser cli("fig1_convergence", "Residual vs sweep, RGS vs CG");
///   auto n       = cli.add_int("n", 4096, "matrix dimension");
///   auto threads = cli.add_int_list("threads", {1, 2, 4}, "thread sweep");
///   cli.parse(argc, argv);            // exits(0) on --help
///   use(n.value(), threads.value());
class CliParser {
 public:
  /// Handle to a parsed option's value; valid after parse().  Handles point
  /// into std::deque stores, so adding further options never invalidates
  /// them.
  template <typename T>
  class Option {
   public:
    [[nodiscard]] const T& value() const { return *slot_; }
    [[nodiscard]] const T& operator*() const { return *slot_; }

   private:
    friend class CliParser;
    explicit Option(const T* slot) : slot_(slot) {}
    const T* slot_;
  };

  CliParser(std::string program, std::string description);

  Option<std::int64_t> add_int(const std::string& name, std::int64_t def,
                               const std::string& help);
  Option<double> add_double(const std::string& name, double def,
                            const std::string& help);
  Option<std::string> add_string(const std::string& name, std::string def,
                                 const std::string& help);
  Option<bool> add_flag(const std::string& name, const std::string& help);
  Option<std::vector<std::int64_t>> add_int_list(
      const std::string& name, std::vector<std::int64_t> def,
      const std::string& help);

  /// Parses argv; throws asyrgs::Error on unknown options or bad values.
  /// Prints usage and std::exit(0)s when --help is present.
  void parse(int argc, const char* const* argv);

  /// Writes the generated usage text.
  void print_help(std::ostream& out) const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag, kIntList };
  struct Entry {
    Kind kind;
    std::string help;
    std::string default_text;
    void* slot;  // into the matching std::deque store below
  };

  void register_entry(const std::string& name, Kind kind,
                      const std::string& help, const std::string& default_text,
                      void* slot);
  void set_value(const std::string& name, const std::string& text);

  std::string program_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> order_;  // registration order, for --help
  std::deque<std::int64_t> ints_;
  std::deque<double> doubles_;
  std::deque<std::string> strings_;
  std::deque<bool> flags_;
  std::deque<std::vector<std::int64_t>> int_lists_;
};

/// Parses "1,2,4,8" into a list of integers; throws on malformed input.
std::vector<std::int64_t> parse_int_list(const std::string& text);

}  // namespace asyrgs
