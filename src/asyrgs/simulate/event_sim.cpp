#include "asyrgs/simulate/event_sim.hpp"

#include <algorithm>
#include <queue>

#include "asyrgs/support/prng.hpp"

namespace asyrgs {

EventDrivenSchedule EventDrivenSchedule::build(const CsrMatrix& a,
                                               const EventSimOptions& opt) {
  require(a.square(), "EventDrivenSchedule: matrix must be square");
  require(opt.processors >= 1, "EventDrivenSchedule: need >= 1 processor");
  require(opt.iterations > 0, "EventDrivenSchedule: need iterations > 0");
  require(opt.jitter >= 0.0 && opt.jitter < 1.0,
          "EventDrivenSchedule: jitter must be in [0, 1)");
  require(opt.overhead >= 0.0,
          "EventDrivenSchedule: overhead must be non-negative");

  const index_t n = a.rows();
  const Philox4x32 directions(opt.seed);
  const Philox4x32 jitter_stream(splitmix64(opt.jitter_seed ^ 0x71773Eull));

  // Min-heap of (next-free time, processor).  Ties broken by processor id
  // for determinism.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<Slot>> free_at;
  for (int p = 0; p < opt.processors; ++p) free_at.emplace(0.0, p);

  // In-flight updates: (finish time, global index), kept sorted by lazily
  // pruning against the current start time.  Size <= processors.
  std::vector<std::pair<double, std::uint64_t>> inflight;

  EventDrivenSchedule sched;
  sched.processors_ = opt.processors;
  sched.excluded_.resize(opt.iterations);

  double delay_sum = 0.0;
  std::uint64_t delay_count = 0;
  double inflight_sum = 0.0;

  for (std::uint64_t j = 0; j < opt.iterations; ++j) {
    const auto [start, proc] = free_at.top();
    free_at.pop();

    // Everything that finished by `start` becomes visible; the rest is the
    // exclusion set of update j.
    inflight.erase(std::remove_if(inflight.begin(), inflight.end(),
                                  [start](const auto& e) {
                                    return e.first <= start;
                                  }),
                   inflight.end());
    auto& excluded = sched.excluded_[j];
    excluded.reserve(inflight.size());
    for (const auto& [finish, t] : inflight) {
      excluded.push_back(t);
      const index_t age = static_cast<index_t>(j - t);
      sched.stats_.max_delay = std::max(sched.stats_.max_delay, age);
      delay_sum += static_cast<double>(age);
      ++delay_count;
    }
    std::sort(excluded.begin(), excluded.end());
    inflight_sum += static_cast<double>(inflight.size()) + 1.0;

    // Cost of this update: overhead + row length, jittered.
    const index_t r = directions.index_at(j, n);
    const double base =
        opt.overhead + static_cast<double>(a.row_nnz(r));
    const double factor =
        1.0 + opt.jitter * (2.0 * jitter_stream.real_at(j) - 1.0);
    const double finish = start + base * factor;

    inflight.emplace_back(finish, j);
    free_at.emplace(finish, proc);
  }

  sched.stats_.mean_delay =
      delay_count > 0 ? delay_sum / static_cast<double>(delay_count) : 0.0;
  sched.stats_.mean_inflight =
      inflight_sum / static_cast<double>(opt.iterations);
  return sched;
}

bool EventDrivenSchedule::includes(std::uint64_t j, std::uint64_t t) const {
  ASYRGS_ASSERT(j < excluded_.size());
  const auto& ex = excluded_[j];
  return !std::binary_search(ex.begin(), ex.end(), t);
}

std::string EventDrivenSchedule::name() const {
  return "event-driven(P=" + std::to_string(processors_) +
         ",tau=" + std::to_string(stats_.max_delay) + ")";
}

void EventDrivenSchedule::excluded_in_window(
    std::uint64_t j, std::uint64_t window_start,
    std::vector<std::uint64_t>& out) const {
  ASYRGS_ASSERT(j < excluded_.size());
  for (std::uint64_t t : excluded_[j])
    if (t >= window_start) out.push_back(t);
}

}  // namespace asyrgs
