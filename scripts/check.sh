#!/bin/sh
# Runs the same matrix as .github/workflows/ci.yml locally:
#   1. Release build + ctest (system GoogleTest when installed)
#   2. Release build + ctest against the vendored minigtest shim
#   3. AddressSanitizer build + ctest (library, tests, tools)
# Usage: scripts/check.sh [jobs]   (default: nproc)
set -eu

jobs=${1:-$(nproc 2>/dev/null || echo 2)}
cd "$(dirname "$0")/.."

echo "== [1/3] default build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

echo "== [2/3] vendored minigtest build =="
cmake -B build-shim -S . -DCMAKE_BUILD_TYPE=Release -DASYRGS_FORCE_MINIGTEST=ON
cmake --build build-shim -j "$jobs"
(cd build-shim && ctest --output-on-failure -j "$jobs")

echo "== [3/3] AddressSanitizer build =="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DASYRGS_SANITIZE=address -DASYRGS_BUILD_BENCH=OFF \
  -DASYRGS_BUILD_EXAMPLES=OFF
cmake --build build-asan -j "$jobs"
(cd build-asan && ctest --output-on-failure -j "$jobs")

echo "All checks passed."
