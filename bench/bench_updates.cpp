// Updates/second of the asynchronous update engine, current vs the pre-PR2
// baseline, pinned vs reassociated scan mode, plus the residual-check cost
// at synchronization points.
//
// This driver anchors the repo's measured performance trajectory: it emits a
// machine-readable BENCH_<label>.json (schema documented in bench/README.md)
// so every perf PR can record before/after numbers produced by the same
// harness (`scripts/bench.sh`).
//
// The baseline is a faithful in-tree copy of the engine's hot loop as it
// stood before the PR-2 overhaul (namespace `legacy` below): one full
// 10-round Philox evaluation per direction draw, a runtime `atomic_writes`
// branch per update, a 64-bit modulo per update for the yield cadence, an
// unconditionally constructed per-worker fallback DirectionPlan, and a
// serial residual on worker 0 at synchronization points.  Keeping the old
// loop compilable here (rather than diffing against an old git checkout)
// lets one binary measure both engines on identical inputs, and doubles as
// the "generic kernel" reference for the micro-benchmarks.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "asyrgs/support/atomics.hpp"
#include "asyrgs/support/barrier.hpp"
#include "asyrgs/support/prng.hpp"
#include "bench_common.hpp"

using namespace asyrgs;
using namespace asyrgs::bench;

namespace legacy {

/// Pre-PR2 coordinate update: runtime atomicity branch, span-based row scan.
inline void update_coordinate(const CsrMatrix& a, const double* b, double* x,
                              index_t r, double beta, double inv_diag,
                              bool atomic_writes) {
  double acc = b[r];
  const auto cols = a.row_cols(r);
  const auto vals = a.row_vals(r);
  for (std::size_t t = 0; t < cols.size(); ++t)
    acc -= vals[t] * atomic_load_relaxed(x[cols[t]]);
  const double delta = beta * (acc * inv_diag);
  if (atomic_writes)
    atomic_add_relaxed(x[r], delta);
  else
    racy_add(x[r], delta);
}

/// Pre-PR2 direction schedule: one full Philox evaluation per pick().
class DirectionPlan {
 public:
  DirectionPlan(const AsyncRgsOptions& options, index_t n, int team)
      : n_(n), team_(team), shared_(options.seed) {}

  [[nodiscard]] index_t per_sweep(int w) const {
    return (n_ - 1 - static_cast<index_t>(w)) / team_ + 1;
  }

  [[nodiscard]] std::uint64_t total_updates(int w, int sweeps) const {
    const std::uint64_t total = static_cast<std::uint64_t>(sweeps) *
                                static_cast<std::uint64_t>(n_);
    if (static_cast<std::uint64_t>(w) >= total) return 0;
    return (total - 1 - static_cast<std::uint64_t>(w)) /
               static_cast<std::uint64_t>(team_) +
           1;
  }

  [[nodiscard]] index_t pick(int w, std::uint64_t k) const {
    const std::uint64_t j =
        static_cast<std::uint64_t>(w) + k * static_cast<std::uint64_t>(team_);
    return shared_.index_at(j, n_);
  }

  [[nodiscard]] index_t pick_in_sweep(int w, int sweep, index_t t) const {
    const std::uint64_t j = static_cast<std::uint64_t>(sweep) *
                                static_cast<std::uint64_t>(n_) +
                            static_cast<std::uint64_t>(w) +
                            static_cast<std::uint64_t>(t) *
                                static_cast<std::uint64_t>(team_);
    return shared_.index_at(j, n_);
  }

 private:
  index_t n_;
  int team_;
  Philox4x32 shared_;
};

/// Pre-PR2 free-running engine (shared randomization scope).
AsyncRgsReport solve_free_running(ThreadPool& pool, const CsrMatrix& a,
                                  const std::vector<double>& b,
                                  std::vector<double>& x,
                                  const AsyncRgsOptions& options) {
  const index_t n = a.rows();
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = 1.0 / d;
  const double beta = options.step_size;
  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();

  AsyncRgsReport report;
  report.workers = workers;
  WallTimer timer;
  const DirectionPlan plan(options, n, workers);
  pool.run_team(workers, [&](int id, int team) {
    const DirectionPlan* my_plan = &plan;
    DirectionPlan fallback(options, n, team);  // unconditional, as before
    if (team != workers) my_plan = &fallback;
    const std::uint64_t my_total = my_plan->total_updates(id, options.sweeps);
    const std::uint64_t stride = static_cast<std::uint64_t>(
        std::max<index_t>(my_plan->per_sweep(id), 1));
    for (std::uint64_t k = 0; k < my_total; ++k) {
      const index_t r = my_plan->pick(id, k);
      update_coordinate(a, b.data(), x.data(), r, beta, inv_diag[r],
                        options.atomic_writes);
      if (team > 1 && (k + 1) % stride == 0) std::this_thread::yield();
    }
  });
  report.sweeps_done = options.sweeps;
  report.updates = static_cast<long long>(options.sweeps) *
                   static_cast<long long>(n);
  report.seconds = timer.seconds();
  return report;
}

/// Pre-PR2 barrier-per-sweep engine with the serial worker-0 residual.
AsyncRgsReport solve_barrier(ThreadPool& pool, const CsrMatrix& a,
                             const std::vector<double>& b,
                             std::vector<double>& x,
                             const AsyncRgsOptions& options) {
  const index_t n = a.rows();
  std::vector<double> inv_diag = a.diagonal();
  for (double& d : inv_diag) d = 1.0 / d;
  const double beta = options.step_size;
  int workers = options.workers > 0 ? options.workers : pool.size();
  if (workers > pool.size()) workers = pool.size();
  const bool check_enabled = options.track_history || options.rel_tol > 0.0;

  AsyncRgsReport report;
  report.workers = workers;
  WallTimer timer;
  const DirectionPlan plan(options, n, workers);
  SpinBarrier barrier(workers);
  std::atomic<bool> stop{false};
  std::atomic<int> sweeps_done{0};
  pool.run_team(workers, [&](int id, int team) {
    const bool use_barrier = (team == workers && team > 1);
    const DirectionPlan* my_plan = &plan;
    DirectionPlan fallback(options, n, team);
    if (team != workers) my_plan = &fallback;
    const index_t mine = my_plan->per_sweep(id);
    for (int sweep = 0; sweep < options.sweeps; ++sweep) {
      for (index_t t = 0; t < mine; ++t) {
        const index_t r = my_plan->pick_in_sweep(id, sweep, t);
        update_coordinate(a, b.data(), x.data(), r, beta, inv_diag[r],
                          options.atomic_writes);
      }
      if (use_barrier) barrier.arrive_and_wait();
      if (id == 0) {
        sweeps_done.store(sweep + 1, std::memory_order_relaxed);
        if (check_enabled) {
          const double rel = relative_residual(a, b, x);  // serial
          report.final_relative_residual = rel;
          if (options.track_history) report.residual_history.push_back(rel);
          if (options.rel_tol > 0.0 && rel <= options.rel_tol) {
            report.converged = true;
            stop.store(true, std::memory_order_release);
          }
        }
      }
      if (use_barrier) barrier.arrive_and_wait();
      if (stop.load(std::memory_order_acquire)) break;
    }
  });
  report.sweeps_done = sweeps_done.load(std::memory_order_relaxed);
  report.updates = static_cast<long long>(report.sweeps_done) *
                   static_cast<long long>(n);
  report.seconds = timer.seconds();
  return report;
}

}  // namespace legacy

namespace {

struct Measurement {
  std::string workload;  // "gram_engine_bound" | "gram_scan_bound"
  std::string engine;    // "legacy" | "current"
  std::string mode;      // "free_running" | "barrier_residual" |
                         // "prepare_amortization" | "serving_throughput" |
                         // "storage_policy" | "block_small_k" |
                         // "sampling_policy" | "kaczmarz_row_action"
  std::string scan;      // "pinned" | "reassociated" (legacy is always pinned)
  std::string storage;   // CSR policy the row's kernels ran against (v7):
                         // "int64_double" | "int32_double" | "int32_mixed"
  std::string sampling;  // direction distribution (v9, sampling_policy and
                         // kaczmarz_row_action rows): "uniform" | "weighted"
                         // | "residual"
  int workers = 0;
  long long updates = 0;
  double seconds = 0.0;
  double updates_per_second = 0.0;
  double residual_cost_per_sweep = 0.0;  // barrier_residual rows only
  std::string api;     // prepare_amortization rows: "cold" | "cold_uncached"
                       // | "prepared"
  std::string family;  // prepare_amortization rows: "spd" | "lsq"
  int shards = 0;                   // serving_throughput rows only
  double solves_per_second = 0.0;   // serving_throughput rows only
  int block_k = 0;                  // block_small_k rows only: rhs count
};

/// One storage-policy comparison (schema v7): prepared-handle updates/second
/// under each CSR storage policy, per workload and scan mode, at 1 worker.
struct StoragePoint {
  std::string workload;
  std::string scan;
  double int64_ups = 0.0;
  double int32_ups = 0.0;
  double mixed_ups = 0.0;
};

/// One sampling-policy comparison (schema v9): prepared-handle
/// updates/second under each direction-draw distribution, per workload, at
/// 1 worker under barrier-per-sweep (the residual policy needs the
/// rendezvous for its table refresh, so every policy is measured under the
/// identical sync regime).  The deltas are pure draw-path cost: uniform is
/// the raw 128-bit-multiply reduction, weighted adds one alias-table lookup
/// per draw, residual adds the periodic rebuild on top.
struct SamplingPoint {
  std::string workload;
  double uniform_ups = 0.0;
  double weighted_ups = 0.0;
  double residual_ups = 0.0;
};

/// Cold-vs-prepared solve latency for one solver family (schema v4; the
/// uncached-cold row since v5): the serving regime fixes the matrix and
/// answers many short solves, so the interesting ratio is one-shot API
/// latency (handle construction + solve, re-paying
/// validation/denominators/scratch per call) over prepared-handle latency
/// (solve only).  `cold` shares the matrix-level transpose cache (warm
/// after the prepared handle's construction); `cold_uncached` rebuilds
/// against a *fresh* CsrMatrix per solve, so the O(nnz) transpose build is
/// back in the per-call path — the true pre-PR4 one-shot cost profile (the
/// ROADMAP gap this row closes).
struct AmortizationPoint {
  double prepare_seconds = 0.0;   // one-time handle construction (cache cold)
  double cold_seconds = 0.0;      // per-solve: construct-and-solve, warm cache
  double cold_uncached_seconds = 0.0;  // per-solve: fresh matrix, cold cache
  double prepared_seconds = 0.0;  // per-solve: prepared handle
  [[nodiscard]] double speedup() const {
    return prepared_seconds > 0.0 ? cold_seconds / prepared_seconds : 0.0;
  }
  [[nodiscard]] double uncached_speedup() const {
    return prepared_seconds > 0.0 ? cold_uncached_seconds / prepared_seconds
                                  : 0.0;
  }
};

/// One sharded-serving measurement (schema v5): aggregate completed
/// requests per second for a mixed SPD/LSQ stream at a given shard count.
struct ServingPoint {
  int shards = 0;
  double seconds = 0.0;
  double solves_per_second = 0.0;
};

/// Open-loop overload measurement (schema v6): arrivals paced at ~2x the
/// measured single-shard capacity against a small admission bound, so the
/// service *must* shed load.  Records how gracefully it did: the reject
/// rate and the latency tail of what it chose to serve.
struct OverloadPoint {
  double arrival_rate = 0.0;   // offered arrivals per second (target)
  double duration_seconds = 0.0;
  long long offered = 0;
  long long rejected = 0;      // admission rejects + deadline sheds
  double reject_rate = 0.0;
  double p50_seconds = 0.0;    // latency of served requests, enqueue->done
  double p99_seconds = 0.0;
};

struct WorkloadSpec {
  std::string name;
  SocialGramOptions gram;
  index_t n = 0;
  nnz_t nnz = 0;
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s)
    if (c == '"' || c == '\\')
      (out += '\\') += c;
    else
      out += c;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("bench_updates",
                "Updates/second: current engine vs the pre-PR2 baseline");
  // Headline workload: a short-row Gram (mean ~7 nnz/row) where the engine
  // overhead — direction draws, dispatch, synchronization bookkeeping — is
  // the dominant per-update cost.  The dense-row reference workload below
  // isolates the complementary regime where the CSR row scan (whose
  // floating-point association is pinned for bit-reproducibility) bounds
  // the update, so engine improvements show up less.
  auto terms = cli.add_int("terms", 6000, "headline Gram dimension");
  auto documents = cli.add_int("documents", 9000, "headline corpus size");
  auto doc_length =
      cli.add_int("doc-length", 3, "headline mean terms per document");
  auto seed = cli.add_int("seed", 42, "corpus generator seed");
  // Long runs + many repetitions: on an oversubscribed 1-core host the
  // 4-worker point is scheduler-noise dominated, and the minimum over short
  // runs is unstable.
  auto sweeps = cli.add_int("sweeps", 400, "sweeps per timed run");
  auto repeats = cli.add_int("repeats", 9, "timing repetitions (min taken)");
  auto threads_opt =
      cli.add_int_list("threads", {1, 2, 4}, "worker counts to measure");
  auto headline =
      cli.add_int("headline-workers", 4, "worker count for the headline ratio");
  auto label = cli.add_string("label", "dev", "label for the JSON file");
  auto out_path =
      cli.add_string("out", "", "output path (default BENCH_<label>.json)");
  auto git_rev = cli.add_string("git", "", "git revision recorded in the JSON");
  auto skip_scan = cli.add_flag(
      "skip-scan-workload", "measure only the engine-bound headline workload");
  auto smoke = cli.add_flag("smoke", "tiny workload for CI smoke runs");
  cli.parse(argc, argv);

  const int n_sweeps = *smoke ? 40 : static_cast<int>(*sweeps);
  const int n_repeats = *smoke ? 2 : static_cast<int>(*repeats);

  std::vector<WorkloadSpec> workloads;
  {
    WorkloadSpec engine_bound;
    engine_bound.name = "gram_engine_bound";
    engine_bound.gram.terms = *smoke ? 1500 : *terms;
    engine_bound.gram.documents = *smoke ? 2200 : *documents;
    engine_bound.gram.mean_doc_length = *doc_length;
    engine_bound.gram.ridge = 0.5;
    engine_bound.gram.topics = *smoke ? 20 : 100;
    engine_bound.gram.topic_concentration = 0.92;
    engine_bound.gram.seed = static_cast<std::uint64_t>(*seed);
    workloads.push_back(engine_bound);
    if (!*skip_scan) {
      WorkloadSpec scan_bound;
      scan_bound.name = "gram_scan_bound";
      scan_bound.gram.terms = *smoke ? 600 : 3000;
      scan_bound.gram.documents = *smoke ? 2400 : 12000;
      scan_bound.gram.mean_doc_length = 10;
      scan_bound.gram.ridge = 0.5;
      scan_bound.gram.topics = *smoke ? 20 : 100;
      scan_bound.gram.topic_concentration = 0.92;
      scan_bound.gram.seed = static_cast<std::uint64_t>(*seed);
      workloads.push_back(scan_bound);
    }
  }

  print_banner("bench_updates", "updates/second trajectory (perf PRs)");

  // The pool is sized to the requested sweep, not the hardware, so the
  // 4-worker point exists even on small CI machines (oversubscribed workers
  // timeshare; both engines are measured under the identical regime).
  std::vector<int> worker_sweep;
  for (std::int64_t t : *threads_opt)
    worker_sweep.push_back(static_cast<int>(t));
  if (worker_sweep.empty()) worker_sweep = {1, 2, 4};
  // The headline ratios need their worker counts measured; without this a
  // custom --threads list omitting them would silently record speedup 0.
  if (std::find(worker_sweep.begin(), worker_sweep.end(),
                static_cast<int>(*headline)) == worker_sweep.end())
    worker_sweep.push_back(static_cast<int>(*headline));
  if (std::find(worker_sweep.begin(), worker_sweep.end(), 1) ==
      worker_sweep.end())
    worker_sweep.push_back(1);  // scan_headline is measured at 1 worker
  int max_workers = 1;
  for (int w : worker_sweep) max_workers = std::max(max_workers, w);
  ThreadPool pool(max_workers);

  std::vector<Measurement> results;
  Table table({"workload", "workers", "engine", "mode", "scan", "updates/s",
               "ns/update", "check_s/sweep"});

  AmortizationPoint amor_spd, amor_lsq;
  const int amor_sweeps = *smoke ? 2 : 4;
  std::vector<StoragePoint> storage_points;
  std::vector<SamplingPoint> sampling_points;
  double kaczmarz_uniform_ups = 0.0, kaczmarz_weighted_ups = 0.0;
  index_t kaczmarz_rows = 0, kaczmarz_cols = 0;
  nnz_t kaczmarz_nnz = 0;
  double block_pinned_ups = 0.0, block_reassoc_ups = 0.0;
  std::string block_scan_executed = "pinned";
  const int block_k = 4;  // widest count the reassociated block kernel serves
  std::vector<ServingPoint> serving;
  OverloadPoint overload;
  const int serve_requests = *smoke ? 8 : 40;
  const int serve_sweeps = *smoke ? 2 : 8;
  const int serve_clients = 2;

  for (WorkloadSpec& spec : workloads) {
    const SocialGram system = make_social_gram(spec.gram);
    const CsrMatrix a =
        UnitDiagonalScaling(system.gram).scale_matrix(system.gram);
    std::cout << "# workload " << spec.name << ":\n";
    print_matrix_profile(a);
    const index_t n = a.rows();
    spec.n = n;
    spec.nnz = a.nnz();
    const std::vector<double> b = random_vector(n, 7);
    // What the current engine's prepared handles resolve by default: kAuto
    // narrows to int32/double whenever the shape fits (it does for every
    // bench workload).  The legacy engine predates the policies and always
    // reads the bound full-width matrix.
    const char* const auto_storage = to_string(
        resolve_storage_policy(StorageMode::kAuto, a.cols(), a.nnz()));

    const auto time_run = [&](auto&& fn) {
      double best = 1e300;
      for (int rep = 0; rep < n_repeats; ++rep) {
        std::vector<double> x(static_cast<std::size_t>(n), 0.0);
        best = std::min(best, fn(x));
      }
      return best;
    };

    for (int workers : worker_sweep) {
      AsyncRgsOptions opt;
      opt.sweeps = n_sweeps;
      opt.seed = 1;
      opt.workers = workers;

      // --- free-running updates/second ----------------------------------
      // Three rows per worker count: the pre-PR2 legacy engine (pinned by
      // construction), the current engine on the default pinned scan, and
      // the current engine with the opt-in reassociated scan — so every
      // BENCH json reports both scan modes side by side.
      struct FreeRunRow {
        bool current;
        ScanMode scan;
      };
      for (const FreeRunRow row :
           {FreeRunRow{false, ScanMode::kPinned},
            FreeRunRow{true, ScanMode::kPinned},
            FreeRunRow{true, ScanMode::kReassociated}}) {
        AsyncRgsOptions run_opt = opt;
        run_opt.sync = SyncMode::kFreeRunning;
        run_opt.scan = row.scan;
        const double secs = time_run([&](std::vector<double>& x) {
          const AsyncRgsReport r =
              row.current ? async_rgs_solve(pool, a, b, x, run_opt)
                          : legacy::solve_free_running(pool, a, b, x, run_opt);
          return r.seconds;
        });
        Measurement m;
        m.workload = spec.name;
        m.engine = row.current ? "current" : "legacy";
        m.mode = "free_running";
        m.scan =
            row.scan == ScanMode::kReassociated ? "reassociated" : "pinned";
        m.storage = row.current ? auto_storage : "int64_double";
        m.workers = workers;
        m.updates = static_cast<long long>(n_sweeps) * n;
        m.seconds = secs;
        m.updates_per_second = static_cast<double>(m.updates) / secs;
        results.push_back(m);
        table.add_row(
            {spec.name, std::to_string(workers), m.engine, m.mode, m.scan,
             fmt_sci(m.updates_per_second),
             fmt_fixed(1e9 * secs / static_cast<double>(m.updates), 1), "-"});
      }

      // --- residual-check cost at synchronization points -----------------
      // Barrier-per-sweep with history tracking vs without: the difference
      // is what each sweep pays for the residual (serial on worker 0 in the
      // legacy engine, team-parallel in the current one).
      for (bool current : {false, true}) {
        AsyncRgsOptions plain = opt;
        plain.sync = SyncMode::kBarrierPerSweep;
        AsyncRgsOptions tracked = plain;
        tracked.track_history = true;
        const double secs_plain = time_run([&](std::vector<double>& x) {
          const AsyncRgsReport r =
              current ? async_rgs_solve(pool, a, b, x, plain)
                      : legacy::solve_barrier(pool, a, b, x, plain);
          return r.seconds;
        });
        const double secs_tracked = time_run([&](std::vector<double>& x) {
          const AsyncRgsReport r =
              current ? async_rgs_solve(pool, a, b, x, tracked)
                      : legacy::solve_barrier(pool, a, b, x, tracked);
          return r.seconds;
        });
        Measurement m;
        m.workload = spec.name;
        m.engine = current ? "current" : "legacy";
        m.mode = "barrier_residual";
        m.scan = "pinned";
        m.storage = current ? auto_storage : "int64_double";
        m.workers = workers;
        m.updates = static_cast<long long>(n_sweeps) * n;
        m.seconds = secs_tracked;
        m.updates_per_second = static_cast<double>(m.updates) / secs_tracked;
        m.residual_cost_per_sweep =
            std::max(0.0, (secs_tracked - secs_plain) / n_sweeps);
        results.push_back(m);
        table.add_row({spec.name, std::to_string(workers), m.engine, m.mode,
                       m.scan, fmt_sci(m.updates_per_second),
                       fmt_fixed(1e9 * secs_tracked /
                                     static_cast<double>(m.updates),
                                 1),
                       fmt_sci(m.residual_cost_per_sweep)});
      }
    }

    // --- storage-policy sweep (schema v7) --------------------------------
    // Updates/second of the prepared handle under each CSR storage policy,
    // both scan modes, at 1 worker (isolating the kernel's memory stream
    // from scheduling noise).  int32 halves the index bytes of every row
    // scan; mixed additionally halves the value bytes (accumulation stays
    // double) — docs/TUNING.md explains when each wins.
    {
      struct PolicyRun {
        StorageMode mode;
        const char* name;
      };
      for (const PolicyRun policy :
           {PolicyRun{StorageMode::kInt64Double, "int64_double"},
            PolicyRun{StorageMode::kInt32Double, "int32_double"},
            PolicyRun{StorageMode::kInt32Mixed, "int32_mixed"}}) {
        SpdProblem handle(pool, a, /*check_input=*/false, policy.mode);
        for (const ScanMode scan :
             {ScanMode::kPinned, ScanMode::kReassociated}) {
          SolveControls sc;
          sc.method = SpdMethod::kAsyncRgs;
          sc.sweeps = n_sweeps;
          sc.workers = 1;
          sc.seed = 1;
          sc.scan = scan;
          const double secs = time_run([&](std::vector<double>& x) {
            return handle.solve(b, x, sc).seconds;
          });
          Measurement m;
          m.workload = spec.name;
          m.engine = "current";
          m.mode = "storage_policy";
          m.scan = scan == ScanMode::kReassociated ? "reassociated" : "pinned";
          m.storage = policy.name;
          m.workers = 1;
          m.updates = static_cast<long long>(n_sweeps) * n;
          m.seconds = secs;
          m.updates_per_second = static_cast<double>(m.updates) / secs;
          results.push_back(m);
          table.add_row({spec.name, "1", "current",
                         std::string("storage/") + policy.name, m.scan,
                         fmt_sci(m.updates_per_second),
                         fmt_fixed(1e9 * secs / static_cast<double>(m.updates),
                                   1),
                         "-"});
          auto point = std::find_if(
              storage_points.begin(), storage_points.end(),
              [&](const StoragePoint& p) {
                return p.workload == spec.name && p.scan == m.scan;
              });
          if (point == storage_points.end()) {
            storage_points.push_back(StoragePoint{spec.name, m.scan});
            point = storage_points.end() - 1;
          }
          if (policy.mode == StorageMode::kInt64Double)
            point->int64_ups = m.updates_per_second;
          else if (policy.mode == StorageMode::kInt32Double)
            point->int32_ups = m.updates_per_second;
          else
            point->mixed_ups = m.updates_per_second;
        }
      }
    }

    // --- sampling-policy sweep (schema v9) -------------------------------
    // Updates/second of the prepared handle under each direction
    // distribution, 1 worker, pinned scan, barrier-per-sweep on both Gram
    // regimes.  Measures what the non-uniform draw path costs (alias-table
    // lookup per draw; periodic rebuild for the residual policy) — the
    // convergence side of the trade is docs/TUNING.md territory.
    {
      SpdProblem handle(pool, a, /*check_input=*/false);
      SamplingPoint point;
      point.workload = spec.name;
      struct PolicyRun {
        SamplingPolicy policy;
        const char* name;
      };
      for (const PolicyRun policy :
           {PolicyRun{SamplingPolicy::kUniform, "uniform"},
            PolicyRun{SamplingPolicy::kWeighted, "weighted"},
            PolicyRun{SamplingPolicy::kResidual, "residual"}}) {
        SolveControls sc;
        sc.method = SpdMethod::kAsyncRgs;
        sc.sweeps = n_sweeps;
        sc.workers = 1;
        sc.seed = 1;
        sc.sync = SyncMode::kBarrierPerSweep;
        sc.sampling = policy.policy;
        const double secs = time_run([&](std::vector<double>& x) {
          return handle.solve(b, x, sc).seconds;
        });
        Measurement m;
        m.workload = spec.name;
        m.engine = "current";
        m.mode = "sampling_policy";
        m.scan = "pinned";
        m.storage = auto_storage;
        m.sampling = policy.name;
        m.workers = 1;
        m.updates = static_cast<long long>(n_sweeps) * n;
        m.seconds = secs;
        m.updates_per_second = static_cast<double>(m.updates) / secs;
        results.push_back(m);
        table.add_row({spec.name, "1", "current",
                       std::string("sampling/") + policy.name, "pinned",
                       fmt_sci(m.updates_per_second),
                       fmt_fixed(1e9 * secs / static_cast<double>(m.updates),
                                 1),
                       "-"});
        if (policy.policy == SamplingPolicy::kUniform)
          point.uniform_ups = m.updates_per_second;
        else if (policy.policy == SamplingPolicy::kWeighted)
          point.weighted_ups = m.updates_per_second;
        else
          point.residual_ups = m.updates_per_second;
      }
      sampling_points.push_back(std::move(point));
    }

    // --- asynchronous Kaczmarz on the rectangular factor (headline only) --
    // The row-action method served by LsqProblem, run on the m x n
    // document-term matrix F (the system the Gram workload squares away),
    // with never-used term columns compressed out — the corpus factor can
    // carry zero columns, which the handle's rank check rejects.  One
    // update projects onto a row hyperplane, so updates/second is
    // row-projections/second.  Uniform vs the Strohmer-Vershynin
    // norm-weighted draw under the identical budget.
    if (spec.name == workloads.front().name) {
      const CsrMatrix f = drop_empty_columns(system.factor).matrix;
      kaczmarz_rows = f.rows();
      kaczmarz_cols = f.cols();
      kaczmarz_nnz = f.nnz();
      LsqProblem lsq(pool, f);
      const std::vector<double> rhs =
          random_vector(f.rows(), 11);
      const int kz_sweeps = std::max(1, n_sweeps / 4);
      for (const SamplingPolicy policy :
           {SamplingPolicy::kUniform, SamplingPolicy::kWeighted}) {
        SolveControls sc;
        sc.method = SpdMethod::kAsyncKaczmarz;
        sc.sweeps = kz_sweeps;
        sc.workers = 1;
        sc.seed = 1;
        sc.sync = SyncMode::kBarrierPerSweep;
        sc.sampling = policy;
        double best = 1e300;
        for (int rep = 0; rep < n_repeats; ++rep) {
          std::vector<double> x(static_cast<std::size_t>(f.cols()), 0.0);
          best = std::min(best, lsq.solve(rhs, x, sc).seconds);
        }
        Measurement m;
        m.workload = spec.name;
        m.engine = "current";
        m.mode = "kaczmarz_row_action";
        m.scan = "pinned";
        m.storage = to_string(lsq.storage());
        m.sampling = policy == SamplingPolicy::kWeighted ? "weighted"
                                                         : "uniform";
        m.workers = 1;
        m.updates = static_cast<long long>(kz_sweeps) * f.rows();
        m.seconds = best;
        m.updates_per_second = static_cast<double>(m.updates) / best;
        results.push_back(m);
        table.add_row({spec.name, "1", "current",
                       std::string("kaczmarz/") + m.sampling, "pinned",
                       fmt_sci(m.updates_per_second),
                       fmt_fixed(1e9 * best / static_cast<double>(m.updates),
                                 1),
                       "-"});
        if (policy == SamplingPolicy::kWeighted)
          kaczmarz_weighted_ups = m.updates_per_second;
        else
          kaczmarz_uniform_ups = m.updates_per_second;
      }
    }

    // --- reassociated block kernel at k <= 4 (headline workload only) ----
    // Until PR 7 the block solver silently ran the pinned column-parallel
    // scan for every width; blocks of k <= 4 right-hand sides now dispatch
    // the register-resident reassociated kernel.  This point measures it —
    // and refuses to record a pinned run where a reassociated one was
    // requested, so the JSON can never claim a win the kernels didn't take.
    if (spec.name == workloads.front().name) {
      MultiVector block_b(n, block_k);
      for (index_t col = 0; col < block_k; ++col)
        block_b.set_column(
            col, random_vector(n, 500 + static_cast<std::uint64_t>(col)));
      SpdProblem handle(pool, a, /*check_input=*/false);
      const int block_sweeps = std::max(1, n_sweeps / block_k);
      for (const ScanMode scan : {ScanMode::kPinned, ScanMode::kReassociated}) {
        SolveControls sc;
        sc.sweeps = block_sweeps;
        sc.workers = 1;
        sc.seed = 1;
        sc.scan = scan;
        double best = 1e300;
        std::string executed;
        for (int rep = 0; rep < n_repeats; ++rep) {
          MultiVector x(n, block_k);
          const SolveOutcome out = handle.solve(block_b, x, sc);
          best = std::min(best, out.seconds);
          executed = out.scan_executed == ScanMode::kReassociated
                         ? "reassociated"
                         : "pinned";
        }
        if (scan == ScanMode::kReassociated && executed != "reassociated") {
          std::cerr << "block_small_k: reassociated scan requested at k="
                    << block_k << " but the kernels ran " << executed << "\n";
          return 1;
        }
        Measurement m;
        m.workload = spec.name;
        m.engine = "current";
        m.mode = "block_small_k";
        m.scan = executed;
        m.storage = auto_storage;
        m.workers = 1;
        m.block_k = block_k;
        m.updates = static_cast<long long>(block_sweeps) * n;
        m.seconds = best;
        m.updates_per_second = static_cast<double>(m.updates) / best;
        results.push_back(m);
        table.add_row({spec.name, "1", "current",
                       "block_k" + std::to_string(block_k), executed,
                       fmt_sci(m.updates_per_second),
                       fmt_fixed(1e9 * best / static_cast<double>(m.updates),
                                 1),
                       "-"});
        if (scan == ScanMode::kReassociated) {
          block_reassoc_ups = m.updates_per_second;
          block_scan_executed = executed;
        } else {
          block_pinned_ups = m.updates_per_second;
        }
      }
    }

    // --- cold vs prepared solve latency (headline workload only) -----------
    // The serving regime of Section 9: one operator, many short low-accuracy
    // solves.  "cold" constructs a fresh handle per solve — the cost profile
    // of the one-shot API — while "prepared" solves against a handle built
    // once.  1 worker, free-running, pinned, tiny sweep budget: the
    // difference is pure per-call preparation (validation compare,
    // denominators, scratch), not iteration throughput.  Both families'
    // cold paths share the matrix's transpose cache with the prepared
    // handle (warm after its construction), so the one-time transpose build
    // is reported separately as prepare_seconds rather than inside
    // cold_seconds — see the ROADMAP item for an uncached-cold variant.
    if (spec.name == workloads.front().name) {
      const auto record_amortization = [&](const char* family,
                                           AmortizationPoint& point,
                                           long long updates_per_solve,
                                           auto&& cold, auto&& cold_uncached,
                                           auto&& prepared) {
        // Every thunk receives the repetition index; the uncached-cold one
        // uses it to select a pre-built fresh matrix (construction of the
        // fresh matrices happens outside the timed region — the row
        // measures analysis cost, not CSR array copying).
        const auto time_solve = [&](auto&& fn) {
          double best = 1e300;
          for (int rep = 0; rep < n_repeats; ++rep) {
            WallTimer t;
            fn(rep);
            best = std::min(best, t.seconds());
          }
          return best;
        };
        point.cold_seconds = time_solve(cold);
        point.cold_uncached_seconds = time_solve(cold_uncached);
        point.prepared_seconds = time_solve(prepared);
        struct ApiRow {
          const char* api;
          double seconds;
        };
        for (const ApiRow row :
             {ApiRow{"cold", point.cold_seconds},
              ApiRow{"cold_uncached", point.cold_uncached_seconds},
              ApiRow{"prepared", point.prepared_seconds}}) {
          Measurement m;
          m.workload = spec.name;
          m.engine = "current";
          m.mode = "prepare_amortization";
          m.scan = "pinned";
          m.storage = auto_storage;
          m.workers = 1;
          m.updates = updates_per_solve;
          m.seconds = row.seconds;
          m.updates_per_second = static_cast<double>(m.updates) / m.seconds;
          m.api = row.api;
          m.family = family;
          results.push_back(m);
          table.add_row({spec.name, "1", "current",
                         std::string("prepare/") + m.api + "/" + family,
                         "pinned", fmt_sci(m.updates_per_second),
                         fmt_fixed(1e9 * m.seconds /
                                       static_cast<double>(m.updates),
                                   1),
                         "-"});
        }
      };

      SolveControls amor;
      amor.method = SpdMethod::kAsyncRgs;
      amor.sweeps = amor_sweeps;
      amor.workers = 1;
      amor.sync = SyncMode::kFreeRunning;

      // Fresh matrices (cold transpose cache) for the uncached-cold rows:
      // identical arrays, new CsrMatrix identity per repetition.
      const auto fresh_copies = [&](const CsrMatrix& src) {
        std::vector<CsrMatrix> fresh;
        fresh.reserve(static_cast<std::size_t>(n_repeats));
        for (int rep = 0; rep < n_repeats; ++rep)
          fresh.emplace_back(src.rows(), src.cols(), src.row_ptr(),
                             src.col_idx(), src.values());
        return fresh;
      };

      {
        WallTimer prep;
        SpdProblem prepared(pool, a, /*check_input=*/true);
        amor_spd.prepare_seconds = prep.seconds();
        const std::vector<CsrMatrix> fresh = fresh_copies(a);
        std::vector<double> x(static_cast<std::size_t>(n));
        record_amortization(
            "spd", amor_spd, static_cast<long long>(amor_sweeps) * n,
            [&](int) {
              std::fill(x.begin(), x.end(), 0.0);
              SpdProblem cold(pool, a, /*check_input=*/true);
              cold.solve(b, x, amor);
            },
            [&](int rep) {
              std::fill(x.begin(), x.end(), 0.0);
              SpdProblem cold(pool, fresh[static_cast<std::size_t>(rep)],
                              /*check_input=*/true);
              cold.solve(b, x, amor);
            },
            [&](int) {
              std::fill(x.begin(), x.end(), 0.0);
              prepared.solve(b, x, amor);
            });
      }

      {
        // Least squares on the corpus' document-term factor.
        const ColumnCompression compressed =
            drop_empty_columns(system.factor);
        const CsrMatrix& f = compressed.matrix;
        const std::vector<double> bf = random_vector(f.rows(), 7);
        SolveControls lsq_amor = amor;
        lsq_amor.method = SpdMethod::kAuto;  // ignored by LsqProblem
        lsq_amor.step_size = 0.95;
        WallTimer prep;
        LsqProblem prepared(pool, f);
        amor_lsq.prepare_seconds = prep.seconds();
        const std::vector<CsrMatrix> fresh = fresh_copies(f);
        std::vector<double> xf(static_cast<std::size_t>(f.cols()));
        record_amortization(
            "lsq", amor_lsq,
            static_cast<long long>(amor_sweeps) * f.cols(),
            [&](int) {
              std::fill(xf.begin(), xf.end(), 0.0);
              LsqProblem cold(pool, f);
              cold.solve(bf, xf, lsq_amor);
            },
            [&](int rep) {
              std::fill(xf.begin(), xf.end(), 0.0);
              LsqProblem cold(pool, fresh[static_cast<std::size_t>(rep)]);
              cold.solve(bf, xf, lsq_amor);
            },
            [&](int) {
              std::fill(xf.begin(), xf.end(), 0.0);
              prepared.solve(bf, xf, lsq_amor);
            });
      }

      // --- sharded serving throughput (schema v5) ------------------------
      // Aggregate completed solves/second for a mixed SPD/LSQ request
      // stream through SolverService at 1 / 2 / 4 shards: the PR-5
      // trajectory metric.  Serving-sized budgets, free-running, pinned, 1
      // worker per shard — multi-shard wins come from running independent
      // solves on independent pools, not from intra-solve teams.  On hosts
      // with fewer cores than shards the figures are oversubscribed
      // timeshare numbers (the standing ROADMAP caveat).
      {
        SolveControls serve_spd;
        serve_spd.sweeps = serve_sweeps;
        serve_spd.workers = 1;
        SolveControls serve_lsq = serve_spd;
        serve_lsq.step_size = 0.95;

        std::vector<std::vector<double>> request_rhs;
        request_rhs.reserve(static_cast<std::size_t>(serve_requests));
        for (int r = 0; r < serve_requests; ++r)
          request_rhs.push_back(
              random_vector(n, 1000 + static_cast<std::uint64_t>(r)));

        const int serve_repeats = std::min(n_repeats, *smoke ? 2 : 5);
        for (const int shard_count : {1, 2, 4}) {
          double best = 1e300;
          for (int rep = 0; rep < serve_repeats; ++rep) {
            ServiceOptions so;
            so.shards = shard_count;
            so.workers_per_shard = 1;
            so.prepare_lsq = true;
            so.check_input = true;
            SolverService service(a, so);  // untimed: prepare once
            std::vector<SolveTicket> tickets(
                static_cast<std::size_t>(serve_requests));
            WallTimer t;
            std::vector<std::thread> clients;
            for (int c = 0; c < serve_clients; ++c) {
              clients.emplace_back([&, c] {
                // Clients write disjoint ticket slots — no lock needed.
                for (int r = c; r < serve_requests; r += serve_clients) {
                  SolveControls req =
                      r % 2 == 0 ? serve_spd : serve_lsq;
                  req.seed = static_cast<std::uint64_t>(r + 1);
                  const std::vector<double>& rb =
                      request_rhs[static_cast<std::size_t>(r)];
                  tickets[static_cast<std::size_t>(r)] =
                      r % 2 == 0 ? service.submit(rb, req)
                                 : service.submit_least_squares(rb, req);
                }
              });
            }
            for (std::thread& ct : clients) ct.join();
            service.drain();
            best = std::min(best, t.seconds());
            // A throughput number for work that failed would be a lie:
            // every ticket must hold a completed budget run (no tolerance
            // is set, so anything else means a solve threw).
            for (SolveTicket& ticket : tickets) {
              const SolveOutcome& out = ticket.wait();  // rethrows errors
              if (out.status != SolveStatus::kBudgetCompleted) {
                std::cerr << "serving_throughput: unexpected outcome: "
                          << out.description << "\n";
                return 1;
              }
            }
          }
          ServingPoint point;
          point.shards = shard_count;
          point.seconds = best;
          point.solves_per_second =
              static_cast<double>(serve_requests) / best;
          serving.push_back(point);

          Measurement m;
          m.workload = spec.name;
          m.engine = "current";
          m.mode = "serving_throughput";
          m.scan = "pinned";
          m.storage = auto_storage;
          m.workers = 1;
          m.shards = shard_count;
          m.updates = static_cast<long long>(serve_requests) *
                      static_cast<long long>(serve_sweeps) * n;
          m.seconds = best;
          m.updates_per_second = static_cast<double>(m.updates) / best;
          m.solves_per_second = point.solves_per_second;
          results.push_back(m);
          table.add_row({spec.name, "1", "current",
                         "serving/" + std::to_string(shard_count) + "shards",
                         "pinned", fmt_sci(m.updates_per_second),
                         fmt_fixed(1e9 * best /
                                       static_cast<double>(m.updates),
                                   1),
                         "-"});
        }

        // --- open-loop overload point (schema v6) ------------------------
        // Requests arrive on a fixed clock at ~2x the single-shard capacity
        // just measured, against a single-worker shard with a small
        // admission bound.  A well-behaved service sheds the excess as
        // kRejected and keeps the latency of what it *does* serve bounded
        // by (max_queue + 1) solve times; this row records both sides of
        // that trade (reject rate, served-latency tail).
        {
          ServiceOptions so;
          so.shards = 1;
          so.workers_per_shard = 1;
          so.max_queue = 4;
          so.check_input = true;
          SolverService service(a, so);
          const std::vector<double> ob = random_vector(n, 424242);

          // Calibrate the shard's service rate directly: sequential solves
          // with one outstanding request, so the figure is pure service
          // time (the closed-loop serving points above include client-side
          // submit/sync overhead and under-read capacity).
          double solve_seconds = 1e300;
          for (int rep = 0; rep < 5; ++rep) {
            SolveControls req = serve_spd;
            req.seed = 999'000 + static_cast<std::uint64_t>(rep);
            WallTimer t;
            service.submit(ob, req).wait();
            solve_seconds = std::min(solve_seconds, t.seconds());
          }
          overload.arrival_rate = 2.0 / solve_seconds;
          overload.duration_seconds = *smoke ? 0.25 : 1.0;
          const double period = 1.0 / overload.arrival_rate;
          std::vector<SolveTicket> tickets;
          const auto start = std::chrono::steady_clock::now();
          for (int r = 0;; ++r) {
            const double target = static_cast<double>(r) * period;
            if (target >= overload.duration_seconds) break;
            std::this_thread::sleep_until(
                start +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(target)));
            SolveControls req = serve_spd;
            req.seed = static_cast<std::uint64_t>(r + 1);
            tickets.push_back(service.submit(ob, req));
          }
          service.drain();
          for (SolveTicket& ticket : tickets) {
            const SolveOutcome& out = ticket.wait();
            if (out.status != SolveStatus::kBudgetCompleted &&
                out.status != SolveStatus::kRejected) {
              std::cerr << "serving_overload: unexpected outcome: "
                        << out.description << "\n";
              return 1;
            }
          }
          const ServiceStats stats = service.stats();
          overload.offered = static_cast<long long>(tickets.size());
          overload.rejected = stats.rejected + stats.shed_deadline;
          overload.reject_rate =
              overload.offered > 0
                  ? static_cast<double>(overload.rejected) /
                        static_cast<double>(overload.offered)
                  : 0.0;
          overload.p50_seconds = stats.latency.p50();
          overload.p99_seconds = stats.latency.p99();
          table.add_row({spec.name, "1", "current", "serving/overload",
                         "pinned", "-", "-", "-"});
        }
      }
    }
  }
  table.print(std::cout);

  // --- locality workload: partitioned scheduling at Laplacian scale --------
  // A million-row 2D grid Laplacian (ROADMAP's graph-Laplacian-scale
  // target; --smoke shrinks the grid), prepared-handle AsyRGS throughput:
  // unpartitioned baseline vs RCM-partitioned scheduling with a few percent
  // of halo stealing, free-running, at the headline worker count.  On
  // single-core (timeshared) hosts the cache-locality win is muted — the
  // point records the ratio either way, plus the one-time analysis cost.
  const index_t lap_nx = *smoke ? 96 : 1024;
  const CsrMatrix lap_a = laplacian_2d(lap_nx, lap_nx);
  const int lap_partitions = 8;
  const double lap_steal = 0.05;
  const int lap_workers = static_cast<int>(*headline);
  const int lap_sweeps = *smoke ? 2 : 8;
  double lap_base_ups = 0.0, lap_part_ups = 0.0, lap_prepare_seconds = 0.0;
  {
    SpdProblem handle(pool, lap_a, /*check_input=*/false);
    const std::vector<double> lap_b = random_vector(lap_a.rows(), 77);
    SolveControls lap_controls;
    lap_controls.method = SpdMethod::kAsyncRgs;
    lap_controls.sweeps = lap_sweeps;
    lap_controls.workers = lap_workers;
    lap_controls.sync = SyncMode::kFreeRunning;
    std::vector<double> lap_x(static_cast<std::size_t>(lap_a.rows()), 0.0);
    for (int rep = 0; rep < n_repeats; ++rep) {
      std::fill(lap_x.begin(), lap_x.end(), 0.0);
      const SolveOutcome out = handle.solve(lap_b, lap_x, lap_controls);
      lap_base_ups = std::max(
          lap_base_ups, static_cast<double>(out.updates) / out.seconds);
    }
    WallTimer lap_prepare_timer;
    handle.prepare_partitions();
    lap_prepare_seconds = lap_prepare_timer.seconds();
    lap_controls.partitions = lap_partitions;
    lap_controls.steal_rate = lap_steal;
    for (int rep = 0; rep < n_repeats; ++rep) {
      std::fill(lap_x.begin(), lap_x.end(), 0.0);
      const SolveOutcome out = handle.solve(lap_b, lap_x, lap_controls);
      lap_part_ups = std::max(
          lap_part_ups, static_cast<double>(out.updates) / out.seconds);
    }
  }
  const double lap_speedup =
      lap_base_ups > 0.0 ? lap_part_ups / lap_base_ups : 0.0;

  // --- headline ratio ----------------------------------------------------
  const std::string headline_workload = workloads.front().name;
  double legacy_ups = 0.0, current_ups = 0.0;
  for (const Measurement& m : results) {
    if (m.workload != headline_workload || m.mode != "free_running" ||
        m.workers != *headline || m.scan != "pinned")
      continue;
    (m.engine == "current" ? current_ups : legacy_ups) = m.updates_per_second;
  }
  const double speedup = legacy_ups > 0.0 ? current_ups / legacy_ups : 0.0;
  std::cout << "# headline (" << headline_workload << ", free-running, "
            << *headline << " workers): legacy=" << fmt_sci(legacy_ups)
            << " current=" << fmt_sci(current_ups)
            << " speedup=" << fmt_fixed(speedup, 2) << "x\n";

  // --- scan-mode headline -------------------------------------------------
  // Pinned vs reassociated on the current engine at 1 worker, in the
  // scan-bound regime where the row scan's FP association is the binding
  // constraint (falls back to the headline workload under
  // --skip-scan-workload).  One worker isolates the kernel change from
  // scheduling noise on oversubscribed hosts.
  const std::string scan_workload =
      workloads.back().name;  // gram_scan_bound unless skipped
  double scan_pinned_ups = 0.0, scan_reassoc_ups = 0.0;
  for (const Measurement& m : results) {
    if (m.workload != scan_workload || m.mode != "free_running" ||
        m.workers != 1 || m.engine != "current")
      continue;
    (m.scan == "reassociated" ? scan_reassoc_ups : scan_pinned_ups) =
        m.updates_per_second;
  }
  const double scan_speedup =
      scan_pinned_ups > 0.0 ? scan_reassoc_ups / scan_pinned_ups : 0.0;
  std::cout << "# scan headline (" << scan_workload
            << ", free-running, 1 worker, current engine): pinned="
            << fmt_sci(scan_pinned_ups)
            << " reassociated=" << fmt_sci(scan_reassoc_ups)
            << " speedup=" << fmt_fixed(scan_speedup, 2) << "x\n";

  // --- storage headline ----------------------------------------------------
  // Per-policy prepared-handle throughput on both Gram regimes (reassociated
  // scan shown; the pinned rows are in results[]).  int32 speedup is pure
  // index-bandwidth; mixed adds the value-bandwidth halving.
  for (const StoragePoint& p : storage_points) {
    if (p.scan != "reassociated") continue;
    std::cout << "# storage headline (" << p.workload
              << ", free-running, 1 worker, " << p.scan
              << " scan): int64_double=" << fmt_sci(p.int64_ups)
              << " int32_double=" << fmt_sci(p.int32_ups) << " ("
              << fmt_fixed(p.int64_ups > 0 ? p.int32_ups / p.int64_ups : 0.0,
                           2)
              << "x) int32_mixed=" << fmt_sci(p.mixed_ups) << " ("
              << fmt_fixed(p.int64_ups > 0 ? p.mixed_ups / p.int64_ups : 0.0,
                           2)
              << "x)\n";
  }

  // --- sampling headline ----------------------------------------------------
  // Draw-path cost of the non-uniform policies on both Gram regimes
  // (1 worker, pinned, barrier-per-sweep).  Ratios < 1 are pure sampling
  // overhead per update; the convergence payoff is workload-dependent.
  for (const SamplingPoint& p : sampling_points) {
    std::cout << "# sampling headline (" << p.workload
              << ", barrier, 1 worker, pinned scan): uniform="
              << fmt_sci(p.uniform_ups)
              << " weighted=" << fmt_sci(p.weighted_ups) << " ("
              << fmt_fixed(
                     p.uniform_ups > 0 ? p.weighted_ups / p.uniform_ups : 0.0,
                     2)
              << "x) residual=" << fmt_sci(p.residual_ups) << " ("
              << fmt_fixed(
                     p.uniform_ups > 0 ? p.residual_ups / p.uniform_ups : 0.0,
                     2)
              << "x)\n";
  }

  // --- kaczmarz headline ----------------------------------------------------
  std::cout << "# kaczmarz headline (row action on the " << kaczmarz_rows
            << "x" << kaczmarz_cols << " factor, " << kaczmarz_nnz
            << " nnz, barrier, 1 worker): uniform="
            << fmt_sci(kaczmarz_uniform_ups)
            << " weighted=" << fmt_sci(kaczmarz_weighted_ups)
            << " row-projections/s ("
            << fmt_fixed(kaczmarz_uniform_ups > 0
                             ? kaczmarz_weighted_ups / kaczmarz_uniform_ups
                             : 0.0,
                         2)
            << "x)\n";

  // --- block small-k headline ----------------------------------------------
  const double block_speedup =
      block_pinned_ups > 0.0 ? block_reassoc_ups / block_pinned_ups : 0.0;
  std::cout << "# block headline (" << headline_workload << ", k=" << block_k
            << ", 1 worker): pinned=" << fmt_sci(block_pinned_ups)
            << " reassociated=" << fmt_sci(block_reassoc_ups)
            << " row-updates/s (executed: " << block_scan_executed
            << ", speedup " << fmt_fixed(block_speedup, 2) << "x)\n";

  // --- prepare-amortization headline ---------------------------------------
  // Cold (construct-and-solve, the one-shot API's cost profile) vs prepared
  // (solve on a pre-built handle), per solve, at a serving-sized sweep
  // budget.  The PR-4 trajectory metric.
  std::cout << "# prepare headline (" << headline_workload << ", "
            << amor_sweeps << " sweeps, 1 worker): spd cold="
            << fmt_sci(amor_spd.cold_seconds) << "s uncached="
            << fmt_sci(amor_spd.cold_uncached_seconds) << "s prepared="
            << fmt_sci(amor_spd.prepared_seconds) << "s speedup="
            << fmt_fixed(amor_spd.speedup(), 2) << "x (uncached "
            << fmt_fixed(amor_spd.uncached_speedup(), 2) << "x); lsq cold="
            << fmt_sci(amor_lsq.cold_seconds) << "s uncached="
            << fmt_sci(amor_lsq.cold_uncached_seconds) << "s prepared="
            << fmt_sci(amor_lsq.prepared_seconds) << "s speedup="
            << fmt_fixed(amor_lsq.speedup(), 2) << "x (uncached "
            << fmt_fixed(amor_lsq.uncached_speedup(), 2) << "x)\n";

  // --- serving-throughput headline ----------------------------------------
  // Mixed SPD/LSQ stream through SolverService at 1/2/4 shards.  The
  // tracked ratio is the best *multi-shard* point over the single-shard
  // baseline — the 1-shard point is deliberately excluded from the best
  // search so a sharding regression records as < 1.0 instead of being
  // clamped to 1.0 (>= 1 expected on multi-core hosts; timeshare-limited
  // below 1 on fewer cores).
  double serve_single = 0.0, serve_best = 0.0;
  int serve_best_shards = 0;
  for (const ServingPoint& p : serving) {
    if (p.shards == 1) {
      serve_single = p.solves_per_second;
    } else if (p.solves_per_second > serve_best) {
      serve_best = p.solves_per_second;
      serve_best_shards = p.shards;
    }
  }
  const double serve_speedup =
      serve_single > 0.0 && serve_best > 0.0 ? serve_best / serve_single
                                             : 0.0;
  std::cout << "# serving headline (" << headline_workload << ", "
            << serve_requests << " requests, " << serve_sweeps
            << " sweeps, mixed spd/lsq, " << serve_clients
            << " clients): ";
  for (const ServingPoint& p : serving)
    std::cout << p.shards << "-shard=" << fmt_sci(p.solves_per_second)
              << " solves/s ";
  std::cout << "best multi-shard=" << serve_best_shards << " ("
            << fmt_fixed(serve_speedup, 2) << "x vs single)\n";

  // --- overload headline ---------------------------------------------------
  // Open-loop arrivals at ~2x single-shard capacity, max_queue=4: how much
  // load the service sheds and what latency the served share saw.
  std::cout << "# overload headline (" << headline_workload
            << ", 1 shard, open loop " << fmt_fixed(overload.arrival_rate, 1)
            << "/s for " << overload.duration_seconds << "s, max_queue=4): "
            << "offered=" << overload.offered
            << " rejected=" << overload.rejected << " (reject rate "
            << fmt_fixed(overload.reject_rate, 2) << ") served p50="
            << fmt_sci(overload.p50_seconds) << "s p99="
            << fmt_sci(overload.p99_seconds) << "s\n";

  // --- locality headline ---------------------------------------------------
  // Partitioned vs unpartitioned scheduling on the grid Laplacian; the
  // tracked ratio is the PR-10 locality trajectory metric.
  std::cout << "# locality headline (laplacian_2d " << lap_nx << "x" << lap_nx
            << ", n=" << lap_a.rows() << ", free-running, " << lap_workers
            << " workers): baseline=" << fmt_sci(lap_base_ups)
            << " partitioned[" << lap_partitions << ", steal "
            << fmt_fixed(lap_steal, 2) << "]=" << fmt_sci(lap_part_ups)
            << " updates/s (speedup " << fmt_fixed(lap_speedup, 2)
            << "x, analysis " << fmt_sci(lap_prepare_seconds) << "s)\n";

  // --- JSON --------------------------------------------------------------
  const std::string path =
      (*out_path).empty() ? "BENCH_" + *label + ".json" : *out_path;
  std::ofstream json(path);
  json << "{\n"
       << "  \"schema_version\": 10,\n"
       << "  \"bench\": \"bench_updates\",\n"
       << "  \"label\": \"" << json_escape(*label) << "\",\n"
       << "  \"git\": \"" << json_escape(*git_rev) << "\",\n"
       << "  \"smoke\": " << (*smoke ? "true" : "false") << ",\n"
       << "  \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "  \"sweeps\": " << n_sweeps << ",\n"
       << "  \"repeats\": " << n_repeats << ",\n"
       << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const WorkloadSpec& w = workloads[i];
    json << "    {\"name\": \"" << w.name << "\", \"kind\": \"social_gram\""
         << ", \"terms\": " << w.gram.terms
         << ", \"documents\": " << w.gram.documents
         << ", \"mean_doc_length\": " << w.gram.mean_doc_length
         << ", \"n\": " << w.n << ", \"nnz\": " << w.nnz << "}"
         << (i + 1 < workloads.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Measurement& m = results[i];
    json << "    {\"workload\": \"" << m.workload << "\", \"engine\": \""
         << m.engine << "\", \"mode\": \"" << m.mode << "\", \"scan\": \""
         << m.scan << "\", \"storage\": \"" << m.storage
         << "\", \"workers\": " << m.workers
         << ", \"updates\": " << m.updates
         << ", \"seconds\": " << m.seconds
         << ", \"updates_per_second\": " << m.updates_per_second;
    if (m.mode == "block_small_k") json << ", \"block_k\": " << m.block_k;
    if (!m.sampling.empty())
      json << ", \"sampling\": \"" << m.sampling << "\"";
    if (m.mode == "barrier_residual")
      json << ", \"residual_cost_per_sweep_seconds\": "
           << m.residual_cost_per_sweep;
    if (m.mode == "prepare_amortization")
      json << ", \"api\": \"" << m.api << "\", \"family\": \"" << m.family
           << "\"";
    if (m.mode == "serving_throughput")
      json << ", \"shards\": " << m.shards
           << ", \"solves_per_second\": " << m.solves_per_second;
    json << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"headline\": {\"workload\": \"" << headline_workload
       << "\", \"mode\": \"free_running\", \"workers\": " << *headline
       << ", \"legacy_updates_per_second\": " << legacy_ups
       << ", \"current_updates_per_second\": " << current_ups
       << ", \"speedup\": " << speedup << "},\n"
       << "  \"scan_headline\": {\"workload\": \"" << scan_workload
       << "\", \"mode\": \"free_running\", \"workers\": 1"
       << ", \"pinned_updates_per_second\": " << scan_pinned_ups
       << ", \"reassociated_updates_per_second\": " << scan_reassoc_ups
       << ", \"speedup\": " << scan_speedup << "},\n"
       << "  \"storage_headline\": [\n";
  for (std::size_t i = 0; i < storage_points.size(); ++i) {
    const StoragePoint& p = storage_points[i];
    json << "    {\"workload\": \"" << p.workload << "\", \"scan\": \""
         << p.scan << "\", \"workers\": 1"
         << ", \"int64_double_updates_per_second\": " << p.int64_ups
         << ", \"int32_double_updates_per_second\": " << p.int32_ups
         << ", \"int32_mixed_updates_per_second\": " << p.mixed_ups
         << ", \"int32_speedup\": "
         << (p.int64_ups > 0.0 ? p.int32_ups / p.int64_ups : 0.0)
         << ", \"mixed_speedup\": "
         << (p.int64_ups > 0.0 ? p.mixed_ups / p.int64_ups : 0.0) << "}"
         << (i + 1 < storage_points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"sampling_headline\": [\n";
  for (std::size_t i = 0; i < sampling_points.size(); ++i) {
    const SamplingPoint& p = sampling_points[i];
    json << "    {\"workload\": \"" << p.workload
         << "\", \"mode\": \"barrier_per_sweep\", \"workers\": 1"
         << ", \"uniform_updates_per_second\": " << p.uniform_ups
         << ", \"weighted_updates_per_second\": " << p.weighted_ups
         << ", \"residual_updates_per_second\": " << p.residual_ups
         << ", \"weighted_ratio\": "
         << (p.uniform_ups > 0.0 ? p.weighted_ups / p.uniform_ups : 0.0)
         << ", \"residual_ratio\": "
         << (p.uniform_ups > 0.0 ? p.residual_ups / p.uniform_ups : 0.0)
         << "}" << (i + 1 < sampling_points.size() ? "," : "") << "\n";
  }
  json << "  ],\n"
       << "  \"kaczmarz_headline\": {\"workload\": \"" << headline_workload
       << "\", \"rows\": " << kaczmarz_rows
       << ", \"cols\": " << kaczmarz_cols << ", \"nnz\": " << kaczmarz_nnz
       << ", \"mode\": \"barrier_per_sweep\", \"workers\": 1"
       << ", \"uniform_updates_per_second\": " << kaczmarz_uniform_ups
       << ", \"weighted_updates_per_second\": " << kaczmarz_weighted_ups
       << ", \"weighted_ratio\": "
       << (kaczmarz_uniform_ups > 0.0
               ? kaczmarz_weighted_ups / kaczmarz_uniform_ups
               : 0.0)
       << "},\n"
       << "  \"locality_headline\": {\"workload\": \"laplacian_2d\""
       << ", \"nx\": " << lap_nx << ", \"n\": " << lap_a.rows()
       << ", \"nnz\": " << lap_a.nnz()
       << ", \"mode\": \"free_running\", \"workers\": " << lap_workers
       << ", \"partitions\": " << lap_partitions
       << ", \"steal_rate\": " << lap_steal
       << ", \"analysis_seconds\": " << lap_prepare_seconds
       << ", \"baseline_updates_per_second\": " << lap_base_ups
       << ", \"partitioned_updates_per_second\": " << lap_part_ups
       << ", \"speedup\": " << lap_speedup << "},\n"
       << "  \"block_headline\": {\"workload\": \"" << headline_workload
       << "\", \"block_k\": " << block_k << ", \"workers\": 1"
       << ", \"scan_executed\": \"" << block_scan_executed << "\""
       << ", \"pinned_updates_per_second\": " << block_pinned_ups
       << ", \"reassociated_updates_per_second\": " << block_reassoc_ups
       << ", \"speedup\": " << block_speedup << "},\n"
       << "  \"prepare_amortization\": {\"workload\": \"" << headline_workload
       << "\", \"mode\": \"free_running\", \"workers\": 1"
       << ", \"sweeps\": " << amor_sweeps << ",\n"
       << "    \"spd\": {\"prepare_seconds\": " << amor_spd.prepare_seconds
       << ", \"cold_seconds_per_solve\": " << amor_spd.cold_seconds
       << ", \"cold_uncached_seconds_per_solve\": "
       << amor_spd.cold_uncached_seconds
       << ", \"prepared_seconds_per_solve\": " << amor_spd.prepared_seconds
       << ", \"speedup\": " << amor_spd.speedup()
       << ", \"uncached_speedup\": " << amor_spd.uncached_speedup() << "},\n"
       << "    \"lsq\": {\"prepare_seconds\": " << amor_lsq.prepare_seconds
       << ", \"cold_seconds_per_solve\": " << amor_lsq.cold_seconds
       << ", \"cold_uncached_seconds_per_solve\": "
       << amor_lsq.cold_uncached_seconds
       << ", \"prepared_seconds_per_solve\": " << amor_lsq.prepared_seconds
       << ", \"speedup\": " << amor_lsq.speedup()
       << ", \"uncached_speedup\": " << amor_lsq.uncached_speedup()
       << "}},\n"
       << "  \"serving_throughput\": {\"workload\": \"" << headline_workload
       << "\", \"mix\": \"spd+lsq\", \"requests\": " << serve_requests
       << ", \"sweeps\": " << serve_sweeps
       << ", \"clients\": " << serve_clients
       << ", \"workers_per_shard\": 1,\n"
       << "    \"points\": [";
  for (std::size_t i = 0; i < serving.size(); ++i)
    json << (i > 0 ? ", " : "") << "{\"shards\": " << serving[i].shards
         << ", \"seconds\": " << serving[i].seconds
         << ", \"solves_per_second\": " << serving[i].solves_per_second
         << "}";
  json << "],\n"
       << "    \"best_multi_shards\": " << serve_best_shards
       << ", \"speedup_vs_single\": " << serve_speedup << ",\n"
       << "    \"overload\": {\"arrival_rate\": " << overload.arrival_rate
       << ", \"duration_seconds\": " << overload.duration_seconds
       << ", \"max_queue\": 4"
       << ", \"offered\": " << overload.offered
       << ", \"rejected\": " << overload.rejected
       << ", \"reject_rate\": " << overload.reject_rate
       << ", \"served_p50_seconds\": " << overload.p50_seconds
       << ", \"served_p99_seconds\": " << overload.p99_seconds << "}}\n"
       << "}\n";
  std::cout << "# wrote " << path << "\n";
  return 0;
}
